// Tests for the QOS metrics: worst-errored-second loss and the windowed
// loss-rate process of Fig. 17.
#include "vbr/net/qos.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "vbr/common/error.hpp"

namespace vbr::net {
namespace {

std::vector<FluidIntervalStats> make_intervals(const std::vector<double>& arrived,
                                               const std::vector<double>& lost) {
  std::vector<FluidIntervalStats> out(arrived.size());
  for (std::size_t i = 0; i < arrived.size(); ++i) out[i] = {arrived[i], lost[i]};
  return out;
}

TEST(WorstErroredSecondTest, ZeroWhenNoLoss) {
  const auto intervals = make_intervals({100, 100, 100, 100}, {0, 0, 0, 0});
  EXPECT_DOUBLE_EQ(worst_errored_second(intervals, 2), 0.0);
}

TEST(WorstErroredSecondTest, FindsWorstWindow) {
  // Two "seconds" of 2 intervals each: second 1 loses 10/200, second 2
  // loses 60/200.
  const auto intervals = make_intervals({100, 100, 100, 100}, {10, 0, 20, 40});
  EXPECT_DOUBLE_EQ(worst_errored_second(intervals, 2), 0.3);
}

TEST(WorstErroredSecondTest, PartialTrailingWindowCounted) {
  const auto intervals = make_intervals({100, 100, 100}, {0, 0, 50});
  // Last window is a single interval with 50% loss.
  EXPECT_DOUBLE_EQ(worst_errored_second(intervals, 2), 0.5);
}

TEST(WorstErroredSecondTest, ErroredSecondsOnly) {
  // Windows with no loss never contribute, even if arrivals are tiny.
  const auto intervals = make_intervals({1, 1000}, {0, 10});
  EXPECT_DOUBLE_EQ(worst_errored_second(intervals, 1), 0.01);
}

TEST(WorstErroredSecondTest, AlwaysAtLeastOverallLoss) {
  // max over windows >= overall ratio: the paper's observation that
  // P_l-WES curves sit above P_l curves.
  const auto intervals =
      make_intervals({100, 200, 300, 400}, {1, 5, 0, 12});
  double arrived = 0.0;
  double lost = 0.0;
  for (const auto& iv : intervals) {
    arrived += iv.arrived_bytes;
    lost += iv.lost_bytes;
  }
  const double overall = lost / arrived;
  for (std::size_t w : {1u, 2u, 4u}) {
    EXPECT_GE(worst_errored_second(intervals, w), overall - 1e-12) << "w=" << w;
  }
}

TEST(WindowedLossTest, MatchesHandComputation) {
  const auto intervals = make_intervals({100, 100, 100, 100}, {0, 10, 20, 0});
  const auto process = windowed_loss_process(intervals, 2);
  ASSERT_EQ(process.size(), 3u);
  EXPECT_DOUBLE_EQ(process[0], 10.0 / 200.0);
  EXPECT_DOUBLE_EQ(process[1], 30.0 / 200.0);
  EXPECT_DOUBLE_EQ(process[2], 20.0 / 200.0);
}

TEST(WindowedLossTest, StrideSkipsEvaluations) {
  const auto intervals =
      make_intervals(std::vector<double>(10, 100.0), std::vector<double>(10, 1.0));
  const auto every = windowed_loss_process(intervals, 2, 1);
  const auto strided = windowed_loss_process(intervals, 2, 3);
  EXPECT_EQ(every.size(), 9u);
  EXPECT_EQ(strided.size(), 3u);
  EXPECT_DOUBLE_EQ(strided[0], every[0]);
  EXPECT_DOUBLE_EQ(strided[1], every[3]);
}

TEST(WindowedLossTest, ShortInputGivesEmptyProcess) {
  const auto intervals = make_intervals({100}, {0});
  EXPECT_TRUE(windowed_loss_process(intervals, 5).empty());
}

TEST(QosTest, Preconditions) {
  const auto intervals = make_intervals({100}, {0});
  EXPECT_THROW(worst_errored_second(intervals, 0), vbr::InvalidArgument);
  EXPECT_THROW(windowed_loss_process(intervals, 0), vbr::InvalidArgument);
  EXPECT_THROW(windowed_loss_process(intervals, 1, 0), vbr::InvalidArgument);
}

}  // namespace
}  // namespace vbr::net
