// Tests for the Section 5.1 multiplexer: lag drawing with circular
// separation and the wrap-around aggregate.
#include "vbr/net/multiplexer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "vbr/common/error.hpp"
#include "vbr/common/math_util.hpp"

namespace vbr::net {
namespace {

TEST(DrawLagsTest, FirstLagIsZeroAndCountMatches) {
  Rng rng(1);
  const auto lags = draw_lags(5, 171000, 1000, rng);
  ASSERT_EQ(lags.size(), 5u);
  EXPECT_EQ(lags[0], 0u);
  for (std::size_t lag : lags) EXPECT_LT(lag, 171000u);
}

TEST(DrawLagsTest, CircularSeparationEnforced) {
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const auto lags = draw_lags(20, 171000, 1000, rng);
    for (std::size_t i = 0; i < lags.size(); ++i) {
      for (std::size_t j = i + 1; j < lags.size(); ++j) {
        const std::size_t diff =
            (lags[i] > lags[j]) ? lags[i] - lags[j] : lags[j] - lags[i];
        const std::size_t circular = std::min(diff, 171000 - diff);
        EXPECT_GE(circular, 1000u) << "pair " << i << "," << j;
      }
    }
  }
}

TEST(DrawLagsTest, SingleSourceNeedsNoSeparation) {
  Rng rng(3);
  const auto lags = draw_lags(1, 100, 1000, rng);
  ASSERT_EQ(lags.size(), 1u);
  EXPECT_EQ(lags[0], 0u);
}

TEST(DrawLagsTest, ImpossibleSeparationThrows) {
  Rng rng(4);
  EXPECT_THROW(draw_lags(10, 100, 50, rng), vbr::InvalidArgument);
}

TEST(MultiplexTest, SumWithZeroLagsIsScaledTrace) {
  std::vector<double> trace{1.0, 2.0, 3.0};
  const std::vector<std::size_t> lags{0, 0, 0};
  const auto agg = multiplex_trace(trace, lags);
  ASSERT_EQ(agg.size(), 3u);
  EXPECT_DOUBLE_EQ(agg[0], 3.0);
  EXPECT_DOUBLE_EQ(agg[1], 6.0);
  EXPECT_DOUBLE_EQ(agg[2], 9.0);
}

TEST(MultiplexTest, WrapAroundUsesWholeTraceOncePerSource) {
  std::vector<double> trace{10.0, 20.0, 30.0, 40.0};
  const std::vector<std::size_t> lags{0, 2};
  const auto agg = multiplex_trace(trace, lags);
  // Source 2 reads 30,40,10,20.
  EXPECT_DOUBLE_EQ(agg[0], 40.0);
  EXPECT_DOUBLE_EQ(agg[1], 60.0);
  EXPECT_DOUBLE_EQ(agg[2], 40.0);
  EXPECT_DOUBLE_EQ(agg[3], 60.0);
  // Total is conserved: N * sum(trace).
  EXPECT_DOUBLE_EQ(kahan_total(agg), 2.0 * kahan_total(trace));
}

TEST(MultiplexTest, MeanScalesWithN) {
  std::vector<double> trace(5000);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    trace[i] = 100.0 + 30.0 * std::sin(static_cast<double>(i) * 0.01);
  }
  Rng rng(5);
  for (std::size_t n : {2u, 5u, 20u}) {
    const auto lags = draw_lags(n, trace.size(), 100, rng);
    const auto agg = multiplex_trace(trace, lags);
    EXPECT_NEAR(sample_mean(agg), static_cast<double>(n) * sample_mean(trace), 1e-6);
  }
}

TEST(MultiplexTest, AggregationSmoothsRelativeVariability) {
  // CoV of the aggregate of N independent-ish offsets drops ~ 1/sqrt(N) —
  // the statistical multiplexing effect of Section 5.
  std::vector<double> trace(20000);
  Rng noise(6);
  for (auto& v : trace) v = std::max(0.0, noise.normal(100.0, 40.0));
  Rng rng(7);
  const auto lags1 = draw_lags(1, trace.size(), 100, rng);
  const auto lags16 = draw_lags(16, trace.size(), 100, rng);
  const auto agg1 = multiplex_trace(trace, lags1);
  const auto agg16 = multiplex_trace(trace, lags16);
  const double cov1 = std::sqrt(sample_variance(agg1)) / sample_mean(agg1);
  const double cov16 = std::sqrt(sample_variance(agg16)) / sample_mean(agg16);
  EXPECT_LT(cov16, cov1 / 2.5);
}

TEST(MultiplexTest, Preconditions) {
  std::vector<double> trace{1.0, 2.0};
  EXPECT_THROW(multiplex_trace(trace, std::vector<std::size_t>{}), vbr::InvalidArgument);
  EXPECT_THROW(multiplex_trace(trace, std::vector<std::size_t>{5}), vbr::InvalidArgument);
  EXPECT_THROW(multiplex_trace(std::vector<double>{}, std::vector<std::size_t>{0}),
               vbr::InvalidArgument);
}

}  // namespace
}  // namespace vbr::net
