// Tests for the full intraframe coding pipeline: bitstream round trips,
// slice structure, rate behavior vs. content and quantizer step, and the
// Table 1 compression-ratio regime.
#include "vbr/codec/intraframe_coder.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "vbr/common/error.hpp"
#include "vbr/common/rng.hpp"
#include "vbr/codec/synthetic_movie.hpp"

namespace vbr::codec {
namespace {

Frame noise_frame(std::size_t w, std::size_t h, double amplitude, std::uint64_t seed) {
  Frame f(w, h);
  Rng rng(seed);
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      const double v = 128.0 + amplitude * rng.normal();
      f.set(x, y, static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0)));
    }
  }
  return f;
}

TEST(SizeCategoryTest, MatchesBitLengths) {
  EXPECT_EQ(size_category(0), 0u);
  EXPECT_EQ(size_category(1), 1u);
  EXPECT_EQ(size_category(-1), 1u);
  EXPECT_EQ(size_category(2), 2u);
  EXPECT_EQ(size_category(3), 2u);
  EXPECT_EQ(size_category(-4), 3u);
  EXPECT_EQ(size_category(127), 7u);
  EXPECT_EQ(size_category(-128), 8u);
  EXPECT_EQ(size_category(255), 8u);
}

TEST(CoderTest, FlatFrameCodesTiny) {
  IntraframeCoder coder;
  Frame flat(64, 64);  // all pixels 128
  const auto encoded = coder.encode(flat);
  // A flat frame is nothing but EOBs and zero DC deltas.
  EXPECT_LT(encoded.total_bytes(), flat.pixel_count() / 16);
  EXPECT_GT(IntraframeCoder::compression_ratio(flat, encoded), 16.0);
}

TEST(CoderTest, DecodeRoundTripWithinQuantizerError) {
  CoderConfig config;
  config.quantizer_step = 8.0;
  config.slices_per_frame = 4;
  IntraframeCoder coder(config);
  const Frame original = noise_frame(64, 64, 25.0, 7);
  const auto encoded = coder.encode(original);
  const Frame decoded = coder.decode(encoded);
  // Uniform step-8 quantization on an orthonormal DCT keeps PSNR high.
  EXPECT_GT(psnr(original, decoded), 30.0);
}

TEST(CoderTest, LosslessOnFlatAndExactOnDc) {
  IntraframeCoder coder;
  Frame flat(32, 32);
  for (auto& p : flat.pixels()) p = 200;
  const Frame decoded = coder.decode(coder.encode(flat));
  for (std::size_t i = 0; i < flat.pixels().size(); ++i) {
    EXPECT_NEAR(static_cast<double>(decoded.pixels()[i]), 200.0, 8.0);
  }
}

TEST(CoderTest, SliceCountAndPartition) {
  CoderConfig config;
  config.slices_per_frame = 30;
  IntraframeCoder coder(config);
  const Frame f = noise_frame(Frame::kDefaultWidth, Frame::kDefaultHeight, 20.0, 9);
  const auto encoded = coder.encode(f);
  EXPECT_EQ(encoded.slices.size(), 30u);  // 60 block rows / 30 slices = 2 rows each
  const auto sizes = encoded.slice_bytes();
  double total = 0.0;
  for (double s : sizes) {
    EXPECT_GT(s, 0.0);
    total += s;
  }
  EXPECT_DOUBLE_EQ(total, static_cast<double>(encoded.total_bytes()));
}

TEST(CoderTest, MoreDetailMeansMoreBytes) {
  IntraframeCoder coder;
  const Frame calm = noise_frame(64, 64, 5.0, 11);
  const Frame busy = noise_frame(64, 64, 50.0, 11);
  EXPECT_GT(coder.encode(busy).total_bytes(), 2 * coder.encode(calm).total_bytes());
}

TEST(CoderTest, CoarserQuantizerMeansFewerBytes) {
  const Frame f = noise_frame(64, 64, 30.0, 13);
  CoderConfig fine;
  fine.quantizer_step = 4.0;
  CoderConfig coarse;
  coarse.quantizer_step = 32.0;
  EXPECT_GT(IntraframeCoder(fine).encode(f).total_bytes(),
            2 * IntraframeCoder(coarse).encode(f).total_bytes());
}

TEST(CoderTest, TrainingImprovesOrMatchesDefaultTables) {
  MovieConfig mconfig;
  mconfig.width = 64;
  mconfig.height = 64;
  const SyntheticMovie movie(mconfig, 50);
  std::vector<Frame> sample;
  for (std::size_t i = 0; i < 10; ++i) sample.push_back(movie.frame(i * 5));

  IntraframeCoder untrained;
  IntraframeCoder trained;
  trained.train(sample);
  std::size_t untrained_bytes = 0;
  std::size_t trained_bytes = 0;
  for (const auto& f : sample) {
    untrained_bytes += untrained.encode(f).total_bytes();
    trained_bytes += trained.encode(f).total_bytes();
  }
  EXPECT_LE(trained_bytes, untrained_bytes);
}

TEST(CoderTest, TrainedCoderStillRoundTrips) {
  MovieConfig mconfig;
  mconfig.width = 64;
  mconfig.height = 64;
  const SyntheticMovie movie(mconfig, 20);
  std::vector<Frame> sample{movie.frame(0), movie.frame(10)};
  IntraframeCoder coder;
  coder.train(sample);
  const Frame original = movie.frame(5);
  const Frame decoded = coder.decode(coder.encode(original));
  EXPECT_GT(psnr(original, decoded), 28.0);
}

TEST(CoderTest, CompressionRatioInPaperRegimeOnMovieMaterial) {
  // Table 1 reports an average ratio of 8.70 for film material; synthetic
  // frames land in the same broad regime (well above 2, below 50).
  MovieConfig mconfig;
  mconfig.width = 128;
  mconfig.height = 128;
  const SyntheticMovie movie(mconfig, 30);
  IntraframeCoder coder;
  double ratio_sum = 0.0;
  for (std::size_t i = 0; i < 10; ++i) {
    const Frame f = movie.frame(i * 3);
    ratio_sum += IntraframeCoder::compression_ratio(f, coder.encode(f));
  }
  const double mean_ratio = ratio_sum / 10.0;
  EXPECT_GT(mean_ratio, 2.0);
  EXPECT_LT(mean_ratio, 60.0);
}

TEST(CoderTest, ConfigValidation) {
  CoderConfig bad;
  bad.slices_per_frame = 0;
  EXPECT_THROW(IntraframeCoder{bad}, vbr::InvalidArgument);
  CoderConfig bad_step;
  bad_step.quantizer_step = 0.0;
  EXPECT_THROW(IntraframeCoder{bad_step}, vbr::InvalidArgument);
}

}  // namespace
}  // namespace vbr::codec
