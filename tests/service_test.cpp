// Tests for the streaming traffic service (src/vbr/service): the streaming
// source contracts — bit-equality of incremental Hosking to the batch
// recursion at full horizon, LRD fidelity of the truncated/blockwise forms
// under the repo's own estimators, block-size and thread-count invariance —
// plus the TrafficService lifecycle and the VBRSRVC1 checkpoint envelope
// (0-ulp round-trips, SIGKILL-style resume equality, hostile inputs).
#include "vbr/service/traffic_service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "vbr/common/checksum.hpp"
#include "vbr/common/error.hpp"
#include "vbr/common/rng.hpp"
#include "vbr/model/fgn_acf.hpp"
#include "vbr/model/hosking.hpp"
#include "vbr/model/vbr_source.hpp"
#include "vbr/net/fluid_queue.hpp"
#include "vbr/service/service_checkpoint.hpp"
#include "vbr/service/streaming_hosking.hpp"
#include "vbr/service/streaming_source.hpp"
#include "vbr/service/streaming_vbr.hpp"
#include "vbr/stats/lrd_fidelity.hpp"

namespace vbr::service {
namespace {

model::VbrModelParams paper_params() {
  model::VbrModelParams params;
  params.hurst = 0.8;
  params.marginal.mu_gamma = 27791.0;
  params.marginal.sigma_gamma = 6254.0;
  params.marginal.tail_slope = 12.0;
  return params;
}

std::vector<double> drain(StreamingSource& source, std::size_t n, std::size_t block) {
  std::vector<double> out;
  while (out.size() < n) source.next_block(std::min(block, n - out.size()), out);
  return out;
}

/// Bitwise equality — the contract is 0 ulp, not approximate.
void expect_bit_equal(const std::vector<double>& a, const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint64_t ba = 0;
    std::uint64_t bb = 0;
    std::memcpy(&ba, &a[i], sizeof ba);
    std::memcpy(&bb, &b[i], sizeof bb);
    ASSERT_EQ(ba, bb) << "sample " << i;
  }
}

// ---------------------------------------------------------------------------
// Streaming core contracts.

TEST(StreamingHoskingTest, BitEqualsBatchRecursionAtFullHorizon) {
  // With horizon >= n no coefficient is ever truncated, so the incremental
  // form must reproduce hosking_farima exactly: same split()-derived Rng,
  // same Durbin-Levinson arithmetic, same draws.
  constexpr std::size_t kFrames = 512;
  const model::HoskingOptions options{.hurst = 0.8, .variance = 1.0};
  Rng batch_rng(7);
  const auto batch = model::hosking_farima(kFrames, options, batch_rng);
  for (const std::size_t block : {std::size_t{1}, std::size_t{64}, std::size_t{512}}) {
    Rng parent(7);
    StreamingHosking streaming(options, kFrames, parent);
    expect_bit_equal(drain(streaming, kFrames, block), batch);
  }
}

TEST(StreamingHoskingTest, TruncatedHorizonKeepsLrdFidelity) {
  // The documented truncation-bias bound: at horizon m the innovation
  // variance error is ~ v_inf * d^2 / m (< 0.4% at m = 64 for H < 0.95), so
  // the default horizon must pass the same fidelity gates as the exact zoo
  // generators (tolerances from generator_zoo_test).
  constexpr std::size_t kFrames = 65536;
  const double target = 0.8;
  Rng parent(1994);
  StreamingTuning tuning;  // hosking_horizon = 64
  auto source = make_streaming_core(model::GeneratorBackend::kHosking, target, 1.0,
                                    tuning, parent);
  const auto x = drain(*source, kFrames, 4096);
  stats::LrdFidelityOptions options;
  options.spectral_model = stats::SpectralModel::kFarima;
  const auto acf = model::farima_acf(target, options.acf_lags);
  const auto report = stats::judge_lrd_fidelity(x, target, acf, options);
  EXPECT_NEAR(report.whittle_hurst, target, 0.04);
  EXPECT_LE(report.acf_rms_error, 0.15);
  EXPECT_LE(report.gaussian_ks, 0.02);
  EXPECT_GT(report.sample_variance, 0.75);
  EXPECT_LT(report.sample_variance, 1.25);
}

TEST(StreamingPaxsonTest, BlockwiseStitchingKeepsLrdFidelity) {
  // Blockwise synthesis with the equal-power crossfade must stay within the
  // zoo's documented fGn tolerances; this is the stats/lrd_fidelity
  // validation the stitching design is accountable to.
  constexpr std::size_t kFrames = 65536;
  const double target = 0.8;
  Rng parent(1994);
  StreamingTuning tuning;  // window 4096, overlap 512
  auto source = make_streaming_core(model::GeneratorBackend::kPaxson, target, 1.0,
                                    tuning, parent);
  const auto x = drain(*source, kFrames, 4096);
  stats::LrdFidelityOptions options;
  options.spectral_model = stats::SpectralModel::kFgn;
  const auto acf = model::fgn_acf(target, options.acf_lags);
  const auto report = stats::judge_lrd_fidelity(x, target, acf, options);
  EXPECT_NEAR(report.whittle_hurst, target, 0.04);
  EXPECT_LE(report.acf_rms_error, 0.15);
  EXPECT_LE(report.gaussian_ks, 0.02);
  EXPECT_GT(report.sample_variance, 0.75);
  EXPECT_LT(report.sample_variance, 1.25);
}

TEST(StreamingOnOffTest, NaturallyStreamingSourceKeepsLrdFidelity) {
  // The on/off superposition is Gaussian only by CLT and its VT/Whittle
  // reads carry the same slack the zoo documents for the batch form.
  constexpr std::size_t kFrames = 65536;
  const double target = 0.8;
  Rng parent(1994);
  StreamingTuning tuning;
  auto source = make_streaming_core(model::GeneratorBackend::kAggregatedOnOff, target, 1.0,
                                    tuning, parent);
  const auto x = drain(*source, kFrames, 4096);
  stats::LrdFidelityOptions options;
  options.spectral_model = stats::SpectralModel::kFgn;
  const auto acf = model::fgn_acf(target, options.acf_lags);
  const auto report = stats::judge_lrd_fidelity(x, target, acf, options);
  EXPECT_NEAR(report.whittle_hurst, target, 0.05);
  EXPECT_LE(report.gaussian_ks, 0.03);
  EXPECT_GT(report.sample_variance, 0.75);
  EXPECT_LT(report.sample_variance, 1.25);
}

TEST(StreamingSourceTest, BlockSizeNeverChangesTheSequence) {
  // next_block(n) in any partition must emit the one sequence the seed
  // determines — the service's block parameter is a scheduling knob, not a
  // modeling one.
  const StreamingTuning tuning;
  for (const auto backend :
       {model::GeneratorBackend::kHosking, model::GeneratorBackend::kPaxson,
        model::GeneratorBackend::kAggregatedOnOff}) {
    Rng reference_parent(33);
    auto reference = make_streaming_core(backend, 0.8, 1.0, tuning, reference_parent);
    const auto expected = drain(*reference, 4096, 4096);
    for (const std::size_t block : {std::size_t{1}, std::size_t{64}, std::size_t{4096}}) {
      Rng parent(33);
      auto source = make_streaming_core(backend, 0.8, 1.0, tuning, parent);
      expect_bit_equal(drain(*source, 4096, block), expected);
      EXPECT_EQ(source->position(), 4096u);
    }
  }
}

TEST(StreamingVbrTest, FullAndGaussianVariantsBitEqualBatchModelAtFullHorizon) {
  // End-to-end bit-equality: streaming hosking at horizon >= n, wrapped by
  // the marginal transform, must match VbrVideoSourceModel::generate for
  // the same backend — the streaming service is the batch model, served.
  constexpr std::size_t kFrames = 256;
  const auto params = paper_params();
  const model::VbrVideoSourceModel batch_model(params);
  StreamingTuning tuning;
  tuning.hosking_horizon = kFrames;
  for (const auto variant :
       {model::ModelVariant::kFull, model::ModelVariant::kGaussianFarima,
        model::ModelVariant::kIidGammaPareto}) {
    Rng batch_rng(11);
    const auto batch =
        batch_model.generate(kFrames, batch_rng, variant, model::GeneratorBackend::kHosking);
    Rng parent(11);
    auto streaming = make_streaming_source(params, variant,
                                           model::GeneratorBackend::kHosking, tuning, parent);
    expect_bit_equal(drain(*streaming, kFrames, 64), batch);
  }
}

TEST(StreamingSourceTest, SaveRestoreRoundTripsAtZeroUlpMidNormalPair) {
  // Cut at an odd position (137) so the Rng's cached Box-Muller normal is
  // in flight, and in the middle of a Paxson window: the restored source
  // must continue bit-for-bit, not re-synthesize.
  const auto params = paper_params();
  const StreamingTuning tuning;
  for (const auto backend :
       {model::GeneratorBackend::kHosking, model::GeneratorBackend::kPaxson,
        model::GeneratorBackend::kAggregatedOnOff}) {
    for (const auto variant :
         {model::ModelVariant::kFull, model::ModelVariant::kGaussianFarima,
          model::ModelVariant::kIidGammaPareto}) {
      Rng parent(91);
      auto original = make_streaming_source(params, variant, backend, tuning, parent);
      (void)drain(*original, 137, 137);
      std::ostringstream state(std::ios::binary);
      original->save(state);
      const auto tail = drain(*original, 300, 77);

      Rng fresh_parent(91);
      auto restored = make_streaming_source(params, variant, backend, tuning, fresh_parent);
      std::istringstream in(state.str(), std::ios::binary);
      restored->restore(in);
      EXPECT_EQ(restored->position(), 137u);
      expect_bit_equal(drain(*restored, 300, 77), tail);
    }
  }
}

TEST(StreamingSourceTest, RestoreRejectsMismatchedConfigUnchanged) {
  const auto params = paper_params();
  const StreamingTuning tuning;
  Rng parent(5);
  auto source = make_streaming_source(params, model::ModelVariant::kGaussianFarima,
                                      model::GeneratorBackend::kHosking, tuning, parent);
  (void)drain(*source, 64, 64);
  std::ostringstream state(std::ios::binary);
  source->save(state);

  auto other_params = params;
  other_params.hurst = 0.7;
  Rng other_parent(5);
  auto other = make_streaming_source(other_params, model::ModelVariant::kGaussianFarima,
                                     model::GeneratorBackend::kHosking, tuning, other_parent);
  std::istringstream in(state.str(), std::ios::binary);
  EXPECT_THROW(other->restore(in), IoError);
  EXPECT_EQ(other->position(), 0u);  // rejected before any state was committed
}

TEST(StreamingSourceTest, FactoryRejectsInvalidConfigurations) {
  const StreamingTuning tuning;
  Rng parent(1);
  EXPECT_THROW(make_streaming_core(model::GeneratorBackend::kDaviesHarte, 0.8, 1.0, tuning,
                                   parent),
               InvalidArgument);
  EXPECT_THROW(make_streaming_core(model::GeneratorBackend::kHosking, 1.2, 1.0, tuning, parent),
               Error);
  StreamingTuning bad_window = tuning;
  bad_window.paxson_window = 1000;  // not a power of two
  EXPECT_THROW(make_streaming_core(model::GeneratorBackend::kPaxson, 0.8, 1.0, bad_window,
                                   parent),
               Error);
  StreamingTuning bad_overlap = tuning;
  bad_overlap.paxson_overlap = bad_overlap.paxson_window;  // > window / 2
  EXPECT_THROW(make_streaming_core(model::GeneratorBackend::kPaxson, 0.8, 1.0, bad_overlap,
                                   parent),
               Error);
  StreamingTuning bad_horizon = tuning;
  bad_horizon.hosking_horizon = 0;
  EXPECT_THROW(make_streaming_core(model::GeneratorBackend::kHosking, 0.8, 1.0, bad_horizon,
                                   parent),
               Error);
}

TEST(StreamingSourceTest, SharedCoefficientTablesAreCachedPerConfiguration) {
  StreamingHosking::coeff_cache_clear();
  const model::HoskingOptions options{.hurst = 0.8, .variance = 1.0};
  Rng parent(3);
  StreamingHosking a(options, 64, parent);
  StreamingHosking b(options, 64, parent);
  EXPECT_EQ(StreamingHosking::coeff_cache_size(), 1u);  // shared, not per-stream
  StreamingHosking c(options, 128, parent);
  EXPECT_EQ(StreamingHosking::coeff_cache_size(), 2u);  // horizon is part of the key
}

// ---------------------------------------------------------------------------
// TrafficService.

ServiceConfig small_service_config() {
  ServiceConfig config;
  config.num_streams = 8;
  config.seed = 1994;
  config.params = paper_params();
  config.variant = model::ModelVariant::kGaussianFarima;
  config.backend = model::GeneratorBackend::kHosking;
  return config;
}

TEST(TrafficServiceTest, ResultsHashInvariantToThreadCount) {
  std::uint64_t reference = 0;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    auto config = small_service_config();
    config.threads = threads;
    TrafficService service(config);
    for (int r = 0; r < 8; ++r) service.advance_round(32);
    if (threads == 1) {
      reference = service.results_hash();
    } else {
      EXPECT_EQ(service.results_hash(), reference) << "threads = " << threads;
    }
  }
}

TEST(TrafficServiceTest, ResultsHashInvariantToBlockSize) {
  std::uint64_t reference = 0;
  bool first = true;
  for (const std::size_t block : {std::size_t{1}, std::size_t{16}, std::size_t{128}}) {
    TrafficService service(small_service_config());
    for (std::size_t served = 0; served < 128; served += block) service.advance_round(block);
    EXPECT_EQ(service.total_samples(), 128u * 8u);
    if (first) {
      reference = service.results_hash();
      first = false;
    } else {
      EXPECT_EQ(service.results_hash(), reference) << "block = " << block;
    }
  }
}

TEST(TrafficServiceTest, ResultsHashInvariantToPauseScheduling) {
  // The hash depends only on what each stream emitted, never on how rounds
  // interleaved the work: a run that pauses stream 2 mid-way and lets it
  // catch up alone afterwards must land on the uninterrupted run's hash.
  TrafficService plain(small_service_config());
  for (int r = 0; r < 8; ++r) plain.advance_round(16);

  TrafficService staggered(small_service_config());
  for (int r = 0; r < 4; ++r) staggered.advance_round(16);
  staggered.pause(2);
  for (int r = 0; r < 4; ++r) staggered.advance_round(16);
  // Catch-up: only stream 2 active for the rounds it missed.
  for (std::size_t i = 0; i < 8; ++i) {
    if (i != 2) staggered.pause(i);
  }
  staggered.resume(2);
  for (int r = 0; r < 4; ++r) staggered.advance_round(16);
  EXPECT_EQ(staggered.results_hash(), plain.results_hash());
  EXPECT_EQ(staggered.stream_position(2), plain.stream_position(2));
}

TEST(TrafficServiceTest, LifecycleContractsRejectInvalidTransitions) {
  TrafficService service(small_service_config());
  service.advance_round(8);
  EXPECT_THROW(service.pause(99), Error);          // out of range
  EXPECT_THROW(service.resume(0), Error);          // active, not paused
  service.pause(0);
  EXPECT_THROW(service.pause(0), Error);           // already paused
  service.resume(0);
  service.retire(3);
  EXPECT_THROW(service.retire(3), Error);          // already retired
  EXPECT_THROW(service.resume(3), Error);          // retired is terminal
  EXPECT_THROW(service.stream_position(3), Error); // no state left to read
  EXPECT_EQ(service.active_streams(), 7u);
  service.advance_round(8);  // the fleet keeps serving around the hole
  EXPECT_EQ(service.status(3), StreamStatus::kRetired);
}

TEST(TrafficServiceTest, CheckpointRoundTripReproducesTheRunBitForBit) {
  namespace fs = std::filesystem;
  const fs::path path = fs::temp_directory_path() / "vbr_service_test.ckpt";
  auto config = small_service_config();
  config.queue_capacity_bytes_per_sec = 8.0e6;
  config.queue_buffer_bytes = 4.0e6;

  TrafficService interrupted(config);
  for (int r = 0; r < 3; ++r) interrupted.advance_round(32);
  save_service_checkpoint(path, interrupted);

  TrafficService resumed(config);
  load_service_checkpoint(path, resumed);
  EXPECT_EQ(resumed.rounds(), 3u);
  EXPECT_EQ(resumed.results_hash(), interrupted.results_hash());

  TrafficService uninterrupted(config);
  for (int r = 0; r < 8; ++r) uninterrupted.advance_round(32);
  for (int r = 0; r < 5; ++r) resumed.advance_round(32);
  EXPECT_EQ(resumed.results_hash(), uninterrupted.results_hash());
  EXPECT_EQ(resumed.total_samples(), uninterrupted.total_samples());
  // 0-ulp state carriers: Kahan totals and the queue continue identically.
  EXPECT_EQ(resumed.total_bytes(), uninterrupted.total_bytes());
  ASSERT_NE(resumed.queue(), nullptr);
  EXPECT_EQ(resumed.queue()->lost_bytes(), uninterrupted.queue()->lost_bytes());
  EXPECT_EQ(resumed.queue()->max_queue_bytes(), uninterrupted.queue()->max_queue_bytes());
  fs::remove(path);
}

TEST(TrafficServiceTest, CheckpointRestoresRetiredAndPausedStatuses) {
  namespace fs = std::filesystem;
  const fs::path path = fs::temp_directory_path() / "vbr_service_status.ckpt";
  TrafficService service(small_service_config());
  service.advance_round(16);
  service.pause(1);
  service.retire(5);
  service.advance_round(16);
  save_service_checkpoint(path, service);

  TrafficService resumed(small_service_config());
  resumed.retire(2);  // the checkpoint says stream 2 is live: it must come back
  load_service_checkpoint(path, resumed);
  EXPECT_EQ(resumed.status(1), StreamStatus::kPaused);
  EXPECT_EQ(resumed.status(2), StreamStatus::kActive);
  EXPECT_EQ(resumed.status(5), StreamStatus::kRetired);
  resumed.advance_round(16);
  service.advance_round(16);
  EXPECT_EQ(resumed.results_hash(), service.results_hash());
  fs::remove(path);
}

TEST(TrafficServiceTest, CheckpointRejectsHostileFiles) {
  namespace fs = std::filesystem;
  const fs::path path = fs::temp_directory_path() / "vbr_service_hostile.ckpt";
  TrafficService service(small_service_config());
  service.advance_round(16);
  save_service_checkpoint(path, service);

  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }
  const auto write_and_expect_reject = [&](const std::string& corrupt) {
    const fs::path bad = fs::temp_directory_path() / "vbr_service_hostile_bad.ckpt";
    std::ofstream out(bad, std::ios::binary | std::ios::trunc);
    out.write(corrupt.data(), static_cast<std::streamsize>(corrupt.size()));
    out.close();
    TrafficService victim(small_service_config());
    EXPECT_THROW(load_service_checkpoint(bad, victim), IoError);
    fs::remove(bad);
  };

  // Truncations at the envelope header, mid-payload, and one-byte-short.
  for (const std::size_t cut : {std::size_t{4}, bytes.size() / 2, bytes.size() - 1}) {
    write_and_expect_reject(bytes.substr(0, cut));
  }
  // Single bit flips anywhere must trip the CRC (or the magic check).
  for (const std::size_t pos : {std::size_t{0}, std::size_t{9}, bytes.size() / 2}) {
    std::string corrupt = bytes;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x10);
    write_and_expect_reject(corrupt);
  }
  // A valid envelope for a different config must be rejected by the
  // fingerprint, not half-applied.
  auto other_config = small_service_config();
  other_config.seed = 4242;
  TrafficService other(other_config);
  EXPECT_THROW(load_service_checkpoint(path, other), IoError);
  EXPECT_EQ(other.rounds(), 0u);
  fs::remove(path);
}

TEST(FluidQueueStateTest, SaveRestoreRoundTripsAtZeroUlp) {
  net::FluidQueue queue(8.0e6, 4.0e6);
  Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    queue.offer(std::max(0.0, 6.0e6 + 4.0e6 * rng.normal()), 1.0 / 24.0);
  }
  std::ostringstream state(std::ios::binary);
  queue.save(state);

  net::FluidQueue restored(8.0e6, 4.0e6);
  std::istringstream in(state.str(), std::ios::binary);
  restored.restore(in);
  EXPECT_EQ(restored.queue_bytes(), queue.queue_bytes());
  EXPECT_EQ(restored.lost_bytes(), queue.lost_bytes());
  EXPECT_EQ(restored.arrived_bytes(), queue.arrived_bytes());
  EXPECT_EQ(restored.max_queue_bytes(), queue.max_queue_bytes());
  // Both continue identically from the restored state.
  net::FluidQueue copy = queue;
  for (int i = 0; i < 100; ++i) {
    restored.offer(7.0e6, 1.0 / 24.0);
    copy.offer(7.0e6, 1.0 / 24.0);
  }
  EXPECT_EQ(restored.lost_bytes(), copy.lost_bytes());
  EXPECT_EQ(restored.queue_bytes(), copy.queue_bytes());

  net::FluidQueue mismatched(9.0e6, 4.0e6);
  std::istringstream again(state.str(), std::ios::binary);
  EXPECT_THROW(mismatched.restore(again), IoError);
}

}  // namespace
}  // namespace vbr::service
