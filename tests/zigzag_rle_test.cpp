// Tests for zig-zag scanning, run-length coding, and the uniform quantizer.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "vbr/codec/quantizer.hpp"
#include "vbr/codec/rle.hpp"
#include "vbr/codec/zigzag.hpp"
#include "vbr/common/error.hpp"
#include "vbr/common/rng.hpp"

namespace vbr::codec {
namespace {

TEST(ZigzagTest, OrderIsAPermutation) {
  std::set<std::uint8_t> seen(kZigzagOrder.begin(), kZigzagOrder.end());
  EXPECT_EQ(seen.size(), 64u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 63);
}

TEST(ZigzagTest, KnownPrefix) {
  // The classic JPEG scan starts 0, 1, 8, 16, 9, 2, 3, 10, ...
  EXPECT_EQ(kZigzagOrder[0], 0);
  EXPECT_EQ(kZigzagOrder[1], 1);
  EXPECT_EQ(kZigzagOrder[2], 8);
  EXPECT_EQ(kZigzagOrder[3], 16);
  EXPECT_EQ(kZigzagOrder[4], 9);
  EXPECT_EQ(kZigzagOrder[5], 2);
  EXPECT_EQ(kZigzagOrder[6], 3);
  EXPECT_EQ(kZigzagOrder[7], 10);
  EXPECT_EQ(kZigzagOrder[63], 63);
}

TEST(ZigzagTest, ScanUnscanRoundTrip) {
  std::array<std::int16_t, 64> block{};
  std::iota(block.begin(), block.end(), static_cast<std::int16_t>(-32));
  EXPECT_EQ(zigzag_unscan(zigzag_scan(block)), block);
}

TEST(ZigzagTest, DcStaysFirst) {
  std::array<std::int16_t, 64> block{};
  block[0] = 99;
  EXPECT_EQ(zigzag_scan(block)[0], 99);
}

TEST(RleTest, AllZerosIsSingleEob) {
  std::array<std::int16_t, 63> ac{};
  const auto symbols = rle_encode_ac(ac);
  ASSERT_EQ(symbols.size(), 1u);
  EXPECT_TRUE(symbols[0].is_eob());
}

TEST(RleTest, EncodesRunsAndLevels) {
  std::array<std::int16_t, 63> ac{};
  ac[0] = 5;
  ac[3] = -2;  // run of 2 zeros then -2
  const auto symbols = rle_encode_ac(ac);
  ASSERT_EQ(symbols.size(), 3u);
  EXPECT_EQ(symbols[0].run, 0);
  EXPECT_EQ(symbols[0].level, 5);
  EXPECT_EQ(symbols[1].run, 2);
  EXPECT_EQ(symbols[1].level, -2);
  EXPECT_TRUE(symbols[2].is_eob());
}

TEST(RleTest, LongRunsUseZrl) {
  std::array<std::int16_t, 63> ac{};
  ac[40] = 7;  // run of 40 zeros: two ZRLs (32) + run of 8
  const auto symbols = rle_encode_ac(ac);
  ASSERT_EQ(symbols.size(), 4u);
  EXPECT_TRUE(symbols[0].is_zrl());
  EXPECT_TRUE(symbols[1].is_zrl());
  EXPECT_EQ(symbols[2].run, 8);
  EXPECT_EQ(symbols[2].level, 7);
  EXPECT_TRUE(symbols[3].is_eob());
}

TEST(RleTest, RoundTripRandomBlocks) {
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    std::array<std::int16_t, 63> ac{};
    // Sparse blocks, as quantized DCT output actually is.
    const auto nonzeros = rng.uniform_index(20);
    for (std::size_t i = 0; i < nonzeros; ++i) {
      ac[rng.uniform_index(63)] =
          static_cast<std::int16_t>(static_cast<int>(rng.uniform_index(255)) - 127);
    }
    const auto symbols = rle_encode_ac(ac);
    const auto decoded = rle_decode_ac(symbols, 63);
    ASSERT_EQ(decoded.size(), 63u);
    for (std::size_t i = 0; i < 63; ++i) EXPECT_EQ(decoded[i], ac[i]) << "trial " << trial;
  }
}

TEST(RleTest, FullBlockRoundTrips) {
  std::array<std::int16_t, 63> ac;
  ac.fill(1);
  const auto symbols = rle_encode_ac(ac);
  const auto decoded = rle_decode_ac(symbols, 63);
  for (std::size_t i = 0; i < 63; ++i) EXPECT_EQ(decoded[i], 1);
}

TEST(RleTest, DecodeRejectsOverrun) {
  std::vector<RleSymbol> bad{{62, 5}, {5, 3}, RleSymbol::eob()};
  EXPECT_THROW(rle_decode_ac(bad, 63), vbr::Error);
}

TEST(QuantizerTest, RoundTripErrorBoundedByHalfStep) {
  UniformQuantizer q(16.0);
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const double coefficient = rng.uniform(-900.0, 900.0);
    const double reconstructed = q.dequantize(q.quantize(coefficient));
    EXPECT_LE(std::abs(reconstructed - coefficient), 8.0 + 1e-9);
  }
}

TEST(QuantizerTest, ClampsToEightBitLevels) {
  UniformQuantizer q(1.0);
  EXPECT_EQ(q.quantize(1e6), 127);
  EXPECT_EQ(q.quantize(-1e6), -128);
}

TEST(QuantizerTest, LargerStepProducesMoreZeros) {
  Rng rng(7);
  Block coefficients;
  for (auto& v : coefficients) v = rng.normal(0.0, 20.0);
  UniformQuantizer fine(4.0);
  UniformQuantizer coarse(64.0);
  const auto count_zeros = [&](const UniformQuantizer& q) {
    const auto levels = q.quantize_block(coefficients);
    return std::count(levels.begin(), levels.end(), 0);
  };
  EXPECT_GT(count_zeros(coarse), count_zeros(fine));
}

TEST(QuantizerTest, RejectsSubUnitStep) {
  EXPECT_THROW(UniformQuantizer(0.5), vbr::InvalidArgument);
}

}  // namespace
}  // namespace vbr::codec
