// Unit tests for the hybrid Gamma/Pareto distribution (Section 4.2) and the
// 10,000-point tabulated convolution used for multi-source aggregation.
#include "vbr/stats/gamma_pareto.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "vbr/common/error.hpp"
#include "vbr/common/rng.hpp"
#include "vbr/common/math_util.hpp"

namespace vbr::stats {
namespace {

GammaParetoParams paper_like_params() {
  GammaParetoParams p;
  p.mu_gamma = 27791.0;
  p.sigma_gamma = 6254.0;
  p.tail_slope = 12.0;
  return p;
}

TEST(GammaParetoTest, SpliceContinuity) {
  GammaParetoDistribution d(paper_like_params());
  const double x_th = d.threshold();
  EXPECT_GT(x_th, d.params().mu_gamma);  // splice is in the right tail
  // CDF continuous at the splice.
  EXPECT_NEAR(d.cdf(x_th - 1e-6), d.cdf(x_th + 1e-6), 1e-8);
  // Density continuous too (slope AND position matched).
  EXPECT_NEAR(d.pdf(x_th - 1e-6), d.pdf(x_th + 1e-6), 1e-4 * d.pdf(x_th));
}

TEST(GammaParetoTest, BodyIsGammaTailIsPareto) {
  GammaParetoDistribution d(paper_like_params());
  const auto& g = d.gamma_part();
  const auto& p = d.pareto_part();
  const double below = 0.5 * d.threshold();
  const double above = 2.0 * d.threshold();
  EXPECT_DOUBLE_EQ(d.pdf(below), g.pdf(below));
  EXPECT_DOUBLE_EQ(d.cdf(below), g.cdf(below));
  EXPECT_DOUBLE_EQ(d.pdf(above), p.pdf(above));
  EXPECT_DOUBLE_EQ(d.cdf(above), p.cdf(above));
}

TEST(GammaParetoTest, LogLogTailSlopeMatchesParameter) {
  GammaParetoDistribution d(paper_like_params());
  const double x1 = d.threshold() * 1.5;
  const double x2 = d.threshold() * 3.0;
  const double slope =
      (std::log(1.0 - d.cdf(x2)) - std::log(1.0 - d.cdf(x1))) / (std::log(x2) - std::log(x1));
  EXPECT_NEAR(slope, -12.0, 1e-6);
}

TEST(GammaParetoTest, QuantileRoundTripAcrossTheSplice) {
  GammaParetoDistribution d(paper_like_params());
  for (double p : {0.001, 0.1, 0.5, 0.9, d.threshold_cdf() - 1e-4,
                   d.threshold_cdf() + 1e-4, 0.999, 0.9999995}) {
    EXPECT_NEAR(d.cdf(d.quantile(p)), p, 1e-8) << "p=" << p;
  }
}

TEST(GammaParetoTest, QuantileIsMonotone) {
  GammaParetoDistribution d(paper_like_params());
  double prev = 0.0;
  for (double p = 0.01; p < 0.9999; p += 0.01) {
    const double q = d.quantile(p);
    EXPECT_GT(q, prev);
    prev = q;
  }
}

TEST(GammaParetoTest, MeanAndVarianceNearGammaBodyForSteepTail) {
  // With a steep tail (little mass moved), mean/variance stay close to the
  // Gamma part's — the paper's justification for using sample moments.
  GammaParetoDistribution d(paper_like_params());
  EXPECT_NEAR(d.mean(), 27791.0, 0.02 * 27791.0);
  EXPECT_NEAR(std::sqrt(d.variance()), 6254.0, 0.15 * 6254.0);
}

TEST(GammaParetoTest, HeavierTailShiftsMassRight) {
  auto heavy_params = paper_like_params();
  heavy_params.tail_slope = 4.0;
  GammaParetoDistribution heavy(heavy_params);
  GammaParetoDistribution steep(paper_like_params());
  const double far = 27791.0 + 10.0 * 6254.0;
  EXPECT_GT(heavy.ccdf(far), steep.ccdf(far));
}

TEST(GammaParetoTest, FitRecoversParametersFromOwnSample) {
  GammaParetoDistribution truth(paper_like_params());
  Rng rng(11);
  std::vector<double> data(200000);
  for (auto& v : data) v = truth.sample(rng);
  const auto fitted = GammaParetoDistribution::fit(data, 0.02);
  EXPECT_NEAR(fitted.mu_gamma, 27791.0, 0.02 * 27791.0);
  EXPECT_NEAR(fitted.sigma_gamma, 6254.0, 0.1 * 6254.0);
  EXPECT_NEAR(fitted.tail_slope, 12.0, 2.5);
}

TEST(GammaParetoTest, RejectsBadParameters) {
  GammaParetoParams p = paper_like_params();
  p.tail_slope = 0.0;
  EXPECT_THROW(GammaParetoDistribution{p}, vbr::InvalidArgument);
  p = paper_like_params();
  p.sigma_gamma = -1.0;
  EXPECT_THROW(GammaParetoDistribution{p}, vbr::InvalidArgument);
}

// ------------------------------------------------------------- Tabulated

TEST(TabulatedDistributionTest, MatchesContinuousLaw) {
  GammaParetoDistribution d(paper_like_params());
  TabulatedDistribution tab(d, 0.0, 120000.0, 10000);
  for (double x : {10000.0, 20000.0, 27791.0, 40000.0, 70000.0}) {
    EXPECT_NEAR(tab.cdf(x), d.cdf(x), 2e-3) << "x=" << x;
  }
  EXPECT_NEAR(tab.mean(), d.mean(), 0.005 * d.mean());
}

TEST(TabulatedDistributionTest, QuantileInvertsCdf) {
  GammaParetoDistribution d(paper_like_params());
  TabulatedDistribution tab(d, 0.0, 120000.0, 10000);
  for (double p : {0.01, 0.25, 0.5, 0.75, 0.99}) {
    EXPECT_NEAR(tab.cdf(tab.quantile(p)), p, 2e-3);
  }
}

TEST(TabulatedDistributionTest, ConvolutionOfTwoMatchesMonteCarlo) {
  GammaParetoDistribution d(paper_like_params());
  TabulatedDistribution tab(d, 0.0, 120000.0, 4096);
  const auto sum2 = tab.convolve_power(2);
  EXPECT_NEAR(sum2.mean(), 2.0 * d.mean(), 0.01 * d.mean());

  Rng rng(13);
  std::vector<double> draws(100000);
  for (auto& v : draws) v = d.sample(rng) + d.sample(rng);
  // Compare a few quantiles.
  std::sort(draws.begin(), draws.end());
  for (double p : {0.1, 0.5, 0.9}) {
    const double mc =
        draws[static_cast<std::size_t>(p * static_cast<double>(draws.size() - 1))];
    EXPECT_NEAR(sum2.quantile(p), mc, 0.02 * mc) << "p=" << p;
  }
}

TEST(TabulatedDistributionTest, ConvolutionPowerScalesMeanLinearly) {
  GammaParetoDistribution d(paper_like_params());
  TabulatedDistribution tab(d, 0.0, 120000.0, 2048);
  for (std::size_t n : {1u, 2u, 5u, 20u}) {
    const auto sum = tab.convolve_power(n);
    EXPECT_NEAR(sum.mean(), static_cast<double>(n) * d.mean(),
                0.02 * static_cast<double>(n) * d.mean())
        << "n=" << n;
  }
}

TEST(TabulatedDistributionTest, AggregationNarrowsCoefficientOfVariation) {
  // The multiplexing story of Section 5: CoV of the N-source sum shrinks
  // like 1/sqrt(N).
  GammaParetoDistribution d(paper_like_params());
  TabulatedDistribution tab(d, 0.0, 120000.0, 2048);
  auto cov_of = [](const TabulatedDistribution& t) {
    const double q10 = t.quantile(0.1);
    const double q90 = t.quantile(0.9);
    return (q90 - q10) / t.mean();
  };
  const double spread1 = cov_of(tab.convolve_power(1));
  const double spread20 = cov_of(tab.convolve_power(20));
  EXPECT_LT(spread20, spread1 / 3.0);
}

}  // namespace
}  // namespace vbr::stats
