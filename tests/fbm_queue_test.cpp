// Tests for the Norros fBm storage model.
#include "vbr/net/fbm_queue.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "vbr/common/error.hpp"
#include "vbr/common/rng.hpp"

namespace vbr::net {
namespace {

FbmTrafficParams paper_like() {
  FbmTrafficParams p;
  p.mean_bytes = 27791.0;
  p.variance_bytes2 = 6254.0 * 6254.0;
  p.hurst = 0.8;
  return p;
}

TEST(FbmKappaTest, KnownValues) {
  // kappa(1/2) = sqrt(1/2 * 1/2)... H^H (1-H)^{1-H} at H = 0.5 is 0.5.
  EXPECT_NEAR(fbm_kappa(0.5), 0.5, 1e-12);
  EXPECT_NEAR(fbm_kappa(0.8), std::pow(0.8, 0.8) * std::pow(0.2, 0.2), 1e-12);
  EXPECT_THROW(fbm_kappa(1.0), vbr::InvalidArgument);
}

TEST(FbmFitTest, MatchesSampleMoments) {
  Rng rng(1);
  std::vector<double> x(10000);
  for (auto& v : x) v = std::max(0.0, rng.normal(27791.0, 6254.0));
  const auto params = fit_fbm_traffic(x, 0.8);
  EXPECT_NEAR(params.mean_bytes, 27791.0, 300.0);
  EXPECT_NEAR(std::sqrt(params.variance_bytes2), 6254.0, 200.0);
  EXPECT_DOUBLE_EQ(params.hurst, 0.8);
}

TEST(FbmSuperposeTest, MeansAndVariancesAdd) {
  const auto one = paper_like();
  const auto five = superpose(one, 5);
  EXPECT_DOUBLE_EQ(five.mean_bytes, 5.0 * one.mean_bytes);
  EXPECT_DOUBLE_EQ(five.variance_bytes2, 5.0 * one.variance_bytes2);
  EXPECT_DOUBLE_EQ(five.hurst, one.hurst);
}

TEST(FbmOverflowTest, BoundaryBehavior) {
  const auto traffic = paper_like();
  // At or below the mean rate the queue is unstable.
  EXPECT_DOUBLE_EQ(fbm_overflow_probability(traffic, traffic.mean_bytes, 1000.0), 1.0);
  // Overflow decreases with capacity and with buffer.
  const double c1 = traffic.mean_bytes * 1.2;
  const double c2 = traffic.mean_bytes * 1.5;
  EXPECT_GT(fbm_overflow_probability(traffic, c1, 10000.0),
            fbm_overflow_probability(traffic, c2, 10000.0));
  EXPECT_GT(fbm_overflow_probability(traffic, c1, 10000.0),
            fbm_overflow_probability(traffic, c1, 40000.0));
}

TEST(FbmRequiredCapacityTest, InvertsOverflowProbability) {
  const auto traffic = paper_like();
  for (double eps : {1e-3, 1e-6}) {
    for (double buffer : {5000.0, 50000.0, 500000.0}) {
      const double c = fbm_required_capacity(traffic, buffer, eps);
      EXPECT_GT(c, traffic.mean_bytes);
      EXPECT_NEAR(fbm_overflow_probability(traffic, c, buffer), eps, eps * 1e-6)
          << "eps=" << eps << " buffer=" << buffer;
    }
  }
}

TEST(FbmRequiredCapacityTest, BufferInsensitivityScalesWithH) {
  // The LRD lesson: required capacity falls only like b^{-(1-H)/H}. Going
  // from buffer b to 16b shaves a factor 16^{(1-H)/H} off the excess
  // capacity: 16x for H=0.5 but only ~2x for H=0.8.
  auto traffic = paper_like();
  const double eps = 1e-4;
  auto excess_ratio = [&](double h) {
    traffic.hurst = h;
    const double e1 = fbm_required_capacity(traffic, 10000.0, eps) - traffic.mean_bytes;
    const double e16 = fbm_required_capacity(traffic, 160000.0, eps) - traffic.mean_bytes;
    return e1 / e16;
  };
  EXPECT_NEAR(excess_ratio(0.5), 16.0, 0.01);
  EXPECT_NEAR(excess_ratio(0.8), std::pow(16.0, 0.25), 0.01);
  EXPECT_LT(excess_ratio(0.9), excess_ratio(0.6));
}

TEST(FbmRequiredCapacityTest, EconomyOfScale) {
  // Per-source capacity falls with N: the excess term grows like sqrt-ish
  // of N while the mean grows linearly.
  const auto one = paper_like();
  const double eps = 1e-4;
  const double buffer_per_source = 20000.0;
  double prev = 1e18;
  for (std::size_t n : {1u, 2u, 5u, 20u}) {
    const auto agg = superpose(one, n);
    const double c =
        fbm_required_capacity(agg, buffer_per_source * static_cast<double>(n), eps) /
        static_cast<double>(n);
    EXPECT_LT(c, prev) << "n=" << n;
    prev = c;
  }
  EXPECT_LT(prev, one.mean_bytes * 1.2);  // approaches the mean
}

TEST(FbmTest, Preconditions) {
  const auto traffic = paper_like();
  EXPECT_THROW(fbm_required_capacity(traffic, 0.0, 1e-3), vbr::InvalidArgument);
  EXPECT_THROW(fbm_required_capacity(traffic, 1000.0, 0.0), vbr::InvalidArgument);
  std::vector<double> one_point{1.0};
  EXPECT_THROW(fit_fbm_traffic(one_point, 0.8), vbr::InvalidArgument);
}

}  // namespace
}  // namespace vbr::net
