// Tests for detrended fluctuation analysis.
#include "vbr/stats/dfa.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "vbr/common/error.hpp"
#include "vbr/common/rng.hpp"
#include "vbr/model/davies_harte.hpp"

namespace vbr::stats {
namespace {

std::vector<double> fgn(std::size_t n, double h, std::uint64_t seed) {
  Rng rng(seed);
  model::DaviesHarteOptions opt;
  opt.hurst = h;
  return model::davies_harte(n, opt, rng);
}

TEST(DfaTest, WhiteNoiseGivesHalf) {
  Rng rng(1);
  std::vector<double> x(131072);
  for (auto& v : x) v = rng.normal();
  const auto result = dfa(x);
  EXPECT_NEAR(result.hurst, 0.5, 0.04);
  EXPECT_GT(result.fit.r_squared, 0.98);
}

class DfaHurstSweep : public ::testing::TestWithParam<double> {};

TEST_P(DfaHurstSweep, RecoversKnownH) {
  const double h = GetParam();
  const auto x = fgn(262144, h, 77);
  const auto result = dfa(x);
  EXPECT_NEAR(result.hurst, h, 0.06) << "H=" << h;
}

INSTANTIATE_TEST_SUITE_P(HurstGrid, DfaHurstSweep, ::testing::Values(0.6, 0.7, 0.8, 0.9));

TEST(DfaTest, FluctuationGrowsWithBoxSize) {
  const auto x = fgn(65536, 0.8, 3);
  const auto result = dfa(x);
  ASSERT_GE(result.points.size(), 5u);
  for (std::size_t i = 1; i < result.points.size(); ++i) {
    EXPECT_GT(result.points[i].box_size, result.points[i - 1].box_size);
    EXPECT_GT(result.points[i].fluctuation, result.points[i - 1].fluctuation);
  }
}

TEST(DfaTest, RobustToLinearTrend) {
  // The whole point of DFA: a deterministic ramp added to white noise must
  // not masquerade as long memory (variance-time would be fooled).
  Rng rng(4);
  std::vector<double> x(131072);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.normal() + 1e-5 * static_cast<double>(i);
  }
  DfaOptions opt;
  opt.max_box = 2048;  // trend negligible within boxes of this size
  const auto result = dfa(x, opt);
  EXPECT_NEAR(result.hurst, 0.5, 0.06);
}

TEST(DfaTest, AgreesWithOtherEstimatorsOnFgn) {
  const auto x = fgn(131072, 0.75, 5);
  const auto result = dfa(x);
  EXPECT_NEAR(result.hurst, 0.75, 0.06);
}

TEST(DfaTest, Preconditions) {
  std::vector<double> tiny(32, 1.0);
  EXPECT_THROW(dfa(tiny), vbr::InvalidArgument);
  std::vector<double> ok(1024, 1.0);
  DfaOptions bad;
  bad.min_box = 2;
  EXPECT_THROW(dfa(ok, bad), vbr::InvalidArgument);
}

}  // namespace
}  // namespace vbr::stats
