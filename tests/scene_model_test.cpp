// Unit tests for the scene (shot) structure model shared by the surrogate
// trace and the synthetic movie.
#include "vbr/trace/scene_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "vbr/common/error.hpp"
#include "vbr/common/math_util.hpp"

namespace vbr::trace {
namespace {

TEST(SceneModelTest, ParameterValidation) {
  SceneModelParams params;
  params.mean_scene_frames = 0.5;
  EXPECT_THROW(SceneModel{params}, vbr::InvalidArgument);
  params = {};
  params.pareto_shape = 1.0;
  EXPECT_THROW(SceneModel{params}, vbr::InvalidArgument);
  params = {};
  params.alternation_prob = 1.5;
  EXPECT_THROW(SceneModel{params}, vbr::InvalidArgument);
}

TEST(SceneModelTest, ScenesTileTheMovieExactly) {
  SceneModel model;
  vbr::Rng rng(1);
  const std::size_t total = 50000;
  const auto scenes = model.generate(total, rng);
  ASSERT_FALSE(scenes.empty());
  std::size_t expected_start = 0;
  for (const auto& s : scenes) {
    EXPECT_EQ(s.start_frame, expected_start);
    EXPECT_GE(s.length, 1u);
    expected_start += s.length;
  }
  EXPECT_EQ(expected_start, total);
}

TEST(SceneModelTest, MeanSceneLengthRoughlyMatchesParameter) {
  SceneModelParams params;
  params.mean_scene_frames = 120.0;
  params.alternation_prob = 0.0;  // isolate the plain Pareto draw
  SceneModel model(params);
  vbr::Rng rng(2);
  const auto scenes = model.generate(500000, rng);
  double mean_len = 0.0;
  for (const auto& s : scenes) mean_len += static_cast<double>(s.length);
  mean_len /= static_cast<double>(scenes.size());
  // Heavy-tailed lengths converge slowly; allow a generous band.
  EXPECT_GT(mean_len, 60.0);
  EXPECT_LT(mean_len, 240.0);
}

TEST(SceneModelTest, SceneLengthsAreHeavyTailed) {
  SceneModel model;
  vbr::Rng rng(3);
  const auto scenes = model.generate(500000, rng);
  std::size_t longest = 0;
  for (const auto& s : scenes) longest = std::max(longest, s.length);
  // A Pareto(1.5) shot-length law produces shots far beyond the mean.
  EXPECT_GT(longest, 1000u);
}

TEST(SceneModelTest, AlternationReusesTextures) {
  SceneModelParams params;
  params.alternation_prob = 1.0;  // every run is a dialog alternation
  SceneModel model(params);
  vbr::Rng rng(4);
  const auto scenes = model.generate(20000, rng);
  // Count consecutive pairs with equal texture at distance 2 (A B A B ...).
  std::size_t aba = 0;
  for (std::size_t i = 0; i + 2 < scenes.size(); ++i) {
    if (scenes[i].texture_id == scenes[i + 2].texture_id) ++aba;
  }
  EXPECT_GT(aba, scenes.size() / 4);
}

TEST(SceneModelTest, ComplexityFollowsActEnvelope) {
  SceneModel model;
  // The envelope is smooth, positive, and varies by the configured swing.
  const std::size_t total = 171000;
  double lo = 1e9;
  double hi = 0.0;
  for (std::size_t f = 0; f < total; f += 1000) {
    const double env = model.act_envelope(f, total);
    EXPECT_GT(env, 0.0);
    lo = std::min(lo, env);
    hi = std::max(hi, env);
  }
  EXPECT_GT(hi / lo, 1.2);
  EXPECT_LT(hi / lo, 4.0);
}

TEST(SceneModelTest, LevelTrackIsPiecewiseConstant) {
  SceneModel model;
  vbr::Rng rng(5);
  const std::size_t total = 10000;
  const auto scenes = model.generate(total, rng);
  const auto track = scene_level_track(scenes, total);
  ASSERT_EQ(track.size(), total);
  for (const auto& s : scenes) {
    const std::size_t end = std::min(total, s.start_frame + s.length);
    for (std::size_t f = s.start_frame; f < end; ++f) {
      EXPECT_DOUBLE_EQ(track[f], s.complexity);
    }
  }
}

TEST(SceneModelTest, DeterministicGivenSeed) {
  SceneModel model;
  vbr::Rng rng1(9);
  vbr::Rng rng2(9);
  const auto a = model.generate(5000, rng1);
  const auto b = model.generate(5000, rng2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].start_frame, b[i].start_frame);
    EXPECT_EQ(a[i].length, b[i].length);
    EXPECT_DOUBLE_EQ(a[i].complexity, b[i].complexity);
  }
}

}  // namespace
}  // namespace vbr::trace
