// Unit tests for the periodogram (Fig. 8) and its low-frequency slope
// estimator.
#include "vbr/stats/periodogram.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "vbr/common/error.hpp"
#include "vbr/common/math_util.hpp"
#include "vbr/common/rng.hpp"
#include "vbr/model/davies_harte.hpp"

namespace vbr::stats {
namespace {

TEST(PeriodogramTest, FrequenciesAreFourierGrid) {
  std::vector<double> x(100, 0.0);
  x[3] = 1.0;
  const auto pg = periodogram(x);
  ASSERT_EQ(pg.frequency.size(), 49u);  // floor((n-1)/2)
  for (std::size_t k = 0; k < pg.frequency.size(); ++k) {
    EXPECT_NEAR(pg.frequency[k],
                2.0 * std::numbers::pi * static_cast<double>(k + 1) / 100.0, 1e-12);
  }
}

TEST(PeriodogramTest, PureToneConcentratesPower) {
  const std::size_t n = 256;
  const std::size_t bin = 10;
  std::vector<double> x(n);
  for (std::size_t t = 0; t < n; ++t) {
    x[t] = std::cos(2.0 * std::numbers::pi * static_cast<double>(bin * t) /
                    static_cast<double>(n));
  }
  const auto pg = periodogram(x);
  std::size_t argmax = 0;
  for (std::size_t k = 1; k < pg.power.size(); ++k) {
    if (pg.power[k] > pg.power[argmax]) argmax = k;
  }
  EXPECT_EQ(argmax, bin - 1);  // frequencies start at k=1
  // Everything else is numerically zero.
  for (std::size_t k = 0; k < pg.power.size(); ++k) {
    if (k != argmax) {
      EXPECT_NEAR(pg.power[k], 0.0, 1e-10);
    }
  }
}

TEST(PeriodogramTest, TotalPowerMatchesVariance) {
  // Sum of periodogram over all Fourier frequencies ~ variance * n / (2 pi n)
  // ... integral check: 2 * sum_k I(w_k) * (2 pi / n) ~ variance.
  Rng rng(5);
  std::vector<double> x(4096);
  for (auto& v : x) v = rng.normal();
  const auto pg = periodogram(x);
  double integral = 0.0;
  for (double p : pg.power) integral += p;
  integral *= 2.0 * (2.0 * std::numbers::pi / static_cast<double>(x.size()));
  EXPECT_NEAR(integral, sample_variance(x), 0.1);
}

TEST(PeriodogramTest, WhiteNoiseSpectrumIsFlat) {
  Rng rng(6);
  std::vector<double> x(65536);
  for (auto& v : x) v = rng.normal();
  const auto pg = log_binned(periodogram(x), 12);
  // Mean power should be comparable in the lowest and highest bins.
  const double lo = pg.power.front();
  const double hi = pg.power.back();
  EXPECT_LT(std::abs(std::log10(lo / hi)), 0.4);
  EXPECT_NEAR(low_frequency_slope(periodogram(x), 0.2), 0.0, 0.25);
}

TEST(PeriodogramTest, LrdSpectrumBlowsUpAtLowFrequency) {
  // fGn with H = 0.8 has f(w) ~ w^{1-2H} = w^{-0.6} near zero.
  Rng rng(7);
  model::DaviesHarteOptions opt;
  opt.hurst = 0.8;
  const auto x = model::davies_harte(65536, opt, rng);
  const double alpha = low_frequency_slope(periodogram(x), 0.1);
  EXPECT_NEAR(alpha, 0.6, 0.2);
  // Implied Hurst: H = (1 + alpha) / 2 ~ 0.8.
  EXPECT_NEAR((1.0 + alpha) / 2.0, 0.8, 0.1);
}

TEST(LogBinnedTest, ReducesPointCountAndPreservesRange) {
  Rng rng(8);
  std::vector<double> x(10000);
  for (auto& v : x) v = rng.normal();
  const auto pg = periodogram(x);
  const auto binned = log_binned(pg, 20);
  EXPECT_LE(binned.frequency.size(), 20u);
  EXPECT_GE(binned.frequency.size(), 10u);
  EXPECT_GE(binned.frequency.front(), pg.frequency.front());
  EXPECT_LE(binned.frequency.back(), pg.frequency.back());
  for (std::size_t i = 1; i < binned.frequency.size(); ++i) {
    EXPECT_GT(binned.frequency[i], binned.frequency[i - 1]);
  }
}

TEST(PeriodogramTest, Preconditions) {
  std::vector<double> tiny{1.0, 2.0};
  EXPECT_THROW(periodogram(tiny), vbr::InvalidArgument);
}

}  // namespace
}  // namespace vbr::stats
