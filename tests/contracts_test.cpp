// Tests for the numeric-contract layer in vbr/common/error.hpp: that each
// macro tier throws the documented exception with a useful message, that the
// instrumented library entry points reject poisoned input, and that
// VBR_DCHECK really compiles out of Release builds.
#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "vbr/common/error.hpp"
#include "vbr/common/rng.hpp"
#include "vbr/model/davies_harte.hpp"
#include "vbr/net/fluid_queue.hpp"
#include "vbr/stats/whittle.hpp"
#include "vbr/trace/trace_io.hpp"

namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// VBR_DCHECK_ENABLED must track the build mode exactly: on in Debug, on
// whenever a sanitizer preset forces it, off in a plain Release build.
#if defined(VBR_FORCE_DCHECKS)
static_assert(VBR_DCHECK_ENABLED == 1, "VBR_FORCE_DCHECKS must enable VBR_DCHECK");
#elif defined(NDEBUG)
static_assert(VBR_DCHECK_ENABLED == 0, "Release without VBR_FORCE_DCHECKS must compile VBR_DCHECK out");
#else
static_assert(VBR_DCHECK_ENABLED == 1, "Debug builds must keep VBR_DCHECK live");
#endif

TEST(ContractMacros, EnsureThrowsInvalidArgument) {
  EXPECT_NO_THROW(VBR_ENSURE(1 + 1 == 2, "arithmetic works"));
  EXPECT_THROW(VBR_ENSURE(false, "boundary violated"), vbr::InvalidArgument);
  try {
    VBR_ENSURE(false, "boundary violated");
  } catch (const vbr::InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("boundary violated"), std::string::npos);
  }
}

TEST(ContractMacros, CheckFiniteThrowsNumericalErrorWithValue) {
  const double ok = 3.5;
  EXPECT_NO_THROW(VBR_CHECK_FINITE(ok, "sample"));
  const double bad = kNan;
  EXPECT_THROW(VBR_CHECK_FINITE(bad, "sample"), vbr::NumericalError);
  const double inf = kInf;
  try {
    VBR_CHECK_FINITE(inf, "sample");
    FAIL() << "VBR_CHECK_FINITE(inf) did not throw";
  } catch (const vbr::NumericalError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("sample"), std::string::npos);
    EXPECT_NE(what.find("inf"), std::string::npos) << what;
  }
}

TEST(ContractMacros, CheckProbRejectsOutOfUnitInterval) {
  const double half = 0.5;
  EXPECT_NO_THROW(VBR_CHECK_PROB(half, "loss fraction"));
  const double zero = 0.0;
  const double one = 1.0;
  EXPECT_NO_THROW(VBR_CHECK_PROB(zero, "loss fraction"));
  EXPECT_NO_THROW(VBR_CHECK_PROB(one, "loss fraction"));
  const double over = 1.0 + 1e-9;
  EXPECT_THROW(VBR_CHECK_PROB(over, "loss fraction"), vbr::NumericalError);
  const double negative = -0.25;
  EXPECT_THROW(VBR_CHECK_PROB(negative, "loss fraction"), vbr::NumericalError);
  const double nan = kNan;
  EXPECT_THROW(VBR_CHECK_PROB(nan, "loss fraction"), vbr::NumericalError);
}

TEST(ContractMacros, CheckRangeIsInclusive) {
  const double mid = 0.7;
  EXPECT_NO_THROW(VBR_CHECK_RANGE(mid, 0.0, 1.0, "H"));
  const double lo = 0.0;
  const double hi = 1.0;
  EXPECT_NO_THROW(VBR_CHECK_RANGE(lo, 0.0, 1.0, "H"));
  EXPECT_NO_THROW(VBR_CHECK_RANGE(hi, 0.0, 1.0, "H"));
  const double below = -0.1;
  const double above = 1.5;
  EXPECT_THROW(VBR_CHECK_RANGE(below, 0.0, 1.0, "H"), vbr::NumericalError);
  EXPECT_THROW(VBR_CHECK_RANGE(above, 0.0, 1.0, "H"), vbr::NumericalError);
}

TEST(ContractMacros, CheckFiniteSeriesReportsOffendingIndex) {
  std::vector<double> data(16, 1.0);
  EXPECT_NO_THROW(vbr::check_finite_series(data, "series"));
  data[7] = kNan;
  try {
    vbr::check_finite_series(data, "series");
    FAIL() << "check_finite_series accepted a NaN";
  } catch (const vbr::NumericalError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("series"), std::string::npos);
    EXPECT_NE(what.find('7'), std::string::npos) << what;
  }
}

// The disabled form must not evaluate its argument: a side effect inside
// the condition is the observable difference between "checked and passed"
// and "compiled out".
TEST(ContractMacros, DcheckEvaluationMatchesBuildMode) {
  int evaluations = 0;
  try {
    VBR_DCHECK((++evaluations, true), "condition with a side effect");
  } catch (const vbr::Error&) {
  }
#if VBR_DCHECK_ENABLED
  EXPECT_EQ(evaluations, 1);
  EXPECT_THROW(VBR_DCHECK(false, "must fire when enabled"), vbr::InvalidArgument);
#else
  EXPECT_EQ(evaluations, 0);
  EXPECT_NO_THROW(VBR_DCHECK(false, "must be compiled out"));
#endif
}

// --- instrumented library boundaries ---

TEST(InstrumentedBoundaries, WhittleRejectsNonFiniteSeries) {
  vbr::Rng rng(42);
  std::vector<double> data(512);
  for (auto& v : data) v = rng.normal();
  EXPECT_NO_THROW(vbr::stats::whittle_estimate(data));
  data[100] = kNan;
  EXPECT_THROW(vbr::stats::whittle_estimate(data), vbr::NumericalError);
  data[100] = kInf;
  EXPECT_THROW(vbr::stats::local_whittle_estimate(data), vbr::NumericalError);
}

TEST(InstrumentedBoundaries, DaviesHarteRejectsHurstOutsideOpenUnitInterval) {
  vbr::Rng rng(7);
  vbr::model::DaviesHarteOptions options;
  options.hurst = 1.0;
  EXPECT_THROW(vbr::model::davies_harte(64, options, rng), vbr::InvalidArgument);
  options.hurst = 0.0;
  EXPECT_THROW(vbr::model::davies_harte(64, options, rng), vbr::InvalidArgument);
  options.hurst = 0.8;
  EXPECT_NO_THROW(vbr::model::davies_harte(64, options, rng));
}

TEST(InstrumentedBoundaries, FluidQueueRejectsBadConstruction) {
  EXPECT_THROW(vbr::net::FluidQueue(-1.0, 100.0), vbr::InvalidArgument);
  EXPECT_THROW(vbr::net::FluidQueue(0.0, 100.0), vbr::InvalidArgument);
  EXPECT_THROW(vbr::net::FluidQueue(100.0, -1.0), vbr::InvalidArgument);
  EXPECT_THROW(vbr::net::FluidQueue(kInf, 100.0), vbr::NumericalError);
  EXPECT_THROW(vbr::net::FluidQueue(100.0, kNan), vbr::NumericalError);
  vbr::net::FluidQueue queue(100.0, 50.0);
  EXPECT_THROW(queue.offer(-1.0, 1.0), vbr::InvalidArgument);
  EXPECT_THROW(queue.offer(10.0, 0.0), vbr::InvalidArgument);
}

// --- hardened trace parsing (stream overloads, no filesystem needed) ---

TEST(TraceStreamParsing, AsciiRejectsNegativeAndNonFiniteSamples) {
  std::istringstream negative("# dt_seconds 0.04\n100\n-5\n");
  EXPECT_THROW(vbr::trace::read_ascii(negative, "test"), vbr::IoError);
  std::istringstream nan("# dt_seconds 0.04\n100\nnan\n");
  EXPECT_THROW(vbr::trace::read_ascii(nan, "test"), vbr::IoError);
  std::istringstream bad_dt("# dt_seconds banana\n100\n");
  EXPECT_THROW(vbr::trace::read_ascii(bad_dt, "test"), vbr::IoError);
  std::istringstream zero_dt("# dt_seconds 0\n100\n");
  EXPECT_THROW(vbr::trace::read_ascii(zero_dt, "test"), vbr::IoError);
}

TEST(TraceStreamParsing, BinaryRejectsForgedSampleCountWithoutAllocating) {
  // Header claims 2^40 samples but only two follow: must throw IoError on
  // the first short read, never attempt an 8 TiB allocation.
  std::ostringstream out;
  out.write("VBRTRC01", 8);
  const double dt = 1.0 / 24.0;
  out.write(reinterpret_cast<const char*>(&dt), sizeof dt);
  const std::uint32_t unit_len = 5;
  out.write(reinterpret_cast<const char*>(&unit_len), sizeof unit_len);
  out.write("bytes", 5);
  const std::uint64_t forged_n = std::uint64_t{1} << 40;
  out.write(reinterpret_cast<const char*>(&forged_n), sizeof forged_n);
  const double sample = 1.0;
  out.write(reinterpret_cast<const char*>(&sample), sizeof sample);
  out.write(reinterpret_cast<const char*>(&sample), sizeof sample);

  std::istringstream in(out.str());
  try {
    vbr::trace::read_binary(in, "forged");
    FAIL() << "forged sample count accepted";
  } catch (const vbr::IoError& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos) << e.what();
  }
}

TEST(TraceStreamParsing, BinaryRejectsNegativeSampleAndBadMagic) {
  std::ostringstream out;
  out.write("VBRTRC01", 8);
  const double dt = 0.04;
  out.write(reinterpret_cast<const char*>(&dt), sizeof dt);
  const std::uint32_t unit_len = 0;
  out.write(reinterpret_cast<const char*>(&unit_len), sizeof unit_len);
  const std::uint64_t n = 1;
  out.write(reinterpret_cast<const char*>(&n), sizeof n);
  const double negative = -12.0;
  out.write(reinterpret_cast<const char*>(&negative), sizeof negative);
  std::istringstream in(out.str());
  EXPECT_THROW(vbr::trace::read_binary(in, "neg"), vbr::IoError);

  std::istringstream garbage("GARBAGE!rest");
  EXPECT_THROW(vbr::trace::read_binary(garbage, "magic"), vbr::IoError);
}

}  // namespace
