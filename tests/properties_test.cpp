// Cross-cutting property tests: invariants that must hold over whole
// parameter families, checked with parameterized sweeps.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>

#include "vbr/codec/intraframe_coder.hpp"
#include "vbr/codec/synthetic_movie.hpp"
#include "vbr/common/math_util.hpp"
#include "vbr/common/rng.hpp"
#include "vbr/model/davies_harte.hpp"
#include "vbr/model/marginal_transform.hpp"
#include "vbr/net/fluid_queue.hpp"
#include "vbr/net/qos.hpp"
#include "vbr/net/shaper.hpp"
#include "vbr/stats/gamma_pareto.hpp"
#include "vbr/stats/whittle.hpp"

namespace {

// ---------------------------------------------------------------------
// Property: the Gamma/Pareto hybrid is a valid distribution for any tail
// slope — continuous at the splice, monotone CDF, quantile inverse.
class GammaParetoSlopeSweep : public ::testing::TestWithParam<double> {};

TEST_P(GammaParetoSlopeSweep, HybridIsAValidDistribution) {
  const double slope = GetParam();
  vbr::stats::GammaParetoParams params;
  params.mu_gamma = 27791.0;
  params.sigma_gamma = 6254.0;
  params.tail_slope = slope;
  const vbr::stats::GammaParetoDistribution d(params);

  // CDF continuity at the splice.
  const double x_th = d.threshold();
  EXPECT_NEAR(d.cdf(x_th * (1 - 1e-9)), d.cdf(x_th * (1 + 1e-9)), 1e-6);
  // Monotone CDF and quantile round trip across the whole range.
  double prev_cdf = -1.0;
  for (double p : {0.001, 0.05, 0.3, 0.6, 0.9, 0.99, 0.9999}) {
    const double x = d.quantile(p);
    const double c = d.cdf(x);
    EXPECT_NEAR(c, p, 1e-7) << "slope=" << slope << " p=" << p;
    EXPECT_GT(c, prev_cdf);
    prev_cdf = c;
  }
  // The log-log CCDF slope beyond the splice equals the parameter. Keep the
  // probe span narrow so steep tails don't underflow the CCDF.
  const double x1 = x_th * 1.1;
  const double x2 = x_th * 1.4;
  ASSERT_GT(d.ccdf(x2), 0.0);
  const double measured =
      (std::log(d.ccdf(x2)) - std::log(d.ccdf(x1))) / (std::log(x2) - std::log(x1));
  EXPECT_NEAR(measured, -slope, 1e-4 * slope);
}

INSTANTIATE_TEST_SUITE_P(TailSlopes, GammaParetoSlopeSweep,
                         ::testing::Values(3.0, 5.0, 8.0, 12.0, 20.0, 35.0));

// ---------------------------------------------------------------------
// Property: coarser quantization always means fewer coded bytes and lower
// fidelity, for any picture content.
class QuantizerSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QuantizerSweep, RateAndDistortionMonotoneInStep) {
  vbr::codec::MovieConfig config;
  config.width = 64;
  config.height = 64;
  config.seed = GetParam();
  const vbr::codec::SyntheticMovie movie(config, 3);
  const auto frame = movie.frame(1);

  // PSNR monotonicity only holds from step 8 upward: the paper's 8-bit
  // levels clamp at +-128, and an 8x8 orthonormal DCT produces DC values up
  // to 8 * 127, so steps below 8 clip large coefficients and *hurt* quality
  // — a real characteristic of fixed 8-bit quantization, asserted below.
  std::size_t prev_bytes = SIZE_MAX;
  double prev_psnr = 1e18;
  for (double step : {8.0, 16.0, 32.0, 64.0}) {
    vbr::codec::CoderConfig coder_config;
    coder_config.quantizer_step = step;
    coder_config.slices_per_frame = 8;
    const vbr::codec::IntraframeCoder coder(coder_config);
    const auto encoded = coder.encode(frame);
    const double quality = vbr::codec::psnr(frame, coder.decode(encoded));
    EXPECT_LE(encoded.total_bytes(), prev_bytes) << "step " << step;
    EXPECT_LE(quality, prev_psnr + 0.5) << "step " << step;  // small slack for rounding
    prev_bytes = encoded.total_bytes();
    prev_psnr = quality;
  }
}

TEST(QuantizerClippingTest, SubEightStepsClipLargeCoefficients) {
  // Documented 8-bit-level saturation: on high-contrast content, step 2
  // clips the DC range and decodes *worse* than step 8.
  vbr::codec::MovieConfig config;
  config.width = 64;
  config.height = 64;
  config.seed = 99;
  const vbr::codec::SyntheticMovie movie(config, 3);
  const auto frame = movie.frame(1);
  auto psnr_at = [&](double step) {
    vbr::codec::CoderConfig c;
    c.quantizer_step = step;
    c.slices_per_frame = 8;
    const vbr::codec::IntraframeCoder coder(c);
    return vbr::codec::psnr(frame, coder.decode(coder.encode(frame)));
  };
  EXPECT_LT(psnr_at(2.0), psnr_at(8.0));
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantizerSweep, ::testing::Values(1, 17, 23, 99));

// ---------------------------------------------------------------------
// Property: exact self-similarity — aggregating fGn preserves H at every
// level (Section 3.2.2's definition, measured through Whittle/fGn).
class SelfSimilaritySweep : public ::testing::TestWithParam<double> {};

TEST_P(SelfSimilaritySweep, AggregationPreservesHurst) {
  const double h = GetParam();
  vbr::Rng rng(1234);
  vbr::model::DaviesHarteOptions options;
  options.hurst = h;
  const auto x = vbr::model::davies_harte(131072, options, rng);
  for (std::size_t m : {1u, 4u, 16u, 64u}) {
    const auto agg = vbr::block_means(x, m);
    const double estimated =
        vbr::stats::whittle_estimate(agg, vbr::stats::SpectralModel::kFgn).hurst;
    EXPECT_NEAR(estimated, h, 0.06) << "H=" << h << " m=" << m;
  }
}

INSTANTIATE_TEST_SUITE_P(HurstGrid, SelfSimilaritySweep, ::testing::Values(0.6, 0.75, 0.9));

// ---------------------------------------------------------------------
// Property: queueing invariants over random workloads — WES dominates the
// overall loss rate; loss is monotone in capacity and buffer; byte
// conservation holds.
class QueueInvariantSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QueueInvariantSweep, WesDominatesAndMonotonicityHolds) {
  vbr::Rng rng(GetParam());
  std::vector<double> arrivals(4000);
  for (auto& v : arrivals) v = std::max(0.0, rng.normal(27791.0, 9000.0));
  const double dt = 1.0 / 24.0;
  const double mean_rate = vbr::sample_mean(arrivals) / dt;

  double prev_loss = 1.1;
  for (double factor : {0.95, 1.0, 1.05, 1.15, 1.4}) {
    const auto result = vbr::net::run_fluid_queue(arrivals, dt, mean_rate * factor,
                                                  mean_rate * 0.002, true);
    // Conservation: served = arrived - lost - queued within capacity budget.
    EXPECT_GE(result.arrived_bytes, result.lost_bytes);
    // WES >= overall.
    const double wes = vbr::net::worst_errored_second(result.intervals, 24);
    EXPECT_GE(wes, result.loss_rate() - 1e-12) << "factor " << factor;
    // Monotone in capacity.
    EXPECT_LE(result.loss_rate(), prev_loss + 1e-12) << "factor " << factor;
    prev_loss = result.loss_rate();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueueInvariantSweep, ::testing::Values(11, 22, 33, 44, 55));

// ---------------------------------------------------------------------
// Property: the marginal transform preserves ordering for any target
// distribution (monotonicity is what protects H).
class TransformTargetSweep : public ::testing::TestWithParam<double> {};

TEST_P(TransformTargetSweep, MapIsStrictlyIncreasing) {
  vbr::stats::GammaParetoParams params;
  params.mu_gamma = 27791.0;
  params.sigma_gamma = 6254.0;
  params.tail_slope = GetParam();
  const vbr::stats::GammaParetoDistribution target(params);
  const vbr::model::TabulatedMarginalMap map(target, 2048);
  double prev = 0.0;
  for (double z = -6.0; z <= 6.0; z += 0.05) {
    const double y = map(z);
    if (z > -6.0) {
      EXPECT_GT(y, prev) << "z=" << z;
    }
    prev = y;
  }
}

INSTANTIATE_TEST_SUITE_P(TailSlopes, TransformTargetSweep,
                         ::testing::Values(4.0, 9.0, 13.08, 25.0));

// ---------------------------------------------------------------------
// Property: CBR smoothing delay is monotone non-increasing in the channel
// rate for any trace.
class SmootherSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SmootherSweep, DelayMonotoneInRate) {
  vbr::Rng rng(GetParam());
  std::vector<double> frames(3000);
  double level = 27791.0;
  for (auto& v : frames) {
    if (rng.uniform() < 0.02) level = rng.uniform(15000.0, 45000.0);
    v = std::max(100.0, level + rng.normal(0.0, 4000.0));
  }
  const double dt = 1.0 / 24.0;
  const double mean_rate = vbr::sample_mean(frames) / dt;
  double prev_delay = 1e18;
  for (double factor : {1.01, 1.05, 1.15, 1.4, 2.0, 3.0}) {
    const auto r = vbr::net::smooth_to_cbr(frames, dt, mean_rate * factor);
    EXPECT_LE(r.max_delay_seconds, prev_delay + 1e-12) << "factor " << factor;
    prev_delay = r.max_delay_seconds;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmootherSweep, ::testing::Values(3, 13, 31));

}  // namespace
