// Tests for the goodness-of-fit toolkit (KS, chi-square, Q-Q).
#include "vbr/stats/goodness_of_fit.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "vbr/common/error.hpp"
#include "vbr/common/rng.hpp"
#include "vbr/stats/gamma_pareto.hpp"

namespace vbr::stats {
namespace {

TEST(KolmogorovTest, SurvivalFunctionKnownValues) {
  EXPECT_DOUBLE_EQ(kolmogorov_survival(0.0), 1.0);
  // Classic critical values: Q(1.36) ~ 0.05, Q(1.63) ~ 0.01.
  EXPECT_NEAR(kolmogorov_survival(1.36), 0.05, 0.002);
  EXPECT_NEAR(kolmogorov_survival(1.63), 0.01, 0.001);
  EXPECT_LT(kolmogorov_survival(3.0), 1e-6);
}

TEST(KsTest, CorrectModelGetsHighPValue) {
  Rng rng(1);
  NormalDistribution model(10.0, 2.0);
  std::vector<double> data(5000);
  for (auto& v : data) v = model.sample(rng);
  const auto result = ks_test(data, model);
  EXPECT_LT(result.statistic, 0.03);
  EXPECT_GT(result.p_value, 0.01);
}

TEST(KsTest, WrongModelGetsRejected) {
  Rng rng(2);
  NormalDistribution truth(10.0, 2.0);
  NormalDistribution wrong(11.0, 2.0);  // half-sigma shift
  std::vector<double> data(5000);
  for (auto& v : data) v = truth.sample(rng);
  const auto result = ks_test(data, wrong);
  EXPECT_GT(result.statistic, 0.08);
  EXPECT_LT(result.p_value, 1e-6);
}

TEST(KsTest, RanksTailModelsLikeFigFour) {
  // Gamma/Pareto data: the hybrid must beat the pure-Gamma fit, which must
  // beat the Normal — the quantitative version of Fig. 4's ordering.
  GammaParetoParams params;
  params.mu_gamma = 27791.0;
  params.sigma_gamma = 6254.0;
  params.tail_slope = 9.0;
  const GammaParetoDistribution truth(params);
  Rng rng(3);
  std::vector<double> data(20000);
  for (auto& v : data) v = truth.sample(rng);

  const double d_hybrid = ks_test(data, truth).statistic;
  const double d_gamma = ks_test(data, GammaDistribution::fit(data)).statistic;
  const double d_normal = ks_test(data, NormalDistribution::fit(data)).statistic;
  EXPECT_LT(d_hybrid, d_gamma);
  EXPECT_LT(d_gamma, d_normal);
}

TEST(ChiSquareTest, CorrectModelAcceptable) {
  Rng rng(4);
  GammaDistribution model(5.0, 0.01);
  std::vector<double> data(10000);
  for (auto& v : data) v = model.sample(rng);
  const auto result = chi_square_test(data, model, 20, 2);
  EXPECT_EQ(result.degrees_of_freedom, 17u);
  // Statistic should be near its dof; p-value comfortably non-tiny.
  EXPECT_LT(result.statistic, 40.0);
  EXPECT_GT(result.p_value, 1e-3);
}

TEST(ChiSquareTest, WrongModelBlowsUp) {
  Rng rng(5);
  GammaDistribution truth(5.0, 0.01);
  NormalDistribution wrong(truth.mean(), std::sqrt(truth.variance()));
  std::vector<double> data(10000);
  for (auto& v : data) v = truth.sample(rng);
  const auto result = chi_square_test(data, wrong, 20, 2);
  EXPECT_GT(result.statistic, 100.0);
  EXPECT_LT(result.p_value, 1e-10);
}

TEST(ChiSquareTest, Preconditions) {
  std::vector<double> data(100, 1.0);
  NormalDistribution model(0.0, 1.0);
  EXPECT_THROW(chi_square_test(data, model, 2, 0), vbr::InvalidArgument);
  EXPECT_THROW(chi_square_test(data, model, 30, 0), vbr::InvalidArgument);
  EXPECT_THROW(chi_square_test(data, model, 10, 9), vbr::InvalidArgument);
}

TEST(QqPlotTest, PerfectFitLiesOnDiagonal) {
  Rng rng(6);
  NormalDistribution model(5.0, 1.0);
  std::vector<double> data(50000);
  for (auto& v : data) v = model.sample(rng);
  const auto plot = qq_plot(data, model, 20);
  ASSERT_EQ(plot.probability.size(), 20u);
  for (std::size_t i = 2; i + 2 < plot.probability.size(); ++i) {  // skip extremes
    EXPECT_NEAR(plot.empirical_quantile[i], plot.model_quantile[i], 0.05)
        << "p=" << plot.probability[i];
  }
}

TEST(QqPlotTest, LightTailedModelBendsUpperPoints) {
  // Heavy-tailed data vs a Normal fit: the top empirical quantiles exceed
  // the model quantiles — the Fig. 4 divergence in Q-Q form.
  Rng rng(7);
  ParetoDistribution truth(1000.0, 3.0);
  std::vector<double> data(50000);
  for (auto& v : data) v = truth.sample(rng);
  const auto normal = NormalDistribution::fit(data);
  const auto plot = qq_plot(data, normal, 100);
  EXPECT_GT(plot.empirical_quantile.back(), 1.5 * plot.model_quantile.back());
}

}  // namespace
}  // namespace vbr::stats
