// Tests for the two Gaussian LRD generators: Hosking's exact O(n^2)
// recursion (Section 4.1) and Davies-Harte circulant embedding. The key
// cross-check: both produce realizations whose sample ACF matches the
// target fARIMA/fGn autocorrelation and whose estimated H matches the
// input.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "vbr/common/error.hpp"
#include "vbr/common/math_util.hpp"
#include "vbr/common/rng.hpp"
#include "vbr/model/davies_harte.hpp"
#include "vbr/model/fgn_acf.hpp"
#include "vbr/model/hosking.hpp"
#include "vbr/stats/autocorrelation.hpp"
#include "vbr/stats/whittle.hpp"

namespace vbr::model {
namespace {

TEST(HoskingTest, DeterministicGivenSeed) {
  HoskingOptions opt;
  opt.hurst = 0.8;
  Rng rng1(5);
  Rng rng2(5);
  const auto a = hosking_farima(500, opt, rng1);
  const auto b = hosking_farima(500, opt, rng2);
  EXPECT_EQ(a, b);
}

TEST(HoskingTest, MarginalMomentsMatch) {
  HoskingOptions opt;
  opt.hurst = 0.75;
  opt.variance = 4.0;
  Rng rng(7);
  const auto x = hosking_farima(30000, opt, rng);
  EXPECT_NEAR(sample_mean(x), 0.0, 0.4);  // LRD mean converges slowly
  EXPECT_NEAR(sample_variance(x), 4.0, 0.5);
}

TEST(HoskingTest, SampleAcfMatchesEqSix) {
  HoskingOptions opt;
  opt.hurst = 0.8;
  Rng rng(11);
  const auto x = hosking_farima(60000, opt, rng);
  const auto sample_acf = stats::autocorrelation(x, 20);
  const auto target = farima_acf(0.8, 20);
  for (std::size_t k = 1; k <= 10; ++k) {
    EXPECT_NEAR(sample_acf[k], target[k], 0.05) << "lag " << k;
  }
}

TEST(HoskingTest, InnovationVarianceDecreasesMonotonically) {
  HoskingOptions opt;
  opt.hurst = 0.8;
  HoskingGenerator gen(opt, Rng(13));
  gen.next();
  double prev = gen.innovation_variance();
  for (int i = 0; i < 200; ++i) {
    gen.next();
    EXPECT_LE(gen.innovation_variance(), prev + 1e-12);
    prev = gen.innovation_variance();
    EXPECT_GT(prev, 0.0);
  }
}

TEST(HoskingTest, WhittleRecoversInputH) {
  HoskingOptions opt;
  opt.hurst = 0.7;
  Rng rng(17);
  const auto x = hosking_farima(32768, opt, rng);
  EXPECT_NEAR(stats::whittle_estimate(x).hurst, 0.7, 0.04);
}

TEST(HoskingTest, RejectsInvalidOptions) {
  Rng rng(1);
  HoskingOptions opt;
  opt.hurst = 1.0;
  EXPECT_THROW(hosking_farima(10, opt, rng), vbr::InvalidArgument);
  opt.hurst = 0.8;
  opt.variance = 0.0;
  EXPECT_THROW(hosking_farima(10, opt, rng), vbr::InvalidArgument);
}

TEST(DaviesHarteTest, DeterministicGivenSeed) {
  DaviesHarteOptions opt;
  opt.hurst = 0.8;
  Rng rng1(5);
  Rng rng2(5);
  EXPECT_EQ(davies_harte(1000, opt, rng1), davies_harte(1000, opt, rng2));
}

TEST(DaviesHarteTest, MarginalMomentsMatch) {
  DaviesHarteOptions opt;
  opt.hurst = 0.8;
  opt.variance = 9.0;
  Rng rng(19);
  const auto x = davies_harte(100000, opt, rng);
  EXPECT_NEAR(sample_mean(x), 0.0, 0.6);
  EXPECT_NEAR(sample_variance(x), 9.0, 1.0);
}

TEST(DaviesHarteTest, SampleAcfMatchesFgnTarget) {
  DaviesHarteOptions opt;
  opt.hurst = 0.8;
  Rng rng(23);
  const auto x = davies_harte(131072, opt, rng);
  const auto sample_acf = stats::autocorrelation(x, 50);
  for (std::size_t k = 1; k <= 20; ++k) {
    EXPECT_NEAR(sample_acf[k], fgn_rho(0.8, k), 0.04) << "lag " << k;
  }
}

TEST(DaviesHarteTest, FarimaCovarianceOptionMatchesEqSix) {
  DaviesHarteOptions opt;
  opt.hurst = 0.8;
  opt.covariance = CovarianceKind::kFarima;
  Rng rng(29);
  const auto x = davies_harte(131072, opt, rng);
  const auto sample_acf = stats::autocorrelation(x, 20);
  const auto target = farima_acf(0.8, 20);
  for (std::size_t k = 1; k <= 10; ++k) {
    EXPECT_NEAR(sample_acf[k], target[k], 0.04) << "lag " << k;
  }
}

class DaviesHarteHurstSweep : public ::testing::TestWithParam<double> {};

TEST_P(DaviesHarteHurstSweep, WhittleRecoversH) {
  const double h = GetParam();
  DaviesHarteOptions opt;
  opt.hurst = h;
  Rng rng(31);
  const auto x = davies_harte(65536, opt, rng);
  // fGn data -> fGn spectral model (the matching density).
  EXPECT_NEAR(stats::whittle_estimate(x, stats::SpectralModel::kFgn).hurst, h, 0.03)
      << "H=" << h;
}

INSTANTIATE_TEST_SUITE_P(HurstGrid, DaviesHarteHurstSweep,
                         ::testing::Values(0.55, 0.6, 0.7, 0.8, 0.9));

TEST(GeneratorCrossValidationTest, HoskingAndDaviesHarteAgree) {
  // Same model (fARIMA, H=0.8), different exact algorithms: sample ACFs and
  // Whittle estimates must agree within estimator noise.
  const double h = 0.8;
  Rng rng_h(37);
  Rng rng_d(41);
  HoskingOptions hopt;
  hopt.hurst = h;
  DaviesHarteOptions dopt;
  dopt.hurst = h;
  dopt.covariance = CovarianceKind::kFarima;
  const auto xh = hosking_farima(32768, hopt, rng_h);
  const auto xd = davies_harte(32768, dopt, rng_d);
  const double hh = stats::whittle_estimate(xh).hurst;
  const double hd = stats::whittle_estimate(xd).hurst;
  EXPECT_NEAR(hh, hd, 0.06);
  const auto ah = stats::autocorrelation(xh, 10);
  const auto ad = stats::autocorrelation(xd, 10);
  for (std::size_t k = 1; k <= 5; ++k) EXPECT_NEAR(ah[k], ad[k], 0.07) << "lag " << k;
}

TEST(DaviesHarteCacheTest, CachedAndUncachedProduceIdenticalOutput) {
  davies_harte_cache_clear();
  DaviesHarteOptions uncached;
  uncached.hurst = 0.8;
  uncached.use_eigenvalue_cache = false;

  DaviesHarteOptions cached = uncached;
  cached.use_eigenvalue_cache = true;

  Rng rng_a(97);
  const auto a = davies_harte(3000, uncached, rng_a);
  EXPECT_EQ(davies_harte_cache_size(), 0u);

  Rng rng_b(97);  // same Rng state, cold cache
  const auto b = davies_harte(3000, cached, rng_b);
  EXPECT_EQ(davies_harte_cache_size(), 1u);

  Rng rng_c(97);  // same Rng state, warm cache
  const auto c = davies_harte(3000, cached, rng_c);
  EXPECT_EQ(davies_harte_cache_size(), 1u);

  EXPECT_EQ(a, b);  // exact double equality: caching must not change output
  EXPECT_EQ(b, c);
  davies_harte_cache_clear();
  EXPECT_EQ(davies_harte_cache_size(), 0u);
}

TEST(DaviesHarteCacheTest, KeyedByHurstLengthAndCovariance) {
  davies_harte_cache_clear();
  DaviesHarteOptions opt;
  opt.hurst = 0.7;
  Rng rng(101);

  davies_harte(512, opt, rng);
  EXPECT_EQ(davies_harte_cache_size(), 1u);

  // Same key again: no new entry.
  davies_harte(512, opt, rng);
  EXPECT_EQ(davies_harte_cache_size(), 1u);

  // n = 300 embeds into the same 2m = 1024 circulant as n = 512, so it
  // must share the entry rather than duplicate it.
  davies_harte(300, opt, rng);
  EXPECT_EQ(davies_harte_cache_size(), 1u);

  // Different H -> new entry.
  opt.hurst = 0.8;
  davies_harte(512, opt, rng);
  EXPECT_EQ(davies_harte_cache_size(), 2u);

  // Different covariance kind at the same H and length -> new entry.
  opt.covariance = CovarianceKind::kFarima;
  davies_harte(512, opt, rng);
  EXPECT_EQ(davies_harte_cache_size(), 3u);

  // Different embedding length -> new entry. variance is only an output
  // scale and must NOT key the cache.
  opt.variance = 5.0;
  davies_harte(2048, opt, rng);
  EXPECT_EQ(davies_harte_cache_size(), 4u);
  opt.variance = 9.0;
  davies_harte(2048, opt, rng);
  EXPECT_EQ(davies_harte_cache_size(), 4u);
  davies_harte_cache_clear();
}

TEST(DaviesHarteCacheTest, VarianceScalesCachedOutputExactly) {
  davies_harte_cache_clear();
  DaviesHarteOptions opt;
  opt.hurst = 0.8;
  Rng rng1(111);
  const auto unit = davies_harte(1024, opt, rng1);
  opt.variance = 4.0;
  Rng rng2(111);
  const auto scaled = davies_harte(1024, opt, rng2);
  EXPECT_EQ(davies_harte_cache_size(), 1u);  // shared entry despite variance
  for (std::size_t i = 0; i < unit.size(); ++i) {
    EXPECT_NEAR(scaled[i], 2.0 * unit[i], 1e-12 * std::abs(unit[i]) + 1e-15) << i;
  }
  davies_harte_cache_clear();
}

TEST(DaviesHarteTest, EigenvalueClippingNearHurstBoundary) {
  // Near H -> 1 at large n the smallest circulant eigenvalues sit closest
  // to zero, so FFT roundoff can push them slightly negative; the clipping
  // threshold is relative (1e-10 * lambda_max), not scaled by 2m as it
  // once was. Pin the behaviour: H = 0.95 at n = 2^15 (embedding 2^16)
  // must generate, not throw, and produce a sane realization.
  DaviesHarteOptions opt;
  opt.hurst = 0.95;
  Rng rng(131);
  std::vector<double> x;
  ASSERT_NO_THROW(x = davies_harte(std::size_t{1} << 15, opt, rng));
  ASSERT_EQ(x.size(), std::size_t{1} << 15);
  for (const double v : x) ASSERT_TRUE(std::isfinite(v));
  // Unit target variance; H = 0.95 LRD makes the sample estimate noisy,
  // so only bracket it loosely.
  const double var = sample_variance(x);
  EXPECT_GT(var, 0.2);
  EXPECT_LT(var, 5.0);
}

TEST(DaviesHarteTest, SingleAndSmallN) {
  DaviesHarteOptions opt;
  opt.hurst = 0.8;
  Rng rng(43);
  EXPECT_EQ(davies_harte(1, opt, rng).size(), 1u);
  EXPECT_EQ(davies_harte(2, opt, rng).size(), 2u);
  EXPECT_EQ(davies_harte(3, opt, rng).size(), 3u);
}

}  // namespace
}  // namespace vbr::model
