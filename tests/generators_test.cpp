// Tests for the two Gaussian LRD generators: Hosking's exact O(n^2)
// recursion (Section 4.1) and Davies-Harte circulant embedding. The key
// cross-check: both produce realizations whose sample ACF matches the
// target fARIMA/fGn autocorrelation and whose estimated H matches the
// input.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "vbr/common/error.hpp"
#include "vbr/common/math_util.hpp"
#include "vbr/common/rng.hpp"
#include "vbr/model/davies_harte.hpp"
#include "vbr/model/fgn_acf.hpp"
#include "vbr/model/hosking.hpp"
#include "vbr/stats/autocorrelation.hpp"
#include "vbr/stats/whittle.hpp"

namespace vbr::model {
namespace {

TEST(HoskingTest, DeterministicGivenSeed) {
  HoskingOptions opt;
  opt.hurst = 0.8;
  Rng rng1(5);
  Rng rng2(5);
  const auto a = hosking_farima(500, opt, rng1);
  const auto b = hosking_farima(500, opt, rng2);
  EXPECT_EQ(a, b);
}

TEST(HoskingTest, MarginalMomentsMatch) {
  HoskingOptions opt;
  opt.hurst = 0.75;
  opt.variance = 4.0;
  Rng rng(7);
  const auto x = hosking_farima(30000, opt, rng);
  EXPECT_NEAR(sample_mean(x), 0.0, 0.4);  // LRD mean converges slowly
  EXPECT_NEAR(sample_variance(x), 4.0, 0.5);
}

TEST(HoskingTest, SampleAcfMatchesEqSix) {
  HoskingOptions opt;
  opt.hurst = 0.8;
  Rng rng(11);
  const auto x = hosking_farima(60000, opt, rng);
  const auto sample_acf = stats::autocorrelation(x, 20);
  const auto target = farima_acf(0.8, 20);
  for (std::size_t k = 1; k <= 10; ++k) {
    EXPECT_NEAR(sample_acf[k], target[k], 0.05) << "lag " << k;
  }
}

TEST(HoskingTest, InnovationVarianceDecreasesMonotonically) {
  HoskingOptions opt;
  opt.hurst = 0.8;
  HoskingGenerator gen(opt, Rng(13));
  gen.next();
  double prev = gen.innovation_variance();
  for (int i = 0; i < 200; ++i) {
    gen.next();
    EXPECT_LE(gen.innovation_variance(), prev + 1e-12);
    prev = gen.innovation_variance();
    EXPECT_GT(prev, 0.0);
  }
}

TEST(HoskingTest, WhittleRecoversInputH) {
  HoskingOptions opt;
  opt.hurst = 0.7;
  Rng rng(17);
  const auto x = hosking_farima(32768, opt, rng);
  EXPECT_NEAR(stats::whittle_estimate(x).hurst, 0.7, 0.04);
}

TEST(HoskingTest, RejectsInvalidOptions) {
  Rng rng(1);
  HoskingOptions opt;
  opt.hurst = 1.0;
  EXPECT_THROW(hosking_farima(10, opt, rng), vbr::InvalidArgument);
  opt.hurst = 0.8;
  opt.variance = 0.0;
  EXPECT_THROW(hosking_farima(10, opt, rng), vbr::InvalidArgument);
}

TEST(DaviesHarteTest, DeterministicGivenSeed) {
  DaviesHarteOptions opt;
  opt.hurst = 0.8;
  Rng rng1(5);
  Rng rng2(5);
  EXPECT_EQ(davies_harte(1000, opt, rng1), davies_harte(1000, opt, rng2));
}

TEST(DaviesHarteTest, MarginalMomentsMatch) {
  DaviesHarteOptions opt;
  opt.hurst = 0.8;
  opt.variance = 9.0;
  Rng rng(19);
  const auto x = davies_harte(100000, opt, rng);
  EXPECT_NEAR(sample_mean(x), 0.0, 0.6);
  EXPECT_NEAR(sample_variance(x), 9.0, 1.0);
}

TEST(DaviesHarteTest, SampleAcfMatchesFgnTarget) {
  DaviesHarteOptions opt;
  opt.hurst = 0.8;
  Rng rng(23);
  const auto x = davies_harte(131072, opt, rng);
  const auto sample_acf = stats::autocorrelation(x, 50);
  for (std::size_t k = 1; k <= 20; ++k) {
    EXPECT_NEAR(sample_acf[k], fgn_rho(0.8, k), 0.04) << "lag " << k;
  }
}

TEST(DaviesHarteTest, FarimaCovarianceOptionMatchesEqSix) {
  DaviesHarteOptions opt;
  opt.hurst = 0.8;
  opt.covariance = CovarianceKind::kFarima;
  Rng rng(29);
  const auto x = davies_harte(131072, opt, rng);
  const auto sample_acf = stats::autocorrelation(x, 20);
  const auto target = farima_acf(0.8, 20);
  for (std::size_t k = 1; k <= 10; ++k) {
    EXPECT_NEAR(sample_acf[k], target[k], 0.04) << "lag " << k;
  }
}

class DaviesHarteHurstSweep : public ::testing::TestWithParam<double> {};

TEST_P(DaviesHarteHurstSweep, WhittleRecoversH) {
  const double h = GetParam();
  DaviesHarteOptions opt;
  opt.hurst = h;
  Rng rng(31);
  const auto x = davies_harte(65536, opt, rng);
  // fGn data -> fGn spectral model (the matching density).
  EXPECT_NEAR(stats::whittle_estimate(x, stats::SpectralModel::kFgn).hurst, h, 0.03)
      << "H=" << h;
}

INSTANTIATE_TEST_SUITE_P(HurstGrid, DaviesHarteHurstSweep,
                         ::testing::Values(0.55, 0.6, 0.7, 0.8, 0.9));

TEST(GeneratorCrossValidationTest, HoskingAndDaviesHarteAgree) {
  // Same model (fARIMA, H=0.8), different exact algorithms: sample ACFs and
  // Whittle estimates must agree within estimator noise.
  const double h = 0.8;
  Rng rng_h(37);
  Rng rng_d(41);
  HoskingOptions hopt;
  hopt.hurst = h;
  DaviesHarteOptions dopt;
  dopt.hurst = h;
  dopt.covariance = CovarianceKind::kFarima;
  const auto xh = hosking_farima(32768, hopt, rng_h);
  const auto xd = davies_harte(32768, dopt, rng_d);
  const double hh = stats::whittle_estimate(xh).hurst;
  const double hd = stats::whittle_estimate(xd).hurst;
  EXPECT_NEAR(hh, hd, 0.06);
  const auto ah = stats::autocorrelation(xh, 10);
  const auto ad = stats::autocorrelation(xd, 10);
  for (std::size_t k = 1; k <= 5; ++k) EXPECT_NEAR(ah[k], ad[k], 0.07) << "lag " << k;
}

TEST(DaviesHarteTest, SingleAndSmallN) {
  DaviesHarteOptions opt;
  opt.hurst = 0.8;
  Rng rng(43);
  EXPECT_EQ(davies_harte(1, opt, rng).size(), 1u);
  EXPECT_EQ(davies_harte(2, opt, rng).size(), 2u);
  EXPECT_EQ(davies_harte(3, opt, rng).size(), 3u);
}

}  // namespace
}  // namespace vbr::model
