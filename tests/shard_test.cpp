// Tests for deterministic grid sharding: balanced contiguous ranges,
// split-derived shard fingerprints, and the order-invariance property of
// merge_shard_records — any permutation or interleaving of per-shard
// results must merge to byte-identical records and an identical
// results_hash.
#include "vbr/sweep/shard.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "vbr/common/error.hpp"
#include "vbr/sweep/supervisor.hpp"

namespace vbr::sweep {
namespace {

CellRecord done_record(std::uint64_t index) {
  CellRecord record;
  record.cell_index = index;
  record.status = CellStatus::kDone;
  record.result.mean_rate_bps = 1e6 + static_cast<double>(index);
  record.result.capacity_bps = 2e6 + static_cast<double>(index);
  record.result.buffer_bytes = 4096.0;
  record.result.loss_rate = 1e-3 / static_cast<double>(index + 1);
  record.result.mean_queue_bytes = 100.0 * static_cast<double>(index);
  record.result.max_queue_bytes = 4096.0;
  return record;
}

CellRecord quarantined_record(std::uint64_t index) {
  CellRecord record;
  record.cell_index = index;
  record.status = CellStatus::kQuarantined;
  record.failure.kind = FailureKind::kError;
  record.failure.attempts = 1;
  record.failure.message = "injected poison cell (deterministic failure)";
  return record;
}

/// The full settled-record set for a pretend grid of `total` cells, every
/// fifth cell quarantined.
std::vector<CellRecord> full_records(std::uint64_t total) {
  std::vector<CellRecord> records;
  for (std::uint64_t i = 0; i < total; ++i) {
    records.push_back(i % 5 == 4 ? quarantined_record(i) : done_record(i));
  }
  return records;
}

std::string manifest_bytes(const std::vector<CellRecord>& records,
                           std::uint64_t total) {
  SweepManifest manifest;
  manifest.fingerprint = 0xabadcafe12345678ULL;
  manifest.total_cells = total;
  manifest.records = records;
  return encode_manifest(manifest);
}

// ---------------------------------------------------------------------------
// Ranges and fingerprints

TEST(ShardRanges, PartitionIsBalancedContiguousAndComplete) {
  for (const std::uint64_t total : {1u, 7u, 24u, 100u, 1000u}) {
    for (const std::uint64_t count : {1u, 2u, 3u, 5u, 8u, 13u}) {
      std::uint64_t expected_first = 0;
      for (std::uint64_t shard = 0; shard < count; ++shard) {
        const ShardRange range = shard_cell_range(total, count, shard);
        EXPECT_EQ(range.first, expected_first);
        // Balanced: sizes differ by at most one, larger shards first.
        const std::uint64_t base = total / count;
        EXPECT_EQ(range.size(), shard < total % count ? base + 1 : base);
        expected_first = range.end;
      }
      EXPECT_EQ(expected_first, total);  // ranges tile the grid exactly
    }
  }
}

TEST(ShardRanges, RejectsBadShapes) {
  EXPECT_THROW(shard_cell_range(10, 0, 0), Error);
  EXPECT_THROW(shard_cell_range(10, 2, 2), Error);
  EXPECT_THROW(shard_cell_range(10, kMaxShards + 1, 0), Error);
}

TEST(ShardFingerprints, AreDistinctDeterministicAndGridBound) {
  const std::vector<std::uint64_t> fps = derive_shard_fingerprints(0x1234, 8);
  ASSERT_EQ(fps.size(), 8u);
  EXPECT_EQ(std::set<std::uint64_t>(fps.begin(), fps.end()).size(), 8u);
  EXPECT_EQ(derive_shard_fingerprints(0x1234, 8), fps);
  EXPECT_NE(derive_shard_fingerprints(0x1235, 8), fps);
  // A prefix of a larger split is the smaller split: shard identity does
  // not depend on how many shards come after it.
  const std::vector<std::uint64_t> fewer = derive_shard_fingerprints(0x1234, 3);
  EXPECT_TRUE(std::equal(fewer.begin(), fewer.end(), fps.begin()));
}

TEST(ShardHeaders, CarryGridIdentityAndShardRange) {
  SweepGrid grid;
  grid.queues = {QueueKind::kFluid};
  grid.hursts = {0.7, 0.8, 0.9};
  grid.utilizations = {0.8, 0.9};
  grid.buffer_ms = {10.0};
  grid.sources = {1};
  grid.frames_per_source = 64;
  grid.seed = 1994;

  const ResultLogHeader header = shard_log_header(grid, 3, 1);
  EXPECT_EQ(header.sweep_fingerprint, sweep_fingerprint(grid));
  EXPECT_EQ(header.shard_fingerprint,
            derive_shard_fingerprints(sweep_fingerprint(grid), 3)[1]);
  EXPECT_EQ(header.total_cells, cell_count(grid));
  EXPECT_EQ(header.shard_count, 3u);
  EXPECT_EQ(header.shard_index, 1u);
  const ShardRange range = shard_cell_range(cell_count(grid), 3, 1);
  EXPECT_EQ(header.first_cell, range.first);
  EXPECT_EQ(header.end_cell, range.end);
}

// ---------------------------------------------------------------------------
// Merge: the order-invariance property

TEST(ShardMergeProperty, AnyPartitionOrderAndInterleavingMergesByteIdentically) {
  const std::uint64_t total = 30;
  const std::vector<CellRecord> reference = full_records(total);
  const std::string reference_bytes = manifest_bytes(reference, total);
  const std::uint64_t reference_hash = results_hash(reference);

  std::mt19937 rng(1994);
  for (const std::uint64_t k : {2u, 3u, 5u, 8u}) {
    for (int trial = 0; trial < 8; ++trial) {
      // Partition by contiguous range, then shuffle each shard's record
      // order (pools settle in scheduling order, not index order)...
      std::vector<std::vector<CellRecord>> shards(k);
      for (std::uint64_t shard = 0; shard < k; ++shard) {
        const ShardRange range = shard_cell_range(total, k, shard);
        for (std::uint64_t cell = range.first; cell < range.end; ++cell) {
          shards[shard].push_back(reference[cell]);
        }
        std::shuffle(shards[shard].begin(), shards[shard].end(), rng);
      }
      // ...then shuffle the shard order itself (collection order is
      // whichever pool finished first)...
      std::shuffle(shards.begin(), shards.end(), rng);
      // ...and sprinkle healed-overlap duplicates.
      std::size_t injected_duplicates = 0;
      for (auto& shard : shards) {
        if (!shard.empty() && rng() % 2 == 0) {
          shard.push_back(shard[rng() % shard.size()]);
          injected_duplicates += 1;
        }
      }

      const ShardMerge merge = merge_shard_records(shards, total, true);
      EXPECT_EQ(manifest_bytes(merge.records, total), reference_bytes)
          << "k=" << k << " trial=" << trial;
      EXPECT_EQ(merge.results_hash, reference_hash);
      EXPECT_EQ(merge.completed + merge.quarantined, total);
      EXPECT_EQ(merge.duplicate_records, injected_duplicates);
    }
  }
}

TEST(ShardMergeErrors, OutOfRangeConflictAndIncompleteAreRejected) {
  const std::uint64_t total = 10;
  std::vector<std::vector<CellRecord>> shards{full_records(total)};

  std::vector<std::vector<CellRecord>> rogue = shards;
  rogue[0].push_back(done_record(total));  // index escapes the grid
  EXPECT_THROW(merge_shard_records(rogue, total, true), IoError);

  std::vector<std::vector<CellRecord>> conflict = shards;
  CellRecord twisted = done_record(3);
  twisted.result.loss_rate *= 10.0;
  conflict.push_back({twisted});  // same cell, different bytes
  EXPECT_THROW(merge_shard_records(conflict, total, true), IoError);

  std::vector<std::vector<CellRecord>> partial = shards;
  partial[0].erase(partial[0].begin() + 4);
  EXPECT_THROW(merge_shard_records(partial, total, true), IoError);
  // Without require_complete the partial merge is fine (progress probes).
  const ShardMerge merge = merge_shard_records(partial, total, false);
  EXPECT_EQ(merge.records.size(), total - 1);
}

}  // namespace
}  // namespace vbr::sweep
