// Tests for the interframe (I/P) codec extension: stream round trips, GoP
// structure, and the burstiness signature the paper attributes to
// interframe coding.
#include "vbr/codec/interframe_coder.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "vbr/codec/synthetic_movie.hpp"
#include "vbr/common/error.hpp"
#include "vbr/common/math_util.hpp"

namespace vbr::codec {
namespace {

MovieConfig small_movie_config() {
  MovieConfig c;
  c.width = 64;
  c.height = 64;
  return c;
}

TEST(InterframeCoderTest, FirstFrameIsIntra) {
  InterframeCoder coder;
  const SyntheticMovie movie(small_movie_config(), 4);
  const auto encoded = coder.encode_next(movie.frame(0));
  EXPECT_TRUE(encoded.is_intra);
}

TEST(InterframeCoderTest, GopStructureHonored) {
  InterframeConfig config;
  config.gop_length = 4;
  InterframeCoder coder(config);
  const SyntheticMovie movie(small_movie_config(), 12);
  std::vector<bool> intra_flags;
  for (std::size_t f = 0; f < 12; ++f) {
    intra_flags.push_back(coder.encode_next(movie.frame(f)).is_intra);
  }
  for (std::size_t f = 0; f < 12; ++f) {
    EXPECT_EQ(intra_flags[f], f % 4 == 0) << "frame " << f;
  }
}

TEST(InterframeCoderTest, GopLengthOneIsAllIntra) {
  InterframeConfig config;
  config.gop_length = 1;
  InterframeCoder coder(config);
  const SyntheticMovie movie(small_movie_config(), 5);
  for (std::size_t f = 0; f < 5; ++f) {
    EXPECT_TRUE(coder.encode_next(movie.frame(f)).is_intra) << "frame " << f;
  }
}

TEST(InterframeCoderTest, EncodeDecodeStreamStaysFaithful) {
  InterframeConfig config;
  config.gop_length = 6;
  config.quantizer_step = 8.0;
  InterframeCoder encoder(config);
  InterframeCoder decoder(config);
  const SyntheticMovie movie(small_movie_config(), 18);
  for (std::size_t f = 0; f < 18; ++f) {
    const Frame original = movie.frame(f);
    const auto encoded = encoder.encode_next(original);
    const Frame decoded = decoder.decode_next(encoded);
    // Closed-loop coding keeps quality stable across the GoP (no drift).
    EXPECT_GT(psnr(original, decoded), 26.0) << "frame " << f;
  }
}

TEST(InterframeCoderTest, StaticSceneMakesPFramesTiny) {
  InterframeConfig config;
  config.gop_length = 8;
  InterframeCoder coder(config);
  const SyntheticMovie movie(small_movie_config(), 2);
  const Frame frame = movie.frame(0);
  const auto intra = coder.encode_next(frame);
  const auto inter = coder.encode_next(frame);  // identical frame again
  EXPECT_TRUE(intra.is_intra);
  EXPECT_FALSE(inter.is_intra);
  // Coding an unchanged frame as a residual costs a small fraction.
  EXPECT_LT(inter.total_bytes() * 4, intra.total_bytes());
}

TEST(InterframeCoderTest, MotionRaisesPFrameCost) {
  // Compare P-frame cost within a static pair vs across a scene cut.
  const SyntheticMovie movie(small_movie_config(), 3000);
  const auto& scenes = movie.scenes();
  ASSERT_GE(scenes.size(), 2u);
  // Find a scene with length >= 2 followed by another scene.
  std::size_t idx = 0;
  while (idx + 1 < scenes.size() && scenes[idx].length < 2) ++idx;
  ASSERT_LT(idx + 1, scenes.size());
  const auto& scene = scenes[idx];

  InterframeConfig config;
  config.gop_length = 1000;
  InterframeCoder same_scene(config);
  same_scene.encode_next(movie.frame(scene.start_frame));
  const auto within =
      same_scene.encode_next(movie.frame(scene.start_frame + 1)).total_bytes();

  InterframeCoder cut_scene(config);
  cut_scene.encode_next(movie.frame(scene.start_frame));
  const auto across =
      cut_scene.encode_next(movie.frame(scenes[idx + 1].start_frame)).total_bytes();
  EXPECT_GT(across, within);
}

TEST(InterframeCoderTest, InterframeTraceIsBurstierThanIntraframe) {
  // The paper: "Greater compression, burstiness and much stronger
  // dependence on motion result from interframe coding."
  const SyntheticMovie movie(small_movie_config(), 96);
  InterframeConfig config;
  config.gop_length = 12;
  InterframeCoder inter(config);
  IntraframeCoder intra;

  std::vector<double> inter_bytes;
  std::vector<double> intra_bytes;
  double inter_total = 0.0;
  double intra_total = 0.0;
  for (std::size_t f = 0; f < 96; ++f) {
    const Frame frame = movie.frame(f);
    inter_bytes.push_back(static_cast<double>(inter.encode_next(frame).total_bytes()));
    intra_bytes.push_back(static_cast<double>(intra.encode(frame).total_bytes()));
    inter_total += inter_bytes.back();
    intra_total += intra_bytes.back();
  }
  // Greater compression...
  EXPECT_LT(inter_total, intra_total);
  // ...and greater burstiness (peak/mean of the byte trace).
  const auto burstiness = [](const std::vector<double>& xs) {
    double peak = 0.0;
    for (double v : xs) peak = std::max(peak, v);
    return peak / vbr::sample_mean(xs);
  };
  EXPECT_GT(burstiness(inter_bytes), burstiness(intra_bytes) * 1.3);
}

TEST(InterframeCoderTest, ResetForcesIntra) {
  InterframeConfig config;
  config.gop_length = 100;
  InterframeCoder coder(config);
  const SyntheticMovie movie(small_movie_config(), 3);
  coder.encode_next(movie.frame(0));
  EXPECT_FALSE(coder.encode_next(movie.frame(1)).is_intra);
  coder.reset();
  EXPECT_TRUE(coder.encode_next(movie.frame(2)).is_intra);
}

TEST(InterframeCoderTest, RejectsInvalidConfig) {
  InterframeConfig config;
  config.gop_length = 0;
  EXPECT_THROW(InterframeCoder{config}, vbr::InvalidArgument);
}

}  // namespace
}  // namespace vbr::codec
