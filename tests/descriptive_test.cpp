// Unit tests for histograms and the empirical CDF/CCDF machinery behind
// Figs. 3-6.
#include "vbr/stats/descriptive.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "vbr/common/error.hpp"
#include "vbr/common/rng.hpp"

namespace vbr::stats {
namespace {

TEST(HistogramTest, CountsLandInCorrectBins) {
  std::vector<double> data{0.5, 1.5, 1.6, 2.5, 3.5};
  const auto h = make_histogram(data, 4, 0.0, 4.0);
  ASSERT_EQ(h.counts.size(), 4u);
  EXPECT_EQ(h.counts[0], 1u);
  EXPECT_EQ(h.counts[1], 2u);
  EXPECT_EQ(h.counts[2], 1u);
  EXPECT_EQ(h.counts[3], 1u);
  EXPECT_EQ(h.total, 5u);
  EXPECT_DOUBLE_EQ(h.bin_width(), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
}

TEST(HistogramTest, OutOfRangeClampsToEdgeBins) {
  std::vector<double> data{-10.0, 100.0};
  const auto h = make_histogram(data, 5, 0.0, 1.0);
  EXPECT_EQ(h.counts.front(), 1u);
  EXPECT_EQ(h.counts.back(), 1u);
}

TEST(HistogramTest, DensityIntegratesToOne) {
  Rng rng(3);
  std::vector<double> data(20000);
  for (auto& v : data) v = rng.normal(10.0, 2.0);
  const auto h = make_histogram(data, 50);
  double integral = 0.0;
  for (std::size_t i = 0; i < h.counts.size(); ++i) integral += h.density(i) * h.bin_width();
  EXPECT_NEAR(integral, 1.0, 1e-9);
}

TEST(HistogramTest, AutoRangeDegenerateData) {
  std::vector<double> data(10, 5.0);
  const auto h = make_histogram(data, 4);
  EXPECT_EQ(h.total, 10u);
  std::size_t total = 0;
  for (auto c : h.counts) total += c;
  EXPECT_EQ(total, 10u);
}

TEST(EcdfTest, CdfStepsAtSamplePoints) {
  Ecdf ecdf(std::vector<double>{1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(ecdf.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(ecdf.cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(ecdf.cdf(2.5), 0.5);
  EXPECT_DOUBLE_EQ(ecdf.cdf(4.0), 1.0);
  EXPECT_DOUBLE_EQ(ecdf.ccdf(2.5), 0.5);
}

TEST(EcdfTest, QuantileInterpolates) {
  Ecdf ecdf(std::vector<double>{10.0, 20.0, 30.0});
  EXPECT_DOUBLE_EQ(ecdf.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(ecdf.quantile(0.5), 20.0);
  EXPECT_DOUBLE_EQ(ecdf.quantile(1.0), 30.0);
  EXPECT_DOUBLE_EQ(ecdf.quantile(0.25), 15.0);
}

TEST(EcdfTest, RequiresData) {
  EXPECT_THROW(Ecdf(std::vector<double>{}), vbr::InvalidArgument);
}

TEST(EcdfTest, CcdfCurveIsMonotoneNonIncreasing) {
  Rng rng(7);
  std::vector<double> data(5000);
  for (auto& v : data) v = rng.gamma(4.0, 100.0);
  Ecdf ecdf(data);
  const auto curve = ecdf.ccdf_curve(100);
  ASSERT_GE(curve.x.size(), 10u);
  for (std::size_t i = 1; i < curve.x.size(); ++i) {
    EXPECT_GT(curve.x[i], curve.x[i - 1]);
    EXPECT_LE(curve.p[i], curve.p[i - 1] + 1e-12);
    EXPECT_GT(curve.p[i], 0.0);  // zero-CCDF points dropped for log plots
  }
}

TEST(EcdfTest, CdfCurveIsMonotoneNonDecreasing) {
  Rng rng(8);
  std::vector<double> data(5000);
  for (auto& v : data) v = rng.gamma(4.0, 100.0);
  Ecdf ecdf(data);
  const auto curve = ecdf.cdf_curve(100);
  ASSERT_GE(curve.x.size(), 10u);
  for (std::size_t i = 1; i < curve.x.size(); ++i) {
    EXPECT_GE(curve.p[i], curve.p[i - 1] - 1e-12);
  }
}

TEST(EcdfTest, CcdfAgreesWithExactCountAtGridPoints) {
  std::vector<double> data;
  for (int i = 1; i <= 1000; ++i) data.push_back(static_cast<double>(i));
  Ecdf ecdf(data);
  EXPECT_NEAR(ecdf.ccdf(500.0), 0.5, 1e-12);
  EXPECT_NEAR(ecdf.ccdf(900.5), 0.1, 1e-12);
}

}  // namespace
}  // namespace vbr::stats
