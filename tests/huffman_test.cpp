// Tests for bit I/O and canonical Huffman coding: prefix property, round
// trips, near-entropy compression, and length limiting.
#include "vbr/codec/huffman.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "vbr/common/error.hpp"
#include "vbr/common/rng.hpp"

namespace vbr::codec {
namespace {

TEST(BitIoTest, RoundTripAssortedWidths) {
  BitWriter writer;
  writer.write_bits(0b101, 3);
  writer.write_bits(0xFFFF, 16);
  writer.write_bits(0, 1);
  writer.write_bits(0xDEADBEEF, 32);
  const auto bytes = writer.finish();
  BitReader reader(bytes);
  EXPECT_EQ(reader.read_bits(3), 0b101u);
  EXPECT_EQ(reader.read_bits(16), 0xFFFFu);
  EXPECT_EQ(reader.read_bits(1), 0u);
  EXPECT_EQ(reader.read_bits(32), 0xDEADBEEFu);
}

TEST(BitIoTest, BitCountTracksExactly) {
  BitWriter writer;
  writer.write_bits(1, 1);
  writer.write_bits(3, 2);
  EXPECT_EQ(writer.bit_count(), 3u);
  const auto bytes = writer.finish();
  EXPECT_EQ(bytes.size(), 1u);  // padded to one byte
}

TEST(BitIoTest, ReaderThrowsPastEnd) {
  BitWriter writer;
  writer.write_bits(0xAB, 8);
  const auto bytes = writer.finish();
  BitReader reader(bytes);
  reader.read_bits(8);
  EXPECT_THROW(reader.read_bit(), vbr::Error);
}

TEST(HuffmanTest, TwoSymbolAlphabet) {
  const std::vector<std::uint64_t> freqs{90, 10};
  const auto code = HuffmanCode::build(freqs);
  EXPECT_EQ(code.length(0), 1u);
  EXPECT_EQ(code.length(1), 1u);
  EXPECT_NE(code.code(0), code.code(1));
}

TEST(HuffmanTest, SingleSymbolGetsOneBit) {
  const std::vector<std::uint64_t> freqs{5, 0, 0};
  const auto code = HuffmanCode::build(freqs);
  EXPECT_EQ(code.length(0), 1u);
  EXPECT_EQ(code.length(1), 0u);
}

TEST(HuffmanTest, ZeroFrequencySymbolHasNoCodeAndThrowsOnEncode) {
  const std::vector<std::uint64_t> freqs{10, 0, 20};
  const auto code = HuffmanCode::build(freqs);
  EXPECT_EQ(code.length(1), 0u);
  BitWriter writer;
  EXPECT_THROW(code.encode(writer, 1), vbr::InvalidArgument);
}

TEST(HuffmanTest, SkewedFrequenciesGetShorterCodes) {
  const std::vector<std::uint64_t> freqs{1000, 200, 50, 10, 1};
  const auto code = HuffmanCode::build(freqs);
  for (std::size_t s = 1; s < freqs.size(); ++s) {
    EXPECT_LE(code.length(s - 1), code.length(s));
  }
}

TEST(HuffmanTest, PrefixPropertyViaExhaustiveDecode) {
  // Every encoded symbol must decode back unambiguously.
  const std::vector<std::uint64_t> freqs{50, 30, 10, 5, 3, 1, 1};
  const auto code = HuffmanCode::build(freqs);
  BitWriter writer;
  std::vector<std::size_t> message;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const std::size_t s = rng.uniform_index(freqs.size());
    message.push_back(s);
    code.encode(writer, s);
  }
  const auto bytes = writer.finish();
  BitReader reader(bytes);
  for (std::size_t expected : message) EXPECT_EQ(code.decode(reader), expected);
}

TEST(HuffmanTest, KraftInequalityHolds) {
  const std::vector<std::uint64_t> freqs{100, 80, 60, 40, 20, 10, 5, 2, 1};
  const auto code = HuffmanCode::build(freqs);
  double kraft = 0.0;
  for (std::size_t s = 0; s < freqs.size(); ++s) {
    if (code.length(s) > 0) kraft += std::pow(2.0, -static_cast<double>(code.length(s)));
  }
  EXPECT_LE(kraft, 1.0 + 1e-12);
  EXPECT_NEAR(kraft, 1.0, 1e-9);  // Huffman codes are complete
}

TEST(HuffmanTest, ExpectedLengthWithinOneBitOfEntropy) {
  // Shannon: H <= L < H + 1 for an optimal prefix code.
  const std::vector<std::uint64_t> freqs{500, 250, 125, 60, 30, 20, 10, 5};
  const auto code = HuffmanCode::build(freqs);
  double total = 0.0;
  for (auto f : freqs) total += static_cast<double>(f);
  double entropy = 0.0;
  for (auto f : freqs) {
    const double p = static_cast<double>(f) / total;
    entropy -= p * std::log2(p);
  }
  const double mean_len = code.expected_length(freqs);
  EXPECT_GE(mean_len, entropy - 1e-9);
  EXPECT_LT(mean_len, entropy + 1.0);
}

TEST(HuffmanTest, LengthLimitEnforced) {
  // Exponential frequencies would naturally produce very long codes.
  std::vector<std::uint64_t> freqs;
  std::uint64_t f = 1;
  for (int i = 0; i < 30; ++i) {
    freqs.push_back(f);
    f = (f > (1ull << 60)) ? f : f * 2;
  }
  const auto code = HuffmanCode::build(freqs, 12);
  for (std::size_t s = 0; s < freqs.size(); ++s) {
    EXPECT_LE(code.length(s), 12u);
    EXPECT_GE(code.length(s), 1u);
  }
  // Still decodable.
  BitWriter writer;
  for (std::size_t s = 0; s < freqs.size(); ++s) code.encode(writer, s);
  const auto bytes = writer.finish();
  BitReader reader(bytes);
  for (std::size_t s = 0; s < freqs.size(); ++s) EXPECT_EQ(code.decode(reader), s);
}

TEST(HuffmanTest, LargeAlphabetRoundTrip) {
  // The AC token alphabet of the coder: 256 symbols with mixed weights.
  std::vector<std::uint64_t> freqs(256);
  Rng rng(7);
  for (auto& v : freqs) v = 1 + rng.uniform_index(10000);
  const auto code = HuffmanCode::build(freqs);
  BitWriter writer;
  std::vector<std::size_t> message;
  for (int i = 0; i < 5000; ++i) {
    const std::size_t s = rng.uniform_index(256);
    message.push_back(s);
    code.encode(writer, s);
  }
  const auto bytes = writer.finish();
  BitReader reader(bytes);
  for (std::size_t expected : message) ASSERT_EQ(code.decode(reader), expected);
}

TEST(HuffmanTest, CompressionBeatsFixedWidthOnSkewedSource) {
  std::vector<std::uint64_t> freqs{100000, 1000, 100, 10, 1, 1, 1, 1};
  const auto code = HuffmanCode::build(freqs);
  // Fixed-width coding of 8 symbols needs 3 bits; the skew makes Huffman
  // spend close to 1 bit on the dominant symbol.
  EXPECT_LT(code.expected_length(freqs), 1.2);
}

}  // namespace
}  // namespace vbr::codec
