// Tests for the TES+ process (the [JAGE92] alternative marginal-distortion
// technique cited in Section 4.2).
#include "vbr/model/tes.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "vbr/common/error.hpp"
#include "vbr/common/math_util.hpp"
#include "vbr/stats/autocorrelation.hpp"
#include "vbr/stats/variance_time.hpp"

namespace vbr::model {
namespace {

stats::GammaParetoParams paper_marginal() {
  stats::GammaParetoParams p;
  p.mu_gamma = 27791.0;
  p.sigma_gamma = 6254.0;
  p.tail_slope = 12.0;
  return p;
}

TEST(TesStitchTest, TentShapeAndUniformityPreserved) {
  EXPECT_DOUBLE_EQ(tes_stitch(0.0, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(tes_stitch(0.25, 0.5), 0.5);
  EXPECT_NEAR(tes_stitch(0.5 - 1e-12, 0.5), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(tes_stitch(0.75, 0.5), 0.5);
  // S preserves uniformity: P(S <= y) = y for any xi.
  Rng rng(1);
  for (double xi : {0.2, 0.5, 0.8}) {
    std::size_t below = 0;
    const int draws = 100000;
    for (int i = 0; i < draws; ++i) {
      if (tes_stitch(rng.uniform(), xi) <= 0.3) ++below;
    }
    EXPECT_NEAR(static_cast<double>(below) / draws, 0.3, 0.01) << "xi=" << xi;
  }
}

TEST(TesTest, BackgroundIsUniform) {
  TesGammaParetoSource source(paper_marginal(), {});
  Rng rng(2);
  const auto u = source.background(100000, rng);
  EXPECT_NEAR(sample_mean(u), 0.5, 0.02);
  EXPECT_NEAR(sample_variance(u), 1.0 / 12.0, 0.01);
  for (double v : u) {
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(TesTest, ForegroundHasTargetMarginals) {
  TesGammaParetoSource source(paper_marginal(), {});
  Rng rng(3);
  const auto x = source.generate(200000, rng);
  EXPECT_NEAR(sample_mean(x), 27791.0, 0.05 * 27791.0);
  EXPECT_NEAR(std::sqrt(sample_variance(x)), 6254.0, 0.2 * 6254.0);
  for (double v : x) ASSERT_GT(v, 0.0);
}

TEST(TesTest, SmallerAlphaMeansStrongerShortRangeCorrelation) {
  Rng rng1(4);
  Rng rng2(4);
  TesParams fast;
  fast.alpha = 0.8;
  TesParams slow;
  slow.alpha = 0.05;
  const auto x_fast = TesGammaParetoSource(paper_marginal(), fast).generate(100000, rng1);
  const auto x_slow = TesGammaParetoSource(paper_marginal(), slow).generate(100000, rng2);
  const auto acf_fast = stats::autocorrelation(x_fast, 10);
  const auto acf_slow = stats::autocorrelation(x_slow, 10);
  EXPECT_GT(acf_slow[1], acf_fast[1] + 0.2);
}

TEST(TesTest, AlphaOneIsIid) {
  TesParams params;
  params.alpha = 1.0;
  TesGammaParetoSource source(paper_marginal(), params);
  Rng rng(5);
  const auto x = source.generate(100000, rng);
  const auto acf = stats::autocorrelation(x, 5);
  for (std::size_t k = 1; k <= 5; ++k) EXPECT_NEAR(acf[k], 0.0, 0.02);
}

TEST(TesTest, TesIsShortRangeDependent) {
  // Like Markov/DAR, TES matches marginals and short lags but has H ~ 0.5:
  // the modulo-1 walk decorrelates (background correlation dies once the
  // walk wraps), so aggregated variance decays like 1/m.
  TesParams params;
  params.alpha = 0.1;
  TesGammaParetoSource source(paper_marginal(), params);
  Rng rng(6);
  const auto x = source.generate(200000, rng);
  stats::VarianceTimeOptions vt;
  vt.fit_min_m = 500;  // beyond the walk's decorrelation horizon (~1/alpha^2)
  vt.max_m = 10000;
  EXPECT_LT(stats::variance_time(x, vt).hurst, 0.65);
}

TEST(TesTest, ParameterValidation) {
  EXPECT_THROW(TesGammaParetoSource(paper_marginal(), {.alpha = 0.0, .xi = 0.5}),
               vbr::InvalidArgument);
  EXPECT_THROW(TesGammaParetoSource(paper_marginal(), {.alpha = 1.5, .xi = 0.5}),
               vbr::InvalidArgument);
  EXPECT_THROW(TesGammaParetoSource(paper_marginal(), {.alpha = 0.5, .xi = 1.5}),
               vbr::InvalidArgument);
}

}  // namespace
}  // namespace vbr::model
