// Unit tests for the sample ACF (Fig. 7) and its decay-fit helpers.
#include "vbr/stats/autocorrelation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "vbr/common/error.hpp"
#include "vbr/common/rng.hpp"

namespace vbr::stats {
namespace {

std::vector<double> ar1_series(std::size_t n, double rho, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n);
  x[0] = rng.normal();
  const double noise_sd = std::sqrt(1.0 - rho * rho);
  for (std::size_t i = 1; i < n; ++i) x[i] = rho * x[i - 1] + noise_sd * rng.normal();
  return x;
}

TEST(AutocorrelationTest, LagZeroIsOne) {
  Rng rng(1);
  std::vector<double> x(1000);
  for (auto& v : x) v = rng.normal();
  const auto r = autocorrelation(x, 10);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
}

TEST(AutocorrelationTest, FftMatchesDirectImplementation) {
  Rng rng(2);
  std::vector<double> x(2000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.normal() + 0.01 * static_cast<double>(i % 50);
  }
  const auto fast = autocorrelation(x, 100);
  const auto direct = autocorrelation_direct(x, 100);
  ASSERT_EQ(fast.size(), direct.size());
  for (std::size_t k = 0; k < fast.size(); ++k) {
    EXPECT_NEAR(fast[k], direct[k], 1e-10) << "lag " << k;
  }
}

TEST(AutocorrelationTest, WhiteNoiseDecorrelates) {
  Rng rng(3);
  std::vector<double> x(100000);
  for (auto& v : x) v = rng.normal();
  const auto r = autocorrelation(x, 50);
  for (std::size_t k = 1; k <= 50; ++k) {
    EXPECT_NEAR(r[k], 0.0, 4.0 / std::sqrt(static_cast<double>(x.size()))) << "lag " << k;
  }
}

class Ar1AcfSweep : public ::testing::TestWithParam<double> {};

TEST_P(Ar1AcfSweep, RecoverGeometricDecay) {
  const double rho = GetParam();
  const auto x = ar1_series(200000, rho, 42);
  const auto r = autocorrelation(x, 20);
  for (std::size_t k = 1; k <= 5; ++k) {
    EXPECT_NEAR(r[k], std::pow(rho, static_cast<double>(k)), 0.03)
        << "rho=" << rho << " lag=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(RhoGrid, Ar1AcfSweep, ::testing::Values(0.2, 0.5, 0.8, 0.95));

TEST(AutocorrelationTest, PeriodicSignalShowsPeriodicAcf) {
  std::vector<double> x(10000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::sin(2.0 * M_PI * static_cast<double>(i) / 25.0);
  }
  const auto r = autocorrelation(x, 50);
  EXPECT_NEAR(r[25], 1.0, 0.02);   // full period
  EXPECT_NEAR(r[12], -0.95, 0.1);  // roughly half period
}

TEST(AutocorrelationTest, Preconditions) {
  std::vector<double> x{1.0, 2.0, 3.0};
  EXPECT_THROW(autocorrelation(x, 3), vbr::InvalidArgument);  // lag >= n
  std::vector<double> constant(100, 5.0);
  EXPECT_THROW(autocorrelation(constant, 10), vbr::InvalidArgument);
}

TEST(DecayFitTest, ExponentialFitRecoversRho) {
  // Build an exact exponential ACF and check the fit.
  std::vector<double> acf(300);
  for (std::size_t k = 0; k < acf.size(); ++k) acf[k] = std::pow(0.97, static_cast<double>(k));
  EXPECT_NEAR(fit_exponential_decay(acf, 1, 200), 0.97, 1e-6);
}

TEST(DecayFitTest, HyperbolicFitRecoversBeta) {
  std::vector<double> acf(1001);
  acf[0] = 1.0;
  for (std::size_t k = 1; k < acf.size(); ++k) {
    acf[k] = std::pow(static_cast<double>(k), -0.4);
  }
  EXPECT_NEAR(fit_hyperbolic_decay(acf, 10, 1000), 0.4, 1e-6);
}

TEST(DecayFitTest, DistinguishesExponentialFromHyperbolic) {
  // An exponential ACF fitted as hyperbolic over a far lag window gives a
  // large beta; a true LRD ACF gives beta < 1. This is the Fig. 7 argument.
  std::vector<double> exp_acf(2001);
  std::vector<double> hyp_acf(2001);
  for (std::size_t k = 0; k < exp_acf.size(); ++k) {
    exp_acf[k] = std::pow(0.99, static_cast<double>(k));
    hyp_acf[k] = (k == 0) ? 1.0 : 0.9 * std::pow(static_cast<double>(k), -0.4);
  }
  const double beta_exp = fit_hyperbolic_decay(exp_acf, 100, 2000);
  const double beta_hyp = fit_hyperbolic_decay(hyp_acf, 100, 2000);
  EXPECT_GT(beta_exp, 2.0);
  EXPECT_NEAR(beta_hyp, 0.4, 0.01);
}

}  // namespace
}  // namespace vbr::stats
