// Unit tests for trace file I/O: round trips, header handling, bare-number
// compatibility with the classic Bellcore trace format, and corruption
// detection.
#include "vbr/trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "vbr/common/error.hpp"

namespace vbr::trace {
namespace {

class TraceIoTest : public ::testing::Test {
 protected:
  std::filesystem::path temp_path(const std::string& name) {
    const auto dir = std::filesystem::temp_directory_path() / "vbr_trace_io_test";
    std::filesystem::create_directories(dir);
    return dir / name;
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(std::filesystem::temp_directory_path() / "vbr_trace_io_test",
                                ec);
  }
};

TEST_F(TraceIoTest, AsciiRoundTrip) {
  TimeSeries original({27791.5, 8622.0, 78459.25}, 1.0 / 24.0, "bytes/frame");
  const auto path = temp_path("roundtrip.txt");
  write_ascii(original, path);
  const auto loaded = read_ascii(path);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded[i], original[i]);
  }
  EXPECT_DOUBLE_EQ(loaded.dt_seconds(), original.dt_seconds());
  EXPECT_EQ(loaded.unit(), original.unit());
}

TEST_F(TraceIoTest, BareNumbersGetPaperDefaults) {
  // The classic Bellcore distribution format: one frame size per line.
  const auto path = temp_path("bare.txt");
  {
    std::ofstream out(path);
    out << "27791\n8622\n# a comment\n78459\n\n";
  }
  const auto loaded = read_ascii(path);
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_DOUBLE_EQ(loaded[0], 27791.0);
  EXPECT_NEAR(loaded.dt_seconds(), 1.0 / 24.0, 1e-15);
  EXPECT_EQ(loaded.unit(), "bytes/frame");
}

TEST_F(TraceIoTest, AsciiRejectsGarbageLine) {
  const auto path = temp_path("garbage.txt");
  {
    std::ofstream out(path);
    out << "123\nnot-a-number\n";
  }
  EXPECT_THROW(read_ascii(path), IoError);
}

TEST_F(TraceIoTest, MissingFileThrows) {
  EXPECT_THROW(read_ascii(temp_path("does_not_exist.txt")), IoError);
  EXPECT_THROW(read_binary(temp_path("does_not_exist.bin")), IoError);
}

TEST_F(TraceIoTest, BinaryRoundTripPreservesBitExactValues) {
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) values.push_back(27791.0 + 0.1 * i * i - 3.0 / (i + 1));
  TimeSeries original(values, 1.389e-3, "bytes/slice");
  const auto path = temp_path("roundtrip.bin");
  write_binary(original, path);
  const auto loaded = read_binary(path);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded[i], original[i]);  // bit-exact
  }
  EXPECT_EQ(loaded.unit(), "bytes/slice");
  EXPECT_DOUBLE_EQ(loaded.dt_seconds(), 1.389e-3);
}

TEST_F(TraceIoTest, BinaryRejectsBadMagic) {
  const auto path = temp_path("bad_magic.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTATRACEFILE_____________";
  }
  EXPECT_THROW(read_binary(path), IoError);
}

TEST_F(TraceIoTest, BinaryRejectsTruncatedData) {
  TimeSeries original(std::vector<double>(100, 1.0), 1.0);
  const auto path = temp_path("trunc.bin");
  write_binary(original, path);
  // Chop the file.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  EXPECT_THROW(read_binary(path), IoError);
}

TEST_F(TraceIoTest, AsciiRejectsNegativeFrameSize) {
  const auto path = temp_path("negative.txt");
  {
    std::ofstream out(path);
    out << "123\n-456\n789\n";
  }
  EXPECT_THROW(read_ascii(path), IoError);
}

TEST_F(TraceIoTest, AsciiRejectsNonFiniteFrameSize) {
  const auto path = temp_path("nonfinite.txt");
  {
    std::ofstream out(path);
    out << "123\ninf\n";
  }
  EXPECT_THROW(read_ascii(path), IoError);
}

TEST_F(TraceIoTest, AsciiRejectsBadDtHeader) {
  for (const char* header : {"# dt_seconds oops\n1\n", "# dt_seconds -0.04\n1\n",
                             "# dt_seconds 0\n1\n", "# dt_seconds inf\n1\n"}) {
    const auto path = temp_path("bad_dt.txt");
    {
      std::ofstream out(path);
      out << header;
    }
    EXPECT_THROW(read_ascii(path), IoError) << header;
  }
}

TEST_F(TraceIoTest, BinaryRejectsNegativeSample) {
  // A negative frame size can only be produced by corruption (the writer
  // never emits one), so the reader must refuse it.
  TimeSeries original({100.0, 200.0}, 1.0);
  const auto path = temp_path("neg_sample.bin");
  write_binary(original, path);
  {
    std::fstream patch(path, std::ios::binary | std::ios::in | std::ios::out);
    patch.seekp(-2 * static_cast<std::streamoff>(sizeof(double)), std::ios::end);
    const double bad = -200.0;
    patch.write(reinterpret_cast<const char*>(&bad), sizeof bad);
  }
  EXPECT_THROW(read_binary(path), IoError);
}

TEST_F(TraceIoTest, BinaryRejectsOverflowingSampleCount) {
  // Forge the 8-byte sample count to 2^62: the reader must fail on the
  // short read rather than trying to allocate 32 EiB.
  TimeSeries original({100.0, 200.0, 300.0}, 1.0);
  const auto path = temp_path("forged_n.bin");
  write_binary(original, path);
  {
    std::fstream patch(path, std::ios::binary | std::ios::in | std::ios::out);
    patch.seekp(-3 * static_cast<std::streamoff>(sizeof(double)) -
                    static_cast<std::streamoff>(sizeof(std::uint64_t)),
                std::ios::end);
    const std::uint64_t forged = std::uint64_t{1} << 62;
    patch.write(reinterpret_cast<const char*>(&forged), sizeof forged);
  }
  EXPECT_THROW(read_binary(path), IoError);
}

TEST_F(TraceIoTest, BinaryRejectsOversizedUnitLength) {
  const auto path = temp_path("big_unit.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out.write("VBRTRC01", 8);
    const double dt = 0.04;
    out.write(reinterpret_cast<const char*>(&dt), sizeof dt);
    const std::uint32_t unit_len = 1u << 20;  // claims a 1 MiB unit string
    out.write(reinterpret_cast<const char*>(&unit_len), sizeof unit_len);
  }
  EXPECT_THROW(read_binary(path), IoError);
}

TEST_F(TraceIoTest, EmptySeriesRoundTrips) {
  TimeSeries empty(std::vector<double>{}, 1.0, "bytes");
  const auto apath = temp_path("empty.txt");
  const auto bpath = temp_path("empty.bin");
  write_ascii(empty, apath);
  write_binary(empty, bpath);
  EXPECT_EQ(read_ascii(apath).size(), 0u);
  EXPECT_EQ(read_binary(bpath).size(), 0u);
}

}  // namespace
}  // namespace vbr::trace
