// Property tests for the net layer at the edges of its domain: utilization
// driven to (and past) 1, zero and sub-cell buffers, Hurst parameters
// pressed against both ends of (0.5, 1). The contract under test: every
// evaluation either returns finite, in-range numbers or throws a typed
// vbr::Error — it never hangs, never returns NaN/Inf, never loses mass.
// These are exactly the extremes the sweep supervisor exists to survive;
// the cheaper the failure here, the less often a worker has to die for it.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "vbr/common/error.hpp"
#include "vbr/common/rng.hpp"
#include "vbr/net/cell.hpp"
#include "vbr/net/cell_queue.hpp"
#include "vbr/net/fbm_queue.hpp"
#include "vbr/net/fluid_queue.hpp"

namespace vbr::net {
namespace {

constexpr double kDt = 1.0 / 24.0;

/// A bursty but deterministic arrival series (bytes per interval).
std::vector<double> bursty_series(std::size_t n, double mean_bytes) {
  Rng rng(1994);
  std::vector<double> series(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Right-skewed: mostly small intervals, occasional 8x bursts.
    const double u = rng.uniform(0.0, 1.0);
    series[i] = mean_bytes * (u < 0.9 ? 0.6 : 8.0) * rng.uniform(0.5, 1.5);
  }
  return series;
}

double series_mean_rate(const std::vector<double>& series) {
  double total = 0.0;
  for (double v : series) total += v;
  return total / (static_cast<double>(series.size()) * kDt);
}

void expect_sane_fluid(const FluidQueueResult& result) {
  EXPECT_TRUE(std::isfinite(result.loss_rate()));
  EXPECT_GE(result.loss_rate(), 0.0);
  EXPECT_LE(result.loss_rate(), 1.0);
  EXPECT_TRUE(std::isfinite(result.mean_queue_bytes));
  EXPECT_TRUE(std::isfinite(result.max_queue_bytes));
  EXPECT_GE(result.max_queue_bytes, 0.0);
  // Conservation: nothing lost that never arrived.
  EXPECT_LE(result.lost_bytes, result.arrived_bytes);
}

TEST(NetExtremes, FluidQueueSurvivesUtilizationSweepToOverload) {
  const std::vector<double> series = bursty_series(2048, 20000.0);
  const double mean_rate = series_mean_rate(series);
  // Utilization 0.5 up through exactly 1.0 and into overload at 2.0.
  for (double utilization : {0.5, 0.9, 0.99, 0.999, 1.0, 1.25, 2.0}) {
    const double capacity = mean_rate / utilization;
    for (double buffer : {0.0, 1.0, 1e4, 1e9}) {
      const FluidQueueResult result =
          run_fluid_queue(series, kDt, capacity, buffer);
      expect_sane_fluid(result);
      EXPECT_LE(result.max_queue_bytes, buffer);
      if (utilization > 1.0 && buffer <= 1.0) {
        // Sustained overload with no buffer must lose traffic.
        EXPECT_GT(result.loss_rate(), 0.0);
      }
    }
  }
}

TEST(NetExtremes, FluidQueueZeroBufferLosesExactlyTheExcess) {
  // Constant-rate arrivals at twice capacity, zero buffer: exactly half of
  // every interval's fluid must be lost, and the queue stays empty.
  const std::vector<double> series(64, 2000.0);
  const double capacity = 1000.0 / kDt;  // half the arrival rate
  const FluidQueueResult result = run_fluid_queue(series, kDt, capacity, 0.0);
  EXPECT_NEAR(result.loss_rate(), 0.5, 1e-12);
  EXPECT_EQ(result.max_queue_bytes, 0.0);
}

TEST(NetExtremes, FluidQueueRejectsPoisonedParametersLoudly) {
  const std::vector<double> series(8, 1000.0);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(run_fluid_queue(series, kDt, 0.0, 100.0), InvalidArgument);
  EXPECT_THROW(run_fluid_queue(series, kDt, -5.0, 100.0), InvalidArgument);
  EXPECT_THROW(run_fluid_queue(series, kDt, 1000.0, -1.0), InvalidArgument);
  EXPECT_THROW(run_fluid_queue(series, kDt, nan, 100.0), NumericalError);
  EXPECT_THROW(run_fluid_queue(series, kDt, 1000.0, inf), NumericalError);
}

TEST(NetExtremes, CellQueueZeroBufferLosesEveryCell) {
  const std::vector<double> series(32, 4800.0);  // 100 cells per interval
  Rng rng(7);
  for (double buffer : {0.0, 1.0, kCellPayloadBytes - 0.5}) {
    const CellQueueResult result = run_cell_queue(series, kDt, 1e6, buffer,
                                                  CellSpacing::kUniform, rng);
    EXPECT_GT(result.arrived_cells, 0u);
    EXPECT_EQ(result.lost_cells, result.arrived_cells) << "buffer " << buffer;
    EXPECT_EQ(result.loss_rate(), 1.0);
  }
}

TEST(NetExtremes, CellQueueSurvivesOverloadWithBothSpacings) {
  const std::vector<double> series = bursty_series(256, 48000.0);
  const double mean_rate = series_mean_rate(series);
  for (CellSpacing spacing : {CellSpacing::kUniform, CellSpacing::kRandom}) {
    for (double utilization : {0.9, 1.0, 2.0}) {
      Rng rng(11);
      const CellQueueResult result = run_cell_queue(
          series, kDt, mean_rate / utilization, 64 * kCellPayloadBytes, spacing, rng);
      EXPECT_LE(result.lost_cells, result.arrived_cells);
      EXPECT_TRUE(std::isfinite(result.loss_rate()));
    }
  }
}

TEST(NetExtremes, CellQueueRejectsNegativeBuffer) {
  const std::vector<double> series(4, 4800.0);
  Rng rng(3);
  EXPECT_THROW(
      run_cell_queue(series, kDt, 1e6, -1.0, CellSpacing::kUniform, rng),
      InvalidArgument);
}

TEST(NetExtremes, FbmSurvivesHurstPressedAgainstBothEnds) {
  const std::vector<double> series = bursty_series(1024, 20000.0);
  const double mean = series_mean_rate(series) * kDt;  // bytes per interval
  for (double hurst : {0.5 + 1e-9, 0.500001, 0.75, 0.999999, 1.0 - 1e-9}) {
    const FbmTrafficParams traffic = fit_fbm_traffic(series, hurst);
    EXPECT_TRUE(std::isfinite(fbm_kappa(hurst)));
    for (double buffer : {0.0, 1.0, 1e4, 1e12}) {
      const double p = fbm_overflow_probability(traffic, mean / 0.9, buffer);
      EXPECT_TRUE(std::isfinite(p)) << "H=" << hurst << " b=" << buffer;
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
    for (double buffer : {1.0, 1e4, 1e12}) {
      const double c = fbm_required_capacity(traffic, buffer, 1e-6);
      EXPECT_TRUE(std::isfinite(c));
      EXPECT_GT(c, traffic.mean_bytes);
    }
  }
}

TEST(NetExtremes, FbmSaturatedLinkOverflowsWithCertainty) {
  const std::vector<double> series = bursty_series(512, 20000.0);
  const FbmTrafficParams traffic = fit_fbm_traffic(series, 0.8);
  // capacity <= mean (utilization >= 1): the stationary queue diverges.
  EXPECT_EQ(fbm_overflow_probability(traffic, traffic.mean_bytes, 1e6), 1.0);
  EXPECT_EQ(fbm_overflow_probability(traffic, traffic.mean_bytes * 0.5, 1e6), 1.0);
  // Zero buffer: the asymptotic bound degenerates to certainty, not NaN.
  EXPECT_EQ(fbm_overflow_probability(traffic, traffic.mean_bytes / 0.9, 0.0), 1.0);
}

TEST(NetExtremes, FbmRejectsDomainViolationsLoudly) {
  const std::vector<double> series = bursty_series(64, 20000.0);
  EXPECT_THROW(fit_fbm_traffic(series, 0.0), InvalidArgument);
  EXPECT_THROW(fit_fbm_traffic(series, 1.0), InvalidArgument);
  const FbmTrafficParams traffic = fit_fbm_traffic(series, 0.8);
  EXPECT_THROW(fbm_required_capacity(traffic, 0.0, 1e-6), InvalidArgument);
  EXPECT_THROW(fbm_required_capacity(traffic, 1e4, 0.0), InvalidArgument);
  EXPECT_THROW(fbm_required_capacity(traffic, 1e4, 1.0), InvalidArgument);
  EXPECT_THROW(fbm_overflow_probability(traffic, 1e9, -1.0), InvalidArgument);
}

}  // namespace
}  // namespace vbr::net
