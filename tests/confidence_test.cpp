// Tests for the Fig. 9 experiment machinery: running-mean confidence
// intervals under i.i.d. vs LRD assumptions.
#include "vbr/stats/confidence.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "vbr/common/error.hpp"
#include "vbr/common/math_util.hpp"
#include "vbr/common/rng.hpp"
#include "vbr/model/davies_harte.hpp"

namespace vbr::stats {
namespace {

TEST(ConfidenceTest, HalfwidthFormulas) {
  std::vector<double> data(10000);
  Rng rng(1);
  for (auto& v : data) v = rng.normal(100.0, 15.0);
  const std::vector<std::size_t> ns{100, 1000, 10000};
  const auto points = running_mean_ci(data, ns, 0.8);
  ASSERT_EQ(points.size(), 3u);
  for (const auto& p : points) {
    const auto prefix = std::span<const double>(data).subspan(0, p.n);
    const double sd = std::sqrt(sample_variance(prefix));
    EXPECT_NEAR(p.iid_halfwidth, 1.96 * sd / std::sqrt(static_cast<double>(p.n)), 1e-9);
    EXPECT_NEAR(p.lrd_halfwidth, 1.96 * sd * std::pow(static_cast<double>(p.n), -0.2), 1e-9);
    // LRD intervals are wider for H > 0.5.
    EXPECT_GT(p.lrd_halfwidth, p.iid_halfwidth);
  }
}

TEST(ConfidenceTest, AtHalfHurstBothWidthsCoincide) {
  std::vector<double> data(1000);
  Rng rng(2);
  for (auto& v : data) v = rng.normal();
  const std::vector<std::size_t> ns{500};
  const auto points = running_mean_ci(data, ns, 0.5);
  EXPECT_NEAR(points[0].iid_halfwidth, points[0].lrd_halfwidth, 1e-12);
}

TEST(ConfidenceTest, LrdWidthShrinksSlower) {
  std::vector<double> data(100000);
  Rng rng(3);
  for (auto& v : data) v = rng.normal();
  const std::vector<std::size_t> ns{100, 10000};
  const auto points = running_mean_ci(data, ns, 0.9);
  const double iid_ratio = points[0].iid_halfwidth / points[1].iid_halfwidth;
  const double lrd_ratio = points[0].lrd_halfwidth / points[1].lrd_halfwidth;
  // Over a 100x increase in n: iid shrinks ~10x (modulo the prefix-sd
  // ratio), H=0.9 LRD shrinks only 100^0.1 ~ 1.58x.
  EXPECT_NEAR(iid_ratio, 10.0, 2.0);
  EXPECT_NEAR(lrd_ratio, std::pow(100.0, 0.1), 0.4);
  EXPECT_GT(iid_ratio / lrd_ratio, 4.0);
}

TEST(ConfidenceTest, IidIntervalsFailUnderLrdButLrdIntervalsHold) {
  // The Fig. 9 phenomenon, reproduced end to end on synthetic fGn.
  Rng rng(4);
  model::DaviesHarteOptions opt;
  opt.hurst = 0.85;
  auto data = model::davies_harte(131072, opt, rng);
  for (auto& v : data) v = 100.0 + 10.0 * v;

  std::vector<std::size_t> ns;
  for (std::size_t n = 256; n <= data.size(); n *= 2) ns.push_back(n);
  const auto points = running_mean_ci(data, ns, 0.85);
  const double final_mean = sample_mean(data);
  const auto coverage = ci_coverage(points, final_mean);
  // The iid intervals should miss the final mean much more often than the
  // LRD-corrected ones.
  EXPECT_LT(coverage.iid_coverage, coverage.lrd_coverage);
  EXPECT_GT(coverage.lrd_coverage, 0.7);
}

TEST(ConfidenceTest, Preconditions) {
  std::vector<double> data(100, 1.0);
  const std::vector<std::size_t> bad{0};
  EXPECT_THROW(running_mean_ci(data, bad, 0.8), vbr::InvalidArgument);
  const std::vector<std::size_t> too_big{101};
  EXPECT_THROW(running_mean_ci(data, too_big, 0.8), vbr::InvalidArgument);
  const std::vector<std::size_t> ok{50};
  EXPECT_THROW(running_mean_ci(data, ok, 1.5), vbr::InvalidArgument);
  EXPECT_THROW(ci_coverage({}, 0.0), vbr::InvalidArgument);
}

}  // namespace
}  // namespace vbr::stats
