// Cross-module integration tests: the full pipelines the paper's
// experiments are built from.
//
//  1. codec: synthetic movie -> intraframe coder -> VBR trace with scene
//     structure (Table 1 pipeline).
//  2. analysis: surrogate trace -> Table 2 / Table 3 statistics.
//  3. modeling: fit the 4-parameter model to the surrogate, generate, and
//     compare marginals + H (Section 4 closure).
//  4. simulation: trace-driven Q-C behavior matches the paper's ordering
//     (Fig. 14/16 shape checks at reduced scale).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "vbr/codec/intraframe_coder.hpp"
#include "vbr/codec/synthetic_movie.hpp"
#include "vbr/common/math_util.hpp"
#include "vbr/model/model_validation.hpp"
#include "vbr/model/starwars_surrogate.hpp"
#include "vbr/model/vbr_source.hpp"
#include "vbr/net/qc_analysis.hpp"
#include "vbr/stats/autocorrelation.hpp"
#include "vbr/stats/gamma_pareto.hpp"
#include "vbr/stats/variance_time.hpp"
#include "vbr/stats/whittle.hpp"
#include "vbr/trace/aggregate.hpp"

namespace {

const vbr::model::SurrogateTrace& surrogate() {
  static const auto trace = [] {
    vbr::model::SurrogateOptions opt;
    opt.frames = 65536;
    return vbr::model::make_starwars_surrogate(opt);
  }();
  return trace;
}

TEST(CodecPipelineIntegration, MovieThroughCoderYieldsSceneStructuredVbr) {
  vbr::codec::MovieConfig config;
  config.width = 64;
  config.height = 64;
  const vbr::codec::SyntheticMovie movie(config, 600);
  vbr::codec::IntraframeCoder coder;

  std::vector<double> bytes_per_frame;
  for (std::size_t f = 0; f < movie.frame_count(); f += 2) {
    bytes_per_frame.push_back(
        static_cast<double>(coder.encode(movie.frame(f)).total_bytes()));
  }
  // VBR: nontrivial variability.
  const double cov = std::sqrt(vbr::sample_variance(bytes_per_frame)) /
                     vbr::sample_mean(bytes_per_frame);
  EXPECT_GT(cov, 0.05);
  // Scene structure: strong short-lag autocorrelation (shots hold their
  // complexity for many frames).
  const auto acf = vbr::stats::autocorrelation(bytes_per_frame, 20);
  EXPECT_GT(acf[1], 0.5);
}

TEST(AnalysisIntegration, SurrogateReproducesTable2AndTable3Character) {
  const auto& trace = surrogate();
  const auto s = trace.frames.summary();
  // Table 2 shape.
  EXPECT_NEAR(s.mean, 27791.0, 0.03 * 27791.0);
  EXPECT_NEAR(s.coefficient_of_variation, 0.23, 0.05);
  EXPECT_GT(s.peak_to_mean, 1.8);
  EXPECT_LT(s.peak_to_mean, 4.5);

  // Table 3: two independent estimators both see H ~ 0.8.
  vbr::stats::VarianceTimeOptions vt_opt;
  vt_opt.fit_min_m = 100;
  vt_opt.max_m = trace.frames.size() / 20;
  const double h_vt = vbr::stats::variance_time(trace.frames.samples(), vt_opt).hurst;
  auto logs = trace.frames.values();
  for (auto& v : logs) v = std::log(v);
  const double h_wh = vbr::stats::whittle_estimate(vbr::block_means(logs, 256),
                                                   vbr::stats::SpectralModel::kFgn)
                          .hurst;
  // Realization variance of H estimates is wide at this reduced length;
  // both methods must still see clear LRD in the right region.
  EXPECT_NEAR(h_vt, 0.8, 0.15);
  EXPECT_GT(h_wh, 0.65);
  EXPECT_LE(h_wh, 0.99);
}

TEST(ModelIntegration, FitGenerateRefitCloses) {
  const auto& trace = surrogate();
  const auto model = vbr::model::VbrVideoSourceModel::fit(trace.frames.samples());
  // Fitted parameters near the construction calibration.
  EXPECT_NEAR(model.params().marginal.mu_gamma, 27791.0, 0.05 * 27791.0);
  EXPECT_NEAR(model.params().hurst, 0.8, 0.1);

  vbr::Rng rng(2024);
  const auto report = vbr::model::validate_model(model, 65536, rng);
  EXPECT_LT(report.mean_rel_error, 0.05);
  EXPECT_LT(report.hurst_abs_error, 0.1);
}

TEST(SimulationIntegration, QcOrderingMatchesFig14) {
  const auto& trace = surrogate();
  vbr::net::MuxExperiment exp;
  exp.sources = 2;
  exp.replications = 2;
  const vbr::net::MuxWorkload workload(trace.frames.samples(), exp);

  // Loss-target ordering at fixed delay: stricter targets need more
  // capacity (the vertical ordering of the Fig. 14 curves).
  const double c_zero = vbr::net::required_capacity_bps(
      workload, 0.002, 0.0, vbr::net::QosMeasure::kOverallLoss);
  const double c_em4 = vbr::net::required_capacity_bps(
      workload, 0.002, 1e-4, vbr::net::QosMeasure::kOverallLoss);
  const double c_em2 = vbr::net::required_capacity_bps(
      workload, 0.002, 1e-2, vbr::net::QosMeasure::kOverallLoss);
  EXPECT_GE(c_zero, c_em4);
  EXPECT_GE(c_em4, c_em2);
  // All between mean and peak.
  EXPECT_GE(c_em2, workload.source_mean_rate_bps() * 0.95);
  EXPECT_LE(c_zero, workload.source_peak_rate_bps() * 1.05);
}

TEST(SimulationIntegration, ModelVsTraceComparisonRunsLikeFig16) {
  // Reduced-scale Fig. 16: the full model's required capacity is closer to
  // the trace's than the i.i.d. variant's at a long-buffer operating point
  // (LRD dominates when buffers are large).
  const auto& trace = surrogate();
  const auto model = vbr::model::VbrVideoSourceModel::fit(trace.frames.samples());
  vbr::Rng rng(77);
  const auto full = model.generate(trace.frames.size(), rng, vbr::model::ModelVariant::kFull);
  const auto iid =
      model.generate(trace.frames.size(), rng, vbr::model::ModelVariant::kIidGammaPareto);

  vbr::net::MuxExperiment exp;
  exp.sources = 1;
  const double delay = 2.0;  // long buffer: time correlation matters
  const double target = 1e-3;
  const auto cap = [&](std::span<const double> frames) {
    const vbr::net::MuxWorkload w(frames, exp);
    return vbr::net::required_capacity_bps(w, delay, target,
                                           vbr::net::QosMeasure::kOverallLoss);
  };
  const double c_trace = cap(trace.frames.samples());
  const double c_full = cap(full);
  const double c_iid = cap(iid);
  EXPECT_LT(std::abs(c_full - c_trace), std::abs(c_iid - c_trace) + 1e-6);
  // And the i.i.d. model is the optimistic one (less capacity demanded).
  EXPECT_LT(c_iid, c_full);
}

TEST(EndToEndIntegration, SliceTraceDrivesQueueConsistentlyWithFrames) {
  // Aggregating slice-level simulation input back to frames must conserve
  // bytes, so frame- and slice-driven runs see the same mean load.
  const auto& trace = surrogate();
  const auto frames = trace.frames.slice(0, 4096);
  const auto slices = vbr::trace::expand_to_slices(frames, 30, 0.36);
  EXPECT_NEAR(vbr::kahan_total(slices.samples()), vbr::kahan_total(frames.samples()), 1.0);
  EXPECT_NEAR(slices.mean_rate_bps(), frames.mean_rate_bps(), frames.mean_rate_bps() * 1e-9);
}

}  // namespace
