// Unit tests for special functions against closed forms and published
// reference values.
#include "vbr/common/special_functions.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "vbr/common/error.hpp"

namespace vbr {
namespace {

TEST(SpecialFunctionsTest, LogGammaKnownValues) {
  EXPECT_NEAR(log_gamma(1.0), 0.0, 1e-14);
  EXPECT_NEAR(log_gamma(2.0), 0.0, 1e-14);
  EXPECT_NEAR(log_gamma(5.0), std::log(24.0), 1e-12);
  EXPECT_NEAR(log_gamma(0.5), 0.5 * std::log(M_PI), 1e-12);
  EXPECT_THROW(log_gamma(0.0), InvalidArgument);
}

TEST(SpecialFunctionsTest, LogBetaSymmetryAndValue) {
  EXPECT_NEAR(log_beta(2.0, 3.0), std::log(1.0 / 12.0), 1e-12);
  EXPECT_NEAR(log_beta(4.5, 1.5), log_beta(1.5, 4.5), 1e-14);
}

TEST(SpecialFunctionsTest, GammaPBoundaries) {
  EXPECT_DOUBLE_EQ(gamma_p(2.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(gamma_q(2.0, 0.0), 1.0);
  EXPECT_NEAR(gamma_p(3.0, 1e8), 1.0, 1e-12);
}

TEST(SpecialFunctionsTest, GammaPMatchesExponentialClosedForm) {
  // P(1, x) = 1 - e^{-x}.
  for (double x : {0.1, 0.5, 1.0, 2.0, 5.0, 10.0}) {
    EXPECT_NEAR(gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-13) << "x=" << x;
  }
}

TEST(SpecialFunctionsTest, GammaPMatchesErlangClosedForm) {
  // P(2, x) = 1 - e^{-x}(1 + x).
  for (double x : {0.2, 1.0, 3.0, 8.0}) {
    EXPECT_NEAR(gamma_p(2.0, x), 1.0 - std::exp(-x) * (1.0 + x), 1e-13) << "x=" << x;
  }
}

TEST(SpecialFunctionsTest, GammaPPlusQIsOne) {
  for (double s : {0.3, 1.0, 2.5, 19.75}) {
    for (double x : {0.01, 0.5, 2.0, 20.0, 80.0}) {
      EXPECT_NEAR(gamma_p(s, x) + gamma_q(s, x), 1.0, 1e-12) << "s=" << s << " x=" << x;
    }
  }
}

TEST(SpecialFunctionsTest, GammaPInverseRoundTrip) {
  for (double s : {0.5, 1.0, 2.0, 19.75, 100.0}) {
    for (double p : {1e-6, 0.01, 0.1, 0.5, 0.9, 0.99, 0.999999}) {
      const double x = gamma_p_inverse(s, p);
      EXPECT_NEAR(gamma_p(s, x), p, 1e-9) << "s=" << s << " p=" << p;
    }
  }
}

TEST(SpecialFunctionsTest, GammaPInverseEdges) {
  EXPECT_DOUBLE_EQ(gamma_p_inverse(3.0, 0.0), 0.0);
  EXPECT_THROW(gamma_p_inverse(3.0, 1.0), InvalidArgument);
  EXPECT_THROW(gamma_p_inverse(0.0, 0.5), InvalidArgument);
}

TEST(SpecialFunctionsTest, NormalCdfKnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(normal_cdf(-1.0), 1.0 - 0.8413447460685429, 1e-12);
  EXPECT_NEAR(normal_cdf(1.959963984540054), 0.975, 1e-12);
  EXPECT_NEAR(normal_cdf(-8.0), 6.22096057427178e-16, 1e-17);
}

TEST(SpecialFunctionsTest, NormalQuantileKnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-15);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963984540054, 1e-12);
  EXPECT_NEAR(normal_quantile(0.025), -1.959963984540054, 1e-12);
  EXPECT_NEAR(normal_quantile(0.8413447460685429), 1.0, 1e-10);
  EXPECT_THROW(normal_quantile(0.0), InvalidArgument);
  EXPECT_THROW(normal_quantile(1.0), InvalidArgument);
}

// Property sweep: quantile and CDF are inverse over a wide probability grid.
class NormalRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(NormalRoundTrip, QuantileCdfInverse) {
  const double p = GetParam();
  EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Probabilities, NormalRoundTrip,
                         ::testing::Values(1e-12, 1e-8, 1e-4, 0.01, 0.1, 0.3, 0.5, 0.7,
                                           0.9, 0.99, 0.9999, 1.0 - 1e-8));

}  // namespace
}  // namespace vbr
