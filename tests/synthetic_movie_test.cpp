// Tests for the procedural movie renderer feeding the intraframe coder.
#include "vbr/codec/synthetic_movie.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "vbr/codec/intraframe_coder.hpp"
#include "vbr/common/error.hpp"

namespace vbr::codec {
namespace {

MovieConfig small_config() {
  MovieConfig c;
  c.width = 64;
  c.height = 64;
  return c;
}

TEST(SyntheticMovieTest, DeterministicFrames) {
  const SyntheticMovie movie(small_config(), 100);
  const Frame a = movie.frame(42);
  const Frame b = movie.frame(42);
  EXPECT_TRUE(std::equal(a.pixels().begin(), a.pixels().end(), b.pixels().begin()));
}

TEST(SyntheticMovieTest, DifferentSeedsDifferentPictures) {
  MovieConfig c1 = small_config();
  MovieConfig c2 = small_config();
  c2.seed = 1234;
  const SyntheticMovie m1(c1, 10);
  const SyntheticMovie m2(c2, 10);
  const Frame f1 = m1.frame(0);
  const Frame f2 = m2.frame(0);
  EXPECT_FALSE(std::equal(f1.pixels().begin(), f1.pixels().end(), f2.pixels().begin()));
}

TEST(SyntheticMovieTest, ScenesTileMovie) {
  const SyntheticMovie movie(small_config(), 5000);
  std::size_t covered = 0;
  for (const auto& s : movie.scenes()) covered += s.length;
  EXPECT_EQ(covered, 5000u);
  // scene_at agrees with the scene list.
  for (std::size_t f = 0; f < 5000; f += 123) {
    const auto& s = movie.scene_at(f);
    EXPECT_GE(f, s.start_frame);
    EXPECT_LT(f, s.start_frame + s.length);
  }
}

TEST(SyntheticMovieTest, FramesWithinSceneAreSimilarAcrossCutsDiffer) {
  const SyntheticMovie movie(small_config(), 3000);
  // Find a scene with length >= 3 and a neighbor.
  const auto& scenes = movie.scenes();
  ASSERT_GE(scenes.size(), 2u);
  std::size_t idx = 0;
  while (idx + 1 < scenes.size() && scenes[idx].length < 3) ++idx;
  ASSERT_LT(idx + 1, scenes.size());
  const auto& s = scenes[idx];

  const Frame f0 = movie.frame(s.start_frame);
  const Frame f1 = movie.frame(s.start_frame + 1);
  const Frame other = movie.frame(scenes[idx + 1].start_frame);

  auto mean_abs_diff = [](const Frame& a, const Frame& b) {
    double acc = 0.0;
    for (std::size_t i = 0; i < a.pixels().size(); ++i) {
      acc += std::abs(static_cast<double>(a.pixels()[i]) - static_cast<double>(b.pixels()[i]));
    }
    return acc / static_cast<double>(a.pixels().size());
  };
  // Consecutive frames of one scene differ only by grain/pan; a cut swaps
  // the whole texture.
  EXPECT_LT(mean_abs_diff(f0, f1) * 1.5, mean_abs_diff(f0, other));
}

TEST(SyntheticMovieTest, ComplexSceneCostsMoreBitsToCode) {
  // The central premise: scene complexity -> coded bytes. Compare the
  // cheapest and priciest scenes through the real coder.
  const SyntheticMovie movie(small_config(), 4000);
  const auto& scenes = movie.scenes();
  const auto lo = std::min_element(scenes.begin(), scenes.end(),
                                   [](const auto& a, const auto& b) {
                                     return a.complexity < b.complexity;
                                   });
  const auto hi = std::max_element(scenes.begin(), scenes.end(),
                                   [](const auto& a, const auto& b) {
                                     return a.complexity < b.complexity;
                                   });
  ASSERT_GT(hi->complexity, 1.5 * lo->complexity);
  IntraframeCoder coder;
  const auto lo_bytes = coder.encode(movie.frame(lo->start_frame)).total_bytes();
  const auto hi_bytes = coder.encode(movie.frame(hi->start_frame)).total_bytes();
  EXPECT_GT(hi_bytes, lo_bytes);
}

TEST(SyntheticMovieTest, PixelsUseFullDynamicRangeSensibly) {
  const SyntheticMovie movie(small_config(), 50);
  const Frame f = movie.frame(0);
  const auto px = f.pixels();
  const auto [lo, hi] = std::minmax_element(px.begin(), px.end());
  EXPECT_LT(*lo, 120);
  EXPECT_GT(*hi, 136);
  double mean = 0.0;
  for (auto p : px) mean += static_cast<double>(p);
  mean /= static_cast<double>(px.size());
  EXPECT_NEAR(mean, 128.0, 25.0);
}

TEST(SyntheticMovieTest, Preconditions) {
  EXPECT_THROW(SyntheticMovie(small_config(), 0), vbr::InvalidArgument);
  const SyntheticMovie movie(small_config(), 10);
  EXPECT_THROW(movie.frame(10), vbr::InvalidArgument);
  EXPECT_THROW(movie.scene_at(10), vbr::InvalidArgument);
}

}  // namespace
}  // namespace vbr::codec
