// Tests for the discrete cell-level queue and its agreement with the fluid
// model (the validation the fluid simulator's exactness claim rests on).
#include "vbr/net/cell_queue.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "vbr/common/error.hpp"
#include "vbr/net/cell.hpp"
#include "vbr/net/fluid_queue.hpp"

namespace vbr::net {
namespace {

TEST(CellMathTest, BytesToCells) {
  EXPECT_EQ(bytes_to_cells(0.0), 0u);
  EXPECT_EQ(bytes_to_cells(1.0), 1u);
  EXPECT_EQ(bytes_to_cells(48.0), 1u);
  EXPECT_EQ(bytes_to_cells(49.0), 2u);
  EXPECT_EQ(bytes_to_cells(480.0), 10u);
  EXPECT_DOUBLE_EQ(cell_padded_bytes(49.0), 96.0);
  EXPECT_THROW(bytes_to_cells(-1.0), vbr::InvalidArgument);
}

TEST(CellQueueTest, NoLossWhenUnderCapacity) {
  std::vector<double> arrivals(100, 480.0);  // 10 cells per 0.1 s = 4800 B/s
  Rng rng(1);
  const auto r = run_cell_queue(arrivals, 0.1, 10000.0, 480.0, CellSpacing::kUniform, rng);
  EXPECT_EQ(r.lost_cells, 0u);
  EXPECT_EQ(r.arrived_cells, 1000u);
  EXPECT_DOUBLE_EQ(r.loss_rate(), 0.0);
}

TEST(CellQueueTest, SevereOverloadLosesMostCells) {
  std::vector<double> arrivals(100, 4800.0);  // 48000 B/s into 4800 B/s
  Rng rng(2);
  const auto r = run_cell_queue(arrivals, 0.1, 4800.0, 480.0, CellSpacing::kUniform, rng);
  EXPECT_NEAR(r.loss_rate(), 0.9, 0.02);
}

TEST(CellQueueTest, AgreesWithFluidModelOnSmoothLoad) {
  // Moderate overload with uniform spacing: the fluid queue is the limit of
  // the cell queue, so loss rates must match to within cell granularity.
  std::vector<double> arrivals;
  Rng shape_rng(3);
  for (int i = 0; i < 2000; ++i) {
    arrivals.push_back(std::max(0.0, shape_rng.normal(27791.0, 6254.0)));
  }
  const double dt = 1.0 / 24.0;
  const double capacity = 27791.0 * 24.0 * 1.05;  // 5% above the mean rate
  const double buffer = capacity * 0.002;          // 2 ms worth

  Rng rng(4);
  const auto cell = run_cell_queue(arrivals, dt, capacity, buffer, CellSpacing::kUniform, rng);
  const auto fluid = run_fluid_queue(arrivals, dt, capacity, buffer);
  EXPECT_GT(cell.loss_rate(), 0.0);
  EXPECT_NEAR(cell.loss_rate(), fluid.loss_rate(), 0.015);
}

TEST(CellQueueTest, RandomSpacingLosesAtLeastAsMuchAsUniform) {
  // Clumped arrivals stress the buffer harder than evenly spaced ones.
  std::vector<double> arrivals;
  Rng shape_rng(5);
  for (int i = 0; i < 1500; ++i) {
    arrivals.push_back(std::max(0.0, shape_rng.normal(27791.0, 6254.0)));
  }
  const double dt = 1.0 / 24.0;
  const double capacity = 27791.0 * 24.0 * 1.1;
  const double buffer = 3.0 * kCellPayloadBytes;  // tiny buffer magnifies spacing effects

  Rng rng_u(6);
  Rng rng_r(7);
  const auto uniform =
      run_cell_queue(arrivals, dt, capacity, buffer, CellSpacing::kUniform, rng_u);
  const auto random =
      run_cell_queue(arrivals, dt, capacity, buffer, CellSpacing::kRandom, rng_r);
  EXPECT_GE(random.loss_rate(), uniform.loss_rate() * 0.9);
  EXPECT_GT(random.loss_rate(), 0.0);
}

TEST(CellQueueTest, LossMonotoneInBuffer) {
  std::vector<double> arrivals;
  Rng shape_rng(8);
  for (int i = 0; i < 1000; ++i) {
    arrivals.push_back(std::max(0.0, shape_rng.normal(2000.0, 900.0)));
  }
  Rng rng(9);
  double prev = 1.0;
  for (double cells : {1.0, 4.0, 16.0, 64.0}) {
    Rng local = rng;  // same arrival pattern per run (uniform spacing ignores rng)
    const auto r = run_cell_queue(arrivals, 0.04, 2000.0 / 0.04, cells * kCellPayloadBytes,
                                  CellSpacing::kUniform, local);
    EXPECT_LE(r.loss_rate(), prev + 1e-12);
    prev = r.loss_rate();
  }
}

TEST(CellQueueTest, Preconditions) {
  std::vector<double> arrivals{100.0};
  Rng rng(10);
  EXPECT_THROW(run_cell_queue(arrivals, 0.0, 100.0, 480.0, CellSpacing::kUniform, rng),
               vbr::InvalidArgument);
  EXPECT_THROW(run_cell_queue(arrivals, 1.0, 0.0, 480.0, CellSpacing::kUniform, rng),
               vbr::InvalidArgument);
  EXPECT_THROW(run_cell_queue(arrivals, 1.0, 100.0, -1.0, CellSpacing::kUniform, rng),
               vbr::InvalidArgument);
  // A sub-cell buffer is legal but degenerate: every arriving cell is lost.
  const CellQueueResult starved =
      run_cell_queue(arrivals, 1.0, 100.0, 10.0, CellSpacing::kUniform, rng);
  EXPECT_EQ(starved.lost_cells, starved.arrived_cells);
  EXPECT_GT(starved.arrived_cells, 0u);
}

}  // namespace
}  // namespace vbr::net
