// Tests for the exact fluid FIFO queue: conservation laws, closed-form
// single-interval behavior, and monotonicity in resources.
#include "vbr/net/fluid_queue.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "vbr/common/error.hpp"
#include "vbr/common/rng.hpp"

namespace vbr::net {
namespace {

TEST(FluidQueueTest, NoLossBelowCapacity) {
  FluidQueue q(1000.0, 100.0);
  const double lost = q.offer(500.0, 1.0);  // 500 B/s into 1000 B/s
  EXPECT_DOUBLE_EQ(lost, 0.0);
  EXPECT_DOUBLE_EQ(q.queue_bytes(), 0.0);
}

TEST(FluidQueueTest, QueueGrowsAtNetRate) {
  FluidQueue q(1000.0, 1e9);
  q.offer(1500.0, 1.0);  // net +500 B over 1 s
  EXPECT_DOUBLE_EQ(q.queue_bytes(), 500.0);
  q.offer(800.0, 1.0);  // net -200
  EXPECT_DOUBLE_EQ(q.queue_bytes(), 300.0);
}

TEST(FluidQueueTest, LossOnceBufferFull) {
  FluidQueue q(1000.0, 100.0);
  // Net input +500 B/s; buffer fills after 0.2 s; loss = 500 * 0.8 = 400.
  const double lost = q.offer(1500.0, 1.0);
  EXPECT_NEAR(lost, 400.0, 1e-9);
  EXPECT_DOUBLE_EQ(q.queue_bytes(), 100.0);
}

TEST(FluidQueueTest, ZeroBufferIsBufferlessMultiplexer) {
  FluidQueue q(1000.0, 0.0);
  const double lost = q.offer(1500.0, 1.0);
  EXPECT_NEAR(lost, 500.0, 1e-9);
  EXPECT_DOUBLE_EQ(q.offer(900.0, 1.0), 0.0);
}

TEST(FluidQueueTest, DrainCanEmptyMidInterval) {
  FluidQueue q(1000.0, 1000.0);
  q.offer(2000.0, 1.0);  // queue = 1000 (full), loss 0
  EXPECT_DOUBLE_EQ(q.queue_bytes(), 1000.0);
  q.offer(0.0, 2.0);  // drains 2000 B worth; queue clamps at 0
  EXPECT_DOUBLE_EQ(q.queue_bytes(), 0.0);
}

TEST(FluidQueueTest, ConservationArrivedEqualsLostPlusServedPlusQueued) {
  Rng rng(3);
  std::vector<double> arrivals(1000);
  for (auto& a : arrivals) a = rng.uniform(0.0, 3000.0);
  const double capacity = 1200.0;
  const double buffer = 500.0;
  const double dt = 0.04;

  FluidQueue q(capacity, buffer);
  double served_upper = 0.0;  // capacity * time is an upper bound on service
  for (double a : arrivals) {
    q.offer(a, dt);
    served_upper += capacity * dt;
  }
  const double accounted = q.lost_bytes() + q.queue_bytes();
  // served = arrived - lost - queued must not exceed capacity * time.
  const double served = q.arrived_bytes() - accounted;
  EXPECT_GE(served, 0.0);
  EXPECT_LE(served, served_upper + 1e-6);
}

TEST(FluidQueueTest, MaxQueueTracked) {
  FluidQueue q(100.0, 1e6);
  q.offer(200.0, 1.0);
  q.offer(0.0, 10.0);
  EXPECT_DOUBLE_EQ(q.max_queue_bytes(), 100.0);
  EXPECT_DOUBLE_EQ(q.queue_bytes(), 0.0);
}

TEST(FluidQueueTest, LossMonotoneInCapacityAndBuffer) {
  Rng rng(5);
  std::vector<double> arrivals(5000);
  for (auto& a : arrivals) a = std::max(0.0, rng.normal(1000.0, 600.0));
  const double dt = 1.0 / 24.0;
  double prev_loss = 1e9;
  for (double capacity : {18000.0, 22000.0, 26000.0, 30000.0}) {
    const auto r = run_fluid_queue(arrivals, dt, capacity, 2000.0);
    EXPECT_LE(r.loss_rate(), prev_loss + 1e-12);
    prev_loss = r.loss_rate();
  }
  prev_loss = 1e9;
  for (double buffer : {0.0, 500.0, 2000.0, 10000.0}) {
    const auto r = run_fluid_queue(arrivals, dt, 22000.0, buffer);
    EXPECT_LE(r.loss_rate(), prev_loss + 1e-12);
    prev_loss = r.loss_rate();
  }
}

TEST(FluidQueueTest, RecordedIntervalsSumToTotals) {
  Rng rng(7);
  std::vector<double> arrivals(200);
  for (auto& a : arrivals) a = rng.uniform(0.0, 2500.0);
  const auto r = run_fluid_queue(arrivals, 0.05, 20000.0, 300.0, true);
  ASSERT_EQ(r.intervals.size(), arrivals.size());
  double arrived = 0.0;
  double lost = 0.0;
  for (const auto& iv : r.intervals) {
    arrived += iv.arrived_bytes;
    lost += iv.lost_bytes;
  }
  EXPECT_NEAR(arrived, r.arrived_bytes, 1e-6);
  EXPECT_NEAR(lost, r.lost_bytes, 1e-6);
}

TEST(FluidQueueTest, MeanQueueClosedForms) {
  // Ramp 0 -> 500 over 1 s: time-average 250.
  FluidQueue ramp(1000.0, 1e9);
  ramp.offer(1500.0, 1.0);
  EXPECT_NEAR(ramp.mean_queue_bytes(), 250.0, 1e-9);

  // Fill to the buffer at t = 0.2 s, flat after: integral = 0.5*100*0.2 +
  // 100*0.8 = 90 over 1 s.
  FluidQueue fill(1000.0, 100.0);
  fill.offer(1500.0, 1.0);
  EXPECT_NEAR(fill.mean_queue_bytes(), 90.0, 1e-9);

  // Build up, then drain to empty mid-interval and idle.
  FluidQueue drain(1000.0, 1e9);
  drain.offer(2000.0, 1.0);  // q: 0 -> 1000 over 1 s, integral 500
  drain.offer(0.0, 2.0);     // empties after 1 s of this interval: +500
  EXPECT_DOUBLE_EQ(drain.queue_bytes(), 0.0);
  EXPECT_NEAR(drain.mean_queue_bytes(), (500.0 + 500.0) / 3.0, 1e-9);
}

TEST(FluidQueueTest, DelayAccessorsScaleByCapacity) {
  std::vector<double> arrivals{2000.0, 0.0};
  const auto r = run_fluid_queue(arrivals, 1.0, 1000.0, 1e9);
  EXPECT_NEAR(r.max_delay_seconds(1000.0), r.max_queue_bytes / 1000.0, 1e-12);
  EXPECT_GT(r.mean_queue_bytes, 0.0);
  EXPECT_LT(r.mean_delay_seconds(1000.0), r.max_delay_seconds(1000.0));
}

TEST(FluidQueueTest, Preconditions) {
  EXPECT_THROW(FluidQueue(0.0, 100.0), vbr::InvalidArgument);
  EXPECT_THROW(FluidQueue(100.0, -1.0), vbr::InvalidArgument);
  FluidQueue q(100.0, 100.0);
  EXPECT_THROW(q.offer(-1.0, 1.0), vbr::InvalidArgument);
  EXPECT_THROW(q.offer(1.0, 0.0), vbr::InvalidArgument);
}

}  // namespace
}  // namespace vbr::net
