// Hostile-input and healing tests for the VBRSWPL1 append-only result log:
// round-trip, torn-tail truncation at every cut point, bit-flip rejection,
// version skew, fingerprint mismatch naming both identities, duplicate
// collapse vs conflicting-duplicate rejection, and the envelope record
// framing underneath it all.
#include "vbr/sweep/result_log.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "vbr/common/error.hpp"
#include "vbr/run/envelope.hpp"

namespace vbr::sweep {
namespace {

class TempLog {
 public:
  explicit TempLog(const std::string& tag)
      : path_(std::filesystem::temp_directory_path() / ("vbr_rlog_" + tag + ".log")) {
    std::filesystem::remove(path_);
  }
  ~TempLog() { std::filesystem::remove(path_); }
  const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
};

ResultLogHeader sample_header() {
  ResultLogHeader header;
  header.sweep_fingerprint = 0x1122334455667788ULL;
  header.shard_fingerprint = 0x99aabbccddeeff00ULL;
  header.total_cells = 16;
  header.shard_count = 4;
  header.shard_index = 1;
  header.first_cell = 4;
  header.end_cell = 8;
  return header;
}

CellRecord done_record(std::uint64_t index) {
  CellRecord record;
  record.cell_index = index;
  record.status = CellStatus::kDone;
  record.result.mean_rate_bps = 5.3e6;
  record.result.capacity_bps = 6.6e6;
  record.result.buffer_bytes = 8192.0;
  record.result.loss_rate = 1.25e-3;
  record.result.mean_queue_bytes = 900.0;
  record.result.max_queue_bytes = 8192.0;
  return record;
}

CellRecord quarantined_record(std::uint64_t index) {
  CellRecord record;
  record.cell_index = index;
  record.status = CellStatus::kQuarantined;
  record.failure.kind = FailureKind::kHang;
  record.failure.attempts = 3;
  record.failure.message = "watchdog deadline exceeded";
  record.failure.stderr_tail = "noise";
  return record;
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_file(const std::filesystem::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// A healthy two-record log's bytes (written through the real writer).
std::string healthy_log_bytes(const ResultLogHeader& header) {
  TempLog log("healthy_tmp");
  ResultLogWriter writer = ResultLogWriter::create(log.path(), header, false);
  writer.append(done_record(4));
  writer.append(quarantined_record(6));
  writer.close();
  return read_file(log.path());
}

ResultLogScan scan_bytes(const std::string& bytes, const ResultLogHeader* expected) {
  std::istringstream in(bytes, std::ios::binary);
  return scan_result_log(in, "test", expected);
}

// ---------------------------------------------------------------------------
// Envelope record framing (the layer the log is built on)

TEST(RecordFraming, RoundTripsAndDetectsTears) {
  const std::string payload = "forty-two bytes of deterministic payload..";
  const std::string frame = vbr::run::seal_record(payload);
  ASSERT_EQ(frame.size(), vbr::run::kRecordFrameBytes + payload.size());

  std::istringstream in(frame, std::ios::binary);
  std::string decoded;
  EXPECT_EQ(vbr::run::read_record(in, 1 << 16, decoded), vbr::run::RecordRead::kRecord);
  EXPECT_EQ(decoded, payload);
  EXPECT_EQ(vbr::run::read_record(in, 1 << 16, decoded),
            vbr::run::RecordRead::kEndOfStream);

  // Every proper prefix is a torn tail, never a record and never a throw.
  for (std::size_t cut = 1; cut < frame.size(); ++cut) {
    std::istringstream torn(frame.substr(0, cut), std::ios::binary);
    EXPECT_EQ(vbr::run::read_record(torn, 1 << 16, decoded),
              vbr::run::RecordRead::kTornTail)
        << "cut at " << cut;
  }

  // A flipped payload byte fails the CRC: torn, not silently accepted.
  std::string flipped = frame;
  flipped[frame.size() - 1] = static_cast<char>(flipped[frame.size() - 1] ^ 1);
  std::istringstream bad(flipped, std::ios::binary);
  EXPECT_EQ(vbr::run::read_record(bad, 1 << 16, decoded),
            vbr::run::RecordRead::kTornTail);

  // An absurd declared size (a torn header read as length) is torn too.
  std::istringstream huge(frame, std::ios::binary);
  EXPECT_EQ(vbr::run::read_record(huge, 8, decoded), vbr::run::RecordRead::kTornTail);
}

// ---------------------------------------------------------------------------
// Scan: round-trip, hostile headers

TEST(ResultLogScan, RoundTripsRecordsAndHeader) {
  const ResultLogHeader header = sample_header();
  const std::string bytes = healthy_log_bytes(header);
  const ResultLogScan scan = scan_bytes(bytes, &header);

  EXPECT_EQ(scan.header, header);
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.records[0].cell_index, 4u);
  EXPECT_EQ(scan.records[0].result, done_record(4).result);
  EXPECT_EQ(scan.records[1].cell_index, 6u);
  EXPECT_EQ(scan.records[1].failure.message, "watchdog deadline exceeded");
  EXPECT_EQ(scan.valid_bytes, bytes.size());
  EXPECT_EQ(scan.torn_bytes, 0u);
  EXPECT_EQ(scan.duplicate_records, 0u);
}

TEST(ResultLogScan, MismatchedSweepFingerprintNamesBothIdentities) {
  const ResultLogHeader header = sample_header();
  const std::string bytes = healthy_log_bytes(header);
  ResultLogHeader expected = header;
  expected.sweep_fingerprint ^= 0xdeadULL;
  try {
    (void)scan_bytes(bytes, &expected);
    FAIL() << "mismatched fingerprint must throw";
  } catch (const IoError& e) {
    char want[17];
    char got[17];
    std::snprintf(want, sizeof want, "%016llx",
                  static_cast<unsigned long long>(expected.sweep_fingerprint));
    std::snprintf(got, sizeof got, "%016llx",
                  static_cast<unsigned long long>(header.sweep_fingerprint));
    const std::string what = e.what();
    EXPECT_NE(what.find(want), std::string::npos) << what;
    EXPECT_NE(what.find(got), std::string::npos) << what;
  }
}

TEST(ResultLogScan, MismatchedShardFingerprintAndShapeAreRejected) {
  const ResultLogHeader header = sample_header();
  const std::string bytes = healthy_log_bytes(header);

  ResultLogHeader wrong_shard = header;
  wrong_shard.shard_fingerprint += 1;
  EXPECT_THROW((void)scan_bytes(bytes, &wrong_shard), IoError);

  ResultLogHeader wrong_shape = header;
  wrong_shape.shard_count = 8;
  wrong_shape.shard_index = 2;
  EXPECT_THROW((void)scan_bytes(bytes, &wrong_shape), IoError);
}

TEST(ResultLogScan, VersionSkewIsRejected) {
  std::string bytes = healthy_log_bytes(sample_header());
  // The u32 version sits right after the 8-byte magic.
  bytes[8] = static_cast<char>(bytes[8] + 1);
  EXPECT_THROW((void)scan_bytes(bytes, nullptr), IoError);
}

TEST(ResultLogScan, HeaderBitFlipsAreRejected) {
  const std::string bytes = healthy_log_bytes(sample_header());
  for (std::size_t i = 0; i < kLogHeaderSealedBytes; ++i) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x08);
    EXPECT_THROW((void)scan_bytes(corrupt, nullptr), IoError) << "flip at " << i;
  }
}

TEST(ResultLogScan, NonsenseHeaderFieldsAreRejected) {
  // CRC-valid headers whose fields are internally inconsistent are forged
  // or foreign, never crash artifacts: reject before reading any record.
  const vbr::run::EnvelopeSpec spec{kResultLogMagic, kResultLogVersion,
                                    kLogHeaderPayloadBytes, "sweep result log"};
  ResultLogHeader header = sample_header();
  header.end_cell = header.total_cells + 1;  // range escapes the grid
  EXPECT_THROW((void)scan_bytes(vbr::run::seal_envelope(spec, encode_log_header(header)),
                                nullptr),
               IoError);
  header = sample_header();
  header.shard_index = header.shard_count;  // slot outside the shard count
  EXPECT_THROW((void)scan_bytes(vbr::run::seal_envelope(spec, encode_log_header(header)),
                                nullptr),
               IoError);
  header = sample_header();
  header.total_cells = 0;  // an empty sweep has no log
  EXPECT_THROW((void)scan_bytes(vbr::run::seal_envelope(spec, encode_log_header(header)),
                                nullptr),
               IoError);
}

// ---------------------------------------------------------------------------
// Scan: torn tails and record corruption

TEST(ResultLogScan, EveryTruncationPointYieldsThePrefix) {
  const ResultLogHeader header = sample_header();
  const std::string bytes = healthy_log_bytes(header);
  for (std::size_t cut = kLogHeaderSealedBytes; cut < bytes.size(); ++cut) {
    const ResultLogScan scan = scan_bytes(bytes.substr(0, cut), &header);
    // Whole records before the cut survive; the remainder is torn.
    EXPECT_EQ(scan.valid_bytes + scan.torn_bytes, cut);
    EXPECT_LE(scan.records.size(), 2u);
    for (const CellRecord& record : scan.records) {
      EXPECT_TRUE(record.cell_index == 4 || record.cell_index == 6);
    }
  }
}

TEST(ResultLogScan, RecordBitFlipTearsTheTail) {
  const ResultLogHeader header = sample_header();
  const std::string bytes = healthy_log_bytes(header);
  // Flip one byte in the second record's payload: record 1 survives, the
  // flipped record (and everything after) is torn.
  std::string corrupt = bytes;
  corrupt[bytes.size() - 3] = static_cast<char>(corrupt[bytes.size() - 3] ^ 0x10);
  const ResultLogScan scan = scan_bytes(corrupt, &header);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0].cell_index, 4u);
  EXPECT_GT(scan.torn_bytes, 0u);
}

TEST(ResultLogScan, CrcValidOutOfRangeRecordIsCorruptionNotATear) {
  // A record whose CRC checks out but whose cell index is outside the
  // shard's range was never written by a healthy pool: reject loudly.
  const ResultLogHeader header = sample_header();
  TempLog log("outofrange");
  ResultLogWriter writer = ResultLogWriter::create(log.path(), header, false);
  writer.append(done_record(4));
  writer.close();
  std::string bytes = read_file(log.path());
  std::ostringstream rogue(std::ios::binary);
  write_cell_record(rogue, done_record(12));  // outside [4, 8)
  bytes += vbr::run::seal_record(rogue.str());
  EXPECT_THROW((void)scan_bytes(bytes, &header), IoError);
}

TEST(ResultLogScan, DuplicatesCollapseConflictsReject) {
  const ResultLogHeader header = sample_header();
  TempLog log("dups");
  ResultLogWriter writer = ResultLogWriter::create(log.path(), header, false);
  writer.append(done_record(4));
  writer.append(done_record(4));  // byte-identical: healed overlap
  writer.close();
  const std::string bytes = read_file(log.path());
  const ResultLogScan scan = scan_bytes(bytes, &header);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.duplicate_records, 1u);

  // Same cell, different deterministic bytes: the purity contract broke.
  CellRecord conflicting = done_record(4);
  conflicting.result.loss_rate *= 2.0;
  std::ostringstream payload(std::ios::binary);
  write_cell_record(payload, conflicting);
  const std::string poisoned = bytes + vbr::run::seal_record(payload.str());
  EXPECT_THROW((void)scan_bytes(poisoned, &header), IoError);
}

// ---------------------------------------------------------------------------
// Recovery: in-place healing

TEST(ResultLogRecover, MissingAndSubHeaderFilesReturnNullopt) {
  const ResultLogHeader header = sample_header();
  TempLog log("missing");
  EXPECT_FALSE(recover_result_log(log.path(), header).has_value());

  // A file torn inside the sealed header carries no salvageable record.
  write_file(log.path(), healthy_log_bytes(header).substr(0, kLogHeaderSealedBytes / 2));
  EXPECT_FALSE(recover_result_log(log.path(), header).has_value());
}

TEST(ResultLogRecover, TornTailIsTruncatedInPlace) {
  const ResultLogHeader header = sample_header();
  TempLog log("truncate");
  const std::string bytes = healthy_log_bytes(header);
  write_file(log.path(), bytes + std::string("\x40\x00\x00\x00\x00\x00\x00", 7));

  const auto scan = recover_result_log(log.path(), header);
  ASSERT_TRUE(scan.has_value());
  EXPECT_EQ(scan->records.size(), 2u);
  // The returned scan reflects the *healed* file: the half-frame tail was
  // truncated away, so nothing torn remains.
  EXPECT_EQ(scan->torn_bytes, 0u);
  EXPECT_EQ(std::filesystem::file_size(log.path()), bytes.size());
  const auto again = recover_result_log(log.path(), header);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->torn_bytes, 0u);
}

TEST(ResultLogRecover, AppendToContinuesAHealedLog) {
  const ResultLogHeader header = sample_header();
  TempLog log("continue");
  {
    ResultLogWriter writer = ResultLogWriter::create(log.path(), header, false);
    writer.append(done_record(4));
    writer.close();
  }
  write_file(log.path(), read_file(log.path()) + "junk");

  const auto scan = recover_result_log(log.path(), header);
  ASSERT_TRUE(scan.has_value());
  ResultLogWriter writer = ResultLogWriter::append_to(log.path(), *scan, false);
  writer.append(done_record(5));
  writer.close();

  const auto final_scan = recover_result_log(log.path(), header);
  ASSERT_TRUE(final_scan.has_value());
  ASSERT_EQ(final_scan->records.size(), 2u);
  EXPECT_EQ(final_scan->records[0].cell_index, 4u);
  EXPECT_EQ(final_scan->records[1].cell_index, 5u);
  EXPECT_EQ(final_scan->torn_bytes, 0u);
}

}  // namespace
}  // namespace vbr::sweep
