// Tests for the classical SRD baseline models: M-state Markov chain and
// DAR(1) with Gamma/Pareto marginals — including the paper's central claim
// that such models cannot carry long-range dependence.
#include "vbr/model/markov_source.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "vbr/common/error.hpp"
#include "vbr/common/math_util.hpp"
#include "vbr/model/starwars_surrogate.hpp"
#include "vbr/stats/autocorrelation.hpp"
#include "vbr/stats/variance_time.hpp"

namespace vbr::model {
namespace {

MarkovChainSource two_state(double p_stay) {
  return MarkovChainSource({100.0, 200.0},
                           {p_stay, 1.0 - p_stay, 1.0 - p_stay, p_stay});
}

TEST(MarkovChainTest, ValidatesConstruction) {
  EXPECT_THROW(MarkovChainSource({1.0}, {1.0}), vbr::InvalidArgument);
  EXPECT_THROW(MarkovChainSource({1.0, 2.0}, {0.5, 0.4, 0.5, 0.5}),
               vbr::InvalidArgument);  // row sum != 1
  EXPECT_THROW(MarkovChainSource({1.0, 2.0}, {1.5, -0.5, 0.5, 0.5}),
               vbr::InvalidArgument);  // negative entry
}

TEST(MarkovChainTest, SymmetricChainHasUniformStationary) {
  const auto chain = two_state(0.9);
  const auto pi = chain.stationary();
  ASSERT_EQ(pi.size(), 2u);
  EXPECT_NEAR(pi[0], 0.5, 1e-10);
  EXPECT_NEAR(pi[1], 0.5, 1e-10);
}

TEST(MarkovChainTest, SecondEigenvalueOfTwoStateChain) {
  // Eigenvalues of [[p,1-p],[1-p,p]] are 1 and 2p-1.
  EXPECT_NEAR(two_state(0.9).second_eigenvalue_magnitude(), 0.8, 1e-6);
  EXPECT_NEAR(two_state(0.6).second_eigenvalue_magnitude(), 0.2, 1e-6);
}

TEST(MarkovChainTest, GenerateMatchesStationaryMoments) {
  const auto chain = two_state(0.9);
  Rng rng(1);
  const auto x = chain.generate(100000, rng);
  EXPECT_NEAR(sample_mean(x), 150.0, 3.0);
  // ACF of the two-state chain decays like (2p-1)^k = 0.8^k.
  const auto acf = stats::autocorrelation(x, 10);
  EXPECT_NEAR(acf[1], 0.8, 0.05);
  EXPECT_NEAR(acf[5], std::pow(0.8, 5.0), 0.05);
}

TEST(MarkovChainTest, FitRecoversMarginalsAndLagOne) {
  SurrogateOptions options;
  options.frames = 30000;
  const auto trace = make_starwars_surrogate(options);
  const auto chain = MarkovChainSource::fit(trace.frames.samples(), 16);

  Rng rng(2);
  const auto synthetic = chain.generate(30000, rng);
  const auto orig = trace.frames.summary();
  EXPECT_NEAR(sample_mean(synthetic), orig.mean, 0.03 * orig.mean);
  EXPECT_NEAR(std::sqrt(sample_variance(synthetic)), orig.stddev, 0.15 * orig.stddev);

  const auto acf_orig = stats::autocorrelation(trace.frames.samples(), 1);
  const auto acf_syn = stats::autocorrelation(synthetic, 1);
  EXPECT_NEAR(acf_syn[1], acf_orig[1], 0.1);
}

TEST(MarkovChainTest, FittedChainIsSrdNotLrd) {
  // The paper's point: a Markov fit reproduces short-lag behavior but its
  // correlations die exponentially, so the variance-time slope reverts to
  // -1 (H -> 0.5) at large m.
  SurrogateOptions options;
  options.frames = 60000;
  const auto trace = make_starwars_surrogate(options);
  const auto chain = MarkovChainSource::fit(trace.frames.samples(), 16);
  EXPECT_LT(chain.second_eigenvalue_magnitude(), 1.0);

  Rng rng(3);
  const auto synthetic = chain.generate(60000, rng);
  stats::VarianceTimeOptions vt;
  vt.fit_min_m = 200;
  vt.max_m = 3000;
  const double h_markov = stats::variance_time(synthetic, vt).hurst;
  const double h_trace = stats::variance_time(trace.frames.samples(), vt).hurst;
  EXPECT_LT(h_markov, 0.65);
  EXPECT_GT(h_trace, h_markov + 0.08);
}

TEST(DarSourceTest, ValidatesRho) {
  stats::GammaParetoParams params;
  params.mu_gamma = 27791.0;
  params.sigma_gamma = 6254.0;
  params.tail_slope = 12.0;
  EXPECT_THROW(DarGammaParetoSource(params, 1.0), vbr::InvalidArgument);
  EXPECT_THROW(DarGammaParetoSource(params, -0.1), vbr::InvalidArgument);
}

TEST(DarSourceTest, GeometricAcfAndExactMarginals) {
  stats::GammaParetoParams params;
  params.mu_gamma = 27791.0;
  params.sigma_gamma = 6254.0;
  params.tail_slope = 12.0;
  const DarGammaParetoSource source(params, 0.7);
  Rng rng(4);
  const auto x = source.generate(200000, rng);
  EXPECT_NEAR(sample_mean(x), 27791.0, 0.02 * 27791.0);
  const auto acf = stats::autocorrelation(x, 10);
  for (std::size_t k = 1; k <= 5; ++k) {
    EXPECT_NEAR(acf[k], std::pow(0.7, static_cast<double>(k)), 0.03) << "k=" << k;
  }
}

TEST(DarSourceTest, FitPicksUpLagOneCorrelation) {
  SurrogateOptions options;
  options.frames = 30000;
  const auto trace = make_starwars_surrogate(options);
  const auto source = DarGammaParetoSource::fit(trace.frames.samples());
  const auto acf = stats::autocorrelation(trace.frames.samples(), 1);
  EXPECT_NEAR(source.rho(), acf[1], 1e-9);
  EXPECT_GT(source.rho(), 0.3);  // the trace is strongly correlated at lag 1
}

}  // namespace
}  // namespace vbr::model
