// Tests for the chunked (streaming) trace reader/writer: format sniffing,
// equivalence with the batch readers, bounded-block reading at odd sizes,
// the writer's declared-count contract, and the IoError surface on
// truncated or forged input.
#include "vbr/trace/trace_stream.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "vbr/common/error.hpp"
#include "vbr/trace/trace_io.hpp"

namespace vbr::trace {
namespace {

std::filesystem::path temp_file(const std::string& name) {
  return std::filesystem::temp_directory_path() / ("vbr_trace_stream_test_" + name);
}

std::vector<double> ramp(std::size_t n) {
  std::vector<double> values;
  values.reserve(n);
  for (std::size_t i = 0; i < n; ++i) values.push_back(100.0 + static_cast<double>(i));
  return values;
}

std::vector<double> drain(ChunkedTraceReader& reader, std::size_t block) {
  std::vector<double> out;
  std::vector<double> buf(block);
  while (true) {
    const std::size_t got = reader.read(buf);
    if (got == 0) break;
    out.insert(out.end(), buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(got));
  }
  return out;
}

std::string file_bytes(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(ChunkedTraceReaderTest, ReadsBinaryTracesWrittenByBatchWriter) {
  const auto path = temp_file("bin_roundtrip");
  const TimeSeries series(ramp(1000), 0.04, "cells");
  write_binary(series, path);

  for (const std::size_t block : {1u, 7u, 64u, 1000u, 4096u}) {
    ChunkedTraceReader reader(path);
    EXPECT_TRUE(reader.info().binary);
    EXPECT_DOUBLE_EQ(reader.info().dt_seconds, 0.04);
    EXPECT_EQ(reader.info().unit, "cells");
    EXPECT_EQ(reader.info().declared_samples, 1000u);
    EXPECT_EQ(drain(reader, block), series.values()) << "block " << block;
    EXPECT_EQ(reader.samples_read(), 1000u);
  }
  std::filesystem::remove(path);
}

TEST(ChunkedTraceReaderTest, ReadsAsciiTracesWrittenByBatchWriter) {
  const auto path = temp_file("ascii_roundtrip");
  const TimeSeries series(ramp(257), 0.125, "bytes");
  write_ascii(series, path);

  ChunkedTraceReader reader(path);
  EXPECT_FALSE(reader.info().binary);
  EXPECT_DOUBLE_EQ(reader.info().dt_seconds, 0.125);
  EXPECT_EQ(reader.info().unit, "bytes");
  EXPECT_EQ(drain(reader, 100), series.values());
  std::filesystem::remove(path);
}

TEST(ChunkedTraceReaderTest, HeaderlessAsciiGetsDefaults) {
  std::istringstream in("1\n2\n3\n");
  ChunkedTraceReader reader(in, "inline");
  EXPECT_FALSE(reader.info().binary);
  EXPECT_NEAR(reader.info().dt_seconds, 1.0 / 24.0, 1e-12);
  EXPECT_EQ(drain(reader, 2), (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(ChunkedTraceReaderTest, WriterOutputMatchesBatchReader) {
  const auto path = temp_file("writer_roundtrip");
  const auto values = ramp(500);
  {
    ChunkedTraceWriter writer(path, values.size(), 1.0 / 30.0, "bytes/frame");
    // Deliberately uneven appends.
    writer.append(std::span<const double>(values.data(), 123));
    writer.append(std::span<const double>(values.data() + 123, 377));
    EXPECT_EQ(writer.written(), 500u);
    writer.finish();
  }
  const auto series = read_binary(path);
  EXPECT_EQ(series.values(), values);
  EXPECT_DOUBLE_EQ(series.dt_seconds(), 1.0 / 30.0);
  EXPECT_EQ(series.unit(), "bytes/frame");

  ChunkedTraceReader reader(path);
  EXPECT_EQ(drain(reader, 99), values);
  std::filesystem::remove(path);
}

TEST(ChunkedTraceWriterTest, EnforcesTheDeclaredCount) {
  const auto path = temp_file("writer_contract");
  const auto values = ramp(10);
  {
    ChunkedTraceWriter writer(path, 10, 1.0);
    writer.append(std::span<const double>(values.data(), 4));
    // finish() before the declared total: refuse.
    EXPECT_THROW(writer.finish(), IoError);
    writer.append(std::span<const double>(values.data() + 4, 6));
    // Appending past the declared total: refuse.
    EXPECT_THROW(writer.append(std::span<const double>(values.data(), 1)), IoError);
    writer.finish();
    writer.finish();  // idempotent
    EXPECT_THROW(writer.append(std::span<const double>(values.data(), 1)), IoError);
  }
  EXPECT_EQ(read_binary(path).values(), values);
  std::filesystem::remove(path);
}

TEST(ChunkedTraceWriterTest, RejectsInvalidSamplesAndHeader) {
  const auto path = temp_file("writer_validate");
  EXPECT_THROW(ChunkedTraceWriter(path, 1, 0.0), IoError);
  EXPECT_THROW(ChunkedTraceWriter(path, 1, -1.0), IoError);
  {
    ChunkedTraceWriter writer(path, 2, 1.0);
    const double bad[] = {1.0, -5.0};
    EXPECT_THROW(writer.append(bad), IoError);
  }
  std::filesystem::remove(path);
}

TEST(ChunkedTraceReaderTest, TruncatedBinaryThrowsIoError) {
  const auto path = temp_file("truncated");
  const TimeSeries series(ramp(100), 1.0, "bytes");
  write_binary(series, path);
  std::string bytes = file_bytes(path);
  bytes.resize(bytes.size() - 160);  // lose the last 20 samples

  std::istringstream in(bytes);
  ChunkedTraceReader reader(in, "truncated");
  std::vector<double> buf(64);
  EXPECT_EQ(reader.read(buf), 64u);
  EXPECT_THROW(
      {
        while (reader.read(buf) > 0) {
        }
      },
      IoError);
  std::filesystem::remove(path);
}

TEST(ChunkedTraceReaderTest, ForgedSampleCountThrowsIoError) {
  // Header claims 2^60 samples backed by 8 bytes of data: the reader must
  // fail with IoError on the first short read, not attempt the allocation.
  std::string bytes;
  bytes += "VBRTRC01";
  const double dt = 1.0;
  bytes.append(reinterpret_cast<const char*>(&dt), sizeof dt);
  const std::uint32_t unit_len = 0;
  bytes.append(reinterpret_cast<const char*>(&unit_len), sizeof unit_len);
  const std::uint64_t forged = std::uint64_t{1} << 60;
  bytes.append(reinterpret_cast<const char*>(&forged), sizeof forged);
  const double sample = 1.0;
  bytes.append(reinterpret_cast<const char*>(&sample), sizeof sample);

  std::istringstream in(bytes);
  ChunkedTraceReader reader(in, "forged");
  EXPECT_EQ(reader.info().declared_samples, forged);
  std::vector<double> buf(1024);
  EXPECT_THROW(
      {
        while (reader.read(buf) > 0) {
        }
      },
      IoError);
}

TEST(ChunkedTraceReaderTest, NegativeOrNonNumericSamplesThrowIoError) {
  {
    std::istringstream in("1\n-2\n3\n");
    ChunkedTraceReader reader(in, "negative");
    std::vector<double> buf(8);
    EXPECT_THROW(reader.read(buf), IoError);
  }
  {
    std::istringstream in("1\nbogus\n");
    ChunkedTraceReader reader(in, "bogus");
    std::vector<double> buf(8);
    EXPECT_THROW(reader.read(buf), IoError);
  }
}

TEST(ChunkedTraceReaderTest, CorruptBinaryHeaderThrowsIoError) {
  {
    // Bad dt.
    std::string bytes = "VBRTRC01";
    const double dt = -1.0;
    bytes.append(reinterpret_cast<const char*>(&dt), sizeof dt);
    const std::uint32_t unit_len = 0;
    bytes.append(reinterpret_cast<const char*>(&unit_len), sizeof unit_len);
    const std::uint64_t n = 0;
    bytes.append(reinterpret_cast<const char*>(&n), sizeof n);
    std::istringstream in(bytes);
    EXPECT_THROW(ChunkedTraceReader(in, "bad_dt"), IoError);
  }
  {
    // Oversized unit length.
    std::string bytes = "VBRTRC01";
    const double dt = 1.0;
    bytes.append(reinterpret_cast<const char*>(&dt), sizeof dt);
    const std::uint32_t unit_len = 1u << 30;
    bytes.append(reinterpret_cast<const char*>(&unit_len), sizeof unit_len);
    std::istringstream in(bytes);
    EXPECT_THROW(ChunkedTraceReader(in, "bad_unit"), IoError);
  }
}

TEST(ChunkedTraceReaderTest, MissingFileThrowsIoErrorNamingThePath) {
  const auto path = temp_file("does_not_exist");
  try {
    ChunkedTraceReader reader(path);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find(path.filename().string()), std::string::npos);
  }
}

}  // namespace
}  // namespace vbr::trace
