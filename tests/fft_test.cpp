// Unit tests for the FFT: agreement with a naive DFT, round trips,
// linearity, Parseval, and known transforms — over power-of-two and
// Bluestein (arbitrary-length) paths.
#include "vbr/common/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

#include "vbr/common/error.hpp"
#include "vbr/common/rng.hpp"

namespace vbr {
namespace {

using Complex = std::complex<double>;

std::vector<Complex> naive_dft(const std::vector<Complex>& x) {
  const std::size_t n = x.size();
  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc(0.0, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      const double angle = -2.0 * std::numbers::pi * static_cast<double>(j * k) /
                           static_cast<double>(n);
      acc += x[j] * Complex(std::cos(angle), std::sin(angle));
    }
    out[k] = acc;
  }
  return out;
}

std::vector<Complex> random_signal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Complex> x(n);
  for (auto& v : x) v = Complex(rng.normal(), rng.normal());
  return x;
}

TEST(FftTest, PowerOfTwoHelpers) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(2));
  EXPECT_TRUE(is_power_of_two(1024));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(3));
  EXPECT_FALSE(is_power_of_two(1000));
  EXPECT_EQ(next_power_of_two(1), 1u);
  EXPECT_EQ(next_power_of_two(2), 2u);
  EXPECT_EQ(next_power_of_two(3), 4u);
  EXPECT_EQ(next_power_of_two(1000), 1024u);
}

TEST(FftTest, SingleElementIsIdentity) {
  std::vector<Complex> x{Complex(3.5, -1.25)};
  fft(x);
  EXPECT_NEAR(x[0].real(), 3.5, 1e-15);
  EXPECT_NEAR(x[0].imag(), -1.25, 1e-15);
}

TEST(FftTest, ImpulseHasFlatSpectrum) {
  std::vector<Complex> x(16, Complex(0.0, 0.0));
  x[0] = 1.0;
  fft(x);
  for (const auto& v : x) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(FftTest, PureToneConcentratesInOneBin) {
  const std::size_t n = 64;
  const std::size_t bin = 5;
  std::vector<Complex> x(n);
  for (std::size_t j = 0; j < n; ++j) {
    const double angle =
        2.0 * std::numbers::pi * static_cast<double>(bin * j) / static_cast<double>(n);
    x[j] = Complex(std::cos(angle), std::sin(angle));
  }
  fft(x);
  for (std::size_t k = 0; k < n; ++k) {
    if (k == bin) {
      EXPECT_NEAR(x[k].real(), static_cast<double>(n), 1e-9);
    } else {
      EXPECT_NEAR(std::abs(x[k]), 0.0, 1e-9);
    }
  }
}

class FftDftComparison : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftDftComparison, MatchesNaiveDft) {
  const std::size_t n = GetParam();
  auto x = random_signal(n, 100 + n);
  const auto expected = naive_dft(x);
  fft(x);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(x[k].real(), expected[k].real(), 1e-8 * static_cast<double>(n)) << "n=" << n;
    EXPECT_NEAR(x[k].imag(), expected[k].imag(), 1e-8 * static_cast<double>(n)) << "n=" << n;
  }
}

// Mix of power-of-two, prime, and composite lengths exercises both kernels.
INSTANTIATE_TEST_SUITE_P(Lengths, FftDftComparison,
                         ::testing::Values(2, 3, 4, 5, 7, 8, 12, 16, 17, 31, 32, 100, 127,
                                           128, 171, 255));

class FftRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftRoundTrip, InverseRecoversSignal) {
  const std::size_t n = GetParam();
  const auto original = random_signal(n, 500 + n);
  auto x = original;
  fft(x);
  ifft(x);
  for (std::size_t j = 0; j < n; ++j) {
    EXPECT_NEAR(x[j].real(), original[j].real(), 1e-9);
    EXPECT_NEAR(x[j].imag(), original[j].imag(), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, FftRoundTrip,
                         ::testing::Values(1, 2, 3, 8, 37, 64, 1000, 1024, 4096, 17100));

TEST(FftTest, LinearityHolds) {
  const std::size_t n = 48;
  const auto a = random_signal(n, 1);
  const auto b = random_signal(n, 2);
  std::vector<Complex> sum(n);
  for (std::size_t j = 0; j < n; ++j) sum[j] = 2.0 * a[j] + 3.0 * b[j];
  auto fa = a;
  auto fb = b;
  auto fsum = sum;
  fft(fa);
  fft(fb);
  fft(fsum);
  for (std::size_t k = 0; k < n; ++k) {
    const Complex expect = 2.0 * fa[k] + 3.0 * fb[k];
    EXPECT_NEAR(fsum[k].real(), expect.real(), 1e-9);
    EXPECT_NEAR(fsum[k].imag(), expect.imag(), 1e-9);
  }
}

TEST(FftTest, ParsevalEnergyConservation) {
  for (std::size_t n : {64u, 100u}) {
    const auto x = random_signal(n, 900 + n);
    double time_energy = 0.0;
    for (const auto& v : x) time_energy += std::norm(v);
    auto fx = x;
    fft(fx);
    double freq_energy = 0.0;
    for (const auto& v : fx) freq_energy += std::norm(v);
    EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy, 1e-8 * time_energy);
  }
}

std::vector<double> random_real_signal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.normal();
  return x;
}

// Golden-value check: rfft must agree with the full complex fft() on the
// non-redundant half, across both the radix-2 and Bluestein kernels and
// both parities (even lengths take the half-length packed path, odd
// lengths the complex fallback).
class RfftGolden : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RfftGolden, MatchesComplexFft) {
  const std::size_t n = GetParam();
  const auto x = random_real_signal(n, 7000 + n);
  std::vector<Complex> full(x.begin(), x.end());
  fft(full);
  const auto half = rfft(x);
  ASSERT_EQ(half.size(), n / 2 + 1);
  for (std::size_t k = 0; k < half.size(); ++k) {
    EXPECT_NEAR(half[k].real(), full[k].real(), 1e-12 * static_cast<double>(n))
        << "n=" << n << " k=" << k;
    EXPECT_NEAR(half[k].imag(), full[k].imag(), 1e-12 * static_cast<double>(n))
        << "n=" << n << " k=" << k;
  }
}

TEST_P(RfftGolden, IrfftRoundTripsToInput) {
  const std::size_t n = GetParam();
  const auto x = random_real_signal(n, 8000 + n);
  const auto back = irfft(rfft(x), n);
  ASSERT_EQ(back.size(), n);
  for (std::size_t j = 0; j < n; ++j) {
    EXPECT_NEAR(back[j], x[j], 1e-12 * static_cast<double>(n)) << "n=" << n << " j=" << j;
  }
}

TEST_P(RfftGolden, IrfftMatchesFullComplexInverse) {
  // Feed irfft a conjugate-symmetric spectrum and compare against ifft()
  // on the fully mirrored spectrum — same 1/n normalization.
  const std::size_t n = GetParam();
  const auto half = rfft(random_real_signal(n, 9000 + n));
  std::vector<Complex> mirrored(n);
  for (std::size_t k = 0; k < half.size(); ++k) mirrored[k] = half[k];
  for (std::size_t k = 1; k < (n + 1) / 2; ++k) mirrored[n - k] = std::conj(half[k]);
  ifft(mirrored);
  const auto real_path = irfft(half, n);
  for (std::size_t j = 0; j < n; ++j) {
    EXPECT_NEAR(real_path[j], mirrored[j].real(), 1e-12 * static_cast<double>(n))
        << "n=" << n << " j=" << j;
  }
}

// n = 1, even/odd powers of two, odd primes, and composite Bluestein
// lengths, as the acceptance criteria require.
INSTANTIATE_TEST_SUITE_P(Lengths, RfftGolden,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 16, 17, 30, 31, 64, 100,
                                           127, 128, 171, 255, 256, 1000, 1024));

TEST(RfftTest, SingleElementIsIdentity) {
  const std::vector<double> x{4.25};
  const auto fx = rfft(x);
  ASSERT_EQ(fx.size(), 1u);
  EXPECT_NEAR(fx[0].real(), 4.25, 1e-15);
  EXPECT_NEAR(fx[0].imag(), 0.0, 1e-15);
  const auto back = irfft(fx, 1);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_NEAR(back[0], 4.25, 1e-15);
}

TEST(RfftTest, DcComponentIsTheSum) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  const auto fx = rfft(x);
  EXPECT_NEAR(fx[0].real(), 21.0, 1e-12);
  EXPECT_NEAR(fx[0].imag(), 0.0, 1e-12);
  // Nyquist bin of an even-length real transform is real.
  EXPECT_NEAR(fx[3].imag(), 0.0, 1e-12);
}

TEST(RfftTest, IrfftRejectsWrongSpectrumSize) {
  std::vector<Complex> spec(4);
  EXPECT_THROW(irfft(spec, 4), InvalidArgument);   // needs 3
  EXPECT_THROW(irfft(spec, 8), InvalidArgument);   // needs 5
  EXPECT_NO_THROW(irfft(spec, 6));                 // 6/2+1 == 4
  EXPECT_NO_THROW(irfft(spec, 7));                 // 7/2+1 == 4
}

TEST(FftTest, RealTransformHasConjugateSymmetry) {
  Rng rng(7);
  std::vector<double> x(30);
  for (auto& v : x) v = rng.normal();
  const auto fx = fft_real(x);
  ASSERT_EQ(fx.size(), x.size());
  for (std::size_t k = 1; k < x.size(); ++k) {
    EXPECT_NEAR(fx[k].real(), fx[x.size() - k].real(), 1e-10);
    EXPECT_NEAR(fx[k].imag(), -fx[x.size() - k].imag(), 1e-10);
  }
}

}  // namespace
}  // namespace vbr
