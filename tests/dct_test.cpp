// Tests for the 8x8 DCT: orthonormality, round trips, known transforms,
// Parseval, and frame/block plumbing.
#include "vbr/codec/dct.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "vbr/common/error.hpp"
#include "vbr/common/rng.hpp"
#include "vbr/codec/frame.hpp"

namespace vbr::codec {
namespace {

TEST(DctTest, ConstantBlockMapsToDcOnly) {
  Block spatial;
  spatial.fill(10.0);
  const auto freq = forward_dct(spatial);
  // Orthonormal DCT: DC = 8 * mean.
  EXPECT_NEAR(freq[0], 80.0, 1e-10);
  for (std::size_t i = 1; i < 64; ++i) EXPECT_NEAR(freq[i], 0.0, 1e-10);
}

TEST(DctTest, RoundTripIsExact) {
  Rng rng(1);
  Block spatial;
  for (auto& v : spatial) v = rng.uniform(-128.0, 127.0);
  const auto recovered = inverse_dct(forward_dct(spatial));
  for (std::size_t i = 0; i < 64; ++i) EXPECT_NEAR(recovered[i], spatial[i], 1e-10);
}

TEST(DctTest, ParsevalEnergyPreserved) {
  Rng rng(2);
  Block spatial;
  for (auto& v : spatial) v = rng.normal(0.0, 30.0);
  const auto freq = forward_dct(spatial);
  double spatial_energy = 0.0;
  double freq_energy = 0.0;
  for (std::size_t i = 0; i < 64; ++i) {
    spatial_energy += spatial[i] * spatial[i];
    freq_energy += freq[i] * freq[i];
  }
  EXPECT_NEAR(freq_energy, spatial_energy, 1e-8 * spatial_energy);
}

TEST(DctTest, LinearityHolds) {
  Rng rng(3);
  Block a;
  Block b;
  for (auto& v : a) v = rng.normal();
  for (auto& v : b) v = rng.normal();
  Block sum;
  for (std::size_t i = 0; i < 64; ++i) sum[i] = 2.0 * a[i] - 3.0 * b[i];
  const auto fa = forward_dct(a);
  const auto fb = forward_dct(b);
  const auto fsum = forward_dct(sum);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_NEAR(fsum[i], 2.0 * fa[i] - 3.0 * fb[i], 1e-10);
  }
}

TEST(DctTest, HorizontalCosineHitsSingleCoefficient) {
  // A pure horizontal DCT basis function transforms to one coefficient.
  Block spatial;
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      spatial[static_cast<std::size_t>(y * 8 + x)] =
          std::cos((2.0 * x + 1.0) * 3.0 * M_PI / 16.0);
    }
  }
  const auto freq = forward_dct(spatial);
  // Expect energy only at (v=0, u=3).
  for (std::size_t i = 0; i < 64; ++i) {
    if (i == 3) {
      EXPECT_GT(std::abs(freq[i]), 1.0);
    } else {
      EXPECT_NEAR(freq[i], 0.0, 1e-10) << "index " << i;
    }
  }
}

TEST(DctTest, HighFrequencyContentRaisesAcEnergy) {
  // The bandwidth driver of the whole paper: detail costs coefficients.
  Block smooth;
  Block busy;
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      smooth[static_cast<std::size_t>(y * 8 + x)] = static_cast<double>(x + y);
      busy[static_cast<std::size_t>(y * 8 + x)] = ((x + y) % 2 == 0) ? 60.0 : -60.0;
    }
  }
  const auto fs = forward_dct(smooth);
  const auto fb = forward_dct(busy);
  auto ac_energy = [](const Block& f) {
    double e = 0.0;
    for (std::size_t i = 1; i < 64; ++i) e += f[i] * f[i];
    return e;
  };
  EXPECT_GT(ac_energy(fb), 10.0 * ac_energy(fs));
}

TEST(FrameTest, GeometryValidation) {
  EXPECT_THROW(Frame(7, 8), vbr::InvalidArgument);
  EXPECT_THROW(Frame(12, 8), vbr::InvalidArgument);
  const Frame f(Frame::kDefaultWidth, Frame::kDefaultHeight);
  EXPECT_EQ(f.blocks_x(), 63u);
  EXPECT_EQ(f.blocks_y(), 60u);
  EXPECT_EQ(f.block_count(), 3780u);
}

TEST(FrameTest, BlockRoundTripThroughDct) {
  Frame f(16, 16);
  Rng rng(4);
  for (std::size_t y = 0; y < 16; ++y) {
    for (std::size_t x = 0; x < 16; ++x) {
      f.set(x, y, static_cast<std::uint8_t>(rng.uniform_index(256)));
    }
  }
  const auto block = f.block(1, 1);
  Frame g(16, 16);
  g.set_block(1, 1, inverse_dct(forward_dct(block)));
  for (std::size_t y = 8; y < 16; ++y) {
    for (std::size_t x = 8; x < 16; ++x) {
      EXPECT_EQ(g.at(x, y), f.at(x, y));
    }
  }
}

TEST(FrameTest, SetBlockClampsToPixelRange) {
  Frame f(8, 8);
  Block extreme;
  extreme.fill(1000.0);
  f.set_block(0, 0, extreme);
  EXPECT_EQ(f.at(0, 0), 255);
  extreme.fill(-1000.0);
  f.set_block(0, 0, extreme);
  EXPECT_EQ(f.at(0, 0), 0);
}

TEST(PsnrTest, IdenticalFramesInfinite) {
  Frame a(8, 8);
  EXPECT_TRUE(std::isinf(psnr(a, a)));
}

TEST(PsnrTest, KnownMse) {
  Frame a(8, 8);
  Frame b(8, 8);
  for (auto& p : b.pixels()) p = static_cast<std::uint8_t>(p + 10);
  // MSE = 100 -> PSNR = 10 log10(255^2 / 100) ~ 28.13 dB.
  EXPECT_NEAR(psnr(a, b), 10.0 * std::log10(255.0 * 255.0 / 100.0), 1e-9);
}

}  // namespace
}  // namespace vbr::codec
