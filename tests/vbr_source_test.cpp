// Tests for the four-parameter VBR video source model (Section 4): fitting,
// the three Fig. 16 variants, and generate -> re-fit closure.
#include "vbr/model/vbr_source.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "vbr/common/error.hpp"
#include "vbr/common/math_util.hpp"
#include "vbr/model/model_validation.hpp"
#include "vbr/stats/autocorrelation.hpp"

namespace vbr::model {
namespace {

VbrModelParams paper_params() {
  VbrModelParams p;
  p.marginal.mu_gamma = 27791.0;
  p.marginal.sigma_gamma = 6254.0;
  p.marginal.tail_slope = 12.0;
  p.hurst = 0.8;
  return p;
}

TEST(VbrSourceTest, RejectsInvalidHurst) {
  auto p = paper_params();
  p.hurst = 1.2;
  EXPECT_THROW(VbrVideoSourceModel{p}, vbr::InvalidArgument);
}

TEST(VbrSourceTest, FullModelMatchesMarginalMoments) {
  const VbrVideoSourceModel model(paper_params());
  Rng rng(1);
  const auto x = model.generate(100000, rng);
  EXPECT_NEAR(sample_mean(x), 27791.0, 0.03 * 27791.0);
  EXPECT_NEAR(std::sqrt(sample_variance(x)), 6254.0, 0.15 * 6254.0);
  for (double v : x) ASSERT_GT(v, 0.0);
}

TEST(VbrSourceTest, FullModelHasLongRangeDependence) {
  const VbrVideoSourceModel model(paper_params());
  Rng rng(2);
  const auto x = model.generate(65536, rng);
  const auto acf = stats::autocorrelation(x, 1000);
  // LRD: correlations persist far beyond any SRD horizon. For fARIMA(0,d,0)
  // at H=0.8, rho_k ~ 0.43 k^{-0.4}: ~0.07 at lag 100, ~0.03 at lag 1000.
  EXPECT_GT(acf[100], 0.04);
  EXPECT_GT(acf[1000], 0.01);
}

TEST(VbrSourceTest, IidVariantHasNoCorrelation) {
  const VbrVideoSourceModel model(paper_params());
  Rng rng(3);
  const auto x = model.generate(65536, rng, ModelVariant::kIidGammaPareto);
  const auto acf = stats::autocorrelation(x, 100);
  for (std::size_t k = 1; k <= 100; k += 10) EXPECT_NEAR(acf[k], 0.0, 0.02);
  // ... but the marginals still match.
  EXPECT_NEAR(sample_mean(x), 27791.0, 0.02 * 27791.0);
}

TEST(VbrSourceTest, GaussianVariantLacksHeavyTail) {
  const VbrVideoSourceModel model(paper_params());
  Rng rng(4);
  const auto full = model.generate(100000, rng, ModelVariant::kFull);
  const auto gauss = model.generate(100000, rng, ModelVariant::kGaussianFarima);
  // The far tail (mu + 6 sigma) should be visited by the full model far
  // more often than by the Gaussian variant.
  const double far = 27791.0 + 6.0 * 6254.0;
  const auto count_above = [&](const std::vector<double>& xs) {
    std::size_t c = 0;
    for (double v : xs) {
      if (v > far) ++c;
    }
    return c;
  };
  EXPECT_GT(count_above(full), 3 * count_above(gauss) + 2);
}

TEST(VbrSourceTest, GaussianVariantClipsAtZero) {
  auto p = paper_params();
  p.marginal.sigma_gamma = 20000.0;  // force excursions below zero
  const VbrVideoSourceModel model(p);
  Rng rng(5);
  const auto x = model.generate(20000, rng, ModelVariant::kGaussianFarima);
  for (double v : x) ASSERT_GE(v, 0.0);
}

TEST(VbrSourceTest, HoskingBackendAgreesWithDaviesHarte) {
  const VbrVideoSourceModel model(paper_params());
  Rng rng1(6);
  Rng rng2(7);
  const auto xh =
      model.generate(8192, rng1, ModelVariant::kFull, GeneratorBackend::kHosking);
  const auto xd =
      model.generate(8192, rng2, ModelVariant::kFull, GeneratorBackend::kDaviesHarte);
  EXPECT_NEAR(sample_mean(xh), sample_mean(xd), 0.1 * 27791.0);
  EXPECT_NEAR(std::sqrt(sample_variance(xh)), std::sqrt(sample_variance(xd)),
              0.25 * 6254.0);
}

TEST(VbrSourceTest, GenerateTraceCarriesFrameRate) {
  const VbrVideoSourceModel model(paper_params());
  Rng rng(8);
  const auto trace = model.generate_trace(1000, rng);
  EXPECT_EQ(trace.size(), 1000u);
  EXPECT_NEAR(trace.dt_seconds(), 1.0 / 24.0, 1e-12);
  EXPECT_EQ(trace.unit(), "bytes/frame");
  // Mean rate should be ~5.34 Mb/s, the paper's Table 1 value.
  EXPECT_NEAR(trace.mean_rate_bps() / 1e6, 5.34, 0.5);
}

TEST(VbrSourceTest, FitRecoversParametersFromOwnOutput) {
  const VbrVideoSourceModel truth(paper_params());
  Rng rng(9);
  const auto x = truth.generate(131072, rng);
  const auto fitted = VbrVideoSourceModel::fit(x);
  EXPECT_NEAR(fitted.params().marginal.mu_gamma, 27791.0, 0.05 * 27791.0);
  EXPECT_NEAR(fitted.params().marginal.sigma_gamma, 6254.0, 0.2 * 6254.0);
  EXPECT_NEAR(fitted.params().hurst, 0.8, 0.08);
  EXPECT_NEAR(fitted.params().marginal.tail_slope, 12.0, 4.0);
}

TEST(ModelValidationTest, FullModelCloses) {
  // Section 4.2: "The realizations were tested and found to agree with the
  // model parameters, both in marginal distribution and the value of H."
  const VbrVideoSourceModel model(paper_params());
  Rng rng(10);
  const auto report = validate_model(model, 131072, rng);
  EXPECT_LT(report.mean_rel_error, 0.05);
  EXPECT_LT(report.sigma_rel_error, 0.2);
  EXPECT_LT(report.hurst_abs_error, 0.08);
  EXPECT_TRUE(report.agrees(0.4, 0.1));
}

TEST(ModelValidationTest, IidVariantShowsNoLrd) {
  const VbrVideoSourceModel model(paper_params());
  Rng rng(11);
  const auto report =
      validate_model(model, 65536, rng, ModelVariant::kIidGammaPareto);
  // Re-fitted H of an i.i.d. realization sits near 0.5, far from 0.8.
  EXPECT_NEAR(report.refit.hurst, 0.5, 0.07);
  EXPECT_GT(report.hurst_abs_error, 0.2);
}

TEST(VbrSourceTest, FitRejectsShortOrNonPositiveData) {
  std::vector<double> tiny(10, 1.0);
  EXPECT_THROW(VbrVideoSourceModel::fit(tiny), vbr::InvalidArgument);
  std::vector<double> with_zero(2000, 100.0);
  with_zero[500] = 0.0;
  EXPECT_THROW(VbrVideoSourceModel::fit(with_zero), vbr::InvalidArgument);
}

}  // namespace
}  // namespace vbr::model
