// Tests for the ARMA filter, Yule-Walker fitting, and the fARIMA(p, d, q)
// generator (the Section 4 "combine with an ARMA filter" extension).
#include "vbr/model/arma.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "vbr/common/error.hpp"
#include "vbr/common/math_util.hpp"
#include "vbr/common/rng.hpp"
#include "vbr/stats/autocorrelation.hpp"
#include "vbr/stats/whittle.hpp"

namespace vbr::model {
namespace {

std::vector<double> white_noise(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.normal();
  return x;
}

TEST(ArmaFilterTest, IdentityWithNoCoefficients) {
  const ArmaFilter filter(ArmaParams{});
  const auto noise = white_noise(100, 1);
  EXPECT_EQ(filter.filter(noise), noise);
  EXPECT_NEAR(filter.output_variance(), 1.0, 1e-12);
}

TEST(ArmaFilterTest, Ar1ImpulseResponseIsGeometric) {
  ArmaParams params;
  params.ar = {0.7};
  const ArmaFilter filter(params);
  const auto psi = filter.impulse_response(10);
  for (std::size_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(psi[k], std::pow(0.7, static_cast<double>(k)), 1e-12) << "k=" << k;
  }
  // Output variance of AR(1): 1 / (1 - phi^2).
  EXPECT_NEAR(filter.output_variance(), 1.0 / (1.0 - 0.49), 1e-9);
}

TEST(ArmaFilterTest, Ma1ImpulseResponse) {
  ArmaParams params;
  params.ma = {0.5};
  const ArmaFilter filter(params);
  const auto psi = filter.impulse_response(5);
  EXPECT_DOUBLE_EQ(psi[0], 1.0);
  EXPECT_DOUBLE_EQ(psi[1], 0.5);
  EXPECT_DOUBLE_EQ(psi[2], 0.0);
  EXPECT_NEAR(filter.output_variance(), 1.25, 1e-12);
}

TEST(ArmaFilterTest, Ar1OutputHasGeometricAcf) {
  ArmaParams params;
  params.ar = {0.8};
  const ArmaFilter filter(params);
  const auto out = filter.filter(white_noise(200000, 2));
  const auto acf = stats::autocorrelation(out, 10);
  for (std::size_t k = 1; k <= 5; ++k) {
    EXPECT_NEAR(acf[k], std::pow(0.8, static_cast<double>(k)), 0.02) << "k=" << k;
  }
}

TEST(ArmaFilterTest, RejectsNonStationaryAr) {
  ArmaParams unit_root;
  unit_root.ar = {1.0};
  EXPECT_THROW(ArmaFilter{unit_root}, vbr::InvalidArgument);
  ArmaParams explosive;
  explosive.ar = {1.2};
  EXPECT_THROW(ArmaFilter{explosive}, vbr::InvalidArgument);
  ArmaParams oscillating_unstable;
  oscillating_unstable.ar = {0.0, -1.05};
  EXPECT_THROW(ArmaFilter{oscillating_unstable}, vbr::InvalidArgument);
}

TEST(YuleWalkerTest, RecoversAr1Coefficient) {
  std::vector<double> acf(5);
  for (std::size_t k = 0; k < 5; ++k) acf[k] = std::pow(0.6, static_cast<double>(k));
  const auto phi = yule_walker(acf, 1);
  ASSERT_EQ(phi.size(), 1u);
  EXPECT_NEAR(phi[0], 0.6, 1e-12);
}

TEST(YuleWalkerTest, RecoversAr2Coefficients) {
  // AR(2) with phi = (0.5, 0.3): rho_1 = phi1/(1-phi2), rho_k recursion.
  const double phi1 = 0.5;
  const double phi2 = 0.3;
  std::vector<double> acf(10);
  acf[0] = 1.0;
  acf[1] = phi1 / (1.0 - phi2);
  for (std::size_t k = 2; k < 10; ++k) acf[k] = phi1 * acf[k - 1] + phi2 * acf[k - 2];
  const auto phi = yule_walker(acf, 2);
  ASSERT_EQ(phi.size(), 2u);
  EXPECT_NEAR(phi[0], phi1, 1e-10);
  EXPECT_NEAR(phi[1], phi2, 1e-10);
}

TEST(YuleWalkerTest, RejectsBadInput) {
  std::vector<double> short_acf{1.0};
  EXPECT_THROW(yule_walker(short_acf, 1), vbr::InvalidArgument);
  std::vector<double> not_normalized{0.9, 0.5};
  EXPECT_THROW(yule_walker(not_normalized, 1), vbr::InvalidArgument);
}

TEST(FarimaPdqTest, PlainCoreMatchesFarima00) {
  FarimaPdqOptions options;
  options.hurst = 0.8;
  Rng rng(3);
  const auto x = farima_pdq(65536, options, rng);
  EXPECT_NEAR(sample_mean(x), 0.0, 0.2);
  EXPECT_NEAR(sample_variance(x), 1.0, 0.05);
  EXPECT_NEAR(stats::whittle_estimate(x).hurst, 0.8, 0.05);
}

TEST(FarimaPdqTest, ArPartRaisesShortLagCorrelationKeepsLrd) {
  FarimaPdqOptions plain;
  plain.hurst = 0.8;
  FarimaPdqOptions filtered = plain;
  filtered.arma.ar = {0.6};

  Rng rng1(4);
  Rng rng2(4);
  const auto x_plain = farima_pdq(131072, plain, rng1);
  const auto x_filtered = farima_pdq(131072, filtered, rng2);

  const auto acf_plain = stats::autocorrelation(x_plain, 2000);
  const auto acf_filtered = stats::autocorrelation(x_filtered, 2000);
  // Short-range correlation strengthened...
  EXPECT_GT(acf_filtered[1], acf_plain[1] + 0.1);
  // ...but the long-lag hyperbolic decay (the d part) survives.
  EXPECT_GT(acf_filtered[2000], 0.01);
  // Variance-normalized: requested unit variance.
  EXPECT_NEAR(sample_variance(x_filtered), 1.0, 0.05);
}

TEST(FarimaPdqTest, RequestedVarianceHonored) {
  FarimaPdqOptions options;
  options.hurst = 0.7;
  options.arma.ma = {0.4};
  options.variance = 9.0;
  Rng rng(5);
  const auto x = farima_pdq(32768, options, rng);
  EXPECT_NEAR(sample_variance(x), 9.0, 0.01);
}

}  // namespace
}  // namespace vbr::model
