// Unit tests for the TimeSeries value type and its Table-2-style summary.
#include "vbr/trace/time_series.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "vbr/common/error.hpp"

namespace vbr::trace {
namespace {

TEST(TimeSeriesTest, ConstructionAndAccessors) {
  TimeSeries ts({1.0, 2.0, 3.0}, 0.5, "bytes/frame");
  EXPECT_EQ(ts.size(), 3u);
  EXPECT_FALSE(ts.empty());
  EXPECT_DOUBLE_EQ(ts.dt_seconds(), 0.5);
  EXPECT_EQ(ts.unit(), "bytes/frame");
  EXPECT_DOUBLE_EQ(ts[1], 2.0);
  EXPECT_DOUBLE_EQ(ts.duration_seconds(), 1.5);
}

TEST(TimeSeriesTest, RejectsNonPositiveDt) {
  EXPECT_THROW(TimeSeries({1.0}, 0.0), InvalidArgument);
  EXPECT_THROW(TimeSeries({1.0}, -1.0), InvalidArgument);
}

TEST(TimeSeriesTest, MeanAndPeakRates) {
  // 24 fps, 27791 bytes/frame -> 5.34 Mb/s (the paper's Table 1 value).
  TimeSeries ts(std::vector<double>(1000, 27791.0), 1.0 / 24.0, "bytes/frame");
  EXPECT_NEAR(ts.mean_rate_bps(), 27791.0 * 8.0 * 24.0, 1e-6);
  EXPECT_NEAR(ts.mean_rate_bps() / 1e6, 5.34, 0.01);
  EXPECT_DOUBLE_EQ(ts.peak_rate_bps(), ts.mean_rate_bps());
}

TEST(TimeSeriesTest, SummaryMatchesHandComputation) {
  TimeSeries ts({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}, 1.0);
  const auto s = ts.summary();
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.variance, 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.peak_to_mean, 9.0 / 5.0);
  EXPECT_NEAR(s.coefficient_of_variation, s.stddev / 5.0, 1e-12);
}

TEST(TimeSeriesTest, EmptySummaryIsZero) {
  TimeSeries ts;
  const auto s = ts.summary();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(ts.mean_rate_bps(), 0.0);
}

TEST(TimeSeriesTest, SliceExtractsSubrange) {
  TimeSeries ts({0, 1, 2, 3, 4, 5}, 0.25, "u");
  const auto sub = ts.slice(2, 3);
  ASSERT_EQ(sub.size(), 3u);
  EXPECT_DOUBLE_EQ(sub[0], 2.0);
  EXPECT_DOUBLE_EQ(sub[2], 4.0);
  EXPECT_DOUBLE_EQ(sub.dt_seconds(), 0.25);
  EXPECT_EQ(sub.unit(), "u");
}

TEST(TimeSeriesTest, SliceClampsAtEnd) {
  TimeSeries ts({0, 1, 2}, 1.0);
  EXPECT_EQ(ts.slice(2, 100).size(), 1u);
  EXPECT_EQ(ts.slice(3, 1).size(), 0u);
  EXPECT_THROW(ts.slice(4, 1), InvalidArgument);
}

}  // namespace
}  // namespace vbr::trace
