// Tests for the three Hurst estimators of Section 3.2.3 — variance-time,
// R/S (pox diagram) and Whittle — including consistency sweeps over known-H
// fGn inputs (the property the paper's Table 3 relies on: all methods agree
// on the same H).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "vbr/common/error.hpp"
#include "vbr/common/rng.hpp"
#include "vbr/model/davies_harte.hpp"
#include "vbr/stats/rs_analysis.hpp"
#include "vbr/stats/variance_time.hpp"
#include "vbr/stats/whittle.hpp"

namespace vbr::stats {
namespace {

std::vector<double> fgn(std::size_t n, double hurst, std::uint64_t seed) {
  Rng rng(seed);
  model::DaviesHarteOptions opt;
  opt.hurst = hurst;
  return model::davies_harte(n, opt, rng);
}

std::vector<double> white_noise(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.normal();
  return x;
}

// ------------------------------------------------------- variance-time

TEST(VarianceTimeTest, WhiteNoiseGivesHalf) {
  const auto x = white_noise(200000, 1);
  VarianceTimeOptions opt;
  opt.fit_min_m = 10;
  const auto result = variance_time(x, opt);
  EXPECT_NEAR(result.hurst, 0.5, 0.05);
  EXPECT_NEAR(result.beta, 1.0, 0.1);
}

TEST(VarianceTimeTest, PointsAreMonotoneDecreasing) {
  const auto x = fgn(100000, 0.8, 2);
  VarianceTimeOptions opt;
  opt.max_m = 2000;  // keep >= 50 blocks so each variance estimate is stable
  const auto result = variance_time(x, opt);
  ASSERT_GE(result.points.size(), 5u);
  for (std::size_t i = 1; i < result.points.size(); ++i) {
    EXPECT_GT(result.points[i].m, result.points[i - 1].m);
    // Allow sampling noise on individual points; the trend must fall.
    EXPECT_LT(result.points[i].normalized_variance,
              result.points[i - 1].normalized_variance * 1.35);
  }
  EXPECT_DOUBLE_EQ(result.points.front().normalized_variance, 1.0);
}

class VarianceTimeHurstSweep : public ::testing::TestWithParam<double> {};

TEST_P(VarianceTimeHurstSweep, RecoversKnownH) {
  const double h = GetParam();
  const auto x = fgn(262144, h, 77);
  VarianceTimeOptions opt;
  opt.fit_min_m = 10;  // pure fGn has no SRD contamination
  const auto result = variance_time(x, opt);
  EXPECT_NEAR(result.hurst, h, 0.07) << "H=" << h;
}

INSTANTIATE_TEST_SUITE_P(HurstGrid, VarianceTimeHurstSweep,
                         ::testing::Values(0.55, 0.65, 0.75, 0.85));

// ---------------------------------------------------------------- R/S

TEST(RsTest, RescaledRangeOfLinearRampIsKnown) {
  // For data 1..n the adjusted partial sums form a parabola; sanity-check
  // positivity and scale-invariance instead of a closed form.
  std::vector<double> ramp(1000);
  for (std::size_t i = 0; i < ramp.size(); ++i) ramp[i] = static_cast<double>(i);
  const double rs1 = rescaled_range(ramp, 0, 1000);
  EXPECT_GT(rs1, 0.0);
  for (auto& v : ramp) v *= 13.0;  // scale invariance
  EXPECT_NEAR(rescaled_range(ramp, 0, 1000), rs1, 1e-9);
}

TEST(RsTest, ShiftInvariance) {
  const auto x = white_noise(5000, 3);
  auto shifted = x;
  for (auto& v : shifted) v += 1234.5;
  EXPECT_NEAR(rescaled_range(x, 100, 1000), rescaled_range(shifted, 100, 1000), 1e-6);
}

TEST(RsTest, ConstantBlockReturnsZero) {
  std::vector<double> constant(100, 3.0);
  EXPECT_DOUBLE_EQ(rescaled_range(constant, 0, 100), 0.0);
}

TEST(RsTest, WhiteNoiseGivesHalf) {
  const auto x = white_noise(200000, 4);
  RsOptions opt;
  opt.fit_min_lag = 100;
  const auto result = rs_analysis(x, opt);
  EXPECT_NEAR(result.hurst, 0.5, 0.07);
}

class RsHurstSweep : public ::testing::TestWithParam<double> {};

TEST_P(RsHurstSweep, RecoversKnownH) {
  const double h = GetParam();
  const auto x = fgn(262144, h, 99);
  RsOptions opt;
  opt.fit_min_lag = 200;
  const auto result = rs_analysis(x, opt);
  // R/S is the crudest of the three estimators; wide tolerance.
  EXPECT_NEAR(result.hurst, h, 0.12) << "H=" << h;
}

INSTANTIATE_TEST_SUITE_P(HurstGrid, RsHurstSweep, ::testing::Values(0.6, 0.75, 0.9));

TEST(RsTest, PoxDiagramHasRequestedDensity) {
  const auto x = white_noise(50000, 5);
  RsOptions opt;
  opt.lag_count = 20;
  opt.partitions = 8;
  const auto result = rs_analysis(x, opt);
  // About lag_count * partitions points (minus collapsed duplicates).
  EXPECT_GT(result.points.size(), 100u);
  EXPECT_LE(result.points.size(), 20u * 8u);
}

TEST(RsTest, AggregatedAnalysisStaysConsistent) {
  const auto x = fgn(262144, 0.8, 6);
  RsOptions opt;
  opt.fit_min_lag = 200;
  const auto plain = rs_analysis(x, opt);
  const auto aggregated = rs_analysis_aggregated(x, 10, opt);
  EXPECT_NEAR(plain.hurst, aggregated.hurst, 0.15);
}

TEST(RsTest, SweepReportsSpread) {
  const auto x = fgn(131072, 0.8, 7);
  const std::vector<std::size_t> lag_counts{15, 30};
  const std::vector<std::size_t> partitions{5, 10};
  RsOptions base;
  base.fit_min_lag = 200;
  const auto sweep = rs_sweep(x, lag_counts, partitions, base);
  EXPECT_EQ(sweep.estimates.size(), 4u);
  EXPECT_LE(sweep.hurst_min, sweep.hurst_max);
  EXPECT_GT(sweep.hurst_min, 0.6);
  EXPECT_LT(sweep.hurst_max, 1.0);
}

// ------------------------------------------------------------- Whittle

TEST(WhittleTest, SpectralShapeDefinition) {
  // |2 sin(w/2)|^{1-2H}; at H = 0.5 the shape is flat.
  EXPECT_NEAR(farima_spectral_shape(1.0, 0.5), 1.0, 1e-12);
  EXPECT_GT(farima_spectral_shape(0.01, 0.8), farima_spectral_shape(1.0, 0.8));
}

TEST(WhittleTest, WhiteNoiseGivesHalfWithValidCi) {
  const auto x = white_noise(65536, 8);
  const auto result = whittle_estimate(x);
  EXPECT_NEAR(result.hurst, 0.5, 0.03);
  EXPECT_GT(result.stderr_hurst, 0.0);
  EXPECT_LT(result.ci_low, result.hurst);
  EXPECT_GT(result.ci_high, result.hurst);
  // Asymptotic sd formula: sqrt(6 / (pi^2 n)).
  EXPECT_NEAR(result.stderr_hurst, std::sqrt(6.0 / (M_PI * M_PI * 65536.0)), 1e-12);
}

class WhittleHurstSweep : public ::testing::TestWithParam<double> {};

TEST_P(WhittleHurstSweep, RecoversKnownHWithMatchingSpectralModel) {
  const double h = GetParam();
  // fGn data fitted with the fGn density: essentially unbiased.
  const auto x = fgn(131072, h, 111);
  EXPECT_NEAR(whittle_estimate(x, SpectralModel::kFgn).hurst, h, 0.02) << "H=" << h;

  // fARIMA data fitted with the fARIMA density: also unbiased.
  Rng rng(112);
  model::DaviesHarteOptions opt;
  opt.hurst = h;
  opt.covariance = model::CovarianceKind::kFarima;
  const auto y = model::davies_harte(131072, opt, rng);
  EXPECT_NEAR(whittle_estimate(y, SpectralModel::kFarima).hurst, h, 0.02) << "H=" << h;
}

TEST(WhittleTest, MismatchedSpectralModelBiasesUpward) {
  // Fitting the fARIMA shape to fGn data overestimates H at high H — the
  // reason whittle_aggregated defaults to the fGn density.
  const auto x = fgn(131072, 0.85, 113);
  const double mismatched = whittle_estimate(x, SpectralModel::kFarima).hurst;
  const double matched = whittle_estimate(x, SpectralModel::kFgn).hurst;
  EXPECT_GT(mismatched, matched);
  EXPECT_NEAR(matched, 0.85, 0.02);
}

INSTANTIATE_TEST_SUITE_P(HurstGrid, WhittleHurstSweep,
                         ::testing::Values(0.55, 0.65, 0.75, 0.85, 0.92));

TEST(WhittleTest, AggregationPreservesH) {
  // Table 3 methodology: Whittle on X^(m) should keep returning ~H
  // (the paper's "H is not reduced by aggregation" observation).
  const auto x = fgn(262144, 0.8, 13);
  const std::vector<std::size_t> levels{1, 4, 16, 64};
  const auto points = whittle_aggregated(x, levels);
  ASSERT_EQ(points.size(), 4u);
  for (const auto& p : points) {
    EXPECT_NEAR(p.result.hurst, 0.8, 0.1) << "m=" << p.m;
  }
  // CIs widen with aggregation (fewer points).
  EXPECT_GT(points.back().result.stderr_hurst, points.front().result.stderr_hurst);
}

TEST(WhittleTest, RejectsTinySamples) {
  std::vector<double> tiny(10, 1.0);
  EXPECT_THROW(whittle_estimate(tiny), vbr::InvalidArgument);
}

// ------------------------------------------------------- local Whittle

class LocalWhittleSweep : public ::testing::TestWithParam<double> {};

TEST_P(LocalWhittleSweep, RecoversHModelFree) {
  // The semiparametric estimator must work on BOTH fGn and fARIMA data
  // without being told which — it only uses the lowest frequencies.
  const double h = GetParam();
  const auto x = fgn(131072, h, 211);
  const auto result = local_whittle_estimate(x);
  EXPECT_NEAR(result.hurst, h, 3.0 * result.stderr_hurst + 0.02) << "H=" << h;

  Rng rng(212);
  model::DaviesHarteOptions opt;
  opt.hurst = h;
  opt.covariance = model::CovarianceKind::kFarima;
  const auto y = model::davies_harte(131072, opt, rng);
  EXPECT_NEAR(local_whittle_estimate(y).hurst, h, 3.0 * result.stderr_hurst + 0.02)
      << "H=" << h;
}

INSTANTIATE_TEST_SUITE_P(HurstGrid, LocalWhittleSweep, ::testing::Values(0.55, 0.7, 0.85));

TEST(LocalWhittleTest, WhiteNoiseGivesHalf) {
  const auto x = white_noise(65536, 213);
  EXPECT_NEAR(local_whittle_estimate(x).hurst, 0.5, 0.05);
}

TEST(LocalWhittleTest, BandwidthControlsCiWidth) {
  const auto x = fgn(65536, 0.8, 214);
  const auto narrow = local_whittle_estimate(x, 256);
  const auto wide = local_whittle_estimate(x, 2048);
  EXPECT_GT(narrow.stderr_hurst, wide.stderr_hurst);
  EXPECT_NEAR(narrow.stderr_hurst, 1.0 / (2.0 * std::sqrt(256.0)), 1e-12);
}

// -------------------------------------------- cross-estimator agreement

TEST(EstimatorAgreementTest, AllThreeMethodsAgreeOnFgn) {
  // The Table 3 property: independent estimators cluster around true H.
  const double h = 0.8;
  const auto x = fgn(262144, h, 21);
  VarianceTimeOptions vt_opt;
  vt_opt.fit_min_m = 10;
  RsOptions rs_opt;
  rs_opt.fit_min_lag = 200;
  const double h_vt = variance_time(x, vt_opt).hurst;
  const double h_rs = rs_analysis(x, rs_opt).hurst;
  const double h_wh = whittle_estimate(x, SpectralModel::kFgn).hurst;
  EXPECT_NEAR(h_vt, h, 0.08);
  EXPECT_NEAR(h_rs, h, 0.12);
  EXPECT_NEAR(h_wh, h, 0.04);
  EXPECT_LT(std::abs(h_vt - h_wh), 0.12);
}

}  // namespace
}  // namespace vbr::stats
