// Streaming-vs-batch equivalence and merge-semantics tests for the one-pass
// analysis subsystem (src/vbr/stream/).
//
// The contract under test, per estimator:
//   - single-pass streaming result matches the batch estimator on the same
//     data within a documented tolerance (exact arithmetic would be equal
//     for moments/ACF; variance-time and Welch differ through their dyadic
//     grid / segmenting, so their tolerance is looser and asserted here);
//   - splitting the stream into k chunks, filling one sink per chunk and
//     merging gives the same result as the single pass, for any k;
//   - merge is associative (same result for any grouping);
//   - the engine tap is deterministic across thread counts and never
//     changes the generated trace.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "vbr/common/error.hpp"
#include "vbr/common/rng.hpp"
#include "vbr/engine/engine.hpp"
#include "vbr/model/vbr_source.hpp"
#include "vbr/stats/autocorrelation.hpp"
#include "vbr/stats/descriptive.hpp"
#include "vbr/stats/variance_time.hpp"
#include "vbr/stream/acf.hpp"
#include "vbr/stream/moments.hpp"
#include "vbr/stream/quantiles.hpp"
#include "vbr/stream/sink.hpp"
#include "vbr/stream/variance_time.hpp"
#include "vbr/stream/welch.hpp"

namespace vbr::stream {
namespace {

model::VbrModelParams paper_params() {
  model::VbrModelParams params;
  params.marginal.mu_gamma = 27791.0;
  params.marginal.sigma_gamma = 6254.0;
  params.marginal.tail_slope = 12.0;
  params.hurst = 0.8;
  return params;
}

// One 2^17-frame model trace shared by every test in this file.
const std::vector<double>& test_trace() {
  static const std::vector<double> data = [] {
    const model::VbrVideoSourceModel model(paper_params());
    Rng rng(1994);
    return model.generate(std::size_t{1} << 17, rng);
  }();
  return data;
}

std::span<const double> trace_span() { return test_trace(); }

// Split the trace into k contiguous chunks, fill sink_factory() per chunk,
// and fold the chunk sinks left to right into the first one.
template <typename SinkT, typename Factory>
SinkT split_merge(std::span<const double> data, std::size_t k, Factory factory) {
  std::vector<SinkT> parts;
  for (std::size_t j = 0; j < k; ++j) {
    const std::size_t lo = data.size() * j / k;
    const std::size_t hi = data.size() * (j + 1) / k;
    parts.push_back(factory());
    parts.back().push(data.subspan(lo, hi - lo));
  }
  for (std::size_t j = 1; j < k; ++j) parts.front().merge(parts[j]);
  return std::move(parts.front());
}

// ---------------------------------------------------------------------------
// Streaming vs batch
// ---------------------------------------------------------------------------

TEST(StreamingMomentsTest, MatchesBatchMoments) {
  StreamingMoments m;
  m.push(trace_span());
  const auto batch = stats::batch_moments(trace_span());

  ASSERT_EQ(m.count(), batch.count);
  EXPECT_NEAR(m.mean(), batch.mean, 1e-9 * std::abs(batch.mean));
  EXPECT_NEAR(m.variance(), batch.variance, 1e-9 * batch.variance);
  EXPECT_NEAR(m.skewness(), batch.skewness, 1e-6);
  EXPECT_NEAR(m.excess_kurtosis(), batch.excess_kurtosis, 1e-6);
  EXPECT_EQ(m.min(), batch.min);
  EXPECT_EQ(m.max(), batch.max);
  EXPECT_DOUBLE_EQ(m.peak_to_mean(), batch.max / m.mean());
}

TEST(StreamingMomentsTest, ChunkingDoesNotChangeTheResult) {
  // Same per-sample update order either way, so results are bit-identical.
  StreamingMoments whole;
  whole.push(trace_span());
  StreamingMoments chunked;
  const auto data = trace_span();
  for (std::size_t i = 0; i < data.size(); i += 4097) {
    chunked.push(data.subspan(i, std::min<std::size_t>(4097, data.size() - i)));
  }
  EXPECT_DOUBLE_EQ(whole.mean(), chunked.mean());
  EXPECT_DOUBLE_EQ(whole.variance(), chunked.variance());
  EXPECT_DOUBLE_EQ(whole.skewness(), chunked.skewness());
  EXPECT_DOUBLE_EQ(whole.excess_kurtosis(), chunked.excess_kurtosis());
}

TEST(StreamingAcfTest, MatchesBatchAutocorrelationUpToLag100) {
  constexpr std::size_t kMaxLag = 100;
  StreamingAcf acf(kMaxLag);
  acf.push(trace_span());
  const auto streamed = acf.acf();
  const auto batch = stats::autocorrelation(trace_span(), kMaxLag);

  ASSERT_EQ(streamed.size(), kMaxLag + 1);
  EXPECT_DOUBLE_EQ(streamed[0], 1.0);
  for (std::size_t k = 0; k <= kMaxLag; ++k) {
    EXPECT_NEAR(streamed[k], batch[k], 1e-6) << "lag " << k;
  }
}

TEST(StreamingVarianceTimeTest, HurstMatchesBatchEstimate) {
  // The streaming estimator aggregates on the dyadic grid m = 2^j while the
  // batch one uses a log-spaced grid and every whole block of the series, so
  // the two fits see different points; for a 2^17-sample H = 0.8 trace they
  // agree to well within +-0.08.
  StreamingVarianceTime vt;
  vt.push(trace_span());
  const auto streamed = vt.result();

  stats::VarianceTimeOptions batch_opt;
  batch_opt.fit_min_m = 100;
  const auto batch = stats::variance_time(trace_span(), batch_opt);

  EXPECT_NEAR(streamed.hurst, batch.hurst, 0.08);
  EXPECT_GT(streamed.fit.r_squared, 0.95);
}

TEST(StreamingQuantilesTest, MatchesEcdfWithinSketchError) {
  StreamingQuantiles sketch;
  sketch.push(trace_span());
  const stats::Ecdf ecdf(trace_span());

  // 1% bucket relative error plus order-statistic interpolation noise.
  for (const double q : {0.05, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    const double exact = ecdf.quantile(q);
    EXPECT_NEAR(sketch.quantile(q), exact, 0.03 * exact) << "q = " << q;
  }
  EXPECT_EQ(sketch.min(), ecdf.sorted().front());
  EXPECT_EQ(sketch.max(), ecdf.sorted().back());

  for (const double x : {20000.0, 30000.0, 45000.0}) {
    EXPECT_NEAR(sketch.ccdf(x), ecdf.ccdf(x), 0.02) << "x = " << x;
  }
}

TEST(StreamingWelchTest, LowFrequencySlopeSeesLongRangeDependence) {
  StreamingWelchPeriodogram welch;
  welch.push(trace_span());
  ASSERT_EQ(welch.segments(), trace_span().size() / 4096);
  const auto pg = welch.result();
  const double alpha = stats::low_frequency_slope(pg, 0.05);
  const double hurst = (1.0 + alpha) / 2.0;
  EXPECT_GT(hurst, 0.6);
  EXPECT_LT(hurst, 1.0);
}

// ---------------------------------------------------------------------------
// Merge: split-k equivalence and associativity
// ---------------------------------------------------------------------------

TEST(StreamingMergeTest, MomentsSplitMergeMatchesSinglePassForAnyK) {
  StreamingMoments whole;
  whole.push(trace_span());
  for (const std::size_t k : {2u, 3u, 5u, 8u}) {
    const auto merged =
        split_merge<StreamingMoments>(trace_span(), k, [] { return StreamingMoments(); });
    ASSERT_EQ(merged.count(), whole.count());
    EXPECT_NEAR(merged.mean(), whole.mean(), 1e-9 * std::abs(whole.mean())) << k;
    EXPECT_NEAR(merged.variance(), whole.variance(), 1e-9 * whole.variance()) << k;
    EXPECT_NEAR(merged.skewness(), whole.skewness(), 1e-6) << k;
    EXPECT_NEAR(merged.excess_kurtosis(), whole.excess_kurtosis(), 1e-6) << k;
    EXPECT_EQ(merged.min(), whole.min());
    EXPECT_EQ(merged.max(), whole.max());
  }
}

TEST(StreamingMergeTest, AcfSplitMergeMatchesSinglePassForAnyK) {
  constexpr std::size_t kMaxLag = 64;
  StreamingAcf whole(kMaxLag);
  whole.push(trace_span());
  const auto expect = whole.acf();
  for (const std::size_t k : {2u, 3u, 5u, 8u}) {
    const auto merged =
        split_merge<StreamingAcf>(trace_span(), k, [] { return StreamingAcf(kMaxLag); });
    const auto got = merged.acf();
    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t lag = 0; lag < got.size(); ++lag) {
      EXPECT_NEAR(got[lag], expect[lag], 1e-9) << "k " << k << " lag " << lag;
    }
  }
}

TEST(StreamingMergeTest, QuantileSketchMergeIsExactForAnyK) {
  // Integer bucket counts add, so the merged sketch is *identical* to the
  // single-pass sketch, not merely close.
  StreamingQuantiles whole;
  whole.push(trace_span());
  for (const std::size_t k : {2u, 3u, 5u, 8u}) {
    const auto merged =
        split_merge<StreamingQuantiles>(trace_span(), k, [] { return StreamingQuantiles(); });
    ASSERT_EQ(merged.count(), whole.count());
    for (const double q : {0.0, 0.01, 0.5, 0.9, 0.999, 1.0}) {
      EXPECT_DOUBLE_EQ(merged.quantile(q), whole.quantile(q)) << "k " << k;
    }
    EXPECT_DOUBLE_EQ(merged.ccdf(30000.0), whole.ccdf(30000.0));
  }
}

TEST(StreamingMergeTest, VarianceTimeSplitMergeStaysWithinTolerance) {
  // Each merge boundary discards at most one partial block per level. At
  // the largest fitted level (m = 2^12 for 2^17 samples) that is up to k-1
  // of only ~32 blocks, so the k-way merged Hurst estimate can move by a
  // few hundredths relative to the single pass; +-0.08 is the documented
  // bound (measured: 0.055 at k = 5).
  StreamingVarianceTime whole;
  whole.push(trace_span());
  const double expect = whole.result().hurst;
  for (const std::size_t k : {2u, 5u}) {
    const auto merged = split_merge<StreamingVarianceTime>(
        trace_span(), k, [] { return StreamingVarianceTime(); });
    EXPECT_NEAR(merged.result().hurst, expect, 0.08) << "k " << k;
  }
}

TEST(StreamingMergeTest, WelchSegmentAlignedMergeMatchesSinglePass) {
  StreamingWelchPeriodogram whole;
  whole.push(trace_span());
  // Split at a segment multiple: no partial segments are lost.
  const std::size_t cut = 8 * 4096;
  StreamingWelchPeriodogram left;
  left.push(trace_span().subspan(0, cut));
  StreamingWelchPeriodogram right;
  right.push(trace_span().subspan(cut));
  left.merge(right);

  ASSERT_EQ(left.segments(), whole.segments());
  const auto merged_pg = left.result();
  const auto whole_pg = whole.result();
  ASSERT_EQ(merged_pg.power.size(), whole_pg.power.size());
  for (std::size_t i = 0; i < merged_pg.power.size(); ++i) {
    EXPECT_NEAR(merged_pg.power[i], whole_pg.power[i], 1e-9 * whole_pg.power[i]);
  }
}

TEST(StreamingMergeTest, MergeIsAssociative) {
  const auto data = trace_span();
  const std::size_t third = data.size() / 3;
  const std::span<const double> parts[3] = {
      data.subspan(0, third), data.subspan(third, third), data.subspan(2 * third)};

  auto fill = [&](auto make) {
    std::vector<decltype(make())> sinks;
    for (const auto& part : parts) {
      sinks.push_back(make());
      sinks.back().push(part);
    }
    return sinks;
  };

  {
    auto left = fill([] { return StreamingMoments(); });   // ((a b) c)
    auto right = fill([] { return StreamingMoments(); });  // (a (b c))
    left[0].merge(left[1]);
    left[0].merge(left[2]);
    right[1].merge(right[2]);
    right[0].merge(right[1]);
    EXPECT_NEAR(left[0].mean(), right[0].mean(), 1e-12 * std::abs(left[0].mean()));
    EXPECT_NEAR(left[0].variance(), right[0].variance(), 1e-9 * left[0].variance());
  }
  {
    auto left = fill([] { return StreamingQuantiles(); });
    auto right = fill([] { return StreamingQuantiles(); });
    left[0].merge(left[1]);
    left[0].merge(left[2]);
    right[1].merge(right[2]);
    right[0].merge(right[1]);
    for (const double q : {0.1, 0.5, 0.99}) {
      EXPECT_DOUBLE_EQ(left[0].quantile(q), right[0].quantile(q));
    }
  }
  {
    auto left = fill([] { return StreamingAcf(32); });
    auto right = fill([] { return StreamingAcf(32); });
    left[0].merge(left[1]);
    left[0].merge(left[2]);
    right[1].merge(right[2]);
    right[0].merge(right[1]);
    const auto a = left[0].acf();
    const auto b = right[0].acf();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t lag = 0; lag < a.size(); ++lag) {
      EXPECT_NEAR(a[lag], b[lag], 1e-9) << "lag " << lag;
    }
  }
}

TEST(StreamingMergeTest, MergingAnEmptySinkIsIdentity) {
  StreamingMoments m;
  m.push(trace_span().subspan(0, 1024));
  const double mean = m.mean();
  StreamingMoments empty;
  m.merge(empty);
  EXPECT_DOUBLE_EQ(m.mean(), mean);
  EXPECT_EQ(m.count(), 1024u);

  StreamingAcf acf(16);
  acf.push(trace_span().subspan(0, 1024));
  const auto before = acf.acf();
  StreamingAcf empty_acf(16);
  acf.merge(empty_acf);
  EXPECT_EQ(acf.acf(), before);

  // And the flipped direction: an empty sink absorbing a filled one.
  StreamingAcf fresh(16);
  fresh.merge(acf);
  EXPECT_EQ(fresh.acf(), before);
}

// ---------------------------------------------------------------------------
// Sink composition and error contracts
// ---------------------------------------------------------------------------

TEST(SinkChainTest, FansOutAndClonesMergeBack) {
  StreamingMoments moments;
  StreamingAcf acf(16);
  auto sinks = chain(moments, acf);
  sinks.push(trace_span().subspan(0, 4096));
  EXPECT_EQ(sinks.count(), 4096u);
  EXPECT_EQ(moments.count(), 4096u);
  EXPECT_EQ(acf.count(), 4096u);

  auto clone = sinks.clone_empty();
  EXPECT_EQ(clone->count(), 0u);
  clone->push(trace_span().subspan(4096, 4096));
  sinks.merge(*clone);
  EXPECT_EQ(moments.count(), 8192u);
  EXPECT_EQ(acf.count(), 8192u);

  StreamingMoments whole;
  whole.push(trace_span().subspan(0, 8192));
  EXPECT_NEAR(moments.mean(), whole.mean(), 1e-9 * std::abs(whole.mean()));
}

TEST(SinkTest, MergeRejectsMismatchedTypesAndConfigs) {
  StreamingMoments moments;
  StreamingAcf acf(16);
  EXPECT_THROW(moments.merge(acf), InvalidArgument);
  EXPECT_THROW(acf.merge(moments), InvalidArgument);

  StreamingAcf other_lag(32);
  EXPECT_THROW(acf.merge(other_lag), InvalidArgument);

  StreamingQuantiles q1;
  QuantileSketchOptions coarse;
  coarse.relative_error = 0.05;
  StreamingQuantiles q2(coarse);
  EXPECT_THROW(q1.merge(q2), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Engine tap
// ---------------------------------------------------------------------------

engine::GenerationPlan small_plan() {
  engine::GenerationPlan plan;
  plan.num_sources = 4;
  plan.frames_per_source = 4096;
  plan.seed = 1994;
  plan.params = paper_params();
  return plan;
}

TEST(EngineTapTest, TapNeverChangesTheGeneratedTrace) {
  auto plan = small_plan();
  const auto without = engine::generate_sources(plan);

  StreamingMoments moments;
  StreamingAcf acf(32);
  auto tap = chain(moments, acf);
  const auto with = engine::generate_sources(plan, &tap);

  // Bit-identical, the same guarantee PR 1's determinism hash witnesses.
  EXPECT_EQ(without.sources, with.sources);
  EXPECT_EQ(moments.count(), plan.num_sources * plan.frames_per_source);
}

TEST(EngineTapTest, TapStatisticsAreDeterministicAcrossThreadCounts) {
  auto plan = small_plan();
  auto run = [&plan](std::size_t threads) {
    plan.threads = threads;
    StreamingMoments moments;
    StreamingAcf acf(32);
    auto tap = chain(moments, acf);
    engine::generate_sources(plan, &tap);
    auto r = acf.acf();
    r.push_back(moments.mean());
    r.push_back(moments.variance());
    return r;
  };
  const auto serial = run(1);
  const auto two = run(2);
  const auto eight = run(8);
  // Exact equality: the per-source sinks are merged in source order on one
  // thread, so scheduling cannot perturb even the last bit.
  EXPECT_EQ(serial, two);
  EXPECT_EQ(serial, eight);
}

TEST(EngineTapTest, TapMatchesPushingSourcesInOrder) {
  auto plan = small_plan();
  StreamingMoments tap_moments;
  auto tap = chain(tap_moments);
  const auto trace = engine::generate_sources(plan, &tap);

  StreamingMoments direct;
  for (const auto& source : trace.sources) direct.push(source);
  EXPECT_EQ(tap_moments.count(), direct.count());
  EXPECT_NEAR(tap_moments.mean(), direct.mean(), 1e-12 * std::abs(direct.mean()));
  EXPECT_NEAR(tap_moments.variance(), direct.variance(), 1e-9 * direct.variance());
  EXPECT_EQ(tap_moments.min(), direct.min());
  EXPECT_EQ(tap_moments.max(), direct.max());
}

}  // namespace
}  // namespace vbr::stream
