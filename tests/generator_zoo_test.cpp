// Tests for the generator zoo (fgn_generator.hpp): statistical fidelity of
// every registered generator under the repo's own estimators, the engine
// determinism contract extended to name-selected backends, factory
// negative paths, the Paxson padding/cache contracts, the fast-FFT kernel,
// and the plan-text surface.
//
// Documented statistical tolerances (single fixed-seed realizations, so
// these are deterministic checks, not flaky hypothesis tests):
//   * Whittle H-hat within +/- 0.04 of target at H in {0.6, 0.75, 0.9},
//     judged under each generator's own covariance family (a cross-family
//     Whittle fit misreads H by up to ~0.08 even for an exact generator —
//     see stats/lrd_fidelity.hpp).
//   * Variance-time H-hat is biased low pre-asymptotically (the paper's own
//     Fig. 11 discussion), so it gets a sanity band plus monotonicity in
//     the target H, not a tight tolerance.
//   * Marginal KS (shape, sample-moment reference): <= 0.02 for the
//     full-length generators; hosking is judged at 8192 frames (O(n^2))
//     where the KS critical value itself is ~0.015.
//   * After the Gamma/Pareto marginal transform: KS <= 0.02 against the
//     target marginal for Gaussian-marginal generators, <= 0.03 for onoff
//     (its Poisson-plus-noise marginal is only asymptotically Gaussian).
#include "vbr/model/fgn_generator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <complex>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <numbers>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "vbr/common/checksum.hpp"
#include "vbr/common/error.hpp"
#include "vbr/common/fft.hpp"
#include "vbr/common/fft_fast.hpp"
#include "vbr/common/math_util.hpp"
#include "vbr/common/rng.hpp"
#include "vbr/engine/engine.hpp"
#include "vbr/engine/plan_text.hpp"
#include "vbr/model/fgn_acf.hpp"
#include "vbr/model/marginal_transform.hpp"
#include "vbr/model/paxson_fgn.hpp"
#include "vbr/run/checkpoint.hpp"
#include "vbr/stats/gamma_pareto.hpp"
#include "vbr/stats/goodness_of_fit.hpp"
#include "vbr/stats/lrd_fidelity.hpp"
#include "vbr/stream/sink.hpp"

namespace vbr::model {
namespace {

constexpr double kHurstTolerance = 0.04;
const std::vector<double> kHurstTargets = {0.6, 0.75, 0.9};

std::size_t fidelity_frames(const std::string& name) {
  return name == "hosking" ? 8192 : 65536;  // O(n^2) exact reference
}

/// One judged realization per (generator, H), memoized: several tests read
/// different fields of the same report, and generation dominates runtime.
const stats::LrdFidelityReport& judged(const std::string& name, double hurst) {
  static std::map<std::pair<std::string, double>, stats::LrdFidelityReport> cache;
  const auto key = std::make_pair(name, hurst);
  const auto it = cache.find(key);
  if (it != cache.end()) return it->second;

  const auto gen = make_fgn_generator(name, hurst);
  Rng rng(1994 + static_cast<std::uint64_t>(hurst * 1000));
  const auto x = gen->generate(fidelity_frames(name), rng);
  stats::LrdFidelityOptions options;
  options.spectral_model = gen->farima_covariance() ? stats::SpectralModel::kFarima
                                                    : stats::SpectralModel::kFgn;
  const auto acf = gen->farima_covariance() ? farima_acf(hurst, options.acf_lags)
                                            : fgn_acf(hurst, options.acf_lags);
  return cache.emplace(key, stats::judge_lrd_fidelity(x, hurst, acf, options))
      .first->second;
}

TEST(GeneratorZooStatTest, WhittleRecoversHurstWithinTolerance) {
  for (const auto& name : fgn_generator_names()) {
    for (const double target : kHurstTargets) {
      EXPECT_NEAR(judged(name, target).whittle_hurst, target, kHurstTolerance)
          << name << " at H = " << target;
    }
  }
}

TEST(GeneratorZooStatTest, VarianceTimeSlopeTracksHurst) {
  // The VT estimator reads low before the asymptotic regime, so the check
  // is a band plus strict monotonicity across the H grid, per generator.
  for (const auto& name : fgn_generator_names()) {
    double prev = 0.0;
    for (const double target : kHurstTargets) {
      const double vt = judged(name, target).vt_hurst;
      EXPECT_GT(vt, 0.45) << name << " at H = " << target;
      EXPECT_LT(vt, 1.0) << name << " at H = " << target;
      EXPECT_GT(vt, prev) << name << ": VT slope must increase with target H";
      prev = vt;
    }
  }
}

TEST(GeneratorZooStatTest, UnitVarianceContract) {
  // Sample variance of an LRD path legitimately wanders from 1 (worst near
  // H = 0.9 where the effective sample count is smallest); the band covers
  // that wander, not estimator slack.
  for (const auto& name : fgn_generator_names()) {
    for (const double target : kHurstTargets) {
      const double v = judged(name, target).sample_variance;
      EXPECT_GT(v, 0.75) << name << " at H = " << target;
      EXPECT_LT(v, 1.25) << name << " at H = " << target;
    }
  }
}

TEST(GeneratorZooStatTest, RawMarginalIsGaussianShaped) {
  for (const auto& name : fgn_generator_names()) {
    for (const double target : kHurstTargets) {
      EXPECT_LE(judged(name, target).gaussian_ks, 0.02) << name << " at H = " << target;
    }
  }
}

TEST(GeneratorZooStatTest, MarginalKsAfterTransformUnderDocumentedTolerance) {
  // Push each generator's Gaussian core through the paper's Gamma/Pareto
  // marginal map and test the result against the target distribution
  // itself. The onoff core is Poisson-plus-calibration-noise, Gaussian only
  // by CLT, hence its looser documented bound.
  stats::GammaParetoParams params;
  params.mu_gamma = 27791.0;
  params.sigma_gamma = 6254.0;
  params.tail_slope = 12.0;
  const stats::GammaParetoDistribution target(params);
  const TabulatedMarginalMap map(target);
  for (const auto& name : fgn_generator_names()) {
    const auto gen = make_fgn_generator(name, 0.8);
    Rng rng(777);
    auto gaussian = gen->generate(name == "hosking" ? 8192 : 32768, rng);
    // Standardize by sample moments first: an LRD core's realized mean
    // wanders as n^{H-1} (~0.17 sd at 8192 frames), and the quantile map
    // would convert that legitimate wander into ~0.07 of KS distance.
    // Shape is the contract here, as in lrd_fidelity's Gaussian KS.
    const double m = sample_mean(gaussian);
    const double s = std::sqrt(sample_variance(gaussian));
    for (double& z : gaussian) z = (z - m) / s;
    const auto mapped = map.apply(gaussian);
    const double ks = stats::ks_test(mapped, target).statistic;
    const double tolerance = name == "onoff" ? 0.03 : 0.02;
    EXPECT_LE(ks, tolerance) << name;
  }
}

TEST(GeneratorZooStatTest, AcfTracksFamilyTarget) {
  // RMS over lags 1..64 against the family's exact ACF. The bound is wide
  // at high H where the sample ACF estimator itself carries O(0.1) bias on
  // 2^16 points (it is a comparative axis in bench_generator_pareto, not a
  // sharp acceptance bound).
  for (const auto& name : fgn_generator_names()) {
    for (const double target : kHurstTargets) {
      EXPECT_LE(judged(name, target).acf_rms_error, 0.15) << name << " at H = " << target;
    }
  }
}

// ---------------------------------------------------------------------------
// Engine determinism properties.

engine::GenerationPlan zoo_plan(const std::string& generator) {
  engine::GenerationPlan plan;
  plan.num_sources = 4;
  plan.frames_per_source = 4096;
  plan.seed = 1994;
  plan.params.hurst = 0.8;
  plan.params.marginal.mu_gamma = 27791.0;
  plan.params.marginal.sigma_gamma = 6254.0;
  plan.params.marginal.tail_slope = 12.0;
  plan.generator = generator;
  return plan;
}

TEST(GeneratorZooEngineTest, GoldenHashPinnedForDefaultBackend) {
  // The pre-zoo engine output, pinned: the zoo refactor (and anything
  // after it) must keep the default Davies-Harte path bit-identical.
  auto plan = zoo_plan("");
  plan.frames_per_source = 8192;
  plan.threads = 2;
  const auto trace = engine::generate_sources(plan);
  Fnv1a hash;
  for (const auto& source : trace.sources) hash.update(std::span<const double>(source));
  EXPECT_EQ(hash.digest(), 0xac84cb3837e49d4aULL);
}

TEST(GeneratorZooEngineTest, BitIdenticalAcrossThreadCountsForEveryGenerator) {
  for (const auto& name : fgn_generator_names()) {
    auto plan = zoo_plan(name);
    plan.threads = 1;
    const auto one = engine::generate_sources(plan);
    plan.threads = 2;
    const auto two = engine::generate_sources(plan);
    plan.threads = 4;
    const auto four = engine::generate_sources(plan);
    EXPECT_EQ(one.sources, two.sources) << name;
    EXPECT_EQ(one.sources, four.sources) << name;
  }
}

TEST(GeneratorZooEngineTest, RetriedSourcesBitIdenticalForNewGenerators) {
  // First push anywhere trips a TransientError; the retried source must
  // reproduce the fault-free output exactly (each attempt restarts from a
  // copy of the source's pre-derived stream).
  class FlakySink final : public stream::Sink {
   public:
    FlakySink() : tripped_(std::make_shared<std::atomic<bool>>(false)) {}
    void push(std::span<const double>) override {
      if (!tripped_->exchange(true)) throw vbr::TransientError("flaky push");
    }
    void merge(const Sink&) override {}
    std::unique_ptr<Sink> clone_empty() const override {
      return std::unique_ptr<Sink>(new FlakySink(*this));
    }
    void save(std::ostream&) const override {}
    void restore(std::istream&) override {}
    std::size_t count() const override { return 0; }
    const char* kind() const override { return "flaky"; }

   private:
    std::shared_ptr<std::atomic<bool>> tripped_;
  };

  for (const std::string name : {"paxson", "onoff"}) {
    auto plan = zoo_plan(name);
    plan.threads = 2;
    const auto clean = engine::generate_sources(plan);
    FlakySink tap;
    engine::FailurePolicy policy;
    policy.max_attempts = 3;
    const auto retried = engine::generate_sources(plan, &tap, policy);
    EXPECT_EQ(clean.sources, retried.sources) << name;
    EXPECT_EQ(retried.stats.transient_retries, 1u) << name;
    EXPECT_TRUE(retried.stats.failures.empty()) << name;
  }
}

TEST(GeneratorZooRngTest, CopiedStreamReplaysBitIdentically) {
  for (const auto& name : fgn_generator_names()) {
    const auto gen = make_fgn_generator(name, 0.8);
    Rng rng(42);
    Rng copy = rng;
    EXPECT_EQ(gen->generate(2048, rng), gen->generate(2048, copy)) << name;
  }
}

TEST(GeneratorZooRngTest, SplitStreamsAreIndependent) {
  // Split-derived sibling streams must give distinct, (empirically)
  // uncorrelated realizations — the engine's source-independence story.
  for (const auto& name : fgn_generator_names()) {
    const auto gen = make_fgn_generator(name, 0.8);
    Rng master(1994);
    Rng a = master.split();
    Rng b = master.split();
    const auto x = gen->generate(16384, a);
    const auto y = gen->generate(16384, b);
    ASSERT_NE(x, y) << name;
    double sxy = 0.0;
    const double mx = sample_mean(x), my = sample_mean(y);
    for (std::size_t i = 0; i < x.size(); ++i) sxy += (x[i] - mx) * (y[i] - my);
    const double r = sxy / (static_cast<double>(x.size()) *
                            std::sqrt(sample_variance(x) * sample_variance(y)));
    // LRD inflates the null sd of the sample correlation well above
    // 1/sqrt(n); 0.1 is ~5x that inflated scale at H = 0.8.
    EXPECT_LT(std::abs(r), 0.1) << name;
  }
}

// ---------------------------------------------------------------------------
// Factory negative paths.

TEST(GeneratorZooFactoryTest, RejectsUnknownNames) {
  for (const char* bad : {"", "pax", "DAVIES-HARTE", "davies harte", "onoff "}) {
    EXPECT_THROW((void)make_fgn_generator(bad, 0.8), InvalidArgument) << '"' << bad << '"';
    EXPECT_THROW((void)generator_backend_from_name(bad), InvalidArgument);
  }
}

TEST(GeneratorZooFactoryTest, RejectsHurstOutsideOpenUnitInterval) {
  for (const auto& name : fgn_generator_names()) {
    for (const double h : {0.0, 1.0, -0.3, 1.7}) {
      EXPECT_THROW((void)make_fgn_generator(name, h), InvalidArgument)
          << name << " H = " << h;
    }
  }
  // The on/off construction additionally needs H > 0.5 (alpha < 2).
  EXPECT_THROW((void)make_fgn_generator("onoff", 0.5), InvalidArgument);
  EXPECT_THROW((void)make_fgn_generator("onoff", 0.45), InvalidArgument);
  EXPECT_NO_THROW((void)make_fgn_generator("davies-harte", 0.45));
}

TEST(GeneratorZooFactoryTest, RejectsNonPositiveVariance) {
  for (const auto& name : fgn_generator_names()) {
    EXPECT_THROW((void)make_fgn_generator(name, 0.8, 0.0), InvalidArgument) << name;
    EXPECT_THROW((void)make_fgn_generator(name, 0.8, -1.0), InvalidArgument) << name;
  }
}

TEST(GeneratorZooFactoryTest, RegistryRoundTrips) {
  for (const auto& name : fgn_generator_names()) {
    const auto backend = generator_backend_from_name(name);
    EXPECT_EQ(generator_backend_name(backend), name);
    const auto gen = make_fgn_generator(backend, 0.8);
    EXPECT_EQ(gen->name(), name);
    EXPECT_DOUBLE_EQ(gen->hurst(), 0.8);
  }
}

// ---------------------------------------------------------------------------
// Paxson contracts: padding rule, normalization, spectrum cache.

TEST(PaxsonTest, PaddingRuleTruncatesOnePowerOfTwoSynthesis) {
  // Documented padding rule: synthesize at len = next_power_of_two(n) and
  // return the leading n points. Consequence (tested): for any n with the
  // same len and the same Rng state, the shorter request is exactly a
  // prefix of the longer one — the draws depend only on len.
  PaxsonOptions options;
  options.hurst = 0.75;
  Rng a(5), b(5);
  const auto full = paxson_fgn(4096, options, a);
  const auto truncated = paxson_fgn(3000, options, b);
  ASSERT_EQ(full.size(), 4096u);
  ASSERT_EQ(truncated.size(), 3000u);
  EXPECT_TRUE(std::equal(truncated.begin(), truncated.end(), full.begin()));

  // One past the power of two doubles the synthesis length: same seed, but
  // a different amplitude vector, so the prefix property must NOT hold.
  Rng c(5);
  const auto bumped = paxson_fgn(4097, options, c);
  ASSERT_EQ(bumped.size(), 4097u);
  EXPECT_NE(bumped[0], full[0]);
}

TEST(PaxsonTest, NormalizationYieldsUnitVarianceInExpectation) {
  // The alpha normalization makes E[Var(x)] = options.variance; average the
  // sample variance over seeds to push the LRD wander down.
  PaxsonOptions options;
  options.hurst = 0.75;
  double mean_var = 0.0;
  const int seeds = 12;
  for (int s = 1; s <= seeds; ++s) {
    Rng rng(static_cast<std::uint64_t>(s) * 101);
    mean_var += sample_variance(paxson_fgn(8192, options, rng));
  }
  mean_var /= seeds;
  EXPECT_NEAR(mean_var, 1.0, 0.08);

  options.variance = 4.0;
  Rng rng(17);
  const auto scaled = paxson_fgn(8192, options, rng);
  Rng rng2(17);
  options.variance = 1.0;
  const auto unit = paxson_fgn(8192, options, rng2);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_DOUBLE_EQ(scaled[i], 2.0 * unit[i]);
}

TEST(PaxsonTest, SpectrumCacheBookkeeping) {
  paxson_spectrum_cache_clear();
  ASSERT_EQ(paxson_spectrum_cache_size(), 0u);
  PaxsonOptions options;
  options.hurst = 0.7;
  Rng rng(9);
  (void)paxson_fgn(2048, options, rng);
  EXPECT_EQ(paxson_spectrum_cache_size(), 1u);
  (void)paxson_fgn(2000, options, rng);  // same synthesis length: no new entry
  EXPECT_EQ(paxson_spectrum_cache_size(), 1u);
  options.hurst = 0.8;
  (void)paxson_fgn(2048, options, rng);
  EXPECT_EQ(paxson_spectrum_cache_size(), 2u);

  // Cache off: no growth, and output bit-identical to the cached path.
  options.use_spectrum_cache = false;
  Rng c1(33), c2(33);
  const auto uncached = paxson_fgn(2048, options, c1);
  options.use_spectrum_cache = true;
  const auto cached = paxson_fgn(2048, options, c2);
  EXPECT_EQ(paxson_spectrum_cache_size(), 2u);
  EXPECT_EQ(uncached, cached);
  paxson_spectrum_cache_clear();
  EXPECT_EQ(paxson_spectrum_cache_size(), 0u);
}

TEST(PaxsonTest, SpectralDensityMatchesExactAliasingSum) {
  // The header promises the closed-form B-tilde_3 approximation tracks the
  // exact aliasing sum sum_j |lambda + 2 pi j|^{-2H-1} to a few parts in
  // 1e4. Compare shapes (ratio constant across lambda) so the unit-scale
  // normalization drops out; the truncated sum is carried far enough (1e5
  // terms + integral tail) to be exact at this tolerance.
  const auto exact_density = [](double lambda, double hurst) {
    const double d = -2.0 * hurst - 1.0;
    const double two_pi = 2.0 * std::numbers::pi;
    double alias = 0.0;
    const int terms = 100000;
    for (int j = terms; j >= 1; --j) {  // small terms first
      alias += std::pow(two_pi * j + lambda, d) + std::pow(two_pi * j - lambda, d);
    }
    // Integral tail beyond the truncation: int_{J+1/2}^{inf} for both arms.
    const double edge = two_pi * (terms + 0.5);
    alias += (std::pow(edge + lambda, d + 1.0) + std::pow(edge - lambda, d + 1.0)) /
             (-(d + 1.0) * two_pi);
    return (1.0 - std::cos(lambda)) * (std::pow(lambda, d) + alias);
  };
  for (const double h : {0.55, 0.7, 0.9}) {
    const double anchor =
        paxson_fgn_spectral_density(1.0, h) / exact_density(1.0, h);
    for (const double lam : {0.01, 0.1, 0.5, 1.5, 2.5, 3.1}) {
      const double ratio =
          paxson_fgn_spectral_density(lam, h) / exact_density(lam, h);
      EXPECT_NEAR(ratio / anchor, 1.0, 1e-3)
          << "H = " << h << ", lambda = " << lam;
    }
  }
}

TEST(PaxsonTest, SpectralDensityIsPositiveAndSingularAtZero) {
  for (const double h : {0.55, 0.75, 0.95}) {
    double prev = paxson_fgn_spectral_density(1e-4, h);
    for (const double lam : {1e-3, 1e-2, 0.1, 1.0, 3.14}) {
      const double f = paxson_fgn_spectral_density(lam, h);
      EXPECT_GT(f, 0.0);
      EXPECT_LT(f, prev) << "fGn density must decrease in frequency, H = " << h;
      prev = f;
    }
  }
  EXPECT_THROW((void)paxson_fgn_spectral_density(0.0, 0.8), InvalidArgument);
  EXPECT_THROW((void)paxson_fgn_spectral_density(4.0, 0.8), InvalidArgument);
  EXPECT_THROW((void)paxson_fgn_spectral_density(1.0, 1.0), InvalidArgument);
}

// ---------------------------------------------------------------------------
// fast_irfft_pow2: the opt-in table-driven kernel behind Paxson synthesis.

TEST(FastFftTest, AgreesWithReferenceIrfft) {
  Rng rng(2024);
  for (const std::size_t n : {2u, 8u, 64u, 1024u, 16384u}) {
    std::vector<std::complex<double>> spectrum(n / 2 + 1);
    spectrum[0] = rng.normal();  // DC and Nyquist real, as irfft assumes
    spectrum[n / 2] = rng.normal();
    for (std::size_t k = 1; k < n / 2; ++k) spectrum[k] = {rng.normal(), rng.normal()};
    const auto fast = fast_irfft_pow2(spectrum, n);
    const auto reference = irfft(spectrum, n);
    ASSERT_EQ(fast.size(), reference.size());
    double max_abs = 0.0;
    for (const double v : reference) max_abs = std::max(max_abs, std::abs(v));
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(fast[i], reference[i], 1e-11 * std::max(1.0, max_abs))
          << "n = " << n << ", i = " << i;
    }
  }
}

TEST(FastFftTest, PlanCacheBookkeepingAndBadSizes) {
  fast_fft_plan_cache_clear();
  ASSERT_EQ(fast_fft_plan_cache_size(), 0u);
  std::vector<std::complex<double>> spectrum(9, 0.0);
  (void)fast_irfft_pow2(spectrum, 16);
  EXPECT_EQ(fast_fft_plan_cache_size(), 1u);
  (void)fast_irfft_pow2(spectrum, 16);
  EXPECT_EQ(fast_fft_plan_cache_size(), 1u);

  EXPECT_THROW((void)fast_irfft_pow2(spectrum, 12), InvalidArgument);  // not pow2
  EXPECT_THROW((void)fast_irfft_pow2(spectrum, 0), InvalidArgument);
  EXPECT_THROW((void)fast_irfft_pow2(spectrum, 32), InvalidArgument);  // wrong count
  fast_fft_plan_cache_clear();
  EXPECT_EQ(fast_fft_plan_cache_size(), 0u);
}

// ---------------------------------------------------------------------------
// Plan-text surface and name-based backend resolution.

TEST(PlanTextTest, RoundTripsSemanticFieldsAndFingerprint) {
  engine::GenerationPlan plan;
  plan.num_sources = 12;
  plan.frames_per_source = 4096;
  plan.seed = 77;
  plan.threads = 3;
  plan.params.hurst = 0.7321;
  plan.params.marginal.mu_gamma = 27791.25;
  plan.params.marginal.sigma_gamma = 6254.5;
  plan.params.marginal.tail_slope = 11.875;
  plan.variant = ModelVariant::kIidGammaPareto;
  plan.generator = "paxson";

  const auto parsed = engine::parse_plan_text(engine::format_plan_text(plan));
  EXPECT_EQ(parsed.num_sources, plan.num_sources);
  EXPECT_EQ(parsed.frames_per_source, plan.frames_per_source);
  EXPECT_EQ(parsed.seed, plan.seed);
  EXPECT_EQ(parsed.threads, plan.threads);
  EXPECT_DOUBLE_EQ(parsed.params.hurst, plan.params.hurst);
  EXPECT_DOUBLE_EQ(parsed.params.marginal.mu_gamma, plan.params.marginal.mu_gamma);
  EXPECT_DOUBLE_EQ(parsed.params.marginal.sigma_gamma, plan.params.marginal.sigma_gamma);
  EXPECT_DOUBLE_EQ(parsed.params.marginal.tail_slope, plan.params.marginal.tail_slope);
  EXPECT_EQ(parsed.variant, plan.variant);
  EXPECT_EQ(parsed.resolved_backend(), GeneratorBackend::kPaxson);
  EXPECT_EQ(run::plan_fingerprint(parsed, 1.0 / 24.0, "bytes"),
            run::plan_fingerprint(plan, 1.0 / 24.0, "bytes"));
}

TEST(PlanTextTest, GeneratorNameTakesPrecedenceOverEnum) {
  engine::GenerationPlan plan;
  plan.backend = GeneratorBackend::kHosking;
  EXPECT_EQ(plan.resolved_backend(), GeneratorBackend::kHosking);
  plan.generator = "paxson";
  EXPECT_EQ(plan.resolved_backend(), GeneratorBackend::kPaxson);
  plan.generator = "nonsense";
  EXPECT_THROW((void)plan.resolved_backend(), InvalidArgument);
}

TEST(PlanTextTest, FingerprintIdenticalForNameAndEnumSelection) {
  engine::GenerationPlan by_enum;
  by_enum.num_sources = 2;
  by_enum.frames_per_source = 1024;
  by_enum.backend = GeneratorBackend::kAggregatedOnOff;
  engine::GenerationPlan by_name = by_enum;
  by_name.backend = GeneratorBackend::kDaviesHarte;  // overridden by the name
  by_name.generator = "onoff";
  EXPECT_EQ(run::plan_fingerprint(by_enum, 1.0, "b"),
            run::plan_fingerprint(by_name, 1.0, "b"));
}

TEST(PlanTextTest, ParsesCommentsWhitespaceAndDefaults) {
  const auto plan = engine::parse_plan_text(
      "# a comment\n"
      "\n"
      "  sources =  3 \r\n"
      "generator=davies-harte\n"
      "hurst\t=\t0.6\n");
  EXPECT_EQ(plan.num_sources, 3u);
  EXPECT_DOUBLE_EQ(plan.params.hurst, 0.6);
  EXPECT_EQ(plan.resolved_backend(), GeneratorBackend::kDaviesHarte);
  EXPECT_EQ(plan.seed, 0u);  // untouched default
}

TEST(PlanTextTest, RejectsMalformedInput) {
  const char* bad[] = {
      "frames",                  // no '='
      "=3",                      // empty key
      "sources=",                // empty value
      "sources=0",               // domain
      "frames=0",                // domain
      "sources=3x",              // trailing garbage
      "hurst=1.5",               // outside (0, 1)
      "hurst=0",                 // boundary
      "hurst=nope",              // not a number
      "seed=-1",                 // negative for unsigned
      "generator=fourier",       // unknown registry name
      "variant=fancy",           // unknown variant
      "bogus=1",                 // unknown key
      "seed=1\nseed=2",          // duplicate key
      "mu_gamma=inf",            // non-finite
  };
  for (const char* text : bad) {
    EXPECT_THROW((void)engine::parse_plan_text(text), InvalidArgument) << text;
  }
}

}  // namespace
}  // namespace vbr::model
