// Unit tests for aggregation, moving averages, and frame <-> slice
// expansion.
#include "vbr/trace/aggregate.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "vbr/common/error.hpp"
#include "vbr/common/math_util.hpp"

namespace vbr::trace {
namespace {

TEST(AggregateTest, MeanAggregationAdjustsDt) {
  TimeSeries ts({1, 2, 3, 4, 5, 6}, 0.5, "bytes");
  const auto agg = aggregate_mean(ts, 3);
  ASSERT_EQ(agg.size(), 2u);
  EXPECT_DOUBLE_EQ(agg[0], 2.0);
  EXPECT_DOUBLE_EQ(agg[1], 5.0);
  EXPECT_DOUBLE_EQ(agg.dt_seconds(), 1.5);
}

TEST(AggregateTest, SumAggregationPreservesTotal) {
  TimeSeries ts({1, 2, 3, 4}, 1.0);
  const auto agg = aggregate_sum(ts, 2);
  EXPECT_DOUBLE_EQ(agg[0] + agg[1], 10.0);
}

TEST(MovingAverageTest, ConstantSeriesUnchanged) {
  std::vector<double> xs(100, 7.0);
  const auto ma = moving_average(xs, 11);
  for (double v : ma) EXPECT_DOUBLE_EQ(v, 7.0);
}

TEST(MovingAverageTest, OutputLengthMatchesInput) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_EQ(moving_average(xs, 3).size(), xs.size());
  EXPECT_EQ(moving_average(xs, 1000).size(), xs.size());
}

TEST(MovingAverageTest, InteriorWindowIsExactMean) {
  std::vector<double> xs{1, 2, 3, 4, 5, 6, 7};
  const auto ma = moving_average(xs, 3);
  // Centered window of 3 at index 3: mean(3,4,5) = 4.
  EXPECT_DOUBLE_EQ(ma[3], 4.0);
  // Edge windows truncate: index 0 averages xs[0..1].
  EXPECT_DOUBLE_EQ(ma[0], 1.5);
}

TEST(MovingAverageTest, SmoothsOscillation) {
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back((i % 2 == 0) ? 0.0 : 10.0);
  const auto ma = moving_average(xs, 50);
  for (std::size_t i = 25; i < 175; ++i) EXPECT_NEAR(ma[i], 5.0, 0.2);
}

TEST(FrameToSlicesTest, UniformSplitWithZeroJitter) {
  const auto slices = frame_to_slices(3000.0, 30, 0.0, 5);
  ASSERT_EQ(slices.size(), 30u);
  for (double s : slices) EXPECT_DOUBLE_EQ(s, 100.0);
}

TEST(FrameToSlicesTest, JitteredSplitConservesFrameTotal) {
  for (std::uint64_t frame = 0; frame < 20; ++frame) {
    const auto slices = frame_to_slices(27791.0, 30, 0.36, frame);
    EXPECT_NEAR(kahan_total(slices), 27791.0, 1e-9);
    for (double s : slices) EXPECT_GT(s, 0.0);
  }
}

TEST(FrameToSlicesTest, DeterministicPerFrameIndex) {
  const auto a = frame_to_slices(1000.0, 10, 0.3, 77);
  const auto b = frame_to_slices(1000.0, 10, 0.3, 77);
  EXPECT_EQ(a, b);
  const auto c = frame_to_slices(1000.0, 10, 0.3, 78);
  EXPECT_NE(a, c);
}

TEST(ExpandToSlicesTest, GeometryAndConservation) {
  TimeSeries frames({3000.0, 6000.0}, 1.0 / 24.0, "bytes/frame");
  const auto slices = expand_to_slices(frames, 30, 0.36);
  ASSERT_EQ(slices.size(), 60u);
  EXPECT_NEAR(slices.dt_seconds(), (1.0 / 24.0) / 30.0, 1e-15);
  double first_frame = 0.0;
  for (std::size_t i = 0; i < 30; ++i) first_frame += slices[i];
  EXPECT_NEAR(first_frame, 3000.0, 1e-9);
}

TEST(ExpandToSlicesTest, JitterRaisesCoefficientOfVariation) {
  // The paper's slice-level CoV (0.31) exceeds the frame-level CoV (0.23)
  // because slices within a frame vary. Uniform split keeps CoV equal;
  // jitter raises it.
  std::vector<double> frames(2000);
  for (std::size_t i = 0; i < frames.size(); ++i) {
    frames[i] = 27791.0 + 6254.0 * std::sin(static_cast<double>(i) * 0.37);
  }
  TimeSeries ts(frames, 1.0 / 24.0);
  const auto uniform = expand_to_slices(ts, 30, 0.0);
  const auto jittered = expand_to_slices(ts, 30, 0.36);
  const auto cov = [](const TimeSeries& s) { return s.summary().coefficient_of_variation; };
  // Identical up to the (n-1) variance denominators of the two sample sizes.
  EXPECT_NEAR(cov(uniform), cov(ts), 1e-4);
  EXPECT_GT(cov(jittered), cov(uniform) * 1.15);
}

TEST(AggregateRoundTrip, SliceSumsRecoverFrames) {
  TimeSeries frames({1000.0, 2000.0, 1500.0}, 1.0 / 24.0);
  const auto slices = expand_to_slices(frames, 30, 0.36);
  const auto back = aggregate_sum(slices, 30);
  ASSERT_EQ(back.size(), frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) EXPECT_NEAR(back[i], frames[i], 1e-9);
}

}  // namespace
}  // namespace vbr::trace
