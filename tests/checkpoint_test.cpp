// Tests for the crash-safety foundations: CRC-32/FNV-1a checksums, Rng state
// round-trips, atomic file replacement, the 0-ulp sink save/restore contract
// across every streaming estimator, and the checkpoint envelope (including
// its rejection of truncated, forged and version-skewed files).
#include "vbr/run/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "vbr/common/atomic_file.hpp"
#include "vbr/common/checksum.hpp"
#include "vbr/common/error.hpp"
#include "vbr/common/rng.hpp"
#include "vbr/stream/acf.hpp"
#include "vbr/stream/moments.hpp"
#include "vbr/stream/quantiles.hpp"
#include "vbr/stream/sink.hpp"
#include "vbr/stream/variance_time.hpp"
#include "vbr/stream/welch.hpp"

namespace vbr::run {
namespace {

TEST(ChecksumTest, Crc32MatchesTheZlibReferenceVector) {
  // CRC-32/ISO-HDLC check value: crc32("123456789") == 0xCBF43926. Matching
  // it means Python's zlib.crc32 can forge/craft corpus seeds for the
  // fuzzer, and any zlib-compatible tool can validate a checkpoint.
  const char* data = "123456789";
  EXPECT_EQ(crc32(data, 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0u);
  // Seed chaining: crc32(a ++ b) == crc32(b, crc32(a)).
  EXPECT_EQ(crc32(data + 4, 5, crc32(data, 4)), 0xCBF43926u);
}

TEST(ChecksumTest, Fnv1aIsChunkingInvariant) {
  const std::vector<double> samples{1.5, -0.25, 3.75e9, 0.0};
  Fnv1a whole;
  whole.update(std::span<const double>(samples));
  Fnv1a pieces;
  pieces.update(std::span<const double>(samples).first(1));
  pieces.update(std::span<const double>(samples).subspan(1));
  EXPECT_EQ(whole.digest(), pieces.digest());

  // Resuming from a digest continues the same hash stream.
  Fnv1a prefix;
  prefix.update(std::span<const double>(samples).first(2));
  Fnv1a resumed(prefix.digest());
  resumed.update(std::span<const double>(samples).subspan(2));
  EXPECT_EQ(resumed.digest(), whole.digest());
}

TEST(RngStateTest, StateRoundTripContinuesTheStream) {
  Rng original(20260805);
  for (int i = 0; i < 17; ++i) (void)original();
  Rng copy = Rng::from_state(original.state());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(original(), copy());
}

TEST(RngStateTest, SplitChildrenRoundTripThroughState) {
  Rng master(1994);
  Rng child = master.split();
  Rng restored = Rng::from_state(child.state());
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(child.uniform(), restored.uniform());
    EXPECT_EQ(child.normal(), restored.normal());
  }
}

TEST(AtomicFileTest, ReplacesContentAtomically) {
  const auto path = std::filesystem::temp_directory_path() / "vbr_atomic_test.txt";
  write_file_atomic(path, "first");
  write_file_atomic(path, "second");
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "second");
  EXPECT_FALSE(std::filesystem::exists(path.string() + ".tmp"));
  std::filesystem::remove(path);
}

TEST(AtomicFileTest, FailureThrowsIoErrorAndLeavesNoTemp) {
  const auto missing_dir =
      std::filesystem::temp_directory_path() / "vbr_no_such_dir" / "file.txt";
  EXPECT_THROW(write_file_atomic(missing_dir, "x"), vbr::IoError);
}

// ---------------------------------------------------------------------------
// Sink save/restore: the 0-ulp contract. For every estimator, for several
// random split points: push a prefix, save, restore into a fresh sink, push
// the suffix into both, and require byte-identical serialized states (which
// subsumes every internal accumulator matching to the last bit).
// ---------------------------------------------------------------------------

std::string serialized(const stream::Sink& sink) {
  std::ostringstream out(std::ios::binary);
  sink.save(out);
  return out.str();
}

void check_save_restore_roundtrip(stream::Sink& original, stream::Sink& restored_into,
                                  const std::vector<double>& samples,
                                  std::size_t split) {
  const std::span<const double> all(samples);
  original.push(all.first(split));

  std::istringstream state(serialized(original), std::ios::binary);
  restored_into.restore(state);
  ASSERT_EQ(serialized(restored_into), serialized(original));

  original.push(all.subspan(split));
  restored_into.push(all.subspan(split));
  EXPECT_EQ(serialized(restored_into), serialized(original))
      << original.kind() << " diverged after restore at split " << split;
  EXPECT_EQ(restored_into.count(), original.count());
}

std::vector<double> lognormal_samples(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> samples(n);
  for (auto& x : samples) x = std::exp(2.0 + 0.5 * rng.normal()) * 100.0;
  return samples;
}

TEST(SinkSaveRestoreTest, AllSinksRoundTripAtZeroUlpAcrossRandomPrefixes) {
  Rng split_rng(7);
  const auto samples = lognormal_samples(6000, 42);
  for (int trial = 0; trial < 8; ++trial) {
    const auto split = static_cast<std::size_t>(split_rng.uniform() * 5999.0);

    const auto make_all = [] {
      std::vector<std::unique_ptr<stream::Sink>> sinks;
      sinks.push_back(std::make_unique<stream::StreamingMoments>());
      sinks.push_back(std::make_unique<stream::StreamingQuantiles>());
      sinks.push_back(std::make_unique<stream::StreamingAcf>(32));
      sinks.push_back(std::make_unique<stream::StreamingVarianceTime>());
      sinks.push_back(std::make_unique<stream::StreamingWelchPeriodogram>());
      return sinks;
    };
    auto originals = make_all();
    auto fresh = make_all();
    for (std::size_t s = 0; s < originals.size(); ++s) {
      check_save_restore_roundtrip(*originals[s], *fresh[s], samples, split);
    }
  }
}

TEST(SinkSaveRestoreTest, SinkChainRoundTripsChildrenInOrder) {
  stream::StreamingMoments m1, m2;
  stream::StreamingAcf a1(16), a2(16);
  stream::SinkChain original = stream::chain(m1, a1);
  stream::SinkChain restored = stream::chain(m2, a2);
  const auto samples = lognormal_samples(1000, 3);
  check_save_restore_roundtrip(original, restored, samples, 400);
  EXPECT_EQ(m1.count(), m2.count());
  EXPECT_DOUBLE_EQ(m1.mean(), m2.mean());
}

TEST(SinkSaveRestoreTest, MismatchedKindOrConfigurationIsRejectedUnchanged) {
  stream::StreamingMoments moments;
  moments.push_one(5.0);
  const std::string moments_state = serialized(moments);

  // Wrong kind.
  stream::StreamingAcf acf(8);
  std::istringstream wrong_kind(moments_state, std::ios::binary);
  EXPECT_THROW(acf.restore(wrong_kind), vbr::IoError);

  // Wrong configuration (different max_lag).
  stream::StreamingAcf acf16(16);
  acf16.push_one(1.0);
  stream::StreamingAcf acf8(8);
  std::istringstream wrong_config(serialized(acf16), std::ios::binary);
  EXPECT_THROW(acf8.restore(wrong_config), vbr::IoError);

  // Truncated state.
  std::istringstream truncated(moments_state.substr(0, moments_state.size() / 2),
                               std::ios::binary);
  stream::StreamingMoments fresh;
  EXPECT_THROW(fresh.restore(truncated), vbr::IoError);
}

// ---------------------------------------------------------------------------
// Checkpoint envelope.
// ---------------------------------------------------------------------------

CheckpointData sample_checkpoint() {
  CheckpointData data;
  data.plan_fingerprint = 0xfeedface12345678ULL;
  data.num_sources = 6;
  data.frames_per_source = 1024;
  data.seed = 1994;
  data.next_source = 4;
  data.samples_written = 4 * 1024;
  data.trace_hash_state = 0x12345678abcdef01ULL;
  data.bytes = 1.25e9;
  data.transient_retries = 3;
  engine::SourceFailure failure;
  failure.source_index = 1;
  failure.attempts = 3;
  failure.error = "transient fault persisted across 3 attempts: disk full";
  data.failures.push_back(failure);
  Rng master(1994);
  for (int i = 0; i < 2; ++i) data.stream_states.push_back(master.split().state());
  data.has_sink = true;
  data.sink_state = "pretend sink bytes";
  return data;
}

TEST(CheckpointTest, EncodeParseRoundTrip) {
  const CheckpointData data = sample_checkpoint();
  const std::string bytes = encode_checkpoint(data);
  std::istringstream in(bytes, std::ios::binary);
  const CheckpointData parsed = parse_checkpoint(in, "test");

  EXPECT_EQ(parsed.plan_fingerprint, data.plan_fingerprint);
  EXPECT_EQ(parsed.num_sources, data.num_sources);
  EXPECT_EQ(parsed.frames_per_source, data.frames_per_source);
  EXPECT_EQ(parsed.seed, data.seed);
  EXPECT_EQ(parsed.next_source, data.next_source);
  EXPECT_EQ(parsed.samples_written, data.samples_written);
  EXPECT_EQ(parsed.trace_hash_state, data.trace_hash_state);
  EXPECT_DOUBLE_EQ(parsed.bytes, data.bytes);
  EXPECT_EQ(parsed.transient_retries, data.transient_retries);
  ASSERT_EQ(parsed.failures.size(), 1u);
  EXPECT_EQ(parsed.failures[0].source_index, 1u);
  EXPECT_EQ(parsed.failures[0].attempts, 3u);
  EXPECT_EQ(parsed.failures[0].error, data.failures[0].error);
  EXPECT_EQ(parsed.stream_states, data.stream_states);
  EXPECT_TRUE(parsed.has_sink);
  EXPECT_EQ(parsed.sink_state, data.sink_state);
}

TEST(CheckpointTest, SaveLoadThroughTheFilesystem) {
  const auto path = std::filesystem::temp_directory_path() / "vbr_ckpt_test.ckpt";
  const CheckpointData data = sample_checkpoint();
  save_checkpoint(path, data);
  const CheckpointData loaded = load_checkpoint(path);
  EXPECT_EQ(loaded.trace_hash_state, data.trace_hash_state);
  EXPECT_EQ(loaded.stream_states, data.stream_states);
  std::filesystem::remove(path);
}

TEST(CheckpointTest, EveryTruncationIsRejected) {
  const std::string bytes = encode_checkpoint(sample_checkpoint());
  // Every strict prefix must throw IoError — never crash, never return
  // partial state.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::istringstream in(bytes.substr(0, len), std::ios::binary);
    EXPECT_THROW(parse_checkpoint(in, "trunc"), vbr::IoError) << "length " << len;
  }
}

TEST(CheckpointTest, SingleBitFlipsAreRejectedByTheCrc) {
  const std::string bytes = encode_checkpoint(sample_checkpoint());
  // Flip one bit in every byte of the payload region (after the 24-byte
  // envelope header): the CRC must catch each one.
  for (std::size_t pos = 24; pos < bytes.size(); pos += 7) {
    std::string corrupt = bytes;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x10);
    std::istringstream in(corrupt, std::ios::binary);
    EXPECT_THROW(parse_checkpoint(in, "flip"), vbr::IoError) << "byte " << pos;
  }
}

TEST(CheckpointTest, BadMagicAndVersionSkewAreRejected) {
  std::string bytes = encode_checkpoint(sample_checkpoint());
  {
    std::string bad = bytes;
    bad[0] = 'X';
    std::istringstream in(bad, std::ios::binary);
    EXPECT_THROW(parse_checkpoint(in, "magic"), vbr::IoError);
  }
  {
    // Version field is the u32 right after the 8 magic bytes.
    std::string skew = bytes;
    skew[8] = 2;
    std::istringstream in(skew, std::ios::binary);
    EXPECT_THROW(parse_checkpoint(in, "version"), vbr::IoError);
  }
}

TEST(CheckpointTest, ForgedCountsAreRejectedAfterReencoding) {
  // Forging fields and re-sealing with a valid CRC must still fail the
  // field-invariant checks — the CRC is integrity, not authority.
  {
    CheckpointData forged = sample_checkpoint();
    forged.next_source = forged.num_sources + 5;  // progress beyond the plan
    std::istringstream in(encode_checkpoint(forged), std::ios::binary);
    EXPECT_THROW(parse_checkpoint(in, "forged-next"), vbr::IoError);
  }
  {
    CheckpointData forged = sample_checkpoint();
    forged.samples_written += 1;  // disagrees with next_source * frames
    std::istringstream in(encode_checkpoint(forged), std::ios::binary);
    EXPECT_THROW(parse_checkpoint(in, "forged-samples"), vbr::IoError);
  }
  {
    CheckpointData forged = sample_checkpoint();
    forged.stream_states.pop_back();  // count disagrees with progress
    std::istringstream in(encode_checkpoint(forged), std::ios::binary);
    EXPECT_THROW(parse_checkpoint(in, "forged-streams"), vbr::IoError);
  }
  {
    CheckpointData forged = sample_checkpoint();
    forged.failures.resize(40, forged.failures[0]);  // more failures than sources
    std::istringstream in(encode_checkpoint(forged), std::ios::binary);
    EXPECT_THROW(parse_checkpoint(in, "forged-failures"), vbr::IoError);
  }
}

TEST(CheckpointTest, TrailingBytesAreRejected) {
  CheckpointData data = sample_checkpoint();
  // Append a byte inside the payload and re-seal: size/CRC are consistent
  // but the parser must notice unconsumed payload.
  data.sink_state.clear();
  data.has_sink = false;
  std::string bytes = encode_checkpoint(data);
  // Splice one extra payload byte: rebuild size and CRC by hand.
  std::string payload = bytes.substr(24);
  payload.push_back('\0');
  const std::uint64_t size = payload.size();
  const std::uint32_t crc = crc32(payload.data(), payload.size());
  std::string forged = bytes.substr(0, 12);
  forged.append(reinterpret_cast<const char*>(&size), sizeof size);
  forged.append(reinterpret_cast<const char*>(&crc), sizeof crc);
  forged += payload;
  std::istringstream in(forged, std::ios::binary);
  EXPECT_THROW(parse_checkpoint(in, "trailing"), vbr::IoError);
}

TEST(CheckpointTest, PlanFingerprintSeparatesPlans) {
  engine::GenerationPlan plan;
  plan.num_sources = 4;
  plan.frames_per_source = 1024;
  plan.seed = 1994;
  const auto base = plan_fingerprint(plan, 1.0 / 24.0, "bytes/frame");
  EXPECT_EQ(base, plan_fingerprint(plan, 1.0 / 24.0, "bytes/frame"));

  auto changed = plan;
  changed.seed = 1995;
  EXPECT_NE(base, plan_fingerprint(changed, 1.0 / 24.0, "bytes/frame"));
  changed = plan;
  changed.params.hurst = 0.9;
  EXPECT_NE(base, plan_fingerprint(changed, 1.0 / 24.0, "bytes/frame"));
  changed = plan;
  changed.threads = 8;  // threads must NOT affect the fingerprint
  EXPECT_EQ(base, plan_fingerprint(changed, 1.0 / 24.0, "bytes/frame"));
  EXPECT_NE(base, plan_fingerprint(plan, 1.0, "bytes/frame"));
}

}  // namespace
}  // namespace vbr::run
