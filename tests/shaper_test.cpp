// Tests for the CBR smoother and peak clipper.
#include "vbr/net/shaper.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "vbr/common/error.hpp"
#include "vbr/common/math_util.hpp"
#include "vbr/common/rng.hpp"

namespace vbr::net {
namespace {

TEST(CbrSmootherTest, NoBacklogAboveArrivalRate) {
  const std::vector<double> frames(100, 1000.0);  // exactly 1000 B per 1 s
  const auto result = smooth_to_cbr(frames, 1.0, 1000.0);
  EXPECT_DOUBLE_EQ(result.max_backlog_bytes, 0.0);
  EXPECT_DOUBLE_EQ(result.max_delay_seconds, 0.0);
  EXPECT_NEAR(result.utilization, 1.0, 1e-12);
}

TEST(CbrSmootherTest, BacklogAccumulatesDuringBursts) {
  // 3 intervals at 2000 B then 3 at 0 B with a 1000 B/s drain.
  const std::vector<double> frames{2000, 2000, 2000, 0, 0, 0};
  const auto result = smooth_to_cbr(frames, 1.0, 1000.0);
  EXPECT_DOUBLE_EQ(result.max_backlog_bytes, 3000.0);
  EXPECT_DOUBLE_EQ(result.max_delay_seconds, 3.0);
  EXPECT_NEAR(result.utilization, 1.0, 1e-12);
}

TEST(CbrSmootherTest, HigherRateMeansLessDelay) {
  Rng rng(1);
  std::vector<double> frames(5000);
  for (auto& v : frames) v = std::max(0.0, rng.normal(27791.0, 6254.0));
  const double dt = 1.0 / 24.0;
  double prev_delay = 1e18;
  for (double factor : {1.05, 1.2, 1.5, 2.0}) {
    const auto r = smooth_to_cbr(frames, dt, sample_mean(frames) / dt * factor);
    EXPECT_LE(r.max_delay_seconds, prev_delay + 1e-12);
    prev_delay = r.max_delay_seconds;
  }
}

TEST(CbrSmootherTest, MinRateForDelayIsTight) {
  Rng rng(2);
  std::vector<double> frames(5000);
  for (auto& v : frames) v = std::max(0.0, rng.normal(27791.0, 6254.0));
  const double dt = 1.0 / 24.0;
  const double budget = 0.25;  // 250 ms
  const double rate = min_cbr_rate_for_delay(frames, dt, budget);
  EXPECT_LE(smooth_to_cbr(frames, dt, rate).max_delay_seconds, budget);
  // 1% less rate must violate the budget (tightness).
  EXPECT_GT(smooth_to_cbr(frames, dt, rate * 0.99).max_delay_seconds, budget);
  // Sandwiched between mean and peak rates.
  EXPECT_GT(rate, sample_mean(frames) / dt);
  EXPECT_LE(rate, *std::max_element(frames.begin(), frames.end()) / dt + 1.0);
}

TEST(ClipPeaksTest, NoOpWhenLevelAbovePeak) {
  const std::vector<double> frames{100, 200, 300};
  const auto result = clip_peaks(frames, 10.0);
  EXPECT_EQ(result.clipped, frames);
  EXPECT_DOUBLE_EQ(result.frames_affected, 0.0);
  EXPECT_DOUBLE_EQ(result.traffic_removed, 0.0);
}

TEST(ClipPeaksTest, ClipsAndAccountsExactly) {
  const std::vector<double> frames{100, 100, 100, 500};  // mean 200
  const auto result = clip_peaks(frames, 2.0);           // clip at 400
  EXPECT_DOUBLE_EQ(result.clip_level_bytes, 400.0);
  EXPECT_DOUBLE_EQ(result.clipped[3], 400.0);
  EXPECT_DOUBLE_EQ(result.frames_affected, 0.25);
  EXPECT_DOUBLE_EQ(result.traffic_removed, 100.0 / 800.0);
  EXPECT_LT(result.peak_to_mean_after, result.peak_to_mean_before);
}

TEST(ClipPeaksTest, ReducesBurstinessOnHeavyTailedTrace) {
  Rng rng(3);
  std::vector<double> frames(20000);
  for (auto& v : frames) v = rng.pareto(20000.0, 8.0);
  const auto result = clip_peaks(frames, 1.8);
  EXPECT_GT(result.frames_affected, 0.0);
  EXPECT_LT(result.traffic_removed, 0.05);  // clipping touches little traffic...
  EXPECT_LE(result.peak_to_mean_after, 1.85);  // ...but caps burstiness hard
}

TEST(ShaperTest, Preconditions) {
  const std::vector<double> frames{1.0, 2.0};
  EXPECT_THROW(smooth_to_cbr(frames, 0.0, 100.0), vbr::InvalidArgument);
  EXPECT_THROW(smooth_to_cbr(frames, 1.0, 0.0), vbr::InvalidArgument);
  EXPECT_THROW(clip_peaks(frames, 1.0), vbr::InvalidArgument);
  EXPECT_THROW(min_cbr_rate_for_delay(frames, 1.0, 0.0), vbr::InvalidArgument);
}

}  // namespace
}  // namespace vbr::net
