// Tests for the Eq. (13) marginal distortion Y = F^{-1}(Phi(X)) — both the
// exact map and the paper's 10,000-point tabulated implementation — and the
// key invariance: the transform preserves H.
#include "vbr/model/marginal_transform.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "vbr/common/math_util.hpp"
#include "vbr/common/rng.hpp"
#include "vbr/model/davies_harte.hpp"
#include "vbr/stats/whittle.hpp"

namespace vbr::model {
namespace {

stats::GammaParetoParams paper_like_params() {
  stats::GammaParetoParams p;
  p.mu_gamma = 27791.0;
  p.sigma_gamma = 6254.0;
  p.tail_slope = 12.0;
  return p;
}

TEST(TransformTest, GaussianInputYieldsTargetMoments) {
  Rng rng(3);
  std::vector<double> gaussian(200000);
  for (auto& v : gaussian) v = rng.normal();
  const stats::GammaParetoDistribution target(paper_like_params());
  const auto y = transform_marginal(gaussian, target);
  EXPECT_NEAR(sample_mean(y), target.mean(), 0.01 * target.mean());
  EXPECT_NEAR(std::sqrt(sample_variance(y)), std::sqrt(target.variance()),
              0.05 * std::sqrt(target.variance()));
  for (double v : y) ASSERT_GT(v, 0.0);
}

TEST(TransformTest, MonotoneInInput) {
  const stats::GammaParetoDistribution target(paper_like_params());
  std::vector<double> zs{-3.0, -1.0, 0.0, 1.0, 3.0, 5.0};
  const auto ys = transform_marginal(zs, target);
  for (std::size_t i = 1; i < ys.size(); ++i) EXPECT_GT(ys[i], ys[i - 1]);
}

TEST(TransformTest, RankOrderPreserved) {
  Rng rng(5);
  std::vector<double> gaussian(1000);
  for (auto& v : gaussian) v = rng.normal();
  const stats::GammaParetoDistribution target(paper_like_params());
  const auto y = transform_marginal(gaussian, target);
  // argsort equality.
  std::vector<std::size_t> gi(gaussian.size());
  std::vector<std::size_t> yi(y.size());
  for (std::size_t i = 0; i < gi.size(); ++i) gi[i] = yi[i] = i;
  std::sort(gi.begin(), gi.end(), [&](auto a, auto b) { return gaussian[a] < gaussian[b]; });
  std::sort(yi.begin(), yi.end(), [&](auto a, auto b) { return y[a] < y[b]; });
  EXPECT_EQ(gi, yi);
}

TEST(TransformTest, NonUnitGaussianParametersHandled) {
  Rng rng(7);
  std::vector<double> gaussian(100000);
  for (auto& v : gaussian) v = rng.normal(5.0, 2.0);
  const stats::GammaParetoDistribution target(paper_like_params());
  const auto y = transform_marginal(gaussian, target, 5.0, 2.0);
  EXPECT_NEAR(sample_mean(y), target.mean(), 0.01 * target.mean());
}

TEST(TabulatedMapTest, AgreesWithExactMapInBody) {
  const stats::GammaParetoDistribution target(paper_like_params());
  const TabulatedMarginalMap map(target, 10000);
  for (double z : {-4.0, -2.0, -0.5, 0.0, 0.5, 2.0, 4.0}) {
    const std::vector<double> one{z};
    const double exact = transform_marginal(one, target)[0];
    EXPECT_NEAR(map(z), exact, 1e-3 * exact) << "z=" << z;
  }
}

TEST(TabulatedMapTest, ExtremeTailFallsBackToExactQuantile) {
  const stats::GammaParetoDistribution target(paper_like_params());
  const TabulatedMarginalMap map(target, 1000);
  // Beyond the table's +-8 sigma the map must still be exact, not clipped.
  const std::vector<double> one{9.0};
  const double exact = transform_marginal(one, target)[0];
  EXPECT_NEAR(map(9.0), exact, 1e-9 * exact);
  EXPECT_GT(map(9.0), map(7.9));
}

TEST(TabulatedMapTest, TailClippingQuantified) {
  // Section 5.2 notes the tabulated map can under-produce the extreme
  // Pareto tail. Verify the interpolation error stays small at the
  // paper's table resolution.
  const stats::GammaParetoDistribution target(paper_like_params());
  const TabulatedMarginalMap coarse(target, 10000);
  Rng rng(11);
  double worst_rel = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const double z = rng.uniform(-5.0, 5.0);
    const std::vector<double> one{z};
    const double exact = transform_marginal(one, target)[0];
    worst_rel = std::max(worst_rel, std::abs(coarse(z) - exact) / exact);
  }
  EXPECT_LT(worst_rel, 0.01);
}

TEST(TransformTest, PreservesHurstParameter) {
  // "The measured value of H is not affected by the distortion of the
  // marginal distribution" (Section 4.2).
  Rng rng(13);
  DaviesHarteOptions opt;
  opt.hurst = 0.8;
  const auto gaussian = davies_harte(65536, opt, rng);
  const double h_before =
      stats::whittle_estimate(gaussian, stats::SpectralModel::kFgn).hurst;

  const stats::GammaParetoDistribution target(paper_like_params());
  const TabulatedMarginalMap map(target);
  auto y = map.apply(gaussian);
  // Whittle assumes Gaussianity: log-transform the skewed marginals first
  // (exactly the paper's procedure).
  for (auto& v : y) v = std::log(v);
  const double h_after = stats::whittle_estimate(y, stats::SpectralModel::kFgn).hurst;
  EXPECT_NEAR(h_before, 0.8, 0.05);
  EXPECT_NEAR(h_after, h_before, 0.06);
}

}  // namespace
}  // namespace vbr::model
