// Unit tests for numeric utilities: compensated summation, regression,
// log-spaced grids, percentiles, block aggregation.
#include "vbr/common/math_util.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "vbr/common/error.hpp"

namespace vbr {
namespace {

TEST(KahanSumTest, CompensatesCatastrophicCancellation) {
  KahanSum sum;
  sum.add(1.0);
  for (int i = 0; i < 10000000; ++i) sum.add(1e-16);
  EXPECT_NEAR(sum.value(), 1.0 + 1e-9, 1e-12);
}

TEST(KahanSumTest, TotalOfRange) {
  std::vector<double> xs{1.5, 2.5, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(kahan_total(xs), 10.0);
}

TEST(LinearFitTest, ExactLineRecovered) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y;
  for (double xi : x) y.push_back(2.5 * xi - 1.0);
  const auto fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 2.5, 1e-12);
  EXPECT_NEAR(fit.intercept, -1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit.slope_stderr, 0.0, 1e-9);
}

TEST(LinearFitTest, NoisyLineSlopeWithinError) {
  std::vector<double> x;
  std::vector<double> y;
  // Deterministic "noise" with zero mean.
  for (int i = 0; i < 100; ++i) {
    x.push_back(i);
    y.push_back(0.7 * i + 3.0 + ((i % 2 == 0) ? 0.5 : -0.5));
  }
  const auto fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 0.7, 0.01);
  EXPECT_GT(fit.r_squared, 0.99);
  EXPECT_GT(fit.slope_stderr, 0.0);
}

TEST(LinearFitTest, Preconditions) {
  std::vector<double> two{1.0, 2.0};
  std::vector<double> one{1.0};
  EXPECT_THROW(linear_fit(two, one), InvalidArgument);
  std::vector<double> constant{1.0, 1.0, 1.0};
  std::vector<double> y{1.0, 2.0, 3.0};
  EXPECT_THROW(linear_fit(constant, y), InvalidArgument);
}

TEST(LogSpacedTest, EndpointsAndMonotonicity) {
  const auto grid = log_spaced(1.0, 1000.0, 7);
  ASSERT_EQ(grid.size(), 7u);
  EXPECT_NEAR(grid.front(), 1.0, 1e-12);
  EXPECT_NEAR(grid.back(), 1000.0, 1e-9);
  for (std::size_t i = 1; i < grid.size(); ++i) EXPECT_GT(grid[i], grid[i - 1]);
  // Ratios constant in log space.
  EXPECT_NEAR(grid[1] / grid[0], grid[2] / grid[1], 1e-9);
}

TEST(LogSpacedSizesTest, DeduplicatesAfterRounding) {
  const auto sizes = log_spaced_sizes(1, 10, 50);
  for (std::size_t i = 1; i < sizes.size(); ++i) EXPECT_GT(sizes[i], sizes[i - 1]);
  EXPECT_EQ(sizes.front(), 1u);
  EXPECT_EQ(sizes.back(), 10u);
  EXPECT_LE(sizes.size(), 10u);
}

TEST(PercentileTest, KnownQuartiles) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.125), 1.5);  // interpolation
}

TEST(BlockMeansTest, ExactBlocksAndTruncation) {
  std::vector<double> xs{1, 2, 3, 4, 5, 6, 7};
  const auto means = block_means(xs, 2);
  ASSERT_EQ(means.size(), 3u);  // trailing 7 discarded
  EXPECT_DOUBLE_EQ(means[0], 1.5);
  EXPECT_DOUBLE_EQ(means[1], 3.5);
  EXPECT_DOUBLE_EQ(means[2], 5.5);
}

TEST(BlockSumsTest, SumsAreMeansTimesM) {
  std::vector<double> xs{1, 2, 3, 4};
  const auto sums = block_sums(xs, 2);
  ASSERT_EQ(sums.size(), 2u);
  EXPECT_DOUBLE_EQ(sums[0], 3.0);
  EXPECT_DOUBLE_EQ(sums[1], 7.0);
}

TEST(BlockMeansTest, IdentityAtMEqualsOne) {
  std::vector<double> xs{3.0, 1.0, 4.0};
  EXPECT_EQ(block_means(xs, 1), xs);
}

TEST(SampleMomentsTest, MeanAndVariance) {
  std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(sample_mean(xs), 5.0);
  EXPECT_NEAR(sample_variance(xs), 32.0 / 7.0, 1e-12);
}

}  // namespace
}  // namespace vbr
