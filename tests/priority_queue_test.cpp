// Tests for the layered-video space-priority queue and the layer splitter.
#include "vbr/net/priority_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "vbr/common/error.hpp"
#include "vbr/common/rng.hpp"
#include "vbr/net/fluid_queue.hpp"

namespace vbr::net {
namespace {

TEST(SplitLayersTest, CapsBaseLayer) {
  const std::vector<double> frames{100.0, 500.0, 300.0};
  const auto layers = split_layers(frames, 250.0);
  ASSERT_EQ(layers.high.size(), 3u);
  EXPECT_DOUBLE_EQ(layers.high[0], 100.0);
  EXPECT_DOUBLE_EQ(layers.low[0], 0.0);
  EXPECT_DOUBLE_EQ(layers.high[1], 250.0);
  EXPECT_DOUBLE_EQ(layers.low[1], 250.0);
  EXPECT_DOUBLE_EQ(layers.high[2], 250.0);
  EXPECT_DOUBLE_EQ(layers.low[2], 50.0);
}

TEST(SplitLayersTest, ConservesBytes) {
  const std::vector<double> frames{123.0, 456.0, 789.0};
  const auto layers = split_layers(frames, 300.0);
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_DOUBLE_EQ(layers.high[i] + layers.low[i], frames[i]);
  }
}

TEST(LayeredQueueTest, NoLossBelowCapacity) {
  const std::vector<double> high(10, 400.0);
  const std::vector<double> low(10, 400.0);
  const auto result = run_layered_queue(high, low, 1.0, 1000.0, 500.0);
  EXPECT_DOUBLE_EQ(result.high_lost, 0.0);
  EXPECT_DOUBLE_EQ(result.low_lost, 0.0);
  EXPECT_DOUBLE_EQ(result.total_loss_rate(), 0.0);
}

TEST(LayeredQueueTest, EnhancementLayerAbsorbsLossFirst) {
  // 1500 B/interval into a 1000 B/s server with no buffer: 500 B excess,
  // all of which should come from the low-priority 600 B.
  const std::vector<double> high(5, 900.0);
  const std::vector<double> low(5, 600.0);
  const auto result = run_layered_queue(high, low, 1.0, 1000.0, 0.0);
  EXPECT_DOUBLE_EQ(result.high_lost, 0.0);
  EXPECT_NEAR(result.low_lost, 5 * 500.0, 1e-9);
  EXPECT_NEAR(result.low_loss_rate(), 500.0 / 600.0, 1e-12);
}

TEST(LayeredQueueTest, BaseLayerLosesOnlyAfterEnhancementExhausted) {
  // Excess 800 B/interval but only 600 B of low priority available:
  // 200 B/interval must come from the base layer.
  const std::vector<double> high(4, 1200.0);
  const std::vector<double> low(4, 600.0);
  const auto result = run_layered_queue(high, low, 1.0, 1000.0, 0.0);
  EXPECT_NEAR(result.low_lost, 4 * 600.0, 1e-9);
  EXPECT_NEAR(result.high_lost, 4 * 200.0, 1e-9);
}

TEST(LayeredQueueTest, MatchesSingleClassQueueInAggregate) {
  // Total losses must equal an unlayered fluid queue fed the combined
  // traffic (priority only redistributes them). Interval-level fluid
  // accounting: compare against FluidQueue on the summed trace.
  std::vector<double> high;
  std::vector<double> low;
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    high.push_back(rng.uniform(0.0, 1500.0));
    low.push_back(rng.uniform(0.0, 800.0));
  }
  std::vector<double> combined(high.size());
  for (std::size_t i = 0; i < high.size(); ++i) combined[i] = high[i] + low[i];

  const double dt = 0.04;
  const double capacity = 30000.0;
  const double buffer = 600.0;
  const auto layered = run_layered_queue(high, low, dt, capacity, buffer);
  const auto plain = run_fluid_queue(combined, dt, capacity, buffer);
  EXPECT_NEAR(layered.high_lost + layered.low_lost, plain.lost_bytes,
              0.02 * plain.lost_bytes + 50.0);
  // And base-layer loss is far below the aggregate loss rate.
  EXPECT_LT(layered.high_loss_rate(), layered.total_loss_rate());
}

TEST(LayeredQueueTest, RecordedIntervalsSumToTotals) {
  const std::vector<double> high{500.0, 2000.0, 100.0};
  const std::vector<double> low{500.0, 1000.0, 50.0};
  const auto result = run_layered_queue(high, low, 1.0, 1000.0, 200.0, true);
  ASSERT_EQ(result.intervals.size(), 3u);
  double high_lost = 0.0;
  double low_lost = 0.0;
  for (const auto& iv : result.intervals) {
    high_lost += iv.high_lost;
    low_lost += iv.low_lost;
  }
  EXPECT_DOUBLE_EQ(high_lost, result.high_lost);
  EXPECT_DOUBLE_EQ(low_lost, result.low_lost);
}

TEST(LayeredQueueTest, Preconditions) {
  const std::vector<double> a{1.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW(run_layered_queue(a, b, 1.0, 100.0, 0.0), vbr::InvalidArgument);
  EXPECT_THROW(run_layered_queue(a, a, 0.0, 100.0, 0.0), vbr::InvalidArgument);
  EXPECT_THROW(run_layered_queue(a, a, 1.0, 0.0, 0.0), vbr::InvalidArgument);
  EXPECT_THROW(split_layers(a, 0.0), vbr::InvalidArgument);
}

}  // namespace
}  // namespace vbr::net
