// Tests for bufferless admission control built on the Section 4.2
// convolution table.
#include "vbr/net/admission.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "vbr/common/error.hpp"
#include "vbr/common/rng.hpp"
#include "vbr/net/fluid_queue.hpp"
#include "vbr/net/multiplexer.hpp"

namespace vbr::net {
namespace {

stats::GammaParetoDistribution paper_marginal() {
  stats::GammaParetoParams p;
  p.mu_gamma = 27791.0;
  p.sigma_gamma = 6254.0;
  p.tail_slope = 12.0;
  return stats::GammaParetoDistribution(p);
}

constexpr double kDt = 1.0 / 24.0;

TEST(AdmissionTest, LossMonotoneInCapacity) {
  const BufferlessAdmission admission(paper_marginal(), kDt, 4096);
  double prev = 1.0;
  for (double capacity : {5.0e6, 6.0e6, 7.0e6, 9.0e6, 12.0e6}) {
    const double loss = admission.loss_fraction(5, capacity * 5.0);
    EXPECT_LE(loss, prev + 1e-15) << capacity;
    prev = loss;
  }
}

TEST(AdmissionTest, OverloadProbabilityBoundsBehaveSanely) {
  const BufferlessAdmission admission(paper_marginal(), kDt, 4096);
  // At the mean rate, a single source overloads about half the time.
  const double mean_bps = paper_marginal().mean() * 8.0 / kDt;
  const double p = admission.overload_probability(1, mean_bps);
  EXPECT_GT(p, 0.3);
  EXPECT_LT(p, 0.7);
  // Far above the peak region, overload vanishes.
  EXPECT_LT(admission.overload_probability(1, mean_bps * 4.0), 1e-6);
}

TEST(AdmissionTest, RequiredCapacityInvertsLossFraction) {
  const BufferlessAdmission admission(paper_marginal(), kDt, 4096);
  for (double target : {1e-3, 1e-5}) {
    const double c = admission.required_capacity_bps(5, target);
    EXPECT_LE(admission.loss_fraction(5, c), target * 1.001);
    EXPECT_GT(admission.loss_fraction(5, c * 0.97), target);
  }
}

TEST(AdmissionTest, EconomyOfScale) {
  // Per-source capacity at fixed loss decreases with N (the analytic
  // Fig. 15).
  const BufferlessAdmission admission(paper_marginal(), kDt, 4096);
  double prev_per_source = 1e18;
  for (std::size_t n : {1u, 2u, 5u, 10u, 20u}) {
    const double per_source =
        admission.required_capacity_bps(n, 1e-4) / static_cast<double>(n);
    EXPECT_LT(per_source, prev_per_source) << "n=" << n;
    prev_per_source = per_source;
  }
  // And approaches (but stays above) the mean rate.
  const double mean_bps = paper_marginal().mean() * 8.0 / kDt;
  EXPECT_GT(prev_per_source, mean_bps);
  EXPECT_LT(prev_per_source, mean_bps * 1.25);
}

TEST(AdmissionTest, MaxAdmissibleSourcesConsistentWithRequiredCapacity) {
  const BufferlessAdmission admission(paper_marginal(), kDt, 2048);
  const double capacity = admission.required_capacity_bps(8, 1e-4);
  const std::size_t admitted = admission.max_admissible_sources(capacity, 1e-4, 32);
  EXPECT_GE(admitted, 8u);
  EXPECT_LE(admitted, 9u);  // capacity was sized for exactly 8
}

TEST(AdmissionTest, AnalyticLossMatchesBufferlessSimulationOnIidTraffic) {
  // For i.i.d. per-interval traffic and zero buffer, the fluid simulation's
  // loss fraction IS E[(S_N - c)^+]/E[S_N]; the convolution should predict
  // it closely.
  const auto marginal = paper_marginal();
  const BufferlessAdmission admission(marginal, kDt, 4096);
  const std::size_t sources = 5;
  const double capacity_bps = admission.required_capacity_bps(sources, 1e-3);

  Rng rng(9);
  std::vector<double> aggregate(120000, 0.0);
  for (auto& v : aggregate) {
    for (std::size_t s = 0; s < sources; ++s) v += marginal.sample(rng);
  }
  const auto sim =
      run_fluid_queue(aggregate, kDt, capacity_bps / 8.0, /*buffer=*/0.0);
  EXPECT_NEAR(std::log10(std::max(sim.loss_rate(), 1e-12)), std::log10(1e-3), 0.35);
}

TEST(AdmissionTest, Preconditions) {
  const BufferlessAdmission admission(paper_marginal(), kDt, 1024);
  EXPECT_THROW(admission.loss_fraction(0, 1e6), vbr::InvalidArgument);
  EXPECT_THROW(admission.loss_fraction(1, 0.0), vbr::InvalidArgument);
  EXPECT_THROW(admission.required_capacity_bps(1, 0.0), vbr::InvalidArgument);
  EXPECT_THROW(BufferlessAdmission(paper_marginal(), 0.0), vbr::InvalidArgument);
}

}  // namespace
}  // namespace vbr::net
