// Unit tests for the seeded PRNG facade.
#include "vbr/common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "vbr/common/error.hpp"
#include "vbr/common/math_util.hpp"

namespace vbr {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, SplitStreamsAreIndependentAndDeterministic) {
  Rng parent1(7);
  Rng parent2(7);
  Rng child1 = parent1.split();
  Rng child2 = parent2.split();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(child1(), child2());
  // Parent and child produce different streams.
  Rng parent(7);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent() == child()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 2.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 2.0);
  }
  EXPECT_THROW(rng.uniform(1.0, 1.0), InvalidArgument);
}

TEST(RngTest, UniformIndexCoversRangeWithoutBias) {
  Rng rng(11);
  std::vector<int> counts(7, 0);
  const int draws = 70000;
  for (int i = 0; i < draws; ++i) ++counts[rng.uniform_index(7)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), draws / 7.0, 5.0 * std::sqrt(draws / 7.0));
  }
  EXPECT_THROW(rng.uniform_index(0), InvalidArgument);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(13);
  std::vector<double> xs(200000);
  for (auto& x : xs) x = rng.normal();
  EXPECT_NEAR(sample_mean(xs), 0.0, 0.01);
  EXPECT_NEAR(sample_variance(xs), 1.0, 0.02);
}

TEST(RngTest, NormalScaledMoments) {
  Rng rng(17);
  std::vector<double> xs(100000);
  for (auto& x : xs) x = rng.normal(5.0, 2.0);
  EXPECT_NEAR(sample_mean(xs), 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(sample_variance(xs)), 2.0, 0.05);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(19);
  std::vector<double> xs(100000);
  for (auto& x : xs) x = rng.exponential(0.5);
  EXPECT_NEAR(sample_mean(xs), 2.0, 0.05);
  EXPECT_THROW(rng.exponential(0.0), InvalidArgument);
}

TEST(RngTest, ParetoSamplesRespectMinimumAndMean) {
  Rng rng(23);
  const double k = 3.0;
  const double a = 2.5;
  std::vector<double> xs(200000);
  for (auto& x : xs) {
    x = rng.pareto(k, a);
    ASSERT_GE(x, k);
  }
  // E X = a k / (a - 1) = 5.
  EXPECT_NEAR(sample_mean(xs), 5.0, 0.1);
}

TEST(RngTest, GammaMomentsMatch) {
  Rng rng(29);
  const double shape = 4.0;
  const double scale = 1.5;
  std::vector<double> xs(200000);
  for (auto& x : xs) x = rng.gamma(shape, scale);
  EXPECT_NEAR(sample_mean(xs), shape * scale, 0.05);
  EXPECT_NEAR(sample_variance(xs), shape * scale * scale, 0.2);
}

TEST(RngTest, GammaSmallShapeBoost) {
  Rng rng(31);
  const double shape = 0.5;
  const double scale = 2.0;
  std::vector<double> xs(200000);
  for (auto& x : xs) {
    x = rng.gamma(shape, scale);
    ASSERT_GT(x, 0.0);
  }
  EXPECT_NEAR(sample_mean(xs), shape * scale, 0.05);
}

// Parameterized sweep: uniform_index stays unbiased across modulus sizes.
class RngIndexSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngIndexSweep, MeanOfIndicesMatchesHalfRange) {
  const std::uint64_t n = GetParam();
  Rng rng(41 + n);
  const int draws = 50000;
  double sum = 0.0;
  for (int i = 0; i < draws; ++i) sum += static_cast<double>(rng.uniform_index(n));
  const double expected = (static_cast<double>(n) - 1.0) / 2.0;
  const double sd = static_cast<double>(n) / std::sqrt(12.0 * draws);
  EXPECT_NEAR(sum / draws, expected, 6.0 * sd + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Moduli, RngIndexSweep,
                         ::testing::Values(2, 3, 10, 100, 1000, 1u << 20));

}  // namespace
}  // namespace vbr
