// Tests for the calibrated Star Wars surrogate trace: Table 1/2 statistics,
// Fig. 1 events, scene structure, and LRD calibration.
#include "vbr/model/starwars_surrogate.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "vbr/common/math_util.hpp"
#include "vbr/stats/whittle.hpp"
#include "vbr/trace/aggregate.hpp"

namespace vbr::model {
namespace {

// One shared short surrogate keeps the suite fast; the full-length trace is
// exercised in the integration test and in bench/.
const SurrogateTrace& short_surrogate() {
  static const SurrogateTrace trace = [] {
    SurrogateOptions opt;
    opt.frames = 40000;
    return make_starwars_surrogate(opt);
  }();
  return trace;
}

TEST(SurrogateTest, DeterministicGivenSeed) {
  SurrogateOptions opt;
  opt.frames = 2000;
  const auto a = make_starwars_surrogate(opt);
  const auto b = make_starwars_surrogate(opt);
  EXPECT_EQ(a.frames.values(), b.frames.values());
  opt.seed = 2025;
  const auto c = make_starwars_surrogate(opt);
  EXPECT_NE(a.frames.values(), c.frames.values());
}

TEST(SurrogateTest, Table2MeanAndDeviation) {
  const auto& trace = short_surrogate();
  const auto s = trace.frames.summary();
  EXPECT_NEAR(s.mean, 27791.0, 0.03 * 27791.0);
  EXPECT_NEAR(s.stddev, 6254.0, 0.15 * 6254.0);
  EXPECT_NEAR(s.coefficient_of_variation, 0.23, 0.05);
  EXPECT_GT(s.min, 0.0);
}

TEST(SurrogateTest, PeakNearCalibrationTargetAtFullLength) {
  // The tail slope is calibrated so the (1 - 1/n) quantile hits the paper's
  // peak; at the test's shorter n the realized max must sit between the
  // Gamma-only ceiling and a generous multiple of the target.
  const auto& trace = short_surrogate();
  const auto s = trace.frames.summary();
  EXPECT_GT(s.max, 27791.0 + 4.0 * 6254.0);
  EXPECT_LT(s.max, 2.5 * 78459.0);
  EXPECT_GT(s.peak_to_mean, 1.8);  // bursty, as Table 2's 2.82
}

TEST(SurrogateTest, CalibratedTailSlopeHitsTargetQuantile) {
  const double slope = calibrate_tail_slope(27791.0, 6254.0, 78459.0, 171000);
  EXPECT_GT(slope, 4.0);
  EXPECT_LT(slope, 40.0);
  stats::GammaParetoParams p;
  p.mu_gamma = 27791.0;
  p.sigma_gamma = 6254.0;
  p.tail_slope = slope;
  const stats::GammaParetoDistribution d(p);
  EXPECT_NEAR(d.quantile(1.0 - 1.0 / 171000.0), 78459.0, 1.0);
}

TEST(SurrogateTest, ClearlyLongRangeDependent) {
  // At this reduced length the point estimate of H has wide realization
  // variance (the Fig. 9 lesson); assert clear LRD rather than a tight
  // value. The full-length Table 3 reproduction lives in bench_table3.
  const auto& trace = short_surrogate();
  auto logs = trace.frames.values();
  for (auto& v : logs) v = std::log(v);
  const auto agg = block_means(logs, 128);
  const double h = stats::whittle_estimate(agg, stats::SpectralModel::kFgn).hurst;
  EXPECT_GT(h, 0.65);  // far from SRD's 0.5
  EXPECT_LE(h, 0.99);
}

TEST(SurrogateTest, NamedEventsPresentAndOrdered) {
  const auto& trace = short_surrogate();
  ASSERT_EQ(trace.events.size(), 5u);
  EXPECT_EQ(trace.events.front().name, "opening text");
  EXPECT_EQ(trace.events.back().name, "death star explosion");
  for (std::size_t i = 1; i < trace.events.size(); ++i) {
    EXPECT_GT(trace.events[i].start_frame, trace.events[i - 1].start_frame);
  }
  // Opening text: 42 s at 24 fps.
  EXPECT_EQ(trace.events.front().length, static_cast<std::size_t>(42 * 24));
}

TEST(SurrogateTest, EventsElevateLocalBandwidth) {
  const auto& trace = short_surrogate();
  const auto& values = trace.frames.values();
  for (const auto& event : trace.events) {
    if (event.name == "opening text") continue;  // wide, moderate lift
    double peak = 0.0;
    for (std::size_t f = event.start_frame; f < event.start_frame + event.length; ++f) {
      peak = std::max(peak, values[f]);
    }
    EXPECT_GT(peak, 2.0 * 27791.0) << event.name;
  }
}

TEST(SurrogateTest, ScenesCoverTraceWhenEnabled) {
  const auto& trace = short_surrogate();
  ASSERT_FALSE(trace.scenes.empty());
  std::size_t covered = 0;
  for (const auto& s : trace.scenes) covered += s.length;
  EXPECT_EQ(covered, trace.frames.size());
}

TEST(SurrogateTest, SceneAblationSwitchesStructureOff) {
  SurrogateOptions opt;
  opt.frames = 20000;
  opt.scene_weight = 0.0;
  opt.events = false;
  const auto plain = make_starwars_surrogate(opt);
  EXPECT_TRUE(plain.scenes.empty());
  EXPECT_TRUE(plain.events.empty());
  // Marginals still calibrated.
  EXPECT_NEAR(plain.frames.summary().mean, 27791.0, 0.03 * 27791.0);
}

TEST(SurrogateTest, SliceTraceMatchesTable2Character) {
  const auto& trace = short_surrogate();
  const auto slices = surrogate_slices(trace);
  EXPECT_EQ(slices.size(), trace.frames.size() * 30);
  EXPECT_NEAR(slices.dt_seconds() * 1000.0, 1.389, 0.01);  // Table 2: 1.389 ms
  const auto s = slices.summary();
  EXPECT_NEAR(s.mean, 926.4, 0.05 * 926.4);
  // Slice CoV exceeds frame CoV (0.31 vs 0.23 in Table 2).
  EXPECT_GT(s.coefficient_of_variation, trace.frames.summary().coefficient_of_variation);
  EXPECT_NEAR(s.coefficient_of_variation, 0.31, 0.07);
}

TEST(SurrogateTest, CalibrationMetadataExposed) {
  const auto& trace = short_surrogate();
  EXPECT_DOUBLE_EQ(trace.calibration.marginal.mu_gamma, 27791.0);
  EXPECT_DOUBLE_EQ(trace.calibration.hurst, 0.80);
  EXPECT_GT(trace.calibration.marginal.tail_slope, 0.0);
}

}  // namespace
}  // namespace vbr::model
