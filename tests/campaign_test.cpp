// Tests for the crash-safe campaign runner and the fault-injection matrix:
// checkpoint/resume determinism (kill at a batch boundary, resume, compare
// hashes and sink states bit-for-bit), graceful per-source degradation,
// retry of transient faults, per-source deadlines, and the trace writer's
// behaviour under injected disk faults (ENOSPC, short writes, torn blocks).
#include "vbr/run/campaign.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "vbr/common/error.hpp"
#include "vbr/run/checkpoint.hpp"
#include "vbr/run/fault_injection.hpp"
#include "vbr/stream/acf.hpp"
#include "vbr/stream/moments.hpp"
#include "vbr/stream/sink.hpp"
#include "vbr/trace/trace_stream.hpp"

namespace vbr::run {
namespace {

/// Fresh file names under the test temp dir, removed on destruction.
class TempCampaignFiles {
 public:
  explicit TempCampaignFiles(const std::string& tag)
      : trace_(std::filesystem::temp_directory_path() / ("vbr_" + tag + ".trace")),
        checkpoint_(std::filesystem::temp_directory_path() / ("vbr_" + tag + ".ckpt")) {
    std::filesystem::remove(trace_);
    std::filesystem::remove(checkpoint_);
  }
  ~TempCampaignFiles() {
    std::filesystem::remove(trace_);
    std::filesystem::remove(checkpoint_);
  }
  const std::filesystem::path& trace() const { return trace_; }
  const std::filesystem::path& checkpoint() const { return checkpoint_; }

 private:
  std::filesystem::path trace_;
  std::filesystem::path checkpoint_;
};

CampaignOptions small_campaign(const TempCampaignFiles& files) {
  CampaignOptions options;
  options.plan.num_sources = 6;
  options.plan.frames_per_source = 2048;
  options.plan.seed = 1994;
  options.plan.params.hurst = 0.8;
  options.plan.params.marginal.mu_gamma = 27791.0;
  options.plan.params.marginal.sigma_gamma = 6254.0;
  options.plan.params.marginal.tail_slope = 12.0;
  options.plan.threads = 1;
  options.trace_path = files.trace();
  options.checkpoint_path = files.checkpoint();
  options.checkpoint_every_sources = 2;
  return options;
}

std::string sink_bytes(const stream::Sink& sink) {
  std::ostringstream out(std::ios::binary);
  sink.save(out);
  return out.str();
}

struct TapPair {
  stream::StreamingMoments moments;
  stream::StreamingAcf acf{32};
  std::unique_ptr<stream::SinkChain> tap;
  TapPair() : tap(std::make_unique<stream::SinkChain>(
                  std::vector<stream::Sink*>{&moments, &acf})) {}
};

TEST(CampaignTest, HashIndependentOfBatchingAndThreads) {
  TempCampaignFiles ref_files("camp_ref");
  auto ref = small_campaign(ref_files);
  ref.checkpoint_every_sources = 0;  // one batch, checkpoint only at the end
  TapPair ref_tap;
  const auto ref_result = run_campaign(ref, ref_tap.tap.get());

  for (const std::size_t every : {1u, 2u, 5u}) {
    for (const std::size_t threads : {1u, 4u}) {
      TempCampaignFiles files("camp_var");
      auto options = small_campaign(files);
      options.checkpoint_every_sources = every;
      options.plan.threads = threads;
      TapPair tap;
      const auto result = run_campaign(options, tap.tap.get());
      EXPECT_EQ(result.trace_hash, ref_result.trace_hash)
          << "every=" << every << " threads=" << threads;
      EXPECT_EQ(sink_bytes(*tap.tap), sink_bytes(*ref_tap.tap));
    }
  }
}

TEST(CampaignTest, AbortedRunResumesBitIdentically) {
  TempCampaignFiles ref_files("camp_resume_ref");
  TapPair ref_tap;
  const auto ref_result =
      run_campaign(small_campaign(ref_files), ref_tap.tap.get());

  for (const std::size_t threads : {1u, 4u}) {
    // Abort the run by failing the 3rd checkpoint save (transient, injected
    // after two batches are durable): an in-process stand-in for SIGKILL at
    // a batch boundary; the SIGKILL-at-arbitrary-instant case is covered by
    // scripts/crash_soak.sh.
    TempCampaignFiles files("camp_resume");
    auto options = small_campaign(files);
    options.plan.threads = threads;
    FaultPlan plan;
    plan.faults.push_back({"checkpoint", 2, FaultKind::kTransient, 1});
    FaultInjector faults(std::move(plan));
    options.faults = &faults;
    {
      TapPair tap;
      EXPECT_THROW(run_campaign(options, tap.tap.get()), vbr::TransientError);
    }
    EXPECT_EQ(faults.fired("checkpoint"), 1u);
    // The previous checkpoint survived the aborted save (atomic replace).
    const CheckpointData ckpt = load_checkpoint(files.checkpoint());
    EXPECT_EQ(ckpt.next_source, 4u);

    options.faults = nullptr;
    options.resume = true;
    TapPair resumed_tap;
    const auto resumed = run_campaign(options, resumed_tap.tap.get());
    EXPECT_TRUE(resumed.resumed);
    EXPECT_EQ(resumed.resumed_at_source, 4u);
    EXPECT_EQ(resumed.trace_hash, ref_result.trace_hash) << "threads=" << threads;
    EXPECT_EQ(sink_bytes(*resumed_tap.tap), sink_bytes(*ref_tap.tap));
  }
}

TEST(CampaignTest, TornTraceTailIsTruncatedOnResume) {
  TempCampaignFiles ref_files("camp_torn_ref");
  TapPair ref_tap;
  const auto ref_result =
      run_campaign(small_campaign(ref_files), ref_tap.tap.get());

  TempCampaignFiles files("camp_torn");
  auto options = small_campaign(files);
  FaultPlan plan;
  plan.faults.push_back({"checkpoint", 1, FaultKind::kTransient, 1});
  FaultInjector faults(std::move(plan));
  options.faults = &faults;
  {
    TapPair tap;
    EXPECT_THROW(run_campaign(options, tap.tap.get()), vbr::TransientError);
  }
  // Simulate the torn final block a crash leaves: garbage past the last
  // durable sample.
  {
    std::ofstream torn(files.trace(), std::ios::binary | std::ios::app);
    torn.write("GARBAGE-TAIL-BYTES", 18);
  }

  options.faults = nullptr;
  options.resume = true;
  TapPair resumed_tap;
  const auto resumed = run_campaign(options, resumed_tap.tap.get());
  EXPECT_EQ(resumed.trace_hash, ref_result.trace_hash);
  EXPECT_EQ(sink_bytes(*resumed_tap.tap), sink_bytes(*ref_tap.tap));

  // And the finished trace must be exactly readable: count backed in full.
  trace::ChunkedTraceReader reader(files.trace());
  std::vector<double> block(4096);
  std::uint64_t total = 0;
  while (const auto got = reader.read(block)) total += got;
  EXPECT_EQ(total, options.plan.num_sources * options.plan.frames_per_source);
}

TEST(CampaignTest, ResumeWithDifferentPlanIsRejected) {
  TempCampaignFiles files("camp_mismatch");
  auto options = small_campaign(files);
  FaultPlan plan;
  plan.faults.push_back({"checkpoint", 1, FaultKind::kTransient, 1});
  FaultInjector faults(std::move(plan));
  options.faults = &faults;
  EXPECT_THROW(run_campaign(options), vbr::TransientError);

  options.faults = nullptr;
  options.resume = true;
  options.plan.seed = 2024;  // different campaign
  EXPECT_THROW(run_campaign(options), vbr::IoError);
}

TEST(CampaignTest, ResumeWithTapNeedsSinkStateInCheckpoint) {
  TempCampaignFiles files("camp_tapless");
  auto options = small_campaign(files);
  FaultPlan plan;
  plan.faults.push_back({"checkpoint", 1, FaultKind::kTransient, 1});
  FaultInjector faults(std::move(plan));
  options.faults = &faults;
  EXPECT_THROW(run_campaign(options), vbr::TransientError);  // tapless run

  options.faults = nullptr;
  options.resume = true;
  TapPair tap;
  EXPECT_THROW(run_campaign(options, tap.tap.get()), vbr::IoError);
}

TEST(CampaignTest, TransientTapFaultIsAbsorbedByRetry) {
  TempCampaignFiles ref_files("camp_retry_ref");
  const auto ref_result = run_campaign(small_campaign(ref_files));

  TempCampaignFiles files("camp_retry");
  auto options = small_campaign(files);
  options.failure.max_attempts = 3;

  FaultPlan plan;
  plan.faults.push_back({"tap", 0, FaultKind::kTransient, 1});
  FaultInjector faults(std::move(plan));
  stream::StreamingMoments moments;
  FaultySink tap(moments.clone_empty(), &faults, "tap");

  const auto result = run_campaign(options, &tap);
  EXPECT_EQ(result.trace_hash, ref_result.trace_hash);
  EXPECT_EQ(result.stats.transient_retries, 1u);
  EXPECT_TRUE(result.stats.failures.empty());
  EXPECT_EQ(tap.count(),
            options.plan.num_sources * options.plan.frames_per_source);
}

TEST(CampaignTest, PermanentTapFaultQuarantinesOnlyThatSource) {
  TempCampaignFiles files("camp_quarantine");
  auto options = small_campaign(files);
  options.failure.quarantine = true;
  options.plan.threads = 1;  // source 0 performs tap push op 0

  FaultPlan plan;
  plan.faults.push_back({"tap", 0, FaultKind::kPermanent, 1});
  FaultInjector faults(std::move(plan));
  stream::StreamingMoments moments;
  FaultySink tap(moments.clone_empty(), &faults, "tap");

  const auto result = run_campaign(options, &tap);
  ASSERT_EQ(result.stats.failures.size(), 1u);
  EXPECT_EQ(result.stats.failures[0].source_index, 0u);
  EXPECT_EQ(result.stats.failures[0].attempts, 1u);
  EXPECT_NE(result.stats.failures[0].error.find("injected permanent"),
            std::string::npos);
  EXPECT_EQ(result.stats.frames,
            (options.plan.num_sources - 1) * options.plan.frames_per_source);

  // The quarantined source's trace slot is all zeros; the others are not.
  trace::ChunkedTraceReader reader(files.trace());
  std::vector<double> slot(options.plan.frames_per_source);
  ASSERT_EQ(reader.read(slot), slot.size());
  for (const double x : slot) ASSERT_EQ(x, 0.0);
  ASSERT_EQ(reader.read(slot), slot.size());
  double sum = 0.0;
  for (const double x : slot) sum += x;
  EXPECT_GT(sum, 0.0);
}

TEST(CampaignTest, SourceDeadlineBoundsTheRetryLoop) {
  TempCampaignFiles files("camp_deadline");
  auto options = small_campaign(files);
  options.plan.num_sources = 1;
  options.plan.threads = 1;
  options.failure.max_attempts = 1000;
  options.failure.backoff_seconds = 0.02;
  options.failure.source_deadline_seconds = 0.05;
  options.failure.quarantine = true;

  FaultPlan plan;
  plan.faults.push_back({"tap", 0, FaultKind::kTransient, 1000000});
  FaultInjector faults(std::move(plan));
  stream::StreamingMoments moments;
  FaultySink tap(moments.clone_empty(), &faults, "tap");

  const auto result = run_campaign(options, &tap);
  ASSERT_EQ(result.stats.failures.size(), 1u);
  EXPECT_NE(result.stats.failures[0].error.find("deadline"), std::string::npos);
  // The deadline, not the attempt budget, stopped the loop.
  EXPECT_LT(result.stats.failures[0].attempts, 1000u);
  EXPECT_GE(result.stats.failures[0].attempts, 2u);
}

// ---------------------------------------------------------------------------
// Trace writer under injected disk faults (the writer half of the matrix).
// The binary header is written as 5 stream operations; appends start at op 5.
// ---------------------------------------------------------------------------

TEST(TraceWriterFaultTest, EnospcSurfacesAsIoErrorOnAppend) {
  FaultPlan plan;
  plan.faults.push_back({"disk", 5, FaultKind::kNoSpace, 1});
  FaultInjector faults(std::move(plan));
  std::ostringstream backing(std::ios::binary);
  FaultyStreambuf buf(backing.rdbuf(), &faults, "disk");
  std::ostream out(&buf);
  trace::ChunkedTraceWriter writer(out, "faulty", 8, 1.0 / 24.0);
  const std::vector<double> samples(8, 100.0);
  EXPECT_THROW(writer.append(samples), vbr::IoError);
}

TEST(TraceWriterFaultTest, ShortWriteSurfacesAsIoErrorOnAppend) {
  FaultPlan plan;
  plan.faults.push_back({"disk", 5, FaultKind::kShortWrite, 1});
  FaultInjector faults(std::move(plan));
  std::ostringstream backing(std::ios::binary);
  FaultyStreambuf buf(backing.rdbuf(), &faults, "disk");
  std::ostream out(&buf);
  trace::ChunkedTraceWriter writer(out, "faulty", 8, 1.0 / 24.0);
  const std::vector<double> samples(8, 100.0);
  EXPECT_THROW(writer.append(samples), vbr::IoError);
}

TEST(TraceWriterFaultTest, TornFinalBlockIsCaughtByFinish) {
  // The torn write lies: the stream reports success while half the block is
  // gone. append() cannot see it — only finish()'s position check can.
  FaultPlan plan;
  plan.faults.push_back({"disk", 5, FaultKind::kTornWrite, 1});
  FaultInjector faults(std::move(plan));
  std::ostringstream backing(std::ios::binary);
  FaultyStreambuf buf(backing.rdbuf(), &faults, "disk");
  std::ostream out(&buf);
  trace::ChunkedTraceWriter writer(out, "faulty", 8, 1.0 / 24.0);
  const std::vector<double> samples(8, 100.0);
  writer.append(samples);  // reports success
  EXPECT_THROW(writer.finish(), vbr::IoError);
}

TEST(TraceWriterFaultTest, FaultFreePathStaysByteIdentical) {
  // The injection seam itself must be transparent when no fault fires.
  FaultInjector faults(FaultPlan{});
  std::ostringstream faulty_backing(std::ios::binary);
  FaultyStreambuf buf(faulty_backing.rdbuf(), &faults, "disk");
  std::ostream faulty_out(&buf);
  std::ostringstream clean_backing(std::ios::binary);

  const std::vector<double> samples{1.0, 2.5, 3.0, 4.25};
  trace::ChunkedTraceWriter faulty_writer(faulty_out, "faulty", 4, 1.0 / 24.0);
  faulty_writer.append(samples);
  faulty_writer.finish();
  trace::ChunkedTraceWriter clean_writer(clean_backing, "clean", 4, 1.0 / 24.0);
  clean_writer.append(samples);
  clean_writer.finish();
  EXPECT_EQ(faulty_backing.str(), clean_backing.str());
}

TEST(TraceWriterResumeTest, RejectsFilesShorterThanTheCheckpointClaims) {
  const auto path =
      std::filesystem::temp_directory_path() / "vbr_resume_short.trace";
  {
    trace::ChunkedTraceWriter writer(path, 16, 1.0 / 24.0);
    writer.append(std::vector<double>(4, 1.0));
    writer.flush();
  }  // destroyed unfinished: 4 of 16 samples on disk
  EXPECT_THROW(trace::ChunkedTraceWriter::resume(path, 16, 8), vbr::IoError);
  EXPECT_THROW(trace::ChunkedTraceWriter::resume(path, 12, 4), vbr::IoError);
  auto writer = trace::ChunkedTraceWriter::resume(path, 16, 4);
  writer.append(std::vector<double>(12, 2.0));
  writer.finish();
  trace::ChunkedTraceReader reader(path);
  std::vector<double> all(16);
  ASSERT_EQ(reader.read(all), 16u);
  EXPECT_EQ(all[3], 1.0);
  EXPECT_EQ(all[4], 2.0);
  std::filesystem::remove(path);
}

TEST(TraceWriterDurabilityTest, DurableWriterProducesIdenticalBytes) {
  const auto plain_path =
      std::filesystem::temp_directory_path() / "vbr_durable_a.trace";
  const auto durable_path =
      std::filesystem::temp_directory_path() / "vbr_durable_b.trace";
  trace::TraceWriterOptions durable_options;
  durable_options.durable = true;
  durable_options.sync_every_samples = 8;
  const std::vector<double> samples(32, 7.0);
  {
    trace::ChunkedTraceWriter plain(plain_path, 32, 1.0 / 24.0);
    plain.append(samples);
    plain.finish();
    trace::ChunkedTraceWriter durable(durable_path, 32, 1.0 / 24.0, "bytes/frame",
                                      durable_options);
    durable.append(samples);
    durable.finish();
  }
  std::ifstream a(plain_path, std::ios::binary);
  std::ifstream b(durable_path, std::ios::binary);
  const std::string bytes_a((std::istreambuf_iterator<char>(a)),
                            std::istreambuf_iterator<char>());
  const std::string bytes_b((std::istreambuf_iterator<char>(b)),
                            std::istreambuf_iterator<char>());
  EXPECT_EQ(bytes_a, bytes_b);
  std::filesystem::remove(plain_path);
  std::filesystem::remove(durable_path);
}

}  // namespace
}  // namespace vbr::run
