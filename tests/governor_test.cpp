// Tests for the overload governor (src/vbr/service/governor): budgeted
// admission at the exact boundary, per-stream fault isolation with the
// engine's retry/quarantine semantics (bit-identity across thread counts
// and block slicings under a fixed seeded schedule), the deterministic
// degradation ladder, and checkpoint/resume mid-degradation at 0 ulp.
#include "vbr/service/governor.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "vbr/common/error.hpp"
#include "vbr/model/vbr_source.hpp"
#include "vbr/service/service_checkpoint.hpp"
#include "vbr/service/traffic_service.hpp"

namespace vbr::service {
namespace {

model::VbrModelParams paper_params() {
  model::VbrModelParams params;
  params.hurst = 0.8;
  params.marginal.mu_gamma = 27791.0;
  params.marginal.sigma_gamma = 6254.0;
  params.marginal.tail_slope = 12.0;
  return params;
}

ServiceConfig small_config(std::size_t streams = 16, std::size_t threads = 1) {
  ServiceConfig config;
  config.num_streams = streams;
  config.seed = 1994;
  config.params = paper_params();
  config.variant = model::ModelVariant::kGaussianFarima;
  config.backend = model::GeneratorBackend::kHosking;
  config.threads = threads;
  return config;
}

/// Drive `total` governed samples in `block`-sized calls.
void advance_total(OverloadGovernor& governor, std::uint64_t total, std::size_t block) {
  std::uint64_t done = 0;
  while (done < total) {
    const std::size_t step = static_cast<std::size_t>(std::min<std::uint64_t>(block, total - done));
    governor.advance_round(step);
    done += step;
  }
}

// ---------------------------------------------------------------------------
// Admission.

TEST(AdmissionTest, AcceptsExactlyAtTheMemoryBudgetAndRejectsOneByteUnder) {
  const ServiceConfig config = small_config(64);
  const std::uint64_t per_stream = stream_state_bytes(config.backend, config.tuning);
  ASSERT_GT(per_stream, 0u);

  ResourceBudget budget;
  budget.memory_bytes = 64 * per_stream;  // exactly the projected fleet
  const AdmissionDecision at_budget = admit_fleet(config, budget);
  EXPECT_TRUE(at_budget.admitted());
  EXPECT_EQ(at_budget.outcome, AdmissionOutcome::kAdmitted);
  EXPECT_EQ(at_budget.projected_memory_bytes, budget.memory_bytes);

  budget.memory_bytes = 64 * per_stream - 1;  // one byte short
  const AdmissionDecision over = admit_fleet(config, budget);
  EXPECT_FALSE(over.admitted());
  EXPECT_EQ(over.outcome, AdmissionOutcome::kRejectedMemory);
  EXPECT_EQ(over.requested_streams, 64u);
  EXPECT_EQ(over.memory_budget_bytes, budget.memory_bytes);
  EXPECT_NE(over.reason.find("memory budget"), std::string::npos);
}

TEST(AdmissionTest, RejectsOnCpuBudget) {
  ServiceConfig config = small_config(24);
  config.frame_seconds = 1.0;  // 24 streams -> 24 samples/s
  ResourceBudget budget;
  budget.cpu_samples_per_second = 24.0;
  EXPECT_TRUE(admit_fleet(config, budget).admitted());
  budget.cpu_samples_per_second = 23.0;
  const AdmissionDecision rejected = admit_fleet(config, budget);
  EXPECT_EQ(rejected.outcome, AdmissionOutcome::kRejectedCpu);
}

TEST(AdmissionTest, HoskingCostModelMatchesTheBenchCalibration) {
  // ~0.85 KiB/stream at the default horizon 64 (bench_service at 10^6
  // streams measured 843 MiB); the model must stay on that calibration.
  const std::uint64_t bytes =
      stream_state_bytes(model::GeneratorBackend::kHosking, StreamingTuning{});
  EXPECT_GE(bytes, 800u);
  EXPECT_LE(bytes, 1024u);
}

TEST(AdmissionTest, DaviesHarteHasNoStreamingCostModel) {
  EXPECT_THROW(stream_state_bytes(model::GeneratorBackend::kDaviesHarte, StreamingTuning{}),
               InvalidArgument);
}

TEST(AdmissionTest, GovernorAtLevelThreeRefusesRegardlessOfBudget) {
  TrafficService service(small_config(8));
  GovernorConfig gov_config;
  gov_config.pressure_schedule = {{4, 3}};
  OverloadGovernor governor(service, gov_config);
  EXPECT_TRUE(governor.admit(1).admitted());
  governor.advance_round(4);
  EXPECT_EQ(governor.level(), 3);
  const AdmissionDecision refused = governor.admit(1);
  EXPECT_EQ(refused.outcome, AdmissionOutcome::kRejectedDegraded);
  EXPECT_FALSE(refused.admitted());
}

// ---------------------------------------------------------------------------
// Fault isolation.

TEST(FaultIsolationTest, ExactlyKFailuresAndHealthyStreamsBitIdentical) {
  constexpr std::size_t kStreams = 16;
  constexpr std::uint64_t kSamples = 96;

  // Fault-free reference fleet.
  TrafficService reference(small_config(kStreams));
  reference.advance_round(static_cast<std::size_t>(kSamples));

  // Same fleet with k = 2 seeded faults: a permanent one in stream 3 and a
  // transient one in stream 7 that outlives the retry budget.
  TrafficService service(small_config(kStreams));
  GovernorConfig gov_config;
  gov_config.policy.max_attempts = 2;
  gov_config.stream_faults = {
      {3, 40, run::FaultKind::kPermanent, 1},
      {7, 17, run::FaultKind::kTransient, 2},  // fires twice = both attempts
  };
  OverloadGovernor governor(service, gov_config);
  advance_total(governor, kSamples, 32);

  const std::vector<StreamFailure> failures = governor.failures();
  ASSERT_EQ(failures.size(), 2u);
  EXPECT_EQ(governor.quarantined_streams(), 2u);

  EXPECT_EQ(failures[0].stream, 3u);
  EXPECT_FALSE(failures[0].transient);
  EXPECT_EQ(failures[0].position, 40u);
  EXPECT_EQ(failures[0].attempts, 1u);

  EXPECT_EQ(failures[1].stream, 7u);
  EXPECT_TRUE(failures[1].transient);
  EXPECT_EQ(failures[1].position, 17u);
  EXPECT_EQ(failures[1].attempts, 2u);

  EXPECT_EQ(service.status(3), StreamStatus::kQuarantined);
  EXPECT_EQ(service.status(7), StreamStatus::kQuarantined);
  // Quarantined streams froze at exactly the fault position...
  EXPECT_EQ(service.stream_position(3), 40u);
  EXPECT_EQ(service.stream_position(7), 17u);
  // ...and every healthy stream is bit-identical to the fault-free run.
  for (std::size_t i = 0; i < kStreams; ++i) {
    if (i == 3 || i == 7) continue;
    EXPECT_EQ(service.status(i), StreamStatus::kActive);
    EXPECT_EQ(service.stream_digest(i), reference.stream_digest(i)) << "stream " << i;
    EXPECT_EQ(service.stream_position(i), kSamples);
  }
}

TEST(FaultIsolationTest, AbsorbedTransientFaultIsBitIdenticalToFaultFree) {
  constexpr std::size_t kStreams = 8;
  constexpr std::uint64_t kSamples = 64;

  TrafficService reference(small_config(kStreams));
  reference.advance_round(static_cast<std::size_t>(kSamples));

  TrafficService service(small_config(kStreams));
  GovernorConfig gov_config;
  gov_config.policy.max_attempts = 3;
  gov_config.stream_faults = {{5, 20, run::FaultKind::kTransient, 2}};  // 2 < 3 attempts
  OverloadGovernor governor(service, gov_config);
  advance_total(governor, kSamples, 16);

  EXPECT_TRUE(governor.failures().empty());
  EXPECT_EQ(governor.transient_retries(), 2u);
  EXPECT_EQ(service.status(5), StreamStatus::kActive);
  // The retried stream re-emitted exactly the samples the failed attempts
  // produced: the whole fleet hash equals the fault-free run.
  EXPECT_EQ(service.results_hash(), reference.results_hash());
}

TEST(FaultIsolationTest, HashInvariantToThreadCountAndBlockSizeUnderFaults) {
  constexpr std::size_t kStreams = 32;
  constexpr std::uint64_t kSamples = 72;
  const std::vector<ScheduledStreamFault> faults = {
      {2, 11, run::FaultKind::kPermanent, 1},
      {9, 30, run::FaultKind::kTransient, 5},   // exhausts any small budget
      {21, 50, run::FaultKind::kTransient, 1},  // absorbed
  };

  std::uint64_t expected_hash = 0;
  bool first = true;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    for (const std::size_t block : {std::size_t{1}, std::size_t{9}, std::size_t{72}}) {
      TrafficService service(small_config(kStreams, threads));
      GovernorConfig gov_config;
      gov_config.policy.max_attempts = 3;
      gov_config.stream_faults = faults;
      gov_config.pressure_schedule = {{24, 1}, {48, 2}, {60, 0}};
      OverloadGovernor governor(service, gov_config);
      advance_total(governor, kSamples, block);
      ASSERT_EQ(governor.failures().size(), 2u) << "threads " << threads << " block " << block;
      if (first) {
        expected_hash = service.results_hash();
        first = false;
      } else {
        EXPECT_EQ(service.results_hash(), expected_hash)
            << "threads " << threads << " block " << block;
      }
    }
  }
}

TEST(FaultIsolationTest, SnapshotEveryRoundKeepsTheFleetBitIdentical) {
  // Paranoid mode serializes every stream before every generation; it must
  // never change what a healthy fleet emits.
  constexpr std::size_t kStreams = 8;
  TrafficService reference(small_config(kStreams));
  reference.advance_round(48);

  TrafficService service(small_config(kStreams));
  GovernorConfig gov_config;
  gov_config.snapshot_every_round = true;
  OverloadGovernor governor(service, gov_config);
  advance_total(governor, 48, 16);
  EXPECT_EQ(service.results_hash(), reference.results_hash());
}

TEST(FaultIsolationTest, RejectsStreamShapedFaultKindsAndBadStreams) {
  TrafficService service(small_config(4));
  GovernorConfig bad_kind;
  bad_kind.stream_faults = {{1, 0, run::FaultKind::kShortWrite, 1}};
  EXPECT_THROW(OverloadGovernor(service, bad_kind), InvalidArgument);
  GovernorConfig bad_stream;
  bad_stream.stream_faults = {{4, 0, run::FaultKind::kTransient, 1}};
  EXPECT_THROW(OverloadGovernor(service, bad_stream), InvalidArgument);
  GovernorConfig bad_schedule;
  bad_schedule.pressure_schedule = {{8, 1}, {8, 2}};
  EXPECT_THROW(OverloadGovernor(service, bad_schedule), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Degradation ladder.

TEST(DegradationTest, LadderAppliesAndReleasesInOrder) {
  constexpr std::size_t kStreams = 16;
  TrafficService service(small_config(kStreams));
  GovernorConfig gov_config;
  gov_config.shed_fraction = 0.25;
  gov_config.degraded_block = 4;
  gov_config.pressure_schedule = {{8, 1}, {16, 2}, {24, 3}, {32, 0}};
  OverloadGovernor governor(service, gov_config);

  governor.advance_round(8);
  EXPECT_EQ(governor.level(), 1);
  // Level 1: shed the lowest-priority quarter — the 4 highest indices.
  EXPECT_EQ(governor.shed_streams(), 4u);
  for (std::size_t i = 12; i < 16; ++i) EXPECT_EQ(service.status(i), StreamStatus::kPaused);
  EXPECT_EQ(service.active_streams(), 12u);
  EXPECT_FALSE(governor.checkpoint_requested());

  governor.advance_round(8);
  EXPECT_EQ(governor.level(), 2);
  EXPECT_EQ(governor.shed_streams(), 4u);

  governor.advance_round(8);
  EXPECT_EQ(governor.level(), 3);
  EXPECT_TRUE(governor.checkpoint_requested());
  EXPECT_EQ(governor.admit(1).outcome, AdmissionOutcome::kRejectedDegraded);

  governor.advance_round(8);
  EXPECT_EQ(governor.level(), 0);
  EXPECT_EQ(governor.shed_streams(), 0u);
  EXPECT_EQ(service.active_streams(), kStreams);

  // One more round past recovery: shed streams resumed exactly where they
  // froze (paused over [8, 32) — 24 samples behind the full-speed fleet).
  governor.advance_round(8);
  EXPECT_EQ(service.stream_position(0), 40u);
  EXPECT_EQ(service.stream_position(15), 16u);
}

TEST(DegradationTest, ShedStreamsFreezeAtExactEpochsForAnyBlockSlicing) {
  constexpr std::size_t kStreams = 12;
  constexpr std::uint64_t kSamples = 60;
  std::uint64_t expected = 0;
  bool first = true;
  for (const std::size_t block : {std::size_t{1}, std::size_t{7}, std::size_t{60}}) {
    TrafficService service(small_config(kStreams));
    GovernorConfig gov_config;
    gov_config.shed_fraction = 0.5;
    gov_config.pressure_schedule = {{13, 1}, {41, 0}};
    OverloadGovernor governor(service, gov_config);
    advance_total(governor, kSamples, block);
    // Full-speed streams hold 60 samples; shed ones lost exactly the
    // [13, 41) pressure window.
    EXPECT_EQ(service.stream_position(0), 60u);
    EXPECT_EQ(service.stream_position(kStreams - 1), 32u);
    if (first) {
      expected = service.results_hash();
      first = false;
    } else {
      EXPECT_EQ(service.results_hash(), expected) << "block " << block;
    }
  }
}

TEST(DegradationTest, ProbeDrivenLadderFollowsTheProbe) {
  TrafficService service(small_config(8));
  int wanted = 0;
  GovernorConfig gov_config;
  gov_config.shed_fraction = 0.25;
  gov_config.pressure_probe = [&wanted]() { return wanted; };
  OverloadGovernor governor(service, gov_config);
  governor.advance_round(8);
  EXPECT_EQ(governor.level(), 0);
  wanted = 2;
  governor.advance_round(8);
  EXPECT_EQ(governor.level(), 2);
  EXPECT_EQ(governor.shed_streams(), 2u);
  wanted = 0;
  governor.advance_round(8);
  EXPECT_EQ(governor.level(), 0);
  EXPECT_EQ(governor.shed_streams(), 0u);
}

// ---------------------------------------------------------------------------
// Checkpoint / resume mid-degradation.

TEST(GovernorCheckpointTest, ResumeMidDegradationIsBitIdentical) {
  constexpr std::size_t kStreams = 16;
  const auto make_governor_config = [] {
    GovernorConfig gov_config;
    gov_config.policy.max_attempts = 2;
    gov_config.shed_fraction = 0.25;
    gov_config.stream_faults = {{5, 26, run::FaultKind::kPermanent, 1},
                                {11, 44, run::FaultKind::kTransient, 2}};
    gov_config.pressure_schedule = {{16, 1}, {32, 2}, {56, 0}};
    return gov_config;
  };

  // Uninterrupted run.
  TrafficService reference(small_config(kStreams));
  OverloadGovernor reference_governor(reference, make_governor_config());
  advance_total(reference_governor, 80, 10);

  // Interrupted run: checkpoint at sample 40 (mid level 2, one stream
  // already quarantined), restore into a fresh pair, finish.
  const std::string path =
      (std::filesystem::temp_directory_path() / "governor_ckpt_test.bin").string();
  {
    TrafficService service(small_config(kStreams));
    OverloadGovernor governor(service, make_governor_config());
    advance_total(governor, 40, 10);
    EXPECT_EQ(governor.level(), 2);
    EXPECT_EQ(governor.quarantined_streams(), 1u);
    save_service_checkpoint(path, service, &governor);
  }
  TrafficService resumed(small_config(kStreams));
  OverloadGovernor resumed_governor(resumed, make_governor_config());
  load_service_checkpoint(path, resumed, &resumed_governor);
  EXPECT_EQ(resumed_governor.level(), 2);
  EXPECT_EQ(resumed_governor.epoch(), 40u);
  EXPECT_EQ(resumed_governor.quarantined_streams(), 1u);
  advance_total(resumed_governor, 40, 10);

  EXPECT_EQ(resumed.results_hash(), reference.results_hash());
  EXPECT_EQ(resumed.rounds(), reference.rounds());
  EXPECT_EQ(resumed.total_samples(), reference.total_samples());
  // 0 ulp: the Kahan total's bit pattern survives the round trip.
  EXPECT_EQ(std::bit_cast<std::uint64_t>(resumed.total_bytes()),
            std::bit_cast<std::uint64_t>(reference.total_bytes()));
  ASSERT_EQ(resumed_governor.failures().size(), reference_governor.failures().size());
  EXPECT_EQ(resumed_governor.transient_retries(), reference_governor.transient_retries());
  std::filesystem::remove(path);
}

TEST(GovernorCheckpointTest, RejectsACheckpointFromADifferentGovernorConfig) {
  TrafficService service(small_config(8));
  GovernorConfig gov_config;
  gov_config.stream_faults = {{2, 10, run::FaultKind::kTransient, 1}};
  OverloadGovernor governor(service, gov_config);
  governor.advance_round(4);
  std::ostringstream out(std::ios::binary);
  governor.save_state(out);

  GovernorConfig other = gov_config;
  other.stream_faults[0].at_sample = 11;
  TrafficService other_service(small_config(8));
  OverloadGovernor other_governor(other_service, other);
  std::istringstream in(out.str(), std::ios::binary);
  EXPECT_THROW(other_governor.restore_state(in), IoError);
}

TEST(GovernorCheckpointTest, GovernedAndUngovernedCheckpointsDoNotMix) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "governor_mix_test.bin").string();
  TrafficService service(small_config(4));
  service.advance_round(8);
  save_service_checkpoint(path, service);  // ungoverned

  TrafficService governed(small_config(4));
  OverloadGovernor governor(governed, GovernorConfig{});
  EXPECT_THROW(load_service_checkpoint(path, governed, &governor), IoError);

  save_service_checkpoint(path, service, &governor);  // governed
  TrafficService plain(small_config(4));
  EXPECT_THROW(load_service_checkpoint(path, plain), IoError);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace vbr::service
