// Tests for the fARIMA (Eq. 6) and fGn autocorrelation functions.
#include "vbr/model/fgn_acf.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "vbr/common/error.hpp"

namespace vbr::model {
namespace {

TEST(FarimaAcfTest, LagZeroIsOne) {
  EXPECT_DOUBLE_EQ(farima_acf(0.8, 10)[0], 1.0);
  EXPECT_DOUBLE_EQ(fgn_acf(0.8, 10)[0], 1.0);
}

TEST(FarimaAcfTest, MatchesEqSixDirectProduct) {
  // rho_k = d(1+d)...(k-1+d) / ((1-d)(2-d)...(k-d)) with d = H - 1/2.
  const double h = 0.8;
  const double d = h - 0.5;
  const auto rho = farima_acf(h, 5);
  double num = 1.0;
  double den = 1.0;
  for (std::size_t k = 1; k <= 5; ++k) {
    num *= (static_cast<double>(k) - 1.0 + d);
    den *= (static_cast<double>(k) - d);
    EXPECT_NEAR(rho[k], num / den, 1e-14) << "k=" << k;
  }
}

TEST(FarimaAcfTest, HalfHurstIsWhiteNoise) {
  const auto rho = farima_acf(0.5, 20);
  for (std::size_t k = 1; k <= 20; ++k) EXPECT_NEAR(rho[k], 0.0, 1e-14);
  const auto fgn = fgn_acf(0.5, 20);
  for (std::size_t k = 1; k <= 20; ++k) EXPECT_NEAR(fgn[k], 0.0, 1e-12);
}

TEST(FarimaAcfTest, AsymptoticHyperbolicDecay) {
  // rho_k ~ C k^{2H-2}: the log-log slope between far lags approaches 2H-2.
  const double h = 0.8;
  const auto rho = farima_acf(h, 20000);
  const double slope = (std::log(rho[20000]) - std::log(rho[2000])) /
                       (std::log(20000.0) - std::log(2000.0));
  EXPECT_NEAR(slope, 2.0 * h - 2.0, 0.01);
}

TEST(FgnAcfTest, AsymptoticHyperbolicDecay) {
  const double h = 0.75;
  const auto rho = fgn_acf(h, 20000);
  const double slope = (std::log(rho[20000]) - std::log(rho[2000])) /
                       (std::log(20000.0) - std::log(2000.0));
  EXPECT_NEAR(slope, 2.0 * h - 2.0, 0.01);
}

TEST(FgnAcfTest, NegativeCorrelationsForAntipersistent) {
  // H < 0.5 fGn has negative lag-1 correlation.
  EXPECT_LT(fgn_rho(0.3, 1), 0.0);
  EXPECT_GT(fgn_rho(0.7, 1), 0.0);
}

TEST(FgnAcfTest, ExactSelfSimilarityIdentity) {
  // For fGn, rho_1 = 2^{2H-1} - 1 exactly.
  for (double h : {0.6, 0.75, 0.9}) {
    EXPECT_NEAR(fgn_rho(h, 1), std::pow(2.0, 2.0 * h - 1.0) - 1.0, 1e-12);
  }
}

TEST(FgnAcfTest, PositiveAndDecreasingForPersistent) {
  const auto rho = fgn_acf(0.8, 100);
  for (std::size_t k = 1; k < 100; ++k) {
    EXPECT_GT(rho[k], 0.0);
    EXPECT_LT(rho[k + 0], rho[k - 1]);
  }
}

TEST(FgnAcfTest, SumDivergesForLrdConvergesForSrd) {
  // Partial sums: LRD grows with cutoff, white noise stays ~0.
  const auto lrd = fgn_acf(0.8, 100000);
  double partial_1k = 0.0;
  double partial_100k = 0.0;
  for (std::size_t k = 1; k <= 1000; ++k) partial_1k += lrd[k];
  for (std::size_t k = 1; k <= 100000; ++k) partial_100k += lrd[k];
  EXPECT_GT(partial_100k, 2.0 * partial_1k);
}

TEST(AcfTest, RejectsInvalidHurst) {
  EXPECT_THROW(farima_acf(0.0, 5), vbr::InvalidArgument);
  EXPECT_THROW(farima_acf(1.0, 5), vbr::InvalidArgument);
  EXPECT_THROW(fgn_acf(-0.1, 5), vbr::InvalidArgument);
}

}  // namespace
}  // namespace vbr::model
