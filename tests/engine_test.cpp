// Tests for the parallel generation engine: the determinism guarantee
// (bit-identical output for any thread count), Rng::split() child-stream
// independence, stats accounting, and the aggregate multiplexer feed.
#include "vbr/engine/engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstddef>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "vbr/common/error.hpp"
#include "vbr/common/math_util.hpp"
#include "vbr/common/rng.hpp"
#include "vbr/engine/thread_pool.hpp"
#include "vbr/stream/sink.hpp"

namespace vbr::engine {
namespace {

GenerationPlan small_plan() {
  GenerationPlan plan;
  plan.num_sources = 5;
  plan.frames_per_source = 2048;
  plan.seed = 1994;
  plan.params.hurst = 0.8;
  plan.params.marginal.mu_gamma = 27791.0;
  plan.params.marginal.sigma_gamma = 6254.0;
  plan.params.marginal.tail_slope = 12.0;
  return plan;
}

TEST(EngineTest, BitIdenticalAcrossThreadCounts) {
  // Same seed + same plan must give byte-identical traces however the
  // sources are spread over threads. EXPECT_EQ on doubles is exact
  // comparison — precisely the guarantee we advertise.
  auto plan = small_plan();
  plan.threads = 1;
  const auto one = generate_sources(plan);
  plan.threads = 2;
  const auto two = generate_sources(plan);
  plan.threads = 8;
  const auto eight = generate_sources(plan);

  ASSERT_EQ(one.sources.size(), plan.num_sources);
  EXPECT_EQ(one.sources, two.sources);
  EXPECT_EQ(one.sources, eight.sources);
}

TEST(EngineTest, BitIdenticalForEveryVariantAndBackend) {
  for (const auto variant :
       {model::ModelVariant::kFull, model::ModelVariant::kGaussianFarima,
        model::ModelVariant::kIidGammaPareto}) {
    auto plan = small_plan();
    plan.num_sources = 3;
    plan.frames_per_source = 512;
    plan.variant = variant;
    plan.threads = 1;
    const auto serial = generate_sources(plan);
    plan.threads = 4;
    const auto parallel = generate_sources(plan);
    EXPECT_EQ(serial.sources, parallel.sources);
  }
  auto plan = small_plan();
  plan.num_sources = 3;
  plan.frames_per_source = 256;  // Hosking is O(n^2); keep it small
  plan.backend = model::GeneratorBackend::kHosking;
  plan.threads = 1;
  const auto serial = generate_sources(plan);
  plan.threads = 4;
  const auto parallel = generate_sources(plan);
  EXPECT_EQ(serial.sources, parallel.sources);
}

TEST(EngineTest, SourcesAreDistinctStreams) {
  auto plan = small_plan();
  const auto out = generate_sources(plan);
  for (std::size_t i = 0; i < out.sources.size(); ++i) {
    for (std::size_t j = i + 1; j < out.sources.size(); ++j) {
      EXPECT_NE(out.sources[i], out.sources[j]) << "sources " << i << "," << j;
    }
  }
}

TEST(EngineTest, SplitChildStreamsAreUncorrelated) {
  // Smoke test of the Rng::split() independence the engine leans on: the
  // cross-correlation of sibling normal streams should vanish like 1/sqrt(n).
  Rng master(42);
  Rng a = master.split();
  Rng b = master.split();
  const std::size_t n = 1 << 16;
  double sum_ab = 0.0, sum_aa = 0.0, sum_bb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = a.normal();
    const double y = b.normal();
    sum_ab += x * y;
    sum_aa += x * x;
    sum_bb += y * y;
  }
  const double corr = sum_ab / std::sqrt(sum_aa * sum_bb);
  EXPECT_LT(std::abs(corr), 0.02);  // ~5 sigma at n = 65536
}

TEST(EngineTest, StatsAccounting) {
  auto plan = small_plan();
  plan.threads = 2;
  const auto out = generate_sources(plan);
  EXPECT_EQ(out.stats.sources, plan.num_sources);
  EXPECT_EQ(out.stats.frames, plan.num_sources * plan.frames_per_source);
  EXPECT_EQ(out.stats.threads_used, 2u);
  EXPECT_GT(out.stats.bytes, 0.0);
  EXPECT_GT(out.stats.wall_seconds, 0.0);
  EXPECT_GT(out.stats.frames_per_second(), 0.0);
  EXPECT_GT(out.stats.bytes_per_second(), 0.0);

  double bytes = 0.0;
  for (const auto& s : out.sources) bytes += kahan_total(s);
  EXPECT_NEAR(out.stats.bytes, bytes, 1e-6 * bytes);
}

TEST(EngineTest, ThreadsClampToSourceCount) {
  auto plan = small_plan();
  plan.num_sources = 2;
  plan.threads = 16;
  const auto out = generate_sources(plan);
  EXPECT_EQ(out.stats.threads_used, 2u);
}

TEST(EngineTest, AggregateSumsSources) {
  auto plan = small_plan();
  plan.num_sources = 4;
  plan.frames_per_source = 128;
  const auto out = generate_sources(plan);
  const auto total = out.aggregate();
  ASSERT_EQ(total.size(), plan.frames_per_source);
  for (std::size_t f = 0; f < total.size(); ++f) {
    double expected = 0.0;
    for (const auto& s : out.sources) expected += s[f];
    EXPECT_DOUBLE_EQ(total[f], expected);
  }
}

TEST(EngineTest, RejectsEmptyPlan) {
  GenerationPlan plan = small_plan();
  plan.num_sources = 0;
  EXPECT_THROW(generate_sources(plan), vbr::InvalidArgument);
  plan = small_plan();
  plan.frames_per_source = 0;
  EXPECT_THROW(generate_sources(plan), vbr::InvalidArgument);
}

TEST(EngineTest, AggregateSkipsQuarantinedSources) {
  MultiSourceTrace out;
  out.sources = {{1.0, 2.0}, {}, {10.0, 20.0}};  // middle source quarantined
  const auto total = out.aggregate();
  ASSERT_EQ(total.size(), 2u);
  EXPECT_DOUBLE_EQ(total[0], 11.0);
  EXPECT_DOUBLE_EQ(total[1], 22.0);
}

TEST(ThreadPoolTest, RethrowsLowestIndexExceptionRegardlessOfScheduling) {
  // Regression: the old pool drained the queue on first failure, so which
  // exception escaped depended on thread timing. Now every index runs and
  // the lowest-index failure wins — for any thread count, every repeat.
  for (const std::size_t threads : {1u, 4u, 8u}) {
    for (int repeat = 0; repeat < 20; ++repeat) {
      std::atomic<std::size_t> ran{0};
      try {
        parallel_for_index(64, threads, [&](std::size_t i) {
          ran.fetch_add(1);
          if (i == 7 || i == 3 || i == 50) {
            throw std::runtime_error("task " + std::to_string(i));
          }
        });
        FAIL() << "expected an exception";
      } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "task 3");
      }
      // No draining: the failing tasks must not prevent the rest from running.
      EXPECT_EQ(ran.load(), 64u);
    }
  }
}

TEST(EngineFailureTest, TransientFaultsAreRetriedBitIdentically) {
  // A sink family sharing one trip-wire: the first push anywhere throws
  // TransientError, everything after succeeds. Exactly one source needs one
  // retry, and the retried output must match a fault-free run exactly
  // (every attempt restarts from a copy of the source's original stream).
  class FlakySink final : public stream::Sink {
   public:
    FlakySink()
        : tripped_(std::make_shared<std::atomic<bool>>(false)),
          pushed_(std::make_shared<std::atomic<std::size_t>>(0)) {}

    void push(std::span<const double> samples) override {
      if (!tripped_->exchange(true)) throw vbr::TransientError("flaky push");
      pushed_->fetch_add(samples.size());
    }
    void merge(const Sink&) override {}  // the push counter is shared
    std::unique_ptr<Sink> clone_empty() const override {
      return std::unique_ptr<Sink>(new FlakySink(*this));
    }
    void save(std::ostream&) const override {}
    void restore(std::istream&) override {}
    std::size_t count() const override { return pushed_->load(); }
    const char* kind() const override { return "flaky"; }

   private:
    std::shared_ptr<std::atomic<bool>> tripped_;
    std::shared_ptr<std::atomic<std::size_t>> pushed_;
  };

  auto plan = small_plan();
  plan.threads = 2;
  const auto clean = generate_sources(plan);

  FlakySink tap;
  FailurePolicy policy;
  policy.max_attempts = 3;
  const auto retried = generate_sources(plan, &tap, policy);
  EXPECT_EQ(clean.sources, retried.sources);
  EXPECT_EQ(retried.stats.transient_retries, 1u);
  EXPECT_TRUE(retried.stats.failures.empty());
  EXPECT_EQ(tap.count(), plan.num_sources * plan.frames_per_source);
}

TEST(EngineFailureTest, ExhaustedRetriesQuarantineWhenPolicyAllows) {
  // A sink that always throws TransientError: with quarantine on, every
  // source fails after max_attempts and is recorded, in source order.
  class DeadSink final : public stream::Sink {
   public:
    void push(std::span<const double>) override {
      throw vbr::TransientError("disk full");
    }
    void merge(const Sink&) override {}
    std::unique_ptr<Sink> clone_empty() const override {
      return std::make_unique<DeadSink>();
    }
    void save(std::ostream&) const override {}
    void restore(std::istream&) override {}
    std::size_t count() const override { return 0; }
    const char* kind() const override { return "dead"; }
  };

  auto plan = small_plan();
  plan.num_sources = 3;
  plan.threads = 2;
  DeadSink tap;
  FailurePolicy policy;
  policy.max_attempts = 2;
  policy.quarantine = true;
  const auto out = generate_sources(plan, &tap, policy);
  ASSERT_EQ(out.stats.failures.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(out.stats.failures[i].source_index, i);
    EXPECT_EQ(out.stats.failures[i].attempts, 2u);
    EXPECT_TRUE(out.sources[i].empty());
  }
  EXPECT_EQ(out.stats.frames, 0u);

  // Without quarantine the same run must throw (TransientError is an
  // IoError, and the lowest-index source's exception is the one thrown).
  policy.quarantine = false;
  EXPECT_THROW(generate_sources(plan, &tap, policy), vbr::TransientError);
}

TEST(EngineFailureTest, PermanentFaultsSkipTheRetryLoop) {
  class BrokenSink final : public stream::Sink {
   public:
    void push(std::span<const double>) override {
      throw std::logic_error("estimator bug");
    }
    void merge(const Sink&) override {}
    std::unique_ptr<Sink> clone_empty() const override {
      return std::make_unique<BrokenSink>();
    }
    void save(std::ostream&) const override {}
    void restore(std::istream&) override {}
    std::size_t count() const override { return 0; }
    const char* kind() const override { return "broken"; }
  };

  auto plan = small_plan();
  plan.num_sources = 2;
  BrokenSink tap;
  FailurePolicy policy;
  policy.max_attempts = 5;
  policy.quarantine = true;
  const auto out = generate_sources(plan, &tap, policy);
  ASSERT_EQ(out.stats.failures.size(), 2u);
  EXPECT_EQ(out.stats.failures[0].attempts, 1u);  // no retry for permanent faults
  EXPECT_EQ(out.stats.transient_retries, 0u);
}

}  // namespace
}  // namespace vbr::engine
