// Tests for the parallel generation engine: the determinism guarantee
// (bit-identical output for any thread count), Rng::split() child-stream
// independence, stats accounting, and the aggregate multiplexer feed.
#include "vbr/engine/engine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "vbr/common/error.hpp"
#include "vbr/common/math_util.hpp"
#include "vbr/common/rng.hpp"

namespace vbr::engine {
namespace {

GenerationPlan small_plan() {
  GenerationPlan plan;
  plan.num_sources = 5;
  plan.frames_per_source = 2048;
  plan.seed = 1994;
  plan.params.hurst = 0.8;
  plan.params.marginal.mu_gamma = 27791.0;
  plan.params.marginal.sigma_gamma = 6254.0;
  plan.params.marginal.tail_slope = 12.0;
  return plan;
}

TEST(EngineTest, BitIdenticalAcrossThreadCounts) {
  // Same seed + same plan must give byte-identical traces however the
  // sources are spread over threads. EXPECT_EQ on doubles is exact
  // comparison — precisely the guarantee we advertise.
  auto plan = small_plan();
  plan.threads = 1;
  const auto one = generate_sources(plan);
  plan.threads = 2;
  const auto two = generate_sources(plan);
  plan.threads = 8;
  const auto eight = generate_sources(plan);

  ASSERT_EQ(one.sources.size(), plan.num_sources);
  EXPECT_EQ(one.sources, two.sources);
  EXPECT_EQ(one.sources, eight.sources);
}

TEST(EngineTest, BitIdenticalForEveryVariantAndBackend) {
  for (const auto variant :
       {model::ModelVariant::kFull, model::ModelVariant::kGaussianFarima,
        model::ModelVariant::kIidGammaPareto}) {
    auto plan = small_plan();
    plan.num_sources = 3;
    plan.frames_per_source = 512;
    plan.variant = variant;
    plan.threads = 1;
    const auto serial = generate_sources(plan);
    plan.threads = 4;
    const auto parallel = generate_sources(plan);
    EXPECT_EQ(serial.sources, parallel.sources);
  }
  auto plan = small_plan();
  plan.num_sources = 3;
  plan.frames_per_source = 256;  // Hosking is O(n^2); keep it small
  plan.backend = model::GeneratorBackend::kHosking;
  plan.threads = 1;
  const auto serial = generate_sources(plan);
  plan.threads = 4;
  const auto parallel = generate_sources(plan);
  EXPECT_EQ(serial.sources, parallel.sources);
}

TEST(EngineTest, SourcesAreDistinctStreams) {
  auto plan = small_plan();
  const auto out = generate_sources(plan);
  for (std::size_t i = 0; i < out.sources.size(); ++i) {
    for (std::size_t j = i + 1; j < out.sources.size(); ++j) {
      EXPECT_NE(out.sources[i], out.sources[j]) << "sources " << i << "," << j;
    }
  }
}

TEST(EngineTest, SplitChildStreamsAreUncorrelated) {
  // Smoke test of the Rng::split() independence the engine leans on: the
  // cross-correlation of sibling normal streams should vanish like 1/sqrt(n).
  Rng master(42);
  Rng a = master.split();
  Rng b = master.split();
  const std::size_t n = 1 << 16;
  double sum_ab = 0.0, sum_aa = 0.0, sum_bb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = a.normal();
    const double y = b.normal();
    sum_ab += x * y;
    sum_aa += x * x;
    sum_bb += y * y;
  }
  const double corr = sum_ab / std::sqrt(sum_aa * sum_bb);
  EXPECT_LT(std::abs(corr), 0.02);  // ~5 sigma at n = 65536
}

TEST(EngineTest, StatsAccounting) {
  auto plan = small_plan();
  plan.threads = 2;
  const auto out = generate_sources(plan);
  EXPECT_EQ(out.stats.sources, plan.num_sources);
  EXPECT_EQ(out.stats.frames, plan.num_sources * plan.frames_per_source);
  EXPECT_EQ(out.stats.threads_used, 2u);
  EXPECT_GT(out.stats.bytes, 0.0);
  EXPECT_GT(out.stats.wall_seconds, 0.0);
  EXPECT_GT(out.stats.frames_per_second(), 0.0);
  EXPECT_GT(out.stats.bytes_per_second(), 0.0);

  double bytes = 0.0;
  for (const auto& s : out.sources) bytes += kahan_total(s);
  EXPECT_NEAR(out.stats.bytes, bytes, 1e-6 * bytes);
}

TEST(EngineTest, ThreadsClampToSourceCount) {
  auto plan = small_plan();
  plan.num_sources = 2;
  plan.threads = 16;
  const auto out = generate_sources(plan);
  EXPECT_EQ(out.stats.threads_used, 2u);
}

TEST(EngineTest, AggregateSumsSources) {
  auto plan = small_plan();
  plan.num_sources = 4;
  plan.frames_per_source = 128;
  const auto out = generate_sources(plan);
  const auto total = out.aggregate();
  ASSERT_EQ(total.size(), plan.frames_per_source);
  for (std::size_t f = 0; f < total.size(); ++f) {
    double expected = 0.0;
    for (const auto& s : out.sources) expected += s[f];
    EXPECT_DOUBLE_EQ(total[f], expected);
  }
}

TEST(EngineTest, RejectsEmptyPlan) {
  GenerationPlan plan = small_plan();
  plan.num_sources = 0;
  EXPECT_THROW(generate_sources(plan), vbr::InvalidArgument);
  plan = small_plan();
  plan.frames_per_source = 0;
  EXPECT_THROW(generate_sources(plan), vbr::InvalidArgument);
}

}  // namespace
}  // namespace vbr::engine
