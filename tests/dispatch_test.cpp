// Tests for lease-based multi-pool dispatch: the file-lease primitives
// (claim / heartbeat / steal / release), multi-pool sweeps over a shared
// directory, and fault healing — killed pools, torn tails, and duplicate
// claims must all end at the single-pool fault-free results hash.
#include "vbr/sweep/dispatch.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>

#include "vbr/common/error.hpp"
#include "vbr/sweep/supervisor.hpp"

namespace vbr::sweep {
namespace {

class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_(std::filesystem::temp_directory_path() / ("vbr_dispatch_" + tag)) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
};

/// In-process evaluation keeps fork count down to the pools themselves.
SweepGrid test_grid() {
  SweepGrid grid;
  grid.queues = {QueueKind::kFluid, QueueKind::kFbm};
  grid.hursts = {0.7, 0.8, 0.9};
  grid.utilizations = {0.8, 0.9};
  grid.buffer_ms = {10.0};
  grid.sources = {1};
  grid.frames_per_source = 64;
  grid.seed = 1994;
  return grid;
}

PoolOptions base_pool_options(const TempDir& dir, std::uint64_t shards) {
  PoolOptions options;
  options.sweep_dir = dir.path() / "sweep";
  options.grid = test_grid();
  options.shard_count = shards;
  options.lease.ttl_seconds = 1.0;
  options.lease.heartbeat_seconds = 0.2;
  options.limits.isolate = false;
  options.limits.max_attempts = 3;
  return options;
}

/// The fault-free single-pool reference hash for test_grid().
std::uint64_t reference_hash() {
  SweepOptions options;
  options.grid = test_grid();
  options.limits.isolate = false;
  return run_sweep(options).results_hash;
}

// ---------------------------------------------------------------------------
// Lease primitives

TEST(Lease, ClaimIsExclusiveUntilReleased) {
  TempDir dir("claim");
  const auto lease = dir.path() / "shard.lease";
  EXPECT_EQ(claim_lease(lease, "alpha", 30.0, true), LeaseClaim::kClaimed);
  EXPECT_EQ(claim_lease(lease, "bravo", 30.0, true), LeaseClaim::kHeld);
  EXPECT_TRUE(heartbeat_lease(lease, "alpha"));
  EXPECT_FALSE(heartbeat_lease(lease, "bravo"));

  release_lease(lease, "bravo");  // not the holder: no-op
  EXPECT_TRUE(heartbeat_lease(lease, "alpha"));
  release_lease(lease, "alpha");
  EXPECT_FALSE(heartbeat_lease(lease, "alpha"));
  EXPECT_EQ(claim_lease(lease, "bravo", 30.0, true), LeaseClaim::kClaimed);
}

TEST(Lease, StaleLeaseIsStolenFreshIsNot) {
  TempDir dir("steal");
  const auto lease = dir.path() / "shard.lease";
  ASSERT_EQ(claim_lease(lease, "dead-pool", 30.0, true), LeaseClaim::kClaimed);

  // Fresh: not stealable, even with permission to steal stale ones.
  EXPECT_EQ(claim_lease(lease, "thief", 30.0, true), LeaseClaim::kHeld);

  // Age the lease past its ttl the way a SIGKILLed holder would: its mtime
  // stops advancing.
  std::filesystem::last_write_time(
      lease, std::filesystem::file_time_type::clock::now() - std::chrono::hours(1));
  EXPECT_EQ(claim_lease(lease, "patient", 30.0, /*steal_stale=*/false),
            LeaseClaim::kHeld);
  EXPECT_EQ(claim_lease(lease, "thief", 30.0, true), LeaseClaim::kStolen);

  // The dead pool's token no longer opens the lease.
  EXPECT_FALSE(heartbeat_lease(lease, "dead-pool"));
  EXPECT_TRUE(heartbeat_lease(lease, "thief"));
}

TEST(Lease, DuplicateClaimFaultIgnoresFreshness) {
  TempDir dir("dup");
  const auto lease = dir.path() / "shard.lease";
  ASSERT_EQ(claim_lease(lease, "owner", 30.0, true), LeaseClaim::kClaimed);
  EXPECT_EQ(claim_lease(lease, "rogue", 30.0, true, /*ignore_fresh=*/true),
            LeaseClaim::kStolen);
  EXPECT_FALSE(heartbeat_lease(lease, "owner"));
}

// ---------------------------------------------------------------------------
// Pools end-to-end

TEST(Dispatch, SinglePoolShardedSweepMatchesReferenceHash) {
  TempDir dir("single");
  PoolOptions options = base_pool_options(dir, 3);
  const PoolReport report = run_pool(options);
  EXPECT_TRUE(report.sweep_complete);
  EXPECT_EQ(report.shards_completed, 3u);
  EXPECT_EQ(report.cells_settled, cell_count(options.grid));

  const SweepReport merged =
      collect_sweep(options.sweep_dir, options.grid, options.shard_count);
  EXPECT_EQ(merged.completed, cell_count(options.grid));
  EXPECT_EQ(merged.results_hash, reference_hash());
}

TEST(Dispatch, MultiplePoolsSplitTheWorkAndMatchReferenceHash) {
  TempDir dir("multi");
  PoolOptions options = base_pool_options(dir, 4);
  const MultiPoolReport multi = run_pools(options, 3);
  EXPECT_EQ(multi.pools, 3u);
  EXPECT_EQ(multi.pools_failed, 0u);
  EXPECT_TRUE(multi.sweep_complete);

  const SweepReport merged =
      collect_sweep(options.sweep_dir, options.grid, options.shard_count);
  EXPECT_EQ(merged.results_hash, reference_hash());
}

TEST(Dispatch, KilledPoolWithTornTailIsStolenAndHealed) {
  TempDir dir("killed");
  PoolOptions options = base_pool_options(dir, 4);
  const MultiPoolReport multi =
      run_pools(options, 3, [](std::size_t pool) {
        PoolFaultPlan plan;
        if (pool == 0) {
          plan.kill_after_records = 2;  // SIGKILL mid-shard
          plan.torn_tail_on_kill = true;
        }
        return plan;
      });
  EXPECT_EQ(multi.pools_failed, 1u);
  EXPECT_TRUE(multi.sweep_complete);  // survivors stole the wreckage

  const SweepReport merged =
      collect_sweep(options.sweep_dir, options.grid, options.shard_count);
  EXPECT_EQ(merged.completed, cell_count(options.grid));
  EXPECT_EQ(merged.results_hash, reference_hash());
}

TEST(Dispatch, DuplicateClaimOverlapHealsToReferenceHash) {
  TempDir dir("dupclaim");
  PoolOptions options = base_pool_options(dir, 3);
  const MultiPoolReport multi =
      run_pools(options, 2, [](std::size_t pool) {
        PoolFaultPlan plan;
        plan.duplicate_claim = pool == 1;
        return plan;
      });
  EXPECT_TRUE(multi.sweep_complete);

  const SweepReport merged =
      collect_sweep(options.sweep_dir, options.grid, options.shard_count);
  EXPECT_EQ(merged.results_hash, reference_hash());
}

TEST(Dispatch, InterruptedSweepResumesAcrossInvocations) {
  TempDir dir("resume");
  PoolOptions options = base_pool_options(dir, 4);
  // Every pool dies mid-shard: the sweep cannot complete this invocation.
  const MultiPoolReport first =
      run_pools(options, 2, [](std::size_t) {
        PoolFaultPlan plan;
        plan.kill_after_records = 1;
        plan.torn_tail_on_kill = true;
        return plan;
      });
  EXPECT_EQ(first.pools_failed, 2u);
  EXPECT_FALSE(first.sweep_complete);
  EXPECT_THROW((void)collect_sweep(options.sweep_dir, options.grid, 4), IoError);

  // A fresh fault-free invocation salvages the logs and finishes.
  const MultiPoolReport second = run_pools(options, 2);
  EXPECT_TRUE(second.sweep_complete);
  const SweepReport merged = collect_sweep(options.sweep_dir, options.grid, 4);
  EXPECT_EQ(merged.results_hash, reference_hash());
  EXPECT_GT(merged.resumed_cells + merged.completed, 0u);
}

TEST(Dispatch, MismatchedGridIsRejectedByTheSweepMeta) {
  TempDir dir("meta");
  PoolOptions options = base_pool_options(dir, 2);
  (void)run_pool(options);

  PoolOptions other = options;
  other.grid.seed += 1;
  EXPECT_THROW((void)run_pool(other), IoError);
  EXPECT_THROW((void)collect_sweep(options.sweep_dir, other.grid, 2), IoError);
  // A mismatched shard count is a different partition of the same grid:
  // also rejected (shard fingerprints would not line up).
  EXPECT_THROW((void)collect_sweep(options.sweep_dir, options.grid, 3), IoError);
}

}  // namespace
}  // namespace vbr::sweep
