// Tests for the process-isolated sweep supervisor and its parts: grid
// enumeration and split-seed derivation, pure-function cell evaluation,
// manifest round-trip and corruption rejection, worker frame protocol,
// deterministic fault injection, crash/hang/OOM retry, poison quarantine,
// scheduling-independence of the results hash, and kill/resume determinism
// against the VBRSWPL1 log (a resumed sweep's results hash must equal an
// uninterrupted one's, bit for bit).
#include "vbr/sweep/supervisor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "vbr/common/error.hpp"
#include "vbr/sweep/cell_eval.hpp"
#include "vbr/sweep/manifest.hpp"
#include "vbr/sweep/result_log.hpp"
#include "vbr/sweep/shard.hpp"
#include "vbr/sweep/sweep_plan.hpp"
#include "vbr/sweep/worker.hpp"

namespace vbr::sweep {
namespace {

/// A manifest path under the test temp dir, removed on destruction.
class TempManifest {
 public:
  explicit TempManifest(const std::string& tag)
      : path_(std::filesystem::temp_directory_path() / ("vbr_sweep_" + tag + ".bin")) {
    std::filesystem::remove(path_);
  }
  ~TempManifest() { std::filesystem::remove(path_); }
  const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
};

/// A grid small enough that fork-per-cell tests stay fast.
SweepGrid small_grid() {
  SweepGrid grid;
  grid.queues = {QueueKind::kFluid, QueueKind::kFbm};
  grid.hursts = {0.7, 0.9};
  grid.utilizations = {0.8};
  grid.buffer_ms = {10.0};
  grid.sources = {1};
  grid.frames_per_source = 256;
  grid.seed = 1994;
  return grid;
}

CellResult sample_result() {
  CellResult r;
  r.mean_rate_bps = 5.3e6;
  r.capacity_bps = 6.6e6;
  r.buffer_bytes = 8192.0;
  r.loss_rate = 1.25e-3;
  r.mean_queue_bytes = 900.0;
  r.max_queue_bytes = 8192.0;
  return r;
}

CellRecord done_record(std::uint64_t index) {
  CellRecord record;
  record.cell_index = index;
  record.status = CellStatus::kDone;
  record.result = sample_result();
  return record;
}

CellRecord quarantined_record(std::uint64_t index) {
  CellRecord record;
  record.cell_index = index;
  record.status = CellStatus::kQuarantined;
  record.failure.kind = FailureKind::kHang;
  record.failure.term_signal = SIGKILL;
  record.failure.attempts = 3;
  record.failure.max_rss_kib = 5120;
  record.failure.wall_seconds = 1.5;
  record.failure.message = "watchdog deadline exceeded";
  record.failure.stderr_tail = "some stderr noise";
  return record;
}

SweepManifest sample_manifest() {
  SweepManifest manifest;
  manifest.fingerprint = 0xfeedfacecafebeefULL;
  manifest.total_cells = 6;
  manifest.records.push_back(done_record(0));
  manifest.records.push_back(quarantined_record(2));
  manifest.records.push_back(done_record(5));
  return manifest;
}

// ---------------------------------------------------------------------------
// Grid enumeration and seeds

TEST(SweepPlan, CellCountIsCrossProduct) {
  SweepGrid grid = small_grid();
  EXPECT_EQ(cell_count(grid), 2u * 2u * 1u * 1u * 1u);
  grid.utilizations = {0.5, 0.7, 0.9};
  grid.sources = {1, 4};
  EXPECT_EQ(cell_count(grid), 2u * 2u * 3u * 1u * 2u);
}

TEST(SweepPlan, CellAtEnumeratesRowMajorSourcesFastest) {
  SweepGrid grid = small_grid();
  grid.sources = {1, 4};
  const CellSpec first = cell_at(grid, 0);
  const CellSpec second = cell_at(grid, 1);
  EXPECT_EQ(first.num_sources, 1u);
  EXPECT_EQ(second.num_sources, 4u);
  EXPECT_EQ(first.queue, second.queue);
  EXPECT_EQ(first.hurst, second.hurst);

  const std::size_t cells = cell_count(grid);
  const CellSpec last = cell_at(grid, cells - 1);
  EXPECT_EQ(last.queue, QueueKind::kFbm);
  EXPECT_EQ(last.hurst, 0.9);
  EXPECT_EQ(last.num_sources, 4u);
  EXPECT_EQ(last.cell_index, cells - 1);
}

TEST(SweepPlan, CellSeedsAreDistinctAndDeterministic) {
  SweepGrid grid = small_grid();
  grid.utilizations = {0.5, 0.7, 0.9};
  const std::vector<std::uint64_t> seeds = derive_cell_seeds(grid);
  ASSERT_EQ(seeds.size(), cell_count(grid));
  const std::set<std::uint64_t> unique(seeds.begin(), seeds.end());
  EXPECT_EQ(unique.size(), seeds.size());
  EXPECT_EQ(derive_cell_seeds(grid), seeds);

  grid.seed += 1;
  EXPECT_NE(derive_cell_seeds(grid), seeds);
}

TEST(SweepPlan, FingerprintCoversEverySemanticAxis) {
  const SweepGrid base = small_grid();
  const std::uint64_t fp = sweep_fingerprint(base);
  EXPECT_EQ(sweep_fingerprint(base), fp);

  SweepGrid grid = base;
  grid.hursts[0] = 0.75;
  EXPECT_NE(sweep_fingerprint(grid), fp);
  grid = base;
  grid.seed += 1;
  EXPECT_NE(sweep_fingerprint(grid), fp);
  grid = base;
  grid.frames_per_source += 1;
  EXPECT_NE(sweep_fingerprint(grid), fp);
  grid = base;
  grid.queues = {QueueKind::kFbm, QueueKind::kFluid};
  EXPECT_NE(sweep_fingerprint(grid), fp);
}

TEST(SweepPlan, ValidateRejectsBadGrids) {
  SweepGrid grid = small_grid();
  grid.hursts = {};
  EXPECT_THROW(grid.validate(), InvalidArgument);
  grid = small_grid();
  grid.hursts = {1.5};
  EXPECT_THROW(grid.validate(), InvalidArgument);
  grid = small_grid();
  grid.utilizations = {0.0};
  EXPECT_THROW(grid.validate(), InvalidArgument);
  grid = small_grid();
  grid.buffer_ms = {-1.0};
  EXPECT_THROW(grid.validate(), InvalidArgument);
  grid = small_grid();
  grid.sources = {0};
  EXPECT_THROW(grid.validate(), InvalidArgument);
  grid = small_grid();
  grid.frames_per_source = 1;
  EXPECT_THROW(grid.validate(), InvalidArgument);
}

TEST(SweepPlan, QueueKindNamesRoundTrip) {
  for (QueueKind kind : {QueueKind::kFluid, QueueKind::kCell, QueueKind::kFbm}) {
    EXPECT_EQ(parse_queue_kind(queue_kind_name(kind)), kind);
  }
  EXPECT_THROW(parse_queue_kind("token-bucket"), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Cell evaluation

TEST(CellEval, EvaluationIsDeterministic) {
  SweepGrid grid = small_grid();
  for (std::size_t index = 0; index < cell_count(grid); ++index) {
    CellSpec spec = cell_at(grid, index);
    spec.seed = derive_cell_seeds(grid)[index];
    const CellResult a = evaluate_cell(spec);
    const CellResult b = evaluate_cell(spec);
    EXPECT_EQ(a, b) << "cell " << index;
    EXPECT_GT(a.mean_rate_bps, 0.0);
    EXPECT_GT(a.capacity_bps, a.mean_rate_bps);
  }
}

TEST(CellEval, ResultSerializationRoundTripsExactly) {
  const CellResult result = sample_result();
  std::ostringstream out(std::ios::binary);
  write_cell_result(out, result);
  EXPECT_EQ(out.str().size(), kCellResultBytes);
  std::istringstream in(out.str(), std::ios::binary);
  EXPECT_EQ(read_cell_result(in, "test"), result);
}

// ---------------------------------------------------------------------------
// Manifest round-trip and hostile inputs

TEST(SweepManifestIo, RoundTripsRecordsExactly) {
  const SweepManifest manifest = sample_manifest();
  const std::string bytes = encode_manifest(manifest);
  std::istringstream in(bytes, std::ios::binary);
  const SweepManifest parsed = parse_manifest(in, "roundtrip");

  EXPECT_EQ(parsed.fingerprint, manifest.fingerprint);
  EXPECT_EQ(parsed.total_cells, manifest.total_cells);
  ASSERT_EQ(parsed.records.size(), manifest.records.size());
  EXPECT_EQ(parsed.records[0].status, CellStatus::kDone);
  EXPECT_EQ(parsed.records[0].result, manifest.records[0].result);
  EXPECT_EQ(parsed.records[1].status, CellStatus::kQuarantined);
  EXPECT_EQ(parsed.records[1].failure.kind, FailureKind::kHang);
  EXPECT_EQ(parsed.records[1].failure.term_signal, SIGKILL);
  EXPECT_EQ(parsed.records[1].failure.message, "watchdog deadline exceeded");
  EXPECT_EQ(parsed.records[1].failure.stderr_tail, "some stderr noise");
  EXPECT_EQ(parsed.records[2].cell_index, 5u);
}

TEST(SweepManifestIo, RejectsEveryTruncationPoint) {
  const std::string bytes = encode_manifest(sample_manifest());
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::istringstream in(bytes.substr(0, cut), std::ios::binary);
    EXPECT_THROW(parse_manifest(in, "truncated"), IoError) << "cut at " << cut;
  }
}

TEST(SweepManifestIo, RejectsEveryByteFlip) {
  const std::string bytes = encode_manifest(sample_manifest());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x20);
    std::istringstream in(corrupt, std::ios::binary);
    EXPECT_THROW(parse_manifest(in, "flipped"), IoError) << "flip at " << i;
  }
}

TEST(SweepManifestIo, RejectsNonIncreasingCellIndexes) {
  SweepManifest manifest = sample_manifest();
  manifest.records[1].cell_index = 0;  // duplicates record 0
  const std::string bytes = encode_manifest(manifest);
  std::istringstream in(bytes, std::ios::binary);
  EXPECT_THROW(parse_manifest(in, "dup"), IoError);
}

TEST(SweepManifestIo, RejectsOutOfRangeCellIndex) {
  SweepManifest manifest = sample_manifest();
  manifest.records[2].cell_index = manifest.total_cells;
  const std::string bytes = encode_manifest(manifest);
  std::istringstream in(bytes, std::ios::binary);
  EXPECT_THROW(parse_manifest(in, "range"), IoError);
}

TEST(SweepManifestIo, RejectsTrailingBytes) {
  std::string bytes = encode_manifest(sample_manifest());
  bytes.push_back('\0');
  std::istringstream in(bytes, std::ios::binary);
  EXPECT_THROW(parse_manifest(in, "trailing"), IoError);
}

// ---------------------------------------------------------------------------
// Worker frame protocol

TEST(WorkerFrames, ResultFrameRoundTrips) {
  const CellResult result = sample_result();
  const WorkerMessage message = parse_worker_message(encode_worker_result(result));
  ASSERT_TRUE(message.is_result);
  EXPECT_EQ(message.result, result);
}

TEST(WorkerFrames, FailureFrameRoundTrips) {
  const WorkerMessage message = parse_worker_message(
      encode_worker_failure(FailureKind::kOom, "allocation failed"));
  ASSERT_FALSE(message.is_result);
  EXPECT_EQ(message.kind, FailureKind::kOom);
  EXPECT_EQ(message.message, "allocation failed");
}

TEST(WorkerFrames, RejectsTornAndForgedFrames) {
  const std::string frame = encode_worker_result(sample_result());
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    EXPECT_THROW(parse_worker_message(frame.substr(0, cut)), IoError);
  }
  std::string flipped = frame;
  flipped[frame.size() - 1] = static_cast<char>(flipped[frame.size() - 1] ^ 1);
  EXPECT_THROW(parse_worker_message(flipped), IoError);
  std::string trailing = frame;
  trailing.push_back('x');
  EXPECT_THROW(parse_worker_message(trailing), IoError);
}

// ---------------------------------------------------------------------------
// Fault decisions

TEST(FaultPlan, PoisonAlwaysFires) {
  SweepFaultPlan faults;
  faults.poison = {3};
  for (std::size_t attempt = 1; attempt <= 5; ++attempt) {
    EXPECT_EQ(fault_for_attempt(faults, 3, attempt), InjectedFault::kPoison);
  }
  EXPECT_EQ(fault_for_attempt(faults, 2, 1), InjectedFault::kNone);
}

TEST(FaultPlan, RateFaultsOnlyOnFirstAttempt) {
  SweepFaultPlan faults;
  faults.rate = 1.0;
  faults.seed = 42;
  for (std::uint64_t cell = 0; cell < 16; ++cell) {
    EXPECT_NE(fault_for_attempt(faults, cell, 1), InjectedFault::kNone);
    EXPECT_EQ(fault_for_attempt(faults, cell, 2), InjectedFault::kNone);
  }
}

TEST(FaultPlan, DecisionIsDeterministicAndSeedSensitive) {
  SweepFaultPlan faults;
  faults.rate = 0.5;
  faults.seed = 7;
  std::vector<InjectedFault> first;
  for (std::uint64_t cell = 0; cell < 64; ++cell) {
    first.push_back(fault_for_attempt(faults, cell, 1));
  }
  std::vector<InjectedFault> second;
  for (std::uint64_t cell = 0; cell < 64; ++cell) {
    second.push_back(fault_for_attempt(faults, cell, 1));
  }
  EXPECT_EQ(first, second);

  faults.seed = 8;
  std::vector<InjectedFault> reseeded;
  for (std::uint64_t cell = 0; cell < 64; ++cell) {
    reseeded.push_back(fault_for_attempt(faults, cell, 1));
  }
  EXPECT_NE(first, reseeded);
}

// ---------------------------------------------------------------------------
// Supervisor end-to-end (forks real workers)

SweepOptions base_options(const TempManifest& log) {
  SweepOptions options;
  options.grid = small_grid();
  options.log_path = log.path();
  options.limits.worker.deadline_seconds = 30.0;
  options.limits.max_attempts = 3;
  return options;
}

TEST(Supervisor, CleanSweepCompletesEveryCell) {
  TempManifest manifest("clean");
  SweepOptions options = base_options(manifest);
  std::size_t callbacks = 0;
  options.on_cell_settled = [&](const CellRecord&) { callbacks += 1; };

  const SweepReport report = run_sweep(options);
  EXPECT_EQ(report.total_cells, 4u);
  EXPECT_EQ(report.completed, 4u);
  EXPECT_EQ(report.quarantined, 0u);
  EXPECT_EQ(report.retried_attempts, 0u);
  EXPECT_EQ(callbacks, 4u);
  EXPECT_TRUE(std::filesystem::exists(manifest.path()));

  // Every record's result matches an in-process evaluation of the same spec:
  // process isolation must not change a single bit.
  const std::vector<std::uint64_t> seeds = derive_cell_seeds(options.grid);
  for (const CellRecord& record : report.records) {
    CellSpec spec = cell_at(options.grid, record.cell_index);
    spec.seed = seeds[record.cell_index];
    EXPECT_EQ(record.result, evaluate_cell(spec));
  }
}

TEST(Supervisor, InjectedFaultsAreHealedByRetryBitIdentically) {
  TempManifest clean_manifest("ref");
  SweepOptions clean = base_options(clean_manifest);
  const SweepReport reference = run_sweep(clean);

  TempManifest faulted_manifest("faulted");
  SweepOptions faulted = base_options(faulted_manifest);
  faulted.limits.worker.deadline_seconds = 3.0;
  faulted.limits.worker.memory_bytes = std::uint64_t{512} << 20;
  faulted.faults.rate = 1.0;  // every cell's first attempt faults
  faulted.faults.seed = 42;
  const SweepReport report = run_sweep(faulted);

  EXPECT_EQ(report.completed, report.total_cells);
  EXPECT_GE(report.retried_attempts, report.total_cells);
  EXPECT_EQ(report.results_hash, reference.results_hash);
}

TEST(Supervisor, PoisonCellIsQuarantinedWithoutBlockingOthers) {
  TempManifest manifest("poison");
  SweepOptions options = base_options(manifest);
  options.faults.poison = {1};

  const SweepReport report = run_sweep(options);
  EXPECT_EQ(report.completed, report.total_cells - 1);
  EXPECT_EQ(report.quarantined, 1u);
  const CellRecord& bad = report.records[1];
  EXPECT_EQ(bad.cell_index, 1u);
  EXPECT_EQ(bad.status, CellStatus::kQuarantined);
  EXPECT_EQ(bad.failure.kind, FailureKind::kError);
  // Deterministic errors must not burn the retry budget.
  EXPECT_EQ(bad.failure.attempts, 1u);
  EXPECT_NE(bad.failure.message.find("poison"), std::string::npos);
}

TEST(Supervisor, CrashOnFirstAttemptIsRetriedAndHealed) {
  TempManifest manifest("crashy");
  SweepOptions options = base_options(manifest);
  options.grid.queues = {QueueKind::kFbm};
  options.grid.hursts = {0.8};
  options.limits.max_attempts = 2;
  options.faults.rate = 1.0;
  options.faults.hang = false;
  options.faults.oom = false;

  const SweepReport report = run_sweep(options);
  EXPECT_EQ(report.completed, 1u);
  EXPECT_EQ(report.retried_attempts, 1u);
  EXPECT_EQ(report.quarantined, 0u);
}

TEST(Supervisor, HangIsKilledByWatchdogAndRetried) {
  TempManifest manifest("hang");
  SweepOptions options = base_options(manifest);
  options.grid.queues = {QueueKind::kFbm};
  options.grid.hursts = {0.8};
  options.limits.worker.deadline_seconds = 1.0;
  options.faults.rate = 1.0;
  options.faults.crash = false;
  options.faults.oom = false;

  const SweepReport report = run_sweep(options);
  EXPECT_EQ(report.completed, 1u);
  EXPECT_EQ(report.retried_attempts, 1u);
}

TEST(Supervisor, OomUnderMemoryCeilingIsRetried) {
  TempManifest manifest("oom");
  SweepOptions options = base_options(manifest);
  options.grid.queues = {QueueKind::kFbm};
  options.grid.hursts = {0.8};
  options.limits.worker.memory_bytes = std::uint64_t{512} << 20;
  options.faults.rate = 1.0;
  options.faults.crash = false;
  options.faults.hang = false;

  const SweepReport report = run_sweep(options);
  EXPECT_EQ(report.completed, 1u);
  EXPECT_EQ(report.retried_attempts, 1u);
}

TEST(Supervisor, ResumeSalvagesSettledCellsBitIdentically) {
  TempManifest reference_log("resume_ref");
  SweepOptions reference_options = base_options(reference_log);
  const SweepReport reference = run_sweep(reference_options);

  // Simulate a supervisor killed mid-sweep: a log holding only the first
  // two settled records.
  TempManifest partial("resume_partial");
  {
    ResultLogWriter writer = ResultLogWriter::create(
        partial.path(), shard_log_header(reference_options.grid, 1, 0), false);
    writer.append(reference.records[0]);
    writer.append(reference.records[1]);
    writer.close();
  }

  SweepOptions resumed_options = base_options(partial);
  resumed_options.resume = true;
  const SweepReport resumed = run_sweep(resumed_options);

  EXPECT_EQ(resumed.resumed_cells, 2u);
  EXPECT_EQ(resumed.completed, reference.completed);
  EXPECT_EQ(resumed.results_hash, reference.results_hash);

  // The resumed log recovers to the full record set.
  const auto healed =
      recover_result_log(partial.path(), shard_log_header(reference_options.grid, 1, 0));
  ASSERT_TRUE(healed.has_value());
  EXPECT_EQ(healed->records.size(), reference.records.size());
  EXPECT_EQ(healed->torn_bytes, 0u);
}

TEST(Supervisor, ResumeSalvagesThroughATornTail) {
  TempManifest reference_log("torn_ref");
  SweepOptions reference_options = base_options(reference_log);
  const SweepReport reference = run_sweep(reference_options);

  // A log killed mid-append: two whole records, then half a frame header.
  TempManifest torn("torn_partial");
  {
    ResultLogWriter writer = ResultLogWriter::create(
        torn.path(), shard_log_header(reference_options.grid, 1, 0), false);
    writer.append(reference.records[0]);
    writer.append(reference.records[1]);
    writer.close();
    std::ofstream tail(torn.path(), std::ios::binary | std::ios::app);
    tail.write("\x40\x00\x00\x00\x00\x00\x00", 7);
  }

  SweepOptions resumed_options = base_options(torn);
  resumed_options.resume = true;
  const SweepReport resumed = run_sweep(resumed_options);
  EXPECT_EQ(resumed.resumed_cells, 2u);
  EXPECT_EQ(resumed.results_hash, reference.results_hash);
}

TEST(Supervisor, ResumeRejectsLogFromDifferentGridNamingBothFingerprints) {
  TempManifest log("fingerprint");
  SweepOptions options = base_options(log);
  (void)run_sweep(options);

  SweepOptions other = options;
  other.grid.hursts = {0.6, 0.85};
  other.resume = true;
  try {
    (void)run_sweep(other);
    FAIL() << "mismatched grid must not resume";
  } catch (const IoError& e) {
    // Fail-fast diagnostics must name BOTH identities: the grid the caller
    // asked for and the grid the log actually belongs to.
    char expected[17];
    char found[17];
    std::snprintf(expected, sizeof expected, "%016llx",
                  static_cast<unsigned long long>(sweep_fingerprint(other.grid)));
    std::snprintf(found, sizeof found, "%016llx",
                  static_cast<unsigned long long>(sweep_fingerprint(options.grid)));
    const std::string what = e.what();
    EXPECT_NE(what.find(expected), std::string::npos) << what;
    EXPECT_NE(what.find(found), std::string::npos) << what;
  }
}

TEST(Supervisor, UnsafeFaultPlansAreRejected) {
  TempManifest manifest("unsafe");
  SweepOptions options = base_options(manifest);
  options.faults.rate = 0.5;
  options.faults.crash = false;
  options.faults.hang = false;
  options.faults.oom = true;  // but no memory ceiling
  EXPECT_THROW(run_sweep(options), InvalidArgument);

  options.faults.oom = false;
  options.faults.hang = true;
  options.limits.worker.deadline_seconds = 0.0;  // but no watchdog
  EXPECT_THROW(run_sweep(options), InvalidArgument);
}

TEST(Supervisor, RetryBackoffDoesNotBlockOtherCells) {
  // Find a fault seed under which cell 0 faults on its first attempt and
  // cell 1 does not (the rate decision is deterministic per seed).
  SweepFaultPlan faults;
  faults.rate = 0.5;
  faults.hang = false;
  faults.oom = false;
  for (faults.seed = 1; faults.seed < 10000; ++faults.seed) {
    if (fault_for_attempt(faults, 0, 1) != InjectedFault::kNone &&
        fault_for_attempt(faults, 1, 1) == InjectedFault::kNone) {
      break;
    }
  }
  ASSERT_NE(fault_for_attempt(faults, 0, 1), InjectedFault::kNone);
  ASSERT_EQ(fault_for_attempt(faults, 1, 1), InjectedFault::kNone);

  const SweepGrid grid = small_grid();
  SweepLimits limits;
  limits.worker.deadline_seconds = 30.0;
  limits.max_attempts = 3;
  limits.backoff_seconds = 1.0;  // long enough that blocking would reorder

  std::vector<std::uint64_t> settle_order;
  std::vector<CellRecord> settled;
  SettleStats stats;
  settle_cells(grid, {0, 1}, limits, faults,
               [&](const CellRecord& record) {
                 settle_order.push_back(record.cell_index);
                 settled.push_back(record);
                 return true;
               },
               {}, &stats);

  // Cell 0's retry waits out a 1 s backoff; a requeue-with-due-time
  // scheduler settles cell 1 meanwhile, a blocking sleep would not.
  ASSERT_EQ(settle_order.size(), 2u);
  EXPECT_EQ(settle_order[0], 1u);
  EXPECT_EQ(settle_order[1], 0u);
  EXPECT_EQ(stats.retried_attempts, 1u);

  // Scheduling must be invisible in the results: the hash of the settled
  // records equals a fault-free, backoff-free settle of the same cells.
  std::vector<CellRecord> reference;
  SweepLimits plain;
  plain.worker.deadline_seconds = 30.0;
  settle_cells(grid, {0, 1}, plain, SweepFaultPlan{},
               [&](const CellRecord& record) {
                 reference.push_back(record);
                 return true;
               });
  std::sort(settled.begin(), settled.end(),
            [](const CellRecord& a, const CellRecord& b) {
              return a.cell_index < b.cell_index;
            });
  EXPECT_EQ(results_hash(settled), results_hash(reference));
}

TEST(Supervisor, ResultsHashIgnoresNondeterministicDiagnostics) {
  std::vector<CellRecord> a{done_record(0), quarantined_record(1)};
  std::vector<CellRecord> b{done_record(0), quarantined_record(1)};
  b[1].failure.max_rss_kib += 1234;
  b[1].failure.wall_seconds *= 2.0;
  b[1].failure.stderr_tail = "different noise";
  EXPECT_EQ(results_hash(a), results_hash(b));

  b[1].status = CellStatus::kDone;
  EXPECT_NE(results_hash(a), results_hash(b));
}

}  // namespace
}  // namespace vbr::sweep
