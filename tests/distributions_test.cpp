// Unit tests for the parametric distributions of Section 3.1: pdf/cdf
// consistency, quantile round trips, moment formulas, sampling, and the
// paper's fitting rules.
#include "vbr/stats/distributions.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "vbr/common/error.hpp"
#include "vbr/common/math_util.hpp"

namespace vbr::stats {
namespace {

// Numerical derivative of the CDF should equal the pdf.
void expect_pdf_is_cdf_derivative(const Distribution& d, double x, double tol) {
  const double h = 1e-6 * std::max(1.0, std::abs(x));
  const double derivative = (d.cdf(x + h) - d.cdf(x - h)) / (2.0 * h);
  EXPECT_NEAR(derivative, d.pdf(x), tol) << d.name() << " at x=" << x;
}

TEST(NormalDistributionTest, KnownValues) {
  NormalDistribution n(0.0, 1.0);
  EXPECT_NEAR(n.pdf(0.0), 1.0 / std::sqrt(2.0 * M_PI), 1e-12);
  EXPECT_NEAR(n.cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(n.quantile(0.975), 1.959963984540054, 1e-9);
  EXPECT_DOUBLE_EQ(n.mean(), 0.0);
  EXPECT_DOUBLE_EQ(n.variance(), 1.0);
}

TEST(NormalDistributionTest, PdfMatchesCdfSlope) {
  NormalDistribution n(5.0, 2.0);
  for (double x : {1.0, 3.0, 5.0, 7.0, 10.0}) expect_pdf_is_cdf_derivative(n, x, 1e-6);
}

TEST(GammaDistributionTest, PaperParameterization) {
  // Paper Eq. (14): f(x) = e^{-lambda x} lambda (lambda x)^{s-1} / Gamma(s).
  const double s = 2.0;
  const double lambda = 0.5;
  GammaDistribution g(s, lambda);
  for (double x : {0.5, 1.0, 4.0, 10.0}) {
    const double expected =
        std::exp(-lambda * x) * lambda * std::pow(lambda * x, s - 1.0) / std::tgamma(s);
    EXPECT_NEAR(g.pdf(x), expected, 1e-12);
  }
  EXPECT_DOUBLE_EQ(g.mean(), s / lambda);
  EXPECT_DOUBLE_EQ(g.variance(), s / (lambda * lambda));
  EXPECT_DOUBLE_EQ(g.pdf(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(g.cdf(0.0), 0.0);
}

TEST(GammaDistributionTest, QuantileRoundTrip) {
  GammaDistribution g(19.75, 7.1e-4);  // roughly the paper's body fit
  for (double p : {0.001, 0.1, 0.5, 0.9, 0.999}) {
    EXPECT_NEAR(g.cdf(g.quantile(p)), p, 1e-9) << "p=" << p;
  }
}

TEST(GammaDistributionTest, MomentFitRecoversParameters) {
  const auto g = GammaDistribution::fit_moments(27791.0, 6254.0 * 6254.0);
  EXPECT_NEAR(g.mean(), 27791.0, 1e-6);
  EXPECT_NEAR(g.variance(), 6254.0 * 6254.0, 1e-3);
  EXPECT_NEAR(g.shape(), 27791.0 * 27791.0 / (6254.0 * 6254.0), 1e-9);
}

TEST(GammaDistributionTest, FitFromSamples) {
  Rng rng(5);
  GammaDistribution truth(4.0, 0.01);
  std::vector<double> data(100000);
  for (auto& v : data) v = truth.sample(rng);
  const auto fitted = GammaDistribution::fit(data);
  EXPECT_NEAR(fitted.shape(), 4.0, 0.15);
  EXPECT_NEAR(fitted.rate(), 0.01, 0.0005);
}

TEST(LognormalDistributionTest, MomentsAndRoundTrip) {
  LognormalDistribution ln(2.0, 0.5);
  EXPECT_NEAR(ln.mean(), std::exp(2.0 + 0.125), 1e-9);
  for (double p : {0.01, 0.5, 0.99}) {
    EXPECT_NEAR(ln.cdf(ln.quantile(p)), p, 1e-10);
  }
  EXPECT_DOUBLE_EQ(ln.pdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(ln.cdf(0.0), 0.0);
}

TEST(LognormalDistributionTest, FitRecoversLogMoments) {
  Rng rng(6);
  LognormalDistribution truth(3.0, 0.4);
  std::vector<double> data(100000);
  for (auto& v : data) v = truth.sample(rng);
  const auto fitted = LognormalDistribution::fit(data);
  EXPECT_NEAR(fitted.mu_log(), 3.0, 0.01);
  EXPECT_NEAR(fitted.sigma_log(), 0.4, 0.01);
}

TEST(ParetoDistributionTest, ClosedForms) {
  // Paper Eqs. (15)-(16).
  ParetoDistribution p(2.0, 3.0);
  EXPECT_DOUBLE_EQ(p.cdf(2.0), 0.0);
  EXPECT_NEAR(p.cdf(4.0), 1.0 - std::pow(0.5, 3.0), 1e-12);
  EXPECT_NEAR(p.pdf(4.0), 3.0 * 8.0 / std::pow(4.0, 4.0), 1e-12);
  EXPECT_NEAR(p.mean(), 3.0, 1e-12);
  EXPECT_NEAR(p.variance(), 3.0 * 4.0 / (4.0 * 1.0), 1e-12);
  for (double q : {0.1, 0.5, 0.99}) EXPECT_NEAR(p.cdf(p.quantile(q)), q, 1e-12);
}

TEST(ParetoDistributionTest, InfiniteMomentsFlagged) {
  EXPECT_TRUE(std::isinf(ParetoDistribution(1.0, 0.9).mean()));
  EXPECT_TRUE(std::isinf(ParetoDistribution(1.0, 1.5).variance()));
}

TEST(ParetoDistributionTest, TailFitRecoversIndexFromParetoSample) {
  Rng rng(7);
  ParetoDistribution truth(100.0, 2.5);
  std::vector<double> data(200000);
  for (auto& v : data) v = truth.sample(rng);
  const auto fitted = ParetoDistribution::fit_tail(data, 0.2);
  EXPECT_NEAR(fitted.a(), 2.5, 0.2);
}

TEST(ParetoDistributionTest, LogLogCcdfIsStraightLine) {
  // The defining property used in Fig. 4.
  ParetoDistribution p(50.0, 4.0);
  const double x1 = 100.0;
  const double x2 = 1000.0;
  const double slope = (std::log(p.ccdf(x2)) - std::log(p.ccdf(x1))) /
                       (std::log(x2) - std::log(x1));
  EXPECT_NEAR(slope, -4.0, 1e-10);
}

TEST(DistributionSamplingTest, InverseCdfSamplingMatchesMoments) {
  Rng rng(9);
  std::vector<std::unique_ptr<Distribution>> dists;
  dists.push_back(std::make_unique<NormalDistribution>(10.0, 3.0));
  dists.push_back(std::make_unique<GammaDistribution>(5.0, 0.2));
  dists.push_back(std::make_unique<LognormalDistribution>(1.0, 0.3));
  dists.push_back(std::make_unique<ParetoDistribution>(10.0, 5.0));
  for (const auto& d : dists) {
    std::vector<double> xs(50000);
    for (auto& x : xs) x = d->sample(rng);
    EXPECT_NEAR(sample_mean(xs), d->mean(), 0.05 * d->mean() + 0.05) << d->name();
  }
}

// Heavier-tail ordering at large x: Normal < Gamma < Lognormal < Pareto when
// matched to the same mean/variance — exactly the Fig. 4 story.
TEST(TailComparisonTest, ParetoDominatesAtExtremeQuantiles) {
  const double mu = 27791.0;
  const double sigma = 6254.0;
  NormalDistribution normal(mu, sigma);
  const auto gamma = GammaDistribution::fit_moments(mu, sigma * sigma);
  const double far = mu + 8.0 * sigma;  // the paper's observed peak region
  ParetoDistribution pareto(mu, 10.0);
  EXPECT_GT(pareto.ccdf(far), gamma.ccdf(far));
  EXPECT_GT(gamma.ccdf(far), normal.ccdf(far));
}

}  // namespace
}  // namespace vbr::stats
