#!/usr/bin/env python3
"""Fixture harness for vbr_analyze.

Each fixture is a deliberately-broken (or deliberately-clean) snippet. Its
first line maps it to a pretend in-tree path so the analyzer's directory
scoping applies, and every line that should be flagged carries a marker:

    // VIOLATION(vbr-rule)

The harness runs `vbr_analyze --fixture <file> --json` and requires the
multiset of reported rules to equal the multiset of marked rules — a fixture
must trip exactly its rule(s) and nothing else, and clean fixtures must stay
silent.

Usage: run_fixtures.py <path-to-vbr_analyze> [fixtures-dir]
"""
import json
import pathlib
import re
import subprocess
import sys
from collections import Counter

MARKER = re.compile(r"VIOLATION\(([a-z-]+)\)")


def expected_rules(path: pathlib.Path) -> Counter:
    counts: Counter = Counter()
    for line in path.read_text().splitlines():
        for rule in MARKER.findall(line):
            counts[rule] += 1
    return counts


def main() -> int:
    if len(sys.argv) < 2:
        print("usage: run_fixtures.py <vbr_analyze> [fixtures-dir]", file=sys.stderr)
        return 2
    binary = sys.argv[1]
    fixture_dir = (
        pathlib.Path(sys.argv[2])
        if len(sys.argv) > 2
        else pathlib.Path(__file__).resolve().parent
    )
    fixtures = sorted(
        p
        for p in fixture_dir.iterdir()
        if p.suffix in (".cpp", ".hpp") and p.is_file()
    )
    if not fixtures:
        print(f"run_fixtures: no fixtures found in {fixture_dir}", file=sys.stderr)
        return 2

    failures = 0
    for fixture in fixtures:
        proc = subprocess.run(
            [binary, "--fixture", str(fixture), "--json"],
            capture_output=True,
            text=True,
        )
        if proc.returncode >= 126:
            print(f"FAIL {fixture.name}: analyzer error\n{proc.stderr}", file=sys.stderr)
            failures += 1
            continue
        got = Counter(f["rule"] for f in json.loads(proc.stdout))
        want = expected_rules(fixture)
        if got != want:
            print(
                f"FAIL {fixture.name}: expected {dict(want) or 'no findings'}, "
                f"got {dict(got) or 'no findings'}",
                file=sys.stderr,
            )
            for line in proc.stdout.splitlines():
                print(f"  {line}", file=sys.stderr)
            failures += 1
        else:
            print(f"ok   {fixture.name}: {sum(want.values())} expected finding(s)")

    if failures:
        print(f"{failures}/{len(fixtures)} fixtures failed", file=sys.stderr)
        return 1
    print(f"all {len(fixtures)} fixtures behaved")
    return 0


if __name__ == "__main__":
    sys.exit(main())
