// vbr-analyze-fixture: src/vbr/common/fixture_pragma_once.hpp
// Headers must open with #pragma once. This one does not.
// VIOLATION(vbr-pragma-once)

namespace vbr {
inline int answer() { return 42; }
}  // namespace vbr
