// vbr-analyze-fixture: src/vbr/engine/fixture_fork_outside.cpp
// Process isolation lives behind the sweep supervisor; nothing else forks.
#include <unistd.h>

int spawn_things() {
  const pid_t pid = ::fork();  // VIOLATION(vbr-fork-safety)
  return pid == 0 ? 1 : 0;
}
