// vbr-analyze-fixture: src/vbr/sweep/fixture_fork_no_exit.cpp
// A fork child that can fall off the end of its block returns into the
// parent's control flow: two processes then run the same code.
#include <unistd.h>

void spawn_worker(int fd) {
  const pid_t pid = ::fork();
  if (pid == 0) {  // VIOLATION(vbr-fork-safety)
    ::close(fd);
  }
}
