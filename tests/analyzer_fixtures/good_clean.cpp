// vbr-analyze-fixture: src/vbr/stats/fixture_clean.cpp
// A well-behaved stats file: contracts validated before use, no flagged
// constructs anywhere.
#include <cmath>

#define VBR_ENSURE(expr, msg) ((expr) ? (void)0 : throw(msg))

namespace vbr::stats {

double hurst_to_beta(double hurst) {
  VBR_ENSURE(hurst > 0.0 && hurst < 1.0, "H must be in (0, 1)");
  return 2.0 * hurst - 1.0;
}

}  // namespace vbr::stats
