// vbr-analyze-fixture: src/vbr/common/fixture_mutable_static.cpp
// Mutable static state is the signgam bug class: invisible cross-thread
// coupling that breaks run-to-run determinism.

namespace vbr {

int next_id() {
  static int counter = 0;  // VIOLATION(vbr-mutable-static)
  return ++counter;
}

}  // namespace vbr
