// vbr-analyze-fixture: src/vbr/stream/fixture_naive_accumulation.cpp
// Long-running floating-point += reductions in the streaming layer must use
// the Kahan/pairwise helpers.
#include <cstddef>
#include <span>

namespace vbr::stream {

double plain_total(std::span<const double> values) {
  double total = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    total += values[i];  // VIOLATION(vbr-naive-accumulation)
  }
  return total;
}

}  // namespace vbr::stream
