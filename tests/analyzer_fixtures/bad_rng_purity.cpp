// vbr-analyze-fixture: src/vbr/stats/fixture_rng_purity.cpp
// All randomness flows from the seeded vbr::Rng; stdlib engines appear only
// inside src/vbr/common/rng.cpp.
#include <random>

namespace vbr::stats {

double noisy() {
  std::mt19937 gen(42);  // VIOLATION(vbr-rng-purity)
  return static_cast<double>(gen());
}

}  // namespace vbr::stats
