// vbr-analyze-fixture: src/vbr/sweep/fixture_fork_child_alloc.cpp
// Allocation between fork()==0 and _exit is not async-signal-safe: the
// child may deadlock on a malloc arena lock held by a parent thread.
#include <unistd.h>

void spawn_worker(int fd) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::close(fd);
    void* scratch = malloc(4096);  // VIOLATION(vbr-fork-safety)
    ::write(1, scratch, 1);
    ::_exit(0);
  }
}
