// vbr-analyze-fixture: src/vbr/stats/fixture_contract_coverage.cpp
// Public stats/model entry points must validate hurst / probability /
// length parameters before using them.
#include <cmath>

namespace vbr::stats {

double scaled_hurst(double hurst, double weight) {
  return weight * std::pow(2.0, 2.0 * hurst - 1.0);  // VIOLATION(vbr-contract-coverage)
}

}  // namespace vbr::stats
