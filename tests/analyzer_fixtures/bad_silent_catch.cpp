// vbr-analyze-fixture: src/vbr/service/fixture_silent_catch.cpp
// Catch handlers on the service/run fault-isolation path must rethrow or
// record a structured failure; log-and-continue (or swallow-and-continue)
// turns a stream fault into silent data loss.
#include <cstdio>
#include <exception>

namespace vbr::service {

void drain_stream() {}

void swallow_everything() {
  try {
    drain_stream();
  } catch (const std::exception& e) {  // VIOLATION(vbr-silent-catch)
    std::fprintf(stderr, "oops: %s\n", e.what());
  }
}

void swallow_silently() {
  try {
    drain_stream();
  } catch (...) {  // VIOLATION(vbr-silent-catch)
  }
}

}  // namespace vbr::service
