// vbr-analyze-fixture: src/vbr/common/fixture_suppression_no_justification.cpp
// A NOLINT without a written justification is rejected AND does not
// suppress — both the meta finding and the underlying finding fire.

namespace vbr {

int* leak(int n) {
  return new int[n];  // NOLINT(vbr-naked-new) VIOLATION(vbr-suppression) VIOLATION(vbr-naked-new)
}

}  // namespace vbr
