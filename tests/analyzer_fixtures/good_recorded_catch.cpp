// vbr-analyze-fixture: src/vbr/service/fixture_recorded_catch.cpp
// The three sanctioned shapes for a catch handler on the fault-isolation
// path: rethrow, record a structured failure, or carry a justified NOLINT.
#include <exception>
#include <string>

namespace vbr::service {

struct StreamFailure {
  std::string error;
};

void drain_stream() {}
void record_failure(StreamFailure) {}

void rethrows() {
  try {
    drain_stream();
  } catch (const std::exception&) {
    throw;
  }
}

void records() {
  try {
    drain_stream();
  } catch (const std::exception& e) {
    record_failure(StreamFailure{e.what()});
  }
}

bool probe_optional_feature() {
  try {
    drain_stream();
    return true;
    // NOLINTNEXTLINE(vbr-silent-catch): feature probe; absence is an answer, not a fault.
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace vbr::service
