// vbr-analyze-fixture: src/vbr/common/fixture_suppression_blanket.cpp
// A blanket NOLINT (no rule list) is rejected and suppresses nothing.

namespace vbr {

int* leak(int n) {
  return new int[n];  // NOLINT VIOLATION(vbr-suppression) VIOLATION(vbr-naked-new)
}

}  // namespace vbr
