// vbr-analyze-fixture: src/vbr/common/fixture_naked_new.cpp
// Ownership goes through containers and smart pointers, never naked new.

namespace vbr {

int* make_buffer(int n) {
  return new int[n];  // VIOLATION(vbr-naked-new)
}

}  // namespace vbr
