// vbr-analyze-fixture: src/vbr/common/fixture_raw_string.cpp
// Violation-shaped text inside string literals must never trip a rule —
// this is the false-positive class the token-aware lexer exists to kill.

namespace vbr {

const char* lint_documentation() {
  return R"doc(
    Forbidden patterns include std::mt19937 gen(42), new int[n],
    std::lgamma(x), static int counter, and std::ofstream out(path).
    None of these may appear outside their allowlisted homes.
  )doc";
}

const char* tricky_escapes() {
  return "static int counter = 0; // new int[8] \" std::mt19937";
}

}  // namespace vbr
