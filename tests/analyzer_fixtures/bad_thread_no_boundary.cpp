// vbr-analyze-fixture: src/vbr/engine/fixture_thread_no_boundary.cpp
// An exception escaping a thread entry point calls std::terminate; every
// entry must be noexcept or wrap its body in catch-and-report.
#include <thread>
#include <vector>

namespace vbr {

void risky_work(std::size_t i);

void launch(std::size_t workers) {
  std::vector<std::thread> pool;
  for (std::size_t i = 0; i < workers; ++i) {
    pool.emplace_back([i]() { risky_work(i); });  // VIOLATION(vbr-thread-boundary)
  }
  for (auto& t : pool) t.join();
}

}  // namespace vbr
