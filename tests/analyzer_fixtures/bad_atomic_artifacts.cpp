// vbr-analyze-fixture: bench/fixture_atomic_artifacts.cpp
// Artifact writes go through vbr::write_file_atomic so a crash can never
// leave a torn file behind.
#include <fstream>

void dump_results(const char* path) {
  std::ofstream out(path);  // VIOLATION(vbr-atomic-artifacts)
  out << "hurst 0.8\n";
}
