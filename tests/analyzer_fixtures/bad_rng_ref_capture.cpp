// vbr-analyze-fixture: src/vbr/engine/fixture_rng_ref_capture.cpp
// One Rng shared by reference across pool tasks makes draw order depend on
// thread scheduling — the determinism contract (bit-identical traces for
// any thread count) dies here.
#include <cstddef>

namespace vbr {
class Rng {
 public:
  double uniform();
  Rng split(std::size_t stream) const;
};

void parallel_for_index(std::size_t count, std::size_t threads, auto body);

void shuffle_all(std::size_t count, std::size_t threads) {
  Rng rng = Rng();
  parallel_for_index(count, threads, [&rng](std::size_t i) {  // VIOLATION(vbr-rng-discipline)
    (void)i;
    (void)rng.uniform();
  });
}

}  // namespace vbr
