// vbr-analyze-fixture: src/vbr/stats/fixture_lgamma.cpp
// Bare lgamma writes the global signgam — a data race under the pool.
#include <cmath>

namespace vbr::stats {

double log_gamma_ratio(double a, double b) {
  return std::lgamma(a) - std::lgamma(b);  // VIOLATION(vbr-lgamma-reentrancy) VIOLATION(vbr-lgamma-reentrancy)
}

}  // namespace vbr::stats
