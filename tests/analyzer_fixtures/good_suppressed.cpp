// vbr-analyze-fixture: src/vbr/common/fixture_suppressed.cpp
// A correctly-formed suppression — named rule plus written justification —
// silences the finding and produces no meta finding.

namespace vbr {

int* arena_block(int n) {
  // NOLINTNEXTLINE(vbr-naked-new): fixture for the arena idiom; ownership is transferred to the pool on the next line in real code.
  return new int[n];
}

}  // namespace vbr
