// Tests for the Q-C analysis engine behind Figs. 14-16: required-capacity
// bisection, curve monotonicity, multiplexing gain, and knee detection.
#include "vbr/net/qc_analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "vbr/common/error.hpp"
#include "vbr/common/rng.hpp"

namespace vbr::net {
namespace {

// A bursty synthetic trace shaped like frame-size data (positive, CoV ~0.3).
std::vector<double> bursty_trace(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> trace(n);
  double level = 27791.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.uniform() < 0.01) level = rng.uniform(15000.0, 45000.0);  // scene changes
    trace[i] = std::max(1000.0, level + rng.normal(0.0, 3000.0));
  }
  return trace;
}

MuxExperiment experiment(std::size_t sources) {
  MuxExperiment e;
  e.sources = sources;
  e.replications = 3;
  e.min_lag_separation = 100;
  return e;
}

TEST(MuxWorkloadTest, RatesExposed) {
  const auto trace = bursty_trace(20000, 1);
  const MuxWorkload workload(trace, experiment(2));
  EXPECT_GT(workload.source_peak_rate_bps(), workload.source_mean_rate_bps());
  EXPECT_EQ(workload.sources(), 2u);
  EXPECT_EQ(workload.replications(), 3u);
  EXPECT_EQ(workload.intervals_per_second(), 24u);
}

TEST(MuxWorkloadTest, SingleSourceUsesOneReplication) {
  const auto trace = bursty_trace(10000, 2);
  const MuxWorkload workload(trace, experiment(1));
  EXPECT_EQ(workload.replications(), 1u);
}

TEST(MuxWorkloadTest, LossDecreasesWithCapacity) {
  const auto trace = bursty_trace(20000, 3);
  const MuxWorkload workload(trace, experiment(1));
  double prev = 1.0;
  for (double factor : {1.0, 1.1, 1.3, 1.6}) {
    const auto qos =
        workload.evaluate(workload.source_mean_rate_bps() * factor, 0.002);
    EXPECT_LE(qos.overall_loss, prev + 1e-12);
    EXPECT_GE(qos.wes_loss, qos.overall_loss);  // WES is a max over windows
    prev = qos.overall_loss;
  }
}

TEST(RequiredCapacityTest, ZeroLossTargetBoundsByPeak) {
  const auto trace = bursty_trace(20000, 4);
  const MuxWorkload workload(trace, experiment(1));
  const double c = required_capacity_bps(workload, 0.002, 0.0, QosMeasure::kOverallLoss);
  // Zero loss at small buffer needs nearly peak; certainly above mean.
  EXPECT_GT(c, workload.source_mean_rate_bps());
  EXPECT_LE(c, workload.source_peak_rate_bps() * 1.01);
  // And it indeed achieves zero loss.
  EXPECT_DOUBLE_EQ(workload.evaluate(c, 0.002).overall_loss, 0.0);
}

TEST(RequiredCapacityTest, LooserTargetNeedsLessCapacity) {
  const auto trace = bursty_trace(20000, 5);
  const MuxWorkload workload(trace, experiment(1));
  const double c0 = required_capacity_bps(workload, 0.002, 0.0, QosMeasure::kOverallLoss);
  const double c4 = required_capacity_bps(workload, 0.002, 1e-4, QosMeasure::kOverallLoss);
  const double c2 = required_capacity_bps(workload, 0.002, 1e-2, QosMeasure::kOverallLoss);
  EXPECT_GE(c0, c4);
  EXPECT_GE(c4, c2);
  // The achieved loss honors the target.
  EXPECT_LE(workload.evaluate(c4, 0.002).overall_loss, 1e-4);
}

TEST(RequiredCapacityTest, BiggerBufferNeedsLessCapacity) {
  const auto trace = bursty_trace(20000, 6);
  const MuxWorkload workload(trace, experiment(1));
  const double c_small =
      required_capacity_bps(workload, 0.0005, 1e-4, QosMeasure::kOverallLoss);
  const double c_large =
      required_capacity_bps(workload, 0.5, 1e-4, QosMeasure::kOverallLoss);
  EXPECT_GT(c_small, c_large);
}

TEST(RequiredCapacityTest, WesTargetIsStricterThanSameOverallTarget) {
  const auto trace = bursty_trace(20000, 7);
  const MuxWorkload workload(trace, experiment(1));
  const double c_pl = required_capacity_bps(workload, 0.002, 1e-3, QosMeasure::kOverallLoss);
  const double c_wes =
      required_capacity_bps(workload, 0.002, 1e-3, QosMeasure::kWorstErroredSecond);
  EXPECT_GE(c_wes, c_pl);
}

TEST(QcCurveTest, CapacityMonotoneInDelay) {
  const auto trace = bursty_trace(20000, 8);
  const MuxWorkload workload(trace, experiment(1));
  const std::vector<double> delays{0.0005, 0.002, 0.01, 0.05, 0.2};
  const auto curve = qc_curve(workload, delays, 1e-4, QosMeasure::kOverallLoss);
  ASSERT_EQ(curve.size(), delays.size());
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i].capacity_per_source_bps,
              curve[i - 1].capacity_per_source_bps + 2000.0);
  }
}

TEST(QcCurveTest, StatisticalMultiplexingGain) {
  // Fig. 15's core finding: per-source capacity falls toward the mean as N
  // grows.
  const auto trace = bursty_trace(30000, 9);
  const MuxWorkload w1(trace, experiment(1));
  const MuxWorkload w5(trace, experiment(5));
  const double c1 = required_capacity_bps(w1, 0.002, 1e-3, QosMeasure::kOverallLoss);
  const double c5 = required_capacity_bps(w5, 0.002, 1e-3, QosMeasure::kOverallLoss);
  EXPECT_LT(c5, c1);
  EXPECT_GE(c5, w5.source_mean_rate_bps() * 0.98);
}

TEST(KneeTest, FindsCornerOfPiecewiseCurve) {
  // Synthetic L-shaped curve in log-log space with a corner at index 3.
  std::vector<QcPoint> curve;
  const std::vector<double> delays{0.001, 0.002, 0.004, 0.008, 0.016, 0.032, 0.064};
  for (std::size_t i = 0; i < delays.size(); ++i) {
    const double capacity = (i < 3) ? 1e6 * std::pow(2.0, 3.0 - static_cast<double>(i))
                                    : 1e6;  // steep then flat
    curve.push_back({delays[i], capacity});
  }
  EXPECT_EQ(knee_index(curve), 3u);
}

TEST(KneeTest, RequiresThreePoints) {
  std::vector<QcPoint> curve{{0.001, 1e6}, {0.01, 5e5}};
  EXPECT_THROW(knee_index(curve), vbr::InvalidArgument);
}

TEST(RunDetailedTest, IntervalsMatchAggregateLength) {
  const auto trace = bursty_trace(5000, 10);
  const MuxWorkload workload(trace, experiment(2));
  const auto result = workload.run_detailed(workload.source_mean_rate_bps() * 1.05, 0.002, 0);
  EXPECT_EQ(result.intervals.size(), trace.size());
  EXPECT_THROW(workload.run_detailed(1e6, 0.002, 99), vbr::InvalidArgument);
}

}  // namespace
}  // namespace vbr::net
