#!/usr/bin/env bash
# check.sh — the repo's correctness gauntlet.
#
#   ./scripts/check.sh            # every stage, in order
#   ./scripts/check.sh --tier1    # configure + build + ctest (canonical gate)
#   ./scripts/check.sh --asan     # full ctest under ASan+UBSan
#   ./scripts/check.sh --tsan     # engine/fft/generator tests under TSan
#   ./scripts/check.sh --analyze  # vbr_analyze over the full tree (build the
#                                 # analyzer, zero findings required)
#   ./scripts/check.sh --lint     # domain lint + clang-tidy (if installed)
#   ./scripts/check.sh --fuzz     # fuzz harness smoke (~12k execs each)
#   ./scripts/check.sh --stream   # stream_analyze on a 2^24-sample trace,
#                                 # peak RSS checked against the 64 MiB bound
#   ./scripts/check.sh --crash    # SIGKILL crash-soak: kill run_campaign at
#                                 # random points, resume, require bit-equal
#                                 # trace hash + sink state (~60 s bound)
#   ./scripts/check.sh --service  # bounded-RSS service soak: 10^6 streaming
#                                 # sources advanced round-robin under a 1 GiB
#                                 # RSS ceiling (VBR_SERVICE_SOAK_SAMPLES=65536
#                                 # runs the full >= 2^16-samples-per-stream
#                                 # endurance form; RSS is per-stream-state
#                                 # dominated, so the smoke depth tests the
#                                 # same memory claim)
#
# Stages may be combined (e.g. --tier1 --lint). Tier-1 is the canonical
# gate from ROADMAP.md. The sanitizer stages force hot-loop VBR_DCHECK
# contracts on (see CMakeLists.txt), so instrumented runs exercise both the
# sanitizer and the contract layer; tier-1 stays a plain Release build with
# contracts compiled out, matching what the benchmarks measure.
set -euo pipefail
cd "$(dirname "$0")/.."

run_tier1=0 run_asan=0 run_tsan=0 run_analyze=0 run_lint=0 run_fuzz=0 run_stream=0 run_crash=0 run_service=0
if [[ $# -eq 0 ]]; then
  run_tier1=1 run_asan=1 run_tsan=1 run_analyze=1 run_lint=1 run_fuzz=1 run_stream=1 run_crash=1 run_service=1
fi
for arg in "$@"; do
  case "$arg" in
    --tier1)   run_tier1=1 ;;
    --asan)    run_asan=1 ;;
    --tsan)    run_tsan=1 ;;
    --analyze) run_analyze=1 ;;
    --lint)    run_lint=1 ;;
    --fuzz)    run_fuzz=1 ;;
    --stream)  run_stream=1 ;;
    --crash)   run_crash=1 ;;
    --service) run_service=1 ;;
    *) echo "unknown stage: $arg (expected --tier1/--asan/--tsan/--analyze/--lint/--fuzz/--stream/--crash/--service)" >&2
       exit 2 ;;
  esac
done

if [[ $run_tier1 -eq 1 ]]; then
  echo "=== tier-1: configure + build + ctest (Release, contracts off) ==="
  cmake -B build -S . >/dev/null
  cmake --build build -j >/dev/null
  ctest --test-dir build --output-on-failure -j"$(nproc)"
fi

if [[ $run_asan -eq 1 ]]; then
  echo "=== asan: full ctest under -fsanitize=address,undefined ==="
  cmake --preset asan-ubsan >/dev/null
  cmake --build --preset asan-ubsan -j >/dev/null
  ctest --preset asan-ubsan
fi

if [[ $run_tsan -eq 1 ]]; then
  echo "=== tsan: engine + fft + generator tests under -fsanitize=thread ==="
  cmake --preset tsan >/dev/null
  cmake --build --preset tsan -j --target engine_test fft_test generators_test >/dev/null
  ./build-tsan/tests/engine_test
  ./build-tsan/tests/fft_test
  ./build-tsan/tests/generators_test
fi

if [[ $run_analyze -eq 1 ]]; then
  echo "=== analyze: vbr_analyze over the full tree (zero findings required) ==="
  cmake -B build -S . >/dev/null
  cmake --build build -j --target vbr_analyze >/dev/null
  ./build/tools/vbr_analyze/vbr_analyze --root .
  python3 tests/analyzer_fixtures/run_fixtures.py ./build/tools/vbr_analyze/vbr_analyze
fi

if [[ $run_lint -eq 1 ]]; then
  echo "=== lint: domain rules (via vbr_analyze) + clang-tidy ==="
  cmake -B build -S . >/dev/null
  cmake --build build -j --target vbr_analyze >/dev/null
  python3 scripts/lint_domain.py
  ./scripts/tidy.sh
fi

if [[ $run_fuzz -eq 1 ]]; then
  echo "=== fuzz: harness smoke (deterministic, ~12k execs each) ==="
  cmake --preset fuzz >/dev/null
  cmake --build --preset fuzz -j >/dev/null
  # -runs=/-seed= is libFuzzer's flag spelling; the GCC standalone driver
  # accepts the same flags, so this line works with either toolchain.
  for pair in huffman_decode:huffman rle_decode:rle trace_io:trace_io \
              stream_reader:stream_reader checkpoint:checkpoint \
              sweep_manifest:sweep_manifest sweep_result_log:sweep_result_log \
              generation_plan:generation_plan \
              service_checkpoint:service_checkpoint; do
    harness="${pair%%:*}" corpus="${pair##*:}"
    ./build-fuzz/fuzz/fuzz_"$harness" fuzz/corpus/"$corpus" -runs=12000 -seed=1
  done
fi

if [[ $run_stream -eq 1 ]]; then
  echo "=== stream: 2^24-sample one-pass analysis under the 64 MiB RSS bound ==="
  cmake -B build -S . >/dev/null
  cmake --build build -j --target stream_analyze >/dev/null
  stream_trace="$(mktemp /tmp/vbr_stream_check.XXXXXX.bin)"
  trap 'rm -f "$stream_trace"' EXIT
  # Generation is a separate process so its (block-sized) footprint does not
  # count against the analyzer's RSS measurement.
  ./build/examples/stream_analyze --generate "$stream_trace" $((1 << 24))
  ./build/examples/stream_analyze "$stream_trace" --max-rss-mib 64
  rm -f "$stream_trace"
fi

if [[ $run_crash -eq 1 ]]; then
  echo "=== crash: SIGKILL soak — resume must be bit-identical ==="
  cmake -B build -S . >/dev/null
  cmake --build build -j --target run_campaign >/dev/null
  # 20 kill points per thread count; each iteration is one aborted run plus
  # one resumed run of 12 x 65536 frames, keeping the stage near a minute.
  for threads in 1 4; do
    ./scripts/crash_soak.sh ./build/examples/run_campaign 20 "$threads"
  done
  echo "=== crash: sweep soak — worker faults, SIGSTOP, supervisor kills ==="
  cmake --build build -j --target run_sweep >/dev/null
  ./scripts/crash_soak.sh --sweep ./build/examples/run_sweep 5
  echo "=== crash: shard soak — pool kills, torn tails, stolen leases, dispatcher kills ==="
  ./scripts/crash_soak.sh --shard ./build/examples/run_sweep 5 4 8 50
  echo "=== crash: service soak — SIGKILL serve_traffic (plain + degraded mode), resume must be bit-identical ==="
  cmake --build build -j --target serve_traffic >/dev/null
  ./scripts/crash_soak.sh --service --overload ./build/examples/serve_traffic 10
fi

if [[ $run_service -eq 1 ]]; then
  echo "=== service: 10^6-stream round-robin soak under the 1 GiB RSS ceiling ==="
  cmake -B build -S . >/dev/null
  cmake --build build -j --target serve_traffic >/dev/null
  # Per-stream state at the default hosking horizon (64-sample ring + Rng +
  # wrapper) measures ~0.85 KiB, so 10^6 streams fit a documented 1 GiB
  # ceiling with headroom; serve_traffic exits 3 if the ceiling is pierced.
  # The smoke depth (64 samples/stream = 6.4e7 samples) exercises every
  # stream past its ring-fill transient; RSS is independent of depth, so
  # the full >= 2^16-samples-per-stream endurance run tests the same bound:
  #   VBR_SERVICE_SOAK_SAMPLES=65536 ./scripts/check.sh --service
  ./build/examples/serve_traffic --streams 1000000 \
    --samples "${VBR_SERVICE_SOAK_SAMPLES:-64}" --block 32 \
    --max-rss-mib 1024 --json
fi

echo "=== all requested checks OK ==="
