#!/usr/bin/env bash
# check.sh — tier-1 verification plus the ThreadSanitizer engine suite.
#
#   ./scripts/check.sh            # full check (tier-1 + TSan)
#   ./scripts/check.sh --tier1    # tier-1 only
#
# Tier-1 is the repo's canonical gate (see ROADMAP.md): configure, build,
# ctest. The TSan stage rebuilds the concurrency-sensitive targets with
# -DVBR_SANITIZE=thread and runs the engine + FFT tests under the
# sanitizer, catching data races in the parallel generation engine and the
# shared Davies-Harte eigenvalue cache.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== tier-1: configure + build + ctest ==="
cmake -B build -S . >/dev/null
cmake --build build -j >/dev/null
ctest --test-dir build --output-on-failure -j"$(nproc)"

if [[ "${1:-}" == "--tier1" ]]; then
  echo "=== tier-1 OK (TSan stage skipped) ==="
  exit 0
fi

echo "=== TSan: engine + fft tests under -fsanitize=thread ==="
cmake -B build-tsan -S . -DVBR_SANITIZE=thread \
      -DVBR_BUILD_BENCH=OFF -DVBR_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-tsan -j --target engine_test fft_test generators_test >/dev/null
./build-tsan/tests/engine_test
./build-tsan/tests/fft_test
./build-tsan/tests/generators_test
echo "=== all checks OK ==="
