#!/usr/bin/env bash
# crash_soak.sh — SIGKILL torture for the crash-safe campaign runner.
#
# Runs one uninterrupted run_campaign as the reference, then repeatedly
# launches an identical run, SIGKILLs it at a random point inside the run
# window, resumes from the checkpoint, and requires the resumed run's trace
# hash and serialized sink state to be byte-identical to the reference.
# Kill points are drawn from bash's seeded RANDOM, so a failure replays with
# CRASH_SOAK_SEED.
#
#   crash_soak.sh <run_campaign-binary> [kills] [threads] [sources] [frames]
#
# Defaults (20 kills, 12 sources x 65536 frames) keep one thread-count pass
# under ~30s on a laptop; the check.sh --crash stage runs threads 1 and 4.
#
# Sweep mode tortures the process-isolated sweep supervisor instead:
#
#   crash_soak.sh --sweep <run_sweep-binary> [supervisor_kills]
#
# Service mode tortures the streaming traffic service the same way:
#
#   crash_soak.sh --service [--overload] <serve_traffic-binary> [kills] [streams] [samples]
#
# It runs one uninterrupted serve_traffic as the reference, then SIGKILLs
# checkpointing runs at random instants, resumes each from its VBRSRVC1
# checkpoint, and requires the resumed results_hash to be bit-identical.
# With --overload it additionally tortures the overload governor: a seeded
# fault + pressure schedule (quarantines, shedding, degraded blocks) runs as
# a governed reference, SIGKILLs land inside the degraded window, and an
# injected mid-run sink I/O fault must checkpoint-then-exit-4; every resume
# must reproduce the governed reference hash bit-for-bit.
#
# It (1) runs a fault-free reference sweep, (2) replays it with every cell's
# first worker attempt crashing/hanging/OOMing and requires the retried
# results hash to match the reference bit-for-bit, (3) SIGSTOPs a live
# worker from outside and requires the watchdog to fire and the retry to
# heal it, (4) SIGKILLs the *supervisor* mid-sweep `supervisor_kills` times
# and requires every --resume to reproduce the reference hash, and (5) runs
# poison cells that fail deterministically and requires them quarantined in
# the manifest without crashing the supervisor or blocking healthy cells.
set -u

if [[ "${1:-}" == "--sweep" ]]; then
  shift
  BIN=${1:?usage: crash_soak.sh --sweep <run_sweep-binary> [supervisor_kills]}
  KILLS=${2:-5}
  RANDOM=${CRASH_SOAK_SEED:-1994}

  WORK=$(mktemp -d "${TMPDIR:-/tmp}/sweep_soak.XXXXXX")
  trap 'rm -rf "$WORK"' EXIT

  # 18 cells: 3 queues x 3 Hurst x 2 utilizations. The grid (and so the
  # manifest fingerprint and results hash) is identical in every phase;
  # only fault/limit flags differ, and those must not change one bit.
  GRID=(--queues fluid,cell,fbm --hursts 0.7,0.8,0.9 --utilizations 0.8,0.95
        --buffers-ms 10 --sources 2 --frames 2048 --seed 1994)
  CELLS=18
  FAULTS=(--fault-rate 1 --fault-seed 42 --mem-mib 512 --deadline-sec 2)

  fail=0
  note() { echo "sweep_soak: $*"; }

  # Phase 1: fault-free reference.
  t0=$(date +%s%N)
  "$BIN" --manifest "$WORK/ref.manifest" "${GRID[@]}" --deadline-sec 30 \
    --hash-out "$WORK/ref.hash" --quiet >/dev/null || {
    note "reference sweep failed" >&2
    exit 1
  }
  t1=$(date +%s%N)
  window_ms=$(((t1 - t0) / 1000000))
  ((window_ms < 50)) && window_ms=50
  note "reference $(cat "$WORK/ref.hash") ($CELLS cells, ~${window_ms}ms)"

  # Phase 2: every cell's first attempt faults (crash/hang/OOM mix); the
  # retried sweep must be bit-identical and absorb >= CELLS worker faults.
  out=$("$BIN" --manifest "$WORK/faulted.manifest" "${GRID[@]}" "${FAULTS[@]}" \
    --hash-out "$WORK/faulted.hash" --quiet) || { note "fault run FAILED"; fail=1; }
  retries=$(awk '/^retries/{print $2}' <<<"$out")
  if ((retries < 10)); then
    note "fault run absorbed only ${retries:-0} worker faults (need >= 10)"
    fail=1
  fi
  if cmp -s "$WORK/ref.hash" "$WORK/faulted.hash"; then
    note "worker faults: $retries absorbed, hash identical"
  else
    note "worker faults: HASH MISMATCH after retries"
    fail=1
  fi

  # Phase 3: hang a worker from the outside. SIGSTOP the first live worker
  # we can catch; the supervisor's watchdog must SIGKILL it and the retry
  # must heal the cell.
  "$BIN" --manifest "$WORK/stopped.manifest" "${GRID[@]}" --deadline-sec 2 \
    --hash-out "$WORK/stopped.hash" --quiet >/dev/null 2>&1 &
  sup=$!
  stopped=""
  while kill -0 "$sup" 2>/dev/null; do
    worker=$(pgrep -P "$sup" | head -1)
    if [[ -n "$worker" ]] && kill -STOP "$worker" 2>/dev/null; then
      stopped=$worker
      break
    fi
  done
  wait "$sup"
  sup_rc=$?
  if [[ -z "$stopped" ]]; then
    note "never caught a worker to SIGSTOP (sweep too fast?)"
    fail=1
  elif ((sup_rc != 0)); then
    note "supervisor died after external SIGSTOP (rc=$sup_rc)"
    fail=1
  elif cmp -s "$WORK/ref.hash" "$WORK/stopped.hash"; then
    note "external SIGSTOP of worker $stopped: watchdog fired, hash identical"
  else
    note "external SIGSTOP: HASH MISMATCH"
    fail=1
  fi

  # Phase 4: SIGKILL the supervisor mid-sweep, resume, compare.
  for i in $(seq 1 "$KILLS"); do
    rm -f "$WORK"/run.*
    delay_ms=$((RANDOM % window_ms))
    "$BIN" --manifest "$WORK/run.manifest" "${GRID[@]}" "${FAULTS[@]}" \
      --fault-kinds crash,oom --hash-out "$WORK/run.hash" --quiet >/dev/null 2>&1 &
    pid=$!
    sleep "$(awk "BEGIN{printf \"%.3f\", $delay_ms / 1000}")"
    if kill -9 "$pid" 2>/dev/null; then outcome=killed; else outcome=completed; fi
    wait "$pid" 2>/dev/null

    if ! "$BIN" --manifest "$WORK/run.manifest" "${GRID[@]}" "${FAULTS[@]}" \
      --fault-kinds crash,oom --resume --hash-out "$WORK/run.hash" \
      --quiet >/dev/null; then
      note "iter $i (delay ${delay_ms}ms, $outcome): resume FAILED"
      fail=1
      continue
    fi
    if cmp -s "$WORK/ref.hash" "$WORK/run.hash"; then
      note "iter $i (delay ${delay_ms}ms, $outcome): identical"
    else
      note "iter $i (delay ${delay_ms}ms, $outcome): HASH MISMATCH"
      fail=1
    fi
  done

  # Phase 5: poison cells fail deterministically every attempt; they must be
  # quarantined in the manifest while every healthy cell completes, and a
  # resume must salvage the whole record set without re-running anything.
  out=$("$BIN" --manifest "$WORK/poison.manifest" "${GRID[@]}" --deadline-sec 30 \
    --poison 2,7 --quiet) || { note "poison sweep FAILED (rc=$?)"; fail=1; }
  quarantined=$(awk '/^quarantined/{print $2}' <<<"$out")
  completed=$(awk '/^completed/{print $2}' <<<"$out")
  if [[ "$quarantined" == 2 && "$completed" == $((CELLS - 2)) ]]; then
    note "poison: 2 quarantined, $completed healthy cells unblocked"
  else
    note "poison: expected 2 quarantined / $((CELLS - 2)) done, got ${quarantined:-?} / ${completed:-?}"
    fail=1
  fi
  out=$("$BIN" --manifest "$WORK/poison.manifest" "${GRID[@]}" --deadline-sec 30 \
    --poison 2,7 --resume --quiet) || { note "poison resume FAILED"; fail=1; }
  resumed=$(awk '/^resumed/{print $2}' <<<"$out")
  if [[ "$resumed" == "$CELLS" ]]; then
    note "poison resume: all $CELLS records salvaged (quarantine included)"
  else
    note "poison resume: salvaged ${resumed:-?} of $CELLS records"
    fail=1
  fi

  if ((fail)); then
    note "FAILED (seed ${CRASH_SOAK_SEED:-1994})" >&2
  else
    note "$retries worker faults + 1 external SIGSTOP + $KILLS supervisor kills: all bit-identical"
  fi
  exit $fail
fi

if [[ "${1:-}" == "--shard" ]]; then
  shift
  BIN=${1:?usage: crash_soak.sh --shard <run_sweep-binary> [dispatcher_kills] [pools] [shards] [hurst_steps]}
  KILLS=${2:-5}
  POOLS=${3:-4}
  SHARDS=${4:-8}
  HURST_STEPS=${5:-6}
  RANDOM=${CRASH_SOAK_SEED:-1994}

  WORK=$(mktemp -d "${TMPDIR:-/tmp}/shard_soak.XXXXXX")
  trap 'rm -rf "$WORK"' EXIT

  # Grid scale is driven by the Hurst axis: hurst_steps x 4 utilizations x
  # 2 buffers x 2 source counts = 16 cells per step. hurst_steps=6 keeps
  # the ctest smoke fast; hurst_steps=6250 is the 10^5-cell acceptance run
  # (the CSV stays ~56 KiB, inside the kernel's 128 KiB per-argument cap —
  # the Hurst axis alone cannot reach 10^5 steps through argv).
  HURSTS=$(awk -v n="$HURST_STEPS" 'BEGIN {
    for (i = 0; i < n; i++) printf "%s%.6f", (i ? "," : ""), 0.55 + 0.4 * i / n }')
  GRID=(--queues fluid --hursts "$HURSTS" --utilizations 0.8,0.85,0.9,0.95
        --buffers-ms 5,20 --sources 1,2 --frames 64 --seed 1994 --no-isolate)
  CELLS=$((HURST_STEPS * 16))
  SHARDED=(--shard-dir "$WORK/sweep" --shards "$SHARDS" --pools "$POOLS"
           --lease-ttl 2 --heartbeat 0.3)

  fail=0
  note() { echo "shard_soak: $*"; }

  # Rerun a sharded sweep until it completes: exit 3 means injected (or
  # real) pool deaths outran the survivors and a rerun resumes from the
  # per-shard logs. Any other nonzero exit is a hard failure.
  run_until_complete() {
    local tries=0 rc
    while :; do
      "$BIN" "${SHARDED[@]}" "${GRID[@]}" "$@" --quiet >/dev/null 2>&1
      rc=$?
      ((rc == 0)) && return 0
      ((rc != 3)) && return "$rc"
      # Injected faults only on the first attempt; resume fault-free.
      set -- --hash-out "$WORK/run.hash"
      ((++tries >= 10)) && return 3
    done
  }

  # Phase 1: single-pool fault-free reference.
  t0=$(date +%s%N)
  "$BIN" --log "$WORK/ref.log" "${GRID[@]}" --hash-out "$WORK/ref.hash" \
    --quiet >/dev/null || {
    note "reference sweep failed" >&2
    exit 1
  }
  t1=$(date +%s%N)
  window_ms=$(((t1 - t0) / 1000000))
  ((window_ms < 50)) && window_ms=50
  note "reference $(cat "$WORK/ref.hash") ($CELLS cells, ~${window_ms}ms)"

  # Phase 2: injected pool faults — SIGKILL two pools mid-shard with torn
  # log tails, plus one duplicate claim — healed by stealing and replay to
  # the exact reference hash.
  if run_until_complete --kill-pool "0:3,1:7" --torn-tail --duplicate-claim 2 \
    --hash-out "$WORK/run.hash" && cmp -s "$WORK/ref.hash" "$WORK/run.hash"; then
    note "pool kills + torn tails + duplicate claim: healed, hash identical"
  else
    note "pool faults: FAILED (rc or hash mismatch)"
    fail=1
  fi

  # Phase 3: SIGKILL the whole dispatcher process group (dispatcher AND all
  # its pools — a machine death) at a random instant, then rerun the same
  # command: survivors-from-disk only. Every resume must reproduce the
  # reference hash.
  for i in $(seq 1 "$KILLS"); do
    rm -rf "$WORK/sweep" "$WORK/run.hash"
    delay_ms=$((RANDOM % window_ms))
    setsid "$BIN" "${SHARDED[@]}" "${GRID[@]}" --hash-out "$WORK/run.hash" \
      --quiet >/dev/null 2>&1 &
    pid=$!
    sleep "$(awk "BEGIN{printf \"%.3f\", $delay_ms / 1000}")"
    if kill -9 -- "-$pid" 2>/dev/null; then outcome=killed; else outcome=completed; fi
    wait "$pid" 2>/dev/null

    if ! run_until_complete --hash-out "$WORK/run.hash"; then
      note "iter $i (delay ${delay_ms}ms, $outcome): resume FAILED"
      fail=1
      continue
    fi
    if cmp -s "$WORK/ref.hash" "$WORK/run.hash"; then
      note "iter $i (delay ${delay_ms}ms, $outcome): identical"
    else
      note "iter $i (delay ${delay_ms}ms, $outcome): HASH MISMATCH"
      fail=1
    fi
  done

  # Phase 4: a different grid against the same sweep directory must fail
  # fast, naming both fingerprints — never silently mix two sweeps.
  err=$("$BIN" "${SHARDED[@]}" "${GRID[@]}" --seed 4991 --quiet 2>&1 >/dev/null)
  rc=$?
  if ((rc == 1)) && grep -q "fingerprint" <<<"$err"; then
    note "mismatched grid rejected: ${err##*run_sweep: }"
  else
    note "mismatched grid NOT rejected (rc=$rc): $err"
    fail=1
  fi

  if ((fail)); then
    note "FAILED (seed ${CRASH_SOAK_SEED:-1994})" >&2
  else
    note "2 pool kills + $KILLS dispatcher kills across $POOLS pools / $SHARDS shards: all bit-identical"
  fi
  exit $fail
fi

if [[ "${1:-}" == "--service" ]]; then
  shift
  OVERLOAD=0
  if [[ "${1:-}" == "--overload" ]]; then
    OVERLOAD=1
    shift
  fi
  BIN=${1:?usage: crash_soak.sh --service [--overload] <serve_traffic-binary> [kills] [streams] [samples]}
  KILLS=${2:-10}
  STREAMS=${3:-64}
  SAMPLES=${4:-16384}
  RANDOM=${CRASH_SOAK_SEED:-1994}

  WORK=$(mktemp -d "${TMPDIR:-/tmp}/service_soak.XXXXXX")
  trap 'rm -rf "$WORK"' EXIT

  # Checkpoint every other round so a random SIGKILL usually lands between
  # a save and the next — the resume path that matters.
  common=(--streams "$STREAMS" --samples "$SAMPLES" --block 256 --checkpoint-every 2
          --queue-capacity 8e6 --queue-buffer 4e6)

  t0=$(date +%s%N)
  "$BIN" "${common[@]}" --checkpoint "$WORK/ref.ckpt" --hash-out "$WORK/ref.hash" \
    >/dev/null || {
    echo "service_soak: reference run failed" >&2
    exit 1
  }
  t1=$(date +%s%N)
  window_ms=$(((t1 - t0) / 1000000))
  ((window_ms < 50)) && window_ms=50
  echo "service_soak: reference $(cat "$WORK/ref.hash") (~${window_ms}ms, $STREAMS streams)"

  fail=0
  for i in $(seq 1 "$KILLS"); do
    rm -f "$WORK"/run.*
    delay_ms=$((RANDOM % window_ms))
    "$BIN" "${common[@]}" --checkpoint "$WORK/run.ckpt" --hash-out "$WORK/run.hash" \
      >/dev/null 2>&1 &
    pid=$!
    sleep "$(awk "BEGIN{printf \"%.3f\", $delay_ms / 1000}")"
    if kill -9 "$pid" 2>/dev/null; then outcome=killed; else outcome=completed; fi
    wait "$pid" 2>/dev/null

    if ! "$BIN" "${common[@]}" --checkpoint "$WORK/run.ckpt" --resume \
      --hash-out "$WORK/run.hash" >/dev/null; then
      echo "service_soak: iter $i (delay ${delay_ms}ms, $outcome): resume FAILED"
      fail=1
      continue
    fi
    if cmp -s "$WORK/ref.hash" "$WORK/run.hash"; then
      echo "service_soak: iter $i (delay ${delay_ms}ms, $outcome): identical"
    else
      echo "service_soak: iter $i (delay ${delay_ms}ms, $outcome): HASH MISMATCH"
      fail=1
    fi
  done

  if ((OVERLOAD)); then
    # Overload phase: the governed run quarantines two streams on a seeded
    # schedule and walks the pressure ladder (shed at 1/3, degraded block at
    # 1/2, recovery at 7/8 of the run). The degraded-mode hash is the
    # reference every torture below must reproduce.
    GOV=(--stream-fault "1@$((SAMPLES / 2)):permanent"
         --stream-fault "3@$((SAMPLES / 4)):transient:3"
         --pressure "$((SAMPLES / 3)):1" --pressure "$((SAMPLES / 2)):2"
         --pressure "$((SAMPLES - SAMPLES / 8)):0" --shed-fraction 0.25)

    out=$("$BIN" "${common[@]}" "${GOV[@]}" --checkpoint "$WORK/oref.ckpt" \
      --hash-out "$WORK/oref.hash" --json 2>/dev/null) || {
      echo "service_soak: governed reference run failed" >&2
      exit 1
    }
    failures=$(grep -o '"kind":' <<<"$out" | wc -l)
    if ((failures != 2)); then
      echo "service_soak: overload: expected exactly 2 StreamFailure records, got $failures"
      fail=1
    fi
    echo "service_soak: overload reference $(cat "$WORK/oref.hash") ($failures streams quarantined)"

    # SIGKILL inside the degraded window (the ladder is active through the
    # middle of the run), resume with the same governor flags, compare.
    for i in $(seq 1 "$KILLS"); do
      rm -f "$WORK"/orun.*
      delay_ms=$((window_ms / 3 + RANDOM % (window_ms / 2 + 1)))
      "$BIN" "${common[@]}" "${GOV[@]}" --checkpoint "$WORK/orun.ckpt" \
        --hash-out "$WORK/orun.hash" >/dev/null 2>&1 &
      pid=$!
      sleep "$(awk "BEGIN{printf \"%.3f\", $delay_ms / 1000}")"
      if kill -9 "$pid" 2>/dev/null; then outcome=killed; else outcome=completed; fi
      wait "$pid" 2>/dev/null

      if ! "$BIN" "${common[@]}" "${GOV[@]}" --checkpoint "$WORK/orun.ckpt" --resume \
        --hash-out "$WORK/orun.hash" >/dev/null 2>&1; then
        echo "service_soak: overload iter $i (delay ${delay_ms}ms, $outcome): resume FAILED"
        fail=1
        continue
      fi
      if cmp -s "$WORK/oref.hash" "$WORK/orun.hash"; then
        echo "service_soak: overload iter $i (delay ${delay_ms}ms, $outcome): identical"
      else
        echo "service_soak: overload iter $i (delay ${delay_ms}ms, $outcome): HASH MISMATCH"
        fail=1
      fi
    done

    # Mid-run sink I/O fault: must report, checkpoint, and exit 4 (the
    # documented resumable-failure code), and the resume must still land on
    # the governed reference hash.
    rm -f "$WORK"/orun.*
    "$BIN" "${common[@]}" "${GOV[@]}" --checkpoint "$WORK/orun.ckpt" \
      --inject-io-fault 5 >/dev/null 2>&1
    rc=$?
    if ((rc != 4)); then
      echo "service_soak: overload: injected I/O fault exited $rc, want 4"
      fail=1
    fi
    if "$BIN" "${common[@]}" "${GOV[@]}" --checkpoint "$WORK/orun.ckpt" --resume \
      --hash-out "$WORK/orun.hash" >/dev/null 2>&1 &&
      cmp -s "$WORK/oref.hash" "$WORK/orun.hash"; then
      echo "service_soak: overload: injected I/O fault checkpointed, resume identical"
    else
      echo "service_soak: overload: I/O fault resume FAILED or HASH MISMATCH"
      fail=1
    fi
  fi

  if ((fail)); then
    echo "service_soak: FAILED (seed ${CRASH_SOAK_SEED:-1994})" >&2
  elif ((OVERLOAD)); then
    echo "service_soak: $KILLS plain kills + $KILLS degraded-mode kills + 1 injected I/O fault, all resumes bit-identical"
  else
    echo "service_soak: $KILLS kills, all resumes bit-identical"
  fi
  exit $fail
fi

BIN=${1:?usage: crash_soak.sh <run_campaign-binary> [kills] [threads] [sources] [frames]}
KILLS=${2:-20}
THREADS=${3:-4}
SOURCES=${4:-12}
FRAMES=${5:-65536}
RANDOM=${CRASH_SOAK_SEED:-1994}

WORK=$(mktemp -d "${TMPDIR:-/tmp}/crash_soak.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

common=(--sources "$SOURCES" --frames "$FRAMES" --threads "$THREADS" --every 2)

t0=$(date +%s%N)
"$BIN" --trace "$WORK/ref.bin" --checkpoint "$WORK/ref.ckpt" "${common[@]}" \
  --hash-out "$WORK/ref.hash" --sink-out "$WORK/ref.sink" >/dev/null || {
  echo "crash_soak: reference run failed" >&2
  exit 1
}
t1=$(date +%s%N)
window_ms=$(((t1 - t0) / 1000000))
((window_ms < 50)) && window_ms=50
echo "crash_soak: reference $(cat "$WORK/ref.hash") (~${window_ms}ms, threads=$THREADS)"

fail=0
for i in $(seq 1 "$KILLS"); do
  rm -f "$WORK"/run.*
  delay_ms=$((RANDOM % window_ms))
  "$BIN" --trace "$WORK/run.bin" --checkpoint "$WORK/run.ckpt" "${common[@]}" \
    --hash-out "$WORK/run.hash" --sink-out "$WORK/run.sink" >/dev/null 2>&1 &
  pid=$!
  sleep "$(awk "BEGIN{printf \"%.3f\", $delay_ms / 1000}")"
  if kill -9 "$pid" 2>/dev/null; then outcome=killed; else outcome=completed; fi
  wait "$pid" 2>/dev/null

  if ! "$BIN" --trace "$WORK/run.bin" --checkpoint "$WORK/run.ckpt" "${common[@]}" \
    --resume --hash-out "$WORK/run.hash" --sink-out "$WORK/run.sink" >/dev/null; then
    echo "crash_soak: iter $i (delay ${delay_ms}ms, $outcome): resume FAILED"
    fail=1
    continue
  fi
  if cmp -s "$WORK/ref.hash" "$WORK/run.hash" &&
    cmp -s "$WORK/ref.sink" "$WORK/run.sink"; then
    echo "crash_soak: iter $i (delay ${delay_ms}ms, $outcome): identical"
  else
    echo "crash_soak: iter $i (delay ${delay_ms}ms, $outcome): ARTIFACT MISMATCH"
    fail=1
  fi
done

if ((fail)); then
  echo "crash_soak: FAILED (seed ${CRASH_SOAK_SEED:-1994})" >&2
else
  echo "crash_soak: $KILLS kills, all resumes bit-identical"
fi
exit $fail
