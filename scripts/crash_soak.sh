#!/usr/bin/env bash
# crash_soak.sh — SIGKILL torture for the crash-safe campaign runner.
#
# Runs one uninterrupted run_campaign as the reference, then repeatedly
# launches an identical run, SIGKILLs it at a random point inside the run
# window, resumes from the checkpoint, and requires the resumed run's trace
# hash and serialized sink state to be byte-identical to the reference.
# Kill points are drawn from bash's seeded RANDOM, so a failure replays with
# CRASH_SOAK_SEED.
#
#   crash_soak.sh <run_campaign-binary> [kills] [threads] [sources] [frames]
#
# Defaults (20 kills, 12 sources x 65536 frames) keep one thread-count pass
# under ~30s on a laptop; the check.sh --crash stage runs threads 1 and 4.
set -u

BIN=${1:?usage: crash_soak.sh <run_campaign-binary> [kills] [threads] [sources] [frames]}
KILLS=${2:-20}
THREADS=${3:-4}
SOURCES=${4:-12}
FRAMES=${5:-65536}
RANDOM=${CRASH_SOAK_SEED:-1994}

WORK=$(mktemp -d "${TMPDIR:-/tmp}/crash_soak.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

common=(--sources "$SOURCES" --frames "$FRAMES" --threads "$THREADS" --every 2)

t0=$(date +%s%N)
"$BIN" --trace "$WORK/ref.bin" --checkpoint "$WORK/ref.ckpt" "${common[@]}" \
  --hash-out "$WORK/ref.hash" --sink-out "$WORK/ref.sink" >/dev/null || {
  echo "crash_soak: reference run failed" >&2
  exit 1
}
t1=$(date +%s%N)
window_ms=$(((t1 - t0) / 1000000))
((window_ms < 50)) && window_ms=50
echo "crash_soak: reference $(cat "$WORK/ref.hash") (~${window_ms}ms, threads=$THREADS)"

fail=0
for i in $(seq 1 "$KILLS"); do
  rm -f "$WORK"/run.*
  delay_ms=$((RANDOM % window_ms))
  "$BIN" --trace "$WORK/run.bin" --checkpoint "$WORK/run.ckpt" "${common[@]}" \
    --hash-out "$WORK/run.hash" --sink-out "$WORK/run.sink" >/dev/null 2>&1 &
  pid=$!
  sleep "$(awk "BEGIN{printf \"%.3f\", $delay_ms / 1000}")"
  if kill -9 "$pid" 2>/dev/null; then outcome=killed; else outcome=completed; fi
  wait "$pid" 2>/dev/null

  if ! "$BIN" --trace "$WORK/run.bin" --checkpoint "$WORK/run.ckpt" "${common[@]}" \
    --resume --hash-out "$WORK/run.hash" --sink-out "$WORK/run.sink" >/dev/null; then
    echo "crash_soak: iter $i (delay ${delay_ms}ms, $outcome): resume FAILED"
    fail=1
    continue
  fi
  if cmp -s "$WORK/ref.hash" "$WORK/run.hash" &&
    cmp -s "$WORK/ref.sink" "$WORK/run.sink"; then
    echo "crash_soak: iter $i (delay ${delay_ms}ms, $outcome): identical"
  else
    echo "crash_soak: iter $i (delay ${delay_ms}ms, $outcome): ARTIFACT MISMATCH"
    fail=1
  fi
done

if ((fail)); then
  echo "crash_soak: FAILED (seed ${CRASH_SOAK_SEED:-1994})" >&2
else
  echo "crash_soak: $KILLS kills, all resumes bit-identical"
fi
exit $fail
