#!/usr/bin/env python3
"""Regenerate fuzz/corpus/service_checkpoint from a real VBRSRVC1 file.

Usage:
    scripts/make_service_fuzz_corpus.py --bin build/examples/serve_traffic

Runs serve_traffic at the fuzz harness's exact config (4 streams, seed 42,
gaussian variant, hosking backend — see fuzz/fuzz_service_checkpoint.cpp) to
produce a genuine checkpoint, then derives the hostile variants: truncations,
CRC-breaking bit flips, magic/version forgeries, a size-field lie, and a
forged stream count re-sealed with a *valid* CRC so the mutation survives the
envelope and reaches the payload validator. zlib.crc32 matches the repo's
CRC-32/ISO-HDLC (checkpoint_test pins the check value), so Python can seal
envelopes the C++ reader accepts.
"""
import argparse
import pathlib
import struct
import subprocess
import sys
import tempfile
import zlib

MAGIC = b"VBRSRVC1"
VERSION = 2  # version 2 appended the governor flag to the payload


def seal(payload: bytes, magic: bytes = MAGIC, version: int = VERSION,
         size: int | None = None) -> bytes:
    header = magic + struct.pack("<I", version)
    header += struct.pack("<Q", len(payload) if size is None else size)
    header += struct.pack("<I", zlib.crc32(payload) & 0xFFFFFFFF)
    return header + payload


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bin", required=True, help="path to serve_traffic")
    parser.add_argument("--out", default="fuzz/corpus/service_checkpoint",
                        help="corpus directory to (re)populate")
    args = parser.parse_args()

    out = pathlib.Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    with tempfile.TemporaryDirectory() as tmp:
        ckpt = pathlib.Path(tmp) / "service.ckpt"
        subprocess.run(
            [args.bin, "--streams", "4", "--samples", "32", "--block", "16",
             "--seed", "42", "--checkpoint", str(ckpt)],
            check=True, stdout=subprocess.DEVNULL)
        valid = ckpt.read_bytes()

    header_len = 8 + 4 + 8 + 4
    assert valid[:8] == MAGIC, "serve_traffic wrote an unexpected magic"
    payload = valid[header_len:]
    assert zlib.crc32(payload) & 0xFFFFFFFF == struct.unpack(
        "<I", valid[20:24])[0], "CRC mismatch: layout drifted"

    seeds = {
        # The genuine article: exercises the full success path.
        "valid": valid,
        # Envelope-level hostility.
        "truncated": valid[: len(valid) * 2 // 5],
        "truncated_header": valid[:10],
        "bad_magic": b"VBRSRVX1" + valid[8:],
        "version_skew": seal(payload, version=1),
        "size_lies": seal(payload, size=1 << 40),
        "bad_crc": valid[:header_len]
        + payload[: len(payload) // 2]
        + bytes([payload[len(payload) // 2] ^ 0x10])
        + payload[len(payload) // 2 + 1:],
        # Payload-level hostility behind a *valid* CRC: forge the stream
        # count (the first u64 after the 4-byte "service" tag prefix, i.e.
        # len-u32 + "service"), so restore must reject it cleanly.
        "forged_stream_count": seal(
            payload[: 4 + 7] + struct.pack("<Q", 1 << 30) + payload[4 + 7 + 8:]),
        "empty_payload": seal(b""),
    }
    for name, data in seeds.items():
        (out / name).write_bytes(data)
        print(f"wrote {out / name} ({len(data)} bytes)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
