#!/usr/bin/env bash
# tidy.sh — run clang-tidy (config: .clang-tidy) over the library, bench,
# example, and fuzz sources using a fresh compile database.
#
#   ./scripts/tidy.sh              # analyze everything
#   ./scripts/tidy.sh --require    # FAIL (exit 3) if clang-tidy is missing
#   ./scripts/tidy.sh src/vbr/stats/whittle.cpp ...   # analyze specific files
#
# Without --require, exits 0 with a notice when clang-tidy is not installed
# (the toolchain image may be GCC-only). CI passes --require so a broken
# install can never silently skip the stage. Set CLANG_TIDY to pin a
# specific binary (e.g. CLANG_TIDY=clang-tidy-18).
set -euo pipefail
cd "$(dirname "$0")/.."

CLANG_TIDY="${CLANG_TIDY:-clang-tidy}"
require=0
args=()
for arg in "$@"; do
  case "$arg" in
    --require) require=1 ;;
    *) args+=("$arg") ;;
  esac
done
set -- "${args[@]+"${args[@]}"}"

if ! command -v "$CLANG_TIDY" >/dev/null 2>&1; then
  if [[ $require -eq 1 ]]; then
    echo "tidy.sh: FATAL: $CLANG_TIDY not found on PATH but --require was given" >&2
    exit 3
  fi
  echo "tidy.sh: $CLANG_TIDY not found on PATH; skipping (install clang-tidy to run this stage)"
  exit 0
fi
echo "tidy.sh: using $("$CLANG_TIDY" --version | head -n1)"

BUILD_DIR=build-tidy
cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
      -DVBR_BUILD_FUZZERS=ON >/dev/null

if [[ $# -gt 0 ]]; then
  FILES=("$@")
else
  mapfile -t FILES < <(find src bench examples fuzz -name '*.cpp' | sort)
fi

if [[ "$CLANG_TIDY" == "clang-tidy" ]] && command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -quiet -p "$BUILD_DIR" "${FILES[@]}"
else
  status=0
  for f in "${FILES[@]}"; do
    "$CLANG_TIDY" -quiet -p "$BUILD_DIR" "$f" || status=1
  done
  exit $status
fi
