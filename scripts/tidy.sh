#!/usr/bin/env bash
# tidy.sh — run clang-tidy (config: .clang-tidy) over the library, bench,
# example, and fuzz sources using a fresh compile database.
#
#   ./scripts/tidy.sh              # analyze everything
#   ./scripts/tidy.sh src/vbr/stats/whittle.cpp ...   # analyze specific files
#
# Exits 0 with a notice when clang-tidy is not installed (the toolchain image
# may be GCC-only); CI's lint job provides clang-tidy and runs this for real.
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "tidy.sh: clang-tidy not found on PATH; skipping (install clang-tidy to run this stage)"
  exit 0
fi

BUILD_DIR=build-tidy
cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
      -DVBR_BUILD_FUZZERS=ON >/dev/null

if [[ $# -gt 0 ]]; then
  FILES=("$@")
else
  mapfile -t FILES < <(find src bench examples fuzz -name '*.cpp' | sort)
fi

if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -quiet -p "$BUILD_DIR" "${FILES[@]}"
else
  status=0
  for f in "${FILES[@]}"; do
    clang-tidy -quiet -p "$BUILD_DIR" "$f" || status=1
  done
  exit $status
fi
