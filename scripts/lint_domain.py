#!/usr/bin/env python3
"""Historical entry point for the repo's domain lint.

The regex rules that used to live here (R1 rng-purity, R2 lgamma-reentrancy,
R3 no-mutable-static, R4 no-naked-new, R5 pragma-once, R6 atomic-artifacts)
were ported onto the token stream of `tools/vbr_analyze`, which also checks
the invariants a regex cannot (fork safety, RNG stream discipline, thread
exception boundaries, contract coverage, naive accumulation). This wrapper
delegates so existing muscle memory — `python3 scripts/lint_domain.py`,
`ctest -R domain_lint` — keeps working.

Usage:
    lint_domain.py [--bin PATH] [vbr_analyze args...]

The analyzer binary is located from, in order: --bin, $VBR_ANALYZE, the
conventional build directories. Exit status is the analyzer's (the number of
findings, capped at 125).
"""
import os
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
CANDIDATES = [
    REPO_ROOT / "build" / "tools" / "vbr_analyze" / "vbr_analyze",
    REPO_ROOT / "build-asan" / "tools" / "vbr_analyze" / "vbr_analyze",
    REPO_ROOT / "build-tsan" / "tools" / "vbr_analyze" / "vbr_analyze",
]


def find_binary(argv):
    if "--bin" in argv:
        i = argv.index("--bin")
        if i + 1 >= len(argv):
            print("lint_domain: --bin needs a path", file=sys.stderr)
            sys.exit(126)
        path = pathlib.Path(argv[i + 1])
        del argv[i : i + 2]
        return path
    env = os.environ.get("VBR_ANALYZE")
    if env:
        return pathlib.Path(env)
    for candidate in CANDIDATES:
        if candidate.is_file():
            return candidate
    print(
        "lint_domain: vbr_analyze binary not found; build it first\n"
        "  cmake -B build -S . && cmake --build build --target vbr_analyze\n"
        "or point --bin / $VBR_ANALYZE at it",
        file=sys.stderr,
    )
    sys.exit(126)


def main() -> int:
    argv = sys.argv[1:]
    # The old lint spelled it --list; the analyzer spells it --list-rules.
    argv = ["--list-rules" if a == "--list" else a for a in argv]
    binary = find_binary(argv)
    cmd = [str(binary), "--root", str(REPO_ROOT), *argv]
    return subprocess.run(cmd, check=False).returncode


if __name__ == "__main__":
    sys.exit(main())
