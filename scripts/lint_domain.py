#!/usr/bin/env python3
"""Domain lint: repo-specific invariants that generic tools don't know about.

Run from the repo root (or via ctest, test name `domain_lint`):

    python3 scripts/lint_domain.py            # lint the whole tree
    python3 scripts/lint_domain.py --list     # show the rules and exit

Rules (each encodes a bug class this repo has actually hit or must never hit):

  R1 rng-purity        std::rand / srand / std::random_device / std::mt19937
                       appear only in src/vbr/common/rng.cpp. Every stochastic
                       component must draw from the seeded, splittable
                       vbr::Rng so experiments stay reproducible.
  R2 lgamma-reentrancy bare (std::)lgamma appears only in
                       src/vbr/common/special_functions.cpp, which wraps the
                       reentrant lgamma_r. std::lgamma writes the process
                       global `signgam` — the data race TSan caught in PR 1.
  R3 no-mutable-static no namespace-scope mutable globals and no function-
                       local `static` non-const state in library sources
                       outside the allowlist (same `signgam` bug class).
                       Headers are scanned too — subsystems with
                       header-visible code (e.g. src/vbr/stream/) get the
                       same guarantee; static member-function declarations
                       are recognized and skipped.
  R4 no-naked-new      no `new`/`delete` expressions; the library is
                       value-semantic and RAII-managed throughout.
  R5 pragma-once       every header under src/ starts its preprocessor life
                       with #pragma once.
  R6 atomic-artifacts  no direct std::ofstream in bench/, examples/,
                       src/vbr/run/ or src/vbr/common/ outside
                       atomic_file.cpp. Checkpoints and benchmark artifacts
                       must go through vbr::write_file_atomic (temp file +
                       rename) so a killed process can never leave a torn
                       file that a resume would then trust.

Violations print as file:line: [rule] message, and the exit status is the
number of violations (0 = clean).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Directories scanned per rule. Tests are exempt from R1/R3 (they may use
# local statics for fixtures) but not from the others.
LIBRARY_DIRS = ["src"]
CODE_DIRS = ["src", "bench", "examples", "fuzz"]
ALL_DIRS = ["src", "bench", "examples", "fuzz", "tests"]

# R1: the one file allowed to touch the raw entropy/stdlib generators.
RNG_ALLOWLIST = {"src/vbr/common/rng.cpp"}

# R2: the one file allowed to call lgamma (it wraps lgamma_r).
LGAMMA_ALLOWLIST = {"src/vbr/common/special_functions.cpp"}

# R6: directories whose file writes are artifacts (checkpoints, bench JSON)
# that resume/CI logic later trusts, and the one helper allowed to open an
# ofstream there. The trace writer (src/vbr/trace/) is exempt: it appends to
# its own format with explicit short-write detection and resume truncation.
ATOMIC_ARTIFACT_DIRS = ["bench", "examples", "src/vbr/run", "src/vbr/common"]
ATOMIC_WRITE_ALLOWLIST = {"src/vbr/common/atomic_file.cpp"}

# R3: files with reviewed, synchronization-guarded static state.
#   davies_harte.cpp — the mutex-guarded eigenvalue cache
#   paxson_fgn.cpp   — the mutex-guarded spectrum cache (same pattern:
#                      compute outside the lock, first insert wins)
#   fft_fast.cpp     — the mutex-guarded twiddle-plan cache (same pattern)
#   dct.cpp          — `static const` basis (const, listed for the declaration
#                      form `static const Basis b;` inside a function)
MUTABLE_STATIC_ALLOWLIST = {
    "src/vbr/model/davies_harte.cpp",
    "src/vbr/model/paxson_fgn.cpp",
    "src/vbr/common/fft_fast.cpp",
}


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line structure."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("\n" * text.count("\n", i, j))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote:
                    j += 1
                    break
                if text[j] == "\n":  # unterminated; bail at line end
                    break
                j += 1
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def iter_sources(dirs, suffixes):
    for d in dirs:
        root = REPO_ROOT / d
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*")):
            if path.suffix in suffixes and path.is_file():
                yield path


def relpath(path: Path) -> str:
    return path.relative_to(REPO_ROOT).as_posix()


def lint(violations):
    def report(path, line_no, rule, message):
        violations.append(f"{relpath(path)}:{line_no}: [{rule}] {message}")

    # --- R1 / R2 / R4: token scans over comment-stripped sources ----------
    r1_pattern = re.compile(r"\bstd::rand\b|\bsrand\s*\(|\brandom_device\b|\bmt19937\b")
    r2_pattern = re.compile(r"(?<![\w:])(?:std::)?lgamma\s*\(")
    r4_pattern = re.compile(r"(?<![\w:.])new\s+[\w:<(]|(?<![\w:.])delete\s*(?:\[\s*\])?\s+\w|(?<![\w:.])delete\s+\[")

    for path in iter_sources(CODE_DIRS, {".cpp", ".hpp", ".h"}):
        rel = relpath(path)
        clean = strip_comments_and_strings(path.read_text(encoding="utf-8"))
        for line_no, line in enumerate(clean.splitlines(), 1):
            if rel not in RNG_ALLOWLIST and r1_pattern.search(line):
                report(path, line_no, "R1",
                       "stdlib RNG outside rng.cpp; draw from the seeded vbr::Rng")
            if rel not in LGAMMA_ALLOWLIST and r2_pattern.search(line):
                report(path, line_no, "R2",
                       "bare lgamma writes global signgam; use vbr::lgamma_safe")
            if r4_pattern.search(line):
                report(path, line_no, "R4",
                       "naked new/delete; use containers or smart pointers")

    # --- R3: mutable static state in library sources and headers ----------
    # `static` at statement level that is not const/constexpr. Headers are
    # scanned as well so subsystems that keep inline code in headers (the
    # streaming sketches in src/vbr/stream/, templates in common/) can't
    # smuggle in global state; a `static` line in a header is skipped only
    # when it parses as a member-function declaration — a parenthesized
    # parameter list with no initializer before it.
    r3_pattern = re.compile(r"^\s*static\s+(?!const\b|constexpr\b|_Thread_local\b|thread_local\b)")
    r3_function_decl = re.compile(r"^[^=]*\(")
    for path in iter_sources(LIBRARY_DIRS, {".cpp", ".hpp", ".h"}):
        rel = relpath(path)
        if rel in MUTABLE_STATIC_ALLOWLIST:
            continue
        is_header = path.suffix != ".cpp"
        clean = strip_comments_and_strings(path.read_text(encoding="utf-8"))
        for line_no, line in enumerate(clean.splitlines(), 1):
            if not r3_pattern.search(line):
                continue
            if is_header and r3_function_decl.search(line):
                continue
            report(path, line_no, "R3",
                   "mutable static state (the signgam bug class); "
                   "pass state explicitly or allowlist a reviewed cache")

    # --- R6: artifact writes go through vbr::write_file_atomic -------------
    r6_pattern = re.compile(r"\bofstream\b")
    for path in iter_sources(ATOMIC_ARTIFACT_DIRS, {".cpp", ".hpp", ".h"}):
        rel = relpath(path)
        if rel in ATOMIC_WRITE_ALLOWLIST:
            continue
        clean = strip_comments_and_strings(path.read_text(encoding="utf-8"))
        for line_no, line in enumerate(clean.splitlines(), 1):
            if r6_pattern.search(line):
                report(path, line_no, "R6",
                       "direct ofstream artifact write; use vbr::write_file_atomic "
                       "(temp file + rename) so crashes can't leave torn artifacts")

    # --- R5: #pragma once in every header ----------------------------------
    for path in iter_sources(LIBRARY_DIRS, {".hpp", ".h"}):
        text = path.read_text(encoding="utf-8")
        for line in text.splitlines():
            stripped = line.strip()
            if not stripped or stripped.startswith("//"):
                continue
            if stripped == "#pragma once":
                break
            report(path, 1, "R5", "header must open with #pragma once")
            break
        else:
            report(path, 1, "R5", "header must open with #pragma once")


def main(argv):
    if "--list" in argv:
        print(__doc__)
        return 0
    violations = []
    lint(violations)
    for v in violations:
        print(v)
    if violations:
        print(f"domain lint: {len(violations)} violation(s)")
    else:
        print("domain lint: clean")
    return min(len(violations), 125)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
