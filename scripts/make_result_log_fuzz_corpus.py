#!/usr/bin/env python3
"""Seed corpus generator for fuzz_sweep_result_log.

Writes one file per interesting VBRSWPL1 shape into
fuzz/corpus/sweep_result_log/: a healthy two-record log, every flavour of
torn tail, header corruption (magic/version/CRC/field skew), and record
corruption that must be rejected rather than healed (out-of-range index,
bogus tags, conflicting duplicates). The byte layout mirrors
src/vbr/sweep/result_log.cpp exactly; vbr::crc32 is the zlib polynomial, so
zlib.crc32 produces identical checksums.
"""
import argparse
import pathlib
import struct
import zlib

MAGIC = b"VBRSWPL1"
VERSION = 1

# fuzz_header() in fuzz_sweep_result_log.cpp — paths 2/3 prepend this exact
# header, so corpus records target its shard range [16, 32).
HEADER_FIELDS = (
    0x5157454550313934,  # sweep_fingerprint
    0x0053484152443031,  # shard_fingerprint
    64,                  # total_cells
    4,                   # shard_count
    1,                   # shard_index
    16,                  # first_cell
    32,                  # end_cell
)


def sealed_header(fields=HEADER_FIELDS, magic=MAGIC, version=VERSION):
    payload = struct.pack("<7Q", *fields)
    return (magic + struct.pack("<IQI", version, len(payload),
                                zlib.crc32(payload)) + payload)


def frame(payload: bytes) -> bytes:
    return struct.pack("<QI", len(payload), zlib.crc32(payload)) + payload


def done_record(index: int) -> bytes:
    results = (5.3e6, 6.6e6, 8192.0, 1.25e-3, 900.0, 8192.0)
    return struct.pack("<QB6d", index, 1, *results)


def quarantined_record(index: int, message=b"watchdog deadline exceeded",
                       kind=2) -> bytes:
    head = struct.pack("<QB3I2Qd", index, 2, kind, 0, 9, 3, 5120, 1.5)
    strings = struct.pack("<Q", len(message)) + message + struct.pack("<Q", 5) + b"noise"
    return head + strings


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--out", default="fuzz/corpus/sweep_result_log")
    out = pathlib.Path(parser.parse_args().out)
    out.mkdir(parents=True, exist_ok=True)

    healthy = sealed_header() + frame(done_record(16)) + frame(quarantined_record(20))

    seeds = {
        "valid": healthy,
        "header_only": sealed_header(),
        "torn_frame_header": healthy + b"\x40\x00\x00\x00\x00\x00\x00",
        "torn_payload": healthy + frame(done_record(25))[:-10],
        "bad_magic": b"VBRSWEP1" + healthy[8:],
        "version_skew": sealed_header(version=VERSION + 1),
        "header_truncated": healthy[:40],
        "header_crc_flip": healthy[:30] + bytes([healthy[30] ^ 0x10]) + healthy[31:],
        # CRC-valid header whose fields are nonsense: shard slot outside the
        # shard count — forged, not torn, so it must throw.
        "header_field_skew": sealed_header(fields=(1, 2, 64, 4, 4, 16, 32)),
        "record_crc_flip": (healthy[:-3] + bytes([healthy[-3] ^ 0x10]) + healthy[-2:]),
        "record_out_of_range": sealed_header() + frame(done_record(40)),
        "record_bad_status": sealed_header()
        + frame(struct.pack("<QB6d", 17, 7, *(0.0,) * 6)),
        "record_bad_kind": sealed_header() + frame(quarantined_record(18, kind=9)),
        "record_trailing": sealed_header() + frame(done_record(16) + b"\x00"),
        "record_size_lies": sealed_header() + struct.pack("<QI", 1 << 40, 0),
        "duplicate": sealed_header() + frame(done_record(16)) * 2,
        "conflicting_duplicate": sealed_header()
        + frame(done_record(16))
        + frame(struct.pack("<QB6d", 16, 1, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0)),
        "oversized_message": sealed_header()
        + frame(quarantined_record(19, message=b"x" * 5000)),
    }
    for name, data in seeds.items():
        (out / name).write_bytes(data)
    print(f"wrote {len(seeds)} seeds to {out}")


if __name__ == "__main__":
    main()
