#!/usr/bin/env bash
# Reproduce every exhibit of the paper: build, test, and run all experiment
# drivers, collecting outputs under results/.
#
# Usage: scripts/reproduce_all.sh [build-dir]
# Env:   VBR_BENCH_FRAMES=20000  for a quick smoke run at reduced scale.
set -euo pipefail

BUILD_DIR="${1:-build}"
RESULTS_DIR="results"

cmake -B "$BUILD_DIR" -G Ninja
cmake --build "$BUILD_DIR"
ctest --test-dir "$BUILD_DIR" --output-on-failure

mkdir -p "$RESULTS_DIR"
for bench in "$BUILD_DIR"/bench/bench_*; do
  [ -f "$bench" ] && [ -x "$bench" ] || continue
  name="$(basename "$bench")"
  echo "== $name"
  "$bench" | tee "$RESULTS_DIR/$name.txt"
done

echo
echo "All exhibits reproduced; outputs in $RESULTS_DIR/"
