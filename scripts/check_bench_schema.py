#!/usr/bin/env python3
"""Schema smoke-check for BENCH_generator_pareto.json.

CI runs bench_generator_pareto at reduced scale and then this script, so a
refactor that silently drops a field, emits malformed JSON, or records an
out-of-domain number fails the build — the recorded artifact in results/
and any downstream plotting stay parseable. Usage:

    python3 scripts/check_bench_schema.py path/to/BENCH_generator_pareto.json
"""
import json
import sys


def fail(msg):
    print(f"schema check FAILED: {msg}", file=sys.stderr)
    sys.exit(1)


def require(cond, msg):
    if not cond:
        fail(msg)


def check_number(obj, key, lo=None, hi=None, ctx=""):
    require(key in obj, f"missing key '{key}' {ctx}")
    v = obj[key]
    require(isinstance(v, (int, float)) and not isinstance(v, bool),
            f"'{key}' is not a number {ctx}")
    if lo is not None:
        require(v >= lo, f"'{key}' = {v} below {lo} {ctx}")
    if hi is not None:
        require(v <= hi, f"'{key}' = {v} above {hi} {ctx}")
    return v


def main():
    if len(sys.argv) != 2:
        fail("expected exactly one argument: path to BENCH_generator_pareto.json")
    try:
        with open(sys.argv[1]) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {sys.argv[1]}: {e}")

    require(doc.get("bench") == "generator_pareto", "bench name mismatch")
    require(doc.get("contracts") in ("on", "off"), "contracts must be on/off")
    check_number(doc, "frames", lo=1)
    check_number(doc, "reps", lo=1)
    check_number(doc, "fidelity_frames", lo=32)
    check_number(doc, "timing_hurst", lo=0.0, hi=1.0)

    gens = doc.get("generators")
    require(isinstance(gens, list) and gens, "'generators' must be a non-empty list")
    names = [g.get("name") for g in gens]
    require(len(set(names)) == len(names), "duplicate generator names")
    expected = {"davies-harte", "hosking", "paxson", "onoff"}
    require(expected <= set(names),
            f"zoo registry incomplete: missing {expected - set(names)}")

    for g in gens:
        ctx = f"(generator {g.get('name')})"
        require(isinstance(g.get("exact"), bool), f"'exact' not bool {ctx}")
        require(g.get("covariance") in ("farima", "fgn"), f"bad covariance {ctx}")
        require(isinstance(g.get("pareto_optimal"), bool),
                f"'pareto_optimal' not bool {ctx}")
        check_number(g, "timing_frames", lo=1, ctx=ctx)
        check_number(g, "fidelity_frames", lo=32, ctx=ctx)
        check_number(g, "cold_ms_median", lo=0.0, ctx=ctx)
        check_number(g, "warm_ms_median", lo=0.0, ctx=ctx)
        check_number(g, "frames_per_second_cold", lo=1, ctx=ctx)
        check_number(g, "max_whittle_error", lo=0.0, hi=1.0, ctx=ctx)
        check_number(g, "max_gaussian_ks", lo=0.0, hi=1.0, ctx=ctx)
        check_number(g, "max_acf_rms_error", lo=0.0, ctx=ctx)
        fid = g.get("fidelity")
        require(isinstance(fid, list) and len(fid) == 3,
                f"'fidelity' must list the three H targets {ctx}")
        targets = []
        for row in fid:
            targets.append(check_number(row, "target_hurst", lo=0.0, hi=1.0, ctx=ctx))
            check_number(row, "whittle_hurst", lo=0.0, hi=1.0, ctx=ctx)
            check_number(row, "vt_hurst", lo=0.0, hi=1.5, ctx=ctx)
            check_number(row, "gaussian_ks", lo=0.0, hi=1.0, ctx=ctx)
            check_number(row, "acf_rms_error", lo=0.0, ctx=ctx)
            check_number(row, "sample_variance", lo=0.0, ctx=ctx)
        require(targets == [0.6, 0.75, 0.9], f"unexpected H grid {targets} {ctx}")

    require(any(g["pareto_optimal"] for g in gens),
            "no generator marked pareto_optimal — the front cannot be empty")

    c = doc.get("constraints")
    require(isinstance(c, dict), "missing 'constraints' object")
    require(isinstance(c.get("enforced"), bool), "'enforced' not bool")
    check_number(c, "paxson_speedup_min", lo=1.0)
    check_number(c, "paxson_cold_speedup", lo=0.0)
    check_number(c, "whittle_tolerance", lo=0.0, hi=1.0)
    require(isinstance(c.get("paxson_speedup_ok"), bool), "'paxson_speedup_ok' not bool")
    require(isinstance(c.get("paxson_whittle_ok"), bool), "'paxson_whittle_ok' not bool")
    if c["enforced"]:
        require(c["paxson_speedup_ok"] and c["paxson_whittle_ok"],
                "enforced constraints recorded as failing")

    print(f"schema check OK: {sys.argv[1]} ({len(gens)} generators)")


if __name__ == "__main__":
    main()
