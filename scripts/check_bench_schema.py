#!/usr/bin/env python3
"""Schema smoke-check for the recorded BENCH_*.json artifacts.

CI runs each bench at reduced scale and then this script, so a refactor
that silently drops a field, emits malformed JSON, or records an
out-of-domain number fails the build — the recorded artifacts in results/
and any downstream plotting stay parseable. The schema is dispatched on the
document's own name field, so one entry point covers every bench:

    python3 scripts/check_bench_schema.py path/to/BENCH_generator_pareto.json
    python3 scripts/check_bench_schema.py path/to/BENCH_engine_scaling.json
    python3 scripts/check_bench_schema.py path/to/BENCH_service.json
    python3 scripts/check_bench_schema.py path/to/BENCH_sweep_shard.json
"""
import json
import sys


def fail(msg):
    print(f"schema check FAILED: {msg}", file=sys.stderr)
    sys.exit(1)


def require(cond, msg):
    if not cond:
        fail(msg)


def check_number(obj, key, lo=None, hi=None, ctx=""):
    require(key in obj, f"missing key '{key}' {ctx}")
    v = obj[key]
    require(isinstance(v, (int, float)) and not isinstance(v, bool),
            f"'{key}' is not a number {ctx}")
    if lo is not None:
        require(v >= lo, f"'{key}' = {v} below {lo} {ctx}")
    if hi is not None:
        require(v <= hi, f"'{key}' = {v} above {hi} {ctx}")
    return v


def check_hash(obj, key, ctx=""):
    v = obj.get(key)
    require(isinstance(v, str) and len(v) == 16
            and all(c in "0123456789abcdef" for c in v),
            f"'{key}' is not a 16-hex-digit hash {ctx}")
    return v


def check_engine_scaling(doc):
    """BENCH_engine_scaling.json: thread-scaling + determinism witness."""
    require(doc.get("contracts") in ("on", "off"), "contracts must be on/off")
    check_number(doc, "sources", lo=1)
    check_number(doc, "frames_per_source", lo=1)
    check_number(doc, "hardware_concurrency", lo=1)
    results = doc.get("results")
    require(isinstance(results, list) and results,
            "'results' must be a non-empty list")
    hashes = set()
    for row in results:
        ctx = f"(threads {row.get('threads')})"
        check_number(row, "threads", lo=1, ctx=ctx)
        check_number(row, "threads_used", lo=1, ctx=ctx)
        check_number(row, "wall_seconds", lo=0.0, ctx=ctx)
        check_number(row, "frames_per_second", lo=1.0, ctx=ctx)
        check_number(row, "bytes_per_second", lo=0.0, ctx=ctx)
        check_number(row, "speedup_vs_first", lo=0.0, ctx=ctx)
        hashes.add(check_hash(row, "trace_hash", ctx=ctx))
    require(isinstance(doc.get("bit_identical_across_thread_counts"), bool),
            "'bit_identical_across_thread_counts' not bool")
    require(doc["bit_identical_across_thread_counts"],
            "recorded run was not bit-identical across thread counts")
    require(len(hashes) == 1, "trace hashes differ across thread counts")
    ck = doc.get("checkpoint_overhead")
    require(isinstance(ck, dict), "missing 'checkpoint_overhead' object")
    check_number(ck, "plain_seconds", lo=0.0)
    check_number(ck, "checkpointed_seconds", lo=0.0)
    check_number(ck, "overhead_fraction", lo=-1.0)
    check_number(ck, "checkpoint_every_sources", lo=1)
    print(f"schema check OK: {sys.argv[1]} ({len(results)} thread counts)")


def check_service(doc):
    """BENCH_service.json: streaming-service throughput + footprint."""
    require(doc.get("contracts") in ("on", "off"), "contracts must be on/off")
    streams = check_number(doc, "streams", lo=1)
    check_number(doc, "samples_per_stream", lo=1)
    check_number(doc, "block", lo=1)
    require(doc.get("backend") in ("hosking", "paxson", "onoff"),
            f"unknown backend {doc.get('backend')}")
    check_number(doc, "hosking_horizon", lo=1)
    check_number(doc, "hardware_concurrency", lo=1)
    results = doc.get("results")
    require(isinstance(results, list) and results,
            "'results' must be a non-empty list")
    hashes = set()
    for row in results:
        ctx = f"(threads {row.get('threads')})"
        check_number(row, "threads", lo=1, ctx=ctx)
        check_number(row, "build_seconds", lo=0.0, ctx=ctx)
        check_number(row, "streams_per_second_build", lo=0.0, ctx=ctx)
        check_number(row, "serve_seconds", lo=0.0, ctx=ctx)
        check_number(row, "samples_per_second", lo=1.0, ctx=ctx)
        check_number(row, "speedup_vs_first", lo=0.0, ctx=ctx)
        hashes.add(check_hash(row, "results_hash", ctx=ctx))
    require(len(hashes) == 1, "results hashes differ across thread counts")
    require(isinstance(doc.get("bit_identical_across_thread_counts"), bool),
            "'bit_identical_across_thread_counts' not bool")
    require(doc["bit_identical_across_thread_counts"],
            "recorded run was not bit-identical across thread counts")
    ck = doc.get("checkpoint")
    require(isinstance(ck, dict), "missing 'checkpoint' object")
    check_number(ck, "save_seconds", lo=0.0)
    check_number(ck, "load_seconds", lo=0.0)
    require(ck.get("hash_match") is True, "checkpoint round-trip hash mismatch")
    ov = doc.get("overload")
    require(isinstance(ov, dict), "missing 'overload' object")
    check_number(ov, "plain_seconds", lo=0.0)
    check_number(ov, "guarded_seconds", lo=0.0)
    # The always-snapshot guard costs something but must stay sane; a
    # recorded 3x slowdown means the isolation path regressed.
    check_number(ov, "quarantine_overhead_fraction", lo=-0.5, hi=2.0)
    check_number(ov, "shed_latency_seconds", lo=0.0)
    check_number(ov, "streams_served_under_pressure", lo=1)
    failures = check_number(ov, "stream_failures", lo=0)
    expected = check_number(ov, "expected_stream_failures", lo=1)
    require(failures == expected,
            f"seeded fault schedule produced {failures} StreamFailure records, "
            f"expected exactly {expected}")
    check_number(ov, "transient_retries", lo=0)
    check_hash(ov, "results_hash", ctx="(overload)")
    require(ov.get("hash_match") is True,
            "degraded-mode results hash not invariant across thread counts")
    check_number(doc, "build_seconds", lo=0.0)
    check_number(doc, "serve_rss_mib", lo=0.0)
    check_number(doc, "peak_rss_mib", lo=0.0)
    per_million = check_number(doc, "rss_mib_per_million_streams", lo=0.0)
    # The bounded-memory contract at recorded scale (normalized from the
    # serve-phase RSS, one live fleet): at >= 2^18 streams the fixed
    # process overhead is amortized and per-stream state dominates, so the
    # normalized footprint must stay inside the documented 1 GiB/10^6
    # ceiling check.sh --service enforces.
    if streams >= (1 << 18):
        require(per_million <= 1024.0,
                f"rss_mib_per_million_streams = {per_million} above the 1 GiB ceiling")
    print(f"schema check OK: {sys.argv[1]} ({len(results)} thread counts, "
          f"{streams} streams)")


def check_generator_pareto(doc):
    require(doc.get("bench") == "generator_pareto", "bench name mismatch")
    require(doc.get("contracts") in ("on", "off"), "contracts must be on/off")
    check_number(doc, "frames", lo=1)
    check_number(doc, "reps", lo=1)
    check_number(doc, "fidelity_frames", lo=32)
    check_number(doc, "timing_hurst", lo=0.0, hi=1.0)

    gens = doc.get("generators")
    require(isinstance(gens, list) and gens, "'generators' must be a non-empty list")
    names = [g.get("name") for g in gens]
    require(len(set(names)) == len(names), "duplicate generator names")
    expected = {"davies-harte", "hosking", "paxson", "onoff"}
    require(expected <= set(names),
            f"zoo registry incomplete: missing {expected - set(names)}")

    for g in gens:
        ctx = f"(generator {g.get('name')})"
        require(isinstance(g.get("exact"), bool), f"'exact' not bool {ctx}")
        require(g.get("covariance") in ("farima", "fgn"), f"bad covariance {ctx}")
        require(isinstance(g.get("pareto_optimal"), bool),
                f"'pareto_optimal' not bool {ctx}")
        check_number(g, "timing_frames", lo=1, ctx=ctx)
        check_number(g, "fidelity_frames", lo=32, ctx=ctx)
        check_number(g, "cold_ms_median", lo=0.0, ctx=ctx)
        check_number(g, "warm_ms_median", lo=0.0, ctx=ctx)
        check_number(g, "frames_per_second_cold", lo=1, ctx=ctx)
        check_number(g, "max_whittle_error", lo=0.0, hi=1.0, ctx=ctx)
        check_number(g, "max_gaussian_ks", lo=0.0, hi=1.0, ctx=ctx)
        check_number(g, "max_acf_rms_error", lo=0.0, ctx=ctx)
        fid = g.get("fidelity")
        require(isinstance(fid, list) and len(fid) == 3,
                f"'fidelity' must list the three H targets {ctx}")
        targets = []
        for row in fid:
            targets.append(check_number(row, "target_hurst", lo=0.0, hi=1.0, ctx=ctx))
            check_number(row, "whittle_hurst", lo=0.0, hi=1.0, ctx=ctx)
            check_number(row, "vt_hurst", lo=0.0, hi=1.5, ctx=ctx)
            check_number(row, "gaussian_ks", lo=0.0, hi=1.0, ctx=ctx)
            check_number(row, "acf_rms_error", lo=0.0, ctx=ctx)
            check_number(row, "sample_variance", lo=0.0, ctx=ctx)
        require(targets == [0.6, 0.75, 0.9], f"unexpected H grid {targets} {ctx}")

    require(any(g["pareto_optimal"] for g in gens),
            "no generator marked pareto_optimal — the front cannot be empty")

    c = doc.get("constraints")
    require(isinstance(c, dict), "missing 'constraints' object")
    require(isinstance(c.get("enforced"), bool), "'enforced' not bool")
    check_number(c, "paxson_speedup_min", lo=1.0)
    check_number(c, "paxson_cold_speedup", lo=0.0)
    check_number(c, "whittle_tolerance", lo=0.0, hi=1.0)
    require(isinstance(c.get("paxson_speedup_ok"), bool), "'paxson_speedup_ok' not bool")
    require(isinstance(c.get("paxson_whittle_ok"), bool), "'paxson_whittle_ok' not bool")
    if c["enforced"]:
        require(c["paxson_speedup_ok"] and c["paxson_whittle_ok"],
                "enforced constraints recorded as failing")

    print(f"schema check OK: {sys.argv[1]} ({len(gens)} generators)")


def check_sweep_shard(doc):
    """BENCH_sweep_shard.json: checkpoint I/O + steal latency + pool scaling."""
    require(doc.get("contracts") in ("on", "off"), "contracts must be on/off")

    io = doc.get("checkpoint_io")
    require(isinstance(io, list) and io, "'checkpoint_io' must be a non-empty list")
    prev_cells = 0
    for row in io:
        ctx = f"(cells {row.get('cells')})"
        cells = check_number(row, "cells", lo=1, ctx=ctx)
        require(cells > prev_cells, f"'cells' must be strictly increasing {ctx}")
        prev_cells = cells
        check_number(row, "manifest_rewrite_bytes", lo=1, ctx=ctx)
        check_number(row, "manifest_rewrite_bytes_per_cell", lo=1.0, ctx=ctx)
        check_number(row, "manifest_rewrite_seconds", lo=0.0, ctx=ctx)
        check_number(row, "log_append_bytes", lo=1, ctx=ctx)
        check_number(row, "log_append_bytes_per_cell", lo=1.0, ctx=ctx)
        check_number(row, "log_append_seconds", lo=0.0, ctx=ctx)
    require(isinstance(doc.get("log_bytes_per_cell_flat"), bool),
            "'log_bytes_per_cell_flat' not bool")
    # The tentpole claim: checkpoint cost per settled cell is O(1) for the
    # append-only log. The bench exits nonzero when this fails, so a recorded
    # artifact carrying false means someone pasted a broken run.
    require(doc["log_bytes_per_cell_flat"],
            "recorded run shows append-only log cost growing with sweep size")

    steal = doc.get("steal")
    require(isinstance(steal, dict), "missing 'steal' object")
    check_number(steal, "iterations", lo=1)
    check_number(steal, "mean_steal_seconds", lo=0.0)
    check_number(steal, "salvage_records", lo=1)
    check_number(steal, "mean_salvage_seconds", lo=0.0)
    require(steal.get("all_steals_succeeded") is True,
            "recorded run contains failed lease steals")

    check_number(doc, "sweep_cells", lo=1)
    pools = doc.get("pools")
    require(isinstance(pools, list) and pools, "'pools' must be a non-empty list")
    hashes = set()
    for row in pools:
        ctx = f"(pools {row.get('pools')})"
        p = check_number(row, "pools", lo=1, ctx=ctx)
        check_number(row, "shards", lo=p, ctx=ctx)
        check_number(row, "pools_failed", lo=0, hi=0, ctx=ctx)
        check_number(row, "wall_seconds", lo=0.0, ctx=ctx)
        check_number(row, "cells_per_second", lo=0.0, ctx=ctx)
        check_number(row, "speedup_vs_first", lo=0.0, ctx=ctx)
        hashes.add(check_hash(row, "results_hash", ctx=ctx))
    require(len(hashes) == 1, "results hashes differ across pool counts")
    require(doc.get("bit_identical_across_pool_counts") is True,
            "recorded run was not bit-identical across pool counts")
    print(f"schema check OK: {sys.argv[1]} ({len(io)} sweep sizes, "
          f"{len(pools)} pool counts)")


def main():
    if len(sys.argv) != 2:
        fail("expected exactly one argument: path to a BENCH_*.json artifact")
    try:
        with open(sys.argv[1]) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {sys.argv[1]}: {e}")

    checkers = {
        "engine_scaling": check_engine_scaling,
        "service": check_service,
        "sweep_shard": check_sweep_shard,
    }
    if doc.get("bench") == "generator_pareto":
        check_generator_pareto(doc)
    elif doc.get("benchmark") in checkers:
        checkers[doc["benchmark"]](doc)
    else:
        fail(f"unrecognized bench document: bench={doc.get('bench')!r} "
             f"benchmark={doc.get('benchmark')!r}")


if __name__ == "__main__":
    main()
