// ARMA filtering and the general fractional ARIMA(p, d, q) generator.
//
// Section 4 of the paper: "An additional set of short-term correlation
// parameters may be included by combining this model with an ARMA filter or
// modulating it with the state of a Markov chain." This module provides the
// ARMA route: a stationary ARMA(p, q) filter that can be driven by the
// fARIMA(0, d, 0) core, yielding fARIMA(p, d, q) — LRD at long lags from d,
// tunable short-range correlation from the AR/MA polynomials.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "vbr/common/rng.hpp"

namespace vbr::model {

/// Coefficients of x_t = sum_i ar[i] x_{t-i} + e_t + sum_j ma[j] e_{t-j}.
struct ArmaParams {
  std::vector<double> ar;  ///< autoregressive coefficients phi_1..phi_p
  std::vector<double> ma;  ///< moving-average coefficients theta_1..theta_q
};

/// Stationary ARMA(p, q) filter.
class ArmaFilter {
 public:
  explicit ArmaFilter(ArmaParams params);

  const ArmaParams& params() const { return params_; }

  /// Apply the filter to an innovation sequence (zero initial state).
  /// The first max(p, q) outputs carry transient start-up effects.
  std::vector<double> filter(std::span<const double> innovations) const;

  /// Variance of the stationary output for unit-variance white innovations
  /// (computed from the impulse response; used to re-standardize).
  double output_variance(std::size_t horizon = 4096) const;

  /// Impulse response psi_0..psi_{n-1} (MA(inf) representation).
  std::vector<double> impulse_response(std::size_t n) const;

  /// True when all AR roots lie outside the unit circle (evaluated by a
  /// conservative coefficient test + impulse-response decay check).
  bool is_stationary() const;

 private:
  ArmaParams params_;
};

struct FarimaPdqOptions {
  double hurst = 0.8;       ///< long-memory parameter, d = H - 1/2
  ArmaParams arma;          ///< short-range structure
  double variance = 1.0;    ///< marginal variance of the output
};

/// Generate n points of fARIMA(p, d, q): Davies-Harte fARIMA(0,d,0) core
/// passed through the ARMA filter, re-standardized to the requested
/// variance. The long-lag autocorrelations keep the hyperbolic d-decay; the
/// ARMA part shapes the first lags.
std::vector<double> farima_pdq(std::size_t n, const FarimaPdqOptions& options, Rng& rng);

/// Fit AR(p) coefficients to a sample autocorrelation sequence by solving
/// the Yule-Walker equations (Levinson-Durbin). acf[0] must be 1.
std::vector<double> yule_walker(std::span<const double> acf, std::size_t order);

}  // namespace vbr::model
