#include "vbr/model/tes.hpp"

#include <algorithm>
#include <cmath>

#include "vbr/common/error.hpp"

namespace vbr::model {

double tes_stitch(double u, double xi) {
  VBR_ENSURE(u >= 0.0 && u < 1.0, "stitch input must be in [0, 1)");
  if (xi <= 0.0) return 1.0 - u;  // degenerate: pure reflection
  if (xi >= 1.0) return u;
  return (u < xi) ? u / xi : (1.0 - u) / (1.0 - xi);
}

TesGammaParetoSource::TesGammaParetoSource(const stats::GammaParetoParams& marginal,
                                           const TesParams& params)
    : marginal_(marginal), params_(params) {
  VBR_ENSURE(params.alpha > 0.0 && params.alpha <= 1.0, "alpha must be in (0, 1]");
  VBR_ENSURE(params.xi >= 0.0 && params.xi <= 1.0, "xi must be in [0, 1]");
}

std::vector<double> TesGammaParetoSource::background(std::size_t n, Rng& rng) const {
  VBR_ENSURE(n >= 1, "cannot generate an empty sequence");
  std::vector<double> u(n);
  u[0] = rng.uniform();
  for (std::size_t t = 1; t < n; ++t) {
    const double v = rng.uniform(-params_.alpha / 2.0, params_.alpha / 2.0);
    double next = u[t - 1] + v;
    next -= std::floor(next);  // modulo 1
    if (next >= 1.0) next = 0.0;
    u[t] = next;
  }
  return u;
}

std::vector<double> TesGammaParetoSource::generate(std::size_t n, Rng& rng) const {
  VBR_ENSURE(n >= 1, "cannot generate an empty sequence");
  auto u = background(n, rng);
  for (auto& value : u) {
    // Stitch, then invert the target CDF; clamp away from the endpoints so
    // quantile() stays finite.
    const double stitched =
        std::clamp(tes_stitch(value, params_.xi), 1e-15, 1.0 - 1e-15);
    value = marginal_.quantile(stitched);
  }
  return u;
}

}  // namespace vbr::model
