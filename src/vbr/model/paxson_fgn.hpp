// Paxson's fast, approximate frequency-domain synthesis of fractional
// Gaussian noise (Paxson 1997, "Fast, Approximate Synthesis of Fractional
// Gaussian Noise for Generating Self-Similar Network Traffic").
//
// Instead of embedding the exact autocovariance in a circulant (Davies-
// Harte), the method samples a *periodogram* directly from the fGn spectral
// density. Paxson's paper draws each ordinate as an exponential with mean
// f(w_k; H) plus a uniform phase; this implementation draws the equivalent
// complex Gaussian coefficient a_k (Z1 + i Z2) / sqrt(2) instead — the
// squared modulus is the same exponential and the phase is the same uniform,
// but it costs two Normal draws in place of a log plus a sin/cos pair — and
// inverse-transforms with one half-length real FFT (the table-driven
// fast_irfft_pow2, since this path carries no bit-compatibility burden).
// The result is not sample-exact (the covariance is only met in
// expectation, and adjacent output points share no circulant structure) but
// it is statistically faithful: Whittle recovers H, the sample ACF tracks
// the fGn target, and the marginal is exactly Gaussian (a linear map of
// normals; S_0 = 0 additionally pins the sample mean). In exchange the
// cost per cold realization is a fraction of Davies-Harte's (half the FFT
// length, no eigenvalue embedding pass — >= 5x on a cold cache, enforced
// by bench_generator_pareto), which is what the millions-of-sources fleet
// needs. Draw order (k ascending, real before imaginary) is part of the
// determinism contract pinned by the zoo tests.
//
// The spectral density uses Paxson's closed-form B-tilde_3 approximation of
// the aliasing sum sum_j |w + 2 pi j|^{-2H-1} (his Eqs. 4-6): three exact
// terms plus a trapezoid tail correction and an empirical bias polish,
// accurate to a few parts in 1e4 across H in (0, 1) — far below estimator
// noise (cross-checked against the exact truncated sum in the zoo tests).
#pragma once

#include <cstddef>
#include <vector>

#include "vbr/common/rng.hpp"

namespace vbr::model {

struct PaxsonOptions {
  double hurst = 0.8;
  double variance = 1.0;
  /// Reuse the per-(H, length) spectral amplitude vector across calls via a
  /// process-wide, thread-safe cache (mirrors the Davies-Harte eigenvalue
  /// cache). Caching never changes the output.
  bool use_spectrum_cache = true;
};

/// Generate n points of zero-mean approximate fGn with the given H and
/// variance.
///
/// Padding rule: the synthesis FFT needs a power-of-two length, so a
/// non-power-of-two n is generated at m = next_power_of_two(n) and the
/// first n points are returned. The draw sequence depends only on m, so
/// paxson_fgn(n) is bit-identical to the n-point prefix of paxson_fgn(m)
/// under the same Rng state (pinned by a zoo test).
///
/// Throws vbr::InvalidArgument for H outside (0, 1) or variance <= 0.
std::vector<double> paxson_fgn(std::size_t n, const PaxsonOptions& options, Rng& rng);

/// Paxson's approximate fGn spectral density at angular frequency
/// lambda in (0, pi], unit scale (absolute normalization does not matter
/// for synthesis — the amplitude vector is renormalized to the target
/// variance). Exposed for the accuracy cross-check against
/// stats::fgn_spectral_shape.
double paxson_fgn_spectral_density(double lambda, double hurst);

/// Number of distinct (H, synthesis length) amplitude vectors in the
/// process-wide spectrum cache.
std::size_t paxson_spectrum_cache_size();

/// Drop every cached amplitude vector.
void paxson_spectrum_cache_clear();

}  // namespace vbr::model
