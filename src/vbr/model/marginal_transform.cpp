#include "vbr/model/marginal_transform.hpp"

#include <algorithm>
#include <cmath>

#include "vbr/common/error.hpp"
#include "vbr/common/special_functions.hpp"

namespace vbr::model {
namespace {

// Keep probabilities strictly inside (0, 1) so target quantiles stay finite.
double clamp_probability(double p) {
  constexpr double kEps = 1e-15;
  VBR_DCHECK(p >= 0.0 && p <= 1.0, "CDF value left [0, 1]");
  return std::clamp(p, kEps, 1.0 - kEps);
}

}  // namespace

std::vector<double> transform_marginal(std::span<const double> gaussian,
                                       const stats::Distribution& target, double mu,
                                       double sigma) {
  VBR_ENSURE(sigma > 0.0, "Gaussian sigma must be positive");
  VBR_CHECK_FINITE(mu, "Gaussian mean");
  VBR_CHECK_FINITE(sigma, "Gaussian sigma");
  std::vector<double> out;
  out.reserve(gaussian.size());
  for (double x : gaussian) {
    const double p = clamp_probability(normal_cdf((x - mu) / sigma));
    const double y = target.quantile(p);
    VBR_DCHECK(std::isfinite(y), "non-finite marginal-transform output");
    out.push_back(y);
  }
  return out;
}

TabulatedMarginalMap::TabulatedMarginalMap(const stats::Distribution& target,
                                           std::size_t table_points)
    : target_(target) {
  VBR_ENSURE(table_points >= 64, "marginal map table needs at least 64 points");
  // Uniform grid in z over +-8 sigma covers everything a 171k-point
  // realization will produce except the most extreme draws, which fall back
  // to the exact quantile in operator().
  constexpr double kZMax = 8.0;
  z_grid_.resize(table_points);
  y_grid_.resize(table_points);
  for (std::size_t i = 0; i < table_points; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(table_points - 1);
    const double z = -kZMax + 2.0 * kZMax * t;
    z_grid_[i] = z;
    y_grid_[i] = target.quantile(clamp_probability(normal_cdf(z)));
    VBR_CHECK_FINITE(y_grid_[i], "tabulated marginal-map quantile");
  }
}

double TabulatedMarginalMap::operator()(double z) const {
  if (z <= z_grid_.front() || z >= z_grid_.back()) {
    return target_.quantile(clamp_probability(normal_cdf(z)));
  }
  const double step = z_grid_[1] - z_grid_[0];
  const double pos = (z - z_grid_.front()) / step;
  const auto idx = std::min(static_cast<std::size_t>(pos), z_grid_.size() - 2);
  const double frac = pos - static_cast<double>(idx);
  return y_grid_[idx] * (1.0 - frac) + y_grid_[idx + 1] * frac;
}

std::vector<double> TabulatedMarginalMap::apply(std::span<const double> gaussian, double mu,
                                                double sigma) const {
  VBR_ENSURE(sigma > 0.0, "Gaussian sigma must be positive");
  std::vector<double> out;
  out.reserve(gaussian.size());
  for (double x : gaussian) out.push_back((*this)((x - mu) / sigma));
  return out;
}

}  // namespace vbr::model
