#include "vbr/model/markov_source.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "vbr/common/error.hpp"
#include "vbr/common/math_util.hpp"
#include "vbr/stats/autocorrelation.hpp"

namespace vbr::model {

MarkovChainSource::MarkovChainSource(std::vector<double> levels,
                                     std::vector<double> transition)
    : levels_(std::move(levels)), transition_(std::move(transition)) {
  const std::size_t m = levels_.size();
  VBR_ENSURE(m >= 2, "need at least two states");
  VBR_ENSURE(transition_.size() == m * m, "transition matrix size mismatch");
  for (std::size_t i = 0; i < m; ++i) {
    KahanSum row;
    for (std::size_t j = 0; j < m; ++j) {
      VBR_ENSURE(transition_[i * m + j] >= 0.0, "negative transition probability");
      row.add(transition_[i * m + j]);
    }
    VBR_ENSURE(std::abs(row.value() - 1.0) < 1e-9, "transition rows must sum to 1");
  }
}

double MarkovChainSource::transition(std::size_t from, std::size_t to) const {
  VBR_ENSURE(from < states() && to < states(), "state index out of range");
  return transition_[from * states() + to];
}

MarkovChainSource MarkovChainSource::fit(std::span<const double> frame_bytes,
                                         std::size_t states) {
  VBR_ENSURE(states >= 2, "need at least two states");
  VBR_ENSURE(frame_bytes.size() >= states * 20, "trace too short for this state count");

  // Quantile bin edges.
  std::vector<double> sorted(frame_bytes.begin(), frame_bytes.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> edges(states + 1);
  for (std::size_t s = 0; s <= states; ++s) {
    const auto idx = std::min(sorted.size() - 1,
                              (sorted.size() * s) / states);
    edges[s] = sorted[idx];
  }
  edges.front() = sorted.front();
  edges.back() = sorted.back() + 1.0;

  auto state_of = [&](double v) {
    const auto it = std::upper_bound(edges.begin() + 1, edges.end() - 1, v);
    return static_cast<std::size_t>(it - (edges.begin() + 1));
  };

  // Per-state level = mean of the samples falling in the bin.
  std::vector<double> level_sum(states, 0.0);
  std::vector<std::size_t> level_count(states, 0);
  for (double v : frame_bytes) {
    const auto s = state_of(v);
    level_sum[s] += v;
    ++level_count[s];
  }
  std::vector<double> levels(states);
  for (std::size_t s = 0; s < states; ++s) {
    VBR_ENSURE(level_count[s] > 0, "empty quantile bin (degenerate trace)");
    levels[s] = level_sum[s] / static_cast<double>(level_count[s]);
  }

  // Transition counting with add-one smoothing so every row is stochastic.
  std::vector<double> counts(states * states, 1.0);
  for (std::size_t t = 0; t + 1 < frame_bytes.size(); ++t) {
    ++counts[state_of(frame_bytes[t]) * states + state_of(frame_bytes[t + 1])];
  }
  for (std::size_t i = 0; i < states; ++i) {
    KahanSum row;
    for (std::size_t j = 0; j < states; ++j) row.add(counts[i * states + j]);
    for (std::size_t j = 0; j < states; ++j) counts[i * states + j] /= row.value();
  }
  return MarkovChainSource(std::move(levels), std::move(counts));
}

std::vector<double> MarkovChainSource::stationary() const {
  const std::size_t m = states();
  std::vector<double> pi(m, 1.0 / static_cast<double>(m));
  std::vector<double> next(m, 0.0);
  for (int iter = 0; iter < 2000; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < m; ++j) next[j] += pi[i] * transition_[i * m + j];
    }
    double delta = 0.0;
    for (std::size_t j = 0; j < m; ++j) delta += std::abs(next[j] - pi[j]);
    pi.swap(next);
    if (delta < 1e-14) break;
  }
  return pi;
}

std::vector<double> MarkovChainSource::generate(std::size_t n, Rng& rng) const {
  VBR_ENSURE(n >= 1, "cannot generate an empty trace");
  const std::size_t m = states();
  const auto pi = stationary();

  auto draw_from = [&](std::span<const double> pmf) {
    double u = rng.uniform();
    for (std::size_t j = 0; j < m; ++j) {
      if (u < pmf[j]) return j;
      u -= pmf[j];
    }
    return m - 1;
  };

  std::vector<double> out;
  out.reserve(n);
  std::size_t state = draw_from(pi);
  for (std::size_t t = 0; t < n; ++t) {
    out.push_back(levels_[state]);
    state = draw_from(std::span<const double>(transition_).subspan(state * m, m));
  }
  return out;
}

double MarkovChainSource::second_eigenvalue_magnitude() const {
  const std::size_t m = states();
  const auto pi = stationary();
  // Power iteration on v P with the stationary component projected out.
  std::vector<double> v(m);
  for (std::size_t j = 0; j < m; ++j) {
    v[j] = (j % 2 == 0) ? 1.0 : -1.0;  // something not proportional to pi
  }
  double lambda = 0.0;
  std::vector<double> next(m, 0.0);
  for (int iter = 0; iter < 500; ++iter) {
    // Project out the dominant left eigenvector direction (1-eigenvalue):
    // subtract (sum v) * pi so v stays in the zero-sum subspace.
    KahanSum total;
    for (double x : v) total.add(x);
    for (std::size_t j = 0; j < m; ++j) v[j] -= total.value() * pi[j];

    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < m; ++j) next[j] += v[i] * transition_[i * m + j];
    }
    double norm = 0.0;
    for (double x : next) norm += x * x;
    norm = std::sqrt(norm);
    if (norm < 1e-300) return 0.0;
    lambda = norm / std::sqrt(std::inner_product(v.begin(), v.end(), v.begin(), 0.0));
    for (std::size_t j = 0; j < m; ++j) v[j] = next[j] / norm;
  }
  return std::min(lambda, 1.0);
}

// -------------------------------------------------------------- DAR(1)

DarGammaParetoSource::DarGammaParetoSource(const stats::GammaParetoParams& marginal,
                                           double rho)
    : marginal_(marginal), rho_(rho) {
  VBR_ENSURE(rho >= 0.0 && rho < 1.0, "DAR(1) rho must be in [0, 1)");
}

DarGammaParetoSource DarGammaParetoSource::fit(std::span<const double> frame_bytes) {
  const auto marginal = stats::GammaParetoDistribution::fit(frame_bytes);
  const auto acf = stats::autocorrelation(frame_bytes, 1);
  return DarGammaParetoSource(marginal, std::clamp(acf[1], 0.0, 0.999));
}

std::vector<double> DarGammaParetoSource::generate(std::size_t n, Rng& rng) const {
  VBR_ENSURE(n >= 1, "cannot generate an empty trace");
  std::vector<double> out;
  out.reserve(n);
  double current = marginal_.sample(rng);
  for (std::size_t t = 0; t < n; ++t) {
    if (t > 0 && rng.uniform() >= rho_) current = marginal_.sample(rng);
    out.push_back(current);
  }
  return out;
}

}  // namespace vbr::model
