#include "vbr/model/fgn_generator.hpp"

#include "vbr/common/error.hpp"
#include "vbr/model/davies_harte.hpp"
#include "vbr/model/hosking.hpp"
#include "vbr/model/onoff_source.hpp"
#include "vbr/model/paxson_fgn.hpp"

namespace vbr::model {
namespace {

class DaviesHarteGenerator final : public FgnGenerator {
 public:
  DaviesHarteGenerator(double hurst, double variance) {
    options_.hurst = hurst;
    options_.variance = variance;
    // The paper's process is fARIMA(0,d,0); keeping the exact generators on
    // that covariance preserves the pre-zoo engine output bit-for-bit.
    options_.covariance = CovarianceKind::kFarima;
  }
  std::vector<double> generate(std::size_t n, Rng& rng) const override {
    return davies_harte(n, options_, rng);
  }
  const char* name() const override { return "davies-harte"; }
  bool exact() const override { return true; }
  bool farima_covariance() const override { return true; }
  double hurst() const override { return options_.hurst; }

 private:
  DaviesHarteOptions options_;
};

class HoskingFgnGenerator final : public FgnGenerator {
 public:
  HoskingFgnGenerator(double hurst, double variance) {
    options_.hurst = hurst;
    options_.variance = variance;
  }
  std::vector<double> generate(std::size_t n, Rng& rng) const override {
    return hosking_farima(n, options_, rng);
  }
  const char* name() const override { return "hosking"; }
  bool exact() const override { return true; }
  bool farima_covariance() const override { return true; }
  double hurst() const override { return options_.hurst; }

 private:
  HoskingOptions options_;
};

class PaxsonGenerator final : public FgnGenerator {
 public:
  PaxsonGenerator(double hurst, double variance) {
    options_.hurst = hurst;
    options_.variance = variance;
  }
  std::vector<double> generate(std::size_t n, Rng& rng) const override {
    return paxson_fgn(n, options_, rng);
  }
  const char* name() const override { return "paxson"; }
  bool exact() const override { return false; }
  bool farima_covariance() const override { return false; }
  double hurst() const override { return options_.hurst; }

 private:
  PaxsonOptions options_;
};

class OnOffGenerator final : public FgnGenerator {
 public:
  OnOffGenerator(double hurst, double variance) {
    options_.hurst = hurst;
    options_.variance = variance;
  }
  std::vector<double> generate(std::size_t n, Rng& rng) const override {
    return onoff_aggregate(n, options_, rng);
  }
  const char* name() const override { return "onoff"; }
  bool exact() const override { return false; }
  bool farima_covariance() const override { return false; }
  double hurst() const override { return options_.hurst; }

 private:
  OnOffOptions options_;
};

}  // namespace

std::unique_ptr<FgnGenerator> make_fgn_generator(GeneratorBackend backend, double hurst,
                                                 double variance) {
  VBR_ENSURE(hurst > 0.0 && hurst < 1.0, "H must be in (0, 1)");
  VBR_ENSURE(variance > 0.0, "variance must be positive");
  switch (backend) {
    case GeneratorBackend::kDaviesHarte:
      return std::make_unique<DaviesHarteGenerator>(hurst, variance);
    case GeneratorBackend::kHosking:
      return std::make_unique<HoskingFgnGenerator>(hurst, variance);
    case GeneratorBackend::kPaxson:
      return std::make_unique<PaxsonGenerator>(hurst, variance);
    case GeneratorBackend::kAggregatedOnOff:
      VBR_ENSURE(hurst > 0.5, "on/off superposition needs H in (0.5, 1)");
      return std::make_unique<OnOffGenerator>(hurst, variance);
  }
  throw InvalidArgument("unknown GeneratorBackend value");
}

std::unique_ptr<FgnGenerator> make_fgn_generator(std::string_view name, double hurst,
                                                 double variance) {
  VBR_ENSURE(hurst > 0.0 && hurst < 1.0, "H must be in (0, 1)");
  return make_fgn_generator(generator_backend_from_name(name), hurst, variance);
}

GeneratorBackend generator_backend_from_name(std::string_view name) {
  if (name == "davies-harte") return GeneratorBackend::kDaviesHarte;
  if (name == "hosking") return GeneratorBackend::kHosking;
  if (name == "paxson") return GeneratorBackend::kPaxson;
  if (name == "onoff") return GeneratorBackend::kAggregatedOnOff;
  throw InvalidArgument("unknown generator name: \"" + std::string(name) +
                        "\" (expected davies-harte, hosking, paxson, or onoff)");
}

const char* generator_backend_name(GeneratorBackend backend) {
  switch (backend) {
    case GeneratorBackend::kDaviesHarte:
      return "davies-harte";
    case GeneratorBackend::kHosking:
      return "hosking";
    case GeneratorBackend::kPaxson:
      return "paxson";
    case GeneratorBackend::kAggregatedOnOff:
      return "onoff";
  }
  throw InvalidArgument("unknown GeneratorBackend value");
}

std::vector<std::string> fgn_generator_names() {
  return {"davies-harte", "hosking", "paxson", "onoff"};
}

}  // namespace vbr::model
