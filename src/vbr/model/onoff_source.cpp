#include "vbr/model/onoff_source.hpp"

#include <algorithm>
#include <cmath>

#include "vbr/common/error.hpp"

namespace vbr::model {

double pareto_forward_recurrence(double k, double alpha, Rng& rng) {
  VBR_ENSURE(k > 0.0 && alpha > 1.0, "forward recurrence needs k > 0 and alpha > 1");
  // Survival S(u) = 1 for u < k, (k/u)^alpha beyond; the equilibrium
  // distribution has P(T_e > x) = I(x)/mu with I(x) = integral_x^inf S and
  // mu = alpha k / (alpha - 1). Invert I(x) = mu (1 - u) piecewise: the
  // tail region I(x) = k^alpha x^{1-alpha} / (alpha - 1) applies while
  // I <= k/(alpha-1) (i.e. x >= k), the linear region I(x) = (k - x) +
  // k/(alpha-1) below it.
  const double mu = alpha * k / (alpha - 1.0);
  const double y = mu * (1.0 - rng.uniform());  // in (0, mu]
  const double knee = k / (alpha - 1.0);
  if (y <= knee) {
    return std::pow(std::pow(k, alpha) / ((alpha - 1.0) * y), 1.0 / (alpha - 1.0));
  }
  return k + knee - y;
}

std::vector<double> onoff_aggregate(std::size_t n, const OnOffOptions& options, Rng& rng) {
  VBR_ENSURE(n >= 1, "cannot generate an empty realization");
  VBR_ENSURE(options.hurst > 0.5 && options.hurst < 1.0,
             "on/off superposition needs H in (0.5, 1)");
  VBR_ENSURE(options.mean_active_sessions > 0.0, "mean active sessions must be positive");
  VBR_ENSURE(options.min_session_frames > 0.0, "minimum session duration must be positive");
  VBR_ENSURE(options.variance > 0.0, "variance must be positive");
  const double sigma = std::sqrt(options.variance);
  if (n == 1) return {rng.normal(0.0, sigma)};

  const double alpha = 3.0 - 2.0 * options.hurst;  // in (1, 2)
  const double k = options.min_session_frames;
  const double mu = alpha * k / (alpha - 1.0);               // mean session duration
  const double lambda = options.mean_active_sessions / mu;   // arrival rate
  const double horizon = static_cast<double>(n);

  // Difference array over frame boundaries: a session active on [s, e)
  // covers the integer sample times ceil(s) .. ceil(e) - 1, so the count at
  // frame j is the prefix sum of the increments. O(1) per session
  // regardless of its duration, which matters with infinite-variance
  // Pareto draws.
  std::vector<double> diff(n + 1, 0.0);
  const auto mark = [&](double s, double e) {
    const auto b0 = static_cast<std::size_t>(std::ceil(s));
    if (b0 >= n) return;
    const auto b1 = std::min(static_cast<std::size_t>(std::ceil(std::min(e, horizon))), n);
    if (b1 <= b0) return;
    diff[b0] += 1.0;
    diff[b1] -= 1.0;
  };

  // Equilibrium initial state: Poisson(lambda mu) sessions already in
  // progress at time 0 (drawn by accumulating unit exponentials until the
  // sum exceeds the mean), each with a forward-recurrence residual.
  std::size_t initial = 0;
  double acc = rng.exponential(1.0);
  while (acc <= options.mean_active_sessions) {
    ++initial;
    acc += rng.exponential(1.0);
  }
  for (std::size_t i = 0; i < initial; ++i) {
    mark(0.0, pareto_forward_recurrence(k, alpha, rng));
  }

  // Poisson arrivals over (0, n).
  double t = rng.exponential(lambda);
  while (t < horizon) {
    mark(t, t + rng.pareto(k, alpha));
    t += rng.exponential(lambda);
  }

  // Lag-1 calibration (see header). The count covariance is
  //   gamma(0) = lambda mu,   gamma(tau) = A tau^{1-alpha} for tau >= k,
  //   A = lambda k^alpha / (alpha - 1),
  // and adding white noise of variance V - gamma(0) leaves every lag >= 1
  // untouched while raising the total variance to V = A / rho_1, so the
  // lag-1 autocorrelation lands exactly on fGn's rho_1 = 2^{2H-1} - 1.
  // For k >= 1 the required noise variance is provably nonnegative; the
  // clamp only engages for sub-frame minimum durations (header note).
  const double tail_a = lambda * std::pow(k, alpha) / (alpha - 1.0);
  const double rho1 = std::pow(2.0, 2.0 * options.hurst - 1.0) - 1.0;
  const double total_var = tail_a / rho1;
  const double noise_sd = std::sqrt(std::max(0.0, total_var - lambda * mu));
  const double scale = sigma / std::sqrt(total_var);

  std::vector<double> out(n);
  double count = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    count += diff[j];
    VBR_DCHECK(count >= 0.0, "negative session count");
    out[j] = scale * (count - lambda * mu + noise_sd * rng.normal());
  }
  return out;
}

}  // namespace vbr::model
