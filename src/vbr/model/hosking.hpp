// Hosking's exact generator for fractional ARIMA(0, d, 0)
// (Section 4.1, Eqs. (7)-(12); Hosking 1984).
//
// The Durbin-Levinson recursion computes, at each step k, the coefficients
// phi_{k,j} of the best linear predictor of X_k from X_{k-1}..X_0 together
// with the innovation variance v_k; X_k is then drawn from
// N(m_k, v_k). The draw is exact — the realization has exactly the
// fARIMA(0,d,0) covariance — but costs O(n^2) time and O(n) memory, the cost
// the paper quotes as "about 10 hours" for 171,000 points on a 1990s
// workstation. Use DaviesHarte for long realizations.
#pragma once

#include <cstddef>
#include <vector>

#include "vbr/common/rng.hpp"

namespace vbr::model {

struct HoskingOptions {
  double hurst = 0.8;
  /// Marginal variance v_0 of the Gaussian process.
  double variance = 1.0;
};

/// Generate n points of zero-mean Gaussian fARIMA(0, d, 0), d = hurst - 1/2.
std::vector<double> hosking_farima(std::size_t n, const HoskingOptions& options, Rng& rng);

/// Incremental form of the same recursion, for streaming use and for tests
/// that inspect the predictor state.
class HoskingGenerator {
 public:
  HoskingGenerator(const HoskingOptions& options, Rng rng);

  /// Draw the next point; each call costs O(k) where k is points so far.
  double next();

  std::size_t generated() const { return x_.size(); }
  /// Current innovation variance v_k (decreases toward the innovation
  /// variance of the stationary process).
  double innovation_variance() const { return v_; }

 private:
  HoskingOptions options_;
  Rng rng_;
  std::vector<double> rho_;  ///< autocorrelations, extended on demand
  std::vector<double> phi_;  ///< current predictor coefficients phi_{k,j}
  std::vector<double> x_;    ///< generated points
  double v_ = 1.0;           ///< innovation variance v_k
  double n_prev_ = 0.0;      ///< N_{k-1}
  double d_prev_ = 1.0;      ///< D_{k-1}

  void extend_rho(std::size_t upto);
};

}  // namespace vbr::model
