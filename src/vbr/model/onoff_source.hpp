// Aggregated heavy-tailed on/off source: the structurally different LRD
// generator of the zoo (Willinger-Taqqu-Sherman-Wilson; surveyed by Bai &
// Shami, "Modeling Self-Similar Traffic for Network Simulation").
//
// Construction: the M/G/infinity limit of the on/off superposition (Cox).
// Sessions arrive in a Poisson stream of rate lambda and stay active for
// independent Pareto(k, alpha) durations with alpha = 3 - 2H in (1, 2);
// the number of concurrently active sessions, sampled once per frame, is
// the raw traffic process. Its covariance at lag tau >= k is *exactly* the
// power law lambda k^alpha tau^{1-alpha} / (alpha - 1) — no asymptotics in
// M or in the time scale — so the long-range dependence comes from a
// mechanism (heavy-tailed session durations) rather than a target spectrum,
// which is exactly why it earns a slot next to Paxson on the
// speed/accuracy Pareto front.
//
// Calibration: the session count alone is *more* correlated at every lag
// than fGn with the same tail exponent — its lag-1 autocorrelation is
// k^{alpha-1}/alpha, far above fGn's 2^{2H-1} - 1 — and a full-spectrum
// Whittle fit responds to that excess short-lag mass by biasing H upward.
// The generator therefore adds independent white Gaussian noise per frame
// (physically: fine-time-scale packet jitter riding on session-level LRD),
// with the variance chosen so the *total* lag-1 autocorrelation equals the
// exact fGn value; lags >= 1 are untouched by the noise, so the whole
// correlation structure then tracks fGn closely and Whittle recovers H to
// within a few hundredths (judged by bench_generator_pareto).
//
// Approximation contract: the marginal is Poisson(mean_active_sessions)
// convolved with the calibration noise, not exactly Gaussian — skewness
// ~ (alpha rho_1)^{3/2} / sqrt(M), vanishing as M grows. Output is
// standardized by the theoretical moments (mean lambda mu, variance from
// the calibration), so realized sample moments wander as any LRD series
// does. Each realization starts in equilibrium: Poisson(lambda mu) initial
// sessions with exact forward-recurrence-time residual durations — no
// warmup transient to discard.
#pragma once

#include <cstddef>
#include <vector>

#include "vbr/common/rng.hpp"

namespace vbr::model {

struct OnOffOptions {
  /// Target Hurst parameter; must lie in (0.5, 1) — a session superposition
  /// cannot realize short-range dependence.
  double hurst = 0.8;
  /// Mean number of concurrently active sessions (lambda mu). Larger makes
  /// the Poisson marginal more Gaussian at linear cost in generation time.
  double mean_active_sessions = 256.0;
  /// Pareto location (minimum session duration) in frames. At the default
  /// 1.0 the lag-1 noise calibration is exact for every H in (0.5, 1);
  /// values well below 1 can make the raw count *under*-correlated at
  /// lag 1, in which case the noise clamps to zero and the fit reads low.
  double min_session_frames = 1.0;
  /// Variance of the standardized output.
  double variance = 1.0;
};

/// Generate n frames of the standardized session count plus calibration
/// noise (zero mean and variance `options.variance` in expectation).
/// Throws vbr::InvalidArgument for H outside (0.5, 1) or non-positive
/// session mean/minimum/variance.
///
/// Draw order (part of the determinism contract): (1) unit-exponential
/// accumulation until the running sum exceeds lambda mu — one draw per
/// initial session plus the terminating draw; (2) one uniform per initial
/// session for its forward-recurrence residual; (3) alternating
/// exponential(lambda) arrival gap and Pareto(k, alpha) duration until the
/// arrival clock passes n; (4) n Normal draws for the calibration noise in
/// frame order.
std::vector<double> onoff_aggregate(std::size_t n, const OnOffOptions& options, Rng& rng);

/// Stationary forward recurrence time of a Pareto(k, alpha) interval: the
/// remaining duration of the interval in progress at an arbitrary time
/// instant (density proportional to the Pareto survival function).
/// Exposed for the equilibrium-start test; alpha must be > 1 so the mean
/// duration is finite. Consumes exactly one uniform draw.
double pareto_forward_recurrence(double k, double alpha, Rng& rng);

}  // namespace vbr::model
