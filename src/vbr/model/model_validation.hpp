// Closing the loop on the source model (Section 4.2: "The realizations were
// tested and found to agree with the model parameters, both in marginal
// distribution and the value of H."): generate a realization, re-estimate
// the four parameters from it, and report the discrepancies.
#pragma once

#include <cstddef>

#include "vbr/model/vbr_source.hpp"

namespace vbr::model {

struct ValidationReport {
  VbrModelParams input;   ///< parameters the realization was generated from
  VbrModelParams refit;   ///< parameters re-estimated from the realization
  double mean_rel_error = 0.0;
  double sigma_rel_error = 0.0;
  double tail_slope_rel_error = 0.0;
  double hurst_abs_error = 0.0;

  /// True when all marginal errors are below rel_tol and |dH| < hurst_tol.
  bool agrees(double rel_tol, double hurst_tol) const;
};

/// Generate n points from the model and re-fit.
ValidationReport validate_model(const VbrVideoSourceModel& model, std::size_t n, Rng& rng,
                                ModelVariant variant = ModelVariant::kFull,
                                GeneratorBackend backend = GeneratorBackend::kDaviesHarte);

}  // namespace vbr::model
