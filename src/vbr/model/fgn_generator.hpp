// The generator zoo: one interface over every Gaussian(-ish) LRD core the
// model can ride on, selectable by name.
//
// The paper's Section 4 model needs a zero-mean, unit-variance(-by-default)
// long-range-dependent core to push through the marginal transform; it does
// not need any particular *algorithm*. This file makes that substitutable:
//
//   name            algorithm                        covariance    cost/frame
//   "davies-harte"  exact circulant embedding        fARIMA(0,d,0) O(log n), 2 FFTs
//   "hosking"       exact Durbin-Levinson recursion  fARIMA(0,d,0) O(n)
//   "paxson"        approximate spectral synthesis   fGn           O(log n), 1 half FFT
//   "onoff"         Pareto-session M/G/inf count     fGn (calib.)  O(arrival rate)
//
// Exactness contract: exact() generators realize the advertised covariance
// sample-exactly; the others are *statistically* faithful (Hurst, marginal,
// ACF within the tolerances documented in DESIGN.md section 10 and enforced
// by generator_zoo_test / bench_generator_pareto). Every generator draws
// only from the Rng it is handed, so engine-level determinism (thread-count
// invariance, bit-identical retries) holds for all of them.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "vbr/common/rng.hpp"
#include "vbr/model/vbr_source.hpp"

namespace vbr::model {

/// Abstract Gaussian(-ish) LRD core generator with a fixed H.
class FgnGenerator {
 public:
  virtual ~FgnGenerator() = default;

  /// Generate n zero-mean points with the configured variance. Consumes
  /// only `rng`; deterministic given the Rng state.
  virtual std::vector<double> generate(std::size_t n, Rng& rng) const = 0;

  /// Registry name ("davies-harte", "hosking", "paxson", "onoff").
  virtual const char* name() const = 0;

  /// True when realizations carry the advertised covariance sample-exactly;
  /// false for the statistically-faithful approximations.
  virtual bool exact() const = 0;

  /// Covariance family the realizations target: true for fARIMA(0, d, 0)
  /// (the paper's Eq. 6 process), false for fGn. Fidelity judging must pair
  /// the matching spectral model and target ACF — a full-spectrum Whittle
  /// fit under the wrong family misreads H by up to ~0.08 even on an exact
  /// generator (stats/lrd_fidelity.hpp).
  virtual bool farima_covariance() const = 0;

  virtual double hurst() const = 0;
};

/// Construct a generator by backend enum. Throws vbr::InvalidArgument for H
/// outside (0, 1) (and, for kAggregatedOnOff, H outside (0.5, 1)).
/// `variance` scales the output; 1.0 is what VbrVideoSourceModel feeds the
/// marginal transform.
std::unique_ptr<FgnGenerator> make_fgn_generator(GeneratorBackend backend, double hurst,
                                                 double variance = 1.0);

/// Construct by registry name. Throws vbr::InvalidArgument for an unknown
/// name or invalid H.
std::unique_ptr<FgnGenerator> make_fgn_generator(std::string_view name, double hurst,
                                                 double variance = 1.0);

/// Map a registry name to its backend enum; throws vbr::InvalidArgument for
/// unknown names.
GeneratorBackend generator_backend_from_name(std::string_view name);

/// Canonical registry name of a backend.
const char* generator_backend_name(GeneratorBackend backend);

/// Every registered generator name, in registry order.
std::vector<std::string> fgn_generator_names();

}  // namespace vbr::model
