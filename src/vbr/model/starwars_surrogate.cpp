#include "vbr/model/starwars_surrogate.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <unordered_map>

#include "vbr/common/error.hpp"
#include "vbr/common/math_util.hpp"
#include "vbr/model/davies_harte.hpp"
#include "vbr/model/marginal_transform.hpp"
#include "vbr/trace/aggregate.hpp"

namespace vbr::model {

double calibrate_tail_slope(double mean, double stddev, double target_max, std::size_t n) {
  VBR_ENSURE(target_max > mean, "target max must exceed the mean");
  VBR_ENSURE(n >= 100, "calibration needs a realistic sample size");
  const double p = 1.0 - 1.0 / static_cast<double>(n);

  auto implied_max = [&](double slope) {
    stats::GammaParetoParams params;
    params.mu_gamma = mean;
    params.sigma_gamma = stddev;
    params.tail_slope = slope;
    return stats::GammaParetoDistribution(params).quantile(p);
  };

  // quantile(p) decreases monotonically in the tail slope; bisect.
  double lo = 2.5;   // very heavy
  double hi = 60.0;  // nearly Gamma
  VBR_ENSURE(implied_max(lo) > target_max && implied_max(hi) < target_max,
             "target max outside the calibratable range");
  for (int i = 0; i < 100; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (implied_max(mid) > target_max) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

namespace {

// Standardize to zero mean, unit variance (empirically).
void standardize(std::vector<double>& x) {
  const double mean = sample_mean(x);
  const double sd = std::sqrt(sample_variance(x));
  VBR_ENSURE(sd > 0.0, "cannot standardize a constant series");
  for (auto& v : x) v = (v - mean) / sd;
}

// Smooth raised-cosine bump in [0, 1] over `length` samples.
double bump_envelope(std::size_t offset, std::size_t length) {
  if (length == 0) return 0.0;
  const double t = static_cast<double>(offset) / static_cast<double>(length);
  return 0.5 * (1.0 - std::cos(2.0 * std::numbers::pi * t));
}

struct EventSpec {
  const char* name;
  double position;   ///< fraction of the movie where the event starts
  double seconds;    ///< duration
  double intensity;  ///< target level as a multiple of the mean
};

// The Fig. 1 landmarks. Intensities put the sharp effects near the trace
// peak (~2.8x mean) and the wide text/explosion sequences below them.
constexpr EventSpec kEvents[] = {
    {"opening text", 0.000, 42.0, 2.05},
    {"jump to hyperspace", 0.440, 2.5, 2.78},
    {"planet explosion", 0.490, 3.0, 2.70},
    {"jump from hyperspace", 0.545, 2.5, 2.74},
    {"death star explosion", 0.958, 10.0, 2.30},
};

}  // namespace

SurrogateTrace make_starwars_surrogate(const SurrogateOptions& options) {
  VBR_ENSURE(options.frames >= 1000, "surrogate needs a substantial length");
  VBR_ENSURE(options.scene_weight >= 0.0 && options.scene_weight < 1.0,
             "scene weight must be in [0, 1)");
  Rng rng(options.seed);

  SurrogateTrace out;

  // 1. Long-range-dependent Gaussian core. fARIMA(0,d,0) is the paper's
  //    model (Section 4.1), so every estimator downstream sees the spectral
  //    shape it expects.
  DaviesHarteOptions dh;
  dh.hurst = options.hurst;
  dh.covariance = CovarianceKind::kFarima;
  std::vector<double> core = davies_harte(options.frames, dh, rng);
  standardize(core);

  // 2. Scene quantization: per-shot constant Gaussian levels, keyed by the
  //    shot's backdrop so dialog alternation flips between two fixed levels
  //    (Section 4.2's "simple alternation between two levels"). Each level
  //    samples an *independent LRD realization* at the shot's midpoint
  //    (sample-and-hold, not averaging: averaging would low-pass the track
  //    and visibly distort the spectrum the Whittle estimator fits), so the
  //    overlay adds piecewise-constant short-range structure while keeping
  //    the long-range calibration at H.
  if (options.scene_weight > 0.0) {
    vbr::trace::SceneModel scene_model(options.scene_params);
    out.scenes = scene_model.generate(options.frames, rng);

    std::vector<double> level_source = davies_harte(options.frames, dh, rng);
    std::unordered_map<int, double> level_by_texture;
    std::vector<double> scene_track(options.frames, 0.0);
    for (const auto& scene : out.scenes) {
      const std::size_t end = std::min(options.frames, scene.start_frame + scene.length);
      auto [it, inserted] = level_by_texture.try_emplace(scene.texture_id, 0.0);
      if (inserted) it->second = level_source[scene.start_frame + (end - scene.start_frame) / 2];
      for (std::size_t f = scene.start_frame; f < end; ++f) scene_track[f] = it->second;
    }
    standardize(scene_track);

    const double w = options.scene_weight;
    for (std::size_t f = 0; f < options.frames; ++f) {
      core[f] = std::sqrt(1.0 - w) * core[f] + std::sqrt(w) * scene_track[f];
    }
    standardize(core);
  }

  // 3. Marginal calibration: Gamma/Pareto with tail slope chosen so the
  //    realization's expected maximum matches the published peak.
  out.calibration.hurst = options.hurst;
  out.calibration.marginal.mu_gamma = options.mean_bytes;
  out.calibration.marginal.sigma_gamma = options.stddev_bytes;
  out.calibration.marginal.tail_slope = calibrate_tail_slope(
      options.mean_bytes, options.stddev_bytes, options.target_max_bytes, options.frames);

  const stats::GammaParetoDistribution marginal(out.calibration.marginal);
  const TabulatedMarginalMap map(marginal);
  std::vector<double> bytes = map.apply(core);

  // 4. Named events: lift the trace toward the target level with a smooth
  //    envelope. Touches a few hundred of 171,000 frames, so the calibrated
  //    marginals are essentially unchanged.
  if (options.events) {
    const double fps = 1.0 / options.dt_seconds;
    for (const auto& spec : kEvents) {
      const auto start = static_cast<std::size_t>(spec.position *
                                                  static_cast<double>(options.frames));
      const auto length = std::min<std::size_t>(
          static_cast<std::size_t>(spec.seconds * fps), options.frames - start);
      if (length == 0) continue;
      const double target = spec.intensity * options.mean_bytes;
      for (std::size_t i = 0; i < length; ++i) {
        const double lift = target * bump_envelope(i, length);
        bytes[start + i] = std::max(bytes[start + i], lift);
      }
      out.events.push_back({spec.name, start, length});
    }
  }

  out.frames = vbr::trace::TimeSeries(std::move(bytes), options.dt_seconds, "bytes/frame");
  return out;
}

vbr::trace::TimeSeries surrogate_slices(const SurrogateTrace& surrogate,
                                        std::size_t slices_per_frame, double jitter) {
  return vbr::trace::expand_to_slices(surrogate.frames, slices_per_frame, jitter);
}

}  // namespace vbr::model
