#include "vbr/model/arma.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "vbr/common/error.hpp"
#include "vbr/common/math_util.hpp"
#include "vbr/model/davies_harte.hpp"

namespace vbr::model {

ArmaFilter::ArmaFilter(ArmaParams params) : params_(std::move(params)) {
  VBR_ENSURE(params_.ar.size() <= 64 && params_.ma.size() <= 64,
             "ARMA orders above 64 are not supported");
  VBR_ENSURE(is_stationary(), "AR polynomial is not stationary");
}

std::vector<double> ArmaFilter::filter(std::span<const double> innovations) const {
  const std::size_t p = params_.ar.size();
  const std::size_t q = params_.ma.size();
  std::vector<double> out(innovations.size(), 0.0);
  for (std::size_t t = 0; t < innovations.size(); ++t) {
    double value = innovations[t];
    for (std::size_t j = 0; j < q && j < t; ++j) {
      value += params_.ma[j] * innovations[t - 1 - j];
    }
    for (std::size_t i = 0; i < p && i < t; ++i) {
      value += params_.ar[i] * out[t - 1 - i];
    }
    out[t] = value;
  }
  return out;
}

std::vector<double> ArmaFilter::impulse_response(std::size_t n) const {
  // psi_k from the recursion psi_k = theta_k + sum_i phi_i psi_{k-i},
  // psi_0 = 1 (theta_0 = 1).
  // NOLINTNEXTLINE(vbr-contract-coverage): any horizon is valid; n == 0 yields an empty response by design.
  std::vector<double> psi(n, 0.0);
  if (n == 0) return psi;
  psi[0] = 1.0;
  for (std::size_t k = 1; k < n; ++k) {
    double value = (k <= params_.ma.size()) ? params_.ma[k - 1] : 0.0;
    for (std::size_t i = 0; i < params_.ar.size() && i < k; ++i) {
      value += params_.ar[i] * psi[k - 1 - i];
    }
    psi[k] = value;
  }
  return psi;
}

double ArmaFilter::output_variance(std::size_t horizon) const {
  const auto psi = impulse_response(horizon);
  KahanSum sum;
  for (double v : psi) sum.add(v * v);
  return sum.value();
}

bool ArmaFilter::is_stationary() const {
  if (params_.ar.empty()) return true;
  // Necessary condition: sum of AR coefficients < 1 catches the common
  // unit-root case; the impulse-response decay test below catches the rest.
  KahanSum ar_sum;
  for (double a : params_.ar) ar_sum.add(a);
  if (ar_sum.value() >= 1.0) return false;
  // Decay test: the tail of the impulse response must be negligible.
  const auto psi = impulse_response(2048);
  double tail = 0.0;
  for (std::size_t k = 1536; k < psi.size(); ++k) tail = std::max(tail, std::abs(psi[k]));
  return tail < 1e-6;
}

std::vector<double> farima_pdq(std::size_t n, const FarimaPdqOptions& options, Rng& rng) {
  VBR_ENSURE(n >= 1, "cannot generate an empty realization");
  VBR_ENSURE(options.variance > 0.0, "variance must be positive");

  DaviesHarteOptions core_options;
  core_options.hurst = options.hurst;
  core_options.covariance = CovarianceKind::kFarima;
  const auto core = davies_harte(n, core_options, rng);

  const ArmaFilter filter(options.arma);
  auto out = filter.filter(core);

  // Standardize empirically (the filter changes the variance and the
  // start-up transient perturbs the first samples).
  const double mean = sample_mean(out);
  const double sd = std::sqrt(sample_variance(out));
  VBR_ENSURE(sd > 0.0, "degenerate filtered output");
  const double target_sd = std::sqrt(options.variance);
  for (auto& v : out) v = (v - mean) / sd * target_sd;
  return out;
}

std::vector<double> yule_walker(std::span<const double> acf, std::size_t order) {
  VBR_ENSURE(order >= 1, "AR order must be >= 1");
  VBR_ENSURE(acf.size() > order, "need acf up to the requested order");
  VBR_ENSURE(std::abs(acf[0] - 1.0) < 1e-12, "acf[0] must be 1");

  // Levinson-Durbin recursion.
  std::vector<double> phi(order, 0.0);
  std::vector<double> prev(order, 0.0);
  double error = 1.0;
  for (std::size_t k = 1; k <= order; ++k) {
    double acc = acf[k];
    for (std::size_t j = 1; j < k; ++j) acc -= prev[j - 1] * acf[k - j];
    const double reflection = acc / error;
    phi[k - 1] = reflection;
    for (std::size_t j = 1; j < k; ++j) {
      phi[j - 1] = prev[j - 1] - reflection * prev[k - 1 - j];
    }
    error *= (1.0 - reflection * reflection);
    VBR_ENSURE(error > 0.0, "acf sequence is not positive definite");
    std::copy(phi.begin(), phi.begin() + static_cast<std::ptrdiff_t>(k), prev.begin());
  }
  return phi;
}

}  // namespace vbr::model
