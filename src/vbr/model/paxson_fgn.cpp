#include "vbr/model/paxson_fgn.hpp"

#include <cmath>
#include <complex>
#include <map>
#include <memory>
#include <mutex>
#include <numbers>
#include <utility>

#include "vbr/common/error.hpp"
#include "vbr/common/fft.hpp"
#include "vbr/common/fft_fast.hpp"

namespace vbr::model {
namespace {

// Unit-variance spectral amplitudes a_k, k = 0..len/2 (a_0 = 0: the DC
// coefficient is pinned to zero so every realization has exactly zero mean
// over the synthesis window). Shared immutably between threads once built.
using Amplitudes = std::shared_ptr<const std::vector<double>>;

// Cache key: (H bit pattern via exact double compare, synthesis length).
// The amplitudes do not depend on options.variance — that is a plain output
// scale — so it is deliberately not part of the key.
using SpectrumKey = std::pair<double, std::size_t>;

struct SpectrumCache {
  std::mutex mutex;
  std::map<SpectrumKey, Amplitudes> entries;
};

SpectrumCache& spectrum_cache() {
  static SpectrumCache cache;
  return cache;
}

// The aliasing correction B~3(lambda; H) with the full per-frequency cost:
// eleven pow() calls. It is smooth and slowly varying on [0, pi] (only the
// lambda^d term of the density is singular), so compute_amplitudes()
// evaluates it on a coarse grid and interpolates linearly; see kBtildeGrid.
double b3_tilde(double lambda, double hurst) {
  const double d = -2.0 * hurst - 1.0;
  const double dprime = -2.0 * hurst;
  const double two_pi = 2.0 * std::numbers::pi;
  double b3 = 0.0;
  for (int k = 1; k <= 3; ++k) {
    b3 += std::pow(two_pi * k + lambda, d) + std::pow(two_pi * k - lambda, d);
  }
  b3 += (std::pow(two_pi * 3.0 + lambda, dprime) + std::pow(two_pi * 3.0 - lambda, dprime) +
         std::pow(two_pi * 4.0 + lambda, dprime) + std::pow(two_pi * 4.0 - lambda, dprime)) /
        (8.0 * hurst * std::numbers::pi);
  return (1.0002 - 0.000134 * lambda) * (b3 - std::pow(2.0, -7.65 * hurst - 7.4));
}

// Grid resolution for the B~3 interpolation. With 2048 intervals over
// [0, pi] the linear-interpolation error is bounded by (pi/2048)^2 / 8 times
// max |B~3''| (< 0.1 for H in (0, 1)), i.e. < 3e-8 absolute against a B~3
// of order 1e-2..1e-1 — orders of magnitude below the statistical
// tolerances the generator is judged by (header: fidelity contract).
constexpr std::size_t kBtildeGrid = 2048;

// a_k = sqrt(alpha f_k) with alpha chosen so the synthesized series has
// unit variance in expectation: Var(x_j) = (1/len^2) sum_k E|S_k|^2 over
// the full conjugate-symmetric spectrum, so
//   alpha = len^2 / (2 sum_{k=1}^{len/2-1} f_k + f_{len/2}).
// Deterministic in its inputs, so concurrent duplicate computations of the
// same key yield identical vectors.
//
// This is the cold-start cost of the generator, so the per-frequency loop is
// kept lean: B~3 comes from the interpolation grid, 1 - cos(lambda_k) from
// the Chebyshev three-term recurrence (error O(k) ulps, ~1e-11 at k = 2^20),
// and only the singular lambda^d factor pays a real pow().
Amplitudes compute_amplitudes(double hurst, std::size_t len) {
  const std::size_t half = len / 2;
  auto amps = std::make_shared<std::vector<double>>(half + 1, 0.0);

  std::vector<double> grid(kBtildeGrid + 1);
  for (std::size_t g = 0; g <= kBtildeGrid; ++g) {
    grid[g] = b3_tilde(std::numbers::pi * static_cast<double>(g) /
                           static_cast<double>(kBtildeGrid),
                       hurst);
  }

  const double d = -2.0 * hurst - 1.0;
  const double a0 = 2.0 * std::sin(std::numbers::pi * hurst) * std::tgamma(2.0 * hurst + 1.0);
  const double step = std::numbers::pi / static_cast<double>(half);  // lambda_k = k * step
  const double grid_scale = static_cast<double>(kBtildeGrid) / static_cast<double>(half);

  // lambda_k^d pays a pow() only at odd k: lambda_{2m}^d = 2^d lambda_m^d
  // (exact up to one rounding), halving the dominant per-frequency cost.
  std::vector<double> pow_d(half + 1);
  const double two_d = std::pow(2.0, d);
  for (std::size_t k = 1; k <= half; ++k) {
    pow_d[k] = (k % 2 == 0) ? two_d * pow_d[k / 2]
                            : std::pow(static_cast<double>(k) * step, d);
  }

  const double cos_step = std::cos(step);
  double cos_prev = 1.0;        // cos(0 * step)
  double cos_curr = cos_step;   // cos(1 * step)
  double total = 0.0;
  for (std::size_t k = 1; k <= half; ++k) {
    const double pos = static_cast<double>(k) * grid_scale;  // in [0, kBtildeGrid]
    const std::size_t cell = std::min(static_cast<std::size_t>(pos), kBtildeGrid - 1);
    const double frac = pos - static_cast<double>(cell);
    const double b3t = grid[cell] + frac * (grid[cell + 1] - grid[cell]);
    const double f = a0 * (1.0 - cos_curr) * (pow_d[k] + b3t);
    VBR_DCHECK(f > 0.0 && std::isfinite(f), "spectral density left (0, inf)");
    (*amps)[k] = f;
    total += (k < half) ? 2.0 * f : f;
    const double cos_next = 2.0 * cos_step * cos_curr - cos_prev;
    cos_prev = cos_curr;
    cos_curr = cos_next;
  }
  const double alpha = static_cast<double>(len) * static_cast<double>(len) / total;
  for (std::size_t k = 1; k <= half; ++k) {
    (*amps)[k] = std::sqrt(alpha * (*amps)[k]);
  }
  return amps;
}

Amplitudes cached_amplitudes(double hurst, std::size_t len) {
  const SpectrumKey key(hurst, len);
  auto& cache = spectrum_cache();
  {
    std::lock_guard<std::mutex> lock(cache.mutex);
    const auto it = cache.entries.find(key);
    if (it != cache.entries.end()) return it->second;
  }
  // Compute outside the lock so a cold cache does not serialize the
  // N-source fan-out; a racing duplicate computes the identical vector and
  // the first insert wins.
  auto computed = compute_amplitudes(hurst, len);
  std::lock_guard<std::mutex> lock(cache.mutex);
  return cache.entries.emplace(key, std::move(computed)).first->second;
}

}  // namespace

double paxson_fgn_spectral_density(double lambda, double hurst) {
  VBR_ENSURE(lambda > 0.0 && lambda <= std::numbers::pi, "frequency must be in (0, pi]");
  VBR_ENSURE(hurst > 0.0 && hurst < 1.0, "H must be in (0, 1)");
  // B_3: three exact aliasing terms plus a trapezoid tail correction
  // (Paxson Eq. 5), then the empirical polish of Eq. 6.
  const double d = -2.0 * hurst - 1.0;
  const double a = 2.0 * std::sin(std::numbers::pi * hurst) * std::tgamma(2.0 * hurst + 1.0) *
                   (1.0 - std::cos(lambda));
  return a * (std::pow(lambda, d) + b3_tilde(lambda, hurst));
}

std::size_t paxson_spectrum_cache_size() {
  auto& cache = spectrum_cache();
  std::lock_guard<std::mutex> lock(cache.mutex);
  return cache.entries.size();
}

void paxson_spectrum_cache_clear() {
  auto& cache = spectrum_cache();
  std::lock_guard<std::mutex> lock(cache.mutex);
  cache.entries.clear();
}

std::vector<double> paxson_fgn(std::size_t n, const PaxsonOptions& options, Rng& rng) {
  VBR_ENSURE(n >= 1, "cannot generate an empty realization");
  VBR_ENSURE(options.hurst > 0.0 && options.hurst < 1.0, "H must be in (0, 1)");
  VBR_ENSURE(options.variance > 0.0, "variance must be positive");
  const double sigma = std::sqrt(options.variance);
  if (n == 1) return {rng.normal(0.0, sigma)};

  // Padding rule (see header): synthesize at the next power of two and
  // return the leading n points.
  const std::size_t len = next_power_of_two(n);
  const std::size_t half = len / 2;

  const auto amps = options.use_spectrum_cache ? cached_amplitudes(options.hurst, len)
                                               : compute_amplitudes(options.hurst, len);

  // Sample the spectrum as complex Gaussian coefficients: S_k =
  // sigma a_k (Z1 + i Z2) / sqrt(2) with Z1, Z2 standard Normal. This is
  // exactly Paxson's periodogram sampling — |S_k|^2 = sigma^2 a_k^2 Exp(1)
  // and the phase is uniform — but costs two Normal draws instead of a
  // log + sincos per coefficient. The Nyquist coefficient is real Gaussian
  // with the full variance; S_0 = 0 pins the realization mean. Draw order
  // is part of the determinism contract: k ascending, real part before
  // imaginary part.
  const double inv_sqrt2 = 1.0 / std::numbers::sqrt2;
  std::vector<std::complex<double>> spectrum(half + 1);
  spectrum[0] = 0.0;
  for (std::size_t k = 1; k < half; ++k) {
    const double scale = sigma * (*amps)[k] * inv_sqrt2;
    const double re = scale * rng.normal();
    const double im = scale * rng.normal();
    spectrum[k] = {re, im};
  }
  spectrum[half] = sigma * (*amps)[half] * rng.normal();

  // fast_irfft_pow2() supplies the conjugate-mirrored upper half implicitly
  // and normalizes by 1/len — the amplitude normalization above already
  // accounts for it. The table-driven kernel is what buys the cold-cache
  // speed advantage over the exact methods (fft_fast.hpp).
  auto x = fast_irfft_pow2(spectrum, len);
  x.resize(n);
  for (const double v : x) VBR_DCHECK(std::isfinite(v), "non-finite Paxson sample");
  return x;
}

}  // namespace vbr::model
