// Autocorrelation structures of the two canonical exactly/asymptotically
// self-similar Gaussian processes used by the generators:
//
//  * fractional ARIMA(0, d, 0) with d = H - 1/2 — the paper's Eq. (6):
//      rho_k = d(1+d)...(k-1+d) / ((1-d)(2-d)...(k-d)),
//    which decays hyperbolically, rho_k ~ k^{2H-2}.
//  * fractional Gaussian noise (fGn), the increment process of fractional
//    Brownian motion — second-order *exactly* self-similar:
//      rho_k = (|k+1|^{2H} - 2|k|^{2H} + |k-1|^{2H}) / 2.
#pragma once

#include <cstddef>
#include <vector>

namespace vbr::model {

/// fARIMA(0,d,0) autocorrelations rho_0..rho_max_lag (Eq. 6), d = H - 1/2.
std::vector<double> farima_acf(double hurst, std::size_t max_lag);

/// fGn autocorrelations rho_0..rho_max_lag.
std::vector<double> fgn_acf(double hurst, std::size_t max_lag);

/// Single fGn autocorrelation at lag k.
double fgn_rho(double hurst, std::size_t k);

}  // namespace vbr::model
