// Davies-Harte circulant-embedding generator for stationary Gaussian
// processes with a prescribed autocovariance — here fGn or fARIMA(0,d,0).
//
// Hosking's recursion (Section 4.1) is exact but O(n^2) — the paper reports
// ~10 hours for 171,000 points on a 1990s workstation. Circulant embedding
// is also *exact* (for covariances whose circulant eigenvalues are
// non-negative, which holds for fGn) yet costs O(n log n): embed the n-term
// covariance in a 2m-periodic sequence, diagonalize with one FFT, color
// complex white noise with the eigenvalue square roots, and transform back.
#pragma once

#include <cstddef>
#include <vector>

#include "vbr/common/rng.hpp"

namespace vbr::model {

enum class CovarianceKind {
  kFgn,     ///< fractional Gaussian noise (exactly self-similar)
  kFarima,  ///< fractional ARIMA(0, d, 0), the paper's Eq. (6)
};

struct DaviesHarteOptions {
  double hurst = 0.8;
  double variance = 1.0;
  CovarianceKind covariance = CovarianceKind::kFgn;
  /// Reuse circulant eigenvalue vectors across calls with the same
  /// (H, embedding length, covariance). Repeated same-length generations —
  /// the N-source case — then skip the ACF evaluation and embedding FFT
  /// entirely. The cache is process-wide and thread-safe, and caching never
  /// changes the output (the eigenvalues are a deterministic function of
  /// the key).
  bool use_eigenvalue_cache = true;
};

/// Generate n points of the zero-mean Gaussian process. Throws
/// NumericalError if the circulant embedding has a materially negative
/// eigenvalue (does not happen for fGn/fARIMA with 0 < H < 1).
std::vector<double> davies_harte(std::size_t n, const DaviesHarteOptions& options, Rng& rng);

/// Number of distinct (H, embedding length, covariance) eigenvalue vectors
/// currently held by the process-wide cache.
std::size_t davies_harte_cache_size();

/// Drop every cached eigenvalue vector (frees memory; next generations
/// recompute).
void davies_harte_cache_clear();

}  // namespace vbr::model
