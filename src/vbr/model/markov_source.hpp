// Classical short-range-dependent VBR video source models — the baselines
// the paper argues are insufficient.
//
// Before this paper, VBR video was commonly modeled with finite Markov
// chains (Maglaris et al. style birth-death chains over quantized rate
// levels) or first-order autoregressive processes. Both have exponentially
// decaying autocorrelations, so they match the trace at short lags but miss
// the long-range dependence entirely; the paper's Fig. 16 i.i.d. variant is
// the extreme member of this family. We implement two canonical baselines:
//
//  * MarkovChainSource — an M-state chain over rate levels; levels and the
//    transition matrix are fitted from a trace by quantile binning and
//    transition counting. Generation reproduces marginals and the lag-1
//    correlation but decays like the chain's second eigenvalue.
//  * DarGammaParetoSource — a DAR(1) (discrete autoregressive) process:
//    with probability rho keep the previous value, otherwise draw fresh
//    from the Gamma/Pareto marginal. Exactly geometric ACF rho^k with
//    exactly the right marginals — the sharpest "right marginal, wrong
//    memory" contrast to the paper's model.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "vbr/common/rng.hpp"
#include "vbr/stats/gamma_pareto.hpp"

namespace vbr::model {

/// M-state Markov-chain rate model.
class MarkovChainSource {
 public:
  /// Construct from explicit levels (bytes/frame) and a row-stochastic
  /// transition matrix (row-major, states x states).
  MarkovChainSource(std::vector<double> levels, std::vector<double> transition);

  /// Fit from a trace: states are the quantile bins of the empirical
  /// distribution (equal-probability levels, each represented by its bin
  /// mean), transitions estimated by counting.
  static MarkovChainSource fit(std::span<const double> frame_bytes, std::size_t states);

  std::size_t states() const { return levels_.size(); }
  const std::vector<double>& levels() const { return levels_; }
  double transition(std::size_t from, std::size_t to) const;

  /// Stationary distribution (power iteration).
  std::vector<double> stationary() const;

  /// Generate n frame sizes starting from the stationary distribution.
  std::vector<double> generate(std::size_t n, Rng& rng) const;

  /// Magnitude of the second-largest eigenvalue of the transition matrix
  /// (power iteration on the deflated chain): the ACF of the chain decays
  /// like lambda2^k — always exponential, never LRD.
  double second_eigenvalue_magnitude() const;

 private:
  std::vector<double> levels_;
  std::vector<double> transition_;  ///< row-major
};

/// DAR(1) process with Gamma/Pareto marginals.
class DarGammaParetoSource {
 public:
  DarGammaParetoSource(const stats::GammaParetoParams& marginal, double rho);

  /// Fit: marginals from the trace, rho from the lag-1 autocorrelation.
  static DarGammaParetoSource fit(std::span<const double> frame_bytes);

  double rho() const { return rho_; }
  const stats::GammaParetoDistribution& marginal() const { return marginal_; }

  std::vector<double> generate(std::size_t n, Rng& rng) const;

 private:
  stats::GammaParetoDistribution marginal_;
  double rho_;
};

}  // namespace vbr::model
