#include "vbr/model/fgn_acf.hpp"

#include <cmath>

#include "vbr/common/error.hpp"

namespace vbr::model {

std::vector<double> farima_acf(double hurst, std::size_t max_lag) {
  VBR_ENSURE(hurst > 0.0 && hurst < 1.0, "H must be in (0, 1)");
  const double d = hurst - 0.5;
  std::vector<double> rho(max_lag + 1);
  rho[0] = 1.0;
  // rho_k = rho_{k-1} * (k - 1 + d) / (k - d), telescoping Eq. (6).
  for (std::size_t k = 1; k <= max_lag; ++k) {
    const double dk = static_cast<double>(k);
    rho[k] = rho[k - 1] * (dk - 1.0 + d) / (dk - d);
  }
  return rho;
}

double fgn_rho(double hurst, std::size_t k) {
  VBR_ENSURE(hurst > 0.0 && hurst < 1.0, "H must be in (0, 1)");
  if (k == 0) return 1.0;
  const double twoH = 2.0 * hurst;
  const double dk = static_cast<double>(k);
  return 0.5 * (std::pow(dk + 1.0, twoH) - 2.0 * std::pow(dk, twoH) +
                std::pow(dk - 1.0, twoH));
}

std::vector<double> fgn_acf(double hurst, std::size_t max_lag) {
  VBR_ENSURE(hurst > 0.0 && hurst < 1.0, "H must be in (0, 1)");
  std::vector<double> rho(max_lag + 1);
  for (std::size_t k = 0; k <= max_lag; ++k) rho[k] = fgn_rho(hurst, k);
  return rho;
}

}  // namespace vbr::model
