// TES (Transform-Expand-Sample) processes [JAGE92], the alternative
// marginal-distortion technique the paper cites in Section 4.2: "A similar
// technique for distorting the marginals is used where the original process
// is distributed Uniformly rather than Normally."
//
// A TES+ background sequence is a modulo-1 random walk
//     U_t = <U_{t-1} + V_t>,  U_0 ~ Uniform[0,1),
// whose marginals are *exactly* Uniform[0,1) for any innovation density —
// here V ~ Uniform(-alpha/2, alpha/2) (smaller alpha = stronger
// correlation). A "stitching" transform S_xi makes sample paths continuous
// across the modulo wrap, and the foreground process applies an arbitrary
// inverse CDF: X_t = F^{-1}(S_xi(U_t)). Like the Markov/DAR baselines, TES
// is short-range dependent: it nails the marginal distribution and the
// short-lag ACF but cannot reproduce the trace's LRD.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "vbr/common/rng.hpp"
#include "vbr/stats/gamma_pareto.hpp"

namespace vbr::model {

struct TesParams {
  /// Innovation half-width in (0, 1]: V ~ Uniform(-alpha/2, +alpha/2).
  /// alpha = 1 gives i.i.d. uniforms; alpha -> 0 gives a slowly wandering
  /// background and high short-lag correlation.
  double alpha = 0.2;
  /// Stitching parameter in [0, 1]; 0.5 is the symmetric classic choice.
  double xi = 0.5;
};

/// TES+ source with a Gamma/Pareto foreground marginal.
class TesGammaParetoSource {
 public:
  TesGammaParetoSource(const stats::GammaParetoParams& marginal, const TesParams& params);

  const TesParams& params() const { return params_; }
  const stats::GammaParetoDistribution& marginal() const { return marginal_; }

  /// Generate n frame sizes.
  std::vector<double> generate(std::size_t n, Rng& rng) const;

  /// The raw Uniform background sequence (exposed for tests).
  std::vector<double> background(std::size_t n, Rng& rng) const;

 private:
  stats::GammaParetoDistribution marginal_;
  TesParams params_;
};

/// Stitching transform S_xi(u): continuous map of [0,1) onto [0,1) that
/// removes the modulo-1 discontinuity; S_xi(u) = u/xi for u < xi, else
/// (1-u)/(1-xi).
double tes_stitch(double u, double xi);

}  // namespace vbr::model
