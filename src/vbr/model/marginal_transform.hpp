// Marginal distribution distortion (Section 4.2, Eq. 13):
//
//   Y_k = F_target^{-1}( F_N(X_k) )
//
// maps a Gaussian realization point-by-point onto an arbitrary target
// marginal while leaving the rank order — and hence, to a very good
// approximation, the Hurst parameter — unchanged ("The measured value of H
// is not affected by the distortion of the marginal distribution").
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "vbr/stats/gamma_pareto.hpp"

namespace vbr::model {

/// Transform standard-Gaussian samples (mean mu, stddev sigma describe the
/// actual Gaussian the samples came from) into samples of `target`.
std::vector<double> transform_marginal(std::span<const double> gaussian,
                                       const stats::Distribution& target, double mu = 0.0,
                                       double sigma = 1.0);

/// Table-driven variant: precomputes the composite map on a uniform grid of
/// `table_points` Gaussian quantiles and interpolates. This is the paper's
/// implementation device (a 10,000-point table) and is much faster when
/// transforming long realizations; the tails beyond the table are evaluated
/// exactly. The paper notes (Section 5.2) that the tabulated map can clip
/// the extreme Pareto tail — measured in bench_model_validation.
class TabulatedMarginalMap {
 public:
  TabulatedMarginalMap(const stats::Distribution& target, std::size_t table_points = 10000);

  /// Map one standard-Gaussian value.
  double operator()(double z) const;

  /// Map a whole realization with Gaussian parameters (mu, sigma).
  std::vector<double> apply(std::span<const double> gaussian, double mu = 0.0,
                            double sigma = 1.0) const;

 private:
  const stats::Distribution& target_;
  std::vector<double> z_grid_;   ///< Gaussian abscissae
  std::vector<double> y_grid_;   ///< target quantiles at those abscissae
};

}  // namespace vbr::model
