// The paper's VBR video source model (Section 4): four parameters —
// mu_Gamma, sigma_Gamma and m_T describing the hybrid Gamma/Pareto marginal,
// plus the Hurst parameter H describing the long-range-dependent time
// correlation. Generation composes a Gaussian self-similar realization
// (Hosking's exact fARIMA recursion or the fast Davies-Harte method) with
// the inverse-CDF marginal distortion Y_k = F_{Gamma/Pareto}^{-1}(F_N(X_k)).
//
// Two reduced variants used in the Fig. 16 comparison are also provided:
// the fARIMA model with plain Gaussian marginals (LRD but no heavy tail) and
// the i.i.d. Gamma/Pareto model (heavy tail but no LRD).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "vbr/common/rng.hpp"
#include "vbr/stats/gamma_pareto.hpp"
#include "vbr/trace/time_series.hpp"

namespace vbr::model {

/// Which of the paper's three candidate models to realize (Fig. 16).
enum class ModelVariant {
  kFull,            ///< fARIMA + Gamma/Pareto marginals (the proposed model)
  kGaussianFarima,  ///< fARIMA with Gaussian marginals: LRD only
  kIidGammaPareto,  ///< i.i.d. Gamma/Pareto: heavy tail only
};

/// Which Gaussian(-ish) LRD generator to use underneath. The full zoo —
/// construction, exactness contract, and registry-name mapping — lives in
/// fgn_generator.hpp; select by name with generator_backend_from_name().
enum class GeneratorBackend {
  kHosking,          ///< the paper's exact O(n^2) recursion
  kDaviesHarte,      ///< exact O(n log n) circulant embedding
  kPaxson,           ///< Paxson's approximate spectral synthesis (fast)
  kAggregatedOnOff,  ///< Pareto-session M/G/inf count (on/off superposition limit)
};

/// The complete four-parameter model.
struct VbrModelParams {
  stats::GammaParetoParams marginal;  ///< mu_Gamma, sigma_Gamma, m_T
  double hurst = 0.8;                 ///< H
};

struct FitOptions {
  /// Upper-order fraction used for the Pareto tail-slope regression.
  double tail_fraction = 0.03;
  /// H is estimated by Whittle on log-transformed, aggregated data; the
  /// aggregation level is chosen to leave about this many points (the
  /// paper reads its estimate at m ~ 700, i.e. ~244 points of 171k).
  std::size_t whittle_target_points = 300;
};

/// Fitted/parameterized VBR video traffic source.
class VbrVideoSourceModel {
 public:
  explicit VbrVideoSourceModel(const VbrModelParams& params);

  /// Estimate all four parameters from a frame-size record.
  static VbrVideoSourceModel fit(std::span<const double> frame_bytes,
                                 const FitOptions& options = {});

  const VbrModelParams& params() const { return params_; }
  const stats::GammaParetoDistribution& marginal() const { return marginal_; }

  /// Generate n frame sizes (bytes/frame).
  std::vector<double> generate(std::size_t n, Rng& rng,
                               ModelVariant variant = ModelVariant::kFull,
                               GeneratorBackend backend = GeneratorBackend::kDaviesHarte) const;

  /// Convenience wrapper returning a TimeSeries at the paper's frame rate.
  trace::TimeSeries generate_trace(std::size_t n, Rng& rng,
                                   ModelVariant variant = ModelVariant::kFull,
                                   GeneratorBackend backend = GeneratorBackend::kDaviesHarte,
                                   double dt_seconds = 1.0 / 24.0) const;

 private:
  VbrModelParams params_;
  stats::GammaParetoDistribution marginal_;
};

}  // namespace vbr::model
