#include "vbr/model/model_validation.hpp"

#include <cmath>

#include "vbr/common/error.hpp"

namespace vbr::model {

bool ValidationReport::agrees(double rel_tol, double hurst_tol) const {
  return mean_rel_error < rel_tol && sigma_rel_error < rel_tol &&
         tail_slope_rel_error < rel_tol && hurst_abs_error < hurst_tol;
}

ValidationReport validate_model(const VbrVideoSourceModel& model, std::size_t n, Rng& rng,
                                ModelVariant variant, GeneratorBackend backend) {
  VBR_ENSURE(n >= 1000, "model validation refits the model and needs a long record");
  ValidationReport report;
  report.input = model.params();

  const auto realization = model.generate(n, rng, variant, backend);
  const auto refit = VbrVideoSourceModel::fit(realization);
  report.refit = refit.params();

  const auto rel = [](double estimated, double truth) {
    return std::abs(estimated - truth) / std::abs(truth);
  };
  report.mean_rel_error = rel(report.refit.marginal.mu_gamma, report.input.marginal.mu_gamma);
  report.sigma_rel_error =
      rel(report.refit.marginal.sigma_gamma, report.input.marginal.sigma_gamma);
  report.tail_slope_rel_error =
      rel(report.refit.marginal.tail_slope, report.input.marginal.tail_slope);
  report.hurst_abs_error = std::abs(report.refit.hurst - report.input.hurst);
  return report;
}

}  // namespace vbr::model
