// Calibrated surrogate for the paper's empirical dataset: the 171,000-frame
// "Star Wars" intraframe VBR trace (Tables 1-2, Fig. 1).
//
// The original trace (2 hours of the movie through Bellcore's DCT/RLE/
// Huffman coder) is not available here, so we synthesize a trace engineered
// to have the published statistics:
//
//   * marginals: hybrid Gamma/Pareto with mu = 27,791 and sigma = 6,254
//     bytes/frame; the Pareto tail slope is *calibrated* so the expected
//     maximum of a 171,000-sample realization matches the published peak
//     (78,459 bytes/frame);
//   * long-range dependence: H = 0.80 via an exact fractional Gaussian
//     noise core (Davies-Harte);
//   * scene structure: per-shot constant levels (with two-level dialog
//     alternation) mixed into the Gaussian core, reproducing the short-range
//     behavior the paper describes in Sections 3.2 / 4.2;
//   * the named events of Fig. 1: the 42-second opening text, three sharp
//     effect peaks near the center ("jump to hyperspace", planet explosion,
//     "jump from hyperspace") and the 10-second "Death Star" explosion five
//     minutes before the end.
//
// Every analysis in this repository consumes only these statistical
// properties, so each experiment exercises the same code paths as the
// original data would.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "vbr/model/vbr_source.hpp"
#include "vbr/trace/scene_model.hpp"
#include "vbr/trace/time_series.hpp"

namespace vbr::model {

struct SurrogateOptions {
  std::size_t frames = 171000;        ///< 2 hours at 24 fps (Table 1)
  double dt_seconds = 1.0 / 24.0;
  double mean_bytes = 27791.0;        ///< Table 2
  double stddev_bytes = 6254.0;       ///< Table 2
  double target_max_bytes = 78459.0;  ///< Table 2; calibrates the tail slope
  double hurst = 0.80;                ///< Table 3
  /// Fraction of Gaussian variance carried by per-scene constant levels
  /// (the short-range "scene" structure). 0 disables scene quantization.
  double scene_weight = 0.35;
  /// Named Fig. 1 events overlay (opening text, hyperspace jumps, ...).
  bool events = true;
  /// Default seed chosen so the full-length realization's estimated H
  /// lands on the paper's Table 3 values (like the paper, we emulate ONE
  /// specific empirical record; under LRD different realizations of the
  /// same process give visibly different point estimates — see Fig. 9).
  std::uint64_t seed = 1977;
  vbr::trace::SceneModelParams scene_params{};
};

/// A generated surrogate with its construction metadata.
struct SurrogateTrace {
  vbr::trace::TimeSeries frames;      ///< bytes/frame at 24 fps
  VbrModelParams calibration;         ///< parameters used, incl. calibrated m_T
  std::vector<vbr::trace::Scene> scenes;

  struct Event {
    std::string name;
    std::size_t start_frame = 0;
    std::size_t length = 0;  ///< frames
  };
  std::vector<Event> events;
};

/// Build the surrogate trace. Deterministic in options.seed.
SurrogateTrace make_starwars_surrogate(const SurrogateOptions& options = {});

/// Calibrate the Pareto tail slope m_T so that the (1 - 1/n) quantile of the
/// hybrid Gamma/Pareto law equals target_max (bisection; exposed for tests).
double calibrate_tail_slope(double mean, double stddev, double target_max, std::size_t n);

/// Derive the slice-level trace (Table 1: 30 slices/frame). jitter controls
/// intra-frame slice-size variability; the default reproduces the paper's
/// slice coefficient of variation (~0.31 vs 0.23 at frame level).
vbr::trace::TimeSeries surrogate_slices(const SurrogateTrace& surrogate,
                                        std::size_t slices_per_frame = 30,
                                        double jitter = 0.36);

}  // namespace vbr::model
