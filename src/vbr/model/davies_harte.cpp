#include "vbr/model/davies_harte.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "vbr/common/error.hpp"
#include "vbr/common/fft.hpp"
#include "vbr/model/fgn_acf.hpp"

namespace vbr::model {
namespace {

// Square roots of the circulant eigenvalues for one embedding, indexed
// k = 0..m (the upper half follows by symmetry). Shared immutably between
// threads once computed.
using SqrtEigenvalues = std::shared_ptr<const std::vector<double>>;

// Cache key: (H bit pattern via exact double compare, embedding length 2m,
// covariance kind). The eigenvalues do not depend on options.variance —
// that is a plain output scale — so it is deliberately not part of the key.
using EigenKey = std::tuple<double, std::size_t, int>;

struct EigenCache {
  std::mutex mutex;
  std::map<EigenKey, SqrtEigenvalues> entries;
};

EigenCache& eigen_cache() {
  static EigenCache cache;
  return cache;
}

// Compute sqrt(lambda_k), k = 0..m, for the 2m-circulant embedding of the
// first m+1 autocovariances. Deterministic in its inputs, so concurrent
// duplicate computations of the same key yield identical vectors.
SqrtEigenvalues compute_sqrt_eigenvalues(double hurst, std::size_t m,
                                         CovarianceKind covariance) {
  const std::size_t two_m = 2 * m;
  const auto rho =
      (covariance == CovarianceKind::kFgn) ? fgn_acf(hurst, m) : farima_acf(hurst, m);

  // First row of the circulant: r_0..r_m, then mirrored r_{m-1}..r_1. The
  // row is real and even, so its DFT is real and even — rfft() gives the
  // m+1 distinct eigenvalues at half the cost of the full complex FFT.
  std::vector<double> row(two_m);
  for (std::size_t j = 0; j <= m; ++j) row[j] = rho[j];
  for (std::size_t j = 1; j < m; ++j) row[two_m - j] = rho[j];
  const auto spectrum = rfft(row);

  // The exact eigenvalues are non-negative for fGn/fARIMA; roundoff in the
  // length-2m FFT perturbs them by O(eps log2(2m) lambda_max) ~ 1e-14 *
  // lambda_max. A relative threshold of 1e-10 * lambda_max leaves four
  // orders of margin over that while still rejecting genuinely indefinite
  // embeddings — and since lambda_max <= 2m (|rho| <= 1), it is strictly
  // tighter than the old absolute 1e-8 * 2m rule, which at 2m = 2^18
  // would have silently zeroed eigenvalues as large as 2.6e-3.
  double lambda_max = 0.0;
  for (std::size_t k = 0; k <= m; ++k) {
    VBR_DCHECK(std::isfinite(spectrum[k].real()), "non-finite circulant eigenvalue");
    lambda_max = std::max(lambda_max, std::abs(spectrum[k].real()));
  }
  VBR_CHECK_FINITE(lambda_max, "largest circulant eigenvalue");
  const double tolerance = 1e-10 * std::max(1.0, lambda_max);

  auto sqrt_lambda = std::make_shared<std::vector<double>>(m + 1);
  for (std::size_t k = 0; k <= m; ++k) {
    const double val = spectrum[k].real();
    if (val < -tolerance) {
      throw NumericalError("circulant embedding is not non-negative definite");
    }
    (*sqrt_lambda)[k] = std::sqrt(std::max(0.0, val));
  }
  return sqrt_lambda;
}

SqrtEigenvalues cached_sqrt_eigenvalues(double hurst, std::size_t m,
                                        CovarianceKind covariance) {
  const EigenKey key(hurst, 2 * m, static_cast<int>(covariance));
  auto& cache = eigen_cache();
  {
    std::lock_guard<std::mutex> lock(cache.mutex);
    const auto it = cache.entries.find(key);
    if (it != cache.entries.end()) return it->second;
  }
  // Compute outside the lock so a cold cache does not serialize the
  // N-source fan-out; a racing duplicate computes the identical vector and
  // the first insert wins.
  auto computed = compute_sqrt_eigenvalues(hurst, m, covariance);
  std::lock_guard<std::mutex> lock(cache.mutex);
  return cache.entries.emplace(key, std::move(computed)).first->second;
}

}  // namespace

std::size_t davies_harte_cache_size() {
  auto& cache = eigen_cache();
  std::lock_guard<std::mutex> lock(cache.mutex);
  return cache.entries.size();
}

void davies_harte_cache_clear() {
  auto& cache = eigen_cache();
  std::lock_guard<std::mutex> lock(cache.mutex);
  cache.entries.clear();
}

std::vector<double> davies_harte(std::size_t n, const DaviesHarteOptions& options, Rng& rng) {
  VBR_ENSURE(n >= 1, "cannot generate an empty realization");
  VBR_ENSURE(options.hurst > 0.0 && options.hurst < 1.0, "H must be in (0, 1)");
  VBR_ENSURE(options.variance > 0.0, "variance must be positive");
  if (n == 1) return {rng.normal(0.0, std::sqrt(options.variance))};

  // Embedding length 2m with m a power of two >= n keeps the FFT fast.
  const std::size_t m = next_power_of_two(n);
  const std::size_t two_m = 2 * m;

  const auto sqrt_lambda =
      options.use_eigenvalue_cache
          ? cached_sqrt_eigenvalues(options.hurst, m, options.covariance)
          : compute_sqrt_eigenvalues(options.hurst, m, options.covariance);

  // Color complex white noise. The full spectrum has W_0, W_m real and
  // conjugate symmetry W_{2m-k} = conj(W_k), so only the non-redundant half
  // W_0..W_m is ever materialized; irfft() supplies the mirrored half
  // implicitly. The Rng draw order matches the pre-rfft implementation
  // exactly: W_0, W_m, then (Re, Im) pairs for k = 1..m-1.
  std::vector<std::complex<double>> w(m + 1);
  w[0] = rng.normal() * (*sqrt_lambda)[0];
  w[m] = rng.normal() * (*sqrt_lambda)[m];
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  for (std::size_t k = 1; k < m; ++k) {
    const std::complex<double> g(rng.normal() * inv_sqrt2, rng.normal() * inv_sqrt2);
    w[k] = g * (*sqrt_lambda)[k];
  }

  // X_j = (1/sqrt(2m)) sum_k sqrt(lambda_k) W_k e^{+2 pi i jk / 2m}:
  // irfft() includes a 1/(2m) factor, so scale by sqrt(2m).
  const auto x = irfft(w, two_m);
  const double scale = std::sqrt(static_cast<double>(two_m) * options.variance);
  std::vector<double> out(n);
  for (std::size_t j = 0; j < n; ++j) {
    VBR_DCHECK(std::isfinite(x[j]), "non-finite Davies-Harte sample");
    out[j] = x[j] * scale;
  }
  return out;
}

}  // namespace vbr::model
