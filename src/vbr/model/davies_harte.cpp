#include "vbr/model/davies_harte.hpp"

#include <cmath>
#include <complex>

#include "vbr/common/error.hpp"
#include "vbr/common/fft.hpp"
#include "vbr/model/fgn_acf.hpp"

namespace vbr::model {

std::vector<double> davies_harte(std::size_t n, const DaviesHarteOptions& options, Rng& rng) {
  VBR_ENSURE(n >= 1, "cannot generate an empty realization");
  VBR_ENSURE(options.hurst > 0.0 && options.hurst < 1.0, "H must be in (0, 1)");
  VBR_ENSURE(options.variance > 0.0, "variance must be positive");
  if (n == 1) return {rng.normal(0.0, std::sqrt(options.variance))};

  // Embedding length 2m with m a power of two >= n keeps the FFT fast.
  const std::size_t m = next_power_of_two(n);
  const std::size_t two_m = 2 * m;

  const auto rho = (options.covariance == CovarianceKind::kFgn)
                       ? fgn_acf(options.hurst, m)
                       : farima_acf(options.hurst, m);

  // First row of the circulant: r_0..r_m, then mirrored r_{m-1}..r_1.
  std::vector<std::complex<double>> eigen(two_m);
  for (std::size_t j = 0; j <= m; ++j) eigen[j] = rho[j];
  for (std::size_t j = 1; j < m; ++j) eigen[two_m - j] = rho[j];
  fft(eigen);

  // Eigenvalues are real for a symmetric circulant; clip tiny negatives due
  // to roundoff, reject material ones.
  std::vector<double> lambda(two_m);
  for (std::size_t k = 0; k < two_m; ++k) {
    const double val = eigen[k].real();
    if (val < -1e-8 * static_cast<double>(two_m)) {
      throw NumericalError("circulant embedding is not non-negative definite");
    }
    lambda[k] = std::max(0.0, val);
  }

  // Color complex white noise: W_0, W_m real; W_k (0<k<m) complex with
  // conjugate symmetry W_{2m-k} = conj(W_k).
  std::vector<std::complex<double>> w(two_m);
  w[0] = rng.normal();
  w[m] = rng.normal();
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  for (std::size_t k = 1; k < m; ++k) {
    const std::complex<double> g(rng.normal() * inv_sqrt2, rng.normal() * inv_sqrt2);
    w[k] = g;
    w[two_m - k] = std::conj(g);
  }
  for (std::size_t k = 0; k < two_m; ++k) w[k] *= std::sqrt(lambda[k]);

  // X_j = (1/sqrt(2m)) sum_k sqrt(lambda_k) W_k e^{+2 pi i jk / 2m}:
  // ifft() includes a 1/(2m) factor, so scale by sqrt(2m).
  ifft(w);
  const double scale = std::sqrt(static_cast<double>(two_m) * options.variance);
  std::vector<double> out(n);
  for (std::size_t j = 0; j < n; ++j) out[j] = w[j].real() * scale;
  return out;
}

}  // namespace vbr::model
