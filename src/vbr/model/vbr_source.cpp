#include "vbr/model/vbr_source.hpp"

#include <algorithm>
#include <cmath>

#include "vbr/common/error.hpp"
#include "vbr/common/math_util.hpp"
#include "vbr/model/fgn_generator.hpp"
#include "vbr/model/marginal_transform.hpp"
#include "vbr/stats/whittle.hpp"

namespace vbr::model {

VbrVideoSourceModel::VbrVideoSourceModel(const VbrModelParams& params)
    : params_(params), marginal_(params.marginal) {
  VBR_ENSURE(params.hurst > 0.0 && params.hurst < 1.0, "H must be in (0, 1)");
}

VbrVideoSourceModel VbrVideoSourceModel::fit(std::span<const double> frame_bytes,
                                             const FitOptions& options) {
  VBR_ENSURE(frame_bytes.size() >= 1000, "fitting needs a long record");
  check_finite_series(frame_bytes, "VbrVideoSourceModel::fit input");
  VbrModelParams params;
  params.marginal =
      stats::GammaParetoDistribution::fit(frame_bytes, options.tail_fraction);

  // H from the Whittle estimator on the log-transformed, aggregated series
  // (the log transform makes the marginals approximately Normal, matching
  // the estimator's Gaussian assumption; aggregation filters short-range
  // structure the fARIMA(0,d,0) shape does not model).
  std::vector<double> logs;
  logs.reserve(frame_bytes.size());
  for (double v : frame_bytes) {
    VBR_ENSURE(v > 0.0, "frame sizes must be positive");
    logs.push_back(std::log(v));
  }
  const std::size_t m =
      std::max<std::size_t>(1, frame_bytes.size() / options.whittle_target_points);
  const auto aggregated = block_means(logs, m);
  // Aggregated self-similar data converges to fGn, so the fGn spectral
  // model is the right Whittle target once m > 1.
  const auto model =
      (m > 1) ? stats::SpectralModel::kFgn : stats::SpectralModel::kFarima;
  params.hurst = stats::whittle_estimate(aggregated, model).hurst;
  VBR_CHECK_RANGE(params.hurst, 0.0, 1.0, "fitted H left (0, 1)");
  return VbrVideoSourceModel(params);
}

std::vector<double> VbrVideoSourceModel::generate(std::size_t n, Rng& rng,
                                                  ModelVariant variant,
                                                  GeneratorBackend backend) const {
  VBR_ENSURE(n >= 1, "cannot generate an empty trace");

  if (variant == ModelVariant::kIidGammaPareto) {
    std::vector<double> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(marginal_.sample(rng));
    return out;
  }

  // Gaussian(-ish) LRD core with zero mean, unit variance, from the
  // generator zoo. The exact backends realize the paper's fARIMA(0,d,0)
  // covariance; the approximate ones target fGn (see fgn_generator.hpp for
  // the fidelity contract).
  std::vector<double> gaussian =
      make_fgn_generator(backend, params_.hurst)->generate(n, rng);

  if (variant == ModelVariant::kGaussianFarima) {
    // Gaussian marginals scaled to the trace's mean/stddev; negative frame
    // sizes are physically impossible, so clip at zero (rare for the
    // paper's coefficient of variation of ~0.23).
    for (auto& x : gaussian) {
      VBR_DCHECK(std::isfinite(x), "non-finite Gaussian core sample");
      x = std::max(0.0, params_.marginal.mu_gamma + params_.marginal.sigma_gamma * x);
    }
    return gaussian;
  }

  // Full model: Eq. (13) through the tabulated Gaussian -> Gamma/Pareto map.
  const TabulatedMarginalMap map(marginal_);
  return map.apply(gaussian);
}

trace::TimeSeries VbrVideoSourceModel::generate_trace(std::size_t n, Rng& rng,
                                                      ModelVariant variant,
                                                      GeneratorBackend backend,
                                                      double dt_seconds) const {
  VBR_ENSURE(n >= 1, "cannot generate an empty trace");
  return trace::TimeSeries(generate(n, rng, variant, backend), dt_seconds, "bytes/frame");
}

}  // namespace vbr::model
