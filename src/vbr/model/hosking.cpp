#include "vbr/model/hosking.hpp"

#include <cmath>

#include "vbr/common/error.hpp"
#include "vbr/common/math_util.hpp"
#include "vbr/model/fgn_acf.hpp"

namespace vbr::model {

HoskingGenerator::HoskingGenerator(const HoskingOptions& options, Rng rng)
    : options_(options), rng_(rng), v_(options.variance) {
  VBR_ENSURE(options.hurst > 0.0 && options.hurst < 1.0, "H must be in (0, 1)");
  VBR_ENSURE(options.variance > 0.0, "marginal variance must be positive");
  rho_.push_back(1.0);
}

void HoskingGenerator::extend_rho(std::size_t upto) {
  const double d = options_.hurst - 0.5;
  while (rho_.size() <= upto) {
    const auto k = static_cast<double>(rho_.size());
    rho_.push_back(rho_.back() * (k - 1.0 + d) / (k - d));
  }
}

double HoskingGenerator::next() {
  const std::size_t k = x_.size();
  if (k == 0) {
    // X_0 ~ N(0, v_0); N_0 = 0, D_0 = 1 (constructor defaults).
    const double x0 = rng_.normal(0.0, std::sqrt(v_));
    x_.push_back(x0);
    return x0;
  }
  extend_rho(k);

  // Eq. (7): N_k = rho_k - sum_{j=1}^{k-1} phi_{k-1,j} rho_{k-j}.
  KahanSum acc;
  for (std::size_t j = 1; j < k; ++j) acc.add(phi_[j - 1] * rho_[k - j]);
  const double n_k = rho_[k] - acc.value();

  // Eq. (8): D_k = D_{k-1} - N_{k-1}^2 / D_{k-1}.
  const double d_k = d_prev_ - n_prev_ * n_prev_ / d_prev_;
  VBR_ENSURE(d_k > 0.0, "Hosking recursion lost positive definiteness");

  // Eq. (9): phi_kk = N_k / D_k.
  const double phi_kk = n_k / d_k;
  VBR_ENSURE(std::abs(phi_kk) < 1.0, "partial autocorrelation left (-1, 1)");

  // Eq. (10): phi_kj = phi_{k-1,j} - phi_kk * phi_{k-1,k-j}.
  std::vector<double> phi_new(k);
  for (std::size_t j = 1; j < k; ++j) {
    phi_new[j - 1] = phi_[j - 1] - phi_kk * phi_[k - j - 1];
  }
  phi_new[k - 1] = phi_kk;
  phi_ = std::move(phi_new);

  // Eq. (11): m_k = sum_j phi_kj X_{k-j}.
  KahanSum m_acc;
  for (std::size_t j = 1; j <= k; ++j) m_acc.add(phi_[j - 1] * x_[k - j]);

  // Eq. (12): v_k = (1 - phi_kk^2) v_{k-1}.
  v_ *= (1.0 - phi_kk * phi_kk);

  const double xk = rng_.normal(m_acc.value(), std::sqrt(v_));
  VBR_DCHECK(std::isfinite(xk), "non-finite Hosking sample");
  x_.push_back(xk);
  n_prev_ = n_k;
  d_prev_ = d_k;
  return xk;
}

std::vector<double> hosking_farima(std::size_t n, const HoskingOptions& options, Rng& rng) {
  VBR_ENSURE(n >= 1, "cannot generate an empty realization");
  HoskingGenerator gen(options, rng.split());
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(gen.next());
  return out;
}

}  // namespace vbr::model
