#include "vbr/engine/plan_text.hpp"

#include <charconv>
#include <cmath>
#include <set>
#include <sstream>

#include "vbr/common/error.hpp"
#include "vbr/model/fgn_generator.hpp"

namespace vbr::engine {
namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' || s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw InvalidArgument("plan text line " + std::to_string(line) + ": " + what);
}

std::uint64_t parse_u64(std::string_view value, std::size_t line, const char* key) {
  std::uint64_t out = 0;
  const auto [ptr, ec] = std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc{} || ptr != value.data() + value.size()) {
    fail(line, std::string(key) + " wants an unsigned integer, got \"" +
                   std::string(value) + "\"");
  }
  return out;
}

double parse_f64(std::string_view value, std::size_t line, const char* key) {
  // std::from_chars<double> is the strict full-consumption parse; strtod
  // would silently accept trailing garbage and locale-dependent forms.
  double out = 0.0;
  const auto [ptr, ec] = std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc{} || ptr != value.data() + value.size() || !std::isfinite(out)) {
    fail(line, std::string(key) + " wants a finite number, got \"" +
                   std::string(value) + "\"");
  }
  return out;
}

model::ModelVariant parse_variant(std::string_view value, std::size_t line) {
  if (value == "full") return model::ModelVariant::kFull;
  if (value == "gaussian-farima") return model::ModelVariant::kGaussianFarima;
  if (value == "iid-gamma-pareto") return model::ModelVariant::kIidGammaPareto;
  fail(line, "unknown variant \"" + std::string(value) +
                 "\" (expected full, gaussian-farima, or iid-gamma-pareto)");
}

const char* variant_name(model::ModelVariant variant) {
  switch (variant) {
    case model::ModelVariant::kFull:
      return "full";
    case model::ModelVariant::kGaussianFarima:
      return "gaussian-farima";
    case model::ModelVariant::kIidGammaPareto:
      return "iid-gamma-pareto";
  }
  throw InvalidArgument("unknown ModelVariant value");
}

}  // namespace

GenerationPlan parse_plan_text(std::string_view text) {
  GenerationPlan plan;
  std::set<std::string, std::less<>> seen;
  std::size_t line_no = 0;
  while (!text.empty()) {
    const std::size_t eol = text.find('\n');
    std::string_view line = text.substr(0, eol);
    text.remove_prefix(eol == std::string_view::npos ? text.size() : eol + 1);
    ++line_no;

    line = trim(line);
    if (line.empty() || line.front() == '#') continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) fail(line_no, "expected key=value");
    const std::string_view key = trim(line.substr(0, eq));
    const std::string_view value = trim(line.substr(eq + 1));
    if (key.empty()) fail(line_no, "empty key");
    if (value.empty()) fail(line_no, "empty value for \"" + std::string(key) + "\"");
    if (!seen.emplace(key).second) {
      fail(line_no, "duplicate key \"" + std::string(key) + "\"");
    }

    if (key == "sources") {
      plan.num_sources = parse_u64(value, line_no, "sources");
      if (plan.num_sources < 1) fail(line_no, "sources must be >= 1");
    } else if (key == "frames") {
      plan.frames_per_source = parse_u64(value, line_no, "frames");
      if (plan.frames_per_source < 1) fail(line_no, "frames must be >= 1");
    } else if (key == "seed") {
      plan.seed = parse_u64(value, line_no, "seed");
    } else if (key == "threads") {
      plan.threads = parse_u64(value, line_no, "threads");
    } else if (key == "hurst") {
      plan.params.hurst = parse_f64(value, line_no, "hurst");
      if (!(plan.params.hurst > 0.0 && plan.params.hurst < 1.0)) {
        fail(line_no, "hurst must lie strictly inside (0, 1)");
      }
    } else if (key == "mu_gamma") {
      plan.params.marginal.mu_gamma = parse_f64(value, line_no, "mu_gamma");
    } else if (key == "sigma_gamma") {
      plan.params.marginal.sigma_gamma = parse_f64(value, line_no, "sigma_gamma");
    } else if (key == "tail_slope") {
      plan.params.marginal.tail_slope = parse_f64(value, line_no, "tail_slope");
    } else if (key == "variant") {
      plan.variant = parse_variant(value, line_no);
    } else if (key == "generator") {
      // Resolves the registry name now so a typo fails at parse time, not
      // halfway into a campaign; the name is kept verbatim on the plan and
      // re-resolved by resolved_backend().
      plan.backend = model::generator_backend_from_name(value);
      plan.generator.assign(value);
    } else {
      fail(line_no, "unknown key \"" + std::string(key) + "\"");
    }
  }
  return plan;
}

std::string format_plan_text(const GenerationPlan& plan) {
  std::ostringstream out;
  out.precision(17);  // round-trips any double exactly through parse_f64
  out << "sources=" << plan.num_sources << '\n'
      << "frames=" << plan.frames_per_source << '\n'
      << "seed=" << plan.seed << '\n'
      << "threads=" << plan.threads << '\n'
      << "hurst=" << plan.params.hurst << '\n'
      << "mu_gamma=" << plan.params.marginal.mu_gamma << '\n'
      << "sigma_gamma=" << plan.params.marginal.sigma_gamma << '\n'
      << "tail_slope=" << plan.params.marginal.tail_slope << '\n'
      << "variant=" << variant_name(plan.variant) << '\n'
      << "generator=" << model::generator_backend_name(plan.resolved_backend()) << '\n';
  return out.str();
}

}  // namespace vbr::engine
