// Minimal fixed-size fork/join parallelism for the generation engine.
//
// Deliberately work-stealing-free: a task set is a contiguous index range
// and every worker pulls the next index from one atomic counter. Because
// each index owns a disjoint output slot and carries its own pre-derived
// Rng stream, the assignment of indices to OS threads — which *is*
// nondeterministic — cannot affect the results, only the wall time.
#pragma once

#include <cstddef>
#include <functional>

namespace vbr::engine {

/// Clamp a requested worker count: 0 means "use hardware concurrency",
/// anything else is taken literally. Always returns >= 1.
std::size_t resolve_thread_count(std::size_t requested);

/// Run fn(i) for every i in [0, count) across `threads` OS threads (the
/// calling thread counts as one of them, so `threads == 1` never spawns).
/// fn must only write to state owned by index i. If any invocation throws,
/// every remaining index still runs (so the set of observed failures does
/// not depend on scheduling), all workers are joined, and the exception from
/// the *lowest-index* failing task is rethrown on the calling thread —
/// deterministic by task index, not by completion order. Exceptions from
/// higher-index tasks are discarded, never silently swallowed mid-run.
void parallel_for_index(std::size_t count, std::size_t threads,
                        const std::function<void(std::size_t)>& fn);

}  // namespace vbr::engine
