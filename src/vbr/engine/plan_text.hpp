// Text form of a GenerationPlan: the human-editable `key=value` format the
// generate_many example accepts via --plan and the surface the
// fuzz_generation_plan harness drives.
//
// One `key = value` pair per line; blank lines and `#` comments are
// skipped; whitespace around keys and values is trimmed. Recognized keys:
//
//   sources    number of independent sources (>= 1)
//   frames     frames per source (>= 1)
//   seed       master seed (unsigned 64-bit)
//   threads    worker threads (0 = hardware concurrency; never affects output)
//   hurst      target H, strictly inside (0, 1)
//   mu_gamma / sigma_gamma / tail_slope   marginal parameters (finite)
//   variant    full | gaussian-farima | iid-gamma-pareto
//   generator  a zoo registry name (fgn_generator.hpp): davies-harte,
//              hosking, paxson, or onoff
//
// Every key is optional (defaults are GenerationPlan's), duplicates and
// unknown keys are rejected, and numeric values must parse in full — a
// trailing "x" is an error, not ignored. All failures throw
// vbr::InvalidArgument with the offending line number; a parse never
// returns a partially-filled plan.
#pragma once

#include <string>
#include <string_view>

#include "vbr/engine/engine.hpp"

namespace vbr::engine {

/// Parse the text form. Throws vbr::InvalidArgument on any malformed line,
/// unknown/duplicate key, out-of-domain value, or unknown generator name.
GenerationPlan parse_plan_text(std::string_view text);

/// Canonical text form: every key on its own line, generator emitted under
/// its resolved registry name. Round-trips: parse_plan_text(format_plan_text
/// (p)) reproduces p's semantic fields (and thus its plan fingerprint).
std::string format_plan_text(const GenerationPlan& plan);

}  // namespace vbr::engine
