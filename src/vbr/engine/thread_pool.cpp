#include "vbr/engine/thread_pool.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace vbr::engine {

std::size_t resolve_thread_count(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void parallel_for_index(std::size_t count, std::size_t threads,
                        const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  threads = resolve_thread_count(threads);
  if (threads > count) threads = count;

  std::atomic<std::size_t> next{0};
  // Lowest failing task index + its exception. Letting the remaining indices
  // run (instead of draining the queue on first failure) makes the rethrown
  // exception a pure function of the task set: whichever thread interleaving
  // occurs, the error reported is always the lowest-index one. The old
  // drain-on-error fast path made error reporting scheduling-dependent and
  // silently dropped every exception after the first.
  std::size_t error_index = count;
  std::exception_ptr error;
  std::mutex error_mutex;

  const auto worker = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (i < error_index) {
          error_index = i;
          error = std::current_exception();
        }
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (std::size_t t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();  // the calling thread is worker 0
  for (auto& t : pool) t.join();

  if (error) std::rethrow_exception(error);
}

}  // namespace vbr::engine
