#include "vbr/engine/thread_pool.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace vbr::engine {

std::size_t resolve_thread_count(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void parallel_for_index(std::size_t count, std::size_t threads,
                        const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  threads = resolve_thread_count(threads);
  if (threads > count) threads = count;

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  const auto worker = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        // Drain the remaining indices so every worker exits promptly.
        next.store(count, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (std::size_t t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();  // the calling thread is worker 0
  for (auto& t : pool) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace vbr::engine
