#include "vbr/engine/engine.hpp"

#include <chrono>
#include <memory>
#include <thread>

#include "vbr/common/error.hpp"
#include "vbr/common/math_util.hpp"
#include "vbr/engine/thread_pool.hpp"
#include "vbr/model/fgn_generator.hpp"
#include "vbr/stream/sink.hpp"

namespace vbr::engine {

model::GeneratorBackend GenerationPlan::resolved_backend() const {
  return generator.empty() ? backend : model::generator_backend_from_name(generator);
}

std::vector<double> MultiSourceTrace::aggregate() const {
  // Quarantined sources leave empty slots; they contribute nothing to the
  // multiplexer feed, so size the total from the surviving sources.
  std::size_t frames = 0;
  for (const auto& source : sources) frames = std::max(frames, source.size());
  std::vector<double> total(frames, 0.0);
  for (const auto& source : sources) {
    for (std::size_t f = 0; f < source.size(); ++f) total[f] += source[f];
  }
  return total;
}

namespace {

/// Outcome of the per-source retry loop, filled into a slot owned by one
/// task index so the parallel phase needs no shared mutable state.
struct SourceOutcome {
  SourceFailure failure;  ///< meaningful only when failed
  bool failed = false;
  std::size_t transient_retries = 0;
};

}  // namespace

SourceBatch generate_source_batch(const model::VbrVideoSourceModel& model,
                                  std::span<const Rng> streams,
                                  std::size_t first_index,
                                  std::size_t frames_per_source,
                                  model::ModelVariant variant,
                                  model::GeneratorBackend backend,
                                  std::size_t threads,
                                  const stream::Sink* tap,
                                  const FailurePolicy& policy) {
  VBR_ENSURE(frames_per_source >= 1, "batch needs at least one frame per source");
  VBR_ENSURE(policy.max_attempts >= 1, "failure policy needs at least one attempt");

  const std::size_t count = streams.size();
  SourceBatch batch;
  batch.traces.resize(count);
  if (tap != nullptr) batch.sinks.resize(count);
  std::vector<SourceOutcome> outcomes(count);
  if (count == 0) return batch;

  threads = std::min(resolve_thread_count(threads), count);
  parallel_for_index(count, threads, [&](std::size_t i) {
    const auto start = std::chrono::steady_clock::now();
    const auto elapsed = [&] {
      return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
    };
    for (std::size_t attempt = 1;; ++attempt) {
      try {
        // A fresh copy of the pre-derived stream every attempt: a source
        // that needed three tries is bit-identical to one that succeeded
        // immediately.
        Rng rng = streams[i];
        std::vector<double> trace =
            model.generate(frames_per_source, rng, variant, backend);
        std::unique_ptr<stream::Sink> sink;
        if (tap != nullptr) {
          sink = tap->clone_empty();
          sink->push(trace);
        }
        batch.traces[i] = std::move(trace);
        if (tap != nullptr) batch.sinks[i] = std::move(sink);
        return;
      } catch (const TransientError& e) {
        const bool out_of_attempts = attempt >= policy.max_attempts;
        const bool out_of_time = policy.source_deadline_seconds > 0.0 &&
                                 elapsed() >= policy.source_deadline_seconds;
        if (out_of_attempts || out_of_time) {
          auto& out = outcomes[i];
          out.failed = true;
          out.failure.source_index = first_index + i;
          out.failure.attempts = attempt;
          out.failure.error =
              out_of_time && !out_of_attempts
                  ? std::string("source deadline exceeded after transient fault: ") +
                        e.what()
                  : std::string("transient fault persisted across ") +
                        std::to_string(attempt) + " attempts: " + e.what();
          if (!policy.quarantine) throw;
          batch.traces[i].clear();
          return;
        }
        ++outcomes[i].transient_retries;
        if (policy.backoff_seconds > 0.0) {
          const double scale = static_cast<double>(std::size_t{1} << (attempt - 1));
          std::this_thread::sleep_for(
              std::chrono::duration<double>(policy.backoff_seconds * scale));
        }
      } catch (const std::exception& e) {
        auto& out = outcomes[i];
        out.failed = true;
        out.failure.source_index = first_index + i;
        out.failure.attempts = attempt;
        out.failure.error = std::string("permanent failure: ") + e.what();
        if (!policy.quarantine) throw;
        batch.traces[i].clear();
        return;
      }
    }
  });

  for (std::size_t i = 0; i < count; ++i) {
    if (outcomes[i].failed) batch.failures.push_back(outcomes[i].failure);
    batch.transient_retries += outcomes[i].transient_retries;
  }
  return batch;
}

MultiSourceTrace generate_sources(const GenerationPlan& plan, stream::Sink* tap,
                                  const FailurePolicy& policy) {
  VBR_ENSURE(plan.num_sources >= 1, "plan needs at least one source");
  VBR_ENSURE(plan.frames_per_source >= 1, "plan needs at least one frame per source");

  const model::VbrVideoSourceModel model(plan.params);

  // Derive every child stream up front, in source order, from one master
  // stream. The split() sequence depends only on the seed, so source i sees
  // the same Rng no matter how many threads later run it.
  Rng master(plan.seed);
  std::vector<Rng> streams;
  streams.reserve(plan.num_sources);
  for (std::size_t i = 0; i < plan.num_sources; ++i) streams.push_back(master.split());

  const std::size_t threads =
      std::min(resolve_thread_count(plan.threads), plan.num_sources);
  const auto t0 = std::chrono::steady_clock::now();
  SourceBatch batch = generate_source_batch(
      model, streams, /*first_index=*/0, plan.frames_per_source, plan.variant,
      plan.resolved_backend(), threads, tap, policy);
  const auto t1 = std::chrono::steady_clock::now();

  // In-order reduction keeps the tap independent of scheduling; quarantined
  // sources have null sinks and contribute nothing.
  if (tap != nullptr) {
    for (const auto& sink : batch.sinks) {
      if (sink) tap->merge(*sink);
    }
  }

  MultiSourceTrace out;
  out.sources = std::move(batch.traces);
  out.stats.sources = plan.num_sources;
  out.stats.frames =
      (plan.num_sources - batch.failures.size()) * plan.frames_per_source;
  double bytes = 0.0;
  for (const auto& source : out.sources) bytes += kahan_total(source);
  out.stats.bytes = bytes;
  out.stats.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  out.stats.threads_used = threads;
  out.stats.failures = std::move(batch.failures);
  out.stats.transient_retries = batch.transient_retries;
  return out;
}

}  // namespace vbr::engine
