#include "vbr/engine/engine.hpp"

#include <chrono>
#include <memory>

#include "vbr/common/error.hpp"
#include "vbr/common/math_util.hpp"
#include "vbr/engine/thread_pool.hpp"
#include "vbr/stream/sink.hpp"

namespace vbr::engine {

std::vector<double> MultiSourceTrace::aggregate() const {
  if (sources.empty()) return {};
  std::vector<double> total(sources.front().size(), 0.0);
  for (const auto& source : sources) {
    for (std::size_t f = 0; f < total.size(); ++f) total[f] += source[f];
  }
  return total;
}

MultiSourceTrace generate_sources(const GenerationPlan& plan, stream::Sink* tap) {
  VBR_ENSURE(plan.num_sources >= 1, "plan needs at least one source");
  VBR_ENSURE(plan.frames_per_source >= 1, "plan needs at least one frame per source");

  const model::VbrVideoSourceModel model(plan.params);

  // Derive every child stream up front, in source order, from one master
  // stream. The split() sequence depends only on the seed, so source i sees
  // the same Rng no matter how many threads later run it.
  Rng master(plan.seed);
  std::vector<Rng> streams;
  streams.reserve(plan.num_sources);
  for (std::size_t i = 0; i < plan.num_sources; ++i) streams.push_back(master.split());

  MultiSourceTrace out;
  out.sources.resize(plan.num_sources);

  // Per-source sink clones: each worker fills only the clone owned by its
  // source index, so the parallel phase needs no synchronization, and the
  // in-order reduction below makes the tap independent of scheduling.
  std::vector<std::unique_ptr<stream::Sink>> source_sinks;
  if (tap != nullptr) source_sinks.resize(plan.num_sources);

  const std::size_t threads =
      std::min(resolve_thread_count(plan.threads), plan.num_sources);
  const auto t0 = std::chrono::steady_clock::now();
  parallel_for_index(plan.num_sources, threads, [&](std::size_t i) {
    Rng rng = streams[i];
    out.sources[i] = model.generate(plan.frames_per_source, rng, plan.variant, plan.backend);
    if (tap != nullptr) {
      source_sinks[i] = tap->clone_empty();
      source_sinks[i]->push(out.sources[i]);
    }
  });
  const auto t1 = std::chrono::steady_clock::now();

  if (tap != nullptr) {
    for (const auto& sink : source_sinks) tap->merge(*sink);
  }

  out.stats.sources = plan.num_sources;
  out.stats.frames = plan.num_sources * plan.frames_per_source;
  double bytes = 0.0;
  for (const auto& source : out.sources) bytes += kahan_total(source);
  out.stats.bytes = bytes;
  out.stats.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  out.stats.threads_used = threads;
  return out;
}

}  // namespace vbr::engine
