// Deterministic parallel generation of many independent VBR video sources.
//
// The paper's multiplexing study (Section 5) needs N statistically
// independent copies of the four-parameter source; at production scale that
// is the dominant cost, and it is embarrassingly parallel. The engine fans
// a GenerationPlan across a fixed thread pool with a determinism guarantee:
// every source's Rng stream is derived from the master seed by Rng::split()
// *in source order, before any work is dispatched*, so the output is
// bit-identical for any thread count — scheduling decides only who computes
// each source, never what is computed.
//
// The Davies-Harte backend amortizes beautifully here: all sources share
// one circulant eigenvalue vector through the process-wide cache, so after
// the first source each generation is just noise draws plus one half-length
// real FFT.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "vbr/common/rng.hpp"
#include "vbr/model/vbr_source.hpp"

namespace vbr::stream {
class Sink;
}

namespace vbr::engine {

/// Everything needed to reproduce a multi-source generation run.
struct GenerationPlan {
  std::size_t num_sources = 1;
  std::size_t frames_per_source = 0;
  std::uint64_t seed = 0;
  /// Model shared by every source (sources differ only by Rng stream).
  model::VbrModelParams params;
  model::ModelVariant variant = model::ModelVariant::kFull;
  model::GeneratorBackend backend = model::GeneratorBackend::kDaviesHarte;
  /// Zoo registry name (fgn_generator.hpp) selecting the LRD generator; when
  /// non-empty it takes precedence over `backend`. The plan-text form and
  /// CLI surfaces set this; programmatic callers may keep using the enum.
  std::string generator;
  /// Worker threads; 0 means hardware concurrency. Never affects output.
  std::size_t threads = 0;

  /// The backend this plan actually runs: `generator` resolved through the
  /// zoo registry when set, else `backend`. Everything that consumes a plan
  /// — the engine, the campaign runner, the checkpoint fingerprint — goes
  /// through this, so a name-selected plan and its enum-selected twin are
  /// interchangeable (identical output and fingerprint). Throws
  /// vbr::InvalidArgument on an unknown name.
  model::GeneratorBackend resolved_backend() const;
};

/// How the engine responds when a source's generation or tap fails.
///
/// vbr::TransientError is retried up to max_attempts with exponential
/// backoff; every retry regenerates the source from a copy of its original
/// Rng stream, so a retried source is bit-identical to one that succeeded
/// first try. Any other exception — or exhausting the retry budget, or
/// blowing the per-source deadline — is permanent: with `quarantine` the
/// source is dropped (empty output, failure recorded in EngineStats) and the
/// rest of the campaign completes; without it, the failure propagates as an
/// exception after all sources have run (lowest source index wins, see
/// parallel_for_index).
struct FailurePolicy {
  std::size_t max_attempts = 3;       ///< total tries per source (>= 1)
  double backoff_seconds = 0.0;       ///< sleep before retry k: backoff * 2^(k-1)
  double source_deadline_seconds = 0.0;  ///< wall-clock budget per source; 0 = none
  bool quarantine = false;            ///< degrade gracefully instead of throwing
};

/// One quarantined source: which, why, and how hard the engine tried.
struct SourceFailure {
  std::size_t source_index = 0;
  std::string error;
  std::size_t attempts = 0;
};

/// Throughput accounting for one engine run.
struct EngineStats {
  std::size_t sources = 0;
  std::size_t frames = 0;  ///< total frames across all sources
  double bytes = 0.0;      ///< total generated traffic volume
  double wall_seconds = 0.0;
  std::size_t threads_used = 0;
  /// Sources that exhausted the FailurePolicy and were quarantined, in
  /// source order. Empty on a fully successful run.
  std::vector<SourceFailure> failures;
  /// Transient faults that were absorbed by retry (the run still succeeded).
  std::size_t transient_retries = 0;

  double frames_per_second() const {
    return wall_seconds > 0.0 ? static_cast<double>(frames) / wall_seconds : 0.0;
  }
  double bytes_per_second() const {
    return wall_seconds > 0.0 ? bytes / wall_seconds : 0.0;
  }
};

/// Result of a run: one frame-size vector per source, in plan order.
struct MultiSourceTrace {
  std::vector<std::vector<double>> sources;
  EngineStats stats;

  /// Aggregate arrival process: per-frame sum across all sources (the
  /// multiplexer feed of Section 5.1, with zero relative lags).
  std::vector<double> aggregate() const;
};

/// Output of one generation batch. `traces[k]` / `sinks[k]` belong to source
/// `first_index + k` of the surrounding plan; a quarantined source leaves an
/// empty trace and a null sink, with the reason recorded in `failures`.
struct SourceBatch {
  std::vector<std::vector<double>> traces;
  std::vector<std::unique_ptr<stream::Sink>> sinks;  ///< empty when tap == nullptr
  std::vector<SourceFailure> failures;               ///< in source order
  std::size_t transient_retries = 0;
};

/// Generate `streams.size()` sources, one per pre-derived Rng stream, under a
/// FailurePolicy. This is the checkpointable core of the engine: the campaign
/// runner calls it one batch at a time, persisting the unconsumed stream
/// states between calls, so a resumed run hands the surviving streams back
/// and continues bit-identically. `first_index` only labels failures; it
/// never influences the output. Each retry restarts from a copy of the
/// source's original stream, so retried output is bit-identical to
/// first-try output for any thread count.
SourceBatch generate_source_batch(const model::VbrVideoSourceModel& model,
                                  std::span<const Rng> streams,
                                  std::size_t first_index,
                                  std::size_t frames_per_source,
                                  model::ModelVariant variant,
                                  model::GeneratorBackend backend,
                                  std::size_t threads,
                                  const stream::Sink* tap,
                                  const FailurePolicy& policy);

/// Execute the plan. Output depends only on the plan fields other than
/// `threads`. Throws InvalidArgument on an empty plan.
///
/// If `tap` is non-null, every source's frame stream is also pushed into a
/// streaming-statistics sink while the run is in flight: each source gets a
/// private tap->clone_empty() filled on whichever worker generates it, and
/// the per-source sinks are merged into `tap` *in source order on the
/// calling thread* after the join. Because the sinks never touch generation
/// and the merge order is fixed, the generated trace stays bit-identical
/// for any thread count and the tap statistics are deterministic too.
///
/// `policy` governs failure handling (see FailurePolicy); the default
/// retries transient faults and throws on anything permanent.
MultiSourceTrace generate_sources(const GenerationPlan& plan,
                                  stream::Sink* tap = nullptr,
                                  const FailurePolicy& policy = {});

}  // namespace vbr::engine
