// Deterministic parallel generation of many independent VBR video sources.
//
// The paper's multiplexing study (Section 5) needs N statistically
// independent copies of the four-parameter source; at production scale that
// is the dominant cost, and it is embarrassingly parallel. The engine fans
// a GenerationPlan across a fixed thread pool with a determinism guarantee:
// every source's Rng stream is derived from the master seed by Rng::split()
// *in source order, before any work is dispatched*, so the output is
// bit-identical for any thread count — scheduling decides only who computes
// each source, never what is computed.
//
// The Davies-Harte backend amortizes beautifully here: all sources share
// one circulant eigenvalue vector through the process-wide cache, so after
// the first source each generation is just noise draws plus one half-length
// real FFT.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "vbr/model/vbr_source.hpp"

namespace vbr::stream {
class Sink;
}

namespace vbr::engine {

/// Everything needed to reproduce a multi-source generation run.
struct GenerationPlan {
  std::size_t num_sources = 1;
  std::size_t frames_per_source = 0;
  std::uint64_t seed = 0;
  /// Model shared by every source (sources differ only by Rng stream).
  model::VbrModelParams params;
  model::ModelVariant variant = model::ModelVariant::kFull;
  model::GeneratorBackend backend = model::GeneratorBackend::kDaviesHarte;
  /// Worker threads; 0 means hardware concurrency. Never affects output.
  std::size_t threads = 0;
};

/// Throughput accounting for one engine run.
struct EngineStats {
  std::size_t sources = 0;
  std::size_t frames = 0;  ///< total frames across all sources
  double bytes = 0.0;      ///< total generated traffic volume
  double wall_seconds = 0.0;
  std::size_t threads_used = 0;

  double frames_per_second() const {
    return wall_seconds > 0.0 ? static_cast<double>(frames) / wall_seconds : 0.0;
  }
  double bytes_per_second() const {
    return wall_seconds > 0.0 ? bytes / wall_seconds : 0.0;
  }
};

/// Result of a run: one frame-size vector per source, in plan order.
struct MultiSourceTrace {
  std::vector<std::vector<double>> sources;
  EngineStats stats;

  /// Aggregate arrival process: per-frame sum across all sources (the
  /// multiplexer feed of Section 5.1, with zero relative lags).
  std::vector<double> aggregate() const;
};

/// Execute the plan. Output depends only on the plan fields other than
/// `threads`. Throws InvalidArgument on an empty plan.
///
/// If `tap` is non-null, every source's frame stream is also pushed into a
/// streaming-statistics sink while the run is in flight: each source gets a
/// private tap->clone_empty() filled on whichever worker generates it, and
/// the per-source sinks are merged into `tap` *in source order on the
/// calling thread* after the join. Because the sinks never touch generation
/// and the merge order is fixed, the generated trace stays bit-identical
/// for any thread count and the tap statistics are deterministic too.
MultiSourceTrace generate_sources(const GenerationPlan& plan,
                                  stream::Sink* tap = nullptr);

}  // namespace vbr::engine
