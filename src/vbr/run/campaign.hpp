// Crash-safe campaign runner: generation + streaming analysis that survives
// SIGKILL.
//
// run_campaign() executes a GenerationPlan source by source into a binary
// trace file, optionally feeding a streaming-statistics tap, and persists a
// checkpoint (see checkpoint.hpp) at every batch boundary. Kill the process
// at any instant and run again with `resume = true`: the runner reloads the
// checkpoint, truncates the trace back to the last durable sample, restores
// the tap sink state and the unconsumed per-source Rng streams, and
// continues. The final trace hash and sink state are bit-identical to an
// uninterrupted run — proof-by-determinism, enforced by the crash-soak
// harness (scripts/crash_soak.sh) and tests/campaign_test.cpp.
//
// The ordering that makes this safe: samples are appended and *flushed*
// (fsynced when durable) before the checkpoint that claims them is written,
// and the checkpoint itself goes through the atomic temp+rename helper. A
// crash can therefore leave a trace that is ahead of the checkpoint — the
// resume truncates the excess — but never a checkpoint that is ahead of the
// trace.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>

#include "vbr/engine/engine.hpp"

namespace vbr::stream {
class Sink;
}

namespace vbr::run {

class FaultInjector;

struct CampaignOptions {
  engine::GenerationPlan plan;
  std::filesystem::path trace_path;
  /// Empty disables checkpointing entirely (the bench baseline).
  std::filesystem::path checkpoint_path;
  /// Sources generated per batch; a checkpoint lands after every batch.
  /// 0 means one batch for the whole plan (checkpoint only at the end).
  std::size_t checkpoint_every_sources = 16;
  /// Continue from checkpoint_path if it exists; a fresh run otherwise.
  bool resume = false;
  /// fsync the trace at sync intervals and the checkpoint on every save.
  /// SIGKILL-safety does not need this (the kernel keeps flushed data);
  /// power-loss safety does.
  bool durable = false;
  engine::FailurePolicy failure;
  /// Test-only seam: when set, the runner polls site "checkpoint" before
  /// every checkpoint save. Production callers leave it null.
  FaultInjector* faults = nullptr;
  double dt_seconds = 1.0 / 24.0;
  std::string unit = "bytes/frame";
};

struct CampaignResult {
  engine::EngineStats stats;
  /// FNV-1a over the bit patterns of every sample in the finished trace —
  /// the determinism witness the soak harness compares across kill/resume.
  std::uint64_t trace_hash = 0;
  bool resumed = false;
  std::uint64_t resumed_at_source = 0;
};

/// Run (or resume) a campaign. `tap` may be null; when resuming, the tap
/// must be configured exactly as in the original run — its state is restored
/// from the checkpoint before any new samples arrive. Quarantined sources
/// occupy their trace slots as all-zero frames (the header's declared count
/// is honored) but contribute nothing to the tap.
///
/// Throws vbr::IoError on trace/checkpoint I/O failures and on any
/// plan/checkpoint mismatch; rethrows engine failures per the FailurePolicy.
CampaignResult run_campaign(const CampaignOptions& options,
                            stream::Sink* tap = nullptr);

}  // namespace vbr::run
