#include "vbr/run/checkpoint.hpp"

#include <cstring>
#include <fstream>
#include <sstream>

#include "vbr/common/atomic_file.hpp"
#include "vbr/common/checksum.hpp"
#include "vbr/common/error.hpp"
#include "vbr/common/serialize.hpp"
#include "vbr/run/envelope.hpp"

namespace vbr::run {

namespace {

/// Bounds for untrusted payload fields, chosen far above any real campaign
/// but low enough that a forged count cannot drive a pathological allocation.
constexpr std::uint64_t kMaxFailureError = 4096;
constexpr std::uint64_t kMaxSinkState = std::uint64_t{1} << 26;

/// Envelope identity. The payload bound is generous for any real campaign
/// (2M+ remaining sources plus a sink blob) yet small enough that a forged
/// size field cannot drive a multi-GB allocation under the fuzzer's RSS
/// limit.
EnvelopeSpec checkpoint_envelope() {
  return {kCheckpointMagic, kCheckpointVersion, std::uint64_t{1} << 27,
          "checkpoint"};
}

}  // namespace

std::uint64_t plan_fingerprint(const engine::GenerationPlan& plan, double dt_seconds,
                               const std::string& unit) {
  Fnv1a h;
  const auto put_u64 = [&](std::uint64_t v) { h.update(&v, sizeof v); };
  const auto put_f64 = [&](double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    put_u64(bits);
  };
  put_u64(plan.num_sources);
  put_u64(plan.frames_per_source);
  put_u64(plan.seed);
  put_f64(plan.params.marginal.mu_gamma);
  put_f64(plan.params.marginal.sigma_gamma);
  put_f64(plan.params.marginal.tail_slope);
  put_f64(plan.params.hurst);
  put_u64(static_cast<std::uint64_t>(plan.variant));
  // Resolved, not raw: a plan selecting "paxson" by registry name must
  // fingerprint identically to one selecting GeneratorBackend::kPaxson, or
  // a resume through the other surface would be rejected.
  put_u64(static_cast<std::uint64_t>(plan.resolved_backend()));
  put_f64(dt_seconds);
  h.update(unit.data(), unit.size());
  return h.digest();
}

std::string encode_checkpoint(const CheckpointData& data) {
  std::ostringstream payload(std::ios::binary);
  io::write_u64(payload, data.plan_fingerprint);
  io::write_u64(payload, data.num_sources);
  io::write_u64(payload, data.frames_per_source);
  io::write_u64(payload, data.seed);
  io::write_u64(payload, data.next_source);
  io::write_u64(payload, data.samples_written);
  io::write_u64(payload, data.trace_hash_state);
  io::write_f64(payload, data.bytes);
  io::write_u64(payload, data.transient_retries);
  io::write_u32(payload, static_cast<std::uint32_t>(data.failures.size()));
  for (const auto& f : data.failures) {
    io::write_u64(payload, f.source_index);
    io::write_u64(payload, f.attempts);
    io::write_string(payload, f.error);
  }
  io::write_u64(payload, data.stream_states.size());
  for (const auto& s : data.stream_states) {
    for (const std::uint64_t w : s) io::write_u64(payload, w);
  }
  io::write_u8(payload, data.has_sink ? 1 : 0);
  if (data.has_sink) {
    io::write_u64(payload, data.sink_state.size());
    if (!data.sink_state.empty()) {
      io::write_bytes(payload, data.sink_state.data(), data.sink_state.size());
    }
  }

  return seal_envelope(checkpoint_envelope(), payload.str());
}

CheckpointData parse_checkpoint(std::istream& in, const std::string& name) {
  const char* what = name.c_str();
  const std::string body = open_envelope(in, checkpoint_envelope(), name);

  std::istringstream payload(body, std::ios::binary);
  CheckpointData data;
  data.plan_fingerprint = io::read_u64(payload, what);
  data.num_sources = io::read_u64(payload, what);
  data.frames_per_source = io::read_u64(payload, what);
  data.seed = io::read_u64(payload, what);
  data.next_source = io::read_u64(payload, what);
  data.samples_written = io::read_u64(payload, what);
  data.trace_hash_state = io::read_u64(payload, what);
  data.bytes = io::read_f64(payload, what);
  data.transient_retries = io::read_u64(payload, what);

  if (data.num_sources == 0 || data.frames_per_source == 0) {
    throw IoError(name + ": checkpoint describes an empty plan");
  }
  if (data.num_sources > io::kMaxSerializedElements ||
      data.frames_per_source > (std::uint64_t{1} << 48) / data.num_sources) {
    throw IoError(name + ": implausible checkpoint plan size");
  }
  if (data.next_source > data.num_sources) {
    throw IoError(name + ": checkpoint next_source exceeds num_sources");
  }
  if (data.samples_written != data.next_source * data.frames_per_source) {
    throw IoError(name + ": checkpoint sample count disagrees with source count");
  }

  const std::uint32_t failure_count = io::read_u32(payload, what);
  if (failure_count > data.num_sources) {
    throw IoError(name + ": checkpoint claims more failures than sources");
  }
  data.failures.reserve(failure_count);
  for (std::uint32_t i = 0; i < failure_count; ++i) {
    engine::SourceFailure f;
    f.source_index = io::read_u64(payload, what);
    f.attempts = io::read_u64(payload, what);
    f.error = io::read_string(payload, kMaxFailureError, what);
    if (f.source_index >= data.num_sources) {
      throw IoError(name + ": checkpoint failure index out of range");
    }
    data.failures.push_back(std::move(f));
  }

  const std::size_t stream_count =
      io::read_count(payload, data.num_sources, what);
  // Validate before allocating: a forged count must never drive the resize.
  if (stream_count != data.num_sources - data.next_source) {
    throw IoError(name + ": checkpoint stream-state count disagrees with progress");
  }
  const auto pos = static_cast<std::uint64_t>(payload.tellg());
  if (stream_count > (body.size() - pos) / (4 * sizeof(std::uint64_t))) {
    throw IoError(name + ": checkpoint stream states exceed the payload");
  }
  data.stream_states.resize(stream_count);
  for (auto& s : data.stream_states) {
    for (auto& w : s) w = io::read_u64(payload, what);
  }

  data.has_sink = io::read_u8(payload, what) != 0;
  if (data.has_sink) {
    const std::size_t sink_size = io::read_count(payload, kMaxSinkState, what);
    if (sink_size > body.size() - static_cast<std::uint64_t>(payload.tellg())) {
      throw IoError(name + ": checkpoint sink state exceeds the payload");
    }
    data.sink_state.resize(sink_size);
    if (sink_size > 0) io::read_bytes(payload, data.sink_state.data(), sink_size, what);
  }

  // The payload must be exactly consumed: trailing bytes mean the size field
  // and the content disagree, i.e. a forged or corrupt file.
  if (payload.peek() != std::char_traits<char>::eof()) {
    throw IoError(name + ": checkpoint payload has trailing bytes");
  }
  return data;
}

CheckpointData load_checkpoint(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open checkpoint: " + path.string());
  return parse_checkpoint(in, path.string());
}

void save_checkpoint(const std::filesystem::path& path, const CheckpointData& data,
                     bool durable) {
  write_file_atomic(path, encode_checkpoint(data), durable);
}

}  // namespace vbr::run
