// The CRC-guarded artifact envelope shared by every resumable on-disk format.
//
// The campaign checkpoint (VBRCKPT1) and the sweep manifest (VBRSWEP1) wrap
// their payloads identically:
//
//   8 bytes  magic
//   u32      version
//   u64      payload size in bytes
//   u32      CRC-32 (zlib polynomial) of the payload
//   payload
//
// open_envelope() verifies magic, version, a payload-size sanity bound and
// the CRC before returning a single payload byte, so a torn or bit-rotted
// artifact is rejected as a whole — a load never observes partial state.
// Writers pair seal_envelope() with vbr::write_file_atomic so a crash during
// a save leaves the previous complete artifact in place.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

namespace vbr::run {

/// Identity of one envelope-framed format: its magic, the version the
/// current code writes, a hard payload-size bound (so a forged size field
/// can never drive a pathological allocation), and a human label for errors
/// ("checkpoint", "sweep manifest").
struct EnvelopeSpec {
  std::array<char, 8> magic{};
  std::uint32_t version = 1;
  std::uint64_t max_payload = 0;
  const char* kind = "artifact";
};

/// Wrap `payload` in the full envelope (magic + version + size + CRC).
std::string seal_envelope(const EnvelopeSpec& spec, std::string_view payload);

/// Read and verify an envelope, returning the payload bytes. Throws
/// vbr::IoError on bad magic, unsupported version, implausible size,
/// truncation, or CRC mismatch; `name` labels errors (usually the path).
std::string open_envelope(std::istream& in, const EnvelopeSpec& spec,
                          const std::string& name);

}  // namespace vbr::run
