// The CRC-guarded artifact envelope shared by every resumable on-disk format.
//
// The campaign checkpoint (VBRCKPT1) and the sweep manifest (VBRSWEP1) wrap
// their payloads identically:
//
//   8 bytes  magic
//   u32      version
//   u64      payload size in bytes
//   u32      CRC-32 (zlib polynomial) of the payload
//   payload
//
// open_envelope() verifies magic, version, a payload-size sanity bound and
// the CRC before returning a single payload byte, so a torn or bit-rotted
// artifact is rejected as a whole — a load never observes partial state.
// Writers pair seal_envelope() with vbr::write_file_atomic so a crash during
// a save leaves the previous complete artifact in place.
//
// Append-only formats (the sweep result log, VBRSWPL1) use the same sealed
// envelope as a *header* via open_envelope_prefix(), then append CRC-framed
// records (seal_record / read_record) behind it. A record whose frame fails
// its CRC marks the torn tail left by an interrupted append — recoverable
// state, not corruption — and recovery truncates back to the last whole
// record instead of rejecting the file.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

namespace vbr::run {

/// Identity of one envelope-framed format: its magic, the version the
/// current code writes, a hard payload-size bound (so a forged size field
/// can never drive a pathological allocation), and a human label for errors
/// ("checkpoint", "sweep manifest").
struct EnvelopeSpec {
  std::array<char, 8> magic{};
  std::uint32_t version = 1;
  std::uint64_t max_payload = 0;
  const char* kind = "artifact";
};

/// Wrap `payload` in the full envelope (magic + version + size + CRC).
std::string seal_envelope(const EnvelopeSpec& spec, std::string_view payload);

/// Read and verify an envelope, returning the payload bytes. Throws
/// vbr::IoError on bad magic, unsupported version, implausible size,
/// truncation, or CRC mismatch; `name` labels errors (usually the path).
std::string open_envelope(std::istream& in, const EnvelopeSpec& spec,
                          const std::string& name);

/// Like open_envelope, but for formats that append framed records *after*
/// the sealed header (the VBRSWPL1 result log): verifies magic, version,
/// size bound and CRC identically, but allows — and leaves the stream
/// positioned at — bytes following the payload instead of requiring EOF.
std::string open_envelope_prefix(std::istream& in, const EnvelopeSpec& spec,
                                 const std::string& name);

/// Frame one record for an append-only log: u64 payload size + u32 CRC-32 +
/// payload. Records carry no magic of their own — the log's sealed header
/// establishes identity; the per-record CRC exists to find the torn tail.
std::string seal_record(std::string_view payload);

/// The framing overhead of seal_record (size + CRC fields).
inline constexpr std::uint64_t kRecordFrameBytes = 12;

/// What read_record found at the current stream position.
enum class RecordRead {
  kRecord,       ///< a complete, CRC-verified record; `payload` is valid
  kEndOfStream,  ///< the stream ended exactly on a record boundary
  kTornTail,     ///< truncated frame header/payload, an implausible size
                 ///< field, or a CRC mismatch — the write was interrupted
};

/// Read one framed record. Never throws: a torn tail is an *expected*
/// outcome of crash recovery, not corruption of sealed state. The stream
/// may be left in a failed/indeterminate position after kTornTail; callers
/// track their own byte offsets (see sweep/result_log).
RecordRead read_record(std::istream& in, std::uint64_t max_payload,
                       std::string& payload);

}  // namespace vbr::run
