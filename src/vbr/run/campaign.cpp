#include "vbr/run/campaign.hpp"

#include <chrono>
#include <filesystem>
#include <optional>
#include <span>
#include <sstream>
#include <vector>

#include "vbr/common/checksum.hpp"
#include "vbr/common/error.hpp"
#include "vbr/common/math_util.hpp"
#include "vbr/common/rng.hpp"
#include "vbr/engine/thread_pool.hpp"
#include "vbr/run/checkpoint.hpp"
#include "vbr/run/fault_injection.hpp"
#include "vbr/stream/sink.hpp"
#include "vbr/trace/trace_stream.hpp"

namespace vbr::run {

CampaignResult run_campaign(const CampaignOptions& options, stream::Sink* tap) {
  const engine::GenerationPlan& plan = options.plan;
  VBR_ENSURE(plan.num_sources >= 1, "campaign needs at least one source");
  VBR_ENSURE(plan.frames_per_source >= 1, "campaign needs at least one frame per source");
  VBR_ENSURE(!options.trace_path.empty(), "campaign needs a trace path");

  const model::VbrVideoSourceModel model(plan.params);
  const std::uint64_t fingerprint =
      plan_fingerprint(plan, options.dt_seconds, options.unit);
  const std::uint64_t total_samples =
      static_cast<std::uint64_t>(plan.num_sources) * plan.frames_per_source;

  // Every source stream is derived up front in source order, exactly as the
  // in-memory engine does; a checkpoint replaces the tail of this vector
  // with the states recorded at the kill point (which are identical — the
  // split sequence depends only on the seed — but recording them keeps old
  // checkpoints valid even if the derivation ever changes).
  Rng master(plan.seed);
  std::vector<Rng> streams;
  streams.reserve(plan.num_sources);
  for (std::size_t i = 0; i < plan.num_sources; ++i) streams.push_back(master.split());

  CampaignResult result;
  std::size_t next_source = 0;
  Fnv1a hash;
  double bytes = 0.0;
  std::uint64_t transient_retries = 0;
  std::vector<engine::SourceFailure> failures;

  const bool checkpointing = !options.checkpoint_path.empty();
  trace::TraceWriterOptions writer_options;
  writer_options.durable = options.durable;
  std::optional<trace::ChunkedTraceWriter> writer;

  if (options.resume && checkpointing &&
      std::filesystem::exists(options.checkpoint_path)) {
    CheckpointData ckpt = load_checkpoint(options.checkpoint_path);
    if (ckpt.plan_fingerprint != fingerprint || ckpt.num_sources != plan.num_sources ||
        ckpt.frames_per_source != plan.frames_per_source || ckpt.seed != plan.seed) {
      throw IoError(options.checkpoint_path.string() +
                    ": checkpoint belongs to a different campaign plan");
    }
    next_source = static_cast<std::size_t>(ckpt.next_source);
    hash = Fnv1a(ckpt.trace_hash_state);
    bytes = ckpt.bytes;
    transient_retries = ckpt.transient_retries;
    failures = std::move(ckpt.failures);
    for (std::size_t i = 0; i < ckpt.stream_states.size(); ++i) {
      streams[next_source + i] = Rng::from_state(ckpt.stream_states[i]);
    }
    if (tap != nullptr) {
      if (!ckpt.has_sink) {
        throw IoError(options.checkpoint_path.string() +
                      ": checkpoint carries no sink state but a tap was provided");
      }
      std::istringstream sink_in(ckpt.sink_state, std::ios::binary);
      tap->restore(sink_in);
    }
    writer.emplace(trace::ChunkedTraceWriter::resume(
        options.trace_path, total_samples, ckpt.samples_written, writer_options));
    result.resumed = true;
    result.resumed_at_source = ckpt.next_source;
  } else {
    writer.emplace(options.trace_path, total_samples, options.dt_seconds,
                   options.unit, writer_options);
  }

  // Persist progress: trace first (flushed, so the kernel owns the bytes),
  // checkpoint second. A kill between the two leaves a trace ahead of its
  // checkpoint, which resume truncates; the reverse — a checkpoint claiming
  // samples the trace lost — cannot happen.
  const auto save_progress = [&] {
    if (!checkpointing) return;
    writer->flush();
    if (options.faults != nullptr) options.faults->maybe_throw("checkpoint");
    CheckpointData data;
    data.plan_fingerprint = fingerprint;
    data.num_sources = plan.num_sources;
    data.frames_per_source = plan.frames_per_source;
    data.seed = plan.seed;
    data.next_source = next_source;
    data.samples_written =
        static_cast<std::uint64_t>(next_source) * plan.frames_per_source;
    data.trace_hash_state = hash.digest();
    data.bytes = bytes;
    data.transient_retries = transient_retries;
    data.failures = failures;
    data.stream_states.reserve(plan.num_sources - next_source);
    for (std::size_t i = next_source; i < plan.num_sources; ++i) {
      data.stream_states.push_back(streams[i].state());
    }
    if (tap != nullptr) {
      std::ostringstream sink_out(std::ios::binary);
      tap->save(sink_out);
      data.has_sink = true;
      data.sink_state = sink_out.str();
    }
    save_checkpoint(options.checkpoint_path, data, options.durable);
  };

  const std::size_t threads = engine::resolve_thread_count(plan.threads);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<double> zeros;  // quarantine padding, allocated on first use
  while (next_source < plan.num_sources) {
    const std::size_t remaining = plan.num_sources - next_source;
    const std::size_t batch_size =
        options.checkpoint_every_sources == 0
            ? remaining
            : std::min(options.checkpoint_every_sources, remaining);
    engine::SourceBatch batch = engine::generate_source_batch(
        model, std::span<const Rng>(streams).subspan(next_source, batch_size),
        next_source, plan.frames_per_source, plan.variant, plan.resolved_backend(),
        threads,
        tap, options.failure);

    // Serial, in source order: append to the trace, fold into the hash,
    // merge into the tap. A quarantined source keeps its trace slot as
    // zeros (the binary header's declared count is a promise) but adds
    // nothing to the statistics.
    for (std::size_t k = 0; k < batch_size; ++k) {
      const std::vector<double>* samples = &batch.traces[k];
      if (samples->empty()) {
        if (zeros.empty()) zeros.assign(plan.frames_per_source, 0.0);
        samples = &zeros;
      } else if (tap != nullptr && batch.sinks[k] != nullptr) {
        tap->merge(*batch.sinks[k]);
      }
      writer->append(*samples);
      hash.update(std::span<const double>(*samples));
      bytes += kahan_total(*samples);
    }
    for (auto& f : batch.failures) failures.push_back(std::move(f));
    transient_retries += batch.transient_retries;
    next_source += batch_size;
    save_progress();
  }
  writer->finish();
  const auto t1 = std::chrono::steady_clock::now();

  result.stats.sources = plan.num_sources;
  result.stats.frames =
      (plan.num_sources - failures.size()) * plan.frames_per_source;
  result.stats.bytes = bytes;
  result.stats.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  result.stats.threads_used = threads;
  result.stats.failures = std::move(failures);
  result.stats.transient_retries = transient_retries;
  result.trace_hash = hash.digest();
  return result;
}

}  // namespace vbr::run
