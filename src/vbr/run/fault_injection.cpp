#include "vbr/run/fault_injection.hpp"

#include <stdexcept>

#include "vbr/common/error.hpp"

namespace vbr::run {

std::optional<FaultKind> FaultInjector::poll(const std::string& site) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t op = ops_[site]++;
  for (const ScheduledFault& f : plan_.faults) {
    if (f.site != site) continue;
    if (op >= f.at_op && op < f.at_op + f.times) {
      ++fired_[site];
      return f.kind;
    }
  }
  return std::nullopt;
}

void FaultInjector::maybe_throw(const std::string& site) {
  const auto fault = poll(site);
  if (!fault) return;
  switch (*fault) {
    case FaultKind::kPermanent:
      throw std::runtime_error("injected permanent fault at site '" + site + "'");
    case FaultKind::kTransient:
    case FaultKind::kShortWrite:
    case FaultKind::kNoSpace:
    case FaultKind::kTornWrite:
      throw TransientError("injected transient fault at site '" + site + "'");
  }
}

std::uint64_t FaultInjector::fired(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = fired_.find(site);
  return it == fired_.end() ? 0 : it->second;
}

std::streamsize FaultyStreambuf::xsputn(const char* s, std::streamsize n) {
  const auto fault = injector_->poll(site_);
  if (!fault) return inner_->sputn(s, n);
  switch (*fault) {
    case FaultKind::kNoSpace:
      return 0;  // ENOSPC on the first byte; ostream::write sets badbit
    case FaultKind::kShortWrite:
      return inner_->sputn(s, n / 2);  // honest shortfall, badbit follows
    case FaultKind::kTornWrite:
      inner_->sputn(s, n / 2);
      return n;  // lies about success; only position/CRC checks can catch it
    case FaultKind::kTransient:
      throw TransientError("injected transient stream fault at site '" + site_ + "'");
    case FaultKind::kPermanent:
      throw std::runtime_error("injected permanent stream fault at site '" + site_ +
                               "'");
  }
  return 0;
}

FaultyStreambuf::int_type FaultyStreambuf::overflow(int_type ch) {
  if (traits_type::eq_int_type(ch, traits_type::eof())) return inner_->pubsync() == 0
                                                                   ? traits_type::not_eof(ch)
                                                                   : traits_type::eof();
  const char c = traits_type::to_char_type(ch);
  return xsputn(&c, 1) == 1 ? ch : traits_type::eof();
}

void FaultySink::push(std::span<const double> samples) {
  injector_->maybe_throw(site_);
  inner_->push(samples);
}

void FaultySink::merge(const Sink& other) {
  const auto& peer = stream::detail::merge_peer<FaultySink>(other, kind());
  inner_->merge(*peer.inner_);
}

std::unique_ptr<stream::Sink> FaultySink::clone_empty() const {
  return std::make_unique<FaultySink>(inner_->clone_empty(), injector_, site_);
}

}  // namespace vbr::run
