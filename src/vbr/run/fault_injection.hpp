// Deterministic fault injection for the crash-safety test matrix.
//
// A FaultPlan is an explicit schedule — "the 3rd write at site 'trace'
// reports ENOSPC", "the first two pushes at site 'tap' throw a transient
// error" — so every test failure replays exactly. The injector is consulted
// from instrumented seams only: FaultyStreambuf sits under a trace or
// checkpoint stream, FaultySink wraps a streaming-statistics tap, and the
// campaign runner polls the "checkpoint" site before persisting. Production
// code paths never link faults in; a null injector costs one branch.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <streambuf>
#include <string>
#include <vector>

#include "vbr/stream/sink.hpp"

namespace vbr::run {

/// What happens when a scheduled fault fires.
enum class FaultKind : std::uint8_t {
  /// The stream absorbs only part of the block and reports the shortfall
  /// (the honest full-disk behaviour: write() returns short, badbit).
  kShortWrite,
  /// The stream absorbs nothing at all (ENOSPC on the first byte).
  kNoSpace,
  /// The stream silently drops the tail of the block but *reports success* —
  /// the torn final block a power cut leaves. Only finish()'s position check
  /// or the checkpoint CRC can catch this one.
  kTornWrite,
  /// Throw vbr::TransientError (a fault the FailurePolicy may retry).
  kTransient,
  /// Throw std::runtime_error (a permanent worker/task failure).
  kPermanent,
};

/// One scheduled fault: fire at operation `at_op` (0-based, counted per
/// site) and keep firing for `times` consecutive operations.
struct ScheduledFault {
  std::string site;
  std::uint64_t at_op = 0;
  FaultKind kind = FaultKind::kTransient;
  std::uint64_t times = 1;
};

struct FaultPlan {
  std::vector<ScheduledFault> faults;
};

/// Thread-safe dispenser for a FaultPlan. Each named site has its own
/// operation counter; operations are counted in call order, which the
/// instrumented seams keep deterministic (trace writes and checkpoint saves
/// happen on one thread; per-source sink pushes are retried from scratch, so
/// a transient fault consumed by attempt 1 is not double-counted).
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  /// Advance `site`'s operation counter and return the fault scheduled for
  /// this operation, if any.
  std::optional<FaultKind> poll(const std::string& site);

  /// poll(), then translate a throwing fault kind into its exception.
  /// Stream-shaped kinds (short write etc.) are meaningless at a non-stream
  /// site and also surface as TransientError.
  void maybe_throw(const std::string& site);

  /// How many faults have fired at `site` so far.
  std::uint64_t fired(const std::string& site) const;

 private:
  mutable std::mutex mutex_;
  FaultPlan plan_;
  std::map<std::string, std::uint64_t> ops_;
  std::map<std::string, std::uint64_t> fired_;
};

/// A filtering streambuf that forwards to `inner` except when the injector
/// schedules a fault for its site. Wrap an ostream's rdbuf to simulate disk
/// faults under ChunkedTraceWriter or a checkpoint stream.
class FaultyStreambuf final : public std::streambuf {
 public:
  FaultyStreambuf(std::streambuf* inner, FaultInjector* injector, std::string site)
      : inner_(inner), injector_(injector), site_(std::move(site)) {}

 protected:
  std::streamsize xsputn(const char* s, std::streamsize n) override;
  int_type overflow(int_type ch) override;
  int sync() override { return inner_->pubsync(); }
  /// Forward seeks/tells so ChunkedTraceWriter::finish()'s position check
  /// sees the inner stream's true put position.
  pos_type seekoff(off_type off, std::ios_base::seekdir dir,
                   std::ios_base::openmode which) override {
    return inner_->pubseekoff(off, dir, which);
  }
  pos_type seekpos(pos_type pos, std::ios_base::openmode which) override {
    return inner_->pubseekpos(pos, which);
  }

 private:
  std::streambuf* inner_;
  FaultInjector* injector_;
  std::string site_;
};

/// A Sink decorator whose push() consults the injector before forwarding —
/// the seam for transient/permanent faults inside engine worker tasks (the
/// engine pushes each source's samples through a clone of the tap on
/// whichever worker generated it). Clones share the injector, so a plan like
/// "op 5 at site 'tap' is transient" fires on the 6th push across the whole
/// run regardless of which source performs it.
class FaultySink final : public stream::Sink {
 public:
  FaultySink(std::unique_ptr<Sink> inner, FaultInjector* injector, std::string site)
      : inner_(std::move(inner)), injector_(injector), site_(std::move(site)) {}

  void push(std::span<const double> samples) override;
  void merge(const Sink& other) override;
  std::unique_ptr<Sink> clone_empty() const override;
  void save(std::ostream& out) const override { inner_->save(out); }
  void restore(std::istream& in) override { inner_->restore(in); }
  std::size_t count() const override { return inner_->count(); }
  const char* kind() const override { return inner_->kind(); }

  const Sink& inner() const { return *inner_; }

 private:
  std::unique_ptr<Sink> inner_;
  FaultInjector* injector_;
  std::string site_;
};

}  // namespace vbr::run
