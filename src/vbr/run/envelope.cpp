#include "vbr/run/envelope.hpp"

#include <cstring>
#include <istream>
#include <sstream>

#include "vbr/common/checksum.hpp"
#include "vbr/common/error.hpp"
#include "vbr/common/serialize.hpp"

namespace vbr::run {

std::string seal_envelope(const EnvelopeSpec& spec, std::string_view payload) {
  std::ostringstream out(std::ios::binary);
  io::write_bytes(out, spec.magic.data(), spec.magic.size());
  io::write_u32(out, spec.version);
  io::write_u64(out, payload.size());
  io::write_u32(out, crc32(payload.data(), payload.size()));
  if (!payload.empty()) io::write_bytes(out, payload.data(), payload.size());
  return out.str();
}

namespace {

std::string open_envelope_impl(std::istream& in, const EnvelopeSpec& spec,
                               const std::string& name, bool require_eof) {
  const char* what = name.c_str();
  const std::string kind = spec.kind;

  std::array<char, 8> magic{};
  io::read_bytes(in, magic.data(), magic.size(), what);
  if (std::memcmp(magic.data(), spec.magic.data(), magic.size()) != 0) {
    throw IoError(name + ": not a " + kind + " (bad magic)");
  }
  const std::uint32_t version = io::read_u32(in, what);
  if (version != spec.version) {
    throw IoError(name + ": unsupported " + kind + " version " +
                  std::to_string(version));
  }
  const std::uint64_t payload_size = io::read_u64(in, what);
  if (payload_size > spec.max_payload) {
    throw IoError(name + ": implausible " + kind + " payload size " +
                  std::to_string(payload_size));
  }
  const std::uint32_t expected_crc = io::read_u32(in, what);
  std::string payload(static_cast<std::size_t>(payload_size), '\0');
  if (!payload.empty()) io::read_bytes(in, payload.data(), payload.size(), what);
  // Integrity before interpretation: no payload field is parsed until the
  // whole payload checks out, so a torn write can never yield partial state.
  if (crc32(payload.data(), payload.size()) != expected_crc) {
    throw IoError(name + ": " + kind + " CRC mismatch (file corrupt or torn)");
  }
  // For whole-file envelopes, bytes after the sealed payload mean the size
  // field and the file disagree (forged header or dirty append). Prefix
  // opens skip this: framed records legitimately follow.
  if (require_eof && in.peek() != std::char_traits<char>::eof()) {
    throw IoError(name + ": trailing bytes after " + kind + " payload");
  }
  return payload;
}

}  // namespace

std::string open_envelope(std::istream& in, const EnvelopeSpec& spec,
                          const std::string& name) {
  return open_envelope_impl(in, spec, name, /*require_eof=*/true);
}

std::string open_envelope_prefix(std::istream& in, const EnvelopeSpec& spec,
                                 const std::string& name) {
  return open_envelope_impl(in, spec, name, /*require_eof=*/false);
}

std::string seal_record(std::string_view payload) {
  std::ostringstream out(std::ios::binary);
  io::write_u64(out, payload.size());
  io::write_u32(out, crc32(payload.data(), payload.size()));
  if (!payload.empty()) io::write_bytes(out, payload.data(), payload.size());
  return out.str();
}

RecordRead read_record(std::istream& in, std::uint64_t max_payload,
                       std::string& payload) {
  payload.clear();
  char header[kRecordFrameBytes];
  in.read(header, sizeof header);
  const std::streamsize got = in.gcount();
  if (got == 0) return RecordRead::kEndOfStream;
  if (got < static_cast<std::streamsize>(sizeof header)) {
    return RecordRead::kTornTail;
  }
  std::uint64_t size = 0;
  std::uint32_t expected_crc = 0;
  std::memcpy(&size, header, sizeof size);
  std::memcpy(&expected_crc, header + sizeof size, sizeof expected_crc);
  // An implausible size field is indistinguishable from a frame header torn
  // mid-write; both truncate the tail rather than reject the whole log.
  if (size > max_payload) return RecordRead::kTornTail;
  payload.resize(static_cast<std::size_t>(size));
  if (!payload.empty()) {
    in.read(payload.data(), static_cast<std::streamsize>(payload.size()));
    if (in.gcount() != static_cast<std::streamsize>(payload.size())) {
      payload.clear();
      return RecordRead::kTornTail;
    }
  }
  if (crc32(payload.data(), payload.size()) != expected_crc) {
    payload.clear();
    return RecordRead::kTornTail;
  }
  return RecordRead::kRecord;
}

}  // namespace vbr::run
