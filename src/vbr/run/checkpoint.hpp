// The campaign checkpoint format (DESIGN.md §8).
//
// A checkpoint captures everything run_campaign() needs to continue a killed
// run bit-identically: how many sources are already durably in the trace
// file, the running FNV-1a hash over those samples, the xoshiro256** state
// of every not-yet-generated source stream, the failure ledger, and (when a
// statistics tap is attached) the serialized sink state. The envelope is
//
//   8 bytes  magic  "VBRCKPT1"
//   u32      version (currently 1)
//   u64      payload size in bytes
//   u32      CRC-32 (zlib polynomial) of the payload
//   payload  (fields serialized via vbr::io, see checkpoint.cpp)
//
// The CRC is verified before a single payload field is parsed, so a torn or
// bit-rotted checkpoint is rejected as a whole — a load never yields partial
// state. Files are written through write_file_atomic() (temp + rename), so
// the previous checkpoint survives any crash during a save. Like every
// vbr::io format this is single-machine: resume happens on the host that
// crashed, no cross-endianness translation is attempted.
#pragma once

#include <array>
#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <string>
#include <vector>

#include "vbr/engine/engine.hpp"

namespace vbr::run {

inline constexpr std::array<char, 8> kCheckpointMagic = {'V', 'B', 'R', 'C',
                                                         'K', 'P', 'T', '1'};
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// Parsed checkpoint contents. Field invariants (enforced on load):
/// next_source <= num_sources, samples_written == next_source *
/// frames_per_source, stream_states.size() == num_sources - next_source.
struct CheckpointData {
  /// FNV-1a over the generation plan's semantic fields; a resume with a
  /// different plan is rejected instead of silently blending two runs.
  std::uint64_t plan_fingerprint = 0;
  std::uint64_t num_sources = 0;
  std::uint64_t frames_per_source = 0;
  std::uint64_t seed = 0;
  /// First source index not yet appended to the trace file.
  std::uint64_t next_source = 0;
  /// Samples durably in the trace file (the writer is truncated back to
  /// exactly this many on resume, discarding any torn tail).
  std::uint64_t samples_written = 0;
  /// Running FNV-1a state over the first `samples_written` samples.
  std::uint64_t trace_hash_state = 0;
  /// Total generated volume so far (for EngineStats continuity).
  double bytes = 0.0;
  std::uint64_t transient_retries = 0;
  /// Quarantined sources so far, in source order.
  std::vector<engine::SourceFailure> failures;
  /// xoshiro256** state words for sources [next_source, num_sources), in
  /// source order.
  std::vector<std::array<std::uint64_t, 4>> stream_states;
  /// Serialized tap sink state (Sink::save bytes); meaningful only when
  /// has_sink is true.
  bool has_sink = false;
  std::string sink_state;
};

/// Fingerprint of the plan fields that determine campaign output (threads is
/// deliberately excluded — resuming with a different worker count is legal
/// and bit-identical). dt/unit ride along because they live in the trace
/// header the resume validates.
std::uint64_t plan_fingerprint(const engine::GenerationPlan& plan, double dt_seconds,
                               const std::string& unit);

/// Serialize to the full envelope (magic + version + size + CRC + payload).
std::string encode_checkpoint(const CheckpointData& data);

/// Parse an envelope from a stream. Throws vbr::IoError on a bad magic,
/// unsupported version, CRC mismatch, truncation, forged counts, or any
/// violated field invariant; `name` labels errors. Never returns partial
/// state. This is the surface fuzz_checkpoint drives.
CheckpointData parse_checkpoint(std::istream& in, const std::string& name);

/// Load and validate a checkpoint file.
CheckpointData load_checkpoint(const std::filesystem::path& path);

/// Atomically persist a checkpoint (temp + rename; fsync when durable).
void save_checkpoint(const std::filesystem::path& path, const CheckpointData& data,
                     bool durable = false);

}  // namespace vbr::run
