// Chunked (streaming) trace I/O: read and write traces of unbounded length
// in bounded memory.
//
// read_ascii()/read_binary() materialize the whole series; at 2^24+ frames
// that alone exceeds the streaming subsystem's memory budget. The
// ChunkedTraceReader yields the same validated sample stream block by block
// (it sniffs the format from the leading bytes, so it opens anything the
// batch readers can), and the ChunkedTraceWriter produces read_binary()-
// compatible files incrementally. Both treat their input as untrusted, with
// the same IoError contract as trace_io: truncated data, forged sample
// counts, corrupt headers and negative/non-finite samples all throw.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>

namespace vbr::trace {

/// Header metadata available before any samples are read.
struct TraceStreamInfo {
  double dt_seconds = 0.0;
  std::string unit;
  bool binary = false;
  /// Sample count declared by a binary header (untrusted until the stream
  /// backs it); 0 for ASCII traces, whose length is discovered at EOF.
  std::uint64_t declared_samples = 0;
};

/// One-pass reader over an ASCII or binary trace. Memory use is O(block
/// size) regardless of trace length.
class ChunkedTraceReader {
 public:
  /// Open a trace file; the format is sniffed from the magic bytes.
  explicit ChunkedTraceReader(const std::filesystem::path& path);

  /// Parse from an open seekable stream (tests/fuzzers); `name` labels
  /// errors. The stream must outlive the reader.
  ChunkedTraceReader(std::istream& in, std::string name);

  const TraceStreamInfo& info() const { return info_; }

  /// Fill `out` with the next samples; returns how many were written. A
  /// return of 0 means clean end of trace. Throws vbr::IoError on malformed
  /// records, truncation, or a binary count the stream cannot back.
  std::size_t read(std::span<double> out);

  /// Samples returned so far.
  std::uint64_t samples_read() const { return samples_read_; }

 private:
  void init();
  std::size_t read_binary_chunk(std::span<double> out);
  std::size_t read_ascii_chunk(std::span<double> out);

  std::unique_ptr<std::ifstream> file_;  ///< owned when constructed from a path
  std::istream* in_ = nullptr;
  std::string name_;
  TraceStreamInfo info_;
  std::uint64_t remaining_ = 0;  ///< binary: samples still owed by the header
  std::uint64_t samples_read_ = 0;
  std::size_t line_no_ = 0;      ///< ASCII: current line, for error messages
  bool done_ = false;
};

/// Incremental writer for the binary trace format. The header carries the
/// total sample count, so the count must be declared up front; append() in
/// any block sizes, then finish() (which verifies the declared count was
/// delivered). The result is read_binary()/ChunkedTraceReader-compatible.
class ChunkedTraceWriter {
 public:
  ChunkedTraceWriter(const std::filesystem::path& path, std::uint64_t total_samples,
                     double dt_seconds, const std::string& unit = "bytes/frame");
  ~ChunkedTraceWriter();

  ChunkedTraceWriter(const ChunkedTraceWriter&) = delete;
  ChunkedTraceWriter& operator=(const ChunkedTraceWriter&) = delete;

  /// Append validated samples; throws vbr::IoError if the declared total
  /// would be exceeded or a sample is negative/non-finite.
  void append(std::span<const double> samples);

  /// Flush and close; throws vbr::IoError if fewer samples than declared
  /// were appended or the final flush fails. Idempotent.
  void finish();

  std::uint64_t written() const { return written_; }

 private:
  std::ofstream out_;
  std::string path_;
  std::uint64_t declared_ = 0;
  std::uint64_t written_ = 0;
  bool finished_ = false;
};

}  // namespace vbr::trace
