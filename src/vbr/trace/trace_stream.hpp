// Chunked (streaming) trace I/O: read and write traces of unbounded length
// in bounded memory.
//
// read_ascii()/read_binary() materialize the whole series; at 2^24+ frames
// that alone exceeds the streaming subsystem's memory budget. The
// ChunkedTraceReader yields the same validated sample stream block by block
// (it sniffs the format from the leading bytes, so it opens anything the
// batch readers can), and the ChunkedTraceWriter produces read_binary()-
// compatible files incrementally. Both treat their input as untrusted, with
// the same IoError contract as trace_io: truncated data, forged sample
// counts, corrupt headers and negative/non-finite samples all throw.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>

namespace vbr::trace {

/// Header metadata available before any samples are read.
struct TraceStreamInfo {
  double dt_seconds = 0.0;
  std::string unit;
  bool binary = false;
  /// Sample count declared by a binary header (untrusted until the stream
  /// backs it); 0 for ASCII traces, whose length is discovered at EOF.
  std::uint64_t declared_samples = 0;
  /// Size of the binary header in bytes (0 for ASCII). Sample k lives at
  /// byte offset header_bytes + 8k, which is what checkpoint resume uses to
  /// truncate a torn tail back to the last durable sample.
  std::uint64_t header_bytes = 0;
};

/// One-pass reader over an ASCII or binary trace. Memory use is O(block
/// size) regardless of trace length.
class ChunkedTraceReader {
 public:
  /// Open a trace file; the format is sniffed from the magic bytes.
  explicit ChunkedTraceReader(const std::filesystem::path& path);

  /// Parse from an open seekable stream (tests/fuzzers); `name` labels
  /// errors. The stream must outlive the reader.
  ChunkedTraceReader(std::istream& in, std::string name);

  const TraceStreamInfo& info() const { return info_; }

  /// Fill `out` with the next samples; returns how many were written. A
  /// return of 0 means clean end of trace. Throws vbr::IoError on malformed
  /// records, truncation, or a binary count the stream cannot back.
  std::size_t read(std::span<double> out);

  /// Samples returned so far.
  std::uint64_t samples_read() const { return samples_read_; }

 private:
  void init();
  std::size_t read_binary_chunk(std::span<double> out);
  std::size_t read_ascii_chunk(std::span<double> out);

  std::unique_ptr<std::ifstream> file_;  ///< owned when constructed from a path
  std::istream* in_ = nullptr;
  std::string name_;
  TraceStreamInfo info_;
  std::uint64_t remaining_ = 0;  ///< binary: samples still owed by the header
  std::uint64_t samples_read_ = 0;
  std::size_t line_no_ = 0;      ///< ASCII: current line, for error messages
  bool done_ = false;
};

/// Durability knobs for ChunkedTraceWriter.
struct TraceWriterOptions {
  /// When true, the writer fsyncs the file every `sync_every_samples`
  /// appended samples and again at finish(), so a crash loses at most one
  /// sync window instead of everything the OS still had buffered. Off by
  /// default: the paper-scale single-run tools don't need power-loss
  /// guarantees, and fsync costs real throughput.
  bool durable = false;
  std::uint64_t sync_every_samples = 65536;
};

/// Incremental writer for the binary trace format. The header carries the
/// total sample count, so the count must be declared up front; append() in
/// any block sizes, then finish() (which verifies the declared count was
/// delivered — including that the underlying stream really absorbed every
/// byte, so short writes from a full disk surface as IoError, not silent
/// truncation). The result is read_binary()/ChunkedTraceReader-compatible.
class ChunkedTraceWriter {
 public:
  ChunkedTraceWriter(const std::filesystem::path& path, std::uint64_t total_samples,
                     double dt_seconds, const std::string& unit = "bytes/frame",
                     const TraceWriterOptions& options = {});

  /// Write into a caller-owned stream (tests and fault injection); `name`
  /// labels errors and the stream must outlive the writer. Durability
  /// options are ignored — there is no file to fsync.
  ChunkedTraceWriter(std::ostream& out, std::string name, std::uint64_t total_samples,
                     double dt_seconds, const std::string& unit = "bytes/frame");

  /// Reopen a partially written trace and continue after sample
  /// `samples_written`. Validates the existing header (declared count,
  /// readable metadata) and truncates the file back to exactly
  /// header + 8 * samples_written bytes, discarding any torn tail a crash
  /// left behind. Throws vbr::IoError if the file is shorter than that, or
  /// the header disagrees with `total_samples`.
  static ChunkedTraceWriter resume(const std::filesystem::path& path,
                                   std::uint64_t total_samples,
                                   std::uint64_t samples_written,
                                   const TraceWriterOptions& options = {});

  ~ChunkedTraceWriter();

  ChunkedTraceWriter(ChunkedTraceWriter&&) = default;
  ChunkedTraceWriter(const ChunkedTraceWriter&) = delete;
  ChunkedTraceWriter& operator=(const ChunkedTraceWriter&) = delete;

  /// Append validated samples; throws vbr::IoError if the declared total
  /// would be exceeded or a sample is negative/non-finite.
  void append(std::span<const double> samples);

  /// Push everything buffered so far to the OS (and to the platter when
  /// durable). The campaign runner calls this before persisting a checkpoint
  /// so the checkpoint never claims samples a crash could still lose.
  void flush();

  /// Flush and close; throws vbr::IoError if fewer samples than declared
  /// were appended, the final flush fails, or the stream position shows the
  /// file is shorter than the declared payload (short write). Idempotent.
  void finish();

  std::uint64_t written() const { return written_; }
  std::uint64_t header_bytes() const { return header_bytes_; }

 private:
  struct ResumeTag {};
  ChunkedTraceWriter(ResumeTag, const std::filesystem::path& path,
                     std::uint64_t total_samples, std::uint64_t samples_written,
                     const TraceWriterOptions& options);
  void write_header(double dt_seconds, const std::string& unit);
  void sync_to_disk();
  void maybe_sync();

  std::unique_ptr<std::fstream> file_;  ///< owned when constructed from a path
  std::ostream* out_ = nullptr;
  std::string path_;
  TraceWriterOptions options_;
  std::uint64_t declared_ = 0;
  std::uint64_t written_ = 0;
  std::uint64_t header_bytes_ = 0;
  std::uint64_t next_sync_ = 0;
  bool finished_ = false;
};

}  // namespace vbr::trace
