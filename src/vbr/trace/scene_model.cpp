#include "vbr/trace/scene_model.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "vbr/common/error.hpp"

namespace vbr::trace {

SceneModel::SceneModel(SceneModelParams params) : params_(params) {
  VBR_ENSURE(params_.mean_scene_frames > 1.0, "mean scene length must exceed one frame");
  VBR_ENSURE(params_.pareto_shape > 1.0, "scene-length Pareto shape must exceed 1 (finite mean)");
  VBR_ENSURE(params_.alternation_prob >= 0.0 && params_.alternation_prob <= 1.0,
             "alternation probability must be in [0, 1]");
  VBR_ENSURE(params_.acts >= 1, "need at least one act");
  VBR_ENSURE(params_.max_scene_frames >= 2, "scene cap must allow at least two frames");
  VBR_ENSURE(params_.act_swing >= 1.0, "act swing is a peak-to-trough ratio >= 1");
}

double SceneModel::act_envelope(std::size_t frame, std::size_t total_frames) const {
  if (total_frames == 0) return 1.0;
  const double t = static_cast<double>(frame) / static_cast<double>(total_frames);
  // Sum of the act fundamental and a slow second harmonic, shaped so that the
  // movie opens active, sags in the second quarter and builds to the finale
  // (the paper's description of Fig. 2).
  const double acts = static_cast<double>(params_.acts);
  const double base = std::sin(std::numbers::pi * (acts * t + 0.25)) * 0.5 +
                      0.35 * std::sin(2.0 * std::numbers::pi * t - 0.6) + 0.55 * t;
  // Map to a positive envelope with the requested swing.
  const double swing = std::log(params_.act_swing);
  return std::exp(swing * 0.5 * base);
}

std::vector<Scene> SceneModel::generate(std::size_t total_frames, Rng& rng) const {
  std::vector<Scene> scenes;
  if (total_frames == 0) return scenes;
  int next_texture = 0;

  // Pareto shot lengths with the requested mean: k = mean * (a - 1) / a.
  const double a = params_.pareto_shape;
  const double k = params_.mean_scene_frames * (a - 1.0) / a;

  std::size_t frame = 0;
  while (frame < total_frames) {
    const double env = act_envelope(frame, total_frames);

    auto draw_scene = [&](int texture, double complexity) {
      Scene s;
      s.start_frame = frame;
      const double len = rng.pareto(k, a);
      s.length = std::max<std::size_t>(2, static_cast<std::size_t>(std::llround(len)));
      s.length = std::min(s.length, params_.max_scene_frames);
      s.length = std::min(s.length, total_frames - frame);
      s.texture_id = texture;
      s.complexity = complexity;
      s.motion = rng.uniform(0.0, 1.0) * std::min(1.0, env);
      return s;
    };

    auto draw_complexity = [&] {
      return env * std::exp(rng.normal(0.0, params_.complexity_sigma));
    };

    if (rng.uniform() < params_.alternation_prob && total_frames - frame > 24) {
      // Dialog: alternate between two fixed setups several times.
      const int tex_a = next_texture++;
      const int tex_b = next_texture++;
      const double level_a = draw_complexity();
      const double level_b = draw_complexity();
      const auto cuts = static_cast<std::size_t>(
          1 + rng.exponential(1.0 / std::max(1.0, params_.mean_alternation_cuts - 1.0)));
      for (std::size_t c = 0; c < cuts && frame < total_frames; ++c) {
        const bool is_a = (c % 2 == 0);
        Scene s = draw_scene(is_a ? tex_a : tex_b, is_a ? level_a : level_b);
        // Alternation shots are short (reaction shots): cap near the mean.
        s.length = std::min<std::size_t>(
            s.length, static_cast<std::size_t>(params_.mean_scene_frames));
        s.length = std::min(s.length, total_frames - frame);
        scenes.push_back(s);
        frame += s.length;
      }
    } else {
      Scene s = draw_scene(next_texture++, draw_complexity());
      scenes.push_back(s);
      frame += s.length;
    }
  }
  return scenes;
}

std::vector<double> scene_level_track(const std::vector<Scene>& scenes,
                                      std::size_t total_frames) {
  std::vector<double> track(total_frames, 1.0);
  for (const Scene& s : scenes) {
    const std::size_t end = std::min(total_frames, s.start_frame + s.length);
    for (std::size_t f = s.start_frame; f < end; ++f) track[f] = s.complexity;
  }
  return track;
}

}  // namespace vbr::trace
