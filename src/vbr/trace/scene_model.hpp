// Scene structure model.
//
// Section 4.2 of the paper observes that the intraframe trace "exhibits a
// wide variety of short-range behaviors, including periods with practically
// constant level ... due to the 'scene' structure of the movie", including
// long periods of simple alternation between two levels (cuts between two
// faces). Section 3.2.1 explains the LRD intuition as variation stacked on
// ever longer time scales: within-scene motion, camera cuts, scene clusters,
// story acts.
//
// This module generates that scene skeleton. It is shared by the calibrated
// surrogate trace (which overlays scene quantization on an fGn core) and by
// the synthetic movie renderer (which turns scenes into actual pictures for
// the intraframe coder).
#pragma once

#include <cstddef>
#include <vector>

#include "vbr/common/rng.hpp"

namespace vbr::trace {

/// One contiguous camera shot.
struct Scene {
  std::size_t start_frame = 0;
  std::size_t length = 0;       ///< frames
  double complexity = 1.0;      ///< relative spatial complexity (multiplies bandwidth)
  double motion = 0.0;          ///< relative motion activity in [0, 1]
  int texture_id = 0;           ///< identity of the underlying set/backdrop
};

/// Parameters of the scene point process.
struct SceneModelParams {
  /// Mean shot length in frames (~5 s at 24 fps).
  double mean_scene_frames = 120.0;
  /// Pareto shape of shot lengths; 1 < shape < 2 gives realistic heavy tails
  /// (occasional very long static shots).
  double pareto_shape = 1.5;
  /// Hard cap on a single shot, frames (2 min at 24 fps by default). Real
  /// movies cut eventually; without a cap the infinite-variance length law
  /// occasionally produces one shot dominating the record.
  std::size_t max_scene_frames = 2880;
  /// Probability that a cut starts a two-scene alternation (dialog pattern).
  double alternation_prob = 0.25;
  /// Mean number of back-and-forth cuts in an alternation run.
  double mean_alternation_cuts = 6.0;
  /// Log-normal sigma of per-scene complexity around the act envelope.
  double complexity_sigma = 0.35;
  /// Number of story "acts"; the act envelope modulates mean complexity on
  /// the longest time scale (the Fig. 2 story-arc pattern).
  std::size_t acts = 5;
  /// Peak-to-trough ratio of the act envelope.
  double act_swing = 1.6;
};

/// Generates shot sequences with clustered complexity across time scales.
class SceneModel {
 public:
  explicit SceneModel(SceneModelParams params = {});

  const SceneModelParams& params() const { return params_; }

  /// Generate scenes covering exactly `total_frames` frames (the last scene
  /// is truncated to fit).
  std::vector<Scene> generate(std::size_t total_frames, Rng& rng) const;

  /// Story-arc envelope value for a frame position in [0, total).
  /// Smooth, positive, mean ~1 over the whole movie.
  double act_envelope(std::size_t frame, std::size_t total_frames) const;

 private:
  SceneModelParams params_;
};

/// Expand scenes to a per-frame complexity level (piecewise constant).
std::vector<double> scene_level_track(const std::vector<Scene>& scenes,
                                      std::size_t total_frames);

}  // namespace vbr::trace
