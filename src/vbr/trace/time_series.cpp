#include "vbr/trace/time_series.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "vbr/common/error.hpp"
#include "vbr/common/math_util.hpp"

namespace vbr::trace {

TimeSeries::TimeSeries(std::vector<double> values, double dt_seconds, std::string unit)
    : values_(std::move(values)), dt_seconds_(dt_seconds), unit_(std::move(unit)) {
  VBR_ENSURE(dt_seconds_ > 0.0, "TimeSeries requires a positive sampling interval");
}

double TimeSeries::duration_seconds() const {
  return static_cast<double>(values_.size()) * dt_seconds_;
}

double TimeSeries::mean_rate_bps() const {
  if (values_.empty()) return 0.0;
  const double mean_bytes = kahan_total(values_) / static_cast<double>(values_.size());
  return mean_bytes * 8.0 / dt_seconds_;
}

double TimeSeries::peak_rate_bps() const {
  if (values_.empty()) return 0.0;
  const double peak = *std::max_element(values_.begin(), values_.end());
  return peak * 8.0 / dt_seconds_;
}

SummaryStats TimeSeries::summary() const {
  SummaryStats s;
  s.count = values_.size();
  if (values_.empty()) return s;

  s.mean = kahan_total(values_) / static_cast<double>(s.count);
  KahanSum ss;
  double lo = values_.front();
  double hi = values_.front();
  for (double v : values_) {
    const double d = v - s.mean;
    ss.add(d * d);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  s.variance = (s.count > 1) ? ss.value() / static_cast<double>(s.count - 1) : 0.0;
  s.stddev = std::sqrt(s.variance);
  s.coefficient_of_variation = (s.mean != 0.0) ? s.stddev / s.mean : 0.0;
  s.min = lo;
  s.max = hi;
  s.peak_to_mean = (s.mean != 0.0) ? hi / s.mean : 0.0;
  return s;
}

TimeSeries TimeSeries::slice(std::size_t first, std::size_t count) const {
  VBR_ENSURE(first <= values_.size(), "slice start beyond end of series");
  const std::size_t n = std::min(count, values_.size() - first);
  std::vector<double> sub(values_.begin() + static_cast<std::ptrdiff_t>(first),
                          values_.begin() + static_cast<std::ptrdiff_t>(first + n));
  return TimeSeries(std::move(sub), dt_seconds_, unit_);
}

}  // namespace vbr::trace
