// Trace file I/O.
//
// The paper's dataset was distributed as an ASCII file with one per-frame
// byte count per line (the classic "Star Wars trace" format from
// thumper.bellcore.com). We read and write that format, plus a compact
// binary format for large intermediate traces.
#pragma once

#include <filesystem>

#include "vbr/trace/time_series.hpp"

namespace vbr::trace {

/// Write a trace as ASCII: '#'-prefixed header lines carrying dt and unit,
/// then one sample per line.
void write_ascii(const TimeSeries& series, const std::filesystem::path& path);

/// Read an ASCII trace written by write_ascii(), or a bare list of numbers
/// (one per line, '#' comments ignored) in which case dt defaults to
/// 1/24 s (the paper's frame rate) and the unit to "bytes/frame".
TimeSeries read_ascii(const std::filesystem::path& path);

/// Write a trace in the library's binary format (magic, dt, n, doubles).
void write_binary(const TimeSeries& series, const std::filesystem::path& path);

/// Read a binary trace written by write_binary().
TimeSeries read_binary(const std::filesystem::path& path);

}  // namespace vbr::trace
