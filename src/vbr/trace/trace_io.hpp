// Trace file I/O.
//
// The paper's dataset was distributed as an ASCII file with one per-frame
// byte count per line (the classic "Star Wars trace" format from
// thumper.bellcore.com). We read and write that format, plus a compact
// binary format for large intermediate traces.
//
// Both readers treat their input as untrusted: malformed records (negative
// or non-finite frame sizes, overflowing counts, truncated data, corrupt
// headers) raise vbr::IoError instead of silently producing a bad series.
// The stream overloads exist so fuzzers and tests can drive the parsers
// without touching the filesystem.
#pragma once

#include <filesystem>
#include <iosfwd>
#include <string>

#include "vbr/trace/time_series.hpp"

namespace vbr::trace {

/// Write a trace as ASCII: '#'-prefixed header lines carrying dt and unit,
/// then one sample per line.
void write_ascii(const TimeSeries& series, const std::filesystem::path& path);

/// Read an ASCII trace written by write_ascii(), or a bare list of numbers
/// (one per line, '#' comments ignored) in which case dt defaults to
/// 1/24 s (the paper's frame rate) and the unit to "bytes/frame".
/// Throws vbr::IoError on malformed input (non-numeric lines, negative or
/// non-finite frame sizes, non-positive dt).
TimeSeries read_ascii(const std::filesystem::path& path);

/// Parse an ASCII trace from an open stream; `name` labels error messages.
TimeSeries read_ascii(std::istream& in, const std::string& name);

/// Write a trace in the library's binary format (magic, dt, n, doubles).
void write_binary(const TimeSeries& series, const std::filesystem::path& path);

/// Read a binary trace written by write_binary(). Throws vbr::IoError on a
/// bad magic, corrupt header fields, a sample count the stream cannot back,
/// or negative/non-finite samples.
TimeSeries read_binary(const std::filesystem::path& path);

/// Parse a binary trace from an open stream; `name` labels error messages.
TimeSeries read_binary(std::istream& in, const std::string& name);

}  // namespace vbr::trace
