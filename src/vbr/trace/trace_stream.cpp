#include "vbr/trace/trace_stream.hpp"

#include <algorithm>
#include <cstring>
#include <istream>
#include <limits>
#include <sstream>
#include <system_error>

#ifdef __unix__
#include <fcntl.h>
#include <unistd.h>
#endif

#include "vbr/common/error.hpp"
#include "vbr/trace/trace_format.hpp"

namespace vbr::trace {

ChunkedTraceReader::ChunkedTraceReader(const std::filesystem::path& path)
    : file_(std::make_unique<std::ifstream>(path, std::ios::binary)),
      in_(file_.get()),
      name_(path.string()) {
  if (!*file_) throw IoError("cannot open for reading: " + name_);
  init();
}

ChunkedTraceReader::ChunkedTraceReader(std::istream& in, std::string name)
    : in_(&in), name_(std::move(name)) {
  init();
}

void ChunkedTraceReader::init() {
  info_.dt_seconds = detail::kDefaultFrameDt;
  info_.unit = "bytes/frame";

  // Sniff the format: a binary trace opens with the 8 magic bytes.
  std::array<char, 8> head{};
  in_->read(head.data(), head.size());
  const auto got = in_->gcount();
  if (got == static_cast<std::streamsize>(head.size()) &&
      std::memcmp(head.data(), detail::kBinaryMagic.data(), head.size()) == 0) {
    info_.binary = true;
    double dt = 0.0;
    in_->read(reinterpret_cast<char*>(&dt), sizeof dt);
    std::uint32_t unit_len = 0;
    in_->read(reinterpret_cast<char*>(&unit_len), sizeof unit_len);
    if (!*in_ || unit_len > detail::kMaxUnitLength) {
      throw IoError(name_ + ": corrupt unit length");
    }
    std::string unit(unit_len, '\0');
    in_->read(unit.data(), unit_len);
    std::uint64_t n = 0;
    in_->read(reinterpret_cast<char*>(&n), sizeof n);
    if (!*in_ || !std::isfinite(dt) || dt <= 0.0) throw IoError(name_ + ": corrupt header");
    info_.dt_seconds = dt;
    info_.unit = std::move(unit);
    info_.declared_samples = n;
    info_.header_bytes = head.size() + sizeof dt + sizeof unit_len +
                         static_cast<std::uint64_t>(unit_len) + sizeof n;
    remaining_ = n;
    return;
  }

  // ASCII: rewind and consume the leading header/comment block so info() is
  // complete before the first read(). Data lines stay unconsumed.
  in_->clear();
  in_->seekg(0);
  if (!*in_) throw IoError(name_ + ": stream is not seekable (cannot sniff format)");
  for (;;) {
    const int c = in_->peek();
    if (c == std::char_traits<char>::eof()) break;
    if (c == '\n' || c == '\r') {
      in_->get();
      if (c == '\n') ++line_no_;
      continue;
    }
    if (c != '#') break;
    std::string line;
    std::getline(*in_, line);
    ++line_no_;
    std::istringstream header(line.substr(1));
    std::string key;
    header >> key;
    if (key == "dt_seconds") {
      double dt = 0.0;
      if (!(header >> dt)) {
        throw IoError(name_ + ":" + std::to_string(line_no_) +
                      ": unreadable dt_seconds header");
      }
      if (!(dt > 0.0) || !std::isfinite(dt)) {
        throw IoError(name_ + ": non-positive dt_seconds header");
      }
      info_.dt_seconds = dt;
    } else if (key == "unit") {
      std::string unit;
      if (header >> unit) info_.unit = unit;
    }
  }
}

std::size_t ChunkedTraceReader::read_binary_chunk(std::span<double> out) {
  const auto take = static_cast<std::size_t>(
      std::min<std::uint64_t>(remaining_, out.size()));
  if (take == 0) return 0;
  in_->read(reinterpret_cast<char*>(out.data()),
            static_cast<std::streamsize>(take * sizeof(double)));
  if (!*in_) throw IoError(name_ + ": truncated sample data");
  for (std::size_t i = 0; i < take; ++i) {
    detail::validate_sample(out[i], name_, samples_read_ + i);
  }
  remaining_ -= take;
  return take;
}

std::size_t ChunkedTraceReader::read_ascii_chunk(std::span<double> out) {
  std::size_t filled = 0;
  std::string line;
  while (filled < out.size() && std::getline(*in_, line)) {
    ++line_no_;
    if (line.empty()) continue;
    if (line[0] == '#') continue;  // headers after data are treated as comments
    std::istringstream row(line);
    double v = 0.0;
    if (!(row >> v)) {
      throw IoError(name_ + ":" + std::to_string(line_no_) + ": not a number: " + line);
    }
    detail::validate_sample(v, name_, samples_read_ + filled);
    out[filled++] = v;
  }
  return filled;
}

std::size_t ChunkedTraceReader::read(std::span<double> out) {
  if (done_ || out.empty()) return 0;
  const std::size_t got =
      info_.binary ? read_binary_chunk(out) : read_ascii_chunk(out);
  samples_read_ += got;
  if (got == 0) done_ = true;
  return got;
}

void ChunkedTraceWriter::write_header(double dt_seconds, const std::string& unit) {
  if (!(dt_seconds > 0.0) || !std::isfinite(dt_seconds)) {
    throw IoError(path_ + ": refusing to write non-positive dt_seconds");
  }
  if (unit.size() > detail::kMaxUnitLength) {
    throw IoError(path_ + ": unit string too long");
  }
  out_->write(detail::kBinaryMagic.data(), detail::kBinaryMagic.size());
  out_->write(reinterpret_cast<const char*>(&dt_seconds), sizeof dt_seconds);
  const auto unit_len = static_cast<std::uint32_t>(unit.size());
  out_->write(reinterpret_cast<const char*>(&unit_len), sizeof unit_len);
  out_->write(unit.data(), unit_len);
  out_->write(reinterpret_cast<const char*>(&declared_), sizeof declared_);
  if (!*out_) throw IoError("write failed: " + path_);
  header_bytes_ = detail::kBinaryMagic.size() + sizeof dt_seconds + sizeof unit_len +
                  unit.size() + sizeof declared_;
}

ChunkedTraceWriter::ChunkedTraceWriter(const std::filesystem::path& path,
                                       std::uint64_t total_samples, double dt_seconds,
                                       const std::string& unit,
                                       const TraceWriterOptions& options)
    : file_(std::make_unique<std::fstream>(
          path, std::ios::binary | std::ios::out | std::ios::trunc)),
      out_(file_.get()),
      path_(path.string()),
      options_(options),
      declared_(total_samples) {
  if (!*file_) throw IoError("cannot open for writing: " + path_);
  write_header(dt_seconds, unit);
  next_sync_ = options_.sync_every_samples;
}

ChunkedTraceWriter::ChunkedTraceWriter(std::ostream& out, std::string name,
                                       std::uint64_t total_samples, double dt_seconds,
                                       const std::string& unit)
    : out_(&out), path_(std::move(name)), declared_(total_samples) {
  write_header(dt_seconds, unit);
}

ChunkedTraceWriter::ChunkedTraceWriter(ResumeTag, const std::filesystem::path& path,
                                       std::uint64_t total_samples,
                                       std::uint64_t samples_written,
                                       const TraceWriterOptions& options)
    : path_(path.string()), options_(options), declared_(total_samples) {
  // Validate the surviving header with the reader (untrusted-input rules
  // apply: a crash can leave anything on disk) before touching the file.
  TraceStreamInfo info;
  {
    ChunkedTraceReader reader(path);
    info = reader.info();
  }
  if (!info.binary) throw IoError(path_ + ": cannot resume an ASCII trace");
  if (info.declared_samples != total_samples) {
    throw IoError(path_ + ": header declares " +
                  std::to_string(info.declared_samples) +
                  " samples but the checkpoint expects " +
                  std::to_string(total_samples));
  }
  if (samples_written > total_samples) {
    throw IoError(path_ + ": checkpoint claims more samples than declared");
  }
  const std::uint64_t keep = info.header_bytes + 8 * samples_written;
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) throw IoError(path_ + ": cannot stat for resume: " + ec.message());
  if (size < keep) {
    throw IoError(path_ + ": file holds " + std::to_string(size) +
                  " bytes, fewer than the " + std::to_string(keep) +
                  " the checkpoint recorded as durable");
  }
  // Discard the torn tail a mid-append crash may have left, then continue
  // appending from the last checkpointed sample.
  if (size > keep) {
    std::filesystem::resize_file(path, keep, ec);
    if (ec) throw IoError(path_ + ": cannot truncate torn tail: " + ec.message());
  }
  file_ = std::make_unique<std::fstream>(
      path, std::ios::binary | std::ios::in | std::ios::out | std::ios::ate);
  if (!*file_) throw IoError("cannot reopen for resume: " + path_);
  out_ = file_.get();
  written_ = samples_written;
  header_bytes_ = info.header_bytes;
  next_sync_ = written_ + options_.sync_every_samples;
}

ChunkedTraceWriter ChunkedTraceWriter::resume(const std::filesystem::path& path,
                                              std::uint64_t total_samples,
                                              std::uint64_t samples_written,
                                              const TraceWriterOptions& options) {
  return ChunkedTraceWriter(ResumeTag{}, path, total_samples, samples_written, options);
}

ChunkedTraceWriter::~ChunkedTraceWriter() {
  // Destruction without finish() (e.g. during exception unwinding) just
  // closes the file; the truncated result fails read_binary()'s count check.
}

void ChunkedTraceWriter::sync_to_disk() {
#ifdef __unix__
  const int fd = ::open(path_.c_str(), O_WRONLY);
  if (fd < 0) throw IoError(path_ + ": cannot open for fsync");
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) throw IoError(path_ + ": fsync failed");
#endif
}

void ChunkedTraceWriter::maybe_sync() {
  if (!options_.durable || file_ == nullptr) return;
  if (written_ < next_sync_) return;
  out_->flush();
  if (!*out_) throw IoError("flush failed: " + path_);
  sync_to_disk();
  while (next_sync_ <= written_) next_sync_ += options_.sync_every_samples;
}

void ChunkedTraceWriter::append(std::span<const double> samples) {
  if (finished_) throw IoError(path_ + ": append after finish");
  if (written_ + samples.size() > declared_) {
    throw IoError(path_ + ": more samples appended than the header declares");
  }
  for (std::size_t i = 0; i < samples.size(); ++i) {
    detail::validate_sample(samples[i], path_, written_ + i);
  }
  out_->write(reinterpret_cast<const char*>(samples.data()),
              static_cast<std::streamsize>(samples.size() * sizeof(double)));
  if (!*out_) throw IoError("write failed: " + path_);
  written_ += samples.size();
  maybe_sync();
}

void ChunkedTraceWriter::flush() {
  if (finished_) return;
  out_->flush();
  if (!*out_) throw IoError("flush failed: " + path_);
  if (options_.durable && file_ != nullptr) sync_to_disk();
}

void ChunkedTraceWriter::finish() {
  if (finished_) return;
  if (written_ != declared_) {
    throw IoError(path_ + ": finish() after " + std::to_string(written_) +
                  " of " + std::to_string(declared_) + " declared samples");
  }
  out_->flush();
  if (!*out_) throw IoError("write failed: " + path_);
  // A stream can report success while the sink absorbed fewer bytes than
  // asked (full disk, faulty filter buffer). The put position is the ground
  // truth for how much the stream actually holds.
  const auto pos = out_->tellp();
  const auto expected = static_cast<std::streamoff>(header_bytes_ + 8 * declared_);
  if (pos >= 0 && pos != expected) {
    throw IoError(path_ + ": short write: stream holds " + std::to_string(pos) +
                  " bytes, expected " + std::to_string(expected));
  }
  if (options_.durable && file_ != nullptr) sync_to_disk();
  if (file_ != nullptr) file_->close();
  finished_ = true;
}

}  // namespace vbr::trace
