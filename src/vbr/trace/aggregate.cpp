#include "vbr/trace/aggregate.hpp"

#include <cmath>
#include <numbers>

#include "vbr/common/error.hpp"
#include "vbr/common/math_util.hpp"
#include "vbr/common/rng.hpp"

namespace vbr::trace {

TimeSeries aggregate_mean(const TimeSeries& series, std::size_t m) {
  return TimeSeries(block_means(series.samples(), m),
                    series.dt_seconds() * static_cast<double>(m), series.unit());
}

TimeSeries aggregate_sum(const TimeSeries& series, std::size_t m) {
  return TimeSeries(block_sums(series.samples(), m),
                    series.dt_seconds() * static_cast<double>(m), series.unit());
}

std::vector<double> moving_average(std::span<const double> values, std::size_t window) {
  VBR_ENSURE(window >= 1, "moving_average window must be >= 1");
  const std::size_t n = values.size();
  std::vector<double> out(n, 0.0);
  if (n == 0) return out;

  // Sliding half-open window [i - half, i + half] truncated to the series.
  const std::size_t half = window / 2;
  // Prefix sums with compensation error kept negligible by chunked Kahan.
  std::vector<double> prefix(n + 1, 0.0);
  KahanSum sum;
  for (std::size_t i = 0; i < n; ++i) {
    sum.add(values[i]);
    prefix[i + 1] = sum.value();
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lo = (i >= half) ? i - half : 0;
    const std::size_t hi = std::min(n, i + half + 1);
    out[i] = (prefix[hi] - prefix[lo]) / static_cast<double>(hi - lo);
  }
  return out;
}

std::vector<double> frame_to_slices(double frame_bytes, std::size_t slices_per_frame,
                                    double jitter, std::uint64_t frame_index) {
  VBR_ENSURE(slices_per_frame >= 1, "need at least one slice per frame");
  VBR_ENSURE(jitter >= 0.0 && jitter < 1.0, "jitter must be in [0, 1)");
  const auto k = slices_per_frame;
  std::vector<double> slices(k, frame_bytes / static_cast<double>(k));
  if (jitter == 0.0 || k == 1) return slices;

  // Smooth multiplicative pattern: positive weights that sum to ~k, seeded
  // per frame so consecutive frames decorrelate but the draw is reproducible.
  Rng rng(0x511CE5ULL ^ frame_index * 0x9e3779b97f4a7c15ULL);
  const double phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
  const double wobble = rng.uniform(0.5, 1.0);
  std::vector<double> weights(k);
  KahanSum total;
  for (std::size_t i = 0; i < k; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(k);
    // 1 + jitter * (sinusoid + noise), floored away from zero.
    double w = 1.0 + jitter * (wobble * std::sin(2.0 * std::numbers::pi * t + phase) +
                               0.5 * (rng.uniform() - 0.5));
    w = std::max(w, 0.05);
    weights[i] = w;
    total.add(w);
  }
  const double scale = frame_bytes / total.value();
  for (std::size_t i = 0; i < k; ++i) slices[i] = weights[i] * scale;
  return slices;
}

TimeSeries expand_to_slices(const TimeSeries& frames, std::size_t slices_per_frame,
                            double jitter) {
  std::vector<double> out;
  out.reserve(frames.size() * slices_per_frame);
  for (std::size_t f = 0; f < frames.size(); ++f) {
    const auto slices = frame_to_slices(frames[f], slices_per_frame, jitter, f);
    out.insert(out.end(), slices.begin(), slices.end());
  }
  return TimeSeries(std::move(out),
                    frames.dt_seconds() / static_cast<double>(slices_per_frame),
                    "bytes/slice");
}

}  // namespace vbr::trace
