// TimeSeries: the central value type of the library.
//
// A TimeSeries is a uniformly sampled, real-valued record: the per-frame (or
// per-slice) byte counts of a VBR video trace, an aggregated series X^(m), a
// generated model realization, or a loss-rate process. It owns its samples and
// carries the sampling interval so analyses can report results in physical
// units (Mb/s, msec) the way the paper's tables do.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace vbr::trace {

/// Summary statistics in the shape of the paper's Table 2.
struct SummaryStats {
  double mean = 0.0;                ///< mean bandwidth, bytes per time unit
  double stddev = 0.0;              ///< sample standard deviation (n-1)
  double variance = 0.0;            ///< sample variance (n-1)
  double coefficient_of_variation = 0.0;  ///< sigma / mu
  double min = 0.0;                 ///< minimum bandwidth
  double max = 0.0;                 ///< maximum ("peak") bandwidth
  double peak_to_mean = 0.0;        ///< burstiness: max / mean
  std::size_t count = 0;            ///< number of samples
};

/// Uniformly sampled real-valued time series.
class TimeSeries {
 public:
  TimeSeries() = default;

  /// Construct from samples with sampling interval dt (seconds) and a unit
  /// label used in reports (e.g. "bytes/frame").
  TimeSeries(std::vector<double> values, double dt_seconds, std::string unit = "bytes");

  const std::vector<double>& values() const { return values_; }
  std::vector<double>& values() { return values_; }
  std::span<const double> samples() const { return values_; }

  double dt_seconds() const { return dt_seconds_; }
  const std::string& unit() const { return unit_; }

  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double operator[](std::size_t i) const { return values_[i]; }

  /// Total duration in seconds.
  double duration_seconds() const;

  /// Mean bandwidth in bits per second (samples are byte counts per dt).
  double mean_rate_bps() const;

  /// Peak bandwidth in bits per second.
  double peak_rate_bps() const;

  /// Table-2-style summary of the sample values.
  SummaryStats summary() const;

  /// Contiguous sub-series [first, first + count); clamps count to the end.
  TimeSeries slice(std::size_t first, std::size_t count) const;

 private:
  std::vector<double> values_;
  double dt_seconds_ = 1.0;
  std::string unit_ = "bytes";
};

}  // namespace vbr::trace
