// Shared constants and validation for the trace file formats, used by both
// the whole-trace readers (trace_io) and the chunked streaming reader/writer
// (trace_stream). One definition keeps the two paths byte-compatible.
#pragma once

#include <array>
#include <cmath>
#include <string>

#include "vbr/common/error.hpp"

namespace vbr::trace::detail {

/// Magic bytes opening a binary trace file.
inline constexpr std::array<char, 8> kBinaryMagic = {'V', 'B', 'R', 'T',
                                                     'R', 'C', '0', '1'};

/// dt assumed for bare ASCII traces (the paper's 24 frames/sec).
inline constexpr double kDefaultFrameDt = 1.0 / 24.0;

/// Longest unit string a binary header may claim.
inline constexpr std::size_t kMaxUnitLength = 4096;

// Frame/slice sizes are byte counts: finite and non-negative by definition.
// Anything else in a trace file is corruption, not data.
inline void validate_sample(double v, const std::string& name, std::uint64_t index) {
  if (!std::isfinite(v)) {
    throw IoError(name + ": non-finite frame size at sample " + std::to_string(index));
  }
  if (v < 0.0) {
    throw IoError(name + ": negative frame size at sample " + std::to_string(index));
  }
}

}  // namespace vbr::trace::detail
