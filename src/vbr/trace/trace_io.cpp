#include "vbr/trace/trace_io.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <sstream>
#include <string>

#include "vbr/common/error.hpp"
#include "vbr/trace/trace_format.hpp"

namespace vbr::trace {
namespace {

// Format constants and per-sample validation are shared with the chunked
// streaming reader/writer (trace_stream) through trace_format.hpp.
constexpr const std::array<char, 8>& kMagic = detail::kBinaryMagic;
constexpr double kDefaultFrameDt = detail::kDefaultFrameDt;
using detail::validate_sample;

}  // namespace

void write_ascii(const TimeSeries& series, const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open for writing: " + path.string());
  out.precision(17);
  out << "# vbr trace v1\n";
  out << "# dt_seconds " << series.dt_seconds() << "\n";
  out << "# unit " << series.unit() << "\n";
  for (double v : series.values()) out << v << "\n";
  if (!out) throw IoError("write failed: " + path.string());
}

TimeSeries read_ascii(std::istream& in, const std::string& name) {
  double dt = kDefaultFrameDt;
  std::string unit = "bytes/frame";
  std::vector<double> values;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream header(line.substr(1));
      std::string key;
      header >> key;
      if (key == "dt_seconds") {
        if (!(header >> dt)) {
          throw IoError(name + ":" + std::to_string(line_no) + ": unreadable dt_seconds header");
        }
      } else if (key == "unit") {
        header >> unit;
      }
      continue;
    }
    std::istringstream row(line);
    double v = 0.0;
    if (!(row >> v)) {
      throw IoError(name + ":" + std::to_string(line_no) + ": not a number: " + line);
    }
    validate_sample(v, name, values.size());
    values.push_back(v);
  }
  if (!(dt > 0.0) || !std::isfinite(dt)) {
    throw IoError(name + ": non-positive dt_seconds header");
  }
  return TimeSeries(std::move(values), dt, unit);
}

TimeSeries read_ascii(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open for reading: " + path.string());
  return read_ascii(in, path.string());
}

void write_binary(const TimeSeries& series, const std::filesystem::path& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot open for writing: " + path.string());
  out.write(kMagic.data(), kMagic.size());
  const double dt = series.dt_seconds();
  out.write(reinterpret_cast<const char*>(&dt), sizeof dt);
  const auto unit_len = static_cast<std::uint32_t>(series.unit().size());
  out.write(reinterpret_cast<const char*>(&unit_len), sizeof unit_len);
  out.write(series.unit().data(), unit_len);
  const auto n = static_cast<std::uint64_t>(series.size());
  out.write(reinterpret_cast<const char*>(&n), sizeof n);
  out.write(reinterpret_cast<const char*>(series.values().data()),
            static_cast<std::streamsize>(n * sizeof(double)));
  if (!out) throw IoError("write failed: " + path.string());
}

TimeSeries read_binary(std::istream& in, const std::string& name) {
  std::array<char, 8> magic{};
  in.read(magic.data(), magic.size());
  if (!in || std::memcmp(magic.data(), kMagic.data(), kMagic.size()) != 0) {
    throw IoError(name + ": not a vbr binary trace (bad magic)");
  }
  double dt = 0.0;
  in.read(reinterpret_cast<char*>(&dt), sizeof dt);
  std::uint32_t unit_len = 0;
  in.read(reinterpret_cast<char*>(&unit_len), sizeof unit_len);
  if (!in || unit_len > detail::kMaxUnitLength) {
    throw IoError(name + ": corrupt unit length");
  }
  std::string unit(unit_len, '\0');
  in.read(unit.data(), unit_len);
  std::uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof n);
  if (!in || !std::isfinite(dt) || dt <= 0.0) throw IoError(name + ": corrupt header");

  // The sample count is untrusted: read in bounded chunks so a forged header
  // claiming 2^60 samples fails with IoError on the first short read instead
  // of attempting an n * 8-byte allocation.
  constexpr std::size_t kChunkSamples = std::size_t{1} << 16;
  std::vector<double> values;
  values.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(n, kChunkSamples)));
  std::vector<double> chunk;
  std::uint64_t remaining = n;
  while (remaining > 0) {
    const auto take = static_cast<std::size_t>(std::min<std::uint64_t>(remaining, kChunkSamples));
    chunk.resize(take);
    in.read(reinterpret_cast<char*>(chunk.data()),
            static_cast<std::streamsize>(take * sizeof(double)));
    if (!in) throw IoError(name + ": truncated sample data");
    for (std::size_t i = 0; i < take; ++i) {
      validate_sample(chunk[i], name, values.size() + i);
    }
    values.insert(values.end(), chunk.begin(), chunk.end());
    remaining -= take;
  }
  return TimeSeries(std::move(values), dt, unit);
}

TimeSeries read_binary(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open for reading: " + path.string());
  return read_binary(in, path.string());
}

}  // namespace vbr::trace
