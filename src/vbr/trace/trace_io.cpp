#include "vbr/trace/trace_io.hpp"

#include <array>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "vbr/common/error.hpp"

namespace vbr::trace {
namespace {

constexpr std::array<char, 8> kMagic = {'V', 'B', 'R', 'T', 'R', 'C', '0', '1'};
constexpr double kDefaultFrameDt = 1.0 / 24.0;

}  // namespace

void write_ascii(const TimeSeries& series, const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open for writing: " + path.string());
  out.precision(17);
  out << "# vbr trace v1\n";
  out << "# dt_seconds " << series.dt_seconds() << "\n";
  out << "# unit " << series.unit() << "\n";
  for (double v : series.values()) out << v << "\n";
  if (!out) throw IoError("write failed: " + path.string());
}

TimeSeries read_ascii(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open for reading: " + path.string());

  double dt = kDefaultFrameDt;
  std::string unit = "bytes/frame";
  std::vector<double> values;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream header(line.substr(1));
      std::string key;
      header >> key;
      if (key == "dt_seconds") {
        header >> dt;
      } else if (key == "unit") {
        header >> unit;
      }
      continue;
    }
    std::istringstream row(line);
    double v = 0.0;
    if (!(row >> v)) {
      throw IoError(path.string() + ":" + std::to_string(line_no) + ": not a number: " + line);
    }
    values.push_back(v);
  }
  if (dt <= 0.0) throw IoError(path.string() + ": non-positive dt_seconds header");
  return TimeSeries(std::move(values), dt, unit);
}

void write_binary(const TimeSeries& series, const std::filesystem::path& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot open for writing: " + path.string());
  out.write(kMagic.data(), kMagic.size());
  const double dt = series.dt_seconds();
  out.write(reinterpret_cast<const char*>(&dt), sizeof dt);
  const auto unit_len = static_cast<std::uint32_t>(series.unit().size());
  out.write(reinterpret_cast<const char*>(&unit_len), sizeof unit_len);
  out.write(series.unit().data(), unit_len);
  const auto n = static_cast<std::uint64_t>(series.size());
  out.write(reinterpret_cast<const char*>(&n), sizeof n);
  out.write(reinterpret_cast<const char*>(series.values().data()),
            static_cast<std::streamsize>(n * sizeof(double)));
  if (!out) throw IoError("write failed: " + path.string());
}

TimeSeries read_binary(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open for reading: " + path.string());
  std::array<char, 8> magic{};
  in.read(magic.data(), magic.size());
  if (!in || std::memcmp(magic.data(), kMagic.data(), kMagic.size()) != 0) {
    throw IoError(path.string() + ": not a vbr binary trace (bad magic)");
  }
  double dt = 0.0;
  in.read(reinterpret_cast<char*>(&dt), sizeof dt);
  std::uint32_t unit_len = 0;
  in.read(reinterpret_cast<char*>(&unit_len), sizeof unit_len);
  if (!in || unit_len > 4096) throw IoError(path.string() + ": corrupt unit length");
  std::string unit(unit_len, '\0');
  in.read(unit.data(), unit_len);
  std::uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof n);
  if (!in || dt <= 0.0) throw IoError(path.string() + ": corrupt header");
  std::vector<double> values(n);
  in.read(reinterpret_cast<char*>(values.data()),
          static_cast<std::streamsize>(n * sizeof(double)));
  if (!in) throw IoError(path.string() + ": truncated sample data");
  return TimeSeries(std::move(values), dt, unit);
}

}  // namespace vbr::trace
