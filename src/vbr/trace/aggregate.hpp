// Aggregation and filtering operators on time series.
//
// The paper's self-similarity analysis is phrased in terms of the aggregated
// processes X^(m) obtained by averaging over non-overlapping blocks of size m
// (Section 3.2.2), the moving-average low-pass view of Fig. 2, and the
// frame <-> slice relationship of Table 1 (30 slices per frame).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "vbr/trace/time_series.hpp"

namespace vbr::trace {

/// Aggregated process X^(m): means over non-overlapping blocks of size m.
/// The trailing partial block (if any) is discarded. The sampling interval of
/// the result is m * dt.
TimeSeries aggregate_mean(const TimeSeries& series, std::size_t m);

/// Block sums over non-overlapping blocks of size m (e.g. slice -> frame).
TimeSeries aggregate_sum(const TimeSeries& series, std::size_t m);

/// Centered moving average with the given window (Fig. 2 uses 20,000 frames).
/// Output has the same length as the input; windows are truncated at the
/// edges so no samples are invented.
std::vector<double> moving_average(std::span<const double> values, std::size_t window);

/// Split one frame's byte count into `slices_per_frame` per-slice counts.
/// jitter in [0,1) modulates slices around the even split with a smooth
/// pseudo-random pattern seeded per frame, keeping the frame total exact.
/// jitter = 0 gives the uniform split.
std::vector<double> frame_to_slices(double frame_bytes, std::size_t slices_per_frame,
                                    double jitter, std::uint64_t frame_index);

/// Expand a frame-level trace to slice level (Table 1: 30 slices per frame).
TimeSeries expand_to_slices(const TimeSeries& frames, std::size_t slices_per_frame,
                            double jitter);

}  // namespace vbr::trace
