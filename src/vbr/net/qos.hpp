// Quality-of-service metrics (Sections 5.1 / 5.3).
//
// The paper evaluates two QOS specifications — the overall cell loss rate
// P_l and the loss rate in the worst errored second P_l-WES — and studies
// the time structure of losses with a running-window loss-rate process
// (Fig. 17, 1000-frame window).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "vbr/net/fluid_queue.hpp"

namespace vbr::net {

/// Loss rate in the worst errored second: partition the run into windows of
/// `intervals_per_second` intervals and take the maximum per-window
/// lost/arrived ratio over windows that actually lost traffic. Returns 0 if
/// nothing was lost.
double worst_errored_second(std::span<const FluidIntervalStats> intervals,
                            std::size_t intervals_per_second);

/// Running-average loss-rate process over a sliding window of `window`
/// intervals (Fig. 17): out[i] = lost/arrived over [i-window+1, i],
/// evaluated every `stride` intervals.
std::vector<double> windowed_loss_process(std::span<const FluidIntervalStats> intervals,
                                          std::size_t window, std::size_t stride = 1);

}  // namespace vbr::net
