#include "vbr/net/qos.hpp"

#include <algorithm>

#include "vbr/common/error.hpp"

namespace vbr::net {

double worst_errored_second(std::span<const FluidIntervalStats> intervals,
                            std::size_t intervals_per_second) {
  VBR_ENSURE(intervals_per_second >= 1, "need at least one interval per second");
  double worst = 0.0;
  for (std::size_t start = 0; start < intervals.size(); start += intervals_per_second) {
    const std::size_t end = std::min(intervals.size(), start + intervals_per_second);
    double arrived = 0.0;
    double lost = 0.0;
    for (std::size_t i = start; i < end; ++i) {
      arrived += intervals[i].arrived_bytes;
      lost += intervals[i].lost_bytes;
    }
    if (arrived > 0.0 && lost > 0.0) worst = std::max(worst, lost / arrived);
  }
  return worst;
}

std::vector<double> windowed_loss_process(std::span<const FluidIntervalStats> intervals,
                                          std::size_t window, std::size_t stride) {
  VBR_ENSURE(window >= 1, "window must be >= 1");
  VBR_ENSURE(stride >= 1, "stride must be >= 1");
  std::vector<double> out;
  if (intervals.size() < window) return out;

  // Prefix sums keep the sweep O(n).
  std::vector<double> arrived(intervals.size() + 1, 0.0);
  std::vector<double> lost(intervals.size() + 1, 0.0);
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    arrived[i + 1] = arrived[i] + intervals[i].arrived_bytes;
    lost[i + 1] = lost[i] + intervals[i].lost_bytes;
  }
  for (std::size_t end = window; end <= intervals.size(); end += stride) {
    const double a = arrived[end] - arrived[end - window];
    const double l = lost[end] - lost[end - window];
    out.push_back(a > 0.0 ? l / a : 0.0);
  }
  return out;
}

}  // namespace vbr::net
