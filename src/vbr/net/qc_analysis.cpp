#include "vbr/net/qc_analysis.hpp"

#include <algorithm>
#include <cmath>

#include "vbr/common/error.hpp"
#include "vbr/common/math_util.hpp"
#include "vbr/common/rng.hpp"
#include "vbr/net/multiplexer.hpp"
#include "vbr/net/qos.hpp"

namespace vbr::net {

MuxWorkload::MuxWorkload(std::span<const double> frame_bytes, const MuxExperiment& experiment)
    : experiment_(experiment) {
  VBR_ENSURE(!frame_bytes.empty(), "empty trace");
  VBR_ENSURE(experiment.sources >= 1, "need at least one source");
  VBR_ENSURE(experiment.dt_seconds > 0.0, "invalid interval duration");

  const std::size_t reps = (experiment.sources == 1) ? 1 : std::max<std::size_t>(
                                                               1, experiment.replications);
  Rng rng(experiment.seed);
  aggregates_.reserve(reps);
  for (std::size_t r = 0; r < reps; ++r) {
    const auto lags = draw_lags(experiment.sources, frame_bytes.size(),
                                experiment.min_lag_separation, rng);
    aggregates_.push_back(multiplex_trace(frame_bytes, lags));
  }

  const double mean_bytes = sample_mean(frame_bytes);
  const double peak_bytes = *std::max_element(frame_bytes.begin(), frame_bytes.end());
  source_mean_rate_bps_ = mean_bytes * 8.0 / experiment.dt_seconds;
  source_peak_rate_bps_ = peak_bytes * 8.0 / experiment.dt_seconds;

  double agg_peak_bytes = 0.0;
  for (const auto& agg : aggregates_) {
    agg_peak_bytes = std::max(agg_peak_bytes, *std::max_element(agg.begin(), agg.end()));
  }
  aggregate_peak_rate_bps_ = agg_peak_bytes * 8.0 / experiment.dt_seconds;
}

std::size_t MuxWorkload::intervals_per_second() const {
  return std::max<std::size_t>(1, static_cast<std::size_t>(
                                      std::llround(1.0 / experiment_.dt_seconds)));
}

MuxWorkload::Qos MuxWorkload::evaluate(double per_source_capacity_bps,
                                       double max_delay_seconds) const {
  VBR_ENSURE(per_source_capacity_bps > 0.0, "capacity must be positive");
  VBR_ENSURE(max_delay_seconds >= 0.0, "delay must be non-negative");

  const double total_capacity_bytes =
      per_source_capacity_bps * static_cast<double>(experiment_.sources) / 8.0;
  const double buffer_bytes = max_delay_seconds * total_capacity_bytes;

  Qos qos;
  for (const auto& aggregate : aggregates_) {
    const auto result = run_fluid_queue(aggregate, experiment_.dt_seconds,
                                        total_capacity_bytes, buffer_bytes,
                                        /*record_intervals=*/true);
    qos.overall_loss += result.loss_rate();
    qos.wes_loss += worst_errored_second(result.intervals, intervals_per_second());
  }
  const auto reps = static_cast<double>(aggregates_.size());
  qos.overall_loss /= reps;
  qos.wes_loss /= reps;
  return qos;
}

double MuxWorkload::loss(double per_source_capacity_bps, double max_delay_seconds,
                         QosMeasure measure) const {
  if (measure == QosMeasure::kWorstErroredSecond) {
    return evaluate(per_source_capacity_bps, max_delay_seconds).wes_loss;
  }
  VBR_ENSURE(per_source_capacity_bps > 0.0, "capacity must be positive");
  VBR_ENSURE(max_delay_seconds >= 0.0, "delay must be non-negative");
  const double total_capacity_bytes =
      per_source_capacity_bps * static_cast<double>(experiment_.sources) / 8.0;
  const double buffer_bytes = max_delay_seconds * total_capacity_bytes;
  double total = 0.0;
  for (const auto& aggregate : aggregates_) {
    total += run_fluid_queue(aggregate, experiment_.dt_seconds, total_capacity_bytes,
                             buffer_bytes, /*record_intervals=*/false)
                 .loss_rate();
  }
  return total / static_cast<double>(aggregates_.size());
}

FluidQueueResult MuxWorkload::run_detailed(double per_source_capacity_bps,
                                           double max_delay_seconds,
                                           std::size_t replication) const {
  VBR_ENSURE(replication < aggregates_.size(), "replication index out of range");
  const double total_capacity_bytes =
      per_source_capacity_bps * static_cast<double>(experiment_.sources) / 8.0;
  const double buffer_bytes = max_delay_seconds * total_capacity_bytes;
  return run_fluid_queue(aggregates_[replication], experiment_.dt_seconds,
                         total_capacity_bytes, buffer_bytes, /*record_intervals=*/true);
}

double required_capacity_bps(const MuxWorkload& workload, double max_delay_seconds,
                             double target_loss, QosMeasure measure, double tolerance_bps) {
  VBR_ENSURE(target_loss >= 0.0, "target loss must be non-negative");
  VBR_ENSURE(tolerance_bps > 0.0, "tolerance must be positive");

  auto meets_target = [&](double capacity_bps) {
    const double loss = workload.loss(capacity_bps, max_delay_seconds, measure);
    return (target_loss == 0.0) ? (loss == 0.0) : (loss <= target_loss);
  };

  // Upper bound: per-source share of the worst aggregate peak rate — at that
  // capacity arrivals never exceed service, so loss is zero for any buffer.
  double hi = workload.aggregate_peak_rate_bps_ /
                  static_cast<double>(workload.sources()) +
              1.0;
  double lo = 0.25 * workload.source_mean_rate_bps();
  VBR_ENSURE(meets_target(hi), "upper capacity bound fails the target (unexpected)");
  if (meets_target(lo)) return lo;  // degenerate: even far below the mean works

  while (hi - lo > tolerance_bps) {
    const double mid = 0.5 * (lo + hi);
    if (meets_target(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

std::vector<QcPoint> qc_curve(const MuxWorkload& workload,
                              std::span<const double> max_delays_seconds, double target_loss,
                              QosMeasure measure) {
  std::vector<QcPoint> curve;
  curve.reserve(max_delays_seconds.size());
  for (double delay : max_delays_seconds) {
    curve.push_back({delay, required_capacity_bps(workload, delay, target_loss, measure)});
  }
  return curve;
}

std::size_t knee_index(std::span<const QcPoint> curve) {
  VBR_ENSURE(curve.size() >= 3, "knee detection needs at least three points");
  // Maximum discrete curvature in log-log coordinates.
  double best = -1.0;
  std::size_t best_idx = 1;
  for (std::size_t i = 1; i + 1 < curve.size(); ++i) {
    const double x0 = std::log(curve[i - 1].max_delay_seconds);
    const double x1 = std::log(curve[i].max_delay_seconds);
    const double x2 = std::log(curve[i + 1].max_delay_seconds);
    const double y0 = std::log(curve[i - 1].capacity_per_source_bps);
    const double y1 = std::log(curve[i].capacity_per_source_bps);
    const double y2 = std::log(curve[i + 1].capacity_per_source_bps);
    const double slope_in = (y1 - y0) / (x1 - x0);
    const double slope_out = (y2 - y1) / (x2 - x1);
    const double turn = std::abs(slope_out - slope_in);
    if (turn > best) {
      best = turn;
      best_idx = i;
    }
  }
  return best_idx;
}

}  // namespace vbr::net
