// Exact fluid simulation of the paper's system (Fig. 13): a single FIFO
// queue with finite buffer Q and fixed channel capacity C fed by the
// multiplexed video traffic.
//
// With cells spread uniformly within each frame/slice interval (Section
// 5.1), the aggregate arrival process is piecewise-constant in rate, so the
// queue sample path is piecewise linear and can be advanced interval by
// interval in closed form: the simulation is exact up to one-cell
// granularity and costs O(#intervals) regardless of bandwidth. The
// discrete CellQueue validates this equivalence in tests.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <vector>

namespace vbr::net {

/// Per-interval accounting, enough to derive every QOS metric used in the
/// paper (overall loss, worst-errored-second loss, windowed loss processes).
struct FluidIntervalStats {
  double arrived_bytes = 0.0;
  double lost_bytes = 0.0;
};

struct FluidQueueResult {
  double arrived_bytes = 0.0;
  double lost_bytes = 0.0;
  double max_queue_bytes = 0.0;
  double mean_queue_bytes = 0.0;  ///< time-average backlog
  /// Overall cell-loss ratio P_l (lost / arrived).
  double loss_rate() const {
    return arrived_bytes > 0.0 ? lost_bytes / arrived_bytes : 0.0;
  }
  /// Worst-case queueing delay experienced, seconds.
  double max_delay_seconds(double capacity_bytes_per_sec) const {
    return max_queue_bytes / capacity_bytes_per_sec;
  }
  /// Time-average queueing delay, seconds.
  double mean_delay_seconds(double capacity_bytes_per_sec) const {
    return mean_queue_bytes / capacity_bytes_per_sec;
  }
  /// Per-interval stats (present when requested).
  std::vector<FluidIntervalStats> intervals;
};

/// Single-queue fluid simulator.
class FluidQueue {
 public:
  /// capacity in bytes/second, buffer in bytes.
  FluidQueue(double capacity_bytes_per_sec, double buffer_bytes);

  /// Offer `bytes` spread uniformly over `duration_sec`; returns bytes lost
  /// in this interval.
  double offer(double bytes, double duration_sec);

  double queue_bytes() const { return queue_; }
  double max_queue_bytes() const { return max_queue_; }
  double arrived_bytes() const { return arrived_; }
  double lost_bytes() const { return lost_; }
  /// Time-average backlog over the offered duration so far.
  double mean_queue_bytes() const;

  /// Serialize the complete queue state (configuration + every accumulator,
  /// doubles as raw bit patterns). restore() on a queue constructed with
  /// the same capacity and buffer reproduces the state bit-for-bit, so a
  /// checkpointed service resumes its loss/backlog accounting exactly
  /// (vbr::service uses this). Throws vbr::IoError on a configuration
  /// mismatch, truncation, or non-finite state; on failure this queue is
  /// left unchanged.
  void save(std::ostream& out) const;
  void restore(std::istream& in);

 private:
  double capacity_;
  double buffer_;
  double queue_ = 0.0;
  double max_queue_ = 0.0;
  double arrived_ = 0.0;
  double lost_ = 0.0;
  double queue_time_integral_ = 0.0;  ///< integral of queue(t) dt, byte-seconds
  double elapsed_seconds_ = 0.0;
};

/// Run a whole per-interval byte sequence (dt seconds each) through a fluid
/// queue. Set record_intervals to collect per-interval loss for windowed
/// QOS metrics.
FluidQueueResult run_fluid_queue(std::span<const double> interval_bytes, double dt_seconds,
                                 double capacity_bytes_per_sec, double buffer_bytes,
                                 bool record_intervals = false);

}  // namespace vbr::net
