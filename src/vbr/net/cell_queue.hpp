// Discrete cell-level FIFO queue, used to validate the fluid model.
//
// Cells (48-byte payloads) arrive at explicit instants — uniformly spaced
// within each interval, or uniformly-random within it (the two spacings the
// paper compares in [GARR93a]) — and are served at a constant byte rate.
// The finite buffer drops an arriving cell that does not fit. This is the
// classic workload recursion of a D-server finite-buffer FIFO and agrees
// with the fluid model to within one cell per interval.
#pragma once

#include <cstddef>
#include <span>

#include "vbr/common/rng.hpp"

namespace vbr::net {

enum class CellSpacing {
  kUniform,  ///< evenly spaced within the interval
  kRandom,   ///< i.i.d. uniform arrival instants within the interval
};

struct CellQueueResult {
  std::size_t arrived_cells = 0;
  std::size_t lost_cells = 0;
  double loss_rate() const {
    return arrived_cells > 0
               ? static_cast<double>(lost_cells) / static_cast<double>(arrived_cells)
               : 0.0;
  }
};

/// Run per-interval byte counts through a cell-level FIFO. `rng` is used
/// only for random spacing. A buffer smaller than one cell payload is legal
/// and degenerate: every arriving cell is lost.
CellQueueResult run_cell_queue(std::span<const double> interval_bytes, double dt_seconds,
                               double capacity_bytes_per_sec, double buffer_bytes,
                               CellSpacing spacing, Rng& rng);

}  // namespace vbr::net
