#include "vbr/net/shaper.hpp"

#include <algorithm>
#include <cmath>

#include "vbr/common/error.hpp"
#include "vbr/common/math_util.hpp"

namespace vbr::net {

CbrSmootherResult smooth_to_cbr(std::span<const double> interval_bytes, double dt_seconds,
                                double rate_bytes_per_sec) {
  VBR_ENSURE(!interval_bytes.empty(), "empty trace");
  VBR_ENSURE(dt_seconds > 0.0, "interval must have positive duration");
  VBR_ENSURE(rate_bytes_per_sec > 0.0, "rate must be positive");

  CbrSmootherResult result;
  result.rate_bytes_per_sec = rate_bytes_per_sec;
  const double drained = rate_bytes_per_sec * dt_seconds;
  double backlog = 0.0;
  KahanSum backlog_integral;
  KahanSum arrived;
  for (double bytes : interval_bytes) {
    VBR_ENSURE(bytes >= 0.0, "negative traffic");
    arrived.add(bytes);
    backlog = std::max(0.0, backlog + bytes - drained);
    result.max_backlog_bytes = std::max(result.max_backlog_bytes, backlog);
    backlog_integral.add(backlog);
  }
  result.max_delay_seconds = result.max_backlog_bytes / rate_bytes_per_sec;
  result.mean_backlog_bytes =
      backlog_integral.value() / static_cast<double>(interval_bytes.size());
  const double mean_rate =
      arrived.value() / (static_cast<double>(interval_bytes.size()) * dt_seconds);
  result.utilization = mean_rate / rate_bytes_per_sec;
  return result;
}

double min_cbr_rate_for_delay(std::span<const double> interval_bytes, double dt_seconds,
                              double max_delay_seconds) {
  VBR_ENSURE(max_delay_seconds > 0.0, "delay budget must be positive");
  const double mean_bytes = sample_mean(interval_bytes);
  const double peak_bytes = *std::max_element(interval_bytes.begin(), interval_bytes.end());
  double lo = mean_bytes / dt_seconds;  // below the mean the backlog diverges
  double hi = peak_bytes / dt_seconds + 1.0;
  VBR_ENSURE(smooth_to_cbr(interval_bytes, dt_seconds, hi).max_delay_seconds <=
                 max_delay_seconds,
             "even the peak rate misses the delay budget (budget below one interval?)");
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (smooth_to_cbr(interval_bytes, dt_seconds, mid).max_delay_seconds <=
        max_delay_seconds) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

ClipResult clip_peaks(std::span<const double> interval_bytes, double multiple_of_mean) {
  VBR_ENSURE(multiple_of_mean > 1.0, "clip level must exceed the mean");
  ClipResult result;
  const double mean = sample_mean(interval_bytes);
  result.clip_level_bytes = multiple_of_mean * mean;

  double removed = 0.0;
  double total = 0.0;
  double peak_before = 0.0;
  std::size_t affected = 0;
  result.clipped.reserve(interval_bytes.size());
  for (double v : interval_bytes) {
    total += v;
    peak_before = std::max(peak_before, v);
    if (v > result.clip_level_bytes) {
      removed += v - result.clip_level_bytes;
      ++affected;
      result.clipped.push_back(result.clip_level_bytes);
    } else {
      result.clipped.push_back(v);
    }
  }
  result.frames_affected =
      static_cast<double>(affected) / static_cast<double>(interval_bytes.size());
  result.traffic_removed = (total > 0.0) ? removed / total : 0.0;
  result.peak_to_mean_before = peak_before / mean;
  const double mean_after = sample_mean(result.clipped);
  result.peak_to_mean_after =
      *std::max_element(result.clipped.begin(), result.clipped.end()) / mean_after;
  return result;
}

}  // namespace vbr::net
