#include "vbr/net/cell_queue.hpp"

#include <algorithm>
#include <vector>

#include "vbr/common/error.hpp"
#include "vbr/net/cell.hpp"

namespace vbr::net {

CellQueueResult run_cell_queue(std::span<const double> interval_bytes, double dt_seconds,
                               double capacity_bytes_per_sec, double buffer_bytes,
                               CellSpacing spacing, Rng& rng) {
  VBR_ENSURE(dt_seconds > 0.0, "interval must have positive duration");
  VBR_ENSURE(capacity_bytes_per_sec > 0.0, "capacity must be positive");
  VBR_ENSURE(buffer_bytes >= 0.0, "buffer must be non-negative");
  VBR_CHECK_FINITE(capacity_bytes_per_sec, "cell-queue capacity");
  VBR_CHECK_FINITE(buffer_bytes, "cell-queue buffer");
  check_finite_series(interval_bytes, "run_cell_queue arrivals");

  CellQueueResult result;
  // Unfinished work in the queue, in bytes, as seen just after the last
  // arrival. Between arrivals it drains at the service rate.
  double workload = 0.0;
  double last_arrival = 0.0;
  std::vector<double> offsets;

  for (std::size_t i = 0; i < interval_bytes.size(); ++i) {
    VBR_DCHECK(interval_bytes[i] >= 0.0, "negative arrival volume");
    const double t0 = static_cast<double>(i) * dt_seconds;
    const std::size_t cells = bytes_to_cells(interval_bytes[i]);
    if (cells == 0) continue;

    offsets.clear();
    offsets.reserve(cells);
    if (spacing == CellSpacing::kUniform) {
      for (std::size_t c = 0; c < cells; ++c) {
        offsets.push_back(dt_seconds * (static_cast<double>(c) + 0.5) /
                          static_cast<double>(cells));
      }
    } else {
      for (std::size_t c = 0; c < cells; ++c) offsets.push_back(rng.uniform(0.0, dt_seconds));
      std::sort(offsets.begin(), offsets.end());
    }

    for (double off : offsets) {
      const double now = t0 + off;
      workload = std::max(0.0, workload - (now - last_arrival) * capacity_bytes_per_sec);
      last_arrival = now;
      ++result.arrived_cells;
      if (workload + kCellPayloadBytes > buffer_bytes) {
        ++result.lost_cells;
      } else {
        workload += kCellPayloadBytes;
      }
    }
  }
  return result;
}

}  // namespace vbr::net
