#include "vbr/net/cell.hpp"

#include <cmath>

#include "vbr/common/error.hpp"

namespace vbr::net {

std::size_t bytes_to_cells(double bytes) {
  VBR_ENSURE(bytes >= 0.0, "byte count must be non-negative");
  return static_cast<std::size_t>(std::ceil(bytes / kCellPayloadBytes));
}

double cell_padded_bytes(double bytes) {
  return static_cast<double>(bytes_to_cells(bytes)) * kCellPayloadBytes;
}

}  // namespace vbr::net
