#include "vbr/net/admission.hpp"

#include <cmath>

#include "vbr/common/error.hpp"

namespace vbr::net {

BufferlessAdmission::BufferlessAdmission(const stats::GammaParetoDistribution& marginal,
                                         double dt_seconds, std::size_t table_points)
    : base_(marginal, 0.0,
            // Cover the marginal far into its tail: the (1 - 1e-9) quantile.
            marginal.quantile(1.0 - 1e-9), table_points),
      dt_seconds_(dt_seconds),
      per_source_mean_bytes_(marginal.mean()) {
  VBR_ENSURE(dt_seconds > 0.0, "interval duration must be positive");
}

const stats::TabulatedDistribution& BufferlessAdmission::convolved(
    std::size_t sources) const {
  VBR_ENSURE(sources >= 1, "need at least one source");
  while (cache_.size() < sources) {
    cache_.push_back(base_.convolve_power(cache_.size() + 1));
  }
  return cache_[sources - 1];
}

double BufferlessAdmission::loss_fraction(std::size_t sources,
                                          double total_capacity_bps) const {
  VBR_ENSURE(total_capacity_bps > 0.0, "capacity must be positive");
  const double capacity_bytes = total_capacity_bps / 8.0 * dt_seconds_;
  const auto& sum = convolved(sources);
  const double excess = sum.partial_expectation_above(capacity_bytes);
  const double fraction = excess / (static_cast<double>(sources) * per_source_mean_bytes_);
  VBR_CHECK_PROB(fraction, "bufferless loss fraction");
  return fraction;
}

double BufferlessAdmission::overload_probability(std::size_t sources,
                                                 double total_capacity_bps) const {
  VBR_ENSURE(total_capacity_bps > 0.0, "capacity must be positive");
  const double capacity_bytes = total_capacity_bps / 8.0 * dt_seconds_;
  const double probability = 1.0 - convolved(sources).cdf(capacity_bytes);
  VBR_CHECK_PROB(probability, "overload probability");
  return probability;
}

double BufferlessAdmission::required_capacity_bps(std::size_t sources,
                                                  double target_loss) const {
  VBR_ENSURE(target_loss > 0.0 && target_loss < 1.0, "target loss must be in (0, 1)");
  const double mean_bps =
      static_cast<double>(sources) * per_source_mean_bytes_ * 8.0 / dt_seconds_;
  double lo = mean_bps * 0.5;
  double hi = mean_bps;
  while (loss_fraction(sources, hi) > target_loss) {
    hi *= 1.5;
    VBR_ENSURE(hi < mean_bps * 100.0, "target loss unreachable within the table range");
  }
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (loss_fraction(sources, mid) > target_loss) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

std::size_t BufferlessAdmission::max_admissible_sources(double total_capacity_bps,
                                                        double target_loss,
                                                        std::size_t limit) const {
  VBR_ENSURE(limit >= 1, "limit must be >= 1");
  // Loss is monotone in N at fixed capacity; linear scan with early exit
  // keeps the convolution cache warm for subsequent queries.
  std::size_t admitted = 0;
  for (std::size_t n = 1; n <= limit; ++n) {
    if (loss_fraction(n, total_capacity_bps) <= target_loss) {
      admitted = n;
    } else {
      break;
    }
  }
  return admitted;
}

}  // namespace vbr::net
