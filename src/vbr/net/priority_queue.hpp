// Two-priority fluid FIFO for layered video transport.
//
// The paper's conclusions point to layered coding with priority queueing
// ([GARR93], Section 5.3: "if packet loss degradations were concealed by
// using 'layered' coding with a priority queueing discipline, then the QOS
// measure would have to account for this"). We implement the standard
// space-priority discipline: both layers share one buffer and one server;
// when the buffer must drop, low-priority (enhancement-layer) traffic is
// dropped first, and high-priority (base-layer) traffic is lost only once
// the low-priority share of the interval is exhausted.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace vbr::net {

struct LayeredIntervalStats {
  double high_arrived = 0.0;
  double low_arrived = 0.0;
  double high_lost = 0.0;
  double low_lost = 0.0;
};

struct LayeredQueueResult {
  double high_arrived = 0.0;
  double low_arrived = 0.0;
  double high_lost = 0.0;
  double low_lost = 0.0;
  double high_loss_rate() const {
    return high_arrived > 0.0 ? high_lost / high_arrived : 0.0;
  }
  double low_loss_rate() const { return low_arrived > 0.0 ? low_lost / low_arrived : 0.0; }
  double total_loss_rate() const {
    const double arrived = high_arrived + low_arrived;
    return arrived > 0.0 ? (high_lost + low_lost) / arrived : 0.0;
  }
  std::vector<LayeredIntervalStats> intervals;
};

/// Run a layered workload through a space-priority fluid queue.
/// high/low are per-interval byte counts for the base and enhancement
/// layers (same length); the server serves at capacity with a shared
/// buffer; when fluid must be discarded in an interval, the enhancement
/// layer absorbs the loss first.
LayeredQueueResult run_layered_queue(std::span<const double> high_bytes,
                                     std::span<const double> low_bytes, double dt_seconds,
                                     double capacity_bytes_per_sec, double buffer_bytes,
                                     bool record_intervals = false);

/// Split a single-layer trace into (base, enhancement) layers: the base
/// layer carries min(x, base_cap) of each interval, modelling a layered
/// coder whose base layer is rate-limited; the remainder is enhancement.
struct LayeredTrace {
  std::vector<double> high;
  std::vector<double> low;
};
LayeredTrace split_layers(std::span<const double> frame_bytes, double base_cap_bytes);

}  // namespace vbr::net
