#include "vbr/net/priority_queue.hpp"

#include <algorithm>

#include "vbr/common/error.hpp"

namespace vbr::net {

LayeredQueueResult run_layered_queue(std::span<const double> high_bytes,
                                     std::span<const double> low_bytes, double dt_seconds,
                                     double capacity_bytes_per_sec, double buffer_bytes,
                                     bool record_intervals) {
  VBR_ENSURE(high_bytes.size() == low_bytes.size(), "layer traces must align");
  VBR_ENSURE(dt_seconds > 0.0, "interval must have positive duration");
  VBR_ENSURE(capacity_bytes_per_sec > 0.0, "capacity must be positive");
  VBR_ENSURE(buffer_bytes >= 0.0, "buffer must be non-negative");

  LayeredQueueResult result;
  if (record_intervals) result.intervals.reserve(high_bytes.size());

  double queue = 0.0;  // shared buffer occupancy, bytes
  const double served_per_interval = capacity_bytes_per_sec * dt_seconds;
  for (std::size_t i = 0; i < high_bytes.size(); ++i) {
    const double high = high_bytes[i];
    const double low = low_bytes[i];
    VBR_ENSURE(high >= 0.0 && low >= 0.0, "negative traffic");
    result.high_arrived += high;
    result.low_arrived += low;

    // Fluid balance over the interval: the queue plus new arrivals drain at
    // the service rate; whatever exceeds buffer + service must be dropped,
    // enhancement layer first. (Same piecewise-linear dynamics as
    // FluidQueue, with drop precedence applied to the interval's excess.)
    const double inflow = high + low;
    const double excess =
        std::max(0.0, queue + inflow - served_per_interval - buffer_bytes);
    const double low_lost = std::min(excess, low);
    const double high_lost = std::min(excess - low_lost, high);
    result.low_lost += low_lost;
    result.high_lost += high_lost;

    queue = std::max(0.0, queue + inflow - (low_lost + high_lost) - served_per_interval);
    queue = std::min(queue, buffer_bytes);
    if (record_intervals) result.intervals.push_back({high, low, high_lost, low_lost});
  }
  return result;
}

LayeredTrace split_layers(std::span<const double> frame_bytes, double base_cap_bytes) {
  VBR_ENSURE(base_cap_bytes > 0.0, "base-layer cap must be positive");
  LayeredTrace layers;
  layers.high.reserve(frame_bytes.size());
  layers.low.reserve(frame_bytes.size());
  for (double v : frame_bytes) {
    VBR_ENSURE(v >= 0.0, "negative traffic");
    const double base = std::min(v, base_cap_bytes);
    layers.high.push_back(base);
    layers.low.push_back(v - base);
  }
  return layers;
}

}  // namespace vbr::net
