// Analytic queueing with long-range-dependent input: the Norros fractional
// Brownian storage model (Norros 1994, contemporary with the paper).
//
// The paper measures Q-C tradeoffs by simulation; this module provides the
// closed-form counterpart the LRD traffic theory of the era produced.
// Model the cumulative arrivals as A(t) = m t + sqrt(a m) Z(t) with Z
// fractional Brownian motion (Hurst H); for a queue served at rate c the
// stationary overflow probability is approximately
//
//     P(Q > b) ~ exp( - (c - m)^{2H} b^{2-2H} / (2 kappa(H)^2 a m) ),
//     kappa(H) = H^H (1 - H)^{1-H}.
//
// Two structural LRD lessons drop out and are checked against the fluid
// simulation in bench_ext_fbm_model: buffers fight loss only like
// b^{2-2H} (weakly, for H near 1) rather than exponentially, and the
// required capacity c(b, eps) decays slowly in b — the paper's observation
// that "the bandwidth requirement is quite insensitive to the buffer size".
#pragma once

#include <cstddef>
#include <span>

namespace vbr::net {

/// fBm traffic descriptor in per-interval byte units.
struct FbmTrafficParams {
  double mean_bytes = 0.0;      ///< m: mean arrivals per interval
  double variance_bytes2 = 0.0; ///< a m: Var of arrivals in one interval
  double hurst = 0.8;           ///< H
};

/// Estimate (m, am, H-agnostic variance) from a per-interval trace; H must
/// be supplied (use the Table-3 estimators).
FbmTrafficParams fit_fbm_traffic(std::span<const double> interval_bytes, double hurst);

/// Superpose n independent sources (means and variances add; H unchanged).
FbmTrafficParams superpose(const FbmTrafficParams& single, std::size_t n);

/// Norros overflow probability P(Q > buffer) at service rate
/// capacity_bytes_per_interval (> mean). Returns 1 when capacity <= mean.
double fbm_overflow_probability(const FbmTrafficParams& traffic,
                                double capacity_bytes_per_interval, double buffer_bytes);

/// Smallest service rate (bytes/interval) with P(Q > buffer) <= epsilon:
///   c = m + (-2 ln(eps) kappa^2 a m)^{1/(2H)} * b^{-(1-H)/H}.
double fbm_required_capacity(const FbmTrafficParams& traffic, double buffer_bytes,
                             double epsilon);

/// kappa(H) = H^H (1-H)^{1-H}.
double fbm_kappa(double hurst);

}  // namespace vbr::net
