// Traffic shaping: CBR smoothing and peak clipping.
//
// The paper's introduction motivates VBR transport by the cost of forcing a
// constant bit rate ("delay, wasted bandwidth, and modulation of the video
// quality"); its conclusions recommend that a realistic VBR coder "should
// clip such peaks, rather than send them into the network". These shapers
// quantify both arguments:
//
//  * CbrSmoother — a smoothing buffer in front of a CBR channel: computes,
//    for a given constant rate, the buffering delay and backlog the trace
//    would need (infinite buffer, no loss), or the loss for a finite one.
//  * clip_peaks — caps the trace at a multiple of its mean, reporting how
//    much traffic the clip affects (the coder would instead degrade quality
//    slightly during those frames).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace vbr::net {

struct CbrSmootherResult {
  double rate_bytes_per_sec = 0.0;
  double max_backlog_bytes = 0.0;   ///< peak smoothing-buffer occupancy
  double max_delay_seconds = 0.0;   ///< worst-case buffering delay backlog/rate
  double mean_backlog_bytes = 0.0;  ///< time-average occupancy
  double utilization = 0.0;         ///< mean arrival rate / CBR rate
};

/// Push the trace through an infinite smoothing buffer drained at a
/// constant rate; reports the buffering the CBR channel would impose.
CbrSmootherResult smooth_to_cbr(std::span<const double> interval_bytes, double dt_seconds,
                                double rate_bytes_per_sec);

/// Smallest CBR rate whose worst-case smoothing delay is <= max_delay
/// (bisection between the mean and peak rates).
double min_cbr_rate_for_delay(std::span<const double> interval_bytes, double dt_seconds,
                              double max_delay_seconds);

struct ClipResult {
  std::vector<double> clipped;      ///< the shaped trace
  double clip_level_bytes = 0.0;
  double frames_affected = 0.0;     ///< fraction of intervals clipped
  double traffic_removed = 0.0;     ///< fraction of total bytes removed
  double peak_to_mean_before = 0.0;
  double peak_to_mean_after = 0.0;
};

/// Clip the trace at `multiple_of_mean` times its mean value.
ClipResult clip_peaks(std::span<const double> interval_bytes, double multiple_of_mean);

}  // namespace vbr::net
