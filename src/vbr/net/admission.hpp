// Bufferless admission control from the Gamma/Pareto convolution.
//
// Section 4.2: "To simulate the aggregation of multiple sources, we
// implemented a convolution of the Gamma/Pareto distribution using a table
// of 10,000 points." This module puts that machinery to its engineering
// use: for a bufferless (or small-buffer) multiplexer, the loss fraction
// when N sources share capacity C is approximately the rate-overflow tail
// E[(S_N - C)^+] / E[S_N] of the N-fold marginal convolution S_N. That
// yields a connection-admission rule -- the analytic counterpart of the
// Fig. 15 simulation, exact for marginals but blind to time correlation
// (which is why it applies at the small-buffer knee, where LRD cannot
// help).
#pragma once

#include <cstddef>

#include "vbr/stats/gamma_pareto.hpp"

namespace vbr::net {

/// Analytic bufferless multiplexer built on the paper's tabulated N-fold
/// convolution of the per-source marginal.
class BufferlessAdmission {
 public:
  /// `marginal` is the per-source bytes-per-interval law; `dt_seconds` the
  /// interval; `table_points` the tabulation resolution (paper: 10,000).
  BufferlessAdmission(const stats::GammaParetoDistribution& marginal, double dt_seconds,
                      std::size_t table_points = 10000);

  /// Overflow loss fraction for N sources at total capacity (bits/s):
  /// E[(S_N - c)^+] / E[S_N] with c = capacity per interval.
  double loss_fraction(std::size_t sources, double total_capacity_bps) const;

  /// Tail probability P(aggregate rate > capacity).
  double overload_probability(std::size_t sources, double total_capacity_bps) const;

  /// Smallest total capacity (bits/s) with loss_fraction <= target.
  double required_capacity_bps(std::size_t sources, double target_loss) const;

  /// Largest N admissible at the given capacity and loss target (0 if even
  /// one source does not fit).
  std::size_t max_admissible_sources(double total_capacity_bps, double target_loss,
                                     std::size_t limit = 512) const;

 private:
  stats::TabulatedDistribution base_;
  double dt_seconds_;
  double per_source_mean_bytes_;

  const stats::TabulatedDistribution& convolved(std::size_t sources) const;
  mutable std::vector<stats::TabulatedDistribution> cache_;  ///< index N-1
};

}  // namespace vbr::net
