// Statistical multiplexing of N video sources (Section 5.1).
//
// The paper multiplexes N copies of the trace offset by random lags of at
// least 1000 frames (long-range dependence makes the cross-correlation
// between nearby offsets significant), wrapping each copy around the end so
// all 171,000 frames are used once per source. For N > 2, six different
// random lag combinations are simulated and the loss rates averaged.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "vbr/common/rng.hpp"

namespace vbr::net {

/// Draw per-source lags in [0, trace_len) that are pairwise at least
/// `min_separation` apart circularly (the first source gets lag 0). Throws
/// if the trace cannot accommodate the separation.
std::vector<std::size_t> draw_lags(std::size_t n_sources, std::size_t trace_len,
                                   std::size_t min_separation, Rng& rng);

/// Aggregate arrival process: out[f] = sum_i trace[(f + lags[i]) mod len].
std::vector<double> multiplex_trace(std::span<const double> frame_bytes,
                                    std::span<const std::size_t> lags);

}  // namespace vbr::net
