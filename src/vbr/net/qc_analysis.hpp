// Q-C analysis: the resource-allocation experiments of Section 5.
//
// For a target quality of service, the paper measures the tradeoff between
// the two network resources — buffer (expressed as the maximum buffer delay
// T_max = Q / (N C), with C the allocated bandwidth per source) and
// capacity — producing the "Q-C curves" of Figs. 14 and 16, the statistical
// multiplexing gain curves of Fig. 15, and the loss processes of Fig. 17.
//
// MuxWorkload precomputes the multiplexed aggregate arrival process for
// each lag-combination replication once; every (Q, C) probe is then a
// single O(#frames) fluid-queue pass, which makes the bisection search for
// required capacity cheap.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "vbr/net/fluid_queue.hpp"

namespace vbr::net {

/// Which QOS specification a target loss refers to.
enum class QosMeasure {
  kOverallLoss,         ///< P_l
  kWorstErroredSecond,  ///< P_l-WES
};

struct MuxExperiment {
  std::size_t sources = 1;
  double dt_seconds = 1.0 / 24.0;
  /// Lag combinations averaged (the paper uses six for N > 2; forced to 1
  /// when sources == 1 since lags are irrelevant).
  std::size_t replications = 6;
  std::size_t min_lag_separation = 1000;
  std::uint64_t seed = 42;
};

/// Precomputed multiplexed workload: N lag-offset copies of the trace summed
/// per frame, for each replication.
class MuxWorkload {
 public:
  MuxWorkload(std::span<const double> frame_bytes, const MuxExperiment& experiment);

  struct Qos {
    double overall_loss = 0.0;  ///< averaged over replications
    double wes_loss = 0.0;      ///< averaged over replications
    double value(QosMeasure measure) const {
      return measure == QosMeasure::kOverallLoss ? overall_loss : wes_loss;
    }
  };

  /// Evaluate QOS at an allocation: per-source capacity (bits/s) and max
  /// buffer delay T_max (buffer Q = T_max * N * C).
  Qos evaluate(double per_source_capacity_bps, double max_delay_seconds) const;

  /// Fast path for capacity search: evaluate only the requested measure
  /// (skips per-interval bookkeeping when only overall loss is needed).
  double loss(double per_source_capacity_bps, double max_delay_seconds,
              QosMeasure measure) const;

  /// Detailed run of one replication with per-interval stats (Fig. 17).
  FluidQueueResult run_detailed(double per_source_capacity_bps, double max_delay_seconds,
                                std::size_t replication) const;

  std::size_t sources() const { return experiment_.sources; }
  double dt_seconds() const { return experiment_.dt_seconds; }
  std::size_t replications() const { return aggregates_.size(); }
  std::size_t intervals_per_second() const;

  /// Per-source mean and peak rates of the underlying trace, bits/second —
  /// the bounds between which statistical multiplexing gain lives.
  double source_mean_rate_bps() const { return source_mean_rate_bps_; }
  double source_peak_rate_bps() const { return source_peak_rate_bps_; }

 private:
  MuxExperiment experiment_;
  std::vector<std::vector<double>> aggregates_;  ///< per replication
  double source_mean_rate_bps_ = 0.0;
  double source_peak_rate_bps_ = 0.0;
  double aggregate_peak_rate_bps_ = 0.0;  ///< max over reps of peak aggregate rate
  friend double required_capacity_bps(const MuxWorkload&, double, double, QosMeasure,
                                      double);
};

/// Smallest per-source capacity (bits/s) meeting `target_loss` under
/// `measure` at buffer delay `max_delay_seconds`. target_loss == 0 requires
/// exactly zero observed loss. Bisection to `tolerance_bps`.
double required_capacity_bps(const MuxWorkload& workload, double max_delay_seconds,
                             double target_loss, QosMeasure measure,
                             double tolerance_bps = 1000.0);

/// One point of a Q-C curve.
struct QcPoint {
  double max_delay_seconds = 0.0;
  double capacity_per_source_bps = 0.0;
};

/// Required capacity across a grid of buffer delays (one Fig. 14 curve).
std::vector<QcPoint> qc_curve(const MuxWorkload& workload,
                              std::span<const double> max_delays_seconds, double target_loss,
                              QosMeasure measure);

/// Locate the knee of a Q-C curve: the point of maximum curvature in
/// (log delay, log capacity) coordinates, the paper's "natural operating
/// point".
std::size_t knee_index(std::span<const QcPoint> curve);

}  // namespace vbr::net
