#include "vbr/net/fluid_queue.hpp"

#include <algorithm>
#include <cmath>

#include "vbr/common/error.hpp"
#include "vbr/common/serialize.hpp"

namespace vbr::net {

FluidQueue::FluidQueue(double capacity_bytes_per_sec, double buffer_bytes)
    : capacity_(capacity_bytes_per_sec), buffer_(buffer_bytes) {
  // Finiteness first: a NaN parameter is numerical poisoning, not a merely
  // out-of-range request, and the error should say so.
  VBR_CHECK_FINITE(capacity_, "fluid-queue capacity");
  VBR_CHECK_FINITE(buffer_, "fluid-queue buffer");
  VBR_ENSURE(capacity_ > 0.0, "capacity must be positive");
  VBR_ENSURE(buffer_ >= 0.0, "buffer must be non-negative");
}

double FluidQueue::offer(double bytes, double duration_sec) {
  VBR_ENSURE(bytes >= 0.0, "cannot offer negative traffic");
  VBR_ENSURE(duration_sec > 0.0, "interval must have positive duration");
  VBR_DCHECK(std::isfinite(bytes), "non-finite arrival volume");
  arrived_ += bytes;

  const double arrival_rate = bytes / duration_sec;
  const double net = arrival_rate - capacity_;
  const double q0 = queue_;
  double lost = 0.0;

  if (net > 0.0) {
    // Queue grows at `net`; once it hits the buffer, excess is lost.
    const double time_to_full = (buffer_ - queue_) / net;
    if (time_to_full < duration_sec) {
      lost = net * (duration_sec - time_to_full);
      queue_ = buffer_;
      // Ramp q0 -> buffer, then flat at the buffer.
      queue_time_integral_ += 0.5 * (q0 + buffer_) * time_to_full +
                              buffer_ * (duration_sec - time_to_full);
    } else {
      queue_ += net * duration_sec;
      queue_time_integral_ += 0.5 * (q0 + queue_) * duration_sec;
    }
  } else if (net < 0.0) {
    // Queue drains; it can empty mid-interval, after which the server is
    // partially idle — no loss either way.
    const double time_to_empty = q0 / -net;
    if (time_to_empty < duration_sec) {
      queue_ = 0.0;
      queue_time_integral_ += 0.5 * q0 * time_to_empty;
    } else {
      queue_ += net * duration_sec;
      queue_time_integral_ += 0.5 * (q0 + queue_) * duration_sec;
    }
  } else {
    queue_time_integral_ += q0 * duration_sec;
  }
  elapsed_seconds_ += duration_sec;
  max_queue_ = std::max(max_queue_, queue_);
  lost_ += lost;
  VBR_DCHECK(queue_ >= 0.0 && queue_ <= buffer_, "fluid queue left [0, buffer]");
  return lost;
}

double FluidQueue::mean_queue_bytes() const {
  return (elapsed_seconds_ > 0.0) ? queue_time_integral_ / elapsed_seconds_ : 0.0;
}

void FluidQueue::save(std::ostream& out) const {
  io::write_string(out, "fluid-queue");
  io::write_f64(out, capacity_);
  io::write_f64(out, buffer_);
  io::write_f64(out, queue_);
  io::write_f64(out, max_queue_);
  io::write_f64(out, arrived_);
  io::write_f64(out, lost_);
  io::write_f64(out, queue_time_integral_);
  io::write_f64(out, elapsed_seconds_);
}

void FluidQueue::restore(std::istream& in) {
  io::read_tag(in, "fluid-queue", "FluidQueue::restore");
  const double capacity = io::read_f64(in, "FluidQueue::restore");
  const double buffer = io::read_f64(in, "FluidQueue::restore");
  if (capacity != capacity_ || buffer != buffer_) {
    throw IoError("FluidQueue::restore: configuration mismatch");
  }
  double state[6];
  for (double& v : state) {
    v = io::read_f64(in, "FluidQueue::restore");
    if (!std::isfinite(v) || v < 0.0) {
      throw IoError("FluidQueue::restore: corrupt accumulator");
    }
  }
  if (state[0] > buffer_) throw IoError("FluidQueue::restore: backlog exceeds buffer");
  queue_ = state[0];
  max_queue_ = state[1];
  arrived_ = state[2];
  lost_ = state[3];
  queue_time_integral_ = state[4];
  elapsed_seconds_ = state[5];
}

FluidQueueResult run_fluid_queue(std::span<const double> interval_bytes, double dt_seconds,
                                 double capacity_bytes_per_sec, double buffer_bytes,
                                 bool record_intervals) {
  check_finite_series(interval_bytes, "run_fluid_queue arrivals");
  FluidQueue queue(capacity_bytes_per_sec, buffer_bytes);
  FluidQueueResult result;
  if (record_intervals) result.intervals.reserve(interval_bytes.size());
  for (double bytes : interval_bytes) {
    const double lost = queue.offer(bytes, dt_seconds);
    if (record_intervals) result.intervals.push_back({bytes, lost});
  }
  result.arrived_bytes = queue.arrived_bytes();
  result.lost_bytes = queue.lost_bytes();
  result.max_queue_bytes = queue.max_queue_bytes();
  result.mean_queue_bytes = queue.mean_queue_bytes();
  return result;
}

}  // namespace vbr::net
