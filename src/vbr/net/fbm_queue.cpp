#include "vbr/net/fbm_queue.hpp"

#include <cmath>

#include "vbr/common/error.hpp"
#include "vbr/common/math_util.hpp"

namespace vbr::net {

double fbm_kappa(double hurst) {
  VBR_ENSURE(hurst > 0.0 && hurst < 1.0, "H must be in (0, 1)");
  return std::pow(hurst, hurst) * std::pow(1.0 - hurst, 1.0 - hurst);
}

FbmTrafficParams fit_fbm_traffic(std::span<const double> interval_bytes, double hurst) {
  VBR_ENSURE(interval_bytes.size() >= 2, "need at least two intervals");
  VBR_ENSURE(hurst > 0.0 && hurst < 1.0, "H must be in (0, 1)");
  check_finite_series(interval_bytes, "fit_fbm_traffic input");
  FbmTrafficParams params;
  params.mean_bytes = sample_mean(interval_bytes);
  params.variance_bytes2 = sample_variance(interval_bytes);
  params.hurst = hurst;
  VBR_ENSURE(params.mean_bytes > 0.0 && params.variance_bytes2 > 0.0,
             "degenerate traffic statistics");
  return params;
}

FbmTrafficParams superpose(const FbmTrafficParams& single, std::size_t n) {
  VBR_ENSURE(n >= 1, "need at least one source");
  FbmTrafficParams out = single;
  out.mean_bytes *= static_cast<double>(n);
  out.variance_bytes2 *= static_cast<double>(n);
  return out;
}

double fbm_overflow_probability(const FbmTrafficParams& traffic,
                                double capacity_bytes_per_interval, double buffer_bytes) {
  VBR_ENSURE(buffer_bytes >= 0.0, "buffer must be non-negative");
  const double m = traffic.mean_bytes;
  const double h = traffic.hurst;
  if (capacity_bytes_per_interval <= m) return 1.0;
  if (buffer_bytes == 0.0) return 1.0;  // the asymptotic form needs b > 0
  const double kappa = fbm_kappa(h);
  const double exponent =
      std::pow(capacity_bytes_per_interval - m, 2.0 * h) *
      std::pow(buffer_bytes, 2.0 - 2.0 * h) /
      (2.0 * kappa * kappa * traffic.variance_bytes2);
  const double probability = std::exp(-exponent);
  VBR_CHECK_PROB(probability, "fBm overflow probability");
  return probability;
}

double fbm_required_capacity(const FbmTrafficParams& traffic, double buffer_bytes,
                             double epsilon) {
  VBR_ENSURE(buffer_bytes > 0.0, "buffer must be positive");
  VBR_ENSURE(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
  const double h = traffic.hurst;
  const double kappa = fbm_kappa(h);
  const double numerator =
      -2.0 * std::log(epsilon) * kappa * kappa * traffic.variance_bytes2;
  const double capacity = traffic.mean_bytes + std::pow(numerator, 1.0 / (2.0 * h)) *
                                                   std::pow(buffer_bytes, -(1.0 - h) / h);
  VBR_CHECK_FINITE(capacity, "fBm required capacity");
  return capacity;
}

}  // namespace vbr::net
