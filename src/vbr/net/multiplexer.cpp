#include "vbr/net/multiplexer.hpp"

#include <algorithm>

#include "vbr/common/error.hpp"

namespace vbr::net {

std::vector<std::size_t> draw_lags(std::size_t n_sources, std::size_t trace_len,
                                   std::size_t min_separation, Rng& rng) {
  VBR_ENSURE(n_sources >= 1, "need at least one source");
  VBR_ENSURE(trace_len > 0, "empty trace");
  VBR_ENSURE(n_sources * min_separation < trace_len || n_sources == 1,
             "trace too short for the requested lag separation");

  std::vector<std::size_t> lags{0};
  // Rejection sampling; feasibility guaranteed by the precondition, and the
  // acceptance probability is high for the paper's parameters (N <= 20,
  // separation 1000, length 171,000).
  int attempts = 0;
  while (lags.size() < n_sources) {
    VBR_ENSURE(++attempts < 100000, "failed to draw separated lags");
    const std::size_t candidate = rng.uniform_index(trace_len);
    const bool ok = std::all_of(lags.begin(), lags.end(), [&](std::size_t lag) {
      const std::size_t diff = (candidate > lag) ? candidate - lag : lag - candidate;
      const std::size_t circular = std::min(diff, trace_len - diff);
      return circular >= min_separation;
    });
    if (ok) lags.push_back(candidate);
  }
  return lags;
}

std::vector<double> multiplex_trace(std::span<const double> frame_bytes,
                                    std::span<const std::size_t> lags) {
  VBR_ENSURE(!frame_bytes.empty(), "empty trace");
  VBR_ENSURE(!lags.empty(), "need at least one source");
  const std::size_t len = frame_bytes.size();
  std::vector<double> aggregate(len, 0.0);
  for (std::size_t lag : lags) {
    VBR_ENSURE(lag < len, "lag exceeds trace length");
    std::size_t idx = lag;
    for (std::size_t f = 0; f < len; ++f) {
      aggregate[f] += frame_bytes[idx];
      if (++idx == len) idx = 0;
    }
  }
  return aggregate;
}

}  // namespace vbr::net
