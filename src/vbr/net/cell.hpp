// Cell-level constants for the ATM-like transport the paper assumes.
//
// Video bytes are carried in fixed-size cells with 48-byte payloads; the
// paper's simulations spread a frame's (or slice's) cells uniformly over
// the frame interval rather than delivering them as a burst ("in no case do
// all the cells of a frame arrive together").
#pragma once

#include <cstddef>

namespace vbr::net {

/// ATM cell payload bytes.
inline constexpr double kCellPayloadBytes = 48.0;

/// Number of cells needed for a byte count (ceiling).
std::size_t bytes_to_cells(double bytes);

/// Payload-rounded byte count (cells * 48).
double cell_padded_bytes(double bytes);

}  // namespace vbr::net
