#include "vbr/stats/rs_analysis.hpp"

#include <algorithm>
#include <cmath>

#include "vbr/common/error.hpp"

namespace vbr::stats {

double rescaled_range(std::span<const double> data, std::size_t start, std::size_t n) {
  VBR_ENSURE(n >= 2, "R/S block must have at least two observations");
  VBR_ENSURE(start + n <= data.size(), "R/S block exceeds the record");
  VBR_DCHECK(start <= data.size(), "R/S block start past the record");

  // Block mean.
  KahanSum total;
  for (std::size_t i = 0; i < n; ++i) total.add(data[start + i]);
  const double mean = total.value() / static_cast<double>(n);

  // Adjusted partial sums W_j = sum_{i<=j}(X_i - mean); R = max(0, W) - min(0, W).
  double w = 0.0;
  double w_max = 0.0;
  double w_min = 0.0;
  KahanSum ss;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = data[start + i] - mean;
    w += d;
    w_max = std::max(w_max, w);
    w_min = std::min(w_min, w);
    ss.add(d * d);
  }
  const double variance = ss.value() / static_cast<double>(n);  // population S(n)
  if (variance <= 0.0) return 0.0;
  return (w_max - w_min) / std::sqrt(variance);
}

RsResult rs_analysis(std::span<const double> data, const RsOptions& options) {
  VBR_ENSURE(data.size() >= 64, "R/S analysis needs a longer record");
  check_finite_series(data, "rs_analysis input");
  RsOptions opt = options;
  if (opt.max_lag == 0) opt.max_lag = data.size() / 2;
  VBR_ENSURE(opt.min_lag >= 2 && opt.min_lag < opt.max_lag, "invalid lag range");
  VBR_ENSURE(opt.max_lag <= data.size(), "max lag exceeds the record");
  VBR_ENSURE(opt.partitions >= 1, "need at least one partition");

  RsResult result;
  for (std::size_t lag : log_spaced_sizes(opt.min_lag, opt.max_lag, opt.lag_count)) {
    // Starting points spread evenly over the usable range [0, size - lag].
    const std::size_t span_limit = data.size() - lag;
    const std::size_t starts = std::min<std::size_t>(opt.partitions, span_limit + 1);
    for (std::size_t p = 0; p < starts; ++p) {
      const std::size_t start =
          (starts == 1) ? 0 : (span_limit * p) / (starts - 1);
      const double rs = rescaled_range(data, start, lag);
      if (rs > 0.0) result.points.push_back({lag, start, rs});
    }
  }
  VBR_ENSURE(!result.points.empty(), "R/S analysis produced no valid points");

  std::vector<double> lx;
  std::vector<double> ly;
  for (const auto& p : result.points) {
    if (p.lag < options.fit_min_lag) continue;
    lx.push_back(std::log10(static_cast<double>(p.lag)));
    ly.push_back(std::log10(p.rs));
  }
  VBR_ENSURE(lx.size() >= 3, "too few R/S points in the fit window");
  result.fit = linear_fit(lx, ly);
  result.hurst = result.fit.slope;
  VBR_CHECK_FINITE(result.hurst, "R/S Hurst estimate");
  return result;
}

RsResult rs_analysis_aggregated(std::span<const double> data, std::size_t m,
                                RsOptions options) {
  VBR_ENSURE(m >= 1, "aggregation level must be >= 1");
  const auto aggregated = block_means(data, m);
  // Scale the fit window to the aggregated time axis so the same physical
  // lag range is used.
  options.fit_min_lag = std::max<std::size_t>(2, options.fit_min_lag / m);
  options.min_lag = std::max<std::size_t>(2, options.min_lag / m);
  if (options.max_lag != 0) options.max_lag = std::max<std::size_t>(4, options.max_lag / m);
  return rs_analysis(aggregated, options);
}

RsSweepResult rs_sweep(std::span<const double> data,
                       std::span<const std::size_t> lag_counts,
                       std::span<const std::size_t> partition_counts,
                       const RsOptions& base) {
  VBR_ENSURE(!lag_counts.empty() && !partition_counts.empty(),
             "rs_sweep requires non-empty grids");
  RsSweepResult sweep;
  for (std::size_t lags : lag_counts) {
    for (std::size_t parts : partition_counts) {
      RsOptions opt = base;
      opt.lag_count = lags;
      opt.partitions = parts;
      sweep.estimates.push_back(rs_analysis(data, opt).hurst);
    }
  }
  const auto [lo, hi] = std::minmax_element(sweep.estimates.begin(), sweep.estimates.end());
  sweep.hurst_min = *lo;
  sweep.hurst_max = *hi;
  return sweep;
}

}  // namespace vbr::stats
