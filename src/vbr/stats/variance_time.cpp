#include "vbr/stats/variance_time.hpp"

#include <cmath>

#include "vbr/common/error.hpp"

namespace vbr::stats {

VarianceTimeResult variance_time(std::span<const double> data,
                                 const VarianceTimeOptions& options) {
  VBR_ENSURE(data.size() >= 100, "variance-time analysis needs a long series");
  check_finite_series(data, "variance_time input");
  VarianceTimeOptions opt = options;
  if (opt.max_m == 0) opt.max_m = data.size() / 10;
  VBR_ENSURE(opt.min_m >= 1 && opt.min_m < opt.max_m, "invalid block-size range");
  VBR_ENSURE(opt.max_m <= data.size() / 2, "max_m leaves too few blocks");

  const double base_variance = sample_variance(data);
  VBR_ENSURE(base_variance > 0.0, "variance-time analysis of a constant series");

  VarianceTimeResult result;
  for (std::size_t m : log_spaced_sizes(opt.min_m, opt.max_m, opt.grid_points)) {
    const auto blocks = block_means(data, m);
    if (blocks.size() < 2) break;
    result.points.push_back({m, sample_variance(blocks) / base_variance});
  }
  VBR_ENSURE(result.points.size() >= 3, "too few variance-time points");

  std::vector<double> lx;
  std::vector<double> ly;
  for (const auto& p : result.points) {
    if (p.m < opt.fit_min_m || p.normalized_variance <= 0.0) continue;
    lx.push_back(std::log10(static_cast<double>(p.m)));
    ly.push_back(std::log10(p.normalized_variance));
  }
  VBR_ENSURE(lx.size() >= 3, "too few points in the variance-time fit window");
  result.fit = linear_fit(lx, ly);
  result.beta = -result.fit.slope;
  result.hurst = 1.0 - result.beta / 2.0;
  VBR_CHECK_FINITE(result.hurst, "variance-time Hurst estimate");
  return result;
}

}  // namespace vbr::stats
