// Periodogram (empirical power spectral density), Fig. 8 and the input to
// the Whittle estimator.
//
// I(w_k) = |sum_t x_t e^{-i t w_k}|^2 / (2 pi n) at the Fourier frequencies
// w_k = 2 pi k / n, k = 1 .. floor((n-1)/2). Long-range dependence shows up
// as I(w) ~ w^{-alpha} as w -> 0.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace vbr::stats {

struct Periodogram {
  std::vector<double> frequency;  ///< angular frequencies w_k in (0, pi]
  std::vector<double> power;      ///< I(w_k)
};

/// Periodogram of the mean-centered data at the Fourier frequencies.
Periodogram periodogram(std::span<const double> data);

/// Average periodogram ordinates into log-spaced frequency bins (for
/// plotting; the raw periodogram is extremely noisy). Empty bins are
/// dropped.
Periodogram log_binned(const Periodogram& pg, std::size_t bins);

/// Estimate the low-frequency power-law exponent alpha from
/// I(w) ~ w^{-alpha}, regressing log power on log frequency over the lowest
/// `fraction` of frequencies. alpha > 0 indicates LRD; H = (1 + alpha) / 2.
double low_frequency_slope(const Periodogram& pg, double fraction = 0.1);

}  // namespace vbr::stats
