#include "vbr/stats/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <vector>

#include "vbr/common/error.hpp"
#include "vbr/common/math_util.hpp"
#include "vbr/common/special_functions.hpp"

namespace vbr::stats {
namespace {

struct Moments {
  double mean = 0.0;
  double variance = 0.0;
};

Moments sample_moments(std::span<const double> data) {
  VBR_ENSURE(data.size() >= 2, "fitting requires at least two samples");
  Moments m;
  m.mean = kahan_total(data) / static_cast<double>(data.size());
  KahanSum ss;
  for (double v : data) {
    const double d = v - m.mean;
    ss.add(d * d);
  }
  m.variance = ss.value() / static_cast<double>(data.size() - 1);
  return m;
}

}  // namespace

double Distribution::sample(Rng& rng) const {
  double u = rng.uniform();
  while (u <= 0.0 || u >= 1.0) u = rng.uniform();
  return quantile(u);
}

// ---------------------------------------------------------------- Normal

NormalDistribution::NormalDistribution(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  VBR_ENSURE(sigma > 0.0, "Normal sigma must be positive");
}

double NormalDistribution::pdf(double x) const {
  const double z = (x - mu_) / sigma_;
  return std::exp(-0.5 * z * z) / (sigma_ * std::sqrt(2.0 * std::numbers::pi));
}

double NormalDistribution::cdf(double x) const { return normal_cdf((x - mu_) / sigma_); }

double NormalDistribution::quantile(double p) const {
  VBR_ENSURE(p > 0.0 && p < 1.0, "Normal quantile requires p in (0, 1)");
  return mu_ + sigma_ * normal_quantile(p);
}

double NormalDistribution::sample(Rng& rng) const { return rng.normal(mu_, sigma_); }

NormalDistribution NormalDistribution::fit(std::span<const double> data) {
  const auto m = sample_moments(data);
  VBR_ENSURE(m.variance > 0.0, "Normal fit requires non-degenerate data");
  return NormalDistribution(m.mean, std::sqrt(m.variance));
}

// ----------------------------------------------------------------- Gamma

GammaDistribution::GammaDistribution(double shape, double rate) : shape_(shape), rate_(rate) {
  VBR_ENSURE(shape > 0.0 && rate > 0.0, "Gamma parameters must be positive");
}

double GammaDistribution::pdf(double x) const {
  if (x <= 0.0) return 0.0;
  const double lx = rate_ * x;
  return std::exp(-lx + (shape_ - 1.0) * std::log(lx) + std::log(rate_) - log_gamma(shape_));
}

double GammaDistribution::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return gamma_p(shape_, rate_ * x);
}

double GammaDistribution::quantile(double p) const {
  VBR_ENSURE(p >= 0.0 && p < 1.0, "Gamma quantile requires p in [0, 1)");
  return gamma_p_inverse(shape_, p) / rate_;
}

double GammaDistribution::sample(Rng& rng) const { return rng.gamma(shape_, 1.0 / rate_); }

GammaDistribution GammaDistribution::fit_moments(double mean, double variance) {
  VBR_ENSURE(mean > 0.0 && variance > 0.0, "Gamma moment fit requires positive mean/variance");
  return GammaDistribution(mean * mean / variance, mean / variance);
}

GammaDistribution GammaDistribution::fit(std::span<const double> data) {
  const auto m = sample_moments(data);
  return fit_moments(m.mean, m.variance);
}

// ------------------------------------------------------------- Lognormal

LognormalDistribution::LognormalDistribution(double mu_log, double sigma_log)
    : mu_log_(mu_log), sigma_log_(sigma_log) {
  VBR_ENSURE(sigma_log > 0.0, "Lognormal sigma must be positive");
}

double LognormalDistribution::pdf(double x) const {
  if (x <= 0.0) return 0.0;
  const double z = (std::log(x) - mu_log_) / sigma_log_;
  return std::exp(-0.5 * z * z) / (x * sigma_log_ * std::sqrt(2.0 * std::numbers::pi));
}

double LognormalDistribution::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return normal_cdf((std::log(x) - mu_log_) / sigma_log_);
}

double LognormalDistribution::quantile(double p) const {
  VBR_ENSURE(p > 0.0 && p < 1.0, "Lognormal quantile requires p in (0, 1)");
  return std::exp(mu_log_ + sigma_log_ * normal_quantile(p));
}

double LognormalDistribution::sample(Rng& rng) const {
  return std::exp(rng.normal(mu_log_, sigma_log_));
}

double LognormalDistribution::mean() const {
  return std::exp(mu_log_ + 0.5 * sigma_log_ * sigma_log_);
}

double LognormalDistribution::variance() const {
  const double s2 = sigma_log_ * sigma_log_;
  return (std::exp(s2) - 1.0) * std::exp(2.0 * mu_log_ + s2);
}

LognormalDistribution LognormalDistribution::fit(std::span<const double> data) {
  std::vector<double> logs;
  logs.reserve(data.size());
  for (double v : data) {
    VBR_ENSURE(v > 0.0, "Lognormal fit requires positive data");
    logs.push_back(std::log(v));
  }
  const auto m = sample_moments(logs);
  VBR_ENSURE(m.variance > 0.0, "Lognormal fit requires non-degenerate data");
  return LognormalDistribution(m.mean, std::sqrt(m.variance));
}

// ---------------------------------------------------------------- Pareto

ParetoDistribution::ParetoDistribution(double k, double a) : k_(k), a_(a) {
  VBR_ENSURE(k > 0.0 && a > 0.0, "Pareto parameters must be positive");
}

double ParetoDistribution::pdf(double x) const {
  if (x <= k_) return 0.0;
  return a_ * std::pow(k_, a_) / std::pow(x, a_ + 1.0);
}

double ParetoDistribution::cdf(double x) const {
  if (x <= k_) return 0.0;
  return 1.0 - std::pow(k_ / x, a_);
}

double ParetoDistribution::quantile(double p) const {
  VBR_ENSURE(p >= 0.0 && p < 1.0, "Pareto quantile requires p in [0, 1)");
  return k_ / std::pow(1.0 - p, 1.0 / a_);
}

double ParetoDistribution::sample(Rng& rng) const { return rng.pareto(k_, a_); }

double ParetoDistribution::mean() const {
  if (a_ <= 1.0) return std::numeric_limits<double>::infinity();
  return a_ * k_ / (a_ - 1.0);
}

double ParetoDistribution::variance() const {
  if (a_ <= 2.0) return std::numeric_limits<double>::infinity();
  return a_ * k_ * k_ / ((a_ - 1.0) * (a_ - 1.0) * (a_ - 2.0));
}

ParetoDistribution ParetoDistribution::fit_tail(std::span<const double> data,
                                                double tail_fraction) {
  VBR_ENSURE(tail_fraction > 0.0 && tail_fraction < 1.0,
             "tail_fraction must be in (0, 1)");
  std::vector<double> sorted(data.begin(), data.end());
  std::sort(sorted.begin(), sorted.end());
  const auto n = sorted.size();
  const auto tail_count =
      std::max<std::size_t>(10, static_cast<std::size_t>(tail_fraction * static_cast<double>(n)));
  VBR_ENSURE(tail_count < n, "tail larger than sample");

  // Regress log CCDF on log x over the upper-order statistics, skipping the
  // very last few points where the empirical CCDF is noisiest.
  std::vector<double> lx;
  std::vector<double> lp;
  const std::size_t skip_extreme = std::max<std::size_t>(2, tail_count / 100);
  for (std::size_t i = n - tail_count; i + skip_extreme < n; ++i) {
    const double x = sorted[i];
    if (x <= 0.0) continue;
    const double ccdf =
        static_cast<double>(n - (i + 1)) / static_cast<double>(n);
    if (ccdf <= 0.0) continue;
    lx.push_back(std::log(x));
    lp.push_back(std::log(ccdf));
  }
  VBR_ENSURE(lx.size() >= 3, "too few tail points for Pareto fit");
  const LinearFit fit = linear_fit(lx, lp);
  const double a = -fit.slope;
  VBR_ENSURE(a > 0.0, "Pareto tail fit produced a non-positive index");
  // log CCDF = a log k - a log x  =>  log k = intercept / a.
  const double k = std::exp(fit.intercept / a);
  return ParetoDistribution(k, a);
}

}  // namespace vbr::stats
