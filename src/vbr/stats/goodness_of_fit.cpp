#include "vbr/stats/goodness_of_fit.hpp"

#include <algorithm>
#include <cmath>

#include "vbr/common/error.hpp"
#include "vbr/common/math_util.hpp"
#include "vbr/common/special_functions.hpp"

namespace vbr::stats {

double kolmogorov_survival(double t) {
  if (t <= 0.0) return 1.0;
  // Q(t) = 2 sum_{k>=1} (-1)^{k-1} exp(-2 k^2 t^2); converges very fast.
  double sum = 0.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * t * t);
    sum += ((k % 2 == 1) ? term : -term);
    if (term < 1e-16) break;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

KsResult ks_test(std::span<const double> data, const Distribution& model) {
  VBR_ENSURE(data.size() >= 8, "KS test needs a reasonable sample");
  std::vector<double> sorted(data.begin(), data.end());
  std::sort(sorted.begin(), sorted.end());

  KsResult result;
  const auto n = static_cast<double>(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double f = model.cdf(sorted[i]);
    const double upper = (static_cast<double>(i) + 1.0) / n - f;  // F_n jumps to (i+1)/n
    const double lower = f - static_cast<double>(i) / n;          // just before the jump
    const double d = std::max(upper, lower);
    if (d > result.statistic) {
      result.statistic = d;
      result.location = sorted[i];
    }
  }
  const double t = (std::sqrt(n) + 0.12 + 0.11 / std::sqrt(n)) * result.statistic;
  result.p_value = kolmogorov_survival(t);
  return result;
}

ChiSquareResult chi_square_test(std::span<const double> data, const Distribution& model,
                                std::size_t bins, std::size_t fitted_params) {
  VBR_ENSURE(bins >= 3, "chi-square needs at least three bins");
  VBR_ENSURE(data.size() >= bins * 5, "expected counts below 5; use fewer bins");
  VBR_ENSURE(bins > fitted_params + 1, "not enough bins for the fitted parameters");

  // Equal-probability bin edges from the model's quantiles.
  std::vector<std::size_t> counts(bins, 0);
  std::vector<double> edges(bins - 1);
  for (std::size_t b = 1; b < bins; ++b) {
    edges[b - 1] = model.quantile(static_cast<double>(b) / static_cast<double>(bins));
  }
  for (double v : data) {
    const auto it = std::upper_bound(edges.begin(), edges.end(), v);
    ++counts[static_cast<std::size_t>(it - edges.begin())];
  }

  ChiSquareResult result;
  result.bins = bins;
  result.degrees_of_freedom = bins - 1 - fitted_params;
  const double expected = static_cast<double>(data.size()) / static_cast<double>(bins);
  KahanSum stat;
  for (std::size_t b = 0; b < bins; ++b) {
    const double d = static_cast<double>(counts[b]) - expected;
    stat.add(d * d / expected);
  }
  result.statistic = stat.value();
  // Upper tail of chi^2_k: Q(k/2, x/2).
  result.p_value =
      gamma_q(static_cast<double>(result.degrees_of_freedom) / 2.0, result.statistic / 2.0);
  return result;
}

QqPlot qq_plot(std::span<const double> data, const Distribution& model, std::size_t count) {
  VBR_ENSURE(count >= 2, "Q-Q plot needs at least two points");
  std::vector<double> sorted(data.begin(), data.end());
  std::sort(sorted.begin(), sorted.end());

  QqPlot plot;
  plot.probability.reserve(count);
  plot.model_quantile.reserve(count);
  plot.empirical_quantile.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    // Probability grid avoiding 0 and 1.
    const double p = (static_cast<double>(i) + 0.5) / static_cast<double>(count);
    plot.probability.push_back(p);
    plot.model_quantile.push_back(model.quantile(p));
    plot.empirical_quantile.push_back(percentile(sorted, p));
  }
  return plot;
}

}  // namespace vbr::stats
