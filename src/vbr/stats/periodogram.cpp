#include "vbr/stats/periodogram.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <numbers>

#include "vbr/common/error.hpp"
#include "vbr/common/fft.hpp"
#include "vbr/common/math_util.hpp"

namespace vbr::stats {

Periodogram periodogram(std::span<const double> data) {
  const std::size_t n = data.size();
  VBR_ENSURE(n >= 4, "periodogram requires at least four samples");
  check_finite_series(data, "periodogram input");
  const double mean = kahan_total(data) / static_cast<double>(n);

  // Real input: rfft() returns the n/2 + 1 non-redundant coefficients,
  // which cover every ordinate k = 1..(n-1)/2 used below at half the cost
  // of the complex transform.
  std::vector<double> centered(n);
  for (std::size_t i = 0; i < n; ++i) centered[i] = data[i] - mean;
  const auto buf = rfft(centered);

  const std::size_t half = (n - 1) / 2;
  Periodogram pg;
  pg.frequency.reserve(half);
  pg.power.reserve(half);
  const double norm = 1.0 / (2.0 * std::numbers::pi * static_cast<double>(n));
  for (std::size_t k = 1; k <= half; ++k) {
    pg.frequency.push_back(2.0 * std::numbers::pi * static_cast<double>(k) /
                           static_cast<double>(n));
    VBR_DCHECK(std::isfinite(std::norm(buf[k])), "non-finite periodogram ordinate");
    pg.power.push_back(std::norm(buf[k]) * norm);
  }
  return pg;
}

Periodogram log_binned(const Periodogram& pg, std::size_t bins) {
  VBR_ENSURE(bins >= 2, "log binning requires at least two bins");
  VBR_ENSURE(!pg.frequency.empty(), "empty periodogram");
  const double lo = pg.frequency.front();
  const double hi = pg.frequency.back();
  const double llo = std::log(lo);
  const double lhi = std::log(hi);

  std::vector<double> freq_sum(bins, 0.0);
  std::vector<double> power_sum(bins, 0.0);
  std::vector<std::size_t> count(bins, 0);
  for (std::size_t i = 0; i < pg.frequency.size(); ++i) {
    double t = (std::log(pg.frequency[i]) - llo) / (lhi - llo);
    t = std::clamp(t, 0.0, 1.0);
    auto b = static_cast<std::size_t>(t * static_cast<double>(bins));
    if (b == bins) b = bins - 1;
    freq_sum[b] += pg.frequency[i];
    power_sum[b] += pg.power[i];
    ++count[b];
  }

  Periodogram out;
  for (std::size_t b = 0; b < bins; ++b) {
    if (count[b] == 0) continue;
    out.frequency.push_back(freq_sum[b] / static_cast<double>(count[b]));
    out.power.push_back(power_sum[b] / static_cast<double>(count[b]));
  }
  return out;
}

double low_frequency_slope(const Periodogram& pg, double fraction) {
  VBR_ENSURE(fraction > 0.0 && fraction <= 1.0, "fraction must be in (0, 1]");
  const auto take = std::max<std::size_t>(
      8, static_cast<std::size_t>(fraction * static_cast<double>(pg.frequency.size())));
  VBR_ENSURE(take <= pg.frequency.size(), "not enough periodogram ordinates");

  std::vector<double> lx;
  std::vector<double> ly;
  lx.reserve(take);
  ly.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    if (pg.power[i] <= 0.0) continue;
    lx.push_back(std::log(pg.frequency[i]));
    ly.push_back(std::log(pg.power[i]));
  }
  VBR_ENSURE(lx.size() >= 3, "too few positive periodogram ordinates");
  return -linear_fit(lx, ly).slope;
}

}  // namespace vbr::stats
