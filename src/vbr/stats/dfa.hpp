// Detrended fluctuation analysis (DFA-1), a further Hurst estimator.
//
// Not in the 1994 paper (it was introduced the same year by Peng et al.),
// but now a standard member of the estimator battery next to variance-time,
// R/S and Whittle: integrate the centered series, split into boxes of size
// s, remove a per-box linear trend, and measure the RMS residual F(s).
// For self-similar input F(s) ~ s^H, and unlike variance-time/R-S the
// detrending makes the estimate robust to slow deterministic drifts.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "vbr/common/math_util.hpp"

namespace vbr::stats {

struct DfaPoint {
  std::size_t box_size = 0;
  double fluctuation = 0.0;  ///< F(s)
};

struct DfaOptions {
  std::size_t min_box = 8;
  /// Largest box; 0 means n/8 (at least 8 boxes per size).
  std::size_t max_box = 0;
  std::size_t grid_points = 25;
  /// Fit window: boxes >= fit_min_box enter the slope regression (short
  /// boxes carry the short-range structure, as with the other estimators).
  std::size_t fit_min_box = 8;
};

struct DfaResult {
  std::vector<DfaPoint> points;
  LinearFit fit;       ///< log10 F on log10 s over the fit window
  double hurst = 0.5;  ///< the fitted slope
};

/// DFA-1 of a stationary series (fGn-like input: slope ~ H).
DfaResult dfa(std::span<const double> data, const DfaOptions& options = {});

}  // namespace vbr::stats
