// Confidence intervals for the mean under i.i.d./SRD vs. LRD assumptions
// (Section 3.2.1, Fig. 9).
//
// The conventional 95% CI for a mean, +-1.96 s / sqrt(n), assumes the
// variance of the sample mean decays like 1/n. Under long-range dependence
// Var(mean of n) ~ sigma^2 n^{2H-2}, which shrinks much more slowly; the
// i.i.d. interval is therefore badly overconfident — the paper's Fig. 9
// shows the final mean falling outside most of the i.i.d. intervals.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace vbr::stats {

struct MeanCiPoint {
  std::size_t n = 0;          ///< number of leading observations used
  double mean = 0.0;          ///< sample mean of the first n observations
  double iid_halfwidth = 0.0; ///< z * s / sqrt(n)
  double lrd_halfwidth = 0.0; ///< z * s * n^{H-1}
};

/// Estimates of the mean from the first n observations for each n in `ns`,
/// with both i.i.d. and LRD-corrected 95% half-widths (z = 1.96). The
/// standard deviation used is the running sample deviation of the prefix.
std::vector<MeanCiPoint> running_mean_ci(std::span<const double> data,
                                         std::span<const std::size_t> ns, double hurst);

/// Fraction of prefix intervals that contain the full-sample mean —
/// a one-number summary of Fig. 9's message.
struct CoverageSummary {
  double iid_coverage = 0.0;
  double lrd_coverage = 0.0;
};
CoverageSummary ci_coverage(const std::vector<MeanCiPoint>& points, double final_mean);

}  // namespace vbr::stats
