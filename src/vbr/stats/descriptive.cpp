#include "vbr/stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "vbr/common/error.hpp"
#include "vbr/common/math_util.hpp"

namespace vbr::stats {

BatchMoments batch_moments(std::span<const double> data) {
  VBR_ENSURE(data.size() >= 4, "batch_moments requires at least 4 samples");
  BatchMoments out;
  out.count = data.size();
  const double n = static_cast<double>(data.size());
  out.mean = kahan_total(data) / n;
  out.min = data[0];
  out.max = data[0];
  KahanSum m2;
  KahanSum m3;
  KahanSum m4;
  for (double v : data) {
    out.min = std::min(out.min, v);
    out.max = std::max(out.max, v);
    const double d = v - out.mean;
    const double d2 = d * d;
    m2.add(d2);
    m3.add(d2 * d);
    m4.add(d2 * d2);
  }
  VBR_ENSURE(m2.value() > 0.0, "batch_moments requires a non-constant series");
  out.variance = m2.value() / (n - 1.0);
  out.skewness = std::sqrt(n) * m3.value() / std::pow(m2.value(), 1.5);
  out.excess_kurtosis = n * m4.value() / (m2.value() * m2.value()) - 3.0;
  return out;
}

double Histogram::bin_width() const {
  return (hi - lo) / static_cast<double>(counts.size());
}

double Histogram::bin_center(std::size_t i) const {
  return lo + (static_cast<double>(i) + 0.5) * bin_width();
}

double Histogram::density(std::size_t i) const {
  if (total == 0) return 0.0;
  return static_cast<double>(counts[i]) / (static_cast<double>(total) * bin_width());
}

double Histogram::mass(std::size_t i) const {
  if (total == 0) return 0.0;
  return static_cast<double>(counts[i]) / static_cast<double>(total);
}

Histogram make_histogram(std::span<const double> data, std::size_t bins, double lo, double hi) {
  VBR_ENSURE(bins >= 1, "histogram needs at least one bin");
  VBR_ENSURE(lo < hi, "histogram range must be non-empty");
  Histogram h;
  h.lo = lo;
  h.hi = hi;
  h.counts.assign(bins, 0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double v : data) {
    auto idx = static_cast<std::ptrdiff_t>(std::floor((v - lo) / width));
    idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(bins) - 1);
    ++h.counts[static_cast<std::size_t>(idx)];
  }
  h.total = data.size();
  return h;
}

Histogram make_histogram(std::span<const double> data, std::size_t bins) {
  VBR_ENSURE(!data.empty(), "histogram requires data");
  const auto [lo_it, hi_it] = std::minmax_element(data.begin(), data.end());
  double lo = *lo_it;
  double hi = *hi_it;
  if (lo == hi) hi = lo + 1.0;  // degenerate data: one-unit-wide bin
  return make_histogram(data, bins, lo, hi);
}

Ecdf::Ecdf(std::span<const double> data) : sorted_(data.begin(), data.end()) {
  VBR_ENSURE(!sorted_.empty(), "Ecdf requires a non-empty sample");
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::cdf(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double Ecdf::quantile(double q) const { return percentile(sorted_, q); }

Ecdf::Curve Ecdf::ccdf_curve(std::size_t count) const {
  VBR_ENSURE(count >= 2, "curve requires at least two points");
  Curve curve;
  const double lo = std::max(sorted_.front(), 1e-12);
  const double hi = sorted_.back();
  if (hi <= lo) return curve;
  for (double x : log_spaced(lo, hi, count)) {
    const double p = ccdf(x);
    if (p > 0.0) {
      curve.x.push_back(x);
      curve.p.push_back(p);
    }
  }
  return curve;
}

Ecdf::Curve Ecdf::cdf_curve(std::size_t count) const {
  VBR_ENSURE(count >= 2, "curve requires at least two points");
  Curve curve;
  const double lo = std::max(sorted_.front(), 1e-12);
  const double hi = sorted_.back();
  if (hi <= lo) return curve;
  for (double x : log_spaced(lo, hi, count)) {
    const double p = cdf(x);
    if (p > 0.0) {
      curve.x.push_back(x);
      curve.p.push_back(p);
    }
  }
  return curve;
}

}  // namespace vbr::stats
