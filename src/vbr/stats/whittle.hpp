// Whittle's approximate maximum likelihood estimator of H
// (Section 3.2.3, Table 3 row 5).
//
// The periodogram ordinates I(w_k) of a Gaussian LRD process are
// approximately independent exponentials with mean f(w_k; H), so minimizing
// the Whittle functional
//     Q(H) = sum_k [ log f(w_k; H) + I(w_k) / f(w_k; H) ]
// gives an asymptotically Normal, efficient estimate with a closed-form
// variance — the only estimator here that comes with confidence intervals.
// The spectral shape used is the fractional ARIMA(0, d, 0) density
// f(w) ~ |2 sin(w/2)|^{1-2H}, the model of Section 4.1.
//
// As in the paper, the estimator is usually combined with aggregation: H is
// estimated on X^(m) for increasing m so that short-range structure (which
// the pure fARIMA(0,d,0) shape does not model) is filtered out.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace vbr::stats {

/// Which spectral density the Whittle functional is minimized against.
enum class SpectralModel {
  kFarima,  ///< fARIMA(0, d, 0): |2 sin(w/2)|^{1-2H} — the paper's model
  kFgn,     ///< exact fGn density (aliased power-law sum); unbiased on fGn data
};

/// fARIMA(0, d, 0) spectral shape |2 sin(w/2)|^{1-2H} (unit scale).
double farima_spectral_shape(double angular_frequency, double hurst);

/// fGn spectral shape: 2(1 - cos w) * sum_j |w + 2 pi j|^{-2H-1}
/// (unit scale; truncated aliasing sum with an integral tail correction).
double fgn_spectral_shape(double angular_frequency, double hurst);

struct WhittleResult {
  double hurst = 0.5;
  double stderr_hurst = 0.0;  ///< asymptotic sd: sqrt(6 / (pi^2 n))
  double ci_low = 0.0;        ///< 95% interval
  double ci_high = 0.0;
  double innovation_scale = 0.0;  ///< fitted sigma^2 scale factor
  std::size_t n = 0;              ///< observations used
};

/// Whittle estimate of H on the raw series.
WhittleResult whittle_estimate(std::span<const double> data,
                               SpectralModel model = SpectralModel::kFarima);

/// Robinson's local (semiparametric, Gaussian) Whittle estimator: uses only
/// the lowest `frequencies` periodogram ordinates with the pure power-law
/// shape f(w) ~ w^{1-2H}, making no assumption about the short-range
/// spectrum at all — a natural companion to the paper's aggregated-Whittle
/// procedure. frequencies = 0 picks the customary n^0.65 bandwidth.
/// Asymptotic sd: 1 / (2 sqrt(m)).
WhittleResult local_whittle_estimate(std::span<const double> data,
                                     std::size_t frequencies = 0);

/// Whittle estimate on each aggregated series X^(m) for the given levels
/// ("method of aggregation" combined with Whittle; the paper reads off the
/// estimate at m ~ 700 where the CI-vs-bias tradeoff stabilizes).
///
/// The default spectral model here is fGn, not fARIMA: aggregating any
/// self-similar process drives it toward fractional Gaussian noise, so the
/// fGn density is the asymptotically correct model for X^(m) — fitting the
/// fARIMA shape to aggregated data biases H upward.
struct AggregatedWhittlePoint {
  std::size_t m = 0;
  WhittleResult result;
};
std::vector<AggregatedWhittlePoint> whittle_aggregated(std::span<const double> data,
                                                       std::span<const std::size_t> levels,
                                                       SpectralModel model = SpectralModel::kFgn);

}  // namespace vbr::stats
