// Descriptive statistics: histograms, empirical CDF/CCDF and quantiles.
//
// These back the paper's distributional exhibits: Fig. 3 (per-segment
// bandwidth histograms), Figs. 4-5 (log-log complementary CDF / left-tail
// CDF) and Fig. 6 (probability density vs. the Gamma/Pareto model).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace vbr::stats {

/// Batch central-moment summary: the two-pass reference against which the
/// one-pass streaming estimators (vbr::stream::StreamingMoments) are
/// cross-checked. Definitions match the streaming accessors exactly:
/// unbiased (n-1) variance, g1 skewness, excess kurtosis.
struct BatchMoments {
  std::size_t count = 0;
  double mean = 0.0;
  double variance = 0.0;         ///< unbiased, n-1
  double skewness = 0.0;         ///< sqrt(n) m3 / m2^{3/2}
  double excess_kurtosis = 0.0;  ///< n m4 / m2^2 - 3
  double min = 0.0;
  double max = 0.0;
};

/// Two-pass batch moments; requires at least 4 samples and a non-constant
/// series.
BatchMoments batch_moments(std::span<const double> data);

/// Fixed-width histogram over [lo, hi).
struct Histogram {
  double lo = 0.0;
  double hi = 1.0;
  std::vector<std::size_t> counts;   ///< per-bin counts; out-of-range clamped to edge bins
  std::size_t total = 0;

  double bin_width() const;
  double bin_center(std::size_t i) const;
  /// Probability density estimate for bin i (count / (total * width)).
  double density(std::size_t i) const;
  /// Bin probability mass (count / total).
  double mass(std::size_t i) const;
};

/// Build a histogram with `bins` equal-width bins spanning [lo, hi).
/// Values outside the range are counted in the first/last bin.
Histogram make_histogram(std::span<const double> data, std::size_t bins, double lo, double hi);

/// Build a histogram spanning the data range.
Histogram make_histogram(std::span<const double> data, std::size_t bins);

/// Empirical distribution of a sample; keeps a sorted copy.
class Ecdf {
 public:
  explicit Ecdf(std::span<const double> data);

  std::size_t size() const { return sorted_.size(); }
  const std::vector<double>& sorted() const { return sorted_; }

  /// P(X <= x).
  double cdf(double x) const;
  /// P(X > x).
  double ccdf(double x) const { return 1.0 - cdf(x); }
  /// Order-statistic quantile with linear interpolation, q in [0, 1].
  double quantile(double q) const;

  /// Evaluation points for a log-log CCDF plot: `count` x-values log-spaced
  /// across the positive part of the sample range, paired with P(X > x).
  /// Points with empirical CCDF exactly 0 are dropped (log-plot friendly).
  struct Curve {
    std::vector<double> x;
    std::vector<double> p;
  };
  Curve ccdf_curve(std::size_t count) const;
  /// Same for the left tail: P(X <= x) over log-spaced x (Fig. 5).
  Curve cdf_curve(std::size_t count) const;

 private:
  std::vector<double> sorted_;
};

}  // namespace vbr::stats
