#include "vbr/stats/gamma_pareto.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "vbr/common/error.hpp"
#include "vbr/common/fft.hpp"
#include "vbr/common/math_util.hpp"
#include "vbr/common/special_functions.hpp"

namespace vbr::stats {
namespace {

// Local magnitude of the log-log slope of the Gamma CCDF:
//   -(d log Q / d log x) = x * f(x) / Q(x).
// This grows without bound (~ lambda * x), so for any target tail slope a
// there is a unique matching point beyond which the Gamma tail is steeper
// than the Pareto tail.
double gamma_ccdf_loglog_slope(const GammaDistribution& g, double x) {
  const double q = 1.0 - g.cdf(x);
  if (q <= 0.0) return std::numeric_limits<double>::infinity();
  return x * g.pdf(x) / q;
}

}  // namespace

namespace {

const GammaParetoParams& checked(const GammaParetoParams& params) {
  VBR_ENSURE(params.mu_gamma > 0.0, "mu_Gamma must be positive");
  VBR_ENSURE(params.sigma_gamma > 0.0, "sigma_Gamma must be positive");
  VBR_ENSURE(params.tail_slope > 0.0, "tail slope m_T must be positive");
  return params;
}

}  // namespace

GammaParetoDistribution::GammaParetoDistribution(const GammaParetoParams& params)
    : params_(checked(params)),
      gamma_(GammaDistribution::fit_moments(params.mu_gamma,
                                            params.sigma_gamma * params.sigma_gamma)),
      pareto_(1.0, 1.0) /* replaced below once x_th is known */ {

  // Locate x_th: the point where the Gamma CCDF's log-log slope equals the
  // Pareto tail slope. Bracket then bisect; the slope function is increasing
  // in the region of interest.
  const double target = params_.tail_slope;
  double lo = params_.mu_gamma;
  double hi = params_.mu_gamma + 2.0 * params_.sigma_gamma;
  // The slope at the mean can already exceed the target for steep tails;
  // widen the bracket downward to a tiny quantile if needed.
  while (gamma_ccdf_loglog_slope(gamma_, lo) > target && lo > 1e-9 * params_.mu_gamma) {
    lo *= 0.5;
  }
  while (gamma_ccdf_loglog_slope(gamma_, hi) < target) {
    hi *= 2.0;
    VBR_ENSURE(hi < 1e9 * params_.mu_gamma, "failed to bracket Gamma/Pareto splice point");
  }
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (gamma_ccdf_loglog_slope(gamma_, mid) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  x_th_ = 0.5 * (lo + hi);
  p_th_ = gamma_.cdf(x_th_);

  // Position match: choose k so the Pareto CCDF equals the Gamma CCDF at x_th.
  const double q_th = 1.0 - p_th_;
  VBR_ENSURE(q_th > 0.0 && q_th < 1.0, "degenerate splice point");
  const double k = x_th_ * std::pow(q_th, 1.0 / target);
  pareto_ = ParetoDistribution(k, target);
}

double GammaParetoDistribution::pdf(double x) const {
  if (x <= x_th_) return gamma_.pdf(x);
  return pareto_.pdf(x);
}

double GammaParetoDistribution::cdf(double x) const {
  if (x <= x_th_) return gamma_.cdf(x);
  return pareto_.cdf(x);
}

double GammaParetoDistribution::quantile(double p) const {
  VBR_ENSURE(p >= 0.0 && p < 1.0, "quantile requires p in [0, 1)");
  if (p <= p_th_) return gamma_.quantile(p);
  return pareto_.quantile(p);
}

double GammaParetoDistribution::mean() const {
  const double s = gamma_.shape();
  const double lambda = gamma_.rate();
  const double a = pareto_.a();
  const double k = pareto_.k();
  // E[X; X <= x_th] for the Gamma piece.
  const double body = (s / lambda) * gamma_p(s + 1.0, lambda * x_th_);
  if (a <= 1.0) return std::numeric_limits<double>::infinity();
  // Integral of x * a k^a x^{-a-1} over (x_th, inf).
  const double tail = a * std::pow(k, a) / (a - 1.0) * std::pow(x_th_, 1.0 - a);
  return body + tail;
}

double GammaParetoDistribution::variance() const {
  const double s = gamma_.shape();
  const double lambda = gamma_.rate();
  const double a = pareto_.a();
  const double k = pareto_.k();
  if (a <= 2.0) return std::numeric_limits<double>::infinity();
  const double m1 = mean();
  const double body2 = (s * (s + 1.0) / (lambda * lambda)) * gamma_p(s + 2.0, lambda * x_th_);
  const double tail2 = a * std::pow(k, a) / (a - 2.0) * std::pow(x_th_, 2.0 - a);
  return body2 + tail2 - m1 * m1;
}

GammaParetoParams GammaParetoDistribution::fit(std::span<const double> data,
                                               double tail_fraction) {
  VBR_ENSURE(data.size() >= 100, "Gamma/Pareto fit needs a reasonably large sample");
  GammaParetoParams p;
  p.mu_gamma = kahan_total(data) / static_cast<double>(data.size());
  KahanSum ss;
  for (double v : data) {
    const double d = v - p.mu_gamma;
    ss.add(d * d);
  }
  p.sigma_gamma = std::sqrt(ss.value() / static_cast<double>(data.size() - 1));
  p.tail_slope = ParetoDistribution::fit_tail(data, tail_fraction).a();
  return p;
}

// ------------------------------------------------------- TabulatedDistribution

TabulatedDistribution::TabulatedDistribution(const Distribution& dist, double lo, double hi,
                                             std::size_t points) {
  VBR_ENSURE(points >= 16, "tabulation needs at least 16 points");
  VBR_ENSURE(lo < hi, "tabulation range must be non-empty");
  lo_ = lo;
  hi_ = hi;
  step_ = (hi - lo) / static_cast<double>(points);
  pmf_.resize(points);
  // Cell mass from CDF differences (exact binning of the continuous law).
  double prev = dist.cdf(lo);
  for (std::size_t i = 0; i < points; ++i) {
    const double right = dist.cdf(lo + static_cast<double>(i + 1) * step_);
    pmf_[i] = std::max(0.0, right - prev);
    prev = right;
  }
  // Fold the off-grid mass into the edge cells so the table is a proper law.
  const double total = kahan_total(pmf_);
  if (total > 0.0 && total < 1.0) {
    pmf_.front() += dist.cdf(lo);
    pmf_.back() += 1.0 - dist.cdf(hi);
  }
  rebuild_cdf();
}

void TabulatedDistribution::rebuild_cdf() {
  cdf_.resize(pmf_.size());
  KahanSum sum;
  for (std::size_t i = 0; i < pmf_.size(); ++i) {
    sum.add(pmf_[i]);
    cdf_[i] = sum.value();
  }
  // Normalize away accumulated numerical drift.
  const double total = cdf_.back();
  VBR_ENSURE(total > 0.0, "tabulated distribution has no mass");
  for (auto& v : pmf_) v /= total;
  for (auto& v : cdf_) v /= total;
}

TabulatedDistribution TabulatedDistribution::convolve_power(std::size_t n) const {
  VBR_ENSURE(n >= 1, "convolution power must be >= 1");
  if (n == 1) return *this;

  const std::size_t m = pmf_.size();
  const std::size_t out_len = n * (m - 1) + 1;
  const std::size_t fft_len = next_power_of_two(out_len);

  std::vector<std::complex<double>> spec(fft_len, {0.0, 0.0});
  for (std::size_t i = 0; i < m; ++i) spec[i] = pmf_[i];
  fft(spec);
  for (auto& v : spec) v = std::pow(v, static_cast<double>(n));
  ifft(spec);

  TabulatedDistribution out;
  out.lo_ = lo_ * static_cast<double>(n);
  out.step_ = step_;
  out.hi_ = out.lo_ + static_cast<double>(out_len) * step_;
  out.pmf_.resize(out_len);
  for (std::size_t i = 0; i < out_len; ++i) out.pmf_[i] = std::max(0.0, spec[i].real());
  out.rebuild_cdf();
  return out;
}

double TabulatedDistribution::pdf(double x) const {
  if (x < lo_ || x >= hi_) return 0.0;
  const auto idx = static_cast<std::size_t>((x - lo_) / step_);
  return pmf_[std::min(idx, pmf_.size() - 1)] / step_;
}

double TabulatedDistribution::cdf(double x) const {
  if (x < lo_) return 0.0;
  if (x >= hi_) return 1.0;
  const double pos = (x - lo_) / step_;
  const auto idx = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(idx);
  const double left = (idx == 0) ? 0.0 : cdf_[idx - 1];
  return left + frac * (cdf_[std::min(idx, cdf_.size() - 1)] - left);
}

double TabulatedDistribution::quantile(double p) const {
  VBR_ENSURE(p >= 0.0 && p <= 1.0, "quantile requires p in [0, 1]");
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), p);
  if (it == cdf_.end()) return hi_;
  const auto idx = static_cast<std::size_t>(it - cdf_.begin());
  const double right = cdf_[idx];
  const double left = (idx == 0) ? 0.0 : cdf_[idx - 1];
  const double frac = (right > left) ? (p - left) / (right - left) : 0.0;
  return lo_ + (static_cast<double>(idx) + frac) * step_;
}

double TabulatedDistribution::mean() const {
  KahanSum sum;
  for (std::size_t i = 0; i < pmf_.size(); ++i) {
    sum.add(pmf_[i] * (lo_ + (static_cast<double>(i) + 0.5) * step_));
  }
  return sum.value();
}

double TabulatedDistribution::partial_expectation_above(double threshold) const {
  KahanSum sum;
  for (std::size_t i = 0; i < pmf_.size(); ++i) {
    const double x = lo_ + (static_cast<double>(i) + 0.5) * step_;
    if (x > threshold) sum.add(pmf_[i] * (x - threshold));
  }
  return sum.value();
}

}  // namespace vbr::stats
