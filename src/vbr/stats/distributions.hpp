// Parametric distributions compared against the empirical trace in
// Section 3.1 / Figs. 4-6: Normal, Gamma, Lognormal and the heavy-tailed
// Pareto. Each provides pdf/cdf/quantile/sampling plus the fitting rule the
// paper uses (moment matching for the bell-shaped laws, log-log tail slope
// regression for Pareto).
#pragma once

#include <memory>
#include <span>
#include <string>

#include "vbr/common/rng.hpp"

namespace vbr::stats {

/// Common interface so the distribution-comparison exhibits (Figs. 4-5) can
/// iterate over candidate models uniformly.
class Distribution {
 public:
  virtual ~Distribution() = default;

  virtual double pdf(double x) const = 0;
  virtual double cdf(double x) const = 0;
  /// Quantile (inverse CDF) for p in (0, 1).
  virtual double quantile(double p) const = 0;
  virtual std::string name() const = 0;

  double ccdf(double x) const { return 1.0 - cdf(x); }
  /// Inverse-CDF sampling by default; subclasses may override with a
  /// dedicated sampler.
  virtual double sample(Rng& rng) const;

  virtual double mean() const = 0;
  virtual double variance() const = 0;
};

/// Normal(mu, sigma).
class NormalDistribution final : public Distribution {
 public:
  NormalDistribution(double mu, double sigma);

  double pdf(double x) const override;
  double cdf(double x) const override;
  double quantile(double p) const override;
  double sample(Rng& rng) const override;
  std::string name() const override { return "Normal"; }
  double mean() const override { return mu_; }
  double variance() const override { return sigma_ * sigma_; }

  double mu() const { return mu_; }
  double sigma() const { return sigma_; }

  /// Moment fit.
  static NormalDistribution fit(std::span<const double> data);

 private:
  double mu_;
  double sigma_;
};

/// Gamma with shape s and rate lambda, the paper's Eq. (14):
/// f(x) = e^{-lambda x} lambda (lambda x)^{s-1} / Gamma(s).
class GammaDistribution final : public Distribution {
 public:
  GammaDistribution(double shape, double rate);

  double pdf(double x) const override;
  double cdf(double x) const override;
  double quantile(double p) const override;
  double sample(Rng& rng) const override;
  std::string name() const override { return "Gamma"; }
  double mean() const override { return shape_ / rate_; }
  double variance() const override { return shape_ / (rate_ * rate_); }

  double shape() const { return shape_; }
  double rate() const { return rate_; }

  /// Moment fit: s = mu^2/sigma^2, lambda = mu/sigma^2 ("determined
  /// conveniently from the mean and variance", Section 4.2).
  static GammaDistribution fit_moments(double mean, double variance);
  static GammaDistribution fit(std::span<const double> data);

 private:
  double shape_;
  double rate_;
};

/// Lognormal: log X ~ Normal(mu_log, sigma_log).
class LognormalDistribution final : public Distribution {
 public:
  LognormalDistribution(double mu_log, double sigma_log);

  double pdf(double x) const override;
  double cdf(double x) const override;
  double quantile(double p) const override;
  double sample(Rng& rng) const override;
  std::string name() const override { return "Lognormal"; }
  double mean() const override;
  double variance() const override;

  double mu_log() const { return mu_log_; }
  double sigma_log() const { return sigma_log_; }

  /// Fit by matching the sample mean and variance of log X.
  static LognormalDistribution fit(std::span<const double> data);

 private:
  double mu_log_;
  double sigma_log_;
};

/// Pareto with minimum k and tail index a, the paper's Eqs. (15)-(16):
/// f(x) = a k^a / x^{a+1} for x > k; F(x) = 1 - (k/x)^a.
class ParetoDistribution final : public Distribution {
 public:
  ParetoDistribution(double k, double a);

  double pdf(double x) const override;
  double cdf(double x) const override;
  double quantile(double p) const override;
  double sample(Rng& rng) const override;
  std::string name() const override { return "Pareto"; }
  double mean() const override;      ///< infinite for a <= 1
  double variance() const override;  ///< infinite for a <= 2

  double k() const { return k_; }
  double a() const { return a_; }

  /// Fit the tail: least-squares line through (log x, log CCDF(x)) over the
  /// sample's upper `tail_fraction` (paper: "slope of the straight line that
  /// best fits the Pareto tail"). Returns the fitted Pareto with `a` from the
  /// slope and `k` from the intercept.
  static ParetoDistribution fit_tail(std::span<const double> data, double tail_fraction);

 private:
  double k_;
  double a_;
};

}  // namespace vbr::stats
