// Goodness-of-fit statistics for the marginal-distribution comparisons of
// Section 3.1 (Figs. 4-6): Kolmogorov-Smirnov distance, chi-square on
// equal-probability bins, and Q-Q data. These turn the paper's visual
// "which curve tracks the data" argument into numbers.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "vbr/stats/distributions.hpp"

namespace vbr::stats {

struct KsResult {
  double statistic = 0.0;  ///< sup_x |F_n(x) - F(x)|
  double location = 0.0;   ///< x where the supremum is attained
  /// Asymptotic p-value via the Kolmogorov distribution (two-sided,
  /// parameters assumed known; with fitted parameters treat it as a
  /// relative score rather than an exact test).
  double p_value = 0.0;
};

/// Kolmogorov-Smirnov test of `data` against a fitted distribution.
KsResult ks_test(std::span<const double> data, const Distribution& model);

struct ChiSquareResult {
  double statistic = 0.0;
  std::size_t bins = 0;
  std::size_t degrees_of_freedom = 0;  ///< bins - 1 - fitted_params
  double p_value = 0.0;                ///< upper tail of chi^2_{dof}
};

/// Chi-square GOF on equal-probability bins (expected count = n / bins).
/// fitted_params is subtracted from the degrees of freedom.
ChiSquareResult chi_square_test(std::span<const double> data, const Distribution& model,
                                std::size_t bins, std::size_t fitted_params);

/// Q-Q data: for `count` probability levels, the (model quantile,
/// empirical quantile) pairs. A good fit lies on the diagonal; a too-light
/// model tail bends the upper points above it (the Fig. 4 story).
struct QqPlot {
  std::vector<double> probability;
  std::vector<double> model_quantile;
  std::vector<double> empirical_quantile;
};
QqPlot qq_plot(std::span<const double> data, const Distribution& model, std::size_t count);

/// Kolmogorov distribution's survival function Q(t) = P(K > t)
/// (series expansion; used for the KS p-value).
double kolmogorov_survival(double t);

}  // namespace vbr::stats
