#include "vbr/stats/dfa.hpp"

#include <cmath>

#include "vbr/common/error.hpp"

namespace vbr::stats {

DfaResult dfa(std::span<const double> data, const DfaOptions& options) {
  VBR_ENSURE(data.size() >= 128, "DFA needs a longer series");
  check_finite_series(data, "dfa input");
  DfaOptions opt = options;
  if (opt.max_box == 0) opt.max_box = data.size() / 8;
  VBR_ENSURE(opt.min_box >= 4 && opt.min_box < opt.max_box, "invalid box range");
  VBR_ENSURE(opt.max_box <= data.size() / 2, "max box leaves too few boxes");

  // Integrated profile Y_t = sum_{i<=t} (x_i - mean).
  const double mean = sample_mean(data);
  std::vector<double> profile(data.size());
  KahanSum acc;
  for (std::size_t i = 0; i < data.size(); ++i) {
    acc.add(data[i] - mean);
    profile[i] = acc.value();
  }

  DfaResult result;
  for (std::size_t s : log_spaced_sizes(opt.min_box, opt.max_box, opt.grid_points)) {
    const std::size_t boxes = profile.size() / s;
    if (boxes < 4) break;
    KahanSum total_sq;
    for (std::size_t b = 0; b < boxes; ++b) {
      // Per-box linear detrend via closed-form OLS on t = 0..s-1.
      const double n = static_cast<double>(s);
      const double t_mean = (n - 1.0) / 2.0;
      const double t_var = (n * n - 1.0) / 12.0;  // population variance of 0..n-1
      KahanSum y_sum;
      KahanSum ty_sum;
      for (std::size_t i = 0; i < s; ++i) {
        const double y = profile[b * s + i];
        y_sum.add(y);
        ty_sum.add((static_cast<double>(i) - t_mean) * y);
      }
      const double y_mean = y_sum.value() / n;
      const double slope = ty_sum.value() / (n * t_var);
      for (std::size_t i = 0; i < s; ++i) {
        const double fitted = y_mean + slope * (static_cast<double>(i) - t_mean);
        const double r = profile[b * s + i] - fitted;
        total_sq.add(r * r);
      }
    }
    const double f = std::sqrt(total_sq.value() / static_cast<double>(boxes * s));
    if (f > 0.0) result.points.push_back({s, f});
  }
  VBR_ENSURE(result.points.size() >= 4, "too few DFA points");

  std::vector<double> lx;
  std::vector<double> ly;
  for (const auto& p : result.points) {
    if (p.box_size < opt.fit_min_box) continue;
    lx.push_back(std::log10(static_cast<double>(p.box_size)));
    ly.push_back(std::log10(p.fluctuation));
  }
  VBR_ENSURE(lx.size() >= 3, "too few DFA points in the fit window");
  result.fit = linear_fit(lx, ly);
  result.hurst = result.fit.slope;
  VBR_CHECK_FINITE(result.hurst, "DFA Hurst estimate");
  return result;
}

}  // namespace vbr::stats
