#include "vbr/stats/lrd_fidelity.hpp"

#include <algorithm>
#include <cmath>

#include "vbr/common/error.hpp"
#include "vbr/common/math_util.hpp"
#include "vbr/stats/autocorrelation.hpp"
#include "vbr/stats/distributions.hpp"
#include "vbr/stats/goodness_of_fit.hpp"
#include "vbr/stats/variance_time.hpp"
#include "vbr/stats/whittle.hpp"

namespace vbr::stats {

LrdFidelityReport judge_lrd_fidelity(std::span<const double> data, double target_hurst,
                                     std::span<const double> target_acf,
                                     const LrdFidelityOptions& options) {
  VBR_ENSURE(data.size() >= 32, "fidelity judging needs a non-trivial sample");
  VBR_ENSURE(target_hurst > 0.0 && target_hurst < 1.0, "H must be in (0, 1)");
  VBR_ENSURE(target_acf.size() >= 2, "target ACF must cover at least lag 1");

  LrdFidelityReport report;

  const WhittleResult whittle = whittle_estimate(data, options.spectral_model);
  report.whittle_hurst = whittle.hurst;
  report.whittle_error = std::abs(whittle.hurst - target_hurst);

  report.vt_hurst = variance_time(data).hurst;

  report.sample_variance = sample_variance(data);
  const double sd = std::sqrt(report.sample_variance);
  VBR_ENSURE(sd > 0.0, "degenerate (constant) sample");
  // Centered at the sample's own mean: an LRD path's realized mean wanders
  // as n^{H-1}, and against a fixed zero-mean reference that offset would
  // swamp the statistic (at H = 0.9 it alone reads ~0.1-0.2, except for
  // generators that pin the sample mean exactly). Shape is the contract.
  report.gaussian_ks =
      ks_test(data, NormalDistribution(sample_mean(data), sd)).statistic;

  const std::size_t lags =
      std::min({options.acf_lags, target_acf.size() - 1, data.size() - 1});
  const auto acf = autocorrelation(data, lags);
  double sq = 0.0;
  for (std::size_t lag = 1; lag <= lags; ++lag) {
    const double d = acf[lag] - target_acf[lag];
    sq += d * d;
  }
  report.acf_rms_error = std::sqrt(sq / static_cast<double>(lags));
  return report;
}

}  // namespace vbr::stats
