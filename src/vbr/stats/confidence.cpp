#include "vbr/stats/confidence.hpp"

#include <cmath>

#include "vbr/common/error.hpp"
#include "vbr/common/math_util.hpp"

namespace vbr::stats {

std::vector<MeanCiPoint> running_mean_ci(std::span<const double> data,
                                         std::span<const std::size_t> ns, double hurst) {
  VBR_ENSURE(data.size() >= 2, "need at least two observations");
  VBR_ENSURE(hurst > 0.0 && hurst < 1.0, "H must be in (0, 1)");
  constexpr double kZ = 1.96;

  std::vector<MeanCiPoint> out;
  out.reserve(ns.size());
  for (std::size_t n : ns) {
    VBR_ENSURE(n >= 2 && n <= data.size(), "prefix size out of range");
    const auto prefix = data.subspan(0, n);
    MeanCiPoint p;
    p.n = n;
    p.mean = sample_mean(prefix);
    const double sd = std::sqrt(sample_variance(prefix));
    const double dn = static_cast<double>(n);
    p.iid_halfwidth = kZ * sd / std::sqrt(dn);
    // Var(X-bar_n) ~ sigma^2 n^{2H-2} for an exactly self-similar process.
    p.lrd_halfwidth = kZ * sd * std::pow(dn, hurst - 1.0);
    out.push_back(p);
  }
  return out;
}

CoverageSummary ci_coverage(const std::vector<MeanCiPoint>& points, double final_mean) {
  VBR_ENSURE(!points.empty(), "coverage requires at least one interval");
  std::size_t iid_hits = 0;
  std::size_t lrd_hits = 0;
  for (const auto& p : points) {
    if (std::abs(final_mean - p.mean) <= p.iid_halfwidth) ++iid_hits;
    if (std::abs(final_mean - p.mean) <= p.lrd_halfwidth) ++lrd_hits;
  }
  CoverageSummary s;
  s.iid_coverage = static_cast<double>(iid_hits) / static_cast<double>(points.size());
  s.lrd_coverage = static_cast<double>(lrd_hits) / static_cast<double>(points.size());
  return s;
}

}  // namespace vbr::stats
