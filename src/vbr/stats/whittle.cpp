#include "vbr/stats/whittle.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "vbr/common/error.hpp"
#include "vbr/common/math_util.hpp"
#include "vbr/stats/periodogram.hpp"

namespace vbr::stats {

double farima_spectral_shape(double angular_frequency, double hurst) {
  VBR_ENSURE(angular_frequency > 0.0 && angular_frequency <= std::numbers::pi,
             "frequency must be in (0, pi]");
  VBR_DCHECK(hurst > 0.0 && hurst < 1.0, "H must be in (0, 1)");
  return std::pow(2.0 * std::sin(angular_frequency / 2.0), 1.0 - 2.0 * hurst);
}

double fgn_spectral_shape(double angular_frequency, double hurst) {
  VBR_ENSURE(angular_frequency > 0.0 && angular_frequency <= std::numbers::pi,
             "frequency must be in (0, pi]");
  VBR_DCHECK(hurst > 0.0 && hurst < 1.0, "H must be in (0, 1)");
  // f(w) ~ 2 (1 - cos w) sum_{j in Z} |w + 2 pi j|^{-2H-1}; truncate the
  // aliasing sum at |j| <= K and add the integral tail
  // 2 * integral_{2 pi (K + 1/2)}^{inf} x^{-2H-1} dx = (2 pi (K+1/2))^{-2H}/H.
  constexpr int kTerms = 50;
  const double exponent = -2.0 * hurst - 1.0;
  double aliased = std::pow(angular_frequency, exponent);
  for (int j = 1; j <= kTerms; ++j) {
    aliased += std::pow(2.0 * std::numbers::pi * j + angular_frequency, exponent) +
               std::pow(2.0 * std::numbers::pi * j - angular_frequency, exponent);
  }
  const double cutoff = 2.0 * std::numbers::pi * (kTerms + 0.5);
  aliased += std::pow(cutoff, -2.0 * hurst) / hurst;
  return 2.0 * (1.0 - std::cos(angular_frequency)) * aliased;
}

namespace {

double spectral_shape(SpectralModel model, double angular_frequency, double hurst) {
  return model == SpectralModel::kFarima ? farima_spectral_shape(angular_frequency, hurst)
                                         : fgn_spectral_shape(angular_frequency, hurst);
}

// Scale-concentrated Whittle objective:
//   R(H) = log( (1/m) sum I_k / s_k(H) ) + (1/m) sum log s_k(H),
// where s is the unit-scale spectral shape. Minimizing R over H is
// equivalent to minimizing the full Whittle functional over (H, sigma^2).
double whittle_objective(const Periodogram& pg, SpectralModel model, double hurst,
                         double* scale_out) {
  const std::size_t m = pg.frequency.size();
  KahanSum ratio_sum;
  KahanSum log_sum;
  for (std::size_t k = 0; k < m; ++k) {
    const double s = spectral_shape(model, pg.frequency[k], hurst);
    ratio_sum.add(pg.power[k] / s);
    log_sum.add(std::log(s));
  }
  const double mean_ratio = ratio_sum.value() / static_cast<double>(m);
  if (scale_out != nullptr) *scale_out = mean_ratio * 2.0 * std::numbers::pi;
  return std::log(mean_ratio) + log_sum.value() / static_cast<double>(m);
}

}  // namespace

WhittleResult whittle_estimate(std::span<const double> data, SpectralModel model) {
  VBR_ENSURE(data.size() >= 32, "Whittle estimation needs at least 32 observations");
  check_finite_series(data, "whittle_estimate input");
  const Periodogram pg = periodogram(data);

  // Golden-section search over H in (0.01, 0.99); the objective is smooth
  // and unimodal for LRD-or-SRD data of any realistic kind.
  const double gr = (std::sqrt(5.0) - 1.0) / 2.0;
  double a = 0.01;
  double b = 0.99;
  double c = b - gr * (b - a);
  double d = a + gr * (b - a);
  double fc = whittle_objective(pg, model, c, nullptr);
  double fd = whittle_objective(pg, model, d, nullptr);
  for (int i = 0; i < 80 && (b - a) > 1e-8; ++i) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - gr * (b - a);
      fc = whittle_objective(pg, model, c, nullptr);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + gr * (b - a);
      fd = whittle_objective(pg, model, d, nullptr);
    }
  }

  WhittleResult result;
  result.hurst = 0.5 * (a + b);
  result.n = data.size();
  whittle_objective(pg, model, result.hurst, &result.innovation_scale);
  VBR_CHECK_RANGE(result.hurst, 0.0, 1.0, "Whittle H estimate left (0, 1)");
  VBR_CHECK_FINITE(result.innovation_scale, "Whittle innovation scale");
  // Asymptotic variance of the Whittle estimate of d (= H - 1/2) for
  // fARIMA(0,d,0): Var = 6 / (pi^2 n) [Beran 1994].
  result.stderr_hurst =
      std::sqrt(6.0 / (std::numbers::pi * std::numbers::pi * static_cast<double>(data.size())));
  result.ci_low = result.hurst - 1.96 * result.stderr_hurst;
  result.ci_high = result.hurst + 1.96 * result.stderr_hurst;
  return result;
}

WhittleResult local_whittle_estimate(std::span<const double> data,
                                     std::size_t frequencies) {
  VBR_ENSURE(data.size() >= 64, "local Whittle needs at least 64 observations");
  check_finite_series(data, "local_whittle_estimate input");
  const Periodogram pg = periodogram(data);
  if (frequencies == 0) {
    frequencies = static_cast<std::size_t>(
        std::pow(static_cast<double>(data.size()), 0.65));
  }
  frequencies = std::min(frequencies, pg.frequency.size());
  VBR_ENSURE(frequencies >= 8, "too few frequencies for local Whittle");

  // R(H) = log( (1/m) sum I_k w_k^{2H-1} ) - (2H-1) (1/m) sum log w_k.
  KahanSum log_w_sum;
  for (std::size_t k = 0; k < frequencies; ++k) log_w_sum.add(std::log(pg.frequency[k]));
  const double mean_log_w = log_w_sum.value() / static_cast<double>(frequencies);

  auto objective = [&](double hurst) {
    KahanSum ratio;
    for (std::size_t k = 0; k < frequencies; ++k) {
      ratio.add(pg.power[k] * std::pow(pg.frequency[k], 2.0 * hurst - 1.0));
    }
    return std::log(ratio.value() / static_cast<double>(frequencies)) -
           (2.0 * hurst - 1.0) * mean_log_w;
  };

  const double gr = (std::sqrt(5.0) - 1.0) / 2.0;
  double a = 0.01;
  double b = 0.99;
  double c = b - gr * (b - a);
  double d = a + gr * (b - a);
  double fc = objective(c);
  double fd = objective(d);
  for (int i = 0; i < 80 && (b - a) > 1e-8; ++i) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - gr * (b - a);
      fc = objective(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + gr * (b - a);
      fd = objective(d);
    }
  }

  WhittleResult result;
  result.hurst = 0.5 * (a + b);
  result.n = frequencies;
  result.innovation_scale = std::exp(objective(result.hurst));
  VBR_CHECK_RANGE(result.hurst, 0.0, 1.0, "local Whittle H estimate left (0, 1)");
  VBR_CHECK_FINITE(result.innovation_scale, "local Whittle innovation scale");
  // Robinson (1995): sqrt(m) (H_hat - H) -> N(0, 1/4).
  result.stderr_hurst = 1.0 / (2.0 * std::sqrt(static_cast<double>(frequencies)));
  result.ci_low = result.hurst - 1.96 * result.stderr_hurst;
  result.ci_high = result.hurst + 1.96 * result.stderr_hurst;
  return result;
}

std::vector<AggregatedWhittlePoint> whittle_aggregated(std::span<const double> data,
                                                       std::span<const std::size_t> levels,
                                                       SpectralModel model) {
  std::vector<AggregatedWhittlePoint> out;
  out.reserve(levels.size());
  for (std::size_t m : levels) {
    const auto aggregated = block_means(data, m);
    if (aggregated.size() < 32) continue;
    out.push_back({m, whittle_estimate(aggregated, model)});
  }
  VBR_ENSURE(!out.empty(), "no aggregation level left enough data for Whittle");
  return out;
}

}  // namespace vbr::stats
