// Rescaled-adjusted-range (R/S) analysis, Section 3.2.3 and Fig. 12.
//
// For each lag n and each of several starting points across the record, the
// statistic R(n)/S(n) is computed over the block of n observations: R is the
// range of the adjusted partial sums W_j and S the block's sample standard
// deviation. E[R/S] ~ n^H, so the "pox diagram" of log10(R/S) against
// log10(n) has asymptotic slope H; Mandelbrot & Wallis's practical recipe
// evaluates many (lag, partition) pairs and fits a line through the usable
// middle of the cloud.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "vbr/common/math_util.hpp"

namespace vbr::stats {

struct RsPoint {
  std::size_t lag = 0;    ///< block length n
  std::size_t start = 0;  ///< block starting index
  double rs = 0.0;        ///< R(n)/S(n)
};

struct RsOptions {
  std::size_t min_lag = 10;
  /// Largest lag; 0 means n/2.
  std::size_t max_lag = 0;
  /// Number of log-spaced lags (density of points horizontally).
  std::size_t lag_count = 30;
  /// Number of block starting points per lag (density vertically).
  std::size_t partitions = 10;
  /// Fit window: only points with lag >= fit_min_lag enter the regression
  /// (short lags are contaminated by short-range structure; the paper
  /// measures from ~200 frames up).
  std::size_t fit_min_lag = 200;
};

struct RsResult {
  std::vector<RsPoint> points;  ///< the pox diagram
  LinearFit fit;                ///< log10(R/S) on log10(lag) over the fit window
  double hurst = 0.5;           ///< the fitted slope
};

/// R/S over one block [start, start+n); returns 0 if the block is constant.
double rescaled_range(std::span<const double> data, std::size_t start, std::size_t n);

/// Full pox-diagram analysis.
RsResult rs_analysis(std::span<const double> data, const RsOptions& options = {});

/// R/S analysis of the aggregated series X^(m) ("R/S Aggregated" in Table 3):
/// removes short-range structure before estimating H. Lags in the options
/// refer to the aggregated series.
RsResult rs_analysis_aggregated(std::span<const double> data, std::size_t m,
                                RsOptions options = {});

/// Robustness sweep ("R/S with n, M varied", Table 3): re-run the analysis
/// over a grid of lag densities and partition counts, returning the min and
/// max fitted H.
struct RsSweepResult {
  double hurst_min = 0.0;
  double hurst_max = 0.0;
  std::vector<double> estimates;
};
RsSweepResult rs_sweep(std::span<const double> data,
                       std::span<const std::size_t> lag_counts,
                       std::span<const std::size_t> partition_counts,
                       const RsOptions& base = {});

}  // namespace vbr::stats
