// The paper's hybrid Gamma/Pareto marginal distribution F_{Gamma/Pareto}
// (Section 4.2).
//
// The body of the VBR bandwidth distribution is Gamma; the right tail is
// Pareto. The two pieces are spliced at the threshold x_th where the local
// log-log slope of the Gamma CCDF equals the (constant) Pareto tail slope,
// and the Pareto minimum k is then chosen so the CCDF is continuous there —
// "matching the slope and position of the two functions". With both the
// value and the log-log slope matched, the density is continuous as well.
//
// Three parameters determine everything: mu_gamma and sigma_gamma (the
// equivalent mean/stddev of the Gamma part) and the tail slope m_T.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "vbr/stats/distributions.hpp"

namespace vbr::stats {

/// The three estimated parameters of the hybrid model (plus H, these four
/// numbers are the paper's entire source model).
struct GammaParetoParams {
  double mu_gamma = 0.0;     ///< equivalent mean of the Gamma part
  double sigma_gamma = 0.0;  ///< equivalent stddev of the Gamma part
  double tail_slope = 0.0;   ///< m_T: magnitude of the log-log CCDF tail slope (Pareto a)
};

/// Hybrid Gamma-body / Pareto-tail distribution.
class GammaParetoDistribution final : public Distribution {
 public:
  explicit GammaParetoDistribution(const GammaParetoParams& params);

  double pdf(double x) const override;
  double cdf(double x) const override;
  double quantile(double p) const override;
  std::string name() const override { return "Gamma/Pareto"; }
  double mean() const override;
  double variance() const override;

  const GammaParetoParams& params() const { return params_; }
  const GammaDistribution& gamma_part() const { return gamma_; }
  const ParetoDistribution& pareto_part() const { return pareto_; }

  /// Splice threshold x_th and the CDF mass below it.
  double threshold() const { return x_th_; }
  double threshold_cdf() const { return p_th_; }

  /// Estimate the three parameters from a trace: sample mean/stddev for the
  /// Gamma part (adequate when the tail holds only a few percent of the
  /// data, per the paper) and a log-log CCDF regression over the upper
  /// `tail_fraction` of the sample for m_T.
  static GammaParetoParams fit(std::span<const double> data, double tail_fraction = 0.03);

 private:
  GammaParetoParams params_;
  GammaDistribution gamma_;
  ParetoDistribution pareto_;
  double x_th_ = 0.0;  ///< splice point
  double p_th_ = 0.0;  ///< F(x_th), same for both pieces by construction
};

/// Tabulated density on a uniform grid; implements the paper's 10,000-point
/// table used "to simulate the aggregation of multiple sources ... a
/// convolution of the Gamma/Pareto distribution" (Section 4.2).
class TabulatedDistribution {
 public:
  /// Tabulate `dist` on [lo, hi] with `points` samples of the pdf.
  TabulatedDistribution(const Distribution& dist, double lo, double hi,
                        std::size_t points = 10000);

  /// Distribution of the sum of n i.i.d. copies (discrete self-convolution,
  /// FFT-accelerated). n >= 1.
  TabulatedDistribution convolve_power(std::size_t n) const;

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double step() const { return step_; }

  double pdf(double x) const;
  double cdf(double x) const;
  /// Quantile by inverse interpolation of the tabulated CDF.
  double quantile(double p) const;
  double mean() const;
  /// Stop-loss transform E[(X - threshold)^+] (used by the bufferless
  /// admission analysis).
  double partial_expectation_above(double threshold) const;

 private:
  TabulatedDistribution() = default;

  std::vector<double> pmf_;  ///< probability mass per grid cell (sums to ~1)
  std::vector<double> cdf_;  ///< cumulative mass at cell right edges
  double lo_ = 0.0;
  double hi_ = 0.0;
  double step_ = 0.0;

  void rebuild_cdf();
};

}  // namespace vbr::stats
