// Sample autocorrelation function (Fig. 7).
//
// The default estimator is the standard biased ACF (autocovariance divided
// by n and normalized by the lag-0 value), computed via FFT so that the
// paper's 10,000-lag curve over 171,000 frames is cheap. A direct O(n*lags)
// variant is kept for validation.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace vbr::stats {

/// r(0..max_lag) via FFT; r[0] == 1. Requires max_lag < data.size().
std::vector<double> autocorrelation(std::span<const double> data, std::size_t max_lag);

/// Direct-summation reference implementation (for tests / small inputs).
std::vector<double> autocorrelation_direct(std::span<const double> data, std::size_t max_lag);

/// Fit lag range [lag_lo, lag_hi] of an ACF to r(n) ~ C * rho^n (log-linear
/// regression); returns rho. Used to show the exponential fit holds only for
/// the first ~100-300 lags (Fig. 7 discussion).
double fit_exponential_decay(std::span<const double> acf, std::size_t lag_lo,
                             std::size_t lag_hi);

/// Fit lag range to r(n) ~ C * n^{-beta} (log-log regression); returns beta.
double fit_hyperbolic_decay(std::span<const double> acf, std::size_t lag_lo,
                            std::size_t lag_hi);

}  // namespace vbr::stats
