// Variance-time analysis (Section 3.2.3, Fig. 11).
//
// For the aggregated processes X^(m), Var(X^(m)) ~ m^{-beta} sigma^2 with
// beta = 1 for SRD and 0 < beta < 1 under LRD; H = 1 - beta / 2. The
// variance-time plot graphs normalized variance against m on log-log axes
// and reads beta off the limiting slope.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "vbr/common/math_util.hpp"

namespace vbr::stats {

struct VarianceTimePoint {
  std::size_t m = 0;               ///< aggregation block size
  double normalized_variance = 0;  ///< Var(X^(m)) / Var(X)
};

struct VarianceTimeResult {
  std::vector<VarianceTimePoint> points;  ///< the plot of Fig. 11
  LinearFit fit;                          ///< log10(var) on log10(m) over the fit window
  double beta = 1.0;                      ///< -slope
  double hurst = 0.5;                     ///< 1 - beta/2
};

struct VarianceTimeOptions {
  std::size_t min_m = 1;
  /// Largest block size; 0 means n/10 (so each variance uses >= 10 blocks).
  std::size_t max_m = 0;
  /// Number of log-spaced block sizes to evaluate.
  std::size_t grid_points = 40;
  /// Fit window: slope is estimated over m in [fit_min_m, max_m]. The paper
  /// measures H from ~200 frames upward, below which SRD effects dominate.
  std::size_t fit_min_m = 100;
};

/// Compute the variance-time plot and the Hurst estimate.
VarianceTimeResult variance_time(std::span<const double> data,
                                 const VarianceTimeOptions& options = {});

}  // namespace vbr::stats
