#include "vbr/stats/autocorrelation.hpp"

#include <cmath>
#include <complex>

#include "vbr/common/error.hpp"
#include "vbr/common/fft.hpp"
#include "vbr/common/math_util.hpp"

namespace vbr::stats {

std::vector<double> autocorrelation(std::span<const double> data, std::size_t max_lag) {
  const std::size_t n = data.size();
  VBR_ENSURE(n >= 2, "autocorrelation requires at least two samples");
  VBR_ENSURE(max_lag < n, "max_lag must be smaller than the sample size");

  const double mean = kahan_total(data) / static_cast<double>(n);

  // Wiener-Khinchin: pad to >= 2n to avoid circular wrap. The input is
  // real, so rfft() gives the half spectrum; the power spectrum is real and
  // even, so irfft() of the half power spectrum is the circular
  // autocovariance — both transforms at half the complex-FFT cost.
  const std::size_t padded = next_power_of_two(2 * n);
  std::vector<double> buf(padded, 0.0);
  for (std::size_t i = 0; i < n; ++i) buf[i] = data[i] - mean;
  auto spectrum = rfft(buf);
  for (auto& v : spectrum) v = std::norm(v);
  const auto acov = irfft(spectrum, padded);

  const double c0 = acov[0] / static_cast<double>(n);
  VBR_ENSURE(c0 > 0.0, "autocorrelation of a constant series is undefined");
  std::vector<double> r(max_lag + 1);
  for (std::size_t k = 0; k <= max_lag; ++k) {
    r[k] = (acov[k] / static_cast<double>(n)) / c0;
  }
  return r;
}

std::vector<double> autocorrelation_direct(std::span<const double> data, std::size_t max_lag) {
  const std::size_t n = data.size();
  VBR_ENSURE(n >= 2, "autocorrelation requires at least two samples");
  VBR_ENSURE(max_lag < n, "max_lag must be smaller than the sample size");
  const double mean = kahan_total(data) / static_cast<double>(n);

  std::vector<double> r(max_lag + 1, 0.0);
  KahanSum c0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = data[i] - mean;
    c0.add(d * d);
  }
  VBR_ENSURE(c0.value() > 0.0, "autocorrelation of a constant series is undefined");
  for (std::size_t k = 0; k <= max_lag; ++k) {
    KahanSum ck;
    for (std::size_t i = 0; i + k < n; ++i) {
      ck.add((data[i] - mean) * (data[i + k] - mean));
    }
    r[k] = ck.value() / c0.value();
  }
  return r;
}

namespace {

// Collect (x, log r) pairs over a lag window, skipping non-positive r values
// (log-domain regression is undefined there).
void collect_log_points(std::span<const double> acf, std::size_t lag_lo, std::size_t lag_hi,
                        bool log_x, std::vector<double>& xs, std::vector<double>& ys) {
  VBR_ENSURE(lag_lo >= 1 && lag_lo < lag_hi, "invalid lag window");
  VBR_ENSURE(lag_hi < acf.size(), "lag window exceeds ACF length");
  for (std::size_t k = lag_lo; k <= lag_hi; ++k) {
    if (acf[k] <= 0.0) continue;
    xs.push_back(log_x ? std::log(static_cast<double>(k)) : static_cast<double>(k));
    ys.push_back(std::log(acf[k]));
  }
  VBR_ENSURE(xs.size() >= 3, "too few positive ACF values in the lag window");
}

}  // namespace

double fit_exponential_decay(std::span<const double> acf, std::size_t lag_lo,
                             std::size_t lag_hi) {
  std::vector<double> xs;
  std::vector<double> ys;
  collect_log_points(acf, lag_lo, lag_hi, /*log_x=*/false, xs, ys);
  return std::exp(linear_fit(xs, ys).slope);
}

double fit_hyperbolic_decay(std::span<const double> acf, std::size_t lag_lo,
                            std::size_t lag_hi) {
  std::vector<double> xs;
  std::vector<double> ys;
  collect_log_points(acf, lag_lo, lag_hi, /*log_x=*/true, xs, ys);
  return -linear_fit(xs, ys).slope;
}

}  // namespace vbr::stats
