// Fidelity judging for the fGn generator zoo (fgn_generator.hpp).
//
// bench_generator_pareto and the zoo tests score every generator on the
// same four axes — Whittle Hurst error, variance-time Hurst, marginal
// Kolmogorov-Smirnov distance, and ACF error against a caller-supplied
// target — using the repo's *own* estimators, so a generator is judged by
// exactly the instruments the paper's analysis chapters built, not by a
// separate private oracle. This header is the one place that mapping is
// defined; the bench and the tests both call it.
#pragma once

#include <cstddef>
#include <span>

#include "vbr/stats/whittle.hpp"

namespace vbr::stats {

struct LrdFidelityOptions {
  /// Lags 1..acf_lags enter the ACF error (lag 0 is 1 by construction).
  std::size_t acf_lags = 64;
  /// Spectral model for the Whittle fit. MUST match the generator's
  /// covariance family (FgnGenerator::farima_covariance): fitting fARIMA
  /// data under the fGn density reads H = 0.9 as ~0.83 and vice versa —
  /// a model mismatch, not a generator defect.
  SpectralModel spectral_model = SpectralModel::kFgn;
};

struct LrdFidelityReport {
  double whittle_hurst = 0.5;    ///< full-spectrum Whittle under the fGn model
  double whittle_error = 0.0;    ///< |whittle_hurst - target|
  double vt_hurst = 0.5;         ///< variance-time slope estimate
  double gaussian_ks = 0.0;      ///< KS distance vs a sample-moment Normal
  double acf_rms_error = 0.0;    ///< RMS over lags 1..L vs the target ACF
  double sample_variance = 0.0;  ///< for the unit-variance contract checks
};

/// Score one realization of a nominally fGn(target_hurst) series.
/// `target_acf` supplies the reference autocorrelation from lag 0 on
/// (model::fgn_acf is the usual source); only lags 1..min(acf_lags,
/// target_acf.size()-1) are compared. The Gaussian KS is computed against a
/// Normal at the sample's own mean and standard deviation, so it measures
/// shape (the generator's marginal contract), not the realized location or
/// variance of an LRD path — both of which wander legitimately.
LrdFidelityReport judge_lrd_fidelity(std::span<const double> data, double target_hurst,
                                     std::span<const double> target_acf,
                                     const LrdFidelityOptions& options = {});

}  // namespace vbr::stats
