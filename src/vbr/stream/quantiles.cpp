#include "vbr/stream/quantiles.hpp"

#include <algorithm>
#include <cmath>

#include "vbr/common/error.hpp"
#include "vbr/common/math_util.hpp"
#include "vbr/common/serialize.hpp"

namespace vbr::stream {

StreamingQuantiles::StreamingQuantiles(const QuantileSketchOptions& options)
    : options_(options) {
  VBR_ENSURE(options_.relative_error > 0.0 && options_.relative_error < 0.5,
             "quantile sketch relative error must be in (0, 0.5)");
  VBR_ENSURE(options_.min_value > 0.0 && options_.min_value < options_.max_value,
             "quantile sketch needs 0 < min_value < max_value");
  const double gamma =
      (1.0 + options_.relative_error) / (1.0 - options_.relative_error);
  log_gamma_ = std::log(gamma);
  const auto buckets = static_cast<std::size_t>(
      std::ceil(std::log(options_.max_value / options_.min_value) / log_gamma_));
  // counts_[0] = underflow, counts_[1..buckets] = geometric buckets,
  // counts_[buckets + 1] = overflow.
  counts_.assign(buckets + 2, 0);
}

std::size_t StreamingQuantiles::bucket_index(double v) const {
  if (v < options_.min_value) return 0;
  if (v >= options_.max_value) return counts_.size() - 1;
  const auto i = static_cast<std::size_t>(std::log(v / options_.min_value) / log_gamma_);
  return std::min(i + 1, counts_.size() - 2);
}

double StreamingQuantiles::bucket_value(std::size_t i) const {
  if (i == 0) return options_.min_value;
  if (i == counts_.size() - 1) return options_.max_value;
  // Geometric midpoint of [lo * g^(i-1), lo * g^i): relative error <=
  // sqrt(g) - 1, approximately options_.relative_error.
  return options_.min_value * std::exp((static_cast<double>(i - 1) + 0.5) * log_gamma_);
}

void StreamingQuantiles::push(std::span<const double> samples) {
  for (const double v : samples) {
    VBR_DCHECK(std::isfinite(v), "non-finite sample pushed into StreamingQuantiles");
    if (count_ == 0) {
      min_ = v;
      max_ = v;
    } else {
      min_ = std::min(min_, v);
      max_ = std::max(max_, v);
    }
    ++counts_[bucket_index(v)];
    ++count_;
  }
}

void StreamingQuantiles::merge(const Sink& other) {
  const auto& peer = detail::merge_peer<StreamingQuantiles>(other, kind());
  VBR_ENSURE(peer.counts_.size() == counts_.size() &&
                 peer.options_.relative_error == options_.relative_error &&
                 peer.options_.min_value == options_.min_value &&
                 peer.options_.max_value == options_.max_value,
             "cannot merge quantile sketches with different configurations");
  if (peer.count_ == 0) return;
  if (count_ == 0) {
    min_ = peer.min_;
    max_ = peer.max_;
  } else {
    min_ = std::min(min_, peer.min_);
    max_ = std::max(max_, peer.max_);
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += peer.counts_[i];
  count_ += peer.count_;
}

std::unique_ptr<Sink> StreamingQuantiles::clone_empty() const {
  return std::make_unique<StreamingQuantiles>(options_);
}

void StreamingQuantiles::save(std::ostream& out) const {
  io::write_string(out, kind());
  io::write_f64(out, options_.relative_error);
  io::write_f64(out, options_.min_value);
  io::write_f64(out, options_.max_value);
  io::write_u64(out, count_);
  io::write_f64(out, min_);
  io::write_f64(out, max_);
  io::write_u64_vector(out, counts_);
}

void StreamingQuantiles::restore(std::istream& in) {
  io::read_tag(in, kind(), kind());
  const double rel = io::read_f64(in, kind());
  const double lo = io::read_f64(in, kind());
  const double hi = io::read_f64(in, kind());
  if (rel != options_.relative_error || lo != options_.min_value ||
      hi != options_.max_value) {
    throw IoError("quantiles: serialized sketch configuration does not match this sink");
  }
  const std::uint64_t count = io::read_u64(in, kind());
  const double mn = io::read_f64(in, kind());
  const double mx = io::read_f64(in, kind());
  std::vector<std::uint64_t> counts =
      io::read_u64_vector(in, counts_.size(), kind());
  if (counts.size() != counts_.size()) {
    throw IoError("quantiles: serialized bucket count does not match this sketch");
  }
  count_ = static_cast<std::size_t>(count);
  min_ = mn;
  max_ = mx;
  counts_ = std::move(counts);
}

double StreamingQuantiles::quantile(double q) const {
  VBR_ENSURE(count_ >= 1, "quantile of an empty sketch");
  VBR_ENSURE(q >= 0.0 && q <= 1.0, "quantile order must lie in [0, 1]");
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (cumulative >= rank) return std::clamp(bucket_value(i), min_, max_);
  }
  return max_;
}

double StreamingQuantiles::ccdf(double x) const {
  VBR_ENSURE(count_ >= 1, "ccdf of an empty sketch");
  std::uint64_t above = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] != 0 && bucket_value(i) > x) above += counts_[i];
  }
  return static_cast<double>(above) / static_cast<double>(count_);
}

StreamingQuantiles::Curve StreamingQuantiles::ccdf_curve(std::size_t points) const {
  VBR_ENSURE(count_ >= 1, "ccdf curve of an empty sketch");
  VBR_ENSURE(points >= 2, "ccdf curve needs at least two points");
  const double lo = std::max(min_, options_.min_value);
  const double hi = std::max(max_, lo * (1.0 + 1e-12));
  Curve curve;
  for (const double x : log_spaced(lo, hi, points)) {
    const double p = ccdf(x);
    if (p <= 0.0) continue;
    curve.x.push_back(x);
    curve.p.push_back(p);
  }
  return curve;
}

double StreamingQuantiles::min() const {
  VBR_ENSURE(count_ >= 1, "min of an empty sketch");
  return min_;
}

double StreamingQuantiles::max() const {
  VBR_ENSURE(count_ >= 1, "max of an empty sketch");
  return max_;
}

}  // namespace vbr::stream
