// StreamingVarianceTime: online aggregated-variance Hurst estimation — the
// streaming analogue of the paper's variance-time plot (Section 3.2.3,
// Fig. 11) over dyadic block sizes m = 2^0, 2^1, ..., 2^(levels-1).
//
// Each level keeps one partial-block accumulator and a Welford accumulator
// of completed block means, organized as a cascade (a completed level-j mean
// feeds level j+1), so memory is O(levels) = O(log n) and per-sample cost is
// O(1) amortized.
//
// Merge semantics: variances of block means do not depend on where the
// blocks start, so merging combines the completed-block statistics exactly
// and discards the left operand's partial blocks (at most one per level per
// boundary). Because the same partial blocks are discarded under any merge
// order, merge is associative; versus a single pass the Hurst estimate
// differs only through those boundary blocks, which the equivalence tests
// bound. Splits aligned to 2^(levels-1) merge exactly.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "vbr/common/math_util.hpp"
#include "vbr/stream/sink.hpp"

namespace vbr::stream {

struct StreamingVarianceTimeOptions {
  /// Number of dyadic levels tracked: block sizes 2^0 .. 2^(levels-1).
  std::size_t levels = 20;
  /// Fit window: only levels with m >= fit_min_m enter the Hurst regression
  /// (the paper fits from ~100-200 frames upward, below which SRD effects
  /// dominate).
  std::size_t fit_min_m = 100;
  /// A level needs at least this many completed blocks to enter the fit
  /// (mirrors the batch estimator's max_m = n/10 rule of thumb).
  std::size_t min_blocks = 10;
};

struct StreamingVarianceTimePoint {
  std::size_t m = 0;               ///< dyadic aggregation block size
  std::size_t blocks = 0;          ///< completed blocks at this level
  double normalized_variance = 0;  ///< Var(X^(m)) / Var(X)
};

struct StreamingVarianceTimeResult {
  std::vector<StreamingVarianceTimePoint> points;
  LinearFit fit;        ///< log10(normalized variance) on log10(m)
  double beta = 1.0;    ///< -slope
  double hurst = 0.5;   ///< 1 - beta/2
};

class StreamingVarianceTime final : public Sink {
 public:
  explicit StreamingVarianceTime(const StreamingVarianceTimeOptions& options = {});

  void push(std::span<const double> samples) override;
  void merge(const Sink& other) override;
  std::unique_ptr<Sink> clone_empty() const override;
  void save(std::ostream& out) const override;
  void restore(std::istream& in) override;
  std::size_t count() const override { return n_; }
  const char* kind() const override { return "variance_time"; }

  const StreamingVarianceTimeOptions& options() const { return options_; }

  /// Variance-time points and the Hurst fit. Requires enough data for at
  /// least three fit-window levels (throws vbr::InvalidArgument otherwise).
  StreamingVarianceTimeResult result() const;

 private:
  // Welford accumulator of completed block means at one level.
  struct Level {
    std::size_t blocks = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double partial_sum = 0.0;   ///< sum of child means in the open block
    std::size_t partial_fill = 0;  ///< 0 or 1 child means accumulated (level > 0)

    void add_block_mean(double v);
    void merge_completed(const Level& other);
  };

  void push_value(double x);
  void cascade(std::size_t level, double mean);

  StreamingVarianceTimeOptions options_;
  std::vector<Level> levels_;
  std::size_t n_ = 0;
};

}  // namespace vbr::stream
