#include "vbr/stream/variance_time.hpp"

#include <cmath>
#include <utility>

#include "vbr/common/error.hpp"
#include "vbr/common/serialize.hpp"

namespace vbr::stream {

StreamingVarianceTime::StreamingVarianceTime(const StreamingVarianceTimeOptions& options)
    : options_(options) {
  VBR_ENSURE(options_.levels >= 2 && options_.levels <= 48,
             "StreamingVarianceTime needs between 2 and 48 dyadic levels");
  VBR_ENSURE(options_.min_blocks >= 2, "min_blocks must be at least 2");
  levels_.resize(options_.levels);
}

void StreamingVarianceTime::Level::add_block_mean(double v) {
  ++blocks;
  const double delta = v - mean;
  mean += delta / static_cast<double>(blocks);
  m2 += delta * (v - mean);
}

void StreamingVarianceTime::Level::merge_completed(const Level& other) {
  if (other.blocks == 0) return;
  if (blocks == 0) {
    blocks = other.blocks;
    mean = other.mean;
    m2 = other.m2;
    return;
  }
  const auto na = static_cast<double>(blocks);
  const auto nb = static_cast<double>(other.blocks);
  const double delta = other.mean - mean;
  mean += delta * nb / (na + nb);
  m2 += other.m2 + delta * delta * na * nb / (na + nb);
  blocks += other.blocks;
}

void StreamingVarianceTime::cascade(std::size_t level, double mean) {
  while (level < levels_.size()) {
    Level& l = levels_[level];
    // NOLINTNEXTLINE(vbr-naive-accumulation): pairwise by construction — at most two terms accumulate before the sum is consumed and reset.
    l.partial_sum += mean;
    if (++l.partial_fill < 2) return;
    mean = l.partial_sum / 2.0;
    l.partial_sum = 0.0;
    l.partial_fill = 0;
    l.add_block_mean(mean);
    ++level;
  }
}

void StreamingVarianceTime::push_value(double x) {
  VBR_DCHECK(std::isfinite(x), "non-finite sample pushed into StreamingVarianceTime");
  levels_[0].add_block_mean(x);
  cascade(1, x);
  ++n_;
}

void StreamingVarianceTime::push(std::span<const double> samples) {
  for (const double x : samples) push_value(x);
}

void StreamingVarianceTime::merge(const Sink& other) {
  const auto& peer = detail::merge_peer<StreamingVarianceTime>(other, kind());
  VBR_ENSURE(peer.levels_.size() == levels_.size() &&
                 peer.options_.fit_min_m == options_.fit_min_m &&
                 peer.options_.min_blocks == options_.min_blocks,
             "cannot merge StreamingVarianceTime sinks with different configurations");
  // Block-mean variance does not depend on block alignment, so completed
  // blocks combine exactly; our open partial blocks are discarded (at most
  // one per level) and the peer's remain the open ones. The same partials
  // are discarded whatever the merge order, so merging stays associative.
  for (std::size_t j = 0; j < levels_.size(); ++j) {
    levels_[j].merge_completed(peer.levels_[j]);
    levels_[j].partial_sum = peer.levels_[j].partial_sum;
    levels_[j].partial_fill = peer.levels_[j].partial_fill;
  }
  n_ += peer.n_;
}

std::unique_ptr<Sink> StreamingVarianceTime::clone_empty() const {
  return std::make_unique<StreamingVarianceTime>(options_);
}

void StreamingVarianceTime::save(std::ostream& out) const {
  io::write_string(out, kind());
  io::write_u64(out, options_.levels);
  io::write_u64(out, options_.fit_min_m);
  io::write_u64(out, options_.min_blocks);
  io::write_u64(out, n_);
  for (const Level& l : levels_) {
    io::write_u64(out, l.blocks);
    io::write_f64(out, l.mean);
    io::write_f64(out, l.m2);
    io::write_f64(out, l.partial_sum);
    io::write_u64(out, l.partial_fill);
  }
}

void StreamingVarianceTime::restore(std::istream& in) {
  io::read_tag(in, kind(), kind());
  const std::uint64_t levels = io::read_u64(in, kind());
  const std::uint64_t fit_min_m = io::read_u64(in, kind());
  const std::uint64_t min_blocks = io::read_u64(in, kind());
  if (levels != options_.levels || fit_min_m != options_.fit_min_m ||
      min_blocks != options_.min_blocks) {
    throw IoError("variance_time: serialized configuration does not match this sink");
  }
  const std::uint64_t n = io::read_u64(in, kind());
  std::vector<Level> restored(levels_.size());
  for (Level& l : restored) {
    l.blocks = static_cast<std::size_t>(io::read_u64(in, kind()));
    l.mean = io::read_f64(in, kind());
    l.m2 = io::read_f64(in, kind());
    l.partial_sum = io::read_f64(in, kind());
    const std::uint64_t fill = io::read_u64(in, kind());
    if (fill > 1) {
      throw IoError("variance_time: serialized partial fill out of range");
    }
    l.partial_fill = static_cast<std::size_t>(fill);
  }
  n_ = static_cast<std::size_t>(n);
  levels_ = std::move(restored);
}

StreamingVarianceTimeResult StreamingVarianceTime::result() const {
  VBR_ENSURE(levels_[0].blocks >= 2, "variance-time analysis needs a longer stream");
  const double base_variance =
      levels_[0].m2 / static_cast<double>(levels_[0].blocks - 1);
  VBR_ENSURE(base_variance > 0.0, "variance-time analysis of a constant stream");

  StreamingVarianceTimeResult out;
  std::vector<double> lx;
  std::vector<double> ly;
  std::size_t m = 1;
  for (const Level& l : levels_) {
    if (l.blocks >= 2) {
      const double var = l.m2 / static_cast<double>(l.blocks - 1);
      out.points.push_back({m, l.blocks, var / base_variance});
      if (m >= options_.fit_min_m && l.blocks >= options_.min_blocks && var > 0.0) {
        lx.push_back(std::log10(static_cast<double>(m)));
        ly.push_back(std::log10(var / base_variance));
      }
    }
    m *= 2;
  }
  VBR_ENSURE(lx.size() >= 3, "too few levels in the variance-time fit window");
  out.fit = linear_fit(lx, ly);
  out.beta = -out.fit.slope;
  out.hurst = 1.0 - out.beta / 2.0;
  VBR_CHECK_FINITE(out.hurst, "streaming variance-time Hurst estimate");
  return out;
}

}  // namespace vbr::stream
