// One-pass streaming analysis: the Sink composition layer.
//
// A Sink consumes a sample stream in bounded memory. Concrete sinks (the
// streaming estimators in this directory) additionally expose typed result
// accessors; the virtual interface exists so one trace pass can feed many
// estimators at once (SinkChain), and so the generation engine can tap
// per-source sample streams without knowing which statistics the caller
// wants.
//
// Merge semantics: `a.merge(b)` must behave as if b's sample stream had been
// appended to a's. Every estimator documents how exact its merge is; all of
// them are associative in exact arithmetic, which is what makes the engine's
// per-source merge deterministic for any thread count (sinks are merged in
// source order on one thread — scheduling never reorders the reduction).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <span>
#include <vector>

namespace vbr::stream {

/// Interface for one-pass, bounded-memory consumers of a sample stream.
class Sink {
 public:
  virtual ~Sink() = default;

  /// Consume a block of samples (appended to the stream seen so far).
  virtual void push(std::span<const double> samples) = 0;

  /// Consume a single sample.
  void push_one(double value) { push(std::span<const double>(&value, 1)); }

  /// Absorb `other` as if its stream had been appended to this one. `other`
  /// must be the same concrete type with a compatible configuration; throws
  /// vbr::InvalidArgument otherwise.
  virtual void merge(const Sink& other) = 0;

  /// A fresh sink of the same concrete type and configuration, with no
  /// samples. Used by the engine to give every source its own accumulator.
  virtual std::unique_ptr<Sink> clone_empty() const = 0;

  /// Serialize the complete accumulator state (kind tag + configuration +
  /// every state word, doubles as raw bit patterns). restore() on a sink of
  /// the same kind and configuration reproduces the state bit-for-bit:
  /// continuing the stream on the restored sink yields exactly the results
  /// the original would have produced (0 ulp — the checkpoint/resume
  /// determinism guarantee rests on this). Throws vbr::IoError on failure.
  virtual void save(std::ostream& out) const = 0;

  /// Inverse of save(). The sink must already be constructed with the same
  /// configuration the state was saved under; a kind or configuration
  /// mismatch, truncation, or a forged length throws vbr::IoError and leaves
  /// this sink unchanged. Previously accumulated samples are replaced.
  virtual void restore(std::istream& in) = 0;

  /// Number of samples consumed so far.
  virtual std::size_t count() const = 0;

  /// Short stable identifier ("moments", "acf", ...) used in error messages
  /// and reports.
  virtual const char* kind() const = 0;
};

/// Fan one sample stream into several sinks so a trace is read exactly once.
///
/// A chain built with the Sink& constructor does not own its children — the
/// caller keeps the concrete estimator objects and reads results from them
/// directly. clone_empty() returns an owning chain (used internally by the
/// engine tap); merging an owning clone back into the original view merges
/// child-by-child, in order.
class SinkChain final : public Sink {
 public:
  explicit SinkChain(std::vector<Sink*> sinks);

  void push(std::span<const double> samples) override;
  void merge(const Sink& other) override;
  std::unique_ptr<Sink> clone_empty() const override;
  /// Children serialize in chain order. restore() requires matching arity;
  /// if a child's restore throws, earlier children keep their restored state
  /// — discard the whole chain on failure (the campaign runner does).
  void save(std::ostream& out) const override;
  void restore(std::istream& in) override;
  std::size_t count() const override { return count_; }
  const char* kind() const override { return "chain"; }

  std::size_t size() const { return sinks_.size(); }
  Sink& at(std::size_t i) { return *sinks_.at(i); }
  const Sink& at(std::size_t i) const { return *sinks_.at(i); }

 private:
  std::vector<Sink*> sinks_;                    // the chain, in push order
  std::vector<std::unique_ptr<Sink>> owned_;    // non-empty only for clones
  std::size_t count_ = 0;
};

/// Convenience: chain(moments, acf, ...) — a non-owning SinkChain over the
/// given estimators, in argument order.
template <typename... Sinks>
SinkChain chain(Sinks&... sinks) {
  return SinkChain(std::vector<Sink*>{&sinks...});
}

namespace detail {

[[noreturn]] void merge_type_mismatch(const char* expected, const char* got);

/// Checked downcast for merge() implementations: throws vbr::InvalidArgument
/// with the sink kind on a type mismatch instead of std::bad_cast.
template <typename T>
const T& merge_peer(const Sink& other, const char* kind) {
  const T* peer = dynamic_cast<const T*>(&other);
  if (peer == nullptr) merge_type_mismatch(kind, other.kind());
  return *peer;
}

}  // namespace detail

}  // namespace vbr::stream
