// StreamingAcf: one-pass autocorrelation up to a fixed maximum lag (the
// streaming analogue of Fig. 7's ACF, restricted to the lag window that
// bounded memory allows).
//
// The estimator accumulates raw lagged cross products sum x_i * x_{i-k}
// against a ring buffer of the last max_lag samples, plus the stream total;
// at query time the mean correction is applied in closed form, so acf()
// equals the batch estimator (autocovariance / n, normalized at lag 0,
// global-mean centered) exactly in exact arithmetic — the only difference
// from stats::autocorrelation is floating-point summation order.
//
// merge() is exact: the cross products spanning the boundary between two
// sub-streams only involve the left stream's last max_lag samples (its ring
// buffer) and the right stream's first max_lag samples (kept for exactly
// this purpose), both of which are part of the sketch state. Memory is
// O(max_lag); per-sample cost is O(max_lag).
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "vbr/stream/sink.hpp"

namespace vbr::stream {

class StreamingAcf final : public Sink {
 public:
  explicit StreamingAcf(std::size_t max_lag);

  void push(std::span<const double> samples) override;
  void merge(const Sink& other) override;
  std::unique_ptr<Sink> clone_empty() const override;
  void save(std::ostream& out) const override;
  void restore(std::istream& in) override;
  std::size_t count() const override { return n_; }
  const char* kind() const override { return "acf"; }

  std::size_t max_lag() const { return max_lag_; }

  /// r(0..min(max_lag, count() - 1)); r[0] == 1. Requires count() >= 2 and a
  /// non-constant stream. Matches stats::autocorrelation on the same data up
  /// to floating-point summation order.
  std::vector<double> acf() const;

 private:
  void push_value(double x);
  double sample_back(std::size_t k) const;  ///< k-th most recent sample, k >= 1
  std::vector<double> last(std::size_t k) const;  ///< last k samples, oldest first

  std::size_t max_lag_ = 0;
  std::size_t n_ = 0;
  double sum_ = 0.0;
  double compensation_ = 0.0;          ///< Kahan carry for sum_
  std::vector<double> cross_;          ///< cross_[k] = sum_{i >= k} x_i * x_{i-k}
  std::vector<double> head_;           ///< first min(n, max_lag) samples
  std::vector<double> ring_;           ///< circular buffer of last max_lag samples
};

}  // namespace vbr::stream
