// StreamingWelchPeriodogram: segment-averaged power spectral density in
// O(segment_size) memory — the streaming analogue of Fig. 8's periodogram,
// usable as input to the low-frequency LRD slope estimate.
//
// Samples accumulate in a single segment buffer; each full segment is
// mean-removed, optionally Hann-windowed, transformed with the half-spectrum
// real FFT from common/fft, and its normalized ordinates
// |X_k|^2 / (2 pi sum w^2) added to a running average at the segment's
// Fourier frequencies. Averaging over segments is what makes the raw
// periodogram's noise go down; the cost is frequency resolution 2 pi /
// segment_size at the low end.
//
// merge() adds the power accumulators and segment counts (exact and
// associative); the left operand's partial segment is discarded (< one
// segment per merge boundary) and the right's remains open.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "vbr/stats/periodogram.hpp"
#include "vbr/stream/sink.hpp"

namespace vbr::stream {

struct WelchOptions {
  /// Samples per segment; must be a power of two >= 8.
  std::size_t segment_size = 4096;
  /// Apply a Hann window before the transform (rectangular otherwise).
  /// Rectangular matches stats::periodogram's normalization segment by
  /// segment; Hann trades a little bias at the lowest frequencies for much
  /// less spectral leakage.
  bool hann_window = false;
};

class StreamingWelchPeriodogram final : public Sink {
 public:
  explicit StreamingWelchPeriodogram(const WelchOptions& options = {});

  void push(std::span<const double> samples) override;
  void merge(const Sink& other) override;
  std::unique_ptr<Sink> clone_empty() const override;
  void save(std::ostream& out) const override;
  void restore(std::istream& in) override;
  std::size_t count() const override { return n_; }
  const char* kind() const override { return "welch"; }

  const WelchOptions& options() const { return options_; }
  std::size_t segments() const { return segments_; }

  /// Segment-averaged periodogram at the Fourier frequencies of one
  /// segment, in the same (frequency, power) shape as stats::periodogram,
  /// so stats::low_frequency_slope and stats::log_binned apply directly.
  /// Requires at least one completed segment.
  stats::Periodogram result() const;

 private:
  void flush_segment();

  WelchOptions options_;
  std::vector<double> buffer_;       ///< open segment, buffer_fill_ valid
  std::size_t buffer_fill_ = 0;
  std::vector<double> power_sum_;    ///< summed normalized ordinates, k = 1..
  std::size_t segments_ = 0;
  std::size_t n_ = 0;
};

}  // namespace vbr::stream
