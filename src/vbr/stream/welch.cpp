#include "vbr/stream/welch.hpp"

#include <cmath>
#include <complex>
#include <numbers>

#include "vbr/common/error.hpp"
#include "vbr/common/fft.hpp"
#include "vbr/common/math_util.hpp"

namespace vbr::stream {

StreamingWelchPeriodogram::StreamingWelchPeriodogram(const WelchOptions& options)
    : options_(options) {
  VBR_ENSURE(options_.segment_size >= 8 && is_power_of_two(options_.segment_size),
             "Welch segment size must be a power of two >= 8");
  buffer_.assign(options_.segment_size, 0.0);
  power_sum_.assign((options_.segment_size - 1) / 2, 0.0);
}

void StreamingWelchPeriodogram::flush_segment() {
  const std::size_t s = options_.segment_size;
  // Per-segment mean removal (Welch's detrend); the global-mean batch
  // periodogram differs only in the lowest ordinate's leakage.
  const double mean = kahan_total(buffer_) / static_cast<double>(s);
  std::vector<double> seg(s);
  double window_power = 0.0;
  for (std::size_t i = 0; i < s; ++i) {
    double w = 1.0;
    if (options_.hann_window) {
      w = 0.5 * (1.0 - std::cos(2.0 * std::numbers::pi * static_cast<double>(i) /
                                static_cast<double>(s)));
    }
    seg[i] = (buffer_[i] - mean) * w;
    window_power += w * w;
  }
  const auto spectrum = rfft(seg);
  const double norm = 1.0 / (2.0 * std::numbers::pi * window_power);
  for (std::size_t k = 0; k < power_sum_.size(); ++k) {
    const double p = std::norm(spectrum[k + 1]) * norm;
    VBR_DCHECK(std::isfinite(p), "non-finite Welch ordinate");
    power_sum_[k] += p;
  }
  ++segments_;
  buffer_fill_ = 0;
}

void StreamingWelchPeriodogram::push(std::span<const double> samples) {
  for (const double x : samples) {
    VBR_DCHECK(std::isfinite(x), "non-finite sample pushed into Welch periodogram");
    buffer_[buffer_fill_++] = x;
    ++n_;
    if (buffer_fill_ == options_.segment_size) flush_segment();
  }
}

void StreamingWelchPeriodogram::merge(const Sink& other) {
  const auto& peer = detail::merge_peer<StreamingWelchPeriodogram>(other, kind());
  VBR_ENSURE(peer.options_.segment_size == options_.segment_size &&
                 peer.options_.hann_window == options_.hann_window,
             "cannot merge Welch sinks with different configurations");
  // Completed segments add exactly; our open partial segment (if any) is
  // discarded at the boundary and the peer's stays open.
  for (std::size_t k = 0; k < power_sum_.size(); ++k) power_sum_[k] += peer.power_sum_[k];
  segments_ += peer.segments_;
  buffer_ = peer.buffer_;
  buffer_fill_ = peer.buffer_fill_;
  n_ += peer.n_;
}

std::unique_ptr<Sink> StreamingWelchPeriodogram::clone_empty() const {
  return std::make_unique<StreamingWelchPeriodogram>(options_);
}

stats::Periodogram StreamingWelchPeriodogram::result() const {
  VBR_ENSURE(segments_ >= 1, "Welch periodogram needs at least one full segment");
  stats::Periodogram pg;
  pg.frequency.reserve(power_sum_.size());
  pg.power.reserve(power_sum_.size());
  const auto s = static_cast<double>(options_.segment_size);
  for (std::size_t k = 0; k < power_sum_.size(); ++k) {
    pg.frequency.push_back(2.0 * std::numbers::pi * static_cast<double>(k + 1) / s);
    pg.power.push_back(power_sum_[k] / static_cast<double>(segments_));
  }
  return pg;
}

}  // namespace vbr::stream
