#include "vbr/stream/welch.hpp"

#include <cmath>
#include <complex>
#include <numbers>

#include "vbr/common/error.hpp"
#include "vbr/common/fft.hpp"
#include "vbr/common/math_util.hpp"
#include "vbr/common/serialize.hpp"

namespace vbr::stream {

StreamingWelchPeriodogram::StreamingWelchPeriodogram(const WelchOptions& options)
    : options_(options) {
  VBR_ENSURE(options_.segment_size >= 8 && is_power_of_two(options_.segment_size),
             "Welch segment size must be a power of two >= 8");
  buffer_.assign(options_.segment_size, 0.0);
  power_sum_.assign((options_.segment_size - 1) / 2, 0.0);
}

void StreamingWelchPeriodogram::flush_segment() {
  const std::size_t s = options_.segment_size;
  // Per-segment mean removal (Welch's detrend); the global-mean batch
  // periodogram differs only in the lowest ordinate's leakage.
  const double mean = kahan_total(buffer_) / static_cast<double>(s);
  std::vector<double> seg(s);
  KahanSum window_power;
  for (std::size_t i = 0; i < s; ++i) {
    double w = 1.0;
    if (options_.hann_window) {
      w = 0.5 * (1.0 - std::cos(2.0 * std::numbers::pi * static_cast<double>(i) /
                                static_cast<double>(s)));
    }
    seg[i] = (buffer_[i] - mean) * w;
    window_power.add(w * w);
  }
  const auto spectrum = rfft(seg);
  const double norm = 1.0 / (2.0 * std::numbers::pi * window_power.value());
  for (std::size_t k = 0; k < power_sum_.size(); ++k) {
    const double p = std::norm(spectrum[k + 1]) * norm;
    VBR_DCHECK(std::isfinite(p), "non-finite Welch ordinate");
    // NOLINTNEXTLINE(vbr-naive-accumulation): ordinates are nonnegative (no cancellation) and power_sum_ is snapshot-serialized state; a compensation vector would change the on-disk format and the merge identity.
    power_sum_[k] += p;
  }
  ++segments_;
  buffer_fill_ = 0;
}

void StreamingWelchPeriodogram::push(std::span<const double> samples) {
  for (const double x : samples) {
    VBR_DCHECK(std::isfinite(x), "non-finite sample pushed into Welch periodogram");
    buffer_[buffer_fill_++] = x;
    ++n_;
    if (buffer_fill_ == options_.segment_size) flush_segment();
  }
}

void StreamingWelchPeriodogram::merge(const Sink& other) {
  const auto& peer = detail::merge_peer<StreamingWelchPeriodogram>(other, kind());
  VBR_ENSURE(peer.options_.segment_size == options_.segment_size &&
                 peer.options_.hann_window == options_.hann_window,
             "cannot merge Welch sinks with different configurations");
  // Completed segments add exactly; our open partial segment (if any) is
  // discarded at the boundary and the peer's stays open.
  // NOLINTNEXTLINE(vbr-naive-accumulation): one nonnegative term per peer; same serialized-state constraint as flush_segment.
  for (std::size_t k = 0; k < power_sum_.size(); ++k) power_sum_[k] += peer.power_sum_[k];
  segments_ += peer.segments_;
  buffer_ = peer.buffer_;
  buffer_fill_ = peer.buffer_fill_;
  n_ += peer.n_;
}

std::unique_ptr<Sink> StreamingWelchPeriodogram::clone_empty() const {
  return std::make_unique<StreamingWelchPeriodogram>(options_);
}

void StreamingWelchPeriodogram::save(std::ostream& out) const {
  io::write_string(out, kind());
  io::write_u64(out, options_.segment_size);
  io::write_u8(out, options_.hann_window ? 1 : 0);
  io::write_u64(out, n_);
  io::write_u64(out, segments_);
  io::write_u64(out, buffer_fill_);
  io::write_f64_vector(out, buffer_);
  io::write_f64_vector(out, power_sum_);
}

void StreamingWelchPeriodogram::restore(std::istream& in) {
  io::read_tag(in, kind(), kind());
  const std::uint64_t segment_size = io::read_u64(in, kind());
  const std::uint8_t hann = io::read_u8(in, kind());
  if (segment_size != options_.segment_size || (hann != 0) != options_.hann_window) {
    throw IoError("welch: serialized configuration does not match this sink");
  }
  const std::uint64_t n = io::read_u64(in, kind());
  const std::uint64_t segments = io::read_u64(in, kind());
  const std::uint64_t fill = io::read_u64(in, kind());
  if (fill >= options_.segment_size) {
    throw IoError("welch: serialized partial-segment fill out of range");
  }
  std::vector<double> buffer = io::read_f64_vector(in, options_.segment_size, kind());
  std::vector<double> power = io::read_f64_vector(in, power_sum_.size(), kind());
  if (buffer.size() != options_.segment_size || power.size() != power_sum_.size()) {
    throw IoError("welch: serialized buffer sizes do not match this configuration");
  }
  n_ = static_cast<std::size_t>(n);
  segments_ = static_cast<std::size_t>(segments);
  buffer_fill_ = static_cast<std::size_t>(fill);
  buffer_ = std::move(buffer);
  power_sum_ = std::move(power);
}

stats::Periodogram StreamingWelchPeriodogram::result() const {
  VBR_ENSURE(segments_ >= 1, "Welch periodogram needs at least one full segment");
  stats::Periodogram pg;
  pg.frequency.reserve(power_sum_.size());
  pg.power.reserve(power_sum_.size());
  const auto s = static_cast<double>(options_.segment_size);
  for (std::size_t k = 0; k < power_sum_.size(); ++k) {
    pg.frequency.push_back(2.0 * std::numbers::pi * static_cast<double>(k + 1) / s);
    pg.power.push_back(power_sum_[k] / static_cast<double>(segments_));
  }
  return pg;
}

}  // namespace vbr::stream
