// StreamingMoments: one-pass mean/variance/skewness/kurtosis plus min/max
// and the paper's burstiness ratios (Table 2), in O(1) memory.
//
// Update is Welford's algorithm extended to third and fourth central moments
// (Pebay's formulas); merge is the pairwise combination of the same
// quantities (Chan et al.), which is exact in exact arithmetic and
// associative, so per-source engine sinks reduce deterministically.
#pragma once

#include <cstddef>
#include <limits>
#include <memory>
#include <span>

#include "vbr/stream/sink.hpp"

namespace vbr::stream {

class StreamingMoments final : public Sink {
 public:
  StreamingMoments() = default;

  void push(std::span<const double> samples) override;
  void merge(const Sink& other) override;
  std::unique_ptr<Sink> clone_empty() const override;
  void save(std::ostream& out) const override;
  void restore(std::istream& in) override;
  std::size_t count() const override { return n_; }
  const char* kind() const override { return "moments"; }

  double mean() const { return mean_; }
  /// Unbiased (n-1) sample variance; requires count() >= 2.
  double variance() const;
  double stddev() const;
  /// sigma / mu (Table 2's coefficient of variation).
  double coefficient_of_variation() const;
  /// Standardized third moment g1 = sqrt(n) M3 / M2^{3/2}.
  double skewness() const;
  /// Excess kurtosis g2 = n M4 / M2^2 - 3.
  double excess_kurtosis() const;
  double min() const { return min_; }
  double max() const { return max_; }
  /// Burstiness: max / mean (Table 2's peak/mean ratio).
  double peak_to_mean() const;
  /// Running total of the samples (mean * count, tracked directly).
  double total() const { return mean_ * static_cast<double>(n_); }

 private:
  void push_value(double x);
  void merge_counts(std::size_t nb, double mean_b, double m2_b, double m3_b, double m4_b);

  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;  ///< sum of (x - mean)^2
  double m3_ = 0.0;  ///< sum of (x - mean)^3
  double m4_ = 0.0;  ///< sum of (x - mean)^4
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace vbr::stream
