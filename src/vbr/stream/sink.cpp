#include "vbr/stream/sink.hpp"

#include <string>

#include "vbr/common/error.hpp"
#include "vbr/common/serialize.hpp"

namespace vbr::stream {

namespace detail {

void merge_type_mismatch(const char* expected, const char* got) {
  throw InvalidArgument(std::string("cannot merge sink of kind '") + got +
                        "' into sink of kind '" + expected + "'");
}

}  // namespace detail

SinkChain::SinkChain(std::vector<Sink*> sinks) : sinks_(std::move(sinks)) {
  VBR_ENSURE(!sinks_.empty(), "a sink chain needs at least one sink");
  for (const Sink* s : sinks_) VBR_ENSURE(s != nullptr, "null sink in chain");
}

void SinkChain::push(std::span<const double> samples) {
  for (Sink* s : sinks_) s->push(samples);
  count_ += samples.size();
}

void SinkChain::merge(const Sink& other) {
  const auto& peer = detail::merge_peer<SinkChain>(other, kind());
  VBR_ENSURE(peer.sinks_.size() == sinks_.size(),
             "cannot merge sink chains of different arity");
  for (std::size_t i = 0; i < sinks_.size(); ++i) sinks_[i]->merge(*peer.sinks_[i]);
  count_ += peer.count_;
}

void SinkChain::save(std::ostream& out) const {
  io::write_string(out, kind());
  io::write_u32(out, static_cast<std::uint32_t>(sinks_.size()));
  io::write_u64(out, count_);
  for (const Sink* s : sinks_) s->save(out);
}

void SinkChain::restore(std::istream& in) {
  io::read_tag(in, kind(), kind());
  const std::uint32_t arity = io::read_u32(in, kind());
  if (arity != sinks_.size()) {
    throw IoError("chain: serialized arity " + std::to_string(arity) +
                  " does not match this chain of " + std::to_string(sinks_.size()));
  }
  const std::uint64_t count = io::read_u64(in, kind());
  for (Sink* s : sinks_) s->restore(in);
  count_ = static_cast<std::size_t>(count);
}

std::unique_ptr<Sink> SinkChain::clone_empty() const {
  auto clone = std::make_unique<SinkChain>(sinks_);  // placeholder pointers
  clone->owned_.reserve(sinks_.size());
  for (std::size_t i = 0; i < sinks_.size(); ++i) {
    clone->owned_.push_back(sinks_[i]->clone_empty());
    clone->sinks_[i] = clone->owned_.back().get();
  }
  clone->count_ = 0;
  return clone;
}

}  // namespace vbr::stream
