// StreamingQuantiles: a bounded-memory quantile / CCDF sketch for the
// marginal distribution exhibits (the log-log CCDF of Fig. 4 and the
// Gamma/Pareto tail region).
//
// Design note: the classic P² algorithm tracks five markers per target
// quantile in O(1) memory, but two P² sketches cannot be merged, and the
// engine tap needs an associative merge to stay deterministic. We therefore
// use the other standard constant-memory design — a geometric (log-spaced)
// bucket sketch in the style of DDSketch/HDR histograms: bucket i covers
// [lo * g^i, lo * g^(i+1)), so every quantile estimate carries a bounded
// *relative* error of about `relative_error`, which is exactly the guarantee
// a log-log tail plot needs. Two sketches with the same configuration merge
// exactly (integer bucket counts add), so merge is associative and the
// split-k/merge result is identical to the single-pass sketch.
//
// Memory: O(log(hi/lo) / log(1 + 2*eps)) buckets — 1.5k doubles for the
// default [1, 1e12] range at 1% relative error — independent of stream
// length.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "vbr/stream/sink.hpp"

namespace vbr::stream {

struct QuantileSketchOptions {
  /// Quantile estimates are within this relative error of an exact
  /// order-statistic quantile (for values inside [min_value, max_value]).
  double relative_error = 0.01;
  /// Values below min_value (including zeros) land in one underflow bucket
  /// reported as min_value; values above max_value saturate the top bucket.
  double min_value = 1.0;
  double max_value = 1e12;
};

class StreamingQuantiles final : public Sink {
 public:
  explicit StreamingQuantiles(const QuantileSketchOptions& options = {});

  void push(std::span<const double> samples) override;
  void merge(const Sink& other) override;
  std::unique_ptr<Sink> clone_empty() const override;
  void save(std::ostream& out) const override;
  void restore(std::istream& in) override;
  std::size_t count() const override { return count_; }
  const char* kind() const override { return "quantiles"; }

  const QuantileSketchOptions& options() const { return options_; }

  /// Order-statistic quantile estimate, q in [0, 1]; requires count() >= 1.
  /// Exact for q = 0 and q = 1 (true min/max are tracked separately).
  double quantile(double q) const;

  /// P(X > x) estimate from the sketch.
  double ccdf(double x) const;

  /// Log-spaced (x, P(X > x)) points across the sketch's occupied range,
  /// for a Fig. 4-style log-log CCDF plot. Points with CCDF 0 are dropped.
  struct Curve {
    std::vector<double> x;
    std::vector<double> p;
  };
  Curve ccdf_curve(std::size_t points) const;

  double min() const;
  double max() const;

 private:
  std::size_t bucket_index(double v) const;
  double bucket_value(std::size_t i) const;

  QuantileSketchOptions options_;
  double log_gamma_ = 0.0;               ///< log of the bucket growth factor
  std::vector<std::uint64_t> counts_;    ///< [underflow, buckets..., overflow]
  std::size_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace vbr::stream
