#include "vbr/stream/acf.hpp"

#include <algorithm>
#include <cmath>

#include "vbr/common/error.hpp"
#include "vbr/common/serialize.hpp"

namespace vbr::stream {

StreamingAcf::StreamingAcf(std::size_t max_lag) : max_lag_(max_lag) {
  VBR_ENSURE(max_lag_ >= 1, "StreamingAcf needs max_lag >= 1");
  cross_.assign(max_lag_ + 1, 0.0);
  ring_.assign(max_lag_, 0.0);
  head_.reserve(max_lag_);
}

double StreamingAcf::sample_back(std::size_t k) const {
  // k-th most recent sample: stream index n_ - k, k in [1, min(n_, max_lag_)].
  return ring_[(n_ - k) % max_lag_];
}

std::vector<double> StreamingAcf::last(std::size_t k) const {
  std::vector<double> out;
  out.reserve(k);
  for (std::size_t j = k; j >= 1; --j) out.push_back(sample_back(j));
  return out;
}

void StreamingAcf::push_value(double x) {
  VBR_DCHECK(std::isfinite(x), "non-finite sample pushed into StreamingAcf");
  const std::size_t lags = std::min(max_lag_, n_);
  // NOLINTBEGIN(vbr-naive-accumulation): the per-lag cross products are snapshot-serialized state with merge identities pinned bit-exact by tests; per-lag compensation would enter the on-disk format. The cancellation-prone term — the stream total — is Kahan-compensated below.
  for (std::size_t k = 1; k <= lags; ++k) cross_[k] += x * sample_back(k);
  cross_[0] += x * x;
  // NOLINTEND(vbr-naive-accumulation)
  // Kahan step for the stream total; the mean correction in acf() subtracts
  // two totals of similar magnitude, so the total is worth keeping exact.
  const double y = x - compensation_;
  const double t = sum_ + y;
  compensation_ = (t - sum_) - y;
  sum_ = t;
  ring_[n_ % max_lag_] = x;
  if (n_ < max_lag_) head_.push_back(x);
  ++n_;
}

void StreamingAcf::push(std::span<const double> samples) {
  for (const double x : samples) push_value(x);
}

void StreamingAcf::merge(const Sink& other) {
  const auto& peer = detail::merge_peer<StreamingAcf>(other, kind());
  VBR_ENSURE(peer.max_lag_ == max_lag_,
             "cannot merge StreamingAcf sketches with different max_lag");
  if (peer.n_ == 0) return;
  if (n_ == 0) {
    *this = peer;
    return;
  }

  // Boundary cross products: peer sample j (global index n_ + j) pairs at
  // lag k with this stream's sample n_ + j - k, i.e. our (k - j)-th most
  // recent sample. Only j < k contributes, and only while k - j <= n_.
  // Everything needed is in peer.head_ and our ring — compute before any
  // state is overwritten.
  // NOLINTBEGIN(vbr-naive-accumulation): same serialized-state constraint as push_value; the boundary terms must add in plain order to reproduce the single-stream result bit-exactly.
  for (std::size_t k = 1; k <= max_lag_; ++k) {
    const std::size_t j_end = std::min<std::size_t>(k, peer.head_.size());
    for (std::size_t j = (k > n_) ? k - n_ : 0; j < j_end; ++j) {
      cross_[k] += peer.head_[j] * sample_back(k - j);
    }
  }
  for (std::size_t k = 0; k <= max_lag_; ++k) cross_[k] += peer.cross_[k];
  // NOLINTEND(vbr-naive-accumulation)

  // New last-max_lag window of the concatenated stream.
  const std::size_t from_peer = std::min(peer.n_, max_lag_);
  const std::size_t from_this = std::min(n_, max_lag_ - from_peer);
  std::vector<double> tail = last(from_this);
  const std::vector<double> peer_tail = peer.last(from_peer);
  tail.insert(tail.end(), peer_tail.begin(), peer_tail.end());

  if (head_.size() < max_lag_) {
    const std::size_t take = std::min(peer.head_.size(), max_lag_ - head_.size());
    head_.insert(head_.end(), peer.head_.begin(), peer.head_.begin() + take);
  }

  sum_ += peer.sum_;
  compensation_ = 0.0;
  const std::size_t new_n = n_ + peer.n_;
  for (std::size_t idx = 0; idx < tail.size(); ++idx) {
    const std::size_t pos = new_n - tail.size() + idx;
    ring_[pos % max_lag_] = tail[idx];
  }
  n_ = new_n;
}

std::unique_ptr<Sink> StreamingAcf::clone_empty() const {
  return std::make_unique<StreamingAcf>(max_lag_);
}

void StreamingAcf::save(std::ostream& out) const {
  io::write_string(out, kind());
  io::write_u64(out, max_lag_);
  io::write_u64(out, n_);
  io::write_f64(out, sum_);
  io::write_f64(out, compensation_);
  io::write_f64_vector(out, cross_);
  io::write_f64_vector(out, head_);
  io::write_f64_vector(out, ring_);
}

void StreamingAcf::restore(std::istream& in) {
  io::read_tag(in, kind(), kind());
  const std::uint64_t max_lag = io::read_u64(in, kind());
  if (max_lag != max_lag_) {
    throw IoError("acf: serialized max_lag does not match this sink");
  }
  const std::uint64_t n = io::read_u64(in, kind());
  const double sum = io::read_f64(in, kind());
  const double compensation = io::read_f64(in, kind());
  std::vector<double> cross = io::read_f64_vector(in, max_lag_ + 1, kind());
  std::vector<double> head = io::read_f64_vector(in, max_lag_, kind());
  std::vector<double> ring = io::read_f64_vector(in, max_lag_, kind());
  if (cross.size() != max_lag_ + 1 || ring.size() != max_lag_ ||
      head.size() != std::min<std::uint64_t>(n, max_lag_)) {
    throw IoError("acf: serialized buffer sizes are inconsistent with the sample count");
  }
  n_ = static_cast<std::size_t>(n);
  sum_ = sum;
  compensation_ = compensation;
  cross_ = std::move(cross);
  head_ = std::move(head);
  ring_ = std::move(ring);
}

std::vector<double> StreamingAcf::acf() const {
  VBR_ENSURE(n_ >= 2, "autocorrelation requires at least two samples");
  const std::size_t lags = std::min(max_lag_, n_ - 1);
  const auto n = static_cast<double>(n_);
  const double mean = sum_ / n;

  // Partial sums over the first and last k samples, k <= lags.
  std::vector<double> first_sums(lags + 1, 0.0);
  for (std::size_t k = 1; k <= lags; ++k) first_sums[k] = first_sums[k - 1] + head_[k - 1];
  std::vector<double> last_sums(lags + 1, 0.0);
  for (std::size_t k = 1; k <= lags; ++k) last_sums[k] = last_sums[k - 1] + sample_back(k);

  // sum_{i=k}^{n-1} (x_i - m)(x_{i-k} - m)
  //   = cross_k - m * (2S - first_sums[k] - last_sums[k]) + (n - k) m^2.
  std::vector<double> r(lags + 1, 0.0);
  const double c0 = cross_[0] - mean * (2.0 * sum_) + n * mean * mean;
  VBR_ENSURE(c0 > 0.0, "autocorrelation of a constant series is undefined");
  r[0] = 1.0;
  for (std::size_t k = 1; k <= lags; ++k) {
    const double ck = cross_[k] -
                      mean * (2.0 * sum_ - first_sums[k] - last_sums[k]) +
                      (n - static_cast<double>(k)) * mean * mean;
    r[k] = ck / c0;
  }
  return r;
}

}  // namespace vbr::stream
