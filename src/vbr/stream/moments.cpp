#include "vbr/stream/moments.hpp"

#include <algorithm>
#include <cmath>

#include "vbr/common/error.hpp"
#include "vbr/common/serialize.hpp"

namespace vbr::stream {

void StreamingMoments::push_value(double x) {
  VBR_DCHECK(std::isfinite(x), "non-finite sample pushed into StreamingMoments");
  const auto n1 = static_cast<double>(n_);
  ++n_;
  const auto n = static_cast<double>(n_);
  const double delta = x - mean_;
  const double delta_n = delta / n;
  const double delta_n2 = delta_n * delta_n;
  const double term1 = delta * delta_n * n1;
  mean_ += delta_n;
  m4_ += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * m2_ -
         4.0 * delta_n * m3_;
  m3_ += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * m2_;
  m2_ += term1;
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void StreamingMoments::push(std::span<const double> samples) {
  for (const double x : samples) push_value(x);
}

void StreamingMoments::merge_counts(std::size_t nb_count, double mean_b, double m2_b,
                                    double m3_b, double m4_b) {
  if (nb_count == 0) return;
  if (n_ == 0) {
    n_ = nb_count;
    mean_ = mean_b;
    m2_ = m2_b;
    m3_ = m3_b;
    m4_ = m4_b;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(nb_count);
  const double n = na + nb;
  const double delta = mean_b - mean_;
  const double delta2 = delta * delta;

  const double mean = mean_ + delta * nb / n;
  const double m2 = m2_ + m2_b + delta2 * na * nb / n;
  const double m3 = m3_ + m3_b + delta * delta2 * na * nb * (na - nb) / (n * n) +
                    3.0 * delta * (na * m2_b - nb * m2_) / n;
  const double m4 = m4_ + m4_b +
                    delta2 * delta2 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n) +
                    6.0 * delta2 * (na * na * m2_b + nb * nb * m2_) / (n * n) +
                    4.0 * delta * (na * m3_b - nb * m3_) / n;

  n_ += nb_count;
  mean_ = mean;
  m2_ = m2;
  m3_ = m3;
  m4_ = m4;
}

void StreamingMoments::merge(const Sink& other) {
  const auto& peer = detail::merge_peer<StreamingMoments>(other, kind());
  merge_counts(peer.n_, peer.mean_, peer.m2_, peer.m3_, peer.m4_);
  min_ = std::min(min_, peer.min_);
  max_ = std::max(max_, peer.max_);
}

std::unique_ptr<Sink> StreamingMoments::clone_empty() const {
  return std::make_unique<StreamingMoments>();
}

void StreamingMoments::save(std::ostream& out) const {
  io::write_string(out, kind());
  io::write_u64(out, n_);
  io::write_f64(out, mean_);
  io::write_f64(out, m2_);
  io::write_f64(out, m3_);
  io::write_f64(out, m4_);
  io::write_f64(out, min_);
  io::write_f64(out, max_);
}

void StreamingMoments::restore(std::istream& in) {
  io::read_tag(in, kind(), kind());
  const std::uint64_t n = io::read_u64(in, kind());
  const double mean = io::read_f64(in, kind());
  const double m2 = io::read_f64(in, kind());
  const double m3 = io::read_f64(in, kind());
  const double m4 = io::read_f64(in, kind());
  const double mn = io::read_f64(in, kind());
  const double mx = io::read_f64(in, kind());
  n_ = static_cast<std::size_t>(n);
  mean_ = mean;
  m2_ = m2;
  m3_ = m3;
  m4_ = m4;
  min_ = mn;
  max_ = mx;
}

double StreamingMoments::variance() const {
  VBR_ENSURE(n_ >= 2, "variance needs at least two samples");
  return m2_ / static_cast<double>(n_ - 1);
}

double StreamingMoments::stddev() const { return std::sqrt(variance()); }

double StreamingMoments::coefficient_of_variation() const {
  VBR_ENSURE(mean_ != 0.0, "coefficient of variation of a zero-mean stream");
  return stddev() / mean_;
}

double StreamingMoments::skewness() const {
  VBR_ENSURE(n_ >= 3, "skewness needs at least three samples");
  VBR_ENSURE(m2_ > 0.0, "skewness of a constant stream");
  const auto n = static_cast<double>(n_);
  return std::sqrt(n) * m3_ / std::pow(m2_, 1.5);
}

double StreamingMoments::excess_kurtosis() const {
  VBR_ENSURE(n_ >= 4, "kurtosis needs at least four samples");
  VBR_ENSURE(m2_ > 0.0, "kurtosis of a constant stream");
  const auto n = static_cast<double>(n_);
  return n * m4_ / (m2_ * m2_) - 3.0;
}

double StreamingMoments::peak_to_mean() const {
  VBR_ENSURE(n_ >= 1 && mean_ != 0.0, "peak-to-mean of an empty or zero-mean stream");
  return max_ / mean_;
}

}  // namespace vbr::stream
