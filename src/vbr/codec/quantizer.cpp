#include "vbr/codec/quantizer.hpp"

#include <algorithm>
#include <cmath>

#include "vbr/common/error.hpp"

namespace vbr::codec {

UniformQuantizer::UniformQuantizer(double step) : step_(step) {
  VBR_ENSURE(step >= 1.0, "quantizer step must be >= 1");
}

std::int16_t UniformQuantizer::quantize(double coefficient) const {
  const double level = std::round(coefficient / step_);
  // 8-bit levels as in the paper.
  return static_cast<std::int16_t>(std::clamp(level, -128.0, 127.0));
}

double UniformQuantizer::dequantize(std::int16_t level) const {
  return static_cast<double>(level) * step_;
}

std::array<std::int16_t, 64> UniformQuantizer::quantize_block(const Block& coefficients) const {
  std::array<std::int16_t, 64> out{};
  for (std::size_t i = 0; i < 64; ++i) out[i] = quantize(coefficients[i]);
  return out;
}

Block UniformQuantizer::dequantize_block(const std::array<std::int16_t, 64>& levels) const {
  Block out;
  for (std::size_t i = 0; i < 64; ++i) out[i] = dequantize(levels[i]);
  return out;
}

}  // namespace vbr::codec
