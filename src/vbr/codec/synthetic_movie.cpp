#include "vbr/codec/synthetic_movie.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "vbr/common/error.hpp"
#include "vbr/common/rng.hpp"

namespace vbr::codec {
namespace {

// Cheap integer hash for per-pixel film grain, stable across platforms.
std::uint32_t pixel_hash(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return static_cast<std::uint32_t>(x);
}

double grain_noise(std::size_t x, std::size_t y, std::size_t frame, std::uint64_t seed) {
  const std::uint64_t key = seed ^ (static_cast<std::uint64_t>(frame) << 40) ^
                            (static_cast<std::uint64_t>(y) << 20) ^ x;
  // Map to [-1, 1).
  return static_cast<double>(pixel_hash(key)) * (2.0 / 4294967296.0) - 1.0;
}

}  // namespace

SyntheticMovie::SyntheticMovie(const MovieConfig& config, std::size_t total_frames)
    : config_(config), total_frames_(total_frames) {
  VBR_ENSURE(total_frames >= 1, "movie needs at least one frame");
  vbr::Rng rng(config.seed);
  vbr::trace::SceneModel model(config.scene_params);
  scenes_ = model.generate(total_frames, rng);

  scene_of_frame_.assign(total_frames, 0);
  for (std::size_t s = 0; s < scenes_.size(); ++s) {
    const auto end = std::min(total_frames, scenes_[s].start_frame + scenes_[s].length);
    for (std::size_t f = scenes_[s].start_frame; f < end; ++f) scene_of_frame_[f] = s;
  }
}

const vbr::trace::Scene& SyntheticMovie::scene_at(std::size_t frame_index) const {
  VBR_ENSURE(frame_index < total_frames_, "frame index out of range");
  return scenes_[scene_of_frame_[frame_index]];
}

SyntheticMovie::Texture SyntheticMovie::texture_for(const vbr::trace::Scene& scene) const {
  // Deterministic per-shot look: the texture id seeds the generator, so a
  // dialog alternation returns to exactly the same backdrop.
  vbr::Rng rng(config_.seed ^ (0xABCDULL + 0x9e3779b97f4a7c15ULL *
                               static_cast<std::uint64_t>(scene.texture_id + 1)));
  Texture tex;
  // 3-6 octaves; higher complexity shifts amplitude into higher spatial
  // frequencies, which is what costs bits in a DCT coder.
  const auto octaves = static_cast<std::size_t>(3 + rng.uniform_index(4));
  for (std::size_t o = 0; o < octaves; ++o) {
    Wave w;
    // Frequencies from ~1 cycle per 64 px up to ~1 cycle per 3 px.
    const double cycles_per_pixel =
        (1.0 / 64.0) * std::pow(2.0, static_cast<double>(o) + rng.uniform(0.0, 1.0));
    const double angle = rng.uniform(0.0, std::numbers::pi);
    w.fx = cycles_per_pixel * std::cos(angle);
    w.fy = cycles_per_pixel * std::sin(angle);
    // Base spectrum ~ 1/f; complexity boosts the high-frequency octaves.
    const double octave_weight =
        std::pow(0.6, static_cast<double>(o)) +
        scene.complexity * 0.35 * static_cast<double>(o) / static_cast<double>(octaves);
    w.amplitude = config_.base_detail * scene.complexity * octave_weight *
                  rng.uniform(0.6, 1.0);
    w.phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
    // Motion pans the higher octaves faster (parallax-ish).
    w.pan = scene.motion * rng.uniform(0.005, 0.05) * static_cast<double>(o + 1);
    tex.waves.push_back(w);
  }
  tex.grain_amplitude = config_.grain * config_.base_detail *
                        std::sqrt(std::max(0.05, scene.complexity));
  return tex;
}

Frame SyntheticMovie::frame(std::size_t index) const {
  VBR_ENSURE(index < total_frames_, "frame index out of range");
  const auto& scene = scene_at(index);
  const Texture tex = texture_for(scene);
  const double t = static_cast<double>(index - scene.start_frame);

  Frame out(config_.width, config_.height);
  for (std::size_t y = 0; y < config_.height; ++y) {
    for (std::size_t x = 0; x < config_.width; ++x) {
      double v = 0.0;
      for (const Wave& w : tex.waves) {
        v += w.amplitude *
             std::sin(2.0 * std::numbers::pi *
                          (w.fx * static_cast<double>(x) + w.fy * static_cast<double>(y)) +
                      w.phase + w.pan * t);
      }
      v += tex.grain_amplitude * grain_noise(x, y, index, config_.seed);
      const double pixel = std::clamp(128.0 + v, 0.0, 255.0);
      out.set(x, y, static_cast<std::uint8_t>(std::lround(pixel)));
    }
  }
  return out;
}

}  // namespace vbr::codec
