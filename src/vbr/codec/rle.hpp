// Run-length coding of zig-zag-ordered AC coefficients (JPEG-baseline
// style): each symbol is (run of zeros, nonzero level), with a ZRL symbol
// for runs longer than 15 and an EOB symbol once the rest of the block is
// zero.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace vbr::codec {

struct RleSymbol {
  std::uint8_t run = 0;     ///< zeros preceding the level (0..15)
  std::int16_t level = 0;   ///< nonzero, except for the EOB / ZRL sentinels

  bool is_eob() const { return run == 0 && level == 0; }
  bool is_zrl() const { return run == 15 && level == 0; }

  static RleSymbol eob() { return {0, 0}; }
  static RleSymbol zrl() { return {15, 0}; }
};

/// Encode a block's AC coefficients (zig-zag order, DC excluded).
/// Always terminates with EOB, even for a fully occupied block, so the
/// decoder needs no out-of-band length.
std::vector<RleSymbol> rle_encode_ac(std::span<const std::int16_t> ac);

/// Decode back to exactly `count` coefficients. Throws on malformed input
/// (overrunning the block).
std::vector<std::int16_t> rle_decode_ac(std::span<const RleSymbol> symbols, std::size_t count);

}  // namespace vbr::codec
