// The full intraframe coding pipeline of Table 1: 8x8 DCT -> uniform
// quantization -> zig-zag scan -> run-length coding -> Huffman coding,
// organized as 30 independent slices per frame (each slice restarts the DC
// predictor, exactly so that slice byte counts are self-contained — the
// paper measures the trace at both frame and slice resolution).
//
// Entropy model (JPEG-baseline style):
//  * DC: DPCM against the previous block in the slice; the size category of
//    the difference is Huffman coded, followed by that many amplitude bits.
//  * AC: (run, size) tokens Huffman coded, followed by amplitude bits; ZRL
//    extends runs past 15, EOB terminates the block.
#pragma once

#include <cstddef>
#include <vector>

#include "vbr/codec/frame.hpp"
#include "vbr/codec/huffman.hpp"
#include "vbr/codec/quantizer.hpp"

namespace vbr::codec {

struct CoderConfig {
  /// Fixed quantizer step (the paper fixes it for the whole movie).
  double quantizer_step = 16.0;
  /// Table 1: "slice" rate 30 per frame.
  std::size_t slices_per_frame = 30;
};

struct EncodedSlice {
  std::vector<std::uint8_t> bytes;
};

struct EncodedFrame {
  std::size_t width = 0;
  std::size_t height = 0;
  std::vector<EncodedSlice> slices;

  std::size_t total_bytes() const;
  /// Per-slice byte counts as doubles (trace samples).
  std::vector<double> slice_bytes() const;
};

class IntraframeCoder {
 public:
  explicit IntraframeCoder(const CoderConfig& config = {});

  const CoderConfig& config() const { return config_; }

  /// Replace the default entropy tables with tables trained on the given
  /// frames (two-pass coding, as a production encoder would provision).
  void train(std::span<const Frame> frames);

  EncodedFrame encode(const Frame& frame) const;
  Frame decode(const EncodedFrame& encoded) const;

  /// Uncompressed bits / compressed bits for a frame (Table 1 reports the
  /// movie-average compression ratio, 8.70).
  static double compression_ratio(const Frame& frame, const EncodedFrame& encoded);

 private:
  CoderConfig config_;
  UniformQuantizer quantizer_;
  HuffmanCode dc_code_;
  HuffmanCode ac_code_;

  /// Rows of 8x8 blocks assigned to each slice (first, count).
  struct SliceExtent {
    std::size_t first_block_row = 0;
    std::size_t block_rows = 0;
  };
  std::vector<SliceExtent> slice_extents(std::size_t blocks_y) const;
};

/// Number of amplitude bits needed for a DPCM/AC level (JPEG size category).
unsigned size_category(int value);

}  // namespace vbr::codec
