#include "vbr/codec/interframe_coder.hpp"

#include <algorithm>
#include <cmath>

#include "vbr/codec/dct.hpp"
#include "vbr/codec/rle.hpp"
#include "vbr/codec/zigzag.hpp"
#include "vbr/common/error.hpp"

namespace vbr::codec {
namespace {

constexpr std::size_t kDcAlphabet = 13;
constexpr std::size_t kAcAlphabet = 256;

// Residual statistics are sharper than intra statistics: most quantized
// residual coefficients are zero, so EOB dominates and amplitudes are tiny.
HuffmanCode residual_dc_code() {
  std::vector<std::uint64_t> freqs(kDcAlphabet);
  for (std::size_t c = 0; c < kDcAlphabet; ++c) {
    freqs[c] =
        static_cast<std::uint64_t>(1 + 300000.0 * std::exp(-1.1 * static_cast<double>(c)));
  }
  return HuffmanCode::build(freqs);
}

HuffmanCode residual_ac_code() {
  std::vector<std::uint64_t> freqs(kAcAlphabet, 1);
  for (std::size_t run = 0; run < 16; ++run) {
    for (std::size_t size = 1; size <= 10; ++size) {
      const double weight = 120000.0 * std::exp(-0.3 * static_cast<double>(run)) *
                            std::exp(-1.3 * static_cast<double>(size));
      freqs[(run << 4) | size] += static_cast<std::uint64_t>(weight);
    }
  }
  freqs[0] += 400000;       // EOB dominates for residual blocks
  freqs[(15u << 4)] += 200; // ZRL relatively common in near-empty blocks
  return HuffmanCode::build(freqs);
}

void write_amplitude(BitWriter& out, int value, unsigned size) {
  if (size == 0) return;
  if (value < 0) value += (1 << size) - 1;
  out.write_bits(static_cast<std::uint32_t>(value), size);
}

int read_amplitude(BitReader& in, unsigned size) {
  if (size == 0) return 0;
  const auto raw = static_cast<int>(in.read_bits(size));
  if (raw < (1 << (size - 1))) return raw - (1 << size) + 1;
  return raw;
}

struct SliceExtent {
  std::size_t first_block_row = 0;
  std::size_t block_rows = 0;
};

std::vector<SliceExtent> slice_extents(std::size_t blocks_y, std::size_t slices_per_frame) {
  const std::size_t slices = std::min(slices_per_frame, blocks_y);
  std::vector<SliceExtent> extents(slices);
  const std::size_t base = blocks_y / slices;
  const std::size_t extra = blocks_y % slices;
  std::size_t row = 0;
  for (std::size_t s = 0; s < slices; ++s) {
    extents[s].first_block_row = row;
    extents[s].block_rows = base + (s < extra ? 1 : 0);
    row += extents[s].block_rows;
  }
  return extents;
}

}  // namespace

InterframeCoder::InterframeCoder(const InterframeConfig& config)
    : config_(config),
      intra_([&] {
        CoderConfig intra_config;
        intra_config.quantizer_step = config.quantizer_step;
        intra_config.slices_per_frame = config.slices_per_frame;
        return intra_config;
      }()),
      quantizer_(config.quantizer_step),
      dc_code_(residual_dc_code()),
      ac_code_(residual_ac_code()) {
  VBR_ENSURE(config.gop_length >= 1, "GoP length must be >= 1");
}

void InterframeCoder::reset() {
  reference_.reset();
  frames_since_intra_ = 0;
}

void InterframeCoder::set_reference_from_frame(const Frame& frame) {
  width_ = frame.width();
  height_ = frame.height();
  std::vector<double> ref(frame.pixel_count());
  const auto px = frame.pixels();
  for (std::size_t i = 0; i < px.size(); ++i) ref[i] = static_cast<double>(px[i]);
  reference_ = std::move(ref);
}

Frame InterframeCoder::reference_as_frame() const {
  VBR_ENSURE(reference_.has_value(), "no reference frame");
  Frame out(width_, height_);
  auto px = out.pixels();
  for (std::size_t i = 0; i < px.size(); ++i) {
    px[i] = static_cast<std::uint8_t>(std::clamp((*reference_)[i], 0.0, 255.0));
  }
  return out;
}

EncodedInterFrame InterframeCoder::encode_next(const Frame& frame) {
  const bool intra = !reference_.has_value() || frames_since_intra_ == 0 ||
                     frame.width() != width_ || frame.height() != height_;
  EncodedInterFrame out;
  if (intra) {
    out.is_intra = true;
    out.payload = intra_.encode(frame);
    // Closed loop: the reference is what the decoder will reconstruct.
    set_reference_from_frame(intra_.decode(out.payload));
    frames_since_intra_ = config_.gop_length > 1 ? 1 : 0;
  } else {
    out.is_intra = false;
    out.payload = encode_residual(frame);
    frames_since_intra_ = (frames_since_intra_ + 1) % config_.gop_length;
  }
  return out;
}

Frame InterframeCoder::decode_next(const EncodedInterFrame& encoded) {
  if (encoded.is_intra) {
    const Frame frame = intra_.decode(encoded.payload);
    set_reference_from_frame(frame);
    return frame;
  }
  decode_residual(encoded.payload);
  return reference_as_frame();
}

EncodedFrame InterframeCoder::encode_residual(const Frame& frame) {
  VBR_ENSURE(reference_.has_value(), "P frame without a reference");
  EncodedFrame out;
  out.width = frame.width();
  out.height = frame.height();
  auto& ref = *reference_;

  for (const auto& extent : slice_extents(frame.blocks_y(), config_.slices_per_frame)) {
    BitWriter writer;
    for (std::size_t by = extent.first_block_row;
         by < extent.first_block_row + extent.block_rows; ++by) {
      for (std::size_t bx = 0; bx < frame.blocks_x(); ++bx) {
        // Residual block: current pixels minus reconstructed reference.
        Block residual;
        for (std::size_t y = 0; y < 8; ++y) {
          for (std::size_t x = 0; x < 8; ++x) {
            const std::size_t px = (by * 8 + y) * frame.width() + (bx * 8 + x);
            residual[y * 8 + x] =
                static_cast<double>(frame.pixels()[px]) - ref[px];
          }
        }
        const auto levels = quantizer_.quantize_block(forward_dct(residual));
        const auto scanned = zigzag_scan(levels);

        const unsigned dc_size = size_category(scanned[0]);
        dc_code_.encode(writer, dc_size);
        write_amplitude(writer, scanned[0], dc_size);
        for (const RleSymbol& sym :
             rle_encode_ac(std::span<const std::int16_t>(scanned).subspan(1))) {
          const unsigned size = sym.level == 0 ? 0 : size_category(sym.level);
          ac_code_.encode(writer, (static_cast<std::size_t>(sym.run) << 4) | size);
          write_amplitude(writer, sym.level, size);
        }

        // Closed-loop reconstruction: add the dequantized residual to the
        // reference, clamped to pixel range (exactly what the decoder does).
        const Block reconstructed = inverse_dct(quantizer_.dequantize_block(levels));
        for (std::size_t y = 0; y < 8; ++y) {
          for (std::size_t x = 0; x < 8; ++x) {
            const std::size_t px = (by * 8 + y) * frame.width() + (bx * 8 + x);
            ref[px] = std::clamp(ref[px] + reconstructed[y * 8 + x], 0.0, 255.0);
          }
        }
      }
    }
    out.slices.push_back({writer.finish()});
  }
  return out;
}

void InterframeCoder::decode_residual(const EncodedFrame& encoded) {
  VBR_ENSURE(reference_.has_value(), "P frame without a reference");
  VBR_ENSURE(encoded.width == width_ && encoded.height == height_,
             "frame geometry changed mid-GoP");
  auto& ref = *reference_;
  const std::size_t blocks_x = encoded.width / 8;
  const auto extents = slice_extents(encoded.height / 8, config_.slices_per_frame);
  VBR_ENSURE(extents.size() == encoded.slices.size(), "slice count mismatch");

  for (std::size_t s = 0; s < extents.size(); ++s) {
    BitReader reader(encoded.slices[s].bytes);
    for (std::size_t by = extents[s].first_block_row;
         by < extents[s].first_block_row + extents[s].block_rows; ++by) {
      for (std::size_t bx = 0; bx < blocks_x; ++bx) {
        std::array<std::int16_t, 64> scanned{};
        const auto dc_size = static_cast<unsigned>(dc_code_.decode(reader));
        scanned[0] = static_cast<std::int16_t>(read_amplitude(reader, dc_size));

        std::vector<RleSymbol> symbols;
        std::size_t ac_seen = 0;
        while (ac_seen < 63) {
          const std::size_t token = ac_code_.decode(reader);
          const auto run = static_cast<std::uint8_t>(token >> 4);
          const auto size = static_cast<unsigned>(token & 0xF);
          if (run == 0 && size == 0) {
            symbols.push_back(RleSymbol::eob());
            break;
          }
          if (run == 15 && size == 0) {
            symbols.push_back(RleSymbol::zrl());
            ac_seen += 16;
            continue;
          }
          symbols.push_back({run, static_cast<std::int16_t>(read_amplitude(reader, size))});
          ac_seen += run + 1u;
        }
        const auto ac = rle_decode_ac(symbols, 63);
        for (std::size_t i = 0; i < 63; ++i) scanned[i + 1] = ac[i];

        const Block reconstructed =
            inverse_dct(quantizer_.dequantize_block(zigzag_unscan(scanned)));
        for (std::size_t y = 0; y < 8; ++y) {
          for (std::size_t x = 0; x < 8; ++x) {
            const std::size_t px = (by * 8 + y) * encoded.width + (bx * 8 + x);
            ref[px] = std::clamp(ref[px] + reconstructed[y * 8 + x], 0.0, 255.0);
          }
        }
      }
    }
  }
}

}  // namespace vbr::codec
