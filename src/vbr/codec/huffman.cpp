#include "vbr/codec/huffman.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>

#include "vbr/common/error.hpp"

namespace vbr::codec {

// ------------------------------------------------------------- BitWriter

void BitWriter::write_bits(std::uint32_t value, unsigned count) {
  VBR_ENSURE(count <= 32, "cannot write more than 32 bits at once");
  for (unsigned i = count; i > 0; --i) {
    const unsigned bit = (value >> (i - 1)) & 1u;
    current_ = static_cast<std::uint8_t>((current_ << 1) | bit);
    if (++used_ == 8) {
      bytes_.push_back(current_);
      current_ = 0;
      used_ = 0;
    }
  }
  bit_count_ += count;
}

std::vector<std::uint8_t> BitWriter::finish() {
  if (used_ > 0) {
    bytes_.push_back(static_cast<std::uint8_t>(current_ << (8 - used_)));
    current_ = 0;
    used_ = 0;
  }
  return std::move(bytes_);
}

// ------------------------------------------------------------- BitReader

BitReader::BitReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

unsigned BitReader::read_bit() {
  const std::size_t byte = position_ / 8;
  if (byte >= bytes_.size()) throw Error("bit stream exhausted");
  const unsigned bit = (bytes_[byte] >> (7 - position_ % 8)) & 1u;
  ++position_;
  return bit;
}

std::uint32_t BitReader::read_bits(unsigned count) {
  VBR_ENSURE(count <= 32, "cannot read more than 32 bits at once");
  std::uint32_t value = 0;
  for (unsigned i = 0; i < count; ++i) value = (value << 1) | read_bit();
  return value;
}

// ------------------------------------------------------------ HuffmanCode

namespace {

// Compute Huffman code lengths for the nonzero-frequency symbols.
std::vector<unsigned> huffman_lengths(std::span<const std::uint64_t> freqs) {
  struct Node {
    std::uint64_t weight;
    int left;   ///< child node index, or ~symbol for leaves
    int right;
  };
  std::vector<Node> nodes;
  using HeapItem = std::pair<std::uint64_t, int>;  // (weight, node index)
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;

  for (std::size_t s = 0; s < freqs.size(); ++s) {
    if (freqs[s] == 0) continue;
    nodes.push_back({freqs[s], ~static_cast<int>(s), 0});
    heap.emplace(freqs[s], static_cast<int>(nodes.size()) - 1);
  }
  std::vector<unsigned> lengths(freqs.size(), 0);
  if (heap.empty()) return lengths;
  if (heap.size() == 1) {
    // Degenerate alphabet: give the single symbol a 1-bit code.
    lengths[static_cast<std::size_t>(~nodes[0].left)] = 1;
    return lengths;
  }
  while (heap.size() > 1) {
    const auto [wa, a] = heap.top();
    heap.pop();
    const auto [wb, b] = heap.top();
    heap.pop();
    nodes.push_back({wa + wb, a, b});
    heap.emplace(wa + wb, static_cast<int>(nodes.size()) - 1);
  }
  // Depth-first traversal to read off leaf depths.
  struct Visit {
    int node;
    unsigned depth;
  };
  std::vector<Visit> stack{{heap.top().second, 0}};
  while (!stack.empty()) {
    const auto [idx, depth] = stack.back();
    stack.pop_back();
    const Node& node = nodes[static_cast<std::size_t>(idx)];
    if (node.left < 0) {
      // Leaf: `left` stores the bitwise complement of the symbol.
      lengths[static_cast<std::size_t>(~node.left)] = std::max(1u, depth);
    } else {
      stack.push_back({node.left, depth + 1});
      stack.push_back({node.right, depth + 1});
    }
  }
  return lengths;
}

}  // namespace

HuffmanCode HuffmanCode::build(std::span<const std::uint64_t> frequencies,
                               unsigned max_length) {
  VBR_ENSURE(!frequencies.empty(), "empty alphabet");
  // Tree nodes are indexed with int (2 * alphabet - 1 of them at most).
  VBR_ENSURE(frequencies.size() < (std::size_t{1} << 28), "alphabet too large");
  VBR_ENSURE(max_length >= 2 && max_length <= 31, "max code length must be in [2, 31]");

  // Scale-and-retry: halving frequencies flattens the tree; converges
  // quickly and preserves near-optimality for realistic inputs.
  std::vector<std::uint64_t> work(frequencies.begin(), frequencies.end());
  std::vector<unsigned> lengths;
  for (int attempt = 0; attempt < 64; ++attempt) {
    lengths = huffman_lengths(work);
    const unsigned longest = *std::max_element(lengths.begin(), lengths.end());
    if (longest <= max_length) break;
    for (auto& f : work) {
      if (f > 0) f = (f + 1) / 2;
    }
  }
  VBR_ENSURE(*std::max_element(lengths.begin(), lengths.end()) <= max_length,
             "failed to limit Huffman code lengths");

  HuffmanCode code;
  code.lengths_ = std::move(lengths);
  code.codes_.assign(code.lengths_.size(), 0);
  code.max_length_ = *std::max_element(code.lengths_.begin(), code.lengths_.end());

  // Canonical assignment: symbols sorted by (length, symbol value).
  std::vector<std::uint32_t> symbols;
  for (std::size_t s = 0; s < code.lengths_.size(); ++s) {
    if (code.lengths_[s] > 0) symbols.push_back(static_cast<std::uint32_t>(s));
  }
  std::sort(symbols.begin(), symbols.end(), [&](std::uint32_t a, std::uint32_t b) {
    if (code.lengths_[a] != code.lengths_[b]) return code.lengths_[a] < code.lengths_[b];
    return a < b;
  });
  std::uint32_t next = 0;
  unsigned prev_len = 0;
  for (std::uint32_t s : symbols) {
    const unsigned len = code.lengths_[s];
    next <<= (len - prev_len);
    code.codes_[s] = next++;
    prev_len = len;
  }
  code.sorted_symbols_ = std::move(symbols);
  code.build_decode_tables();
  return code;
}

void HuffmanCode::build_decode_tables() {
  first_code_.assign(max_length_ + 1, 0);
  first_index_.assign(max_length_ + 1, 0);
  count_.assign(max_length_ + 1, 0);
  for (std::uint32_t s : sorted_symbols_) ++count_[lengths_[s]];
  std::uint32_t code = 0;
  std::uint32_t index = 0;
  for (unsigned len = 1; len <= max_length_; ++len) {
    code <<= 1;
    first_code_[len] = code;
    first_index_[len] = index;
    code += count_[len];
    index += count_[len];
  }
}

void HuffmanCode::encode(BitWriter& out, std::size_t symbol) const {
  VBR_ENSURE(symbol < lengths_.size() && lengths_[symbol] > 0,
             "symbol has no Huffman code");
  out.write_bits(codes_[symbol], lengths_[symbol]);
}

std::size_t HuffmanCode::decode(BitReader& in) const {
  std::uint32_t code = 0;
  for (unsigned len = 1; len <= max_length_; ++len) {
    code = (code << 1) | in.read_bit();
    if (count_[len] != 0 && code >= first_code_[len] &&
        code < first_code_[len] + count_[len]) {
      const std::uint32_t index = first_index_[len] + (code - first_code_[len]);
      VBR_DCHECK(index < sorted_symbols_.size(), "canonical decode index out of range");
      return sorted_symbols_[index];
    }
  }
  throw Error("invalid Huffman code in bit stream");
}

double HuffmanCode::expected_length(std::span<const std::uint64_t> frequencies) const {
  VBR_ENSURE(frequencies.size() == lengths_.size(), "frequency table size mismatch");
  const double total = static_cast<double>(
      std::accumulate(frequencies.begin(), frequencies.end(), std::uint64_t{0}));
  VBR_ENSURE(total > 0.0, "no symbols");
  double bits = 0.0;
  for (std::size_t s = 0; s < frequencies.size(); ++s) {
    bits += static_cast<double>(frequencies[s]) * static_cast<double>(lengths_[s]);
  }
  return bits / total;
}

}  // namespace vbr::codec
