// Monochrome frame buffer for the intraframe coder substrate.
//
// The paper's coder consumes 480-line x 504-pel luminance frames at 8 bits
// per pel (Table 1) and partitions each frame into 8x8 blocks for the DCT.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace vbr::codec {

/// An 8x8 block of pixel or coefficient values in row-major order.
using Block = std::array<double, 64>;

/// 8-bit monochrome image, row-major.
class Frame {
 public:
  /// Paper geometry: 480 lines x 504 pels (both multiples of 8).
  static constexpr std::size_t kDefaultWidth = 504;
  static constexpr std::size_t kDefaultHeight = 480;

  Frame(std::size_t width, std::size_t height);

  std::size_t width() const { return width_; }
  std::size_t height() const { return height_; }
  std::size_t pixel_count() const { return width_ * height_; }

  std::uint8_t at(std::size_t x, std::size_t y) const { return pixels_[y * width_ + x]; }
  void set(std::size_t x, std::size_t y, std::uint8_t value) { pixels_[y * width_ + x] = value; }

  std::span<const std::uint8_t> pixels() const { return pixels_; }
  std::span<std::uint8_t> pixels() { return pixels_; }

  /// Number of 8x8 blocks horizontally / vertically (dimensions must be
  /// multiples of 8; enforced by the constructor).
  std::size_t blocks_x() const { return width_ / 8; }
  std::size_t blocks_y() const { return height_ / 8; }
  std::size_t block_count() const { return blocks_x() * blocks_y(); }

  /// Extract block (bx, by) as doubles centered at zero (pixel - 128).
  Block block(std::size_t bx, std::size_t by) const;

  /// Store a (reconstructed) block, clamping to [0, 255] after re-centering.
  void set_block(std::size_t bx, std::size_t by, const Block& values);

 private:
  std::size_t width_;
  std::size_t height_;
  std::vector<std::uint8_t> pixels_;
};

/// Peak signal-to-noise ratio between two equally sized frames, in dB.
double psnr(const Frame& a, const Frame& b);

}  // namespace vbr::codec
