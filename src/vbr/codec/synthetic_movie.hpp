// Procedural "movie" source for the intraframe coder.
//
// The paper coded two hours of an action movie; the pictures themselves are
// unavailable, so this renderer synthesizes frames whose *statistical*
// drivers match what the paper attributes to film material: a shot
// structure from trace::SceneModel (clustered complexity, heavy-tailed shot
// lengths, dialog alternation and a story-arc envelope), per-shot textures
// whose spatial-frequency content scales with the shot's complexity (more
// high-frequency detail -> more post-quantization coefficients -> more
// bits), per-shot panning motion, and film grain. Feeding these frames
// through IntraframeCoder yields a VBR trace with the same character the
// paper's Fig. 1 shows, produced by an actual DCT/RLE/Huffman code path.
#pragma once

#include <cstdint>
#include <vector>

#include "vbr/codec/frame.hpp"
#include "vbr/trace/scene_model.hpp"

namespace vbr::codec {

struct MovieConfig {
  std::size_t width = Frame::kDefaultWidth;
  std::size_t height = Frame::kDefaultHeight;
  vbr::trace::SceneModelParams scene_params{};
  std::uint64_t seed = 77;
  /// Global multiplier on texture detail (contrast of the sinusoid field).
  double base_detail = 40.0;
  /// Film-grain amplitude as a fraction of detail.
  double grain = 0.25;
};

/// Deterministic frame source: frame(i) always renders the same picture for
/// a given config, so coding experiments are reproducible and frames never
/// need to be stored.
class SyntheticMovie {
 public:
  SyntheticMovie(const MovieConfig& config, std::size_t total_frames);

  std::size_t frame_count() const { return total_frames_; }
  const MovieConfig& config() const { return config_; }
  const std::vector<vbr::trace::Scene>& scenes() const { return scenes_; }

  /// The scene containing a frame index.
  const vbr::trace::Scene& scene_at(std::size_t frame_index) const;

  /// Render frame `index`.
  Frame frame(std::size_t index) const;

 private:
  MovieConfig config_;
  std::size_t total_frames_;
  std::vector<vbr::trace::Scene> scenes_;
  std::vector<std::size_t> scene_of_frame_;

  struct Wave {
    double fx = 0.0;      ///< spatial frequency, cycles per pixel, x
    double fy = 0.0;      ///< cycles per pixel, y
    double amplitude = 0.0;
    double phase = 0.0;
    double pan = 0.0;     ///< phase advance per frame (motion)
  };
  struct Texture {
    std::vector<Wave> waves;
    double grain_amplitude = 0.0;
  };
  /// Texture parameters derived deterministically from (seed, texture_id).
  Texture texture_for(const vbr::trace::Scene& scene) const;
};

}  // namespace vbr::codec
