// Zig-zag scan of 8x8 coefficient blocks: orders coefficients from low to
// high spatial frequency so that run-length coding sees long zero runs.
#pragma once

#include <array>
#include <cstdint>

namespace vbr::codec {

/// kZigzagOrder[i] is the row-major index of the i-th coefficient in scan
/// order; index 0 is the DC coefficient.
extern const std::array<std::uint8_t, 64> kZigzagOrder;

/// Scan a row-major block of quantized coefficients into zig-zag order.
std::array<std::int16_t, 64> zigzag_scan(const std::array<std::int16_t, 64>& row_major);

/// Inverse of zigzag_scan.
std::array<std::int16_t, 64> zigzag_unscan(const std::array<std::int16_t, 64>& scanned);

}  // namespace vbr::codec
