// Interframe (I/P, MPEG-like) coding extension.
//
// The paper studies intraframe coding but notes that "greater compression,
// burstiness and much stronger dependence on motion result from interframe
// coding, i.e., coding frame differences" and that its main results extend
// to MPEG video [GARR93a, PANC94]. This coder adds the interframe mode:
// every gop_length-th frame is coded intra (via IntraframeCoder); the
// frames between are P frames whose *residual* against the previous
// reconstructed frame goes through the same DCT -> quantize -> zig-zag ->
// RLE -> Huffman path. The encoder is closed-loop (it tracks the decoder's
// reconstruction), so encode and decode stay bit-exactly in sync.
//
// The resulting trace has the MPEG signature: periodic I-frame spikes over
// a low P-frame floor, higher burstiness, and strong motion dependence.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "vbr/codec/intraframe_coder.hpp"

namespace vbr::codec {

struct InterframeConfig {
  double quantizer_step = 16.0;
  std::size_t slices_per_frame = 30;
  /// Distance between intra-coded frames (GoP length); 1 = all intra.
  std::size_t gop_length = 12;
};

struct EncodedInterFrame {
  bool is_intra = false;
  EncodedFrame payload;
  std::size_t total_bytes() const { return payload.total_bytes(); }
};

/// Stateful I/P coder. Feed frames in display order via encode_next();
/// decode with a second instance fed the encoded stream in the same order.
class InterframeCoder {
 public:
  explicit InterframeCoder(const InterframeConfig& config = {});

  const InterframeConfig& config() const { return config_; }

  /// Encode the next frame (intra iff the GoP counter says so, or no
  /// reference exists yet). Updates the internal reference frame.
  EncodedInterFrame encode_next(const Frame& frame);

  /// Decode the next frame of the stream; maintains the decoder reference.
  Frame decode_next(const EncodedInterFrame& encoded);

  /// Drop the reference and restart the GoP (e.g., at a seek point).
  void reset();

 private:
  InterframeConfig config_;
  IntraframeCoder intra_;
  UniformQuantizer quantizer_;
  HuffmanCode dc_code_;
  HuffmanCode ac_code_;
  std::size_t frames_since_intra_ = 0;
  /// Reconstructed previous frame as doubles in pixel space (encoder and
  /// decoder sides each track their own copy via their own instance).
  std::optional<std::vector<double>> reference_;
  std::size_t width_ = 0;
  std::size_t height_ = 0;

  EncodedFrame encode_residual(const Frame& frame);
  void decode_residual(const EncodedFrame& encoded);
  void set_reference_from_frame(const Frame& frame);
  Frame reference_as_frame() const;
};

}  // namespace vbr::codec
