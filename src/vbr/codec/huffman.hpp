// Canonical Huffman coding and bit-level I/O — the entropy-coding stage of
// the paper's intraframe coder.
//
// Codes are built from symbol frequencies (Huffman's algorithm), converted
// to canonical form (codes assigned in (length, symbol) order), and decoded
// with the standard first-code-per-length walk. Training on representative
// material is done once by the coder; the tables are then fixed, as a real
// broadcast coder's would be.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace vbr::codec {

/// MSB-first bit sink.
class BitWriter {
 public:
  /// Append the low `count` bits of `value`, most significant first.
  void write_bits(std::uint32_t value, unsigned count);

  std::size_t bit_count() const { return bit_count_; }

  /// Pad with zero bits to a byte boundary and return the buffer.
  std::vector<std::uint8_t> finish();

 private:
  std::vector<std::uint8_t> bytes_;
  std::uint8_t current_ = 0;
  unsigned used_ = 0;  ///< bits used in current_
  std::size_t bit_count_ = 0;
};

/// MSB-first bit source over a byte buffer.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> bytes);

  /// Read `count` bits (<= 32). Throws vbr::Error past the end.
  std::uint32_t read_bits(unsigned count);

  /// Read a single bit.
  unsigned read_bit();

  std::size_t bits_consumed() const { return position_; }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t position_ = 0;  ///< in bits
};

/// Canonical Huffman code over the alphabet [0, n).
class HuffmanCode {
 public:
  /// Build from symbol frequencies. Symbols with zero frequency receive no
  /// code (attempting to encode one throws). Code lengths are capped at
  /// `max_length` bits (lengths are flattened if the tree exceeds it).
  static HuffmanCode build(std::span<const std::uint64_t> frequencies,
                           unsigned max_length = 16);

  std::size_t alphabet_size() const { return lengths_.size(); }

  /// Code length in bits for a symbol; 0 means "no code assigned".
  unsigned length(std::size_t symbol) const { return lengths_[symbol]; }
  std::uint32_t code(std::size_t symbol) const { return codes_[symbol]; }

  void encode(BitWriter& out, std::size_t symbol) const;
  std::size_t decode(BitReader& in) const;

  /// Mean code length in bits under the given frequencies (for optimality
  /// tests against the source entropy).
  double expected_length(std::span<const std::uint64_t> frequencies) const;

 private:
  std::vector<unsigned> lengths_;
  std::vector<std::uint32_t> codes_;
  // Canonical decode tables, indexed by code length 1..max.
  std::vector<std::uint32_t> first_code_;    ///< smallest code of each length
  std::vector<std::uint32_t> first_index_;   ///< index into sorted_symbols_
  std::vector<std::uint32_t> count_;         ///< symbols per length
  std::vector<std::uint32_t> sorted_symbols_;
  unsigned max_length_ = 0;

  void build_decode_tables();
};

}  // namespace vbr::codec
