#include "vbr/codec/dct.hpp"

#include <cmath>
#include <numbers>

namespace vbr::codec {
namespace {

// Orthonormal DCT-II basis: C[u][x] = c(u) cos((2x+1) u pi / 16),
// c(0) = sqrt(1/8), c(u>0) = sqrt(2/8).
struct Basis {
  double c[8][8];
  Basis() {
    for (int u = 0; u < 8; ++u) {
      const double scale = (u == 0) ? std::sqrt(1.0 / 8.0) : std::sqrt(2.0 / 8.0);
      for (int x = 0; x < 8; ++x) {
        c[u][x] = scale * std::cos((2.0 * x + 1.0) * u * std::numbers::pi / 16.0);
      }
    }
  }
};

const Basis& basis() {
  static const Basis b;
  return b;
}

}  // namespace

Block forward_dct(const Block& spatial) {
  const auto& c = basis().c;
  // Rows: tmp = spatial * C^T  (transform each row).
  double tmp[8][8];
  for (int y = 0; y < 8; ++y) {
    for (int u = 0; u < 8; ++u) {
      double acc = 0.0;
      for (int x = 0; x < 8; ++x) acc += spatial[static_cast<std::size_t>(y * 8 + x)] * c[u][x];
      tmp[y][u] = acc;
    }
  }
  // Columns: out = C * tmp.
  Block out;
  for (int v = 0; v < 8; ++v) {
    for (int u = 0; u < 8; ++u) {
      double acc = 0.0;
      for (int y = 0; y < 8; ++y) acc += c[v][y] * tmp[y][u];
      out[static_cast<std::size_t>(v * 8 + u)] = acc;
    }
  }
  return out;
}

Block inverse_dct(const Block& frequency) {
  const auto& c = basis().c;
  // Columns first: tmp = C^T * frequency.
  double tmp[8][8];
  for (int y = 0; y < 8; ++y) {
    for (int u = 0; u < 8; ++u) {
      double acc = 0.0;
      for (int v = 0; v < 8; ++v) acc += c[v][y] * frequency[static_cast<std::size_t>(v * 8 + u)];
      tmp[y][u] = acc;
    }
  }
  // Rows: out = tmp * C.
  Block out;
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      double acc = 0.0;
      for (int u = 0; u < 8; ++u) acc += tmp[y][u] * c[u][x];
      out[static_cast<std::size_t>(y * 8 + x)] = acc;
    }
  }
  return out;
}

}  // namespace vbr::codec
