// 8x8 Discrete Cosine Transform (type-II, orthonormal), the transform stage
// of the paper's intraframe coder (Table 1: "DCT, Run-length, Huffman").
//
// Separable implementation with a precomputed basis matrix: a 2-D transform
// is 16 matrix-vector products of length 8. Forward followed by inverse is
// exact to floating-point roundoff (the transform is orthonormal).
#pragma once

#include "vbr/codec/frame.hpp"

namespace vbr::codec {

/// Forward 2-D DCT of an 8x8 block (input in row-major spatial order,
/// output in row-major frequency order, DC at index 0).
Block forward_dct(const Block& spatial);

/// Inverse 2-D DCT.
Block inverse_dct(const Block& frequency);

}  // namespace vbr::codec
