#include "vbr/codec/rle.hpp"

#include "vbr/common/error.hpp"

namespace vbr::codec {

std::vector<RleSymbol> rle_encode_ac(std::span<const std::int16_t> ac) {
  std::vector<RleSymbol> out;
  std::size_t run = 0;
  for (std::int16_t level : ac) {
    if (level == 0) {
      ++run;
      continue;
    }
    while (run > 15) {
      out.push_back(RleSymbol::zrl());
      run -= 16;
    }
    out.push_back({static_cast<std::uint8_t>(run), level});
    run = 0;
  }
  // JPEG convention: EOB only when trailing zeros remain. A block whose last
  // coefficient is nonzero is complete without it — the decoder stops after
  // the final coefficient, so an extra EOB would desynchronize the stream.
  if (run > 0 || ac.empty()) out.push_back(RleSymbol::eob());
  return out;
}

std::vector<std::int16_t> rle_decode_ac(std::span<const RleSymbol> symbols, std::size_t count) {
  std::vector<std::int16_t> out;
  out.reserve(count);
  for (const RleSymbol& s : symbols) {
    if (s.is_eob()) break;
    if (s.is_zrl()) {
      VBR_ENSURE(out.size() + 16 <= count, "ZRL overruns the block");
      out.insert(out.end(), 16, 0);
      continue;
    }
    VBR_ENSURE(s.run <= 15, "RLE run exceeds 15");
    VBR_ENSURE(s.level != 0, "zero level in a non-sentinel RLE symbol");
    VBR_ENSURE(out.size() + s.run + 1 <= count, "RLE symbol overruns the block");
    out.insert(out.end(), s.run, 0);
    out.push_back(s.level);
  }
  out.resize(count, 0);
  return out;
}

}  // namespace vbr::codec
