#include "vbr/codec/zigzag.hpp"

namespace vbr::codec {
namespace {

// Generate the classic 8x8 zig-zag order programmatically so the table is
// correct by construction.
std::array<std::uint8_t, 64> make_order() {
  std::array<std::uint8_t, 64> order{};
  int x = 0;
  int y = 0;
  bool up = true;  // moving toward the upper-right
  for (int i = 0; i < 64; ++i) {
    order[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(y * 8 + x);
    if (up) {
      if (x == 7) {
        ++y;
        up = false;
      } else if (y == 0) {
        ++x;
        up = false;
      } else {
        ++x;
        --y;
      }
    } else {
      if (y == 7) {
        ++x;
        up = true;
      } else if (x == 0) {
        ++y;
        up = true;
      } else {
        --x;
        ++y;
      }
    }
  }
  return order;
}

}  // namespace

const std::array<std::uint8_t, 64> kZigzagOrder = make_order();

std::array<std::int16_t, 64> zigzag_scan(const std::array<std::int16_t, 64>& row_major) {
  std::array<std::int16_t, 64> out{};
  for (std::size_t i = 0; i < 64; ++i) out[i] = row_major[kZigzagOrder[i]];
  return out;
}

std::array<std::int16_t, 64> zigzag_unscan(const std::array<std::int16_t, 64>& scanned) {
  std::array<std::int16_t, 64> out{};
  for (std::size_t i = 0; i < 64; ++i) out[kZigzagOrder[i]] = scanned[i];
  return out;
}

}  // namespace vbr::codec
