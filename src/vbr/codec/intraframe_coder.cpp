#include "vbr/codec/intraframe_coder.hpp"

#include <cmath>

#include "vbr/codec/dct.hpp"
#include "vbr/codec/rle.hpp"
#include "vbr/codec/zigzag.hpp"
#include "vbr/common/error.hpp"

namespace vbr::codec {
namespace {

// DC differences span [-255*8/step .. +255*8/step] after an 8x8 orthonormal
// DCT (DC = 8 * mean); 12 categories are ample.
constexpr std::size_t kDcAlphabet = 13;   // size categories 0..12
constexpr std::size_t kAcAlphabet = 256;  // (run << 4) | size tokens

// Amplitude encoding as in JPEG: positive values are written verbatim in
// `size` bits; negative values are written as value + 2^size - 1 (i.e. with
// a leading 0 bit).
void write_amplitude(BitWriter& out, int value, unsigned size) {
  if (size == 0) return;
  if (value < 0) value += (1 << size) - 1;
  out.write_bits(static_cast<std::uint32_t>(value), size);
}

int read_amplitude(BitReader& in, unsigned size) {
  if (size == 0) return 0;
  const auto raw = static_cast<int>(in.read_bits(size));
  // Leading 0 bit marks a negative amplitude.
  if (raw < (1 << (size - 1))) return raw - (1 << size) + 1;
  return raw;
}

// Default entropy tables: a smooth synthetic frequency profile shaped like
// typical natural-image statistics (short runs and small amplitudes
// dominate). A real deployment would train once on representative material;
// IntraframeCoder::train() does exactly that.
HuffmanCode default_dc_code() {
  std::vector<std::uint64_t> freqs(kDcAlphabet);
  for (std::size_t c = 0; c < kDcAlphabet; ++c) {
    freqs[c] = static_cast<std::uint64_t>(1 + 100000.0 * std::exp(-0.6 * static_cast<double>(c)));
  }
  return HuffmanCode::build(freqs);
}

HuffmanCode default_ac_code() {
  std::vector<std::uint64_t> freqs(kAcAlphabet, 1);
  for (std::size_t run = 0; run < 16; ++run) {
    for (std::size_t size = 1; size <= 10; ++size) {
      const double weight = 200000.0 * std::exp(-0.45 * static_cast<double>(run)) *
                            std::exp(-0.9 * static_cast<double>(size));
      freqs[(run << 4) | size] += static_cast<std::uint64_t>(weight);
    }
  }
  freqs[0] += 150000;       // EOB is the most common token
  freqs[(15u << 4)] += 50;  // ZRL is rare but must stay cheap-ish
  return HuffmanCode::build(freqs);
}

}  // namespace

unsigned size_category(int value) {
  unsigned size = 0;
  for (unsigned magnitude = static_cast<unsigned>(std::abs(value)); magnitude != 0;
       magnitude >>= 1) {
    ++size;
  }
  return size;
}

std::size_t EncodedFrame::total_bytes() const {
  std::size_t total = 0;
  for (const auto& s : slices) total += s.bytes.size();
  return total;
}

std::vector<double> EncodedFrame::slice_bytes() const {
  std::vector<double> out;
  out.reserve(slices.size());
  for (const auto& s : slices) out.push_back(static_cast<double>(s.bytes.size()));
  return out;
}

IntraframeCoder::IntraframeCoder(const CoderConfig& config)
    : config_(config),
      quantizer_(config.quantizer_step),
      dc_code_(default_dc_code()),
      ac_code_(default_ac_code()) {
  VBR_ENSURE(config.slices_per_frame >= 1, "need at least one slice per frame");
}

std::vector<IntraframeCoder::SliceExtent> IntraframeCoder::slice_extents(
    std::size_t blocks_y) const {
  const std::size_t slices = std::min(config_.slices_per_frame, blocks_y);
  std::vector<SliceExtent> extents(slices);
  // Distribute block rows as evenly as possible.
  const std::size_t base = blocks_y / slices;
  const std::size_t extra = blocks_y % slices;
  std::size_t row = 0;
  for (std::size_t s = 0; s < slices; ++s) {
    extents[s].first_block_row = row;
    extents[s].block_rows = base + (s < extra ? 1 : 0);
    row += extents[s].block_rows;
  }
  return extents;
}

void IntraframeCoder::train(std::span<const Frame> frames) {
  VBR_ENSURE(!frames.empty(), "training requires at least one frame");
  std::vector<std::uint64_t> dc_freqs(kDcAlphabet, 1);
  std::vector<std::uint64_t> ac_freqs(kAcAlphabet, 1);

  for (const Frame& frame : frames) {
    for (const auto& extent : slice_extents(frame.blocks_y())) {
      int dc_pred = 0;
      for (std::size_t by = extent.first_block_row;
           by < extent.first_block_row + extent.block_rows; ++by) {
        for (std::size_t bx = 0; bx < frame.blocks_x(); ++bx) {
          const auto levels = quantizer_.quantize_block(forward_dct(frame.block(bx, by)));
          const auto scanned = zigzag_scan(levels);
          const int dc_delta = scanned[0] - dc_pred;
          dc_pred = scanned[0];
          ++dc_freqs[size_category(dc_delta)];
          for (const RleSymbol& sym :
               rle_encode_ac(std::span<const std::int16_t>(scanned).subspan(1))) {
            const unsigned size = sym.level == 0 ? 0 : size_category(sym.level);
            ++ac_freqs[(static_cast<std::size_t>(sym.run) << 4) | size];
          }
        }
      }
    }
  }
  dc_code_ = HuffmanCode::build(dc_freqs);
  ac_code_ = HuffmanCode::build(ac_freqs);
}

EncodedFrame IntraframeCoder::encode(const Frame& frame) const {
  EncodedFrame out;
  out.width = frame.width();
  out.height = frame.height();

  for (const auto& extent : slice_extents(frame.blocks_y())) {
    BitWriter writer;
    int dc_pred = 0;  // DC predictor restarts per slice
    for (std::size_t by = extent.first_block_row;
         by < extent.first_block_row + extent.block_rows; ++by) {
      for (std::size_t bx = 0; bx < frame.blocks_x(); ++bx) {
        const auto levels = quantizer_.quantize_block(forward_dct(frame.block(bx, by)));
        const auto scanned = zigzag_scan(levels);

        const int dc_delta = scanned[0] - dc_pred;
        dc_pred = scanned[0];
        const unsigned dc_size = size_category(dc_delta);
        dc_code_.encode(writer, dc_size);
        write_amplitude(writer, dc_delta, dc_size);

        for (const RleSymbol& sym :
             rle_encode_ac(std::span<const std::int16_t>(scanned).subspan(1))) {
          const unsigned size = sym.level == 0 ? 0 : size_category(sym.level);
          ac_code_.encode(writer, (static_cast<std::size_t>(sym.run) << 4) | size);
          write_amplitude(writer, sym.level, size);
        }
      }
    }
    out.slices.push_back({writer.finish()});
  }
  return out;
}

Frame IntraframeCoder::decode(const EncodedFrame& encoded) const {
  Frame frame(encoded.width, encoded.height);
  const auto extents = slice_extents(frame.blocks_y());
  VBR_ENSURE(extents.size() == encoded.slices.size(), "slice count mismatch");

  for (std::size_t s = 0; s < extents.size(); ++s) {
    BitReader reader(encoded.slices[s].bytes);
    int dc_pred = 0;
    for (std::size_t by = extents[s].first_block_row;
         by < extents[s].first_block_row + extents[s].block_rows; ++by) {
      for (std::size_t bx = 0; bx < frame.blocks_x(); ++bx) {
        std::array<std::int16_t, 64> scanned{};

        const auto dc_size = static_cast<unsigned>(dc_code_.decode(reader));
        const int dc_delta = read_amplitude(reader, dc_size);
        dc_pred += dc_delta;
        scanned[0] = static_cast<std::int16_t>(dc_pred);

        std::vector<RleSymbol> symbols;
        std::size_t ac_seen = 0;
        while (ac_seen < 63) {
          const std::size_t token = ac_code_.decode(reader);
          const auto run = static_cast<std::uint8_t>(token >> 4);
          const auto size = static_cast<unsigned>(token & 0xF);
          if (run == 0 && size == 0) {  // EOB
            symbols.push_back(RleSymbol::eob());
            break;
          }
          if (run == 15 && size == 0) {  // ZRL
            symbols.push_back(RleSymbol::zrl());
            ac_seen += 16;
            continue;
          }
          const int level = read_amplitude(reader, size);
          symbols.push_back({run, static_cast<std::int16_t>(level)});
          ac_seen += run + 1u;
        }
        const auto ac = rle_decode_ac(symbols, 63);
        for (std::size_t i = 0; i < 63; ++i) scanned[i + 1] = ac[i];

        const auto levels = zigzag_unscan(scanned);
        frame.set_block(bx, by, inverse_dct(quantizer_.dequantize_block(levels)));
      }
    }
  }
  return frame;
}

double IntraframeCoder::compression_ratio(const Frame& frame, const EncodedFrame& encoded) {
  const double raw_bits = static_cast<double>(frame.pixel_count()) * 8.0;
  const double coded_bits = static_cast<double>(encoded.total_bytes()) * 8.0;
  VBR_ENSURE(coded_bits > 0.0, "empty encoding");
  return raw_bits / coded_bits;
}

}  // namespace vbr::codec
