#include "vbr/codec/frame.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "vbr/common/error.hpp"

namespace vbr::codec {

Frame::Frame(std::size_t width, std::size_t height)
    : width_(width), height_(height), pixels_(width * height, 128) {
  VBR_ENSURE(width >= 8 && height >= 8, "frame must be at least 8x8");
  VBR_ENSURE(width % 8 == 0 && height % 8 == 0,
             "frame dimensions must be multiples of the 8x8 block size");
}

Block Frame::block(std::size_t bx, std::size_t by) const {
  VBR_ENSURE(bx < blocks_x() && by < blocks_y(), "block index out of range");
  Block out;
  for (std::size_t y = 0; y < 8; ++y) {
    for (std::size_t x = 0; x < 8; ++x) {
      out[y * 8 + x] = static_cast<double>(at(bx * 8 + x, by * 8 + y)) - 128.0;
    }
  }
  return out;
}

void Frame::set_block(std::size_t bx, std::size_t by, const Block& values) {
  VBR_ENSURE(bx < blocks_x() && by < blocks_y(), "block index out of range");
  for (std::size_t y = 0; y < 8; ++y) {
    for (std::size_t x = 0; x < 8; ++x) {
      const double v = std::round(values[y * 8 + x] + 128.0);
      set(bx * 8 + x, by * 8 + y,
          static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0)));
    }
  }
}

double psnr(const Frame& a, const Frame& b) {
  VBR_ENSURE(a.width() == b.width() && a.height() == b.height(),
             "psnr requires equally sized frames");
  double mse = 0.0;
  const auto pa = a.pixels();
  const auto pb = b.pixels();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    const double d = static_cast<double>(pa[i]) - static_cast<double>(pb[i]);
    mse += d * d;
  }
  mse /= static_cast<double>(pa.size());
  if (mse == 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

}  // namespace vbr::codec
