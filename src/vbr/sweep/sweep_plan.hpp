// The §5 evaluation grid: which queueing experiments a sweep runs.
//
// A sweep is the cross product queue-kind × Hurst × utilization × buffer
// delay × source count, every combination evaluated against synthetic
// traffic generated from the paper's Star Wars operating point. Cells are
// enumerated in a fixed row-major order and each cell owns a deterministic
// seed derived from the master seed by Rng::split() *in cell order*, exactly
// the discipline the generation engine uses per source: a cell's output
// depends only on its spec, never on which worker ran it, how often it was
// retried, or what happened to its neighbours. That is what makes retried
// cells bit-identical and a resumed sweep indistinguishable from an
// uninterrupted one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace vbr::sweep {

/// Which net-layer evaluation a cell runs.
enum class QueueKind : std::uint32_t {
  kFluid = 1,  ///< exact piecewise-linear fluid simulation (Fig. 13/14)
  kCell = 2,   ///< discrete 48-byte cell FIFO (validates the fluid model)
  kFbm = 3,    ///< Norros fractional-Brownian analytic queue
};

/// Parse/format helpers for CLI and manifest reporting.
const char* queue_kind_name(QueueKind kind);
QueueKind parse_queue_kind(const std::string& name);

/// The full sweep grid. Axis vectors must be non-empty; validate() throws
/// vbr::InvalidArgument on an empty axis, a non-finite or out-of-domain
/// value (H outside (0,1), utilization <= 0, negative buffer delay), or an
/// empty traffic plan.
struct SweepGrid {
  std::vector<QueueKind> queues{QueueKind::kFluid};
  std::vector<double> hursts{0.8};
  std::vector<double> utilizations{0.9};
  std::vector<double> buffer_ms{10.0};
  std::vector<std::size_t> sources{1};
  std::size_t frames_per_source = 4096;
  std::uint64_t seed = 1994;

  void validate() const;
};

/// One fully-resolved evaluation cell: a point of the grid plus its derived
/// seed. This is everything a worker process needs.
struct CellSpec {
  std::uint64_t cell_index = 0;
  QueueKind queue = QueueKind::kFluid;
  double hurst = 0.8;
  double utilization = 0.9;
  double buffer_delay_ms = 10.0;
  std::size_t num_sources = 1;
  std::size_t frames_per_source = 4096;
  std::uint64_t seed = 0;
};

/// Number of cells in the grid's cross product.
std::size_t cell_count(const SweepGrid& grid);

/// The spec of cell `index` (row-major over queues, hursts, utilizations,
/// buffer_ms, sources — sources fastest). Requires index < cell_count and a
/// valid grid; the seed field is filled from derive_cell_seeds.
CellSpec cell_at(const SweepGrid& grid, std::size_t index);

/// Per-cell seeds: Rng(grid.seed).split() drawn once per cell in cell order.
/// Deterministic and independent of everything but the master seed and the
/// cell count.
std::vector<std::uint64_t> derive_cell_seeds(const SweepGrid& grid);

/// FNV-1a over every semantic grid field. A resume whose manifest carries a
/// different fingerprint is rejected instead of silently blending sweeps.
std::uint64_t sweep_fingerprint(const SweepGrid& grid);

}  // namespace vbr::sweep
