// The VBRSWPL1 append-only result log: O(1) checkpoint cost per settled
// cell, at million-cell scale.
//
// The PR 5 manifest rewrote every settled record after every settle — an
// O(cells) write per cell that caps a sweep at thousands of cells. The log
// replaces it with one sealed header followed by one CRC-framed record per
// settled cell:
//
//   sealed header (run/envelope, magic "VBRSWPL1"):
//     u64 sweep_fingerprint     the grid identity (sweep_plan fingerprint)
//     u64 shard_fingerprint     this shard's split-derived identity
//     u64 total_cells           full-grid cell count
//     u64 shard_count / u64 shard_index
//     u64 first_cell / u64 end_cell   this shard's row-major range [first, end)
//   then per settled cell (run/envelope seal_record):
//     u64 size + u32 CRC-32 + write_cell_record bytes
//
// Appends are a single write(2) of one whole frame, so a SIGKILL at any
// instant leaves at worst a torn *tail*: recovery scans the healthy prefix,
// truncates the tail back to the last whole record, and replays the settled
// cells without re-running them — exactly the PR 4 trace-recovery
// discipline, applied to the sweep checkpoint. A log whose sealed header
// identifies a different grid or shard is rejected with an IoError naming
// both fingerprints (never silently re-seeded); a CRC-valid record with an
// out-of-range index or a conflicting duplicate is corruption, not a crash
// artifact, and rejects the log too. scan_result_log is the pure surface
// fuzz_result_log drives.
#pragma once

#include <array>
#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "vbr/sweep/manifest.hpp"

namespace vbr::sweep {

inline constexpr std::array<char, 8> kResultLogMagic = {'V', 'B', 'R', 'S',
                                                        'W', 'P', 'L', '1'};
inline constexpr std::uint32_t kResultLogVersion = 1;

/// Identity and shape of one shard's log, sealed into the header. A
/// single-pool whole-grid sweep is the shard_count == 1 special case.
struct ResultLogHeader {
  std::uint64_t sweep_fingerprint = 0;
  std::uint64_t shard_fingerprint = 0;
  std::uint64_t total_cells = 0;
  std::uint64_t shard_count = 1;
  std::uint64_t shard_index = 0;
  std::uint64_t first_cell = 0;
  std::uint64_t end_cell = 0;

  bool operator==(const ResultLogHeader& other) const = default;
};

/// The serialized header payload (7 u64 fields) and its sealed size.
std::string encode_log_header(const ResultLogHeader& header);
inline constexpr std::uint64_t kLogHeaderPayloadBytes = 7 * sizeof(std::uint64_t);
inline constexpr std::uint64_t kLogHeaderSealedBytes =
    8 + sizeof(std::uint32_t) + sizeof(std::uint64_t) + sizeof(std::uint32_t) +
    kLogHeaderPayloadBytes;

/// Result of scanning a log stream.
struct ResultLogScan {
  ResultLogHeader header;
  /// Settled cells, ascending cell_index, duplicates collapsed.
  std::vector<CellRecord> records;
  /// Byte length of the healthy prefix (sealed header + whole records);
  /// recovery truncates the file to exactly this length.
  std::uint64_t valid_bytes = 0;
  /// Bytes past valid_bytes (the torn tail an interrupted append left).
  std::uint64_t torn_bytes = 0;
  /// Byte-identical duplicate records dropped (the trace a healed
  /// duplicate-claim or stolen-lease overlap leaves behind).
  std::uint64_t duplicate_records = 0;
};

/// Parse a log from a stream: verify the sealed header (against `expected`
/// when non-null — mismatched fingerprints throw an IoError naming both),
/// then read framed records until the stream ends or a torn frame stops the
/// scan. Torn tails are *returned*, not thrown; corruption inside the
/// CRC-valid prefix (bad index/status/kind, conflicting duplicates) throws
/// vbr::IoError. This is the pure core fuzz_result_log drives.
ResultLogScan scan_result_log(std::istream& in, const std::string& name,
                              const ResultLogHeader* expected);

/// Load and heal a log file in place: scan, truncate any torn tail back to
/// the last whole record, return the settled records. Returns nullopt when
/// the file does not exist or is shorter than the sealed header (an append
/// torn inside the header itself — no record can precede it, so the caller
/// recreates from scratch). Throws vbr::IoError when the header is intact
/// but identifies a different sweep or shard.
std::optional<ResultLogScan> recover_result_log(const std::filesystem::path& path,
                                                const ResultLogHeader& expected);

/// Appends settled-cell records to a log file. Each append is one write(2)
/// of one whole frame — O(record) per settled cell, never O(cells) — so an
/// interrupted append tears only the tail. With `durable`, every append is
/// fsync'd (power-loss safety; SIGKILL safety needs none).
class ResultLogWriter {
 public:
  /// Start a fresh log: truncate and write the sealed header.
  static ResultLogWriter create(const std::filesystem::path& path,
                                const ResultLogHeader& header, bool durable);
  /// Continue a recovered log, appending after its healthy prefix.
  static ResultLogWriter append_to(const std::filesystem::path& path,
                                   const ResultLogScan& scan, bool durable);

  ResultLogWriter(ResultLogWriter&& other) noexcept;
  ResultLogWriter& operator=(ResultLogWriter&& other) noexcept;
  ResultLogWriter(const ResultLogWriter&) = delete;
  ResultLogWriter& operator=(const ResultLogWriter&) = delete;
  ~ResultLogWriter();

  void append(const CellRecord& record);

  /// Bytes written through this writer (bench instrumentation).
  std::uint64_t bytes_written() const { return bytes_written_; }

  void close();

 private:
  ResultLogWriter(int fd, bool durable) : fd_(fd), durable_(durable) {}

  int fd_ = -1;
  bool durable_ = false;
  std::uint64_t bytes_written_ = 0;
};

}  // namespace vbr::sweep
