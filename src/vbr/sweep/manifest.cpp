#include "vbr/sweep/manifest.hpp"

#include <fstream>
#include <sstream>

#include "vbr/common/atomic_file.hpp"
#include "vbr/common/error.hpp"
#include "vbr/common/serialize.hpp"
#include "vbr/run/envelope.hpp"

namespace vbr::sweep {

namespace {

/// Bounds for untrusted diagnostic strings (the cell count bound is the
/// shared kMaxSweepCells in the header).
constexpr std::uint64_t kMaxMessage = 4096;
constexpr std::uint64_t kMaxStderrTail = 8192;

run::EnvelopeSpec manifest_envelope() {
  return {kManifestMagic, kManifestVersion, std::uint64_t{1} << 27,
          "sweep manifest"};
}

}  // namespace

const char* failure_kind_name(FailureKind kind) {
  switch (kind) {
    case FailureKind::kCrash: return "crash";
    case FailureKind::kHang: return "hang";
    case FailureKind::kOom: return "oom";
    case FailureKind::kError: return "error";
  }
  return "unknown";
}

void write_cell_record(std::ostream& out, const CellRecord& record) {
  io::write_u64(out, record.cell_index);
  io::write_u8(out, static_cast<std::uint8_t>(record.status));
  if (record.status == CellStatus::kDone) {
    write_cell_result(out, record.result);
  } else {
    const CellFailure& f = record.failure;
    io::write_u32(out, static_cast<std::uint32_t>(f.kind));
    io::write_u32(out, static_cast<std::uint32_t>(f.exit_code));
    io::write_u32(out, static_cast<std::uint32_t>(f.term_signal));
    io::write_u64(out, f.attempts);
    io::write_u64(out, f.max_rss_kib);
    io::write_f64(out, f.wall_seconds);
    io::write_string(out, f.message);
    io::write_string(out, f.stderr_tail);
  }
}

CellRecord read_cell_record(std::istream& in, std::uint64_t total_cells,
                            const std::string& name) {
  const char* what = name.c_str();
  CellRecord record;
  record.cell_index = io::read_u64(in, what);
  if (record.cell_index >= total_cells) {
    throw IoError(name + ": sweep cell index out of range");
  }
  const std::uint8_t status = io::read_u8(in, what);
  if (status == static_cast<std::uint8_t>(CellStatus::kDone)) {
    record.status = CellStatus::kDone;
    record.result = read_cell_result(in, what);
  } else if (status == static_cast<std::uint8_t>(CellStatus::kQuarantined)) {
    record.status = CellStatus::kQuarantined;
    CellFailure& f = record.failure;
    const std::uint32_t kind = io::read_u32(in, what);
    if (kind < static_cast<std::uint32_t>(FailureKind::kCrash) ||
        kind > static_cast<std::uint32_t>(FailureKind::kError)) {
      throw IoError(name + ": sweep failure kind out of range");
    }
    f.kind = static_cast<FailureKind>(kind);
    f.exit_code = static_cast<std::int32_t>(io::read_u32(in, what));
    f.term_signal = static_cast<std::int32_t>(io::read_u32(in, what));
    f.attempts = io::read_u64(in, what);
    f.max_rss_kib = io::read_u64(in, what);
    f.wall_seconds = io::read_f64(in, what);
    f.message = io::read_string(in, kMaxMessage, what);
    f.stderr_tail = io::read_string(in, kMaxStderrTail, what);
  } else {
    throw IoError(name + ": sweep cell status out of range");
  }
  return record;
}

std::string encode_manifest(const SweepManifest& manifest) {
  std::ostringstream payload(std::ios::binary);
  io::write_u64(payload, manifest.fingerprint);
  io::write_u64(payload, manifest.total_cells);
  io::write_u64(payload, manifest.records.size());
  for (const CellRecord& record : manifest.records) {
    write_cell_record(payload, record);
  }
  return run::seal_envelope(manifest_envelope(), payload.str());
}

SweepManifest parse_manifest(std::istream& in, const std::string& name) {
  const char* what = name.c_str();
  const std::string body = run::open_envelope(in, manifest_envelope(), name);

  std::istringstream payload(body, std::ios::binary);
  SweepManifest manifest;
  manifest.fingerprint = io::read_u64(payload, what);
  manifest.total_cells = io::read_u64(payload, what);
  if (manifest.total_cells == 0 || manifest.total_cells > kMaxSweepCells) {
    throw IoError(name + ": implausible sweep cell count " +
                  std::to_string(manifest.total_cells));
  }
  const std::size_t record_count =
      io::read_count(payload, manifest.total_cells, what);
  // A settled record is at least index + status + failure header bytes;
  // bound the count against the remaining payload before reserving.
  const auto pos = static_cast<std::uint64_t>(payload.tellg());
  if (record_count > (body.size() - pos) / (sizeof(std::uint64_t) + 1)) {
    throw IoError(name + ": sweep manifest records exceed the payload");
  }
  manifest.records.reserve(record_count);
  std::uint64_t previous_index = 0;
  for (std::size_t i = 0; i < record_count; ++i) {
    CellRecord record = read_cell_record(payload, manifest.total_cells, name);
    if (i > 0 && record.cell_index <= previous_index) {
      throw IoError(name + ": sweep manifest cell indexes not strictly increasing");
    }
    previous_index = record.cell_index;
    manifest.records.push_back(std::move(record));
  }

  // The payload must be exactly consumed: trailing bytes mean the size field
  // and the content disagree, i.e. a forged or corrupt file.
  if (payload.peek() != std::char_traits<char>::eof()) {
    throw IoError(name + ": sweep manifest payload has trailing bytes");
  }
  return manifest;
}

SweepManifest load_manifest(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open sweep manifest: " + path.string());
  return parse_manifest(in, path.string());
}

void save_manifest(const std::filesystem::path& path, const SweepManifest& manifest,
                   bool durable) {
  write_file_atomic(path, encode_manifest(manifest), durable);
}

}  // namespace vbr::sweep
