// Deterministic grid sharding: how a sweep splits into independently
// computable, order-invariantly mergeable pieces.
//
// A shard is a contiguous row-major range of cell indexes. Cell seeds stay
// exactly the PR 5 whole-grid derivation (Rng(grid.seed).split() in cell
// order), so a cell's spec — and therefore its result bytes — is identical
// whether it runs in a single-pool sweep, shard 0 of 2, or shard 7 of 8:
// sharding repartitions the work, never the randomness. Each shard also
// carries its own fingerprint, derived from the grid's sweep_fingerprint by
// the same Rng::split discipline, sealed into its VBRSWPL1 log header so a
// shard file can never be silently replayed against the wrong grid, the
// wrong shard count, or the wrong slot.
//
// merge_shard_records is the other half of the contract: folding any
// permutation or interleaving of per-shard results yields byte-identical
// merged records and an identical results_hash, because the merge sorts by
// the one total order every pool agrees on (cell_index) and every record is
// a pure function of its spec. That is what lets N work-stealing pools,
// with kills and steals and duplicate appends, end at the single-pool
// fault-free hash.
#pragma once

#include <cstdint>
#include <vector>

#include "vbr/sweep/manifest.hpp"
#include "vbr/sweep/result_log.hpp"
#include "vbr/sweep/sweep_plan.hpp"

namespace vbr::sweep {

/// Hard bound on the shard count (a dispatch-layer sanity cap; real sweeps
/// use tens to hundreds of shards across a handful of pools).
inline constexpr std::uint64_t kMaxShards = std::uint64_t{1} << 12;

/// One shard's contiguous cell range [first, end). Empty when first == end
/// (more shards than cells).
struct ShardRange {
  std::uint64_t first = 0;
  std::uint64_t end = 0;

  std::uint64_t size() const { return end - first; }
  bool contains(std::uint64_t cell) const { return cell >= first && cell < end; }
};

/// Balanced contiguous partition: every shard gets cells/count cells, the
/// first cells%count shards one extra. Requires 1 <= shard_count <=
/// kMaxShards and shard_index < shard_count.
ShardRange shard_cell_range(std::uint64_t total_cells, std::uint64_t shard_count,
                            std::uint64_t shard_index);

/// Per-shard fingerprints: Rng(sweep_fingerprint).split() drawn once per
/// shard in shard order — the identity discipline cell seeds use, applied
/// to shard files. Any pool recomputes the same vector from the grid alone,
/// so any shard can be computed (or verified) by any pool.
std::vector<std::uint64_t> derive_shard_fingerprints(std::uint64_t sweep_fingerprint,
                                                     std::uint64_t shard_count);

/// The sealed VBRSWPL1 header for one shard of a validated grid.
ResultLogHeader shard_log_header(const SweepGrid& grid, std::uint64_t shard_count,
                                 std::uint64_t shard_index);

/// Result of an order-invariant shard merge.
struct ShardMerge {
  /// Every settled cell, ascending cell_index — byte-identical for any
  /// permutation or interleaving of the input shards.
  std::vector<CellRecord> records;
  std::uint64_t results_hash = 0;
  std::size_t completed = 0;
  std::size_t quarantined = 0;
  /// Byte-identical duplicates collapsed across shard boundaries.
  std::size_t duplicate_records = 0;
};

/// Merge per-shard settled records into one ascending sequence. Throws
/// vbr::IoError on an out-of-range index, or on conflicting duplicates
/// (same cell, different deterministic bytes — the purity contract broke).
/// With `require_complete`, every cell in [0, total_cells) must be present.
ShardMerge merge_shard_records(const std::vector<std::vector<CellRecord>>& shards,
                               std::uint64_t total_cells, bool require_complete);

}  // namespace vbr::sweep
