#include "vbr/sweep/shard.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "vbr/common/error.hpp"
#include "vbr/common/rng.hpp"
#include "vbr/sweep/supervisor.hpp"

namespace vbr::sweep {

ShardRange shard_cell_range(std::uint64_t total_cells, std::uint64_t shard_count,
                            std::uint64_t shard_index) {
  VBR_ENSURE(shard_count >= 1 && shard_count <= kMaxShards,
             "sweep shard count out of range");
  VBR_ENSURE(shard_index < shard_count, "sweep shard index out of range");
  VBR_ENSURE(total_cells <= kMaxSweepCells, "sweep cell count out of range");
  const std::uint64_t base = total_cells / shard_count;
  const std::uint64_t extra = total_cells % shard_count;
  ShardRange range;
  range.first = shard_index * base + std::min(shard_index, extra);
  range.end = range.first + base + (shard_index < extra ? 1 : 0);
  return range;
}

std::vector<std::uint64_t> derive_shard_fingerprints(std::uint64_t sweep_fingerprint,
                                                     std::uint64_t shard_count) {
  VBR_ENSURE(shard_count >= 1 && shard_count <= kMaxShards,
             "sweep shard count out of range");
  Rng master(sweep_fingerprint);
  std::vector<std::uint64_t> fingerprints;
  fingerprints.reserve(static_cast<std::size_t>(shard_count));
  for (std::uint64_t i = 0; i < shard_count; ++i) {
    fingerprints.push_back(master.split()());
  }
  return fingerprints;
}

ResultLogHeader shard_log_header(const SweepGrid& grid, std::uint64_t shard_count,
                                 std::uint64_t shard_index) {
  grid.validate();
  const std::uint64_t cells = cell_count(grid);
  const ShardRange range = shard_cell_range(cells, shard_count, shard_index);
  ResultLogHeader header;
  header.sweep_fingerprint = sweep_fingerprint(grid);
  header.shard_fingerprint =
      derive_shard_fingerprints(header.sweep_fingerprint,
                                shard_count)[static_cast<std::size_t>(shard_index)];
  header.total_cells = cells;
  header.shard_count = shard_count;
  header.shard_index = shard_index;
  header.first_cell = range.first;
  header.end_cell = range.end;
  return header;
}

ShardMerge merge_shard_records(const std::vector<std::vector<CellRecord>>& shards,
                               std::uint64_t total_cells, bool require_complete) {
  // Fold everything into the one total order every pool agrees on. The map
  // makes the merge manifestly order-invariant: any permutation or
  // interleaving of shards and records lands in the same sorted, deduped
  // state, so the merged bytes — and results_hash — cannot depend on which
  // pool settled what, or in what order the logs were collected.
  std::map<std::uint64_t, const CellRecord*> merged;
  ShardMerge out;
  for (const std::vector<CellRecord>& shard : shards) {
    for (const CellRecord& record : shard) {
      if (record.cell_index >= total_cells) {
        throw IoError("shard merge: cell index " +
                      std::to_string(record.cell_index) + " out of range for " +
                      std::to_string(total_cells) + " cells");
      }
      const auto [it, inserted] = merged.emplace(record.cell_index, &record);
      if (!inserted) {
        const CellRecord& prior = *it->second;
        const bool consistent =
            prior.status == record.status &&
            (record.status != CellStatus::kDone || prior.result == record.result);
        if (!consistent) {
          throw IoError("shard merge: conflicting records for cell " +
                        std::to_string(record.cell_index) +
                        " (cell purity contract violated)");
        }
        out.duplicate_records += 1;
      }
    }
  }
  if (require_complete && merged.size() != total_cells) {
    throw IoError("shard merge: " + std::to_string(merged.size()) + " of " +
                  std::to_string(total_cells) + " cells settled (sweep incomplete)");
  }
  out.records.reserve(merged.size());
  for (const auto& [index, record] : merged) {
    if (record->status == CellStatus::kDone) {
      out.completed += 1;
    } else {
      out.quarantined += 1;
    }
    out.records.push_back(*record);
  }
  out.results_hash = results_hash(out.records);
  return out;
}

}  // namespace vbr::sweep
