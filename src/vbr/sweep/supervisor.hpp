// The supervised, process-isolated sweep: every evaluation cell runs in a
// forked worker so one bad cell — a hang at utilization -> 1, an OOM on a
// huge buffer, a numeric blow-up at H -> 1 — costs one quarantine record
// instead of the whole campaign.
//
// Per cell, the supervisor forks a worker, watches its result pipe with a
// poll()-based watchdog, and classifies the outcome:
//
//   result frame + exit 0          -> done
//   structured vbr::Error frame    -> deterministic poison: quarantine now
//   structured OOM frame           -> retry (the report is transient-shaped)
//   watchdog deadline / SIGXCPU    -> hang: SIGKILL, retry
//   SIGKILL near the memory ceiling-> OOM: retry
//   any other signal/nonzero exit  -> crash: retry
//
// Retries restart from the cell's deterministic split seed, so a retried
// cell is bit-identical to one that succeeded first try; a cell that
// exhausts max_attempts is quarantined with a structured CellFailure
// (kind, exit/signal, rusage peak RSS, captured stderr tail) and the sweep
// moves on. Progress persists in the manifest after every settled cell via
// the shared CRC envelope + atomic temp-and-rename write, so SIGKILLing
// the *supervisor* and rerunning with resume salvages every settled cell
// and reproduces the uninterrupted sweep's merged results bit-for-bit
// (scripts/crash_soak.sh sweep mode enforces exactly that).
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <span>
#include <vector>

#include "vbr/sweep/manifest.hpp"
#include "vbr/sweep/sweep_plan.hpp"
#include "vbr/sweep/worker.hpp"

namespace vbr::sweep {

/// Retry budget wrapped around the per-attempt WorkerLimits.
struct SweepLimits {
  WorkerLimits worker;          ///< deadline / memory / CPU per attempt
  std::size_t max_attempts = 3; ///< total tries per cell (>= 1)
  double backoff_seconds = 0.0; ///< sleep before retry k: backoff * 2^(k-1)
};

/// Seeded deterministic fault injection (the soak harness seam). A cell's
/// *first* attempt faults with probability `rate`, the kind drawn from the
/// enabled set — so every injected fault is healed by one retry and the
/// merged results stay bit-identical to a fault-free sweep. Poison cells
/// fault on *every* attempt with a deterministic vbr::NumericalError and
/// must end quarantined.
struct SweepFaultPlan {
  double rate = 0.0;
  std::uint64_t seed = 0;
  bool crash = true;
  bool hang = true;
  bool oom = true;
  std::vector<std::uint64_t> poison;

  bool enabled() const { return rate > 0.0 || !poison.empty(); }
};

struct SweepOptions {
  SweepGrid grid;
  /// Manifest path; empty disables persistence (and resume).
  std::filesystem::path manifest_path;
  /// Continue from manifest_path if it exists; a fresh sweep otherwise.
  bool resume = false;
  /// fsync manifest saves (power-loss safety; SIGKILL safety needs none).
  bool durable = false;
  SweepLimits limits;
  SweepFaultPlan faults;
  /// Optional per-cell progress hook, called after each cell settles (also
  /// for cells salvaged from the manifest on resume), in cell order.
  std::function<void(const CellRecord&)> on_cell_settled;
};

struct SweepReport {
  std::size_t total_cells = 0;
  std::size_t completed = 0;
  std::size_t quarantined = 0;
  /// Cells salvaged from the manifest instead of re-run.
  std::size_t resumed_cells = 0;
  /// Attempts beyond each cell's first (watchdog fires, crashes absorbed).
  std::size_t retried_attempts = 0;
  /// Every cell, ascending cell_index.
  std::vector<CellRecord> records;
  /// Determinism witness over the deterministic record bytes (see
  /// results_hash); the soak harness compares this across kill/resume.
  std::uint64_t results_hash = 0;
};

/// FNV-1a over (cell_index, status, CellResult-if-done) in cell order.
/// Quarantine diagnostics (signals, rusage, stderr) are nondeterministic by
/// nature and deliberately excluded.
std::uint64_t results_hash(std::span<const CellRecord> records);

/// Run (or resume) a sweep. Throws vbr::IoError on manifest I/O failures
/// and fingerprint mismatches, vbr::InvalidArgument on a bad grid or an
/// unsafe fault plan (OOM injection without a memory ceiling, hang
/// injection without a watchdog deadline). Worker failures never propagate:
/// they end as retries or quarantine records.
SweepReport run_sweep(const SweepOptions& options);

/// The deterministic per-attempt fault decision (exposed for tests).
InjectedFault fault_for_attempt(const SweepFaultPlan& faults, std::uint64_t cell_index,
                                std::size_t attempt);

}  // namespace vbr::sweep
