// The supervised, process-isolated sweep: every evaluation cell runs in a
// forked worker so one bad cell — a hang at utilization -> 1, an OOM on a
// huge buffer, a numeric blow-up at H -> 1 — costs one quarantine record
// instead of the whole campaign.
//
// Per cell, the supervisor forks a worker, watches its result pipe with a
// poll()-based watchdog, and classifies the outcome:
//
//   result frame + exit 0          -> done
//   structured vbr::Error frame    -> deterministic poison: quarantine now
//   structured OOM frame           -> retry (the report is transient-shaped)
//   watchdog deadline / SIGXCPU    -> hang: SIGKILL, retry
//   SIGKILL near the memory ceiling-> OOM: retry
//   any other signal/nonzero exit  -> crash: retry
//
// Retries restart from the cell's deterministic split seed, so a retried
// cell is bit-identical to one that succeeded first try; a cell that
// exhausts max_attempts is quarantined with a structured CellFailure
// (kind, exit/signal, rusage peak RSS, captured stderr tail) and the sweep
// moves on. A failed attempt is *requeued with a due time* (backoff *
// 2^(k-1) from the failure) instead of sleeping the dispatch loop, so one
// flaky cell's exponential backoff never stalls the healthy cells behind
// it — and because every record is a pure function of its spec, the final
// results hash is independent of settling order.
//
// Progress persists in the VBRSWPL1 append-only result log (result_log.hpp)
// — one CRC-framed record per settled cell, O(1) write cost per settle —
// so SIGKILLing the *supervisor* and rerunning with resume truncates any
// torn tail, salvages every settled cell, and reproduces the uninterrupted
// sweep's merged results bit-for-bit (scripts/crash_soak.sh sweep and
// shard modes enforce exactly that). Multi-pool work-stealing dispatch
// over sharded logs lives in dispatch.hpp and shares settle_cells().
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <span>
#include <vector>

#include "vbr/sweep/manifest.hpp"
#include "vbr/sweep/sweep_plan.hpp"
#include "vbr/sweep/worker.hpp"

namespace vbr::sweep {

/// Retry budget wrapped around the per-attempt WorkerLimits.
struct SweepLimits {
  WorkerLimits worker;          ///< deadline / memory / CPU per attempt
  std::size_t max_attempts = 3; ///< total tries per cell (>= 1)
  double backoff_seconds = 0.0; ///< retry k due backoff * 2^(k-1) after failure k
  /// Fork one worker process per attempt (crash/hang/OOM containment).
  /// false evaluates cells in-process — no isolation, but ~1 ms less
  /// overhead per cell, the right trade at 10^5+ cells of trusted specs;
  /// a structured vbr::Error still quarantines, and crash/hang/OOM fault
  /// injection is rejected (those need a worker process to kill).
  bool isolate = true;
};

/// Seeded deterministic fault injection (the soak harness seam). A cell's
/// *first* attempt faults with probability `rate`, the kind drawn from the
/// enabled set — so every injected fault is healed by one retry and the
/// merged results stay bit-identical to a fault-free sweep. Poison cells
/// fault on *every* attempt with a deterministic vbr::NumericalError and
/// must end quarantined.
struct SweepFaultPlan {
  double rate = 0.0;
  std::uint64_t seed = 0;
  bool crash = true;
  bool hang = true;
  bool oom = true;
  std::vector<std::uint64_t> poison;

  bool enabled() const { return rate > 0.0 || !poison.empty(); }
};

struct SweepOptions {
  SweepGrid grid;
  /// VBRSWPL1 result-log path; empty disables persistence (and resume).
  std::filesystem::path log_path;
  /// Continue from log_path if it exists (torn tail truncated, settled
  /// cells salvaged); a fresh sweep otherwise. Resuming against a log whose
  /// header carries a different sweep fingerprint fails fast with an
  /// IoError naming both fingerprints — never a silent re-seed.
  bool resume = false;
  /// fsync log appends (power-loss safety; SIGKILL safety needs none).
  bool durable = false;
  SweepLimits limits;
  SweepFaultPlan faults;
  /// Optional per-cell progress hook: salvaged cells first (ascending cell
  /// index), then fresh cells in settling order — which can differ from
  /// cell order when a retry is deferred past healthy cells.
  std::function<void(const CellRecord&)> on_cell_settled;
};

struct SweepReport {
  std::size_t total_cells = 0;
  std::size_t completed = 0;
  std::size_t quarantined = 0;
  /// Cells salvaged from the result log instead of re-run.
  std::size_t resumed_cells = 0;
  /// Attempts beyond each cell's first (watchdog fires, crashes absorbed).
  std::size_t retried_attempts = 0;
  /// Every cell, ascending cell_index.
  std::vector<CellRecord> records;
  /// Determinism witness over the deterministic record bytes (see
  /// results_hash); the soak harness compares this across kill/resume.
  std::uint64_t results_hash = 0;
};

/// FNV-1a over (cell_index, status, CellResult-if-done) in cell order.
/// Quarantine diagnostics (signals, rusage, stderr) are nondeterministic by
/// nature and deliberately excluded.
std::uint64_t results_hash(std::span<const CellRecord> records);

/// Run (or resume) a sweep. Throws vbr::IoError on result-log I/O failures
/// and fingerprint mismatches, vbr::InvalidArgument on a bad grid or an
/// unsafe fault plan (OOM injection without a memory ceiling, hang
/// injection without a watchdog deadline). Worker failures never propagate:
/// they end as retries or quarantine records.
SweepReport run_sweep(const SweepOptions& options);

/// The deterministic per-attempt fault decision (exposed for tests).
InjectedFault fault_for_attempt(const SweepFaultPlan& faults, std::uint64_t cell_index,
                                std::size_t attempt);

/// Statistics from one settle_cells call.
struct SettleStats {
  std::size_t retried_attempts = 0;
};

/// Settle an arbitrary set of cells under the non-blocking retry scheduler
/// — the shared core of run_sweep and the shard pools (dispatch.hpp). A
/// failed attempt requeues its cell with a due time instead of sleeping,
/// so healthy cells keep settling while a flaky cell backs off.
/// `on_settled` receives each record as it settles; returning false stops
/// early (a pool abandons a lost lease this way). `tick` runs at least
/// once per attempt and during idle waits — the lease-heartbeat seam.
/// Throws vbr::InvalidArgument on a bad grid, an out-of-range cell index,
/// or an unsafe fault plan (crash/hang/OOM injection without isolation,
/// OOM without a memory ceiling, hang without a watchdog deadline).
void settle_cells(const SweepGrid& grid, const std::vector<std::uint64_t>& cells,
                  const SweepLimits& limits, const SweepFaultPlan& faults,
                  const std::function<bool(const CellRecord&)>& on_settled,
                  const std::function<void()>& tick = {},
                  SettleStats* stats = nullptr);

}  // namespace vbr::sweep
